package dawningcloud

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"testing"
)

// TestKernelMatchesReferenceGolden is the full-system half of the kernel
// differential suite: testdata/kernel_golden.json holds the complete
// Result (per-provider tables, totals, peaks, adjustment counts) of every
// registered system — DCS, SSP, DRP, DawningCloud and the ssp-spot
// extension — on the paper workloads, captured under the original
// container/heap kernel (internal/sim/refheap) before the indexed
// fast-path kernel replaced it. The current kernel must reproduce each
// system's Result exactly: any drift in event order, timestamps or
// tie-breaking shows up as a numeric difference here.
//
// The kernel-level half of the suite (random Cancel/Every/Stop/At
// interleavings replayed through both kernels) lives in
// internal/sim/diff_test.go.
//
// Each system runs through the asynchronous Submit path (handle +
// Result), so this golden also pins that the run-service lifecycle is
// result-transparent: queueing, event buffering and dedup change
// nothing about what a simulation computes.
func TestKernelMatchesReferenceGolden(t *testing.T) {
	data, err := os.ReadFile("testdata/kernel_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("golden file holds no systems")
	}

	wls, err := PaperWorkloads(42)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Horizon: TwoWeeks, Seed: 7}

	systems := make([]string, 0, len(want))
	for system := range want {
		systems = append(systems, system)
	}
	sort.Strings(systems)
	for _, system := range systems {
		h, err := DefaultEngine().Submit(context.Background(),
			SubmitRequest{System: system, Workloads: CloneWorkloads(wls)}, WithOptions(opts))
		if err != nil {
			t.Fatalf("%s: %v", system, err)
		}
		res, err := h.Result(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", system, err)
		}
		got := res.Result
		w := want[system]
		if !reflect.DeepEqual(got, w) {
			gotJSON, _ := json.MarshalIndent(got, "", "  ")
			wantJSON, _ := json.MarshalIndent(w, "", "  ")
			t.Errorf("%s diverged from the reference-kernel golden:\n got %s\nwant %s",
				system, gotJSON, wantJSON)
		}
	}
}
