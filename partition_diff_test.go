package dawningcloud

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"
)

// TestPartitionedKernelMatchesReferenceGolden is the partitioned half of
// the kernel differential suite: every system in
// testdata/kernel_golden.json re-runs the paper workloads with its
// providers split onto P per-core kernel partitions, and the merged
// Result must be byte-identical to the serial reference golden for P in
// {2, 4, 8}. The paper evaluation has three providers, so P=4 and P=8
// also pin the clamp-to-workload-count path.
//
// All three paper workloads pass the partition gates (unconstrained
// pool, every MTC job fits its fixed RE), so this exercises the real
// partitioned path for DCS, SSP, DRP, DawningCloud and ssp-spot — not a
// serial fallback.
func TestPartitionedKernelMatchesReferenceGolden(t *testing.T) {
	data, err := os.ReadFile("testdata/kernel_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("golden file holds no systems")
	}

	wls, err := PaperWorkloads(42)
	if err != nil {
		t.Fatal(err)
	}

	systems := make([]string, 0, len(want))
	for system := range want {
		systems = append(systems, system)
	}
	sort.Strings(systems)
	for _, p := range []int{2, 4, 8} {
		opts := Options{Horizon: TwoWeeks, Seed: 7, Partitions: p}
		for _, system := range systems {
			h, err := DefaultEngine().Submit(context.Background(),
				SubmitRequest{System: system, Workloads: CloneWorkloads(wls)}, WithOptions(opts))
			if err != nil {
				t.Fatalf("P=%d %s: %v", p, system, err)
			}
			res, err := h.Result(context.Background())
			if err != nil {
				t.Fatalf("P=%d %s: %v", p, system, err)
			}
			got := res.Result
			w := want[system]
			if !reflect.DeepEqual(got, w) {
				gotJSON, _ := json.MarshalIndent(got, "", "  ")
				wantJSON, _ := json.MarshalIndent(w, "", "  ")
				t.Errorf("P=%d: %s diverged from the serial reference golden:\n got %s\nwant %s",
					p, system, gotJSON, wantJSON)
			}
		}
	}
}

// TestPartitionedRunsMatchSerialOnRandomProviders is the property half:
// a larger, irregular provider set — eight providers mixing the three
// paper traces at distinct seeds, so chunks land mid-set rather than on
// workload-kind boundaries — must produce byte-identical Results for
// P = 1, 2, 4, 8 on every registered system. P=1 is the serial path by
// construction, so each partitioned run is compared against a genuine
// serial reference, not against another partitioning.
func TestPartitionedRunsMatchSerialOnRandomProviders(t *testing.T) {
	var wls []Workload
	for i := 0; i < 8; i++ {
		var (
			wl  Workload
			err error
		)
		seed := int64(100 + i*13)
		switch i % 3 {
		case 0:
			wl, err = NASATrace(seed)
		case 1:
			wl, err = BlueTrace(seed)
		default:
			wl, err = MontageWorkload(seed, TwoWeeks/3)
		}
		if err != nil {
			t.Fatal(err)
		}
		wl.Name = fmt.Sprintf("p%02d-%s", i, wl.Name)
		wls = append(wls, wl)
	}

	for _, system := range DefaultEngine().Systems() {
		var serial Result
		for _, p := range []int{1, 2, 4, 8} {
			opts := Options{Horizon: TwoWeeks, Seed: 9, Partitions: p}
			h, err := DefaultEngine().Submit(context.Background(),
				SubmitRequest{System: system, Workloads: CloneWorkloads(wls)}, WithOptions(opts))
			if err != nil {
				t.Fatalf("P=%d %s: %v", p, system, err)
			}
			res, err := h.Result(context.Background())
			if err != nil {
				t.Fatalf("P=%d %s: %v", p, system, err)
			}
			if p == 1 {
				serial = res.Result
				continue
			}
			if !reflect.DeepEqual(res.Result, serial) {
				gotJSON, _ := json.MarshalIndent(res.Result, "", "  ")
				wantJSON, _ := json.MarshalIndent(serial, "", "  ")
				t.Errorf("%s: P=%d diverged from serial:\n got %s\nwant %s",
					system, p, gotJSON, wantJSON)
			}
		}
	}
}
