package dawningcloud

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/job"
)

// longHTCWorkload builds a cheap-to-construct workload whose simulation
// schedules enough events (tens of thousands) that mid-run cancellation
// has something to interrupt.
func longHTCWorkload() Workload {
	var jobs []job.Job
	for i := 0; i < 30000; i++ {
		jobs = append(jobs, job.Job{
			ID:      i + 1,
			Class:   job.HTC,
			Submit:  int64(i) * 40,
			Runtime: 1800,
			Nodes:   (i % 16) + 1,
		})
	}
	return Workload{
		Name:       "long-htc",
		Class:      HTC,
		Jobs:       jobs,
		FixedNodes: 64,
		Params:     HTCPolicy(16, 1.5),
	}
}

func TestDefaultEngineSystems(t *testing.T) {
	names := DefaultEngine().Systems()
	for _, want := range []string{"DCS", "SSP", "DRP", "DawningCloud", "ssp-spot"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Systems() = %v, missing %s", names, want)
		}
	}
}

func TestEngineRunByName(t *testing.T) {
	montage, err := MontageWorkload(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DefaultEngine().Run(context.Background(), "dcs", []Workload{montage},
		WithOptions(Options{Horizon: 6 * 3600}))
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "DCS" {
		t.Errorf("System = %q, want canonical DCS", res.System)
	}
	p, _ := res.Provider("montage-mtc")
	if p.Completed != 1000 {
		t.Errorf("completed = %d, want 1000", p.Completed)
	}
}

func TestEngineRunUnknownSystemListsNames(t *testing.T) {
	_, err := DefaultEngine().Run(context.Background(), "nope", nil)
	if err == nil {
		t.Fatal("unknown system accepted")
	}
	for _, want := range []string{`unknown system "nope"`, "DCS", "DawningCloud", "ssp-spot"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestRegisterCustomSystemEndToEnd is the acceptance test for the
// extensibility contract: a system registered from this test file — no
// edits to any core dispatch — is runnable by name via Engine.Run AND
// from a scenario spec (the dcsim CLI path is covered in
// cmd/dcsim/main_test.go).
func TestRegisterCustomSystemEndToEnd(t *testing.T) {
	const name = "test-echo"
	if !DefaultEngine().Has(name) {
		DefaultEngine().MustRegister(name, RunnerFunc(
			func(ctx context.Context, wls []Workload, opts Options) (Result, error) {
				if err := ctx.Err(); err != nil {
					return Result{}, err
				}
				res := Result{System: name, Horizon: opts.HorizonFor(wls), TotalNodeHours: 1}
				for _, wl := range wls {
					res.Providers = append(res.Providers, ProviderResult{
						Name: wl.Name, Class: wl.Class,
						Submitted: len(wl.Jobs), Completed: len(wl.Jobs), NodeHours: 1,
					})
				}
				return res, nil
			}))
	}

	// 1. Runnable via Engine.Run.
	montage, err := MontageWorkload(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DefaultEngine().Run(context.Background(), name, []Workload{montage})
	if err != nil {
		t.Fatalf("Engine.Run(%s): %v", name, err)
	}
	if res.System != name {
		t.Errorf("System = %q, want %q", res.System, name)
	}

	// 2. Runnable from a scenario spec by name.
	spec, err := ParseScenario([]byte(fmt.Sprintf(`{"name":"ext","days":1,"seed":3,
		"systems":["DCS",%q],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`, name)))
	if err != nil {
		t.Fatalf("ParseScenario with registered extension: %v", err)
	}
	report, err := RunScenario(spec, 2)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	got, ok := report.Base[name]
	if !ok {
		t.Fatalf("scenario report missing %q results (have %v)", name, report.Systems)
	}
	if p, ok := got.Provider("p"); !ok || p.Completed == 0 {
		t.Errorf("extension result empty: %+v", got)
	}
}

func TestNewEngineIsolatedFromDefault(t *testing.T) {
	eng := NewEngine()
	if !eng.Has("DawningCloud") {
		t.Fatal("NewEngine missing snapshot of builtins")
	}
	eng.MustRegister("isolated-sys", RunnerFunc(
		func(ctx context.Context, wls []Workload, opts Options) (Result, error) {
			return Result{System: "isolated-sys"}, nil
		}))
	if DefaultEngine().Has("isolated-sys") {
		t.Error("NewEngine registration leaked into the default engine")
	}
}

func TestEngineRunAllExplicitList(t *testing.T) {
	montage, err := MontageWorkload(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	results, err := DefaultEngine().RunAll(context.Background(),
		[]string{"DCS", "SSP"}, []Workload{montage},
		WithOptions(Options{Horizon: 6 * 3600}), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].System != "DCS" || results[1].System != "SSP" {
		t.Fatalf("results = %v", results)
	}
}

// TestEngineRunAllNilRunsAllRegistered pins the documented default: a
// nil system list fans out over every registered system, one result per
// name in registration order.
func TestEngineRunAllNilRunsAllRegistered(t *testing.T) {
	montage, err := MontageWorkload(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine() // snapshot: isolated from other tests' registrations
	want := eng.Systems()
	results, err := eng.RunAll(context.Background(), nil, []Workload{montage},
		WithOptions(Options{Horizon: 6 * 3600}), WithSeed(3), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(want) {
		t.Fatalf("results = %d, want one per registered system (%d: %v)", len(results), len(want), want)
	}
	for i, name := range want {
		if results[i].System != name {
			t.Errorf("results[%d].System = %q, want %q (registration order)", i, results[i].System, name)
		}
	}
}

func TestEngineSweep(t *testing.T) {
	montage, err := MontageWorkload(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	points, err := DefaultEngine().Sweep(context.Background(), "DawningCloud", montage,
		[]int{10, 80}, []float64{8}, WithOptions(Options{Horizon: 6 * 3600}))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	for _, pt := range points {
		if pt.NodeHours <= 0 || pt.Completed != 1000 {
			t.Errorf("point B%d R%g: %+v", pt.B, pt.R, pt)
		}
		if pt.Perf != pt.TasksPerSecond {
			t.Errorf("MTC sweep Perf = %g, want tasks/s %g", pt.Perf, pt.TasksPerSecond)
		}
	}
	if _, err := DefaultEngine().Sweep(context.Background(), "DawningCloud", montage, nil, nil); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestEngineEventsStream(t *testing.T) {
	montage, err := MontageWorkload(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var started, completed, cells int
	_, err = DefaultEngine().RunAll(context.Background(), []string{"DCS", "DRP"},
		[]Workload{montage},
		WithOptions(Options{Horizon: 6 * 3600}),
		WithEvents(func(ev Event) {
			mu.Lock()
			defer mu.Unlock()
			switch ev.(type) {
			case RunStartedEvent:
				started++
			case RunCompletedEvent:
				completed++
			case CellCompletedEvent:
				cells++
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	if started != 2 || completed != 2 || cells != 2 {
		t.Errorf("events: started=%d completed=%d cells=%d, want 2/2/2", started, completed, cells)
	}
}

// TestEngineRunCancellation is the cancellation satellite at the single
// run level: a run aborted mid-simulation returns promptly with an error
// wrapping ctx.Err().
func TestEngineRunCancellation(t *testing.T) {
	wl := longHTCWorkload()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	// Cancel on the run's own start event rather than a wall-clock timer:
	// the fast kernel finishes this workload in tens of milliseconds, so
	// any sleep-based cancellation would race the simulation.
	_, err := DefaultEngine().Run(ctx, "DawningCloud", []Workload{wl},
		WithOptions(Options{Horizon: TwoWeeks}),
		WithEvents(func(ev Event) {
			if _, ok := ev.(RunStartedEvent); ok {
				cancel()
			}
		}))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancelled run took %v to return", elapsed)
	}
}

// TestEngineRunTimeout: a context deadline aborts the run with
// DeadlineExceeded.
func TestEngineRunTimeout(t *testing.T) {
	wl := longHTCWorkload()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := DefaultEngine().Run(ctx, "SSP", []Workload{wl},
		WithOptions(Options{Horizon: TwoWeeks}))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunAllCancellationNoGoroutineLeak is the cancellation satellite at
// the fan-out level: cancelling a RunAll with Workers > 1 returns
// promptly with ctx.Err() and leaves no worker goroutines behind.
// Run under -race in CI.
func TestRunAllCancellationNoGoroutineLeak(t *testing.T) {
	wl := longHTCWorkload()
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := DefaultEngine().RunAll(ctx, []string{"DCS", "SSP", "DRP", "DawningCloud"},
		[]Workload{wl}, WithOptions(Options{Horizon: TwoWeeks}), WithWorkers(4))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Errorf("cancelled RunAll took %v to return", elapsed)
	}
	// All workers exit once their in-flight runs observe cancellation;
	// allow a grace period for the scheduler to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after cancellation grace period",
		before, runtime.NumGoroutine())
}

// TestScenarioCancellation: cancellation propagates through the
// declarative scenario engine too.
func TestScenarioCancellation(t *testing.T) {
	spec, err := ParseScenario([]byte(`{"name":"cancel","days":14,"seed":3,
		"systems":["DCS","SSP","DawningCloud"],
		"providers":[{"name":"p","count":3,"source":{"kind":"synth","model":"nasa"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err = RunScenarioContext(ctx, spec, 4, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
