package dawningcloud

// This file is the crash-recovery codec behind WithRunStore: how a
// submission is serialized into the durable run store's WAL
// (persistedSpec), how a restarted engine rebuilds the executable task
// from it (rehydrateTask), and how finished results round-trip to disk
// (encodeRunResult / decodeRunResult). The service layer stays ignorant
// of request forms; everything kind-specific lives here.

import (
	"encoding/json"
	"fmt"

	"repro/internal/service"
)

// persistedSpec is the serialized form of one submission, written into
// the durable store's OpSubmit record. Exactly one request form is
// populated, mirroring SubmitRequest; Workers and Options carry the
// execution knobs that shape the result (scenario/suite reject
// non-zero Options at build time, so persisting them is system-only).
//
// System submissions persist their full workloads — for the paper
// traces that is megabytes of jobs per record, the honest price of
// byte-identical recovery. Scenario and suite runs (the service's
// production shapes) persist only their compact declarative specs.
type persistedSpec struct {
	System    string     `json:"system,omitempty"`
	Workloads []Workload `json:"workloads,omitempty"`
	Options   Options    `json:"options,omitzero"`

	Scenario json.RawMessage `json:"scenario,omitempty"`

	Experiments []string `json:"experiments,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	Days        int      `json:"days,omitempty"`

	Workers int `json:"workers,omitempty"`
}

// specForSystem serializes a system submission (canonical name, the
// as-submitted workloads, options).
func specForSystem(canonical string, workloads []Workload, cfg runConfig) ([]byte, error) {
	return json.Marshal(persistedSpec{
		System: canonical, Workloads: workloads,
		Options: cfg.opts, Workers: cfg.workers,
	})
}

// specForScenario wraps the spec's canonical JSON (already computed for
// the content hash).
func specForScenario(specJSON []byte, cfg runConfig) ([]byte, error) {
	return json.Marshal(persistedSpec{Scenario: specJSON, Workers: cfg.workers})
}

// specForSuite serializes a suite submission (expanded artifact IDs,
// resolved seed and days).
func specForSuite(ids []string, seed int64, days int, cfg runConfig) ([]byte, error) {
	return json.Marshal(persistedSpec{
		Experiments: ids, Seed: seed, Days: days, Workers: cfg.workers,
	})
}

// rehydrateTask rebuilds a recovered run's executable task from its
// persisted spec: decode, reconstruct the SubmitRequest union, and run
// it back through the same buildRequest path a live submission takes —
// same validation, same content hash, same task body. kind
// cross-checks that the spec matches the run's recorded kind.
func (e *Engine) rehydrateTask(kind string, spec []byte) (service.Task, error) {
	var ps persistedSpec
	if err := json.Unmarshal(spec, &ps); err != nil {
		return nil, fmt.Errorf("dawningcloud: rehydrate %s: %w", kind, err)
	}
	req := SubmitRequest{
		System:      ps.System,
		Workloads:   ps.Workloads,
		Experiments: ps.Experiments,
		Seed:        ps.Seed,
		Days:        ps.Days,
	}
	if len(ps.Scenario) > 0 {
		sc, err := ParseScenario(ps.Scenario)
		if err != nil {
			return nil, fmt.Errorf("dawningcloud: rehydrate scenario: %w", err)
		}
		req.Scenario = sc
	}
	// Live scenarios never persist a spec (their feeds die with the
	// process), so the discarded feed here is always nil.
	sreq, _, err := e.buildRequest(req, runConfig{opts: ps.Options, workers: ps.Workers})
	if err != nil {
		return nil, fmt.Errorf("dawningcloud: rehydrate %s: %w", kind, err)
	}
	if sreq.Kind != kind {
		return nil, fmt.Errorf("dawningcloud: rehydrate: spec builds a %q task, run recorded as %q", sreq.Kind, kind)
	}
	return sreq.Task, nil
}

// encodeRunResult serializes a finished run's result for the durable
// store. All three result forms (systems.Result, *scenario.Report,
// []experiments.Artifact) are plain exported-field structs, so their
// JSON forms round-trip losslessly.
func encodeRunResult(kind string, result any) ([]byte, error) {
	data, err := json.Marshal(result)
	if err != nil {
		return nil, fmt.Errorf("dawningcloud: encode %s result: %w", kind, err)
	}
	return data, nil
}

// decodeRunResult inverts encodeRunResult at recovery, restoring the
// exact dynamic type resolveResult and ResultView switch on.
func decodeRunResult(kind string, data []byte) (any, error) {
	switch kind {
	case "system":
		var r Result
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("dawningcloud: decode system result: %w", err)
		}
		return r, nil
	case "scenario":
		var rep ScenarioReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("dawningcloud: decode scenario result: %w", err)
		}
		return &rep, nil
	case "suite":
		var arts []Artifact
		if err := json.Unmarshal(data, &arts); err != nil {
			return nil, fmt.Errorf("dawningcloud: decode suite result: %w", err)
		}
		return arts, nil
	default:
		return nil, fmt.Errorf("dawningcloud: decode result: unknown run kind %q", kind)
	}
}
