package dawningcloud

import (
	"context"
	"math"
	"testing"

	"repro/internal/job"
)

func TestWorkloadConstructors(t *testing.T) {
	nasa, err := NASATrace(1)
	if err != nil {
		t.Fatalf("NASATrace: %v", err)
	}
	if nasa.FixedNodes != 128 || nasa.Class != HTC {
		t.Errorf("NASA workload: fixed=%d class=%v", nasa.FixedNodes, nasa.Class)
	}
	if err := nasa.Validate(); err != nil {
		t.Errorf("NASA workload invalid: %v", err)
	}
	blue, err := BlueTrace(1)
	if err != nil {
		t.Fatalf("BlueTrace: %v", err)
	}
	if blue.FixedNodes != 144 {
		t.Errorf("BLUE fixed = %d, want 144", blue.FixedNodes)
	}
	montage, err := MontageWorkload(1, 3600)
	if err != nil {
		t.Fatalf("MontageWorkload: %v", err)
	}
	if montage.Class != MTC || len(montage.Jobs) != 1000 {
		t.Errorf("Montage workload: class=%v tasks=%d", montage.Class, len(montage.Jobs))
	}
	if montage.FirstSubmit() != 3600 {
		t.Errorf("Montage first submit = %d, want 3600", montage.FirstSubmit())
	}
}

func TestPaperWorkloads(t *testing.T) {
	wls, err := PaperWorkloads(5)
	if err != nil {
		t.Fatalf("PaperWorkloads: %v", err)
	}
	if len(wls) != 3 {
		t.Fatalf("workloads = %d, want 3", len(wls))
	}
	classes := map[job.Class]int{}
	for _, wl := range wls {
		classes[wl.Class]++
	}
	if classes[HTC] != 2 || classes[MTC] != 1 {
		t.Errorf("classes = %v, want 2 HTC + 1 MTC", classes)
	}
}

func TestRunWithBackfillCompletesWork(t *testing.T) {
	nasa, err := NASATrace(9)
	if err != nil {
		t.Fatal(err)
	}
	// Shorten: take the first 200 jobs only.
	nasa.Jobs = nasa.Jobs[:200]
	opts := Options{Horizon: TwoWeeks}
	res, err := RunWithBackfill([]Workload{nasa}, opts)
	if err != nil {
		t.Fatalf("RunWithBackfill: %v", err)
	}
	p, _ := res.Provider("nasa-htc")
	if p.Completed < 190 {
		t.Errorf("backfill completed = %d/200", p.Completed)
	}
}

func TestPolicyHelpers(t *testing.T) {
	h := HTCPolicy(40, 1.2)
	if h.ScanInterval != 60 || h.InitialNodes != 40 {
		t.Errorf("HTCPolicy = %+v", h)
	}
	m := MTCPolicy(10, 8)
	if m.ScanInterval != 3 || m.ThresholdRatio != 8 {
		t.Errorf("MTCPolicy = %+v", m)
	}
}

func TestTCOComparison(t *testing.T) {
	dcs, ssp, ratio, err := TCOComparison()
	if err != nil {
		t.Fatalf("TCOComparison: %v", err)
	}
	if math.Abs(dcs-3162.5) > 0.01 || ssp != 2260 {
		t.Errorf("TCO = %.2f/%.2f, want 3162.50/2260", dcs, ssp)
	}
	if math.Abs(ratio-0.7146) > 0.001 {
		t.Errorf("ratio = %.4f, want ~0.715", ratio)
	}
}

func TestNewSuiteProducesArtifacts(t *testing.T) {
	s := NewSuite(11)
	a, err := s.Table4(context.Background())
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if a.ID != "table4" || a.Text == "" {
		t.Errorf("artifact = %+v", a)
	}
}

func TestTwoWeeksConstant(t *testing.T) {
	if TwoWeeks != 14*24*3600 {
		t.Errorf("TwoWeeks = %d", TwoWeeks)
	}
}

func TestRunScenarioPublicAPI(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 10 || names[0] != "paper-baseline" {
		t.Fatalf("ScenarioNames = %v", names)
	}
	spec, err := ParseScenario([]byte(`{"name":"api","days":1,"seed":3,
		"systems":["DCS","DawningCloud"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`))
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	report, err := RunScenario(spec, 2)
	if err != nil {
		t.Fatalf("RunScenario: %v", err)
	}
	if len(report.Base) != 2 {
		t.Errorf("base systems = %d, want 2", len(report.Base))
	}
	dcs, dsp := report.Base["DCS"], report.Base["DawningCloud"]
	if dcs.TotalNodeHours <= 0 || dsp.TotalNodeHours <= 0 {
		t.Errorf("empty totals: DCS %.0f, DawningCloud %.0f", dcs.TotalNodeHours, dsp.TotalNodeHours)
	}
	if report.Render() == "" {
		t.Error("empty rendered report")
	}
	if _, err := LoadScenario("mixed-federation"); err != nil {
		t.Errorf("LoadScenario builtin: %v", err)
	}
	if _, err := ParseScenario([]byte(`{"name":"bad","days":0,"providers":[]}`)); err == nil {
		t.Error("invalid spec accepted")
	}
}
