package dawningcloud

import (
	"context"
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"testing"

	"repro/internal/job"
	"repro/internal/stream"
	"repro/internal/streamrun"
	"repro/internal/systems"
)

// streamedPaperResult runs the paper workloads through the streamed path
// (every HTC provider replayed as a stream.Source, MTC workflows as a
// feeder action lane) with the given feeder tuning.
func streamedPaperResult(t *testing.T, system string, feeder stream.Options) Result {
	t.Helper()
	wls, err := PaperWorkloads(42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := streamrun.Run(context.Background(), streamrun.Spec{
		System:    system,
		Workloads: CloneWorkloads(wls),
		Options:   Options{Horizon: TwoWeeks, Seed: 7},
		Feeder:    feeder,
	})
	if err != nil {
		t.Fatalf("%s streamed: %v", system, err)
	}
	return res
}

// TestStreamedMatchesMaterialized is the streaming half of the kernel
// differential suite: for every system in testdata/kernel_golden.json,
// feeding the paper workloads through the bounded-lookahead streamed
// path must reproduce the materialized golden Result exactly — same
// tables, same adjustment counts, same tie-breaking. This is the
// byte-identity invariant of internal/stream, pinned end to end.
func TestStreamedMatchesMaterialized(t *testing.T) {
	data, err := os.ReadFile("testdata/kernel_golden.json")
	if err != nil {
		t.Fatal(err)
	}
	var want map[string]Result
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	names := make([]string, 0, len(want))
	for system := range want {
		names = append(names, system)
	}
	sort.Strings(names)
	for _, system := range names {
		system := system
		t.Run(system, func(t *testing.T) {
			got := streamedPaperResult(t, system, stream.Options{})
			if !reflect.DeepEqual(got, want[system]) {
				gotJSON, _ := json.MarshalIndent(got, "", "  ")
				wantJSON, _ := json.MarshalIndent(want[system], "", "  ")
				t.Errorf("streamed result diverged from materialized golden\ngot:\n%s\nwant:\n%s", gotJSON, wantJSON)
			}
		})
	}
}

// TestStreamedStrideInvariance pins that the feeder's tuning knobs are
// invisible to results: stride and lookahead change when records are
// issued, never their order at equal times.
func TestStreamedStrideInvariance(t *testing.T) {
	base := streamedPaperResult(t, "DawningCloud", stream.Options{})
	for _, opt := range []stream.Options{
		{Stride: 600, MinLookahead: 2 * 3600},
		{Stride: 6 * 3600, MinLookahead: 4 * 3600},
		{Stride: 24 * 3600, MinLookahead: 2 * 3600},
	} {
		got := streamedPaperResult(t, "DawningCloud", opt)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("stride %d / lookahead %d changed the result", opt.Stride, opt.MinLookahead)
		}
	}
}

// TestStreamedSourcesDrainFully pins the drained-within-horizon premise
// of the identity proof on the reference workloads themselves: every
// paper job is submitted before the two-week horizon, so the streamed
// runs above really did replay the whole workload.
func TestStreamedSourcesDrainFully(t *testing.T) {
	wls, err := PaperWorkloads(42)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i := range wls {
		for k := range wls[i].Jobs {
			if wls[i].Jobs[k].Submit >= TwoWeeks {
				t.Fatalf("workload %s job %d submits at %d, past the horizon %d",
					wls[i].Name, wls[i].Jobs[k].ID, wls[i].Jobs[k].Submit, TwoWeeks)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("paper workloads are empty")
	}

	// And the feeder must have delivered exactly that many records plus
	// one action per MTC workflow.
	inst, f, err := streamrun.Open(streamrun.Spec{
		System:    "DCS",
		Workloads: CloneWorkloads(wls),
		Options:   Options{Horizon: TwoWeeks, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	inst.Engine().Run(TwoWeeks)
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	htc, workflows := 0, 0
	for i := range wls {
		if wls[i].Class == job.HTC {
			htc += len(wls[i].Jobs)
		} else {
			workflows += len(systems.WorkflowGroups(wls[i].Jobs))
		}
	}
	if got, want := f.Delivered(), htc+workflows; got != want {
		t.Errorf("feeder delivered %d records, want %d (%d HTC jobs + %d workflows)", got, want, htc, workflows)
	}
	if f.Resident() != 0 {
		t.Errorf("feeder still holds %d records after drain", f.Resident())
	}
}
