// Package dawningcloud (import path "repro") is the public API of the
// DawningCloud reproduction: a simulation study of whether MTC and HTC
// service providers benefit from the economies of scale when consolidating
// onto a cloud platform (Wang et al., MTAGS'09).
//
// The package exposes:
//
//   - the Engine: a string-keyed system registry with context-aware,
//     observable runs. The paper's four systems (DawningCloud, SSP, DCS,
//     DRP) and the spot-priced extension ("ssp-spot") ship registered;
//     new usage models plug in with Engine.Register — no enum or switch
//     to edit — and become runnable by name from Engine.Run,
//     `dcsim -system` and scenario spec files;
//   - the asynchronous run lifecycle: Engine.Submit accepts system
//     runs, scenario specs and suite requests as one union, dedupes
//     identical submissions by content hash, and returns a RunHandle
//     (stable ID, status, typed event stream, Cancel, Result). The
//     blocking methods are thin wrappers over the same lifecycle, and
//     cmd/dcserve exposes it over HTTP;
//   - workload constructors for the paper's three service providers (the
//     synthetic NASA iPSC and SDSC BLUE traces and the 1,000-task Montage
//     workflow), plus custom workload building from SWF files or workflow
//     JSON;
//   - the experiment suite regenerating every table and figure of the
//     paper's evaluation;
//   - the Section 4.5.5 TCO calculator.
//
// Quick start — blocking:
//
//	wls, _ := dawningcloud.PaperWorkloads(42)
//	eng := dawningcloud.DefaultEngine()
//	res, _ := eng.Run(ctx, "DawningCloud", wls,
//	    dawningcloud.WithOptions(dawningcloud.Options{Horizon: dawningcloud.TwoWeeks}))
//	fmt.Println(res.TotalNodeHours)
//
// The same run, asynchronously — Submit returns a handle immediately;
// identical submissions dedup onto one run and share its result:
//
//	h, _ := eng.Submit(ctx, dawningcloud.SubmitRequest{
//	    System: "DawningCloud", Workloads: wls,
//	}, dawningcloud.WithOptions(dawningcloud.Options{Horizon: dawningcloud.TwoWeeks}))
//	stop := h.Subscribe(func(ev dawningcloud.Event) { log.Println(ev) })
//	out, err := h.Result(ctx) // out.Result; h.Cancel() aborts mid-run
//	stop()
//
// Extending the registry with a new system:
//
//	eng.MustRegister("my-model", dawningcloud.RunnerFunc(
//	    func(ctx context.Context, wls []dawningcloud.Workload, opts dawningcloud.Options) (dawningcloud.Result, error) {
//	        ... // build and run a simulation; honor ctx
//	    }))
//	res, _ = eng.Run(ctx, "my-model", wls)
//
// Runs accept a context and honor cancellation end-to-end;
// WithEvents subscribes to the typed progress stream (run started, cell
// completed, table rendered). The pre-Engine enum API (System, Run,
// RunSystems, AllSystems) remains as deprecated wrappers in compat.go.
package dawningcloud

import (
	"context"
	"runtime"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/systems"
	"repro/internal/workflow"
)

// Re-exported core types. Aliases keep the full field surface usable
// without importing internal packages.
type (
	// Workload is one service provider's job stream plus configuration.
	Workload = systems.Workload
	// Options configure a system run.
	Options = systems.Options
	// Result is a full system run report.
	Result = systems.Result
	// ProviderResult is one provider's metrics within a Result.
	ProviderResult = systems.ProviderResult
	// Job is the unit of work (an HTC batch job or an MTC task).
	Job = job.Job
	// PolicyParams are the DSP resource-management knobs (B, R, scans).
	PolicyParams = policy.Params
	// Suite regenerates the paper's tables and figures.
	Suite = experiments.Suite
	// Artifact is one rendered table or figure.
	Artifact = experiments.Artifact
	// SweepPoint is one B×R parameter combination's outcome in a Sweep.
	SweepPoint = experiments.SweepPoint
	// Scenario is a declarative n-provider × m-system simulation spec
	// (JSON, with validation and defaults).
	Scenario = scenario.Spec
	// ScenarioReport is a scenario run's structured output.
	ScenarioReport = scenario.Report
)

// Workload classes.
const (
	HTC = job.HTC
	MTC = job.MTC
)

// RunWithBackfill runs DawningCloud with EASY backfilling in place of the
// paper's First-Fit HTC dispatch (the scheduler ablation). See
// RunWithBackfillContext; RunWithBackfill uses the background context.
func RunWithBackfill(workloads []Workload, opts Options) (Result, error) {
	return RunWithBackfillContext(context.Background(), workloads, opts) //dclint:allow ctxfirst -- documented non-ctx convenience wrapper over RunWithBackfillContext
}

// RunWithBackfillContext is RunWithBackfill with cancellation support.
func RunWithBackfillContext(ctx context.Context, workloads []Workload, opts Options) (Result, error) {
	return core.Run(ctx, workloads, core.Config{Options: opts, EasyBackfill: true})
}

// workers resolves a worker-count option (0 = all CPUs).
func workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// CloneWorkloads deep-copies a workload set (job slices and their Deps
// included) so concurrent runs never alias each other's state.
func CloneWorkloads(workloads []Workload) []Workload {
	return systems.CloneWorkloads(workloads)
}

// HTCPolicy returns the paper's HTC policy schedule with initial nodes B
// and threshold ratio R.
func HTCPolicy(b int, r float64) PolicyParams { return policy.HTCDefaults(b, r) }

// MTCPolicy returns the paper's MTC policy schedule.
func MTCPolicy(b int, r float64) PolicyParams { return policy.MTCDefaults(b, r) }

// NASATrace builds the NASA-iPSC-like HTC workload (128 nodes, 46.6%
// utilization, two weeks) with the paper's chosen DawningCloud parameters.
func NASATrace(seed int64) (Workload, error) {
	jobs, err := synth.NASAiPSC(seed).Generate()
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:       "nasa-htc",
		Class:      job.HTC,
		Jobs:       jobs,
		FixedNodes: 128,
		Params:     policy.HTCDefaults(40, 1.2),
	}, nil
}

// BlueTrace builds the SDSC-BLUE-like HTC workload (144 nodes, busy second
// week) with the paper's chosen parameters.
func BlueTrace(seed int64) (Workload, error) {
	jobs, err := synth.SDSCBlue(seed).Generate()
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:       "blue-htc",
		Class:      job.HTC,
		Jobs:       jobs,
		FixedNodes: 144,
		Params:     policy.HTCDefaults(80, 1.5),
	}, nil
}

// MontageWorkload builds the paper's 1,000-task Montage MTC workload,
// submitted at submitAt seconds into the run.
func MontageWorkload(seed int64, submitAt int64) (Workload, error) {
	dag, err := workflow.PaperMontage(seed)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:       "montage-mtc",
		Class:      job.MTC,
		Jobs:       dag.Jobs(submitAt),
		FixedNodes: 166,
		Params:     policy.MTCDefaults(10, 8),
	}, nil
}

// PaperWorkloads builds the evaluation's three service providers: two HTC
// organizations and one MTC organization, with the Montage workflow
// submitted mid-trace.
func PaperWorkloads(seed int64) ([]Workload, error) {
	nasa, err := NASATrace(seed)
	if err != nil {
		return nil, err
	}
	blue, err := BlueTrace(seed + 1)
	if err != nil {
		return nil, err
	}
	montage, err := MontageWorkload(seed+2, 7*sim.Day+11*sim.Hour)
	if err != nil {
		return nil, err
	}
	return []Workload{nasa, blue, montage}, nil
}

// LoadScenario resolves a scenario reference — a built-in name (see
// ScenarioNames) or a JSON spec file path — applying defaults and
// validating with field-level errors.
func LoadScenario(nameOrPath string) (*Scenario, error) {
	return scenario.Load(nameOrPath)
}

// ParseScenario decodes and validates a JSON scenario spec.
func ParseScenario(data []byte) (*Scenario, error) {
	return scenario.ParseBytes(data)
}

// RunScenario compiles the spec to workloads and executes every
// system × provider-count × sweep cell over at most workers concurrent
// simulations (0 = all CPUs). Output is deterministic at any worker
// count.
func RunScenario(s *Scenario, workers int) (*ScenarioReport, error) {
	return scenario.Run(s, workers)
}

// RunScenarioContext is RunScenario with cancellation support and a
// progress event sink (nil discards events). fn may be called
// concurrently from worker goroutines.
func RunScenarioContext(ctx context.Context, s *Scenario, workers int, fn func(Event)) (*ScenarioReport, error) {
	return scenario.RunContext(ctx, s, workers, events.Sink(fn))
}

// ScenarioNames lists the built-in scenarios: paper-baseline (the
// paper's evaluation, reproducing Tables 2-4 exactly), scale-10,
// scale-100, million-task, blue-heavy, mtc-burst, mixed-federation,
// federation-baseline and consolidation-vs-federation (the two
// shared-clock federation studies; see internal/clustersim).
func ScenarioNames() []string { return scenario.Names() }

// ScenarioJSON returns a built-in scenario's JSON source, a starting
// point for custom spec files.
func ScenarioJSON(name string) (string, error) { return scenario.BuiltinJSON(name) }

// TwoWeeks is the paper's accounting window in seconds.
const TwoWeeks = 14 * sim.Day

// NewSuite builds the experiment suite over the paper's two-week window.
func NewSuite(seed int64) *Suite { return experiments.NewSuite(seed) }

// TCOComparison reproduces Section 4.5.5: the monthly TCO of the paper's
// real DCS deployment versus the matched EC2 fleet, with the SSP/DCS ratio
// (the paper reports 71.5%).
func TCOComparison() (dcsPerMonth, sspPerMonth, ratio float64, err error) {
	cmp, err := cost.Compare(cost.PaperDCS(), cost.PaperEC2())
	if err != nil {
		return 0, 0, 0, err
	}
	return cmp.DCS.Total(), cmp.SSP.Total(), cmp.Ratio, nil
}
