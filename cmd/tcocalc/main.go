// Command tcocalc runs the paper's Section 4.5.5 total-cost-of-ownership
// analysis: a dedicated cluster's monthly TCO versus an equivalent EC2
// fleet, with every parameter overridable for what-if studies.
//
// Usage (defaults reproduce the paper's real case):
//
//	tcocalc [-capex 120000] [-years 8] [-maintenance 30000] [-energy 1600]
//	        [-instances 30] [-price 0.10] [-inbound-gb 1000] [-inbound-price 0.10]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cost"
)

func main() {
	var (
		capex        = flag.Float64("capex", 120000, "DCS capital expense ($)")
		years        = flag.Float64("years", 8, "DCS depreciation cycle (years)")
		maintenance  = flag.Float64("maintenance", 30000, "DCS total maintenance over the cycle ($)")
		energy       = flag.Float64("energy", 1600, "DCS energy and space per month ($)")
		instances    = flag.Int("instances", 30, "EC2 instances matching the DCS configuration")
		price        = flag.Float64("price", 0.10, "EC2 price per instance-hour ($)")
		inboundGB    = flag.Float64("inbound-gb", 1000, "inbound transfer per month (GB)")
		inboundPrice = flag.Float64("inbound-price", 0.10, "inbound transfer price per GB ($)")
	)
	flag.Parse()

	dcs := cost.DCSSpec{
		Nodes:                      15,
		CapExDollars:               *capex,
		DepreciationYears:          *years,
		MaintenanceTotalDollars:    *maintenance,
		EnergySpacePerMonthDollars: *energy,
	}
	ec2 := cost.EC2Spec{
		Instances:            *instances,
		PricePerInstanceHour: *price,
		HoursPerMonth:        30 * 24,
		InboundGBPerMonth:    *inboundGB,
		PricePerGBInbound:    *inboundPrice,
	}
	cmp, err := cost.Compare(dcs, ec2)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcocalc: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("DCS (owned cluster), per month:")
	for _, it := range cmp.DCS.Items {
		fmt.Printf("  %-20s $%9.2f\n", it.Label, it.Dollars)
	}
	fmt.Printf("  %-20s $%9.2f\n", "TOTAL", cmp.DCS.Total())
	fmt.Println("SSP (EC2 lease), per month:")
	for _, it := range cmp.SSP.Items {
		fmt.Printf("  %-20s $%9.2f\n", it.Label, it.Dollars)
	}
	fmt.Printf("  %-20s $%9.2f\n", "TOTAL", cmp.SSP.Total())
	fmt.Printf("SSP is %.1f%% of DCS (paper: 71.5%%)\n", cmp.Ratio*100)
}
