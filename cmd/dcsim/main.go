// Command dcsim simulates one system over one workload and prints the
// provider and resource-provider metrics: the single-experiment view of
// the comparison harness.
//
// Usage:
//
//	dcsim -system dawningcloud|ssp|dcs|drp|all -workload nasa|blue|montage
//	      [-b 40] [-r 1.2] [-seed 42] [-days 14] [-capacity 0] [-workers 0]
//
// With -system all, every compared system runs over the workload
// concurrently on up to -workers simulations (0 = all CPUs).
//
// It can also replay an external trace:
//
//	dcsim -swf trace.swf -fixed 128 -b 40 -r 1.2
//	dcsim -dag workflow.json -fixed 166 -b 10 -r 8
package main

import (
	"flag"
	"fmt"
	"os"

	dawningcloud "repro"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/synth"
	"repro/internal/workflow"
)

func main() {
	var (
		system   = flag.String("system", "dawningcloud", "system: dawningcloud, ssp, dcs, drp or all")
		workers  = flag.Int("workers", 0, "max concurrent simulations for -system all (0 = all CPUs)")
		load     = flag.String("workload", "nasa", "builtin workload: nasa, blue or montage")
		b        = flag.Int("b", 0, "initial nodes B (0 = paper default for the workload)")
		r        = flag.Float64("r", 0, "threshold ratio R (0 = paper default)")
		seed     = flag.Int64("seed", 42, "generation seed")
		days     = flag.Int("days", 14, "trace window in days")
		capacity = flag.Int("capacity", 0, "cloud pool capacity (0 = unconstrained)")
		swfPath  = flag.String("swf", "", "replay an SWF trace file instead of a builtin workload")
		dagPath  = flag.String("dag", "", "run a workflow JSON file instead of a builtin workload")
		fixed    = flag.Int("fixed", 0, "fixed RE size for DCS/SSP when replaying external files")
	)
	flag.Parse()

	wl, horizon, err := buildWorkload(*load, *seed, *days, *swfPath, *dagPath, *fixed)
	if err != nil {
		fail(err)
	}
	if *b > 0 {
		wl.Params.InitialNodes = *b
	}
	if *r > 0 {
		wl.Params.ThresholdRatio = *r
	}

	opts := dawningcloud.Options{Horizon: horizon, PoolCapacity: *capacity}
	if *system == "all" {
		results, err := dawningcloud.RunSystems(dawningcloud.AllSystems(), []dawningcloud.Workload{wl}, opts, *workers)
		if err != nil {
			fail(err)
		}
		for _, res := range results {
			printResult(res, wl.Name)
		}
		return
	}
	sys, err := parseSystem(*system)
	if err != nil {
		fail(err)
	}
	res, err := dawningcloud.Run(sys, []dawningcloud.Workload{wl}, opts)
	if err != nil {
		fail(err)
	}
	printResult(res, wl.Name)
}

func printResult(res dawningcloud.Result, workload string) {
	fmt.Printf("system: %s  workload: %s  horizon: %dh\n", res.System, workload, res.Horizon/3600)
	for _, p := range res.Providers {
		fmt.Printf("provider %s (%v):\n", p.Name, p.Class)
		fmt.Printf("  completed jobs:        %d / %d\n", p.Completed, p.Submitted)
		if p.TasksPerSecond > 0 {
			fmt.Printf("  tasks per second:      %.2f\n", p.TasksPerSecond)
		}
		fmt.Printf("  resource consumption:  %.0f node*hour\n", p.NodeHours)
		fmt.Printf("  peak nodes:            %d\n", p.PeakNodes)
		fmt.Printf("  nodes adjusted:        %d\n", p.NodesAdjusted)
	}
	fmt.Printf("resource provider: total %.0f node*hour, peak %d nodes/hour, %d adjustments, overhead %.0f s (%.1f s/hour), %d rejections\n",
		res.TotalNodeHours, res.PeakNodes, res.TotalNodesAdjusted,
		res.OverheadSeconds, res.OverheadPerHour, res.RejectedRequests)
}

func buildWorkload(load string, seed int64, days int, swfPath, dagPath string, fixed int) (dawningcloud.Workload, int64, error) {
	horizon := int64(days) * sim.Day
	switch {
	case swfPath != "":
		f, err := os.Open(swfPath)
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		defer f.Close()
		trace, err := swf.Parse(f)
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		jobs := trace.Jobs()
		if fixed == 0 {
			fixed = job.MaxNodes(jobs)
		}
		return dawningcloud.Workload{
			Name: "swf-trace", Class: job.HTC, Jobs: jobs,
			FixedNodes: fixed, Params: dawningcloud.HTCPolicy(40, 1.2),
		}, 0, nil
	case dagPath != "":
		f, err := os.Open(dagPath)
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		defer f.Close()
		dag, err := workflow.Decode(f)
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		if fixed == 0 {
			fixed, err = dag.MaxWidth()
			if err != nil {
				return dawningcloud.Workload{}, 0, err
			}
		}
		return dawningcloud.Workload{
			Name: dag.Name, Class: job.MTC, Jobs: dag.Jobs(0),
			FixedNodes: fixed, Params: dawningcloud.MTCPolicy(10, 8),
		}, 0, nil
	case load == "nasa":
		model := synth.NASAiPSC(seed)
		model.Days = days
		jobs, err := model.Generate()
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		return dawningcloud.Workload{
			Name: "nasa-htc", Class: job.HTC, Jobs: jobs,
			FixedNodes: 128, Params: dawningcloud.HTCPolicy(40, 1.2),
		}, horizon, nil
	case load == "blue":
		model := synth.SDSCBlue(seed)
		model.Days = days
		jobs, err := model.Generate()
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		return dawningcloud.Workload{
			Name: "blue-htc", Class: job.HTC, Jobs: jobs,
			FixedNodes: 144, Params: dawningcloud.HTCPolicy(80, 1.5),
		}, horizon, nil
	case load == "montage":
		wl, err := dawningcloud.MontageWorkload(seed, 0)
		return wl, 0, err
	default:
		return dawningcloud.Workload{}, 0, fmt.Errorf("unknown workload %q", load)
	}
}

func parseSystem(s string) (dawningcloud.System, error) {
	switch s {
	case "dawningcloud":
		return dawningcloud.DawningCloud, nil
	case "ssp":
		return dawningcloud.SSP, nil
	case "dcs":
		return dawningcloud.DCS, nil
	case "drp":
		return dawningcloud.DRP, nil
	default:
		return 0, fmt.Errorf("unknown system %q", s)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "dcsim: %v\n", err)
	os.Exit(1)
}
