// Command dcsim simulates one system over one workload and prints the
// provider and resource-provider metrics: the single-experiment view of
// the comparison harness.
//
// Usage:
//
//	dcsim -system dawningcloud|ssp|dcs|drp|ssp-spot|...|all -workload nasa|blue|montage
//	      [-b 40] [-r 1.2] [-seed 42] [-days 14] [-capacity 0] [-workers 0]
//	      [-timeout 0] [-progress]
//
// -system resolves case-insensitively against the system registry, so
// every registered system — including extensions registered at runtime —
// is runnable by name; with -system all, every registered system runs
// over the workload concurrently on up to -workers simulations (0 = all
// CPUs). -timeout bounds the wall-clock run time and an interrupt
// (Ctrl-C) cancels in-flight simulations; -progress streams run events
// to stderr.
//
// It can also replay an external trace:
//
//	dcsim -swf trace.swf -fixed 128 -b 40 -r 1.2
//	dcsim -dag workflow.json -fixed 166 -b 10 -r 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	dawningcloud "repro"
	"repro/internal/events"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/synth"
	"repro/internal/workflow"
)

// knownWorkloads is the accepted -workload vocabulary (keep in sync with
// buildWorkload's builtin cases); unknown names are rejected up front
// with usage text and a non-zero exit. -system values are validated
// against the system registry so the vocabulary has a single source of
// truth.
var knownWorkloads = []string{"nasa", "blue", "montage"}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		system   = fs.String("system", "dawningcloud", "registered system name (case-insensitive) or all")
		workers  = fs.Int("workers", 0, "max concurrent simulations for -system all (0 = all CPUs)")
		load     = fs.String("workload", "nasa", "builtin workload: nasa, blue or montage")
		b        = fs.Int("b", 0, "initial nodes B (0 = paper default for the workload)")
		r        = fs.Float64("r", 0, "threshold ratio R (0 = paper default)")
		seed     = fs.Int64("seed", 42, "generation seed (also drives stochastic systems like ssp-spot)")
		days     = fs.Int("days", 14, "trace window in days")
		capacity = fs.Int("capacity", 0, "cloud pool capacity (0 = unconstrained)")
		parts    = fs.Int("partitions", 0, "per-core kernel partitions within one run (0/1 = serial, -1 = one per CPU); results are byte-identical to serial")
		timeout  = fs.Duration("timeout", 0, "wall-clock simulation budget (0 = none); an exceeded budget cancels the runs")
		progress = fs.Bool("progress", false, "stream run progress events to stderr")
		swfPath  = fs.String("swf", "", "replay an SWF trace file instead of a builtin workload")
		dagPath  = fs.String("dag", "", "run a workflow JSON file instead of a builtin workload")
		fixed    = fs.Int("fixed", 0, "fixed RE size for DCS/SSP when replaying external files")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	engine := dawningcloud.DefaultEngine()

	// Reject unknown names before any (potentially slow) workload
	// generation, with the usage text alongside the specific error. The
	// registry owns the vocabulary: its error lists every registered
	// system.
	if *system != "all" && !engine.Has(*system) {
		fmt.Fprintf(stderr, "dcsim: unknown system %q (registered: %s; or all)\n",
			*system, strings.Join(engine.Systems(), ", "))
		fs.Usage()
		return 2
	}
	if *swfPath == "" && *dagPath == "" && !knownName(knownWorkloads, *load) {
		fmt.Fprintf(stderr, "dcsim: unknown workload %q (known: nasa, blue, montage)\n", *load)
		fs.Usage()
		return 2
	}

	wl, horizon, err := buildWorkload(*load, *seed, *days, *swfPath, *dagPath, *fixed)
	if err != nil {
		fmt.Fprintf(stderr, "dcsim: %v\n", err)
		return 1
	}

	// The timeout clock starts here, after workload generation/parsing
	// (which is not context-aware), so -timeout budgets the simulation
	// itself.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *b > 0 {
		wl.Params.InitialNodes = *b
	}
	if *r > 0 {
		wl.Params.ThresholdRatio = *r
	}

	runOpts := []dawningcloud.RunOption{
		dawningcloud.WithOptions(dawningcloud.Options{Horizon: horizon, PoolCapacity: *capacity, Partitions: *parts}),
		dawningcloud.WithSeed(*seed),
		dawningcloud.WithWorkers(*workers),
	}

	if *system == "all" {
		// The multi-system comparison stays on the blocking fan-out; the
		// shared console renderer consumes its event stream directly.
		if *progress {
			runOpts = append(runOpts, dawningcloud.WithEvents(events.Console(stderr, "dcsim:")))
		}
		results, err := engine.RunAll(ctx, nil, []dawningcloud.Workload{wl}, runOpts...)
		if err != nil {
			fmt.Fprintf(stderr, "dcsim: %v\n", err)
			return 1
		}
		for _, res := range results {
			printResult(stdout, res, wl.Name)
		}
		return 0
	}

	// Single runs go through the asynchronous lifecycle: Submit returns a
	// handle whose event stream feeds the shared console renderer, and
	// Result waits under the signal-aware context.
	h, err := engine.Submit(ctx, dawningcloud.SubmitRequest{
		System:    *system,
		Workloads: []dawningcloud.Workload{wl},
	}, runOpts...)
	if err != nil {
		fmt.Fprintf(stderr, "dcsim: %v\n", err)
		return 1
	}
	var stopProgress func()
	if *progress {
		stopProgress = h.Subscribe(events.Console(stderr, "dcsim:"))
	}
	res, err := h.Result(ctx)
	if stopProgress != nil {
		// On a finished run this drains the stream to its terminal event,
		// so progress lines never interleave with the printed result.
		stopProgress()
	}
	if err != nil {
		h.Cancel() // interrupt or timeout: abort the run before exiting
		fmt.Fprintf(stderr, "dcsim: %v\n", err)
		return 1
	}
	printResult(stdout, res.Result, wl.Name)
	return 0
}

func knownName(known []string, name string) bool {
	for _, k := range known {
		if k == name {
			return true
		}
	}
	return false
}

func printResult(w io.Writer, res dawningcloud.Result, workload string) {
	fmt.Fprintf(w, "system: %s  workload: %s  horizon: %dh\n", res.System, workload, res.Horizon/3600)
	for _, p := range res.Providers {
		fmt.Fprintf(w, "provider %s (%v):\n", p.Name, p.Class)
		fmt.Fprintf(w, "  completed jobs:        %d / %d\n", p.Completed, p.Submitted)
		if p.TasksPerSecond > 0 {
			fmt.Fprintf(w, "  tasks per second:      %.2f\n", p.TasksPerSecond)
		}
		fmt.Fprintf(w, "  resource consumption:  %.0f node*hour\n", p.NodeHours)
		fmt.Fprintf(w, "  peak nodes:            %d\n", p.PeakNodes)
		fmt.Fprintf(w, "  nodes adjusted:        %d\n", p.NodesAdjusted)
	}
	fmt.Fprintf(w, "resource provider: total %.0f node*hour, peak %d nodes/hour, %d adjustments, overhead %.0f s (%.1f s/hour), %d rejections\n",
		res.TotalNodeHours, res.PeakNodes, res.TotalNodesAdjusted,
		res.OverheadSeconds, res.OverheadPerHour, res.RejectedRequests)
}

func buildWorkload(load string, seed int64, days int, swfPath, dagPath string, fixed int) (dawningcloud.Workload, int64, error) {
	horizon := int64(days) * sim.Day
	switch {
	case swfPath != "":
		f, err := os.Open(swfPath)
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		defer f.Close()
		trace, err := swf.Parse(f)
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		jobs := trace.Jobs()
		if fixed == 0 {
			fixed = job.MaxNodes(jobs)
		}
		return dawningcloud.Workload{
			Name: "swf-trace", Class: job.HTC, Jobs: jobs,
			FixedNodes: fixed, Params: dawningcloud.HTCPolicy(40, 1.2),
		}, 0, nil
	case dagPath != "":
		f, err := os.Open(dagPath)
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		defer f.Close()
		dag, err := workflow.Decode(f)
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		if fixed == 0 {
			fixed, err = dag.MaxWidth()
			if err != nil {
				return dawningcloud.Workload{}, 0, err
			}
		}
		return dawningcloud.Workload{
			Name: dag.Name, Class: job.MTC, Jobs: dag.Jobs(0),
			FixedNodes: fixed, Params: dawningcloud.MTCPolicy(10, 8),
		}, 0, nil
	case load == "nasa":
		model := synth.NASAiPSC(seed)
		model.Days = days
		jobs, err := model.Generate()
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		return dawningcloud.Workload{
			Name: "nasa-htc", Class: job.HTC, Jobs: jobs,
			FixedNodes: 128, Params: dawningcloud.HTCPolicy(40, 1.2),
		}, horizon, nil
	case load == "blue":
		model := synth.SDSCBlue(seed)
		model.Days = days
		jobs, err := model.Generate()
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		return dawningcloud.Workload{
			Name: "blue-htc", Class: job.HTC, Jobs: jobs,
			FixedNodes: 144, Params: dawningcloud.HTCPolicy(80, 1.5),
		}, horizon, nil
	case load == "montage":
		wl, err := dawningcloud.MontageWorkload(seed, 0)
		return wl, 0, err
	default:
		return dawningcloud.Workload{}, 0, fmt.Errorf("unknown workload %q", load)
	}
}
