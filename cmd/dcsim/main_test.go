package main

import (
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestCLIRejectsUnknownNames pins the strict flag contract: unknown
// -system/-workload values exit non-zero with the specific error plus the
// usage text, instead of running anything.
func TestCLIRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown system", []string{"-system", "vms", "-workload", "nasa"}, `unknown system "vms"`},
		{"case-sensitive system", []string{"-system", "DawningCloud"}, "unknown system"},
		{"unknown workload", []string{"-system", "dcs", "-workload", "mosaic"}, `unknown workload "mosaic"`},
		{"empty workload", []string{"-workload", ""}, "unknown workload"},
		{"undefined flag", []string{"-sustem", "dcs"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(errOut, tc.wantErr) {
				t.Errorf("stderr %q missing %q", errOut, tc.wantErr)
			}
			if !strings.Contains(errOut, "Usage of dcsim") && !strings.Contains(errOut, "-system string") {
				t.Errorf("stderr missing usage text:\n%s", errOut)
			}
			if out != "" {
				t.Errorf("rejected invocation produced output:\n%s", out)
			}
		})
	}
}

// TestCLIExternalFileBypassesWorkloadCheck: with -swf or -dag the
// -workload default is unused and must not be validated against.
func TestCLIExternalFileMissingStillFails(t *testing.T) {
	code, _, errOut := runCLI(t, "-swf", "/no/such/trace.swf")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (runtime error, not usage error)", code)
	}
	if strings.Contains(errOut, "unknown workload") {
		t.Errorf("-swf invocation tripped the workload name check:\n%s", errOut)
	}
}

func TestCLIRunsKnownSystemAndWorkload(t *testing.T) {
	code, out, errOut := runCLI(t, "-system", "dcs", "-workload", "nasa", "-days", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	for _, want := range []string{"system: DCS", "workload: nasa-htc", "completed jobs", "resource provider"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
