package main

import (
	"context"
	"strings"
	"testing"

	dawningcloud "repro"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

// TestCLIRejectsUnknownNames pins the strict flag contract: unknown
// -system/-workload values exit non-zero with the specific error plus the
// usage text, instead of running anything.
func TestCLIRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknown system", []string{"-system", "vms", "-workload", "nasa"}, `unknown system "vms"`},
		{"unknown workload", []string{"-system", "dcs", "-workload", "mosaic"}, `unknown workload "mosaic"`},
		{"empty workload", []string{"-workload", ""}, "unknown workload"},
		{"undefined flag", []string{"-sustem", "dcs"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errOut := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(errOut, tc.wantErr) {
				t.Errorf("stderr %q missing %q", errOut, tc.wantErr)
			}
			if !strings.Contains(errOut, "Usage of dcsim") && !strings.Contains(errOut, "-system string") {
				t.Errorf("stderr missing usage text:\n%s", errOut)
			}
			if out != "" {
				t.Errorf("rejected invocation produced output:\n%s", out)
			}
		})
	}
}

// TestCLIExternalFileBypassesWorkloadCheck: with -swf or -dag the
// -workload default is unused and must not be validated against.
func TestCLIExternalFileMissingStillFails(t *testing.T) {
	code, _, errOut := runCLI(t, "-swf", "/no/such/trace.swf")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (runtime error, not usage error)", code)
	}
	if strings.Contains(errOut, "unknown workload") {
		t.Errorf("-swf invocation tripped the workload name check:\n%s", errOut)
	}
}

func TestCLIRunsKnownSystemAndWorkload(t *testing.T) {
	code, out, errOut := runCLI(t, "-system", "dcs", "-workload", "nasa", "-days", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	for _, want := range []string{"system: DCS", "workload: nasa-htc", "completed jobs", "resource provider"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIUnknownSystemListsRegistry pins the error contract: the
// unknown-system message enumerates the registered names (including the
// ssp-spot extension), so the CLI vocabulary is visibly the registry.
func TestCLIUnknownSystemListsRegistry(t *testing.T) {
	code, _, errOut := runCLI(t, "-system", "vms", "-workload", "nasa")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	for _, want := range []string{"DCS", "SSP", "DRP", "DawningCloud", "ssp-spot", "registered:"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut)
		}
	}
}

// TestCLISystemNameCaseInsensitive: -system resolves through the
// registry case-insensitively but reports the canonical spelling.
func TestCLISystemNameCaseInsensitive(t *testing.T) {
	code, out, errOut := runCLI(t, "-system", "DawningCloud", "-workload", "montage")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(out, "system: DawningCloud") {
		t.Errorf("output missing canonical system name:\n%s", out)
	}
}

// TestCLIRunsSpotExtension runs the shipped registry extension by name —
// no enum value or switch case exists for it anywhere.
func TestCLIRunsSpotExtension(t *testing.T) {
	code, out, errOut := runCLI(t, "-system", "ssp-spot", "-workload", "montage", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	for _, want := range []string{"system: ssp-spot", "workload: montage-mtc", "resource provider"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIRunsTestRegisteredSystem is the extensibility acceptance test
// at the CLI layer: a system registered from this test file — with no
// edits to any dispatch code — is immediately runnable via -system.
func TestCLIRunsTestRegisteredSystem(t *testing.T) {
	name := "cli-echo-test"
	if !dawningcloud.DefaultEngine().Has(name) {
		dawningcloud.DefaultEngine().MustRegister(name, dawningcloud.RunnerFunc(
			func(ctx context.Context, wls []dawningcloud.Workload, opts dawningcloud.Options) (dawningcloud.Result, error) {
				res := dawningcloud.Result{System: name, Horizon: opts.HorizonFor(wls)}
				for _, wl := range wls {
					res.Providers = append(res.Providers, dawningcloud.ProviderResult{
						Name: wl.Name, Class: wl.Class, Submitted: len(wl.Jobs), Completed: len(wl.Jobs),
					})
				}
				return res, nil
			}))
	}
	code, out, errOut := runCLI(t, "-system", name, "-workload", "montage")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(out, "system: "+name) {
		t.Errorf("output missing registered system:\n%s", out)
	}
	if !strings.Contains(out, "completed jobs:        1000 / 1000") {
		t.Errorf("echo runner result not rendered:\n%s", out)
	}
}

// TestCLIProgressStreamsEvents: -progress writes run started/completed
// lines to stderr without polluting stdout.
func TestCLIProgressStreamsEvents(t *testing.T) {
	code, out, errOut := runCLI(t, "-system", "drp", "-workload", "montage", "-progress")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(errOut, "run started: DRP") || !strings.Contains(errOut, "run completed: DRP") {
		t.Errorf("stderr missing progress events:\n%s", errOut)
	}
	if strings.Contains(out, "run started") {
		t.Errorf("progress events leaked to stdout:\n%s", out)
	}
}

// TestCLIRunAllIncludesRegisteredSystems: -system all runs every
// registered system, not a hardcoded four.
func TestCLIRunAllIncludesRegisteredSystems(t *testing.T) {
	code, out, errOut := runCLI(t, "-system", "all", "-workload", "montage")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	for _, want := range []string{"system: DCS", "system: SSP", "system: DRP", "system: DawningCloud", "system: ssp-spot"} {
		if !strings.Contains(out, want) {
			t.Errorf("-system all output missing %q", want)
		}
	}
}
