// Command dcserve runs the simulator as an HTTP service: remote callers
// submit system runs, declarative scenarios and paper-evaluation suites,
// observe them as typed event streams, and fetch structured results —
// the service-provider view of the simulator itself, multiplexing many
// tenants' studies over one engine with content-hash dedup, a bounded
// worker queue with backpressure, and TTL-evicted result caching.
//
// Usage:
//
//	dcserve [-addr :8377] [-workers 0] [-queue 256] [-ttl 15m]
//	        [-max-runs 2048] [-grace 15s] [-quiet]
//	        [-data DIR] [-snapshot-every 4096] [-no-fsync]
//	        [-worker-id local] [-lease 30s] [-max-retries 3]
//
// API (JSON everywhere; see internal/service/api):
//
//	POST   /v1/runs             {"scenario":"paper-baseline"} | {"scenario_spec":{...}}
//	                            | {"system":"DawningCloud","workload":"nasa"}
//	                            | {"experiments":["table2","table3"]}
//	GET    /v1/runs             list runs + service stats
//	                            (?status= filter, ?limit=/?cursor= pagination)
//	GET    /v1/runs/{id}        status; result when done
//	GET    /v1/runs/{id}/events NDJSON event stream (SSE with Accept: text/event-stream)
//	POST   /v1/runs/{id}/tasks  NDJSON task ingestion into a live-fed run
//	DELETE /v1/runs/{id}        cancel
//	GET    /v1/scenarios        built-in scenario catalog
//	GET    /healthz             liveness + dedup/queue/durability counters
//
// Identical submissions share one run: the response's "deduped" flag and
// the /healthz cache-hit counters make the sharing observable. A full
// queue answers 503 with Retry-After. SIGINT/SIGTERM shut down
// gracefully: intake stops, in-flight runs are canceled, and the
// process exits once the workers drain (bounded by -grace).
//
// A scenario with live providers ("source": {"kind":"live"}, with a
// "stream" block) takes its tasks online: POST NDJSON task records to
// /v1/runs/{id}/tasks (strictly validated per record, 503+Retry-After
// when the bounded lane buffer is full) and finish with {"end":true};
// the run emits incremental window_report/window_summary events as each
// accounting window closes, and idle SSE streams carry ": ping"
// keep-alives. Live runs never deduplicate (each owns its feed) and are
// not crash-recoverable (the feed dies with the process). dcscen
// -emit-ndjson generates a compatible feed from any materialized
// provider.
//
// -data makes the service durable: every run's lifecycle is written
// through a checksummed write-ahead log under DIR (compacted into a
// snapshot every -snapshot-every records), and a restart over the same
// directory resumes interrupted runs and serves finished results from
// disk — kill -9 included. Workers hold heartbeat-refreshed leases on
// executing runs; a run whose lease goes -lease stale is re-queued up
// to -max-retries times, then parked in the dead_letter state. -no-fsync
// trades crash safety on power loss for append throughput (the log is
// still written and survives process crashes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	dawningcloud "repro"
	"repro/internal/runstore"
	"repro/internal/service/api"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dcserve", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		addr    = fs.String("addr", ":8377", "listen address")
		workers = fs.Int("workers", 0, "concurrent run executions (0 = all CPUs)")
		queue   = fs.Int("queue", 256, "max queued runs before submissions get 503 (backpressure)")
		ttl     = fs.Duration("ttl", 15*time.Minute, "how long finished runs stay queryable")
		maxRuns = fs.Int("max-runs", 2048, "run-store cap (oldest finished runs evicted beyond it)")
		grace   = fs.Duration("grace", 15*time.Second, "shutdown grace period for draining workers")
		quiet   = fs.Bool("quiet", false, "disable the access/lifecycle log on stderr")

		dataDir    = fs.String("data", "", "durable run-store directory (empty = in-memory only)")
		snapEvery  = fs.Int("snapshot-every", 4096, "compact the WAL into a snapshot every N records (-1 disables)")
		noFsync    = fs.Bool("no-fsync", false, "skip fsync on WAL appends (survives process crashes, not power loss)")
		workerID   = fs.String("worker-id", "local", "name for this process's worker claims in the durable store")
		lease      = fs.Duration("lease", 30*time.Second, "worker lease TTL before a silent run is re-queued")
		maxRetries = fs.Int("max-retries", 3, "stale-claim requeues before a run is dead-lettered")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	engOpts := []dawningcloud.EngineOption{dawningcloud.WithServiceConfig(dawningcloud.ServiceConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		TTL:        *ttl,
		MaxRuns:    *maxRuns,
		WorkerID:   *workerID,
		LeaseTTL:   *lease,
		MaxRetries: *maxRetries,
	})}
	if *dataDir != "" {
		store, err := runstore.Open(runstore.Options{
			Dir:           *dataDir,
			SnapshotEvery: *snapEvery,
			NoSync:        *noFsync,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dcserve: open run store: %v\n", err)
			return 1
		}
		defer store.Close()
		engOpts = append(engOpts, dawningcloud.WithRunStore(store))
		if truncated := store.Stats().TruncatedBytes; truncated > 0 {
			fmt.Fprintf(os.Stderr, "dcserve: run store: truncated %d bytes of torn WAL tail\n", truncated)
		}
	}
	eng := dawningcloud.NewEngine(engOpts...)
	if *dataDir != "" {
		// Force the lazily-created run service up now so recovery (and
		// the worker pool for resumed runs) happens at boot, not on the
		// first request.
		stats := eng.ServiceStats()
		fmt.Fprintf(os.Stderr, "dcserve: run store %s: %d runs restored (%d resumed, %d requeued, %d dead-lettered)\n",
			*dataDir, stats.Stored, stats.RecoveredRuns, stats.Requeues, stats.DeadLetters)
	}
	var apiOpts []api.Option
	if !*quiet {
		apiOpts = append(apiOpts, api.WithLog(os.Stderr))
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: api.New(eng, apiOpts...),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dcserve: listening on %s (workers=%d queue=%d ttl=%v)\n",
		*addr, *workers, *queue, *ttl)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "dcserve: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: cancel the runs first so open event streams
	// reach their terminal run_finished line and close, then drain the
	// HTTP server, all bounded by the grace period.
	fmt.Fprintf(os.Stderr, "dcserve: shutting down (grace %v)\n", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	code := 0
	if err := eng.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dcserve: engine shutdown: %v\n", err)
		code = 1
	}
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "dcserve: http shutdown: %v\n", err)
		code = 1
	}
	<-errc // ListenAndServe returns ErrServerClosed after Shutdown
	fmt.Fprintln(os.Stderr, "dcserve: bye")
	return code
}
