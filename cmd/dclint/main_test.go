package main

import "testing"

// The exit-code contract CI depends on: 0 clean, 1 findings, 2 usage
// errors. Fixture directories must come back dirty for every analyzer
// — a fixture that stops failing means the analyzer stopped looking.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list", []string{"-list"}, 0},
		{"unknown analyzer", []string{"-only", "nosuch"}, 2},
		{"detrand fixture", []string{"./internal/lint/testdata/src/detrand/a"}, 1},
		{"walltime fixture", []string{"./internal/lint/testdata/src/internal/sim"}, 1},
		{"mapiter fixture", []string{"./internal/lint/testdata/src/mapiter/a"}, 1},
		{"ctxfirst fixture", []string{"./internal/lint/testdata/src/ctxfirst/a"}, 1},
		{"deprecated fixture", []string{"./internal/lint/testdata/src/deprecated/a"}, 1},
		{"malformed directives fixture", []string{"./internal/lint/testdata/src/suppress/bad"}, 1},
		{"suppressed fixture is clean", []string{"./internal/lint/testdata/src/suppress/ok"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(tc.args); got != tc.want {
				t.Errorf("dclint %v: exit %d, want %d", tc.args, got, tc.want)
			}
		})
	}
}
