// Command dclint runs the repository's determinism & concurrency
// invariant suite (internal/lint) over Go packages and reports every
// finding compiler-style. CI gates on it: a clean tree exits 0.
//
// Usage:
//
//	dclint [-only analyzer,...] [-list] [packages]
//
// Packages default to ./... resolved against the enclosing module.
// Arguments naming a testdata directory are loaded as fixture
// packages, so `dclint ./internal/lint/testdata/src/detrand` exercises
// an analyzer against its fixtures directly.
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("dclint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dclint [-only analyzer,...] [-list] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := lint.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "dclint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	moduleDir, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dclint: %v\n", err)
		return 2
	}
	loader := lint.NewLoader()
	pkgs, err := loader.LoadPatterns(moduleDir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dclint: %v\n", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dclint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(relativize(moduleDir, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dclint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot locates the enclosing module's directory so package
// patterns resolve the same way no matter where dclint is invoked
// from.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module")
	}
	return filepath.Dir(gomod), nil
}

// relativize shortens absolute file positions to module-relative ones
// for stable, readable output.
func relativize(moduleDir string, d lint.Diagnostic) string {
	s := d.String()
	if rel, err := filepath.Rel(moduleDir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = fmt.Sprintf("%s:%d:%d: [%s] %s", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return s
}
