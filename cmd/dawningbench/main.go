// Command dawningbench regenerates the paper's evaluation: every table and
// figure of Section 4, printed as text and optionally written out as
// .txt/.svg artifacts.
//
// Usage:
//
//	dawningbench [-experiment all|table1|fig9|fig10|fig11|table2|table3|table4|fig12|fig13|fig14|tco
//	              |ext-scale|ext-backfill|ext-provision|extensions]
//	             [-seed N] [-days N] [-out DIR] [-workers N]
//
// Independent simulations (the four system runs and every sweep grid
// point) fan out over up to -workers concurrent workers; 0 uses all CPUs
// and 1 restores the serial reference behaviour. Artifact content is
// identical at any worker count. -progress streams run/cell/table events
// to stderr; an interrupt (Ctrl-C) cancels in-flight simulations.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"repro/internal/events"
	"repro/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "artifact to regenerate (all, table1, fig9..fig14, table2..table4, tco, ext-scale, ext-backfill, ext-provision, extensions)")
		seed       = flag.Int64("seed", 42, "workload generation seed")
		days       = flag.Int("days", 14, "trace window in days (the paper uses 14)")
		outDir     = flag.String("out", "", "directory for .txt/.svg artifacts (optional)")
		workers    = flag.Int("workers", 0, "max concurrent simulations (0 = all CPUs, 1 = serial)")
		progress   = flag.Bool("progress", false, "stream run/cell/table progress events to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	suite := experiments.NewSuite(*seed)
	suite.Days = *days
	suite.Workers = *workers
	if *progress {
		suite.Events = events.WriterSink(os.Stderr, "dawningbench:")
	}

	artifacts, err := collect(ctx, suite, *experiment)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dawningbench: %v\n", err)
		os.Exit(1)
	}
	for _, a := range artifacts {
		fmt.Printf("== %s ==\n", a.Title)
		fmt.Printf("%s\n", a.Text)
		if a.PaperRef != "" {
			fmt.Printf("[%s]\n\n", a.PaperRef)
		}
		if *outDir != "" {
			if err := write(*outDir, a); err != nil {
				fmt.Fprintf(os.Stderr, "dawningbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *outDir != "" {
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
}

func collect(ctx context.Context, suite *experiments.Suite, which string) ([]experiments.Artifact, error) {
	if which == "all" {
		return suite.ArtifactsContext(ctx)
	}
	if which == "extensions" {
		var out []experiments.Artifact
		for _, id := range []string{"ext-scale", "ext-backfill", "ext-provision"} {
			arts, err := collect(ctx, suite, id)
			if err != nil {
				return nil, err
			}
			out = append(out, arts...)
		}
		return out, nil
	}
	steps := map[string]func(context.Context) (experiments.Artifact, error){
		"table1": func(context.Context) (experiments.Artifact, error) { return experiments.Table1(), nil },
		"fig9":   suite.Figure9,
		"fig10":  suite.Figure10,
		"fig11":  suite.Figure11,
		"table2": suite.Table2,
		"table3": suite.Table3,
		"table4": suite.Table4,
		"fig12":  suite.Figure12,
		"fig13":  suite.Figure13,
		"fig14":  suite.Figure14,
		"tco":    func(context.Context) (experiments.Artifact, error) { return experiments.TCO() },
		"ext-scale": func(ctx context.Context) (experiments.Artifact, error) {
			return suite.ScaleArtifact(ctx, 5)
		},
		"ext-backfill": func(ctx context.Context) (experiments.Artifact, error) {
			return suite.AblationBackfill(ctx, experiments.NASAProvider)
		},
		"ext-provision": func(ctx context.Context) (experiments.Artifact, error) {
			return suite.AblationProvision(ctx, experiments.NASAProvider, 160)
		},
	}
	step, ok := steps[which]
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", which)
	}
	a, err := step(ctx)
	if err != nil {
		return nil, err
	}
	return []experiments.Artifact{a}, nil
}

func write(dir string, a experiments.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt := filepath.Join(dir, a.ID+".txt")
	if err := os.WriteFile(txt, []byte(a.Text+"\n["+a.PaperRef+"]\n"), 0o644); err != nil {
		return err
	}
	if a.SVG != "" {
		svg := filepath.Join(dir, a.ID+".svg")
		if err := os.WriteFile(svg, []byte(a.SVG), 0o644); err != nil {
			return err
		}
	}
	return nil
}
