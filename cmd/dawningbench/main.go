// Command dawningbench regenerates the paper's evaluation: every table and
// figure of Section 4, printed as text and optionally written out as
// .txt/.svg artifacts.
//
// Usage:
//
//	dawningbench [-experiment all|table1|fig9|fig10|fig11|table2|table3|table4|fig12|fig13|fig14|tco
//	              |ext-scale|ext-backfill|ext-provision|extensions|kernel]
//	             [-seed N] [-days N] [-out DIR] [-workers N] [-json FILE]
//
// Independent simulations (the four system runs and every sweep grid
// point) fan out over up to -workers concurrent workers; 0 uses all CPUs
// and 1 restores the serial reference behaviour. Artifact content is
// identical at any worker count. -progress streams run/cell/table events
// to stderr; an interrupt (Ctrl-C) cancels in-flight simulations.
//
// The kernel experiment is not a paper artifact: it drives one million
// events through the fast indexed kernel and the refheap reference kernel
// on the identical seeded workload and prints ns/event, allocs/event and
// events/sec for both. With -json FILE the same numbers are written as
// machine-readable JSON (conventionally BENCH_kernel.json, the format CI
// tracks):
//
//	dawningbench -experiment kernel -json BENCH_kernel.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/kernelbench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "artifact to regenerate (all, table1, fig9..fig14, table2..table4, tco, ext-scale, ext-backfill, ext-provision, extensions, kernel)")
		seed       = flag.Int64("seed", 42, "workload generation seed")
		days       = flag.Int("days", 14, "trace window in days (the paper uses 14)")
		outDir     = flag.String("out", "", "directory for .txt/.svg artifacts (optional)")
		workers    = flag.Int("workers", 0, "max concurrent simulations (0 = all CPUs, 1 = serial)")
		progress   = flag.Bool("progress", false, "stream run/cell/table progress events to stderr")
		jsonOut    = flag.String("json", "", "write the kernel experiment's report as JSON to this file (e.g. BENCH_kernel.json)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *experiment == "kernel" {
		// The kernel microbenchmark has a fixed seeded workload; reject
		// explicitly-set flags it would otherwise silently ignore.
		var inapplicable []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed", "days", "out", "workers", "progress":
				inapplicable = append(inapplicable, "-"+f.Name)
			}
		})
		if len(inapplicable) > 0 {
			fmt.Fprintf(os.Stderr, "dawningbench: %s do(es) not apply to -experiment kernel\n",
				strings.Join(inapplicable, ", "))
			os.Exit(2)
		}
		report, err := kernelbench.RunContext(ctx, kernelbench.DefaultEvents)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dawningbench: kernel benchmark aborted: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("== Kernel throughput: fast vs reference ==\n%s\n", report.Text())
		if *jsonOut != "" {
			if err := report.WriteJSON(*jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "dawningbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("kernel report written to %s\n", *jsonOut)
		}
		return
	}
	if *jsonOut != "" {
		fmt.Fprintf(os.Stderr, "dawningbench: -json applies only to -experiment kernel\n")
		os.Exit(2)
	}

	suite := experiments.NewSuite(*seed)
	suite.Days = *days
	suite.Workers = *workers
	if *progress {
		suite.Events = events.WriterSink(os.Stderr, "dawningbench:")
	}

	artifacts, err := collect(ctx, suite, *experiment)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dawningbench: %v\n", err)
		os.Exit(1)
	}
	for _, a := range artifacts {
		fmt.Printf("== %s ==\n", a.Title)
		fmt.Printf("%s\n", a.Text)
		if a.PaperRef != "" {
			fmt.Printf("[%s]\n\n", a.PaperRef)
		}
		if *outDir != "" {
			if err := write(*outDir, a); err != nil {
				fmt.Fprintf(os.Stderr, "dawningbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *outDir != "" {
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
}

func collect(ctx context.Context, suite *experiments.Suite, which string) ([]experiments.Artifact, error) {
	if which == "all" {
		return suite.ArtifactsContext(ctx)
	}
	if which == "extensions" {
		var out []experiments.Artifact
		for _, id := range []string{"ext-scale", "ext-backfill", "ext-provision"} {
			arts, err := collect(ctx, suite, id)
			if err != nil {
				return nil, err
			}
			out = append(out, arts...)
		}
		return out, nil
	}
	steps := map[string]func(context.Context) (experiments.Artifact, error){
		"table1": func(context.Context) (experiments.Artifact, error) { return experiments.Table1(), nil },
		"fig9":   suite.Figure9,
		"fig10":  suite.Figure10,
		"fig11":  suite.Figure11,
		"table2": suite.Table2,
		"table3": suite.Table3,
		"table4": suite.Table4,
		"fig12":  suite.Figure12,
		"fig13":  suite.Figure13,
		"fig14":  suite.Figure14,
		"tco":    func(context.Context) (experiments.Artifact, error) { return experiments.TCO() },
		"ext-scale": func(ctx context.Context) (experiments.Artifact, error) {
			return suite.ScaleArtifact(ctx, 5)
		},
		"ext-backfill": func(ctx context.Context) (experiments.Artifact, error) {
			return suite.AblationBackfill(ctx, experiments.NASAProvider)
		},
		"ext-provision": func(ctx context.Context) (experiments.Artifact, error) {
			return suite.AblationProvision(ctx, experiments.NASAProvider, 160)
		},
	}
	step, ok := steps[which]
	if !ok {
		return nil, fmt.Errorf("unknown experiment %q", which)
	}
	a, err := step(ctx)
	if err != nil {
		return nil, err
	}
	return []experiments.Artifact{a}, nil
}

func write(dir string, a experiments.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt := filepath.Join(dir, a.ID+".txt")
	if err := os.WriteFile(txt, []byte(a.Text+"\n["+a.PaperRef+"]\n"), 0o644); err != nil {
		return err
	}
	if a.SVG != "" {
		svg := filepath.Join(dir, a.ID+".svg")
		if err := os.WriteFile(svg, []byte(a.SVG), 0o644); err != nil {
			return err
		}
	}
	return nil
}
