// Command dawningbench regenerates the paper's evaluation: every table and
// figure of Section 4, printed as text and optionally written out as
// .txt/.svg artifacts.
//
// Usage:
//
//	dawningbench [-experiment all|table1|fig9|fig10|fig11|table2|table3|table4|fig12|fig13|fig14|tco
//	              |ext-scale|ext-backfill|ext-provision|extensions|kernel|partition]
//	             [-seed N] [-days N] [-out DIR] [-workers N] [-json FILE]
//
// Independent simulations (the four system runs and every sweep grid
// point) fan out over up to -workers concurrent workers; 0 uses all CPUs
// and 1 restores the serial reference behaviour. Artifact content is
// identical at any worker count. -progress streams run/cell/table events
// to stderr; an interrupt (Ctrl-C) cancels in-flight simulations.
//
// The kernel experiment is not a paper artifact: it drives one million
// events through the fast indexed kernel and the refheap reference kernel
// on the identical seeded workload and prints ns/event, allocs/event and
// events/sec for both. With -json FILE the same numbers are written as
// machine-readable JSON (conventionally BENCH_kernel.json, the format CI
// tracks):
//
//	dawningbench -experiment kernel -json BENCH_kernel.json
//
// The partition experiment measures the multi-core lockstep driver: the
// same workload on one engine vs one kernel partition per CPU (capped at
// 8), reported as BENCH_partition.json:
//
//	dawningbench -experiment partition -json BENCH_partition.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	dawningcloud "repro"
	"repro/internal/events"
	"repro/internal/experiments"
	"repro/internal/kernelbench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "artifact to regenerate (all, table1, fig9..fig14, table2..table4, tco, ext-scale, ext-backfill, ext-provision, extensions, kernel, partition)")
		seed       = flag.Int64("seed", 42, "workload generation seed")
		days       = flag.Int("days", 14, "trace window in days (the paper uses 14)")
		outDir     = flag.String("out", "", "directory for .txt/.svg artifacts (optional)")
		workers    = flag.Int("workers", 0, "max concurrent simulations (0 = all CPUs, 1 = serial)")
		progress   = flag.Bool("progress", false, "stream run/cell/table progress events to stderr")
		jsonOut    = flag.String("json", "", "write the kernel experiment's report as JSON to this file (e.g. BENCH_kernel.json)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *experiment == "kernel" || *experiment == "partition" {
		// The microbenchmarks have fixed seeded workloads; reject
		// explicitly-set flags they would otherwise silently ignore.
		var inapplicable []string
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "seed", "days", "out", "workers", "progress":
				inapplicable = append(inapplicable, "-"+f.Name)
			}
		})
		if len(inapplicable) > 0 {
			fmt.Fprintf(os.Stderr, "dawningbench: %s do(es) not apply to -experiment %s\n",
				strings.Join(inapplicable, ", "), *experiment)
			os.Exit(2)
		}
		var (
			text string
			save func(path string) error
		)
		if *experiment == "kernel" {
			report, err := kernelbench.RunContext(ctx, kernelbench.DefaultEvents)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dawningbench: kernel benchmark aborted: %v\n", err)
				os.Exit(1)
			}
			text = "== Kernel throughput: fast vs reference ==\n" + report.Text()
			save = report.WriteJSON
		} else {
			report, err := kernelbench.RunPartition(ctx, kernelbench.DefaultEvents, 0)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dawningbench: partition benchmark aborted: %v\n", err)
				os.Exit(1)
			}
			text = "== Partitioned kernel throughput: 1 core vs all cores ==\n" + report.Text()
			save = report.WriteJSON
		}
		fmt.Println(text)
		if *jsonOut != "" {
			if err := save(*jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "dawningbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%s report written to %s\n", *experiment, *jsonOut)
		}
		return
	}
	if *jsonOut != "" {
		fmt.Fprintf(os.Stderr, "dawningbench: -json applies only to -experiment kernel or partition\n")
		os.Exit(2)
	}

	// SubmitRequest treats Seed/Days zero as "unset" (the paper
	// defaults); an explicit zero would be silently remapped, so reject
	// it instead of producing misleading artifacts.
	var zeroed []string
	flag.Visit(func(f *flag.Flag) {
		if (f.Name == "seed" && *seed == 0) || (f.Name == "days" && *days == 0) {
			zeroed = append(zeroed, "-"+f.Name)
		}
	})
	if len(zeroed) > 0 {
		fmt.Fprintf(os.Stderr, "dawningbench: %s must be non-zero (zero means the paper default)\n",
			strings.Join(zeroed, ", "))
		os.Exit(2)
	}

	// The evaluation runs as one suite request through the asynchronous
	// lifecycle: "all"/"extensions"/single IDs expand inside the engine
	// (experiments.ExpandArtifactIDs), and -progress consumes the
	// handle's event stream through the shared console renderer.
	h, err := dawningcloud.DefaultEngine().Submit(ctx, dawningcloud.SubmitRequest{
		Experiments: []string{*experiment},
		Seed:        *seed,
		Days:        *days,
	}, dawningcloud.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintf(os.Stderr, "dawningbench: %v\n", err)
		os.Exit(1)
	}
	var stopProgress func()
	if *progress {
		stopProgress = h.Subscribe(events.Console(os.Stderr, "dawningbench:"))
	}
	res, err := h.Result(ctx)
	if stopProgress != nil {
		// On a finished run this drains the stream to its terminal event,
		// so progress lines never interleave with the printed artifacts.
		stopProgress()
	}
	if err != nil {
		h.Cancel() // interrupt: abort in-flight simulations before exiting
		fmt.Fprintf(os.Stderr, "dawningbench: %v\n", err)
		os.Exit(1)
	}
	for _, a := range res.Artifacts {
		fmt.Printf("== %s ==\n", a.Title)
		fmt.Printf("%s\n", a.Text)
		if a.PaperRef != "" {
			fmt.Printf("[%s]\n\n", a.PaperRef)
		}
		if *outDir != "" {
			if err := write(*outDir, a); err != nil {
				fmt.Fprintf(os.Stderr, "dawningbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if *outDir != "" {
		fmt.Printf("artifacts written to %s\n", *outDir)
	}
}

func write(dir string, a experiments.Artifact) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt := filepath.Join(dir, a.ID+".txt")
	if err := os.WriteFile(txt, []byte(a.Text+"\n["+a.PaperRef+"]\n"), 0o644); err != nil {
		return err
	}
	if a.SVG != "" {
		svg := filepath.Join(dir, a.ID+".svg")
		if err := os.WriteFile(svg, []byte(a.SVG), 0o644); err != nil {
			return err
		}
	}
	return nil
}
