package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/swf"
	"repro/internal/synth"
	"repro/internal/workflow"
)

// TestSWFRoundTrip pins the tracegen ↔ swf contract: a generated SWF
// file parses back to the exact job set the synthesizer produced —
// same count, same submit/run/procs per job — so external tools and the
// simulator see identical workloads.
func TestSWFRoundTrip(t *testing.T) {
	for _, kind := range []string{"nasa", "blue"} {
		t.Run(kind, func(t *testing.T) {
			const seed, days = 42, 3
			var buf bytes.Buffer
			if err := generate(kind, seed, days, 0, &buf); err != nil {
				t.Fatalf("generate: %v", err)
			}

			model := synth.NASAiPSC(seed)
			if kind == "blue" {
				model = synth.SDSCBlue(seed)
			}
			model.Days = days
			want, err := model.Generate()
			if err != nil {
				t.Fatal(err)
			}

			trace, err := swf.Parse(&buf)
			if err != nil {
				t.Fatalf("generated SWF does not parse: %v", err)
			}
			if got := trace.Header.Field("MaxNodes"); !strings.Contains(got, "1") {
				t.Errorf("header MaxNodes = %q", got)
			}
			got := trace.Jobs()
			if len(got) != len(want) {
				t.Fatalf("round trip changed job count: %d -> %d", len(want), len(got))
			}
			for i := range want {
				if got[i].Submit != want[i].Submit || got[i].Runtime != want[i].Runtime ||
					got[i].Nodes != want[i].Nodes {
					t.Fatalf("job %d changed: generated {submit %d run %d nodes %d}, parsed {submit %d run %d nodes %d}",
						i, want[i].Submit, want[i].Runtime, want[i].Nodes,
						got[i].Submit, got[i].Runtime, got[i].Nodes)
				}
			}
		})
	}
}

// TestWorkflowRoundTrip: the DAG kinds must emit JSON that decodes to a
// structurally identical, valid workflow.
func TestWorkflowRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := generate("cybershake", 7, 0, 200, &buf); err != nil {
		t.Fatalf("generate: %v", err)
	}
	dag, err := workflow.Decode(&buf)
	if err != nil {
		t.Fatalf("generated workflow JSON does not decode: %v", err)
	}
	gen, _ := workflow.Generators["cybershake"]
	want, err := gen(7, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(dag.Tasks) != len(want.Tasks) {
		t.Fatalf("round trip changed task count: %d -> %d", len(want.Tasks), len(dag.Tasks))
	}
	for i := range want.Tasks {
		if dag.Tasks[i].ID != want.Tasks[i].ID || dag.Tasks[i].Runtime != want.Tasks[i].Runtime {
			t.Fatalf("task %d changed: %+v -> %+v", i, want.Tasks[i], dag.Tasks[i])
		}
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	var buf bytes.Buffer
	if err := generate("fortran", 1, 1, 1, &buf); err == nil {
		t.Error("unknown kind accepted")
	}
}
