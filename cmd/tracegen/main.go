// Command tracegen emits the reproduction's synthetic workloads as files:
// HTC traces in Standard Workload Format (the Parallel Workloads Archive
// format, so real archive traces are interchangeable) and Montage workflows
// as the job emulator's JSON.
//
// Usage:
//
//	tracegen -kind nasa|blue -seed 42 -days 14 -o trace.swf
//	tracegen -kind montage|cybershake|epigenomics|ligo -seed 42 -tasks 1000 -o workflow.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/swf"
	"repro/internal/synth"
	"repro/internal/workflow"
)

func main() {
	var (
		kind  = flag.String("kind", "nasa", "workload kind: nasa, blue, montage, cybershake, epigenomics or ligo")
		seed  = flag.Int64("seed", 42, "generation seed")
		days  = flag.Int("days", 14, "trace window in days (HTC kinds)")
		out   = flag.String("o", "", "output file (default stdout)")
		tasks = flag.Int("tasks", 1000, "approximate task count (montage)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	if err := generate(*kind, *seed, *days, *tasks, w); err != nil {
		fail(err)
	}
}

// generate writes the requested workload to w: SWF text for the HTC
// trace kinds, workflow JSON for the DAG kinds.
func generate(kind string, seed int64, days, tasks int, w io.Writer) error {
	switch kind {
	case "nasa", "blue":
		model := synth.NASAiPSC(seed)
		if kind == "blue" {
			model = synth.SDSCBlue(seed)
		}
		model.Days = days
		jobs, err := model.Generate()
		if err != nil {
			return err
		}
		trace := swf.FromJobs(jobs,
			fmt.Sprintf(" Synthetic %s trace, seed %d, %d days", model.Name, seed, days),
			fmt.Sprintf(" MaxNodes: %d", model.MachineNodes),
			fmt.Sprintf(" TargetUtilization: %.3f", model.TargetUtil),
		)
		return swf.Write(w, trace)
	default:
		gen, ok := workflow.Generators[kind]
		if !ok {
			return fmt.Errorf("unknown kind %q", kind)
		}
		dag, err := gen(seed, tasks)
		if err != nil {
			return err
		}
		return workflow.Encode(w, dag)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
