package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListBuiltins(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"paper-baseline", "scale-10", "blue-heavy", "mtc-burst", "mixed-federation"} {
		if !strings.Contains(out, name) {
			t.Errorf("listing missing %s:\n%s", name, out)
		}
	}
}

func TestDumpRoundTripsThroughFile(t *testing.T) {
	code, out, _ := runCLI(t, "-dump", "mtc-burst")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	// A dumped builtin must be a valid spec file.
	path := filepath.Join(t.TempDir(), "dumped.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	code, runOut, errOut := runCLI(t, "-scenario", path, "-workers", "2")
	if code != 0 {
		t.Fatalf("running dumped spec: exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(runOut, "scenario: mtc-burst") {
		t.Errorf("output missing header:\n%s", runOut)
	}
}

func TestMissingScenarioFlagShowsUsage(t *testing.T) {
	code, _, errOut := runCLI(t)
	if code == 0 {
		t.Fatal("no arguments accepted")
	}
	if !strings.Contains(errOut, "usage: dcscen") {
		t.Errorf("stderr missing usage text:\n%s", errOut)
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	code, _, errOut := runCLI(t, "-scenario", "does-not-exist")
	if code == 0 {
		t.Fatal("unknown scenario accepted")
	}
	if !strings.Contains(errOut, "paper-baseline") {
		t.Errorf("error does not list built-ins:\n%s", errOut)
	}
}

func TestInvalidSpecFileReportsFieldError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	src := `{"name":"bad","days":0,"providers":[
		{"name":"p","source":{"kind":"synth","model":"nasa"},"policy":{"b":10,"r":-1}}]}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-scenario", path)
	if code == 0 {
		t.Fatal("invalid spec accepted")
	}
	if !strings.Contains(errOut, "policy.r") {
		t.Errorf("error not field-level:\n%s", errOut)
	}
}

func TestRunWritesReportFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "mini.json")
	report := filepath.Join(dir, "report.txt")
	src := `{"name":"mini","days":1,"systems":["DCS","DawningCloud"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-scenario", spec, "-workers", "1", "-out", report)
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "provider p") {
		t.Errorf("report file missing provider table:\n%s", data)
	}
	if !strings.Contains(out, "report written to") {
		t.Errorf("stdout missing confirmation:\n%s", out)
	}
}
