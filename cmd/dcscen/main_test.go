package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListBuiltins(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for _, name := range []string{"paper-baseline", "scale-10", "scale-100", "million-task", "blue-heavy", "mtc-burst", "mixed-federation", "federation-baseline", "consolidation-vs-federation"} {
		if !strings.Contains(out, name) {
			t.Errorf("listing missing %s:\n%s", name, out)
		}
	}
}

func TestDumpRoundTripsThroughFile(t *testing.T) {
	code, out, _ := runCLI(t, "-dump", "mtc-burst")
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	// A dumped builtin must be a valid spec file.
	path := filepath.Join(t.TempDir(), "dumped.json")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	code, runOut, errOut := runCLI(t, "-scenario", path, "-workers", "2")
	if code != 0 {
		t.Fatalf("running dumped spec: exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(runOut, "scenario: mtc-burst") {
		t.Errorf("output missing header:\n%s", runOut)
	}
}

func TestMissingScenarioFlagShowsUsage(t *testing.T) {
	code, _, errOut := runCLI(t)
	if code == 0 {
		t.Fatal("no arguments accepted")
	}
	if !strings.Contains(errOut, "usage: dcscen") {
		t.Errorf("stderr missing usage text:\n%s", errOut)
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	code, _, errOut := runCLI(t, "-scenario", "does-not-exist")
	if code == 0 {
		t.Fatal("unknown scenario accepted")
	}
	if !strings.Contains(errOut, "paper-baseline") {
		t.Errorf("error does not list built-ins:\n%s", errOut)
	}
}

func TestInvalidSpecFileReportsFieldError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	src := `{"name":"bad","days":0,"providers":[
		{"name":"p","source":{"kind":"synth","model":"nasa"},"policy":{"b":10,"r":-1}}]}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-scenario", path)
	if code == 0 {
		t.Fatal("invalid spec accepted")
	}
	if !strings.Contains(errOut, "policy.r") {
		t.Errorf("error not field-level:\n%s", errOut)
	}
}

func TestRunWritesReportFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "mini.json")
	report := filepath.Join(dir, "report.txt")
	src := `{"name":"mini","days":1,"systems":["DCS","DawningCloud"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-scenario", spec, "-workers", "1", "-out", report)
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "provider p") {
		t.Errorf("report file missing provider table:\n%s", data)
	}
	if !strings.Contains(out, "report written to") {
		t.Errorf("stdout missing confirmation:\n%s", out)
	}
}

// TestJSONReportWritesStructuredReport: -json writes the structured
// report (the dcserve wire object) whose fields match the rendered run.
func TestJSONReportWritesStructuredReport(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "mini.json")
	jsonPath := filepath.Join(dir, "report.json")
	src := `{"name":"mini-json","days":1,"systems":["DCS","DawningCloud"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-scenario", spec, "-workers", "2", "-json", jsonPath)
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(out, "JSON report written to") {
		t.Errorf("stdout missing confirmation:\n%s", out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Spec struct {
			Name string `json:"name"`
		}
		Systems     []string
		Simulations int64
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, data)
	}
	if report.Spec.Name != "mini-json" || len(report.Systems) != 2 || report.Simulations != 2 {
		t.Errorf("report content wrong: %+v", report)
	}
}

// TestOutUnwritablePathFailsAfterRun pins the -out error path: a report
// that cannot be written exits non-zero with the OS error, and the
// rendered report still reaches stdout so the run is not lost.
func TestOutUnwritablePathFails(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "mini.json")
	src := `{"name":"mini","days":1,"systems":["DCS"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, "missing-subdir", "report.txt")
	code, out, errOut := runCLI(t, "-scenario", spec, "-workers", "1", "-out", target)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, "missing-subdir") {
		t.Errorf("stderr missing the failing path:\n%s", errOut)
	}
	if !strings.Contains(out, "scenario: mini") {
		t.Errorf("stdout lost the rendered report:\n%s", out)
	}
	if strings.Contains(out, "report written to") {
		t.Errorf("stdout claims success despite write failure:\n%s", out)
	}
}

// TestOutOverwritesExistingFile: -out replaces a pre-existing report
// wholesale instead of appending or refusing.
func TestOutOverwritesExistingFile(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "mini.json")
	report := filepath.Join(dir, "report.txt")
	src := `{"name":"mini","days":1,"systems":["DCS"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(report, []byte("STALE PREVIOUS CONTENT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "-scenario", spec, "-workers", "1", "-out", report)
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "STALE PREVIOUS CONTENT") {
		t.Errorf("old report content survived the overwrite:\n%s", data)
	}
	if !strings.Contains(string(data), "scenario: mini") {
		t.Errorf("new report content missing:\n%s", data)
	}
}

// TestUnknownSystemInSpecListsRegistry: a spec naming an unregistered
// system fails validation with the registry's available-names list.
func TestUnknownSystemInSpecListsRegistry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad-system.json")
	src := `{"name":"bad-system","days":1,"systems":["DCS","warp-drive"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-scenario", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut, `unknown system "warp-drive"`) {
		t.Errorf("stderr missing the unknown-system error:\n%s", errOut)
	}
	for _, want := range []string{"DCS", "SSP", "DRP", "DawningCloud", "ssp-spot"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("stderr missing registered system %q:\n%s", want, errOut)
		}
	}
	if out != "" {
		t.Errorf("failed validation produced stdout output:\n%s", out)
	}
}

// TestSpecCanRunSpotExtension: scenario specs reach registered
// extensions by name — here the shipped ssp-spot system.
func TestSpecCanRunSpotExtension(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spot.json")
	src := `{"name":"spot-study","days":1,"seed":7,"systems":["SSP","ssp-spot"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-scenario", path, "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(out, "ssp-spot") {
		t.Errorf("report missing ssp-spot results:\n%s", out)
	}
}

// TestProgressStreamsCellEvents: -progress reports cell completions on
// stderr while stdout stays a clean report.
func TestProgressStreamsCellEvents(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "mini.json")
	src := `{"name":"mini","days":1,"systems":["DCS","DawningCloud"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`
	if err := os.WriteFile(spec, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "-scenario", spec, "-workers", "1", "-progress")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut)
	}
	if !strings.Contains(errOut, "cell 1/2 done") || !strings.Contains(errOut, "cell 2/2 done") {
		t.Errorf("stderr missing cell progress:\n%s", errOut)
	}
	if strings.Contains(out, "cell 1/2") {
		t.Errorf("progress leaked to stdout:\n%s", out)
	}
}
