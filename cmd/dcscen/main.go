// Command dcscen runs a declarative scenario: an n-provider × m-system
// simulation study described by a JSON spec file or a built-in name,
// executed over a bounded worker pool and reported as the paper-style
// provider tables, resource-provider totals and economies-of-scale
// summary.
//
// Usage:
//
//	dcscen -scenario paper-baseline [-workers 0] [-out report.txt] [-json report.json] [-progress]
//	dcscen -scenario my-study.json -workers 4
//	dcscen -scenario my-study.json -emit-ndjson org-nasa > feed.ndjson
//	dcscen -list
//	dcscen -dump scale-10 > my-study.json
//
// -emit-ndjson compiles the scenario and prints the named provider's
// tasks as an NDJSON live feed — one task record per line plus the
// {"end":true} end-of-stream record — ready to POST to dcserve's
// /v1/runs/{id}/tasks ingestion endpoint of a live-fed run. That makes
// a materialized provider and its live twin byte-comparable: feed the
// emitted tasks to a spec whose provider is {"kind":"live"} and the
// served report matches this scenario's -json output.
//
// -json writes the structured report (the same object dcserve returns
// from GET /v1/runs/{id}) as indented JSON, so a served run and a local
// run are directly diffable.
//
// Built-in scenarios: paper-baseline (the paper's evaluation; reproduces
// Tables 2-4 exactly), scale-10 (ten-provider economies-of-scale curve),
// scale-100 (one hundred providers consolidated in one run), million-task
// (a single ≈10⁶-task organization stressing the event loop), blue-heavy,
// mtc-burst, mixed-federation, federation-baseline (the paper's three
// organizations routed across three shared-clock DawningCloud instances)
// and consolidation-vs-federation (one platform vs a least-loaded
// three-instance federation). A spec's "systems" list
// may name any registered system (including extensions like "ssp-spot");
// unknown names fail validation with the registry's list. A spec's
// "federation" block routes providers across N instances of one system
// behind a shared clock (see internal/clustersim). -progress
// streams cell-completion events to stderr as the study runs, and an
// interrupt (Ctrl-C) cancels in-flight simulations.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	dawningcloud "repro"
	"repro/internal/events"
	"repro/internal/scenario"
	"repro/internal/stream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dcscen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		ref      = fs.String("scenario", "", "scenario to run: a built-in name or a JSON spec file path")
		workers  = fs.Int("workers", 0, "max concurrent simulations (0 = all CPUs, 1 = serial)")
		parts    = fs.Int("partitions", 0, "per-core kernel partitions within each cell (0 = as the spec says, -1 = one per CPU); results are byte-identical to serial")
		out      = fs.String("out", "", "also write the report to this file")
		jsonOut  = fs.String("json", "", "also write the structured report as JSON to this file")
		list     = fs.Bool("list", false, "list built-in scenarios and exit")
		dump     = fs.String("dump", "", "print a built-in scenario's JSON spec and exit")
		progress = fs.Bool("progress", false, "stream cell/run progress events to stderr")
		emit     = fs.String("emit-ndjson", "", "print the named provider's compiled tasks as an NDJSON live feed and exit (no run)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: dcscen -scenario name|file.json [-workers N] [-out report.txt] [-json report.json] [-progress]\n")
		fmt.Fprintf(stderr, "       dcscen -list | -dump name\n\n")
		fs.PrintDefaults()
		fmt.Fprintf(stderr, "\nbuilt-in scenarios: %s\n", strings.Join(dawningcloud.ScenarioNames(), ", "))
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *list:
		for _, name := range dawningcloud.ScenarioNames() {
			s, err := dawningcloud.LoadScenario(name)
			if err != nil {
				fmt.Fprintf(stderr, "dcscen: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "%-18s %s\n", name, s.Description)
		}
		return 0
	case *dump != "":
		src, err := dawningcloud.ScenarioJSON(*dump)
		if err != nil {
			fmt.Fprintf(stderr, "dcscen: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout, src)
		return 0
	case *ref == "":
		fmt.Fprintf(stderr, "dcscen: -scenario is required\n")
		fs.Usage()
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	spec, err := dawningcloud.LoadScenario(*ref)
	if err != nil {
		fmt.Fprintf(stderr, "dcscen: %v\n", err)
		return 1
	}
	if *parts != 0 {
		spec.Partitions = *parts
	}

	if *emit != "" {
		// Lower the spec exactly like a run would (same generators, same
		// seeds), then print one provider's jobs as an ingestible feed.
		// Records carry no workload lane name: a single-lane live run
		// needs no routing, and multi-lane producers filter per provider.
		c, err := scenario.Compile(spec)
		if err != nil {
			fmt.Fprintf(stderr, "dcscen: %v\n", err)
			return 1
		}
		for i := range c.Workloads {
			if c.Workloads[i].Name != *emit {
				continue
			}
			if c.Workloads[i].Class != dawningcloud.HTC {
				fmt.Fprintf(stderr, "dcscen: provider %q is MTC; live feeds are HTC-only (task records carry no dependencies)\n", *emit)
				return 1
			}
			if err := stream.WriteNDJSON(stdout, "", c.Workloads[i].Jobs); err != nil {
				fmt.Fprintf(stderr, "dcscen: %v\n", err)
				return 1
			}
			return 0
		}
		names := make([]string, len(c.Workloads))
		for i := range c.Workloads {
			names[i] = c.Workloads[i].Name
		}
		fmt.Fprintf(stderr, "dcscen: no provider %q in scenario %s (providers: %s)\n",
			*emit, spec.Name, strings.Join(names, ", "))
		return 1
	}

	// The study runs through the asynchronous lifecycle: Submit returns a
	// handle whose event stream feeds the shared console renderer (cell
	// completions carry the useful signal, so RunStarted is filtered),
	// and Result waits under the signal-aware context.
	h, err := dawningcloud.DefaultEngine().Submit(ctx,
		dawningcloud.SubmitRequest{Scenario: spec}, dawningcloud.WithWorkers(*workers))
	if err != nil {
		fmt.Fprintf(stderr, "dcscen: %v\n", err)
		return 1
	}
	var stopProgress func()
	if *progress {
		stopProgress = h.Subscribe(events.Console(stderr, "dcscen:", events.SkipRunStarted()))
	}
	res, err := h.Result(ctx)
	if stopProgress != nil {
		// On a finished run this drains the stream to its terminal event,
		// so progress lines never interleave with the printed report.
		stopProgress()
	}
	if err != nil {
		h.Cancel() // interrupt: abort in-flight simulations before exiting
		fmt.Fprintf(stderr, "dcscen: %v\n", err)
		return 1
	}
	report := res.Report
	text := report.Render()
	fmt.Fprint(stdout, text)
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "dcscen: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "dcscen: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "JSON report written to %s\n", *jsonOut)
	}
	if *out != "" {
		if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
			fmt.Fprintf(stderr, "dcscen: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	return 0
}
