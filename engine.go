package dawningcloud

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/runstore"
	"repro/internal/service"
	"repro/internal/stream"
	"repro/internal/systems"

	// The shipped registry extension: registers the "ssp-spot" system.
	_ "repro/internal/spot"
)

// Runner simulates one system over a workload set; implementing it is
// how new usage models plug into the Engine. Implementations must treat
// workloads as read-only, honor context cancellation (an aborted run
// returns an error wrapping ctx.Err()), and be safe for concurrent use.
type Runner = registry.Runner

// RunnerFunc adapts a plain function to the Runner interface.
type RunnerFunc = registry.Func

// Event is one progress notification from an observable run. The
// concrete types are RunStartedEvent, RunCompletedEvent,
// CellCompletedEvent and TableRenderedEvent.
type Event = events.Event

// The typed events an Engine (and the experiment suite and scenario
// runner) emit.
type (
	// RunStartedEvent announces one simulation starting.
	RunStartedEvent = events.RunStarted
	// RunCompletedEvent announces one simulation finishing.
	RunCompletedEvent = events.RunCompleted
	// CellCompletedEvent reports progress through a multi-cell study.
	CellCompletedEvent = events.CellCompleted
	// TableRenderedEvent announces a finished table or figure.
	TableRenderedEvent = events.TableRendered
)

// Engine runs registered systems by name. It wraps a system registry —
// DefaultEngine shares the process-wide one; NewEngine snapshots it —
// and executes runs through a shared run service: Submit starts work
// asynchronously and returns a RunHandle; the blocking methods (Run,
// RunAll, Sweep) are thin wrappers executing the same lifecycle inline
// on the caller's goroutine. Per-call functional options configure
// simulation options, worker counts, seeds and event sinks.
type Engine struct {
	reg *registry.Registry

	svcCfg  ServiceConfig
	store   RunStore
	svcOnce sync.Once
	svc     *service.Service

	// feeds maps live-fed run IDs to their task feeds (the producer half
	// of the runs' live sources); entries live from Submit until the run
	// turns terminal.
	feedMu sync.Mutex
	feeds  map[string]*stream.Feed
}

var defaultEngine = &Engine{reg: registry.Default}

// DefaultEngine returns the engine over the process-wide registry: the
// four paper systems, ssp-spot, and anything registered afterwards.
// Systems registered on it are visible to `dcsim -system` and scenario
// specs in the same process.
func DefaultEngine() *Engine { return defaultEngine }

// NewEngine returns an engine over an independent snapshot of the
// default registry: it starts with every currently registered system,
// and later registrations on either side stay isolated. Options
// configure the engine's run service (see WithServiceConfig).
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{reg: registry.Default.Snapshot()}
	for _, o := range opts {
		o(e)
	}
	return e
}

// EngineOption configures a new Engine.
type EngineOption func(*Engine)

// ServiceConfig tunes the engine's run service: the asynchronous
// lifecycle behind Submit (and, inline, behind the blocking methods).
// Zero fields take the documented defaults.
type ServiceConfig struct {
	// Workers bounds how many submitted runs execute concurrently
	// (default: all CPUs). It does not limit the blocking methods,
	// which execute on their caller's goroutine.
	Workers int
	// QueueDepth bounds how many submitted runs may wait for a worker;
	// a full queue rejects Submit with ErrBusy (default 256).
	QueueDepth int
	// TTL evicts finished runs from the store this long after
	// completion (default 15 minutes; negative keeps them forever).
	TTL time.Duration
	// MaxRuns caps the run store, evicting the oldest finished runs
	// beyond it (default 2048).
	MaxRuns int
	// WorkerID names this process's worker claims in a durable run
	// store (default "local"); see WithRunStore.
	WorkerID string
	// LeaseTTL is how stale a running run's heartbeat may grow before
	// the service's reconciler treats its worker as lost and re-queues
	// the run (default 30s). HeartbeatEvery and ReconcileEvery default
	// to LeaseTTL/3 and LeaseTTL/2.
	LeaseTTL       time.Duration
	HeartbeatEvery time.Duration
	ReconcileEvery time.Duration
	// MaxRetries bounds self-healing: a run may be re-queued this many
	// times after stale claims; the next one dead-letters it (default
	// 3; negative means no retries).
	MaxRetries int
}

// WithServiceConfig sets the run-service tuning for a new engine.
// DefaultEngine uses the defaults; dcserve passes its flags through
// here.
func WithServiceConfig(cfg ServiceConfig) EngineOption {
	return func(e *Engine) { e.svcCfg = cfg }
}

// RunStore is the pluggable persistence layer behind the engine's run
// service. runstore.NewMem() (the default) keeps runs in memory;
// runstore.Open(runstore.Options{Dir: ...}) makes the engine
// crash-recoverable: every submission, claim, requeue and result is
// written through a checksummed WAL with snapshot compaction, and a
// restarted engine over the same directory resumes interrupted runs and
// serves finished results from disk.
type RunStore = runstore.Store

// WithRunStore plugs a persistence layer into a new engine's run
// service. The caller owns the store's lifecycle: open it before
// NewEngine, close it after Engine.Shutdown. Recovery happens when the
// run service first starts (first Submit/Handles/ServiceStats call).
func WithRunStore(store RunStore) EngineOption {
	return func(e *Engine) { e.store = store }
}

// runService returns the engine's run service, creating it on first
// use so engines that only ever resolve names own no extra state.
func (e *Engine) runService() *service.Service {
	e.svcOnce.Do(func() {
		e.svc = service.New(service.Config{
			Workers:        e.svcCfg.Workers,
			QueueDepth:     e.svcCfg.QueueDepth,
			TTL:            e.svcCfg.TTL,
			MaxRuns:        e.svcCfg.MaxRuns,
			WorkerID:       e.svcCfg.WorkerID,
			LeaseTTL:       e.svcCfg.LeaseTTL,
			HeartbeatEvery: e.svcCfg.HeartbeatEvery,
			ReconcileEvery: e.svcCfg.ReconcileEvery,
			MaxRetries:     e.svcCfg.MaxRetries,
			Store:          e.store,
			Rehydrate:      e.rehydrateTask,
			EncodeResult:   encodeRunResult,
			DecodeResult:   decodeRunResult,
		})
	})
	return e.svc
}

// persistSpecs reports whether submissions should carry a serialized
// spec for crash recovery. Only durable stores need one: serializing a
// million-job workload on every in-memory submission would be pure
// overhead.
func (e *Engine) persistSpecs() bool {
	return e.store != nil && e.store.Durable()
}

// Submit starts req asynchronously and returns its handle: a stable run
// ID, a live status, a replayable event stream, Cancel and Result. The
// engine deduplicates by content: submissions whose requests hash
// identically share one run (the handle's Deduped reports joining
// pre-existing work, and identical specs execute exactly once), and a
// finished run's result is served from cache until its TTL expires.
// Backpressure is explicit: a full queue fails fast with ErrBusy.
//
// ctx gates admission only; execution runs under the engine's own
// lifetime and stops via handle.Cancel or Engine.Shutdown. Bound the
// wait instead: h.Result(ctx) honors the caller's deadline.
func (e *Engine) Submit(ctx context.Context, req SubmitRequest, opts ...RunOption) (*RunHandle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := newRunConfig(opts)
	sreq, feed, err := e.buildRequest(req, cfg)
	if err != nil {
		return nil, err
	}
	run, reused, err := e.runService().Submit(sreq)
	if err != nil {
		return nil, fmt.Errorf("dawningcloud: submit: %w", err)
	}
	if feed != nil && !reused {
		e.registerFeed(run, feed)
	}
	return &RunHandle{run: run, reused: reused, resolve: resolveResult}, nil
}

// LiveFeed is the producer half of a live-fed run: one bounded
// LiveSource per live provider lane, shared between the run's compiled
// workloads (consumer side) and whatever pushes tasks in — dcserve's
// POST /v1/runs/{id}/tasks endpoint, or an in-process producer. Push
// tasks with Get(lane).TryPush/Push, end a lane with Close (buffered
// tasks still drain), end everything with CloseAll.
type LiveFeed = stream.Feed

// registerFeed indexes a live run's task feed by run ID for Feed, and
// retires it when the run turns terminal: remaining producers get
// errors instead of feeding a dead run.
func (e *Engine) registerFeed(run *service.Run, feed *stream.Feed) {
	id := run.ID()
	e.feedMu.Lock()
	if e.feeds == nil {
		e.feeds = make(map[string]*stream.Feed)
	}
	e.feeds[id] = feed
	e.feedMu.Unlock()
	go func() {
		<-run.Done()
		feed.FailAll(fmt.Errorf("dawningcloud: run %s is terminal", id))
		e.feedMu.Lock()
		delete(e.feeds, id)
		e.feedMu.Unlock()
	}()
}

// Feed returns the live task feed of a run with live providers. ok is
// false for runs without one — no live providers, terminal, or evicted.
func (e *Engine) Feed(id string) (*LiveFeed, bool) {
	e.feedMu.Lock()
	defer e.feedMu.Unlock()
	f, ok := e.feeds[id]
	return f, ok
}

// Handle returns the handle of a stored run by ID (previously submitted
// and not yet evicted).
func (e *Engine) Handle(id string) (*RunHandle, bool) {
	run, ok := e.runService().Get(id)
	if !ok {
		return nil, false
	}
	return &RunHandle{run: run, resolve: resolveResult}, true
}

// Handles lists the stored runs, newest first: everything submitted
// (or executed inline by the blocking methods) that has not aged out.
func (e *Engine) Handles() []*RunHandle {
	runs := e.runService().Runs()
	out := make([]*RunHandle, len(runs))
	for i, r := range runs {
		out[i] = &RunHandle{run: r, resolve: resolveResult}
	}
	return out
}

// HandlesBefore lists the stored runs older than the run with ID
// cursor, newest first — the resume point of a paged listing. ok is
// false when cursor names no stored run (evicted mid-pagination, or
// plain wrong). Cursor resolution goes through the service's ID index,
// so a full paged listing costs O(n), not O(n^2).
func (e *Engine) HandlesBefore(cursor string) (handles []*RunHandle, ok bool) {
	runs, ok := e.runService().RunsBefore(cursor)
	if !ok {
		return nil, false
	}
	out := make([]*RunHandle, len(runs))
	for i, r := range runs {
		out[i] = &RunHandle{run: r, resolve: resolveResult}
	}
	return out, true
}

// ServiceStats snapshots the run service's counters (submissions,
// executions, cache hits, dedup joins, queue occupancy).
func (e *Engine) ServiceStats() ServiceStats { return e.runService().Stats() }

// Shutdown stops accepting submissions, cancels every queued and
// running submitted run, and waits (bounded by ctx) for the service
// workers to exit. In-flight blocking calls execute under their own
// caller's context and are not interrupted.
func (e *Engine) Shutdown(ctx context.Context) error {
	return e.runService().Shutdown(ctx)
}

// Register adds a system under name (case-insensitively unique). The
// system is immediately runnable via Run, RunAll and Sweep; on the
// default engine it also becomes available to the CLIs and to scenario
// specs by name.
func (e *Engine) Register(name string, r Runner) error { return e.reg.Register(name, r) }

// MustRegister is Register, panicking on error.
func (e *Engine) MustRegister(name string, r Runner) { e.reg.MustRegister(name, r) }

// Systems lists the registered system names in registration order (the
// four paper systems first, in presentation order).
func (e *Engine) Systems() []string { return e.reg.Names() }

// Has reports whether name (case-insensitive) is registered.
func (e *Engine) Has(name string) bool { return e.reg.Has(name) }

// RunOption configures one Engine run. Options apply in order, so a
// later WithOptions overrides an earlier WithSeed's field and vice
// versa.
type RunOption func(*runConfig)

type runConfig struct {
	opts    Options
	workers int
	sink    events.Sink
}

// WithOptions sets the simulation options (horizon, pool capacity,
// provision policy, setup cost, seed) for the run.
func WithOptions(opts Options) RunOption {
	return func(c *runConfig) { c.opts = opts }
}

// WithWorkers bounds how many simulations run concurrently in RunAll and
// Sweep (0 = all CPUs). Single runs ignore it.
func WithWorkers(n int) RunOption {
	return func(c *runConfig) { c.workers = n }
}

// WithSeed sets the seed stochastic runners (e.g. ssp-spot's price
// process) derive their random state from. The four paper systems are
// deterministic and ignore it.
func WithSeed(seed int64) RunOption {
	return func(c *runConfig) { c.opts.Seed = seed }
}

// WithPartitions splits the run's providers onto n per-core kernel
// partitions advancing in lockstep (0 or 1 = serial, negative = one per
// CPU). A partitioned run's Result is byte-identical to the serial
// run's; runners fall back to serial whenever partitioning cannot
// preserve that (a capacity-bound shared pool, a single provider). A
// later WithOptions overrides it, like every run option.
func WithPartitions(n int) RunOption {
	return func(c *runConfig) { c.opts.Partitions = n }
}

// WithEvents subscribes fn to the run's progress stream (run started /
// completed, cell completed). fn may be called concurrently from worker
// goroutines and must be safe for concurrent use.
//
// On Submit, fn is attached to the execution itself, so it only
// observes runs this submission actually starts: a submission that
// deduplicates onto an already-running or cached identical run
// delivers nothing to fn. Subscribe on the returned handle instead —
// handle streams replay history and are shared by every submission of
// the run.
func WithEvents(fn func(Event)) RunOption {
	return func(c *runConfig) { c.sink = events.Sink(fn) }
}

func newRunConfig(opts []RunOption) runConfig {
	var c runConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Run simulates the named system over the workloads. The context cancels
// the simulation mid-run (an aborted run's error wraps ctx.Err());
// unknown names fail with the registry's available-system list.
// Workloads are treated as read-only; clone first (CloneWorkloads) if
// the caller mutates them concurrently.
//
// Run is a thin blocking wrapper over the Submit lifecycle: the
// simulation executes inline on the calling goroutine under ctx, the
// run is recorded in the engine's run store (visible via Handles), and
// events reach WithEvents sinks synchronously exactly as before. Use
// Submit for asynchronous execution, dedup/caching and streaming.
func (e *Engine) Run(ctx context.Context, system string, workloads []Workload, opts ...RunOption) (Result, error) {
	cfg := newRunConfig(opts)
	return e.runOne(ctx, system, workloads, cfg, "")
}

// runOne resolves and executes a single simulation inline through the
// run-service lifecycle, emitting its start/completion events
// synchronously to the configured sink.
func (e *Engine) runOne(ctx context.Context, system string, workloads []Workload, cfg runConfig, cell string) (Result, error) {
	runner, canonical, err := e.reg.Resolve(system)
	if err != nil {
		return Result{}, fmt.Errorf("dawningcloud: %w", err)
	}
	label := fmt.Sprintf("system %s (%d providers)", canonical, len(workloads))
	if cell != "" {
		label += " [" + cell + "]"
	}
	// Blocking callers own their workloads for the duration of the call
	// (RunAll and Sweep pre-clone per cell), so no execution-time clone —
	// exactly the pre-handle behavior.
	run, err := e.runService().RunInline(ctx, service.Request{
		Kind:  "system",
		Label: label,
		Sink:  cfg.sink,
		Task:  systemTask(runner, canonical, workloads, cfg.opts, cell, false),
	})
	if err != nil {
		return Result{}, fmt.Errorf("dawningcloud: %w", err)
	}
	// The inline run is terminal; read its result without re-entering
	// the caller's (possibly canceled) context.
	v, err := run.Result(context.Background()) //dclint:allow ctxfirst -- terminal-result read must not fail on the caller's already-canceled ctx
	if err != nil {
		return Result{}, err
	}
	return v.(Result), nil
}

// RunAll simulates several systems over the same workloads concurrently,
// bounded by WithWorkers. A nil or empty system list runs every
// registered system. Each run receives a deep clone of the workloads so
// no simulation aliases another's job slices, and results come back
// indexed like the (resolved) input regardless of completion order.
func (e *Engine) RunAll(ctx context.Context, sys []string, workloads []Workload, opts ...RunOption) ([]Result, error) {
	cfg := newRunConfig(opts)
	if len(sys) == 0 {
		sys = e.Systems()
	}
	results := make([]Result, len(sys))
	var done atomic.Int64
	err := par.ForEach(workers(cfg.workers), len(sys), func(i int) error {
		r, err := e.runOne(ctx, sys[i], systems.CloneWorkloads(workloads), cfg, "")
		if err != nil {
			return err
		}
		results[i] = r
		cfg.sink.Emit(events.CellCompleted{Index: int(done.Add(1)), Total: len(sys), Key: r.System})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Sweep runs one system over the B×R policy grid for a single provider's
// workload in isolation — the paper's parameter-tuning methodology,
// generalized to any registered system. Grid points are independent
// simulations fanning out over WithWorkers; the returned slice is in
// b-major, r-minor order regardless of scheduling, and each point clones
// the base workload before retuning it.
func (e *Engine) Sweep(ctx context.Context, system string, base Workload, bs []int, rs []float64, opts ...RunOption) ([]SweepPoint, error) {
	cfg := newRunConfig(opts)
	if len(bs) == 0 || len(rs) == 0 {
		return nil, fmt.Errorf("dawningcloud: sweep needs at least one B and one R value")
	}
	points := make([]SweepPoint, len(bs)*len(rs))
	var done atomic.Int64
	err := par.ForEach(workers(cfg.workers), len(points), func(i int) error {
		b, r := bs[i/len(rs)], rs[i%len(rs)]
		wl := base.Clone()
		wl.Params.InitialNodes = b
		wl.Params.ThresholdRatio = r
		cell := fmt.Sprintf("B%d|R%g", b, r)
		res, err := e.runOne(ctx, system, []Workload{wl}, cfg, cell)
		if err != nil {
			return fmt.Errorf("dawningcloud: sweep %s B%d R%g: %w", base.Name, b, r, err)
		}
		p, ok := res.Provider(base.Name)
		if !ok {
			return fmt.Errorf("dawningcloud: sweep %s B%d R%g: provider missing from result", base.Name, b, r)
		}
		pt := SweepPoint{
			B:              b,
			R:              r,
			NodeHours:      p.NodeHours,
			Completed:      p.Completed,
			TasksPerSecond: p.TasksPerSecond,
			Perf:           float64(p.Completed),
		}
		if base.Class == MTC {
			pt.Perf = p.TasksPerSecond
		}
		points[i] = pt
		cfg.sink.Emit(events.CellCompleted{Index: int(done.Add(1)), Total: len(points), Key: cell})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}
