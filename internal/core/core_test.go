package core

import (
	"context"
	"testing"

	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/systems"
)

func htcWorkload() systems.Workload {
	return systems.Workload{
		Name:  "htc",
		Class: job.HTC,
		Jobs: []job.Job{
			{ID: 1, Submit: 0, Runtime: 1800, Nodes: 4},
			{ID: 2, Submit: 600, Runtime: 1800, Nodes: 4},
			{ID: 3, Submit: 1200, Runtime: 1800, Nodes: 8},
		},
		FixedNodes: 8,
		Params:     policy.HTCDefaults(2, 1.5),
	}
}

func mtcWorkload() systems.Workload {
	return systems.Workload{
		Name:  "mtc",
		Class: job.MTC,
		Jobs: []job.Job{
			{ID: 1, Submit: 0, Runtime: 60, Nodes: 1, Class: job.MTC, Workflow: "w"},
			{ID: 2, Submit: 0, Runtime: 60, Nodes: 2, Class: job.MTC, Workflow: "w", Deps: []int{1}},
			{ID: 3, Submit: 0, Runtime: 60, Nodes: 1, Class: job.MTC, Workflow: "w", Deps: []int{2}},
		},
		FixedNodes: 2,
		Params:     policy.MTCDefaults(1, 2),
	}
}

func TestRunCompletesBothClasses(t *testing.T) {
	res, err := Run(context.Background(), []systems.Workload{htcWorkload(), mtcWorkload()},
		Config{Options: systems.Options{Horizon: 6 * 3600}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.System != "DawningCloud" {
		t.Errorf("System = %s", res.System)
	}
	h, ok := res.Provider("htc")
	if !ok || h.Completed != 3 {
		t.Errorf("htc completed = %d, want 3", h.Completed)
	}
	m, ok := res.Provider("mtc")
	if !ok || m.Completed != 3 {
		t.Errorf("mtc completed = %d, want 3", m.Completed)
	}
	if m.TasksPerSecond <= 0 {
		t.Error("mtc throughput missing")
	}
}

// The MTC TRE starts with B=1 and expands via the policy; after the chain
// finishes it destroys itself, so its lease is bounded by a billed hour.
func TestMTCTREElasticityAndSelfDestroy(t *testing.T) {
	res, err := Run(context.Background(), []systems.Workload{mtcWorkload()},
		Config{Options: systems.Options{Horizon: 24 * 3600}})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := res.Provider("mtc")
	// Task 2 needs 2 nodes: DR2 adds 1 on top of B=1. Both release at
	// self-destroy within the first hour: at most 2 billed node-hours.
	if m.NodeHours > 2 {
		t.Errorf("NodeHours = %.1f, want <= 2", m.NodeHours)
	}
	if m.NodesAdjusted == 0 {
		t.Error("expected adjustments from grant + destroy")
	}
}

func TestDeployDelaysShiftStartup(t *testing.T) {
	wl := htcWorkload()
	res, err := Run(context.Background(), []systems.Workload{wl}, Config{
		Options:     systems.Options{Horizon: 6 * 3600},
		DeployDelay: 300,
		StartDelay:  60,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res.Provider("htc")
	// Jobs queue until the TRE is Running at t=360; all still complete.
	if p.Completed != 3 {
		t.Errorf("completed = %d, want 3 despite deploy delay", p.Completed)
	}
}

func TestCapacityConstrainedCloudRejectsGrowth(t *testing.T) {
	wl := htcWorkload()
	// Pool of 6: B=2 fits, but the 8-node job can never run and DR
	// requests beyond 6 are rejected.
	res, err := Run(context.Background(), []systems.Workload{wl},
		Config{Options: systems.Options{Horizon: 6 * 3600, PoolCapacity: 6}})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res.Provider("htc")
	if p.Completed != 2 {
		t.Errorf("completed = %d, want 2 (8-node job starves)", p.Completed)
	}
	if res.RejectedRequests == 0 {
		t.Error("expected provisioning rejections")
	}
}

func TestRunValidatesWorkloads(t *testing.T) {
	bad := htcWorkload()
	bad.Name = ""
	if _, err := Run(context.Background(), []systems.Workload{bad}, Config{}); err == nil {
		t.Error("invalid workload accepted")
	}
	if _, err := Run(context.Background(), nil, Config{}); err == nil {
		t.Error("empty workloads accepted")
	}
}

func TestEasyBackfillConfig(t *testing.T) {
	res, err := Run(context.Background(), []systems.Workload{htcWorkload()}, Config{
		Options:      systems.Options{Horizon: 6 * 3600},
		EasyBackfill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := res.Provider("htc")
	if p.Completed != 3 {
		t.Errorf("completed with backfill = %d, want 3", p.Completed)
	}
}

// Consolidation invariant: the consolidated run's total equals the sum of
// isolated runs on an unconstrained pool (no interference).
func TestConsolidationAdditivity(t *testing.T) {
	opts := systems.Options{Horizon: 6 * 3600}
	both, err := Run(context.Background(), []systems.Workload{htcWorkload(), mtcWorkload()}, Config{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	h, err := Run(context.Background(), []systems.Workload{htcWorkload()}, Config{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(context.Background(), []systems.Workload{mtcWorkload()}, Config{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := both.TotalNodeHours, h.TotalNodeHours+m.TotalNodeHours; got != want {
		t.Errorf("consolidated total = %.1f, want %.1f (sum of isolated runs)", got, want)
	}
}
