// Package core assembles DawningCloud, the paper's enabling system for the
// dynamic service provision (DSP) model: a Common Service Framework owned
// by the resource provider plus one thin runtime environment per service
// provider, consolidated on a single cloud platform.
//
// The runner reproduces the emulated DawningCloud of the paper's Figure 6:
// the resource provision service, one HTC server and scheduler per HTC
// provider, one MTC server, scheduler and trigger monitor per MTC provider,
// and a job emulator feeding traces and workflow files on the virtual
// clock. MTC runtime environments destroy themselves when their computing
// service finishes, releasing the initial lease; HTC runtime environments
// live through the whole accounting window.
package core

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/csf"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/systems"
	"repro/internal/tre"
)

// defaultPoolCapacity models the paper's "large cloud platform" when the
// caller does not constrain the pool.
const defaultPoolCapacity = 1 << 20

// Config extends the shared run options with DawningCloud-specific knobs.
type Config struct {
	systems.Options
	// EasyBackfill swaps the HTC dispatch policy for EASY backfilling,
	// the scheduler ablation.
	EasyBackfill bool
	// DeployDelay and StartDelay emulate TRE creation latency.
	DeployDelay sim.Time
	StartDelay  sim.Time
}

// Run simulates DawningCloud over the given workloads and returns the
// shared Result type for comparison with the baseline systems. The context
// cancels the simulation mid-run; an aborted run returns ctx.Err().
//
// Run is safe to call from concurrent goroutines: every piece of mutable
// state (engine, pool, accountant, provision service, servers) is
// constructed per call, and workloads are only read — jobs are immutable
// by contract (see job.Job). Callers that retune or resort workloads
// between concurrent runs must pass clones (systems.CloneWorkloads).
func Run(ctx context.Context, workloads []systems.Workload, cfg Config) (systems.Result, error) {
	if err := systems.ValidateWorkloads(workloads); err != nil {
		return systems.Result{}, err
	}
	horizon := cfg.HorizonFor(workloads)
	capacity := cfg.PoolCapacity
	if capacity == 0 {
		capacity = defaultPoolCapacity
	}
	engine := sim.New()
	pool, err := cluster.NewPool(capacity)
	if err != nil {
		return systems.Result{}, err
	}
	acct := metrics.NewAccountant(engine.Now)
	setup := cfg.SetupCost
	if setup == 0 {
		setup = csf.DefaultNodeSetupSeconds
	}
	prov := csf.NewProvisionService(pool, acct, cfg.Provision, setup)
	framework := csf.NewFramework(engine, prov)
	framework.DeployDelay = cfg.DeployDelay
	framework.StartDelay = cfg.StartDelay

	type slot struct {
		wl     *systems.Workload
		server interface {
			Submitted() int
			CompletedBy(sim.Time) int
			TasksPerSecond() float64
		}
	}
	slots := make([]slot, 0, len(workloads))

	for i := range workloads {
		wl := &workloads[i]
		switch wl.Class {
		case job.HTC:
			srv, err := tre.NewHTCServer(engine, prov, tre.Config{
				Name:         wl.Name,
				Params:       wl.Params,
				EasyBackfill: cfg.EasyBackfill,
			})
			if err != nil {
				return systems.Result{}, err
			}
			if err := createAndFeedHTC(engine, framework, srv, wl); err != nil {
				return systems.Result{}, err
			}
			slots = append(slots, slot{wl: wl, server: srv})
		case job.MTC:
			srv, err := tre.NewMTCServer(engine, prov, tre.Config{
				Name:                wl.Name,
				Params:              wl.Params,
				DestroyOnCompletion: true,
			})
			if err != nil {
				return systems.Result{}, err
			}
			if err := createAndFeedMTC(engine, framework, srv, wl); err != nil {
				return systems.Result{}, err
			}
			slots = append(slots, slot{wl: wl, server: srv})
		default:
			return systems.Result{}, fmt.Errorf("core: workload %s: unknown class %v", wl.Name, wl.Class)
		}
	}

	if err := engine.RunContext(ctx, horizon); err != nil {
		return systems.Result{}, fmt.Errorf("core: DawningCloud run aborted: %w", err)
	}
	acct.CloseAll(horizon, true)

	aggs := make([]systems.ProviderAgg, 0, len(slots))
	for _, s := range slots {
		a := systems.ProviderAgg{
			Name:      s.wl.Name,
			Class:     s.wl.Class,
			Owners:    []string{s.wl.Name},
			Submitted: s.server.Submitted(),
			Completed: s.server.CompletedBy(horizon),
			Adjusted:  -1,
		}
		if s.wl.Class == job.MTC {
			a.TPS = s.server.TasksPerSecond()
		}
		aggs = append(aggs, a)
	}
	return systems.BuildResult("DawningCloud", horizon, acct, setup, prov.RejectedRequests(), aggs), nil
}

// createAndFeedHTC walks the TRE through the CSF lifecycle at the
// workload's first submission and schedules job arrivals.
func createAndFeedHTC(engine *sim.Engine, fw *csf.Framework, srv *tre.Server, wl *systems.Workload) error {
	start := wl.FirstSubmit()
	engine.At(start, func() {
		_, err := fw.CreateTRE(wl.Name, "HTC", func() {
			if err := srv.Start(); err != nil {
				panic(fmt.Sprintf("core: start TRE %s: %v", wl.Name, err))
			}
		})
		if err != nil {
			panic(fmt.Sprintf("core: create TRE %s: %v", wl.Name, err))
		}
	})
	engine.ScheduleBatch(len(wl.Jobs), func(i int) (sim.Time, func()) {
		j := &wl.Jobs[i]
		return j.Submit, func() { srv.Submit(j) }
	})
	return nil
}

// createAndFeedMTC does the same for an MTC provider, submitting whole
// workflows at their first task's submission time.
func createAndFeedMTC(engine *sim.Engine, fw *csf.Framework, srv *tre.MTCServer, wl *systems.Workload) error {
	byWorkflow := make(map[string][]*job.Job)
	var order []string
	first := wl.FirstSubmit()
	for i := range wl.Jobs {
		j := &wl.Jobs[i]
		if _, seen := byWorkflow[j.Workflow]; !seen {
			order = append(order, j.Workflow)
		}
		byWorkflow[j.Workflow] = append(byWorkflow[j.Workflow], j)
	}
	engine.At(first, func() {
		_, err := fw.CreateTRE(wl.Name, "MTC", func() {
			if err := srv.Start(); err != nil {
				panic(fmt.Sprintf("core: start TRE %s: %v", wl.Name, err))
			}
		})
		if err != nil {
			panic(fmt.Sprintf("core: create TRE %s: %v", wl.Name, err))
		}
	})
	for _, key := range order {
		tasks := byWorkflow[key]
		at := tasks[0].Submit
		for _, t := range tasks {
			if t.Submit < at {
				at = t.Submit
			}
		}
		engine.At(at, func() {
			if err := srv.SubmitWorkflow(tasks); err != nil {
				panic(fmt.Sprintf("core: submit workflow %s/%s: %v", wl.Name, key, err))
			}
		})
	}
	return nil
}
