// Package core assembles DawningCloud, the paper's enabling system for the
// dynamic service provision (DSP) model: a Common Service Framework owned
// by the resource provider plus one thin runtime environment per service
// provider, consolidated on a single cloud platform.
//
// The runner reproduces the emulated DawningCloud of the paper's Figure 6:
// the resource provision service, one HTC server and scheduler per HTC
// provider, one MTC server, scheduler and trigger monitor per MTC provider,
// and a job emulator feeding traces and workflow files on the virtual
// clock. MTC runtime environments destroy themselves when their computing
// service finishes, releasing the initial lease; HTC runtime environments
// live through the whole accounting window.
package core

import (
	"context"
	"fmt"

	"repro/internal/nodepool"
	"repro/internal/csf"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/systems"
	"repro/internal/tre"
)

// defaultPoolCapacity models the paper's "large cloud platform" when the
// caller does not constrain the pool.
const defaultPoolCapacity = 1 << 20

// Config extends the shared run options with DawningCloud-specific knobs.
type Config struct {
	systems.Options
	// EasyBackfill swaps the HTC dispatch policy for EASY backfilling,
	// the scheduler ablation.
	EasyBackfill bool
	// DeployDelay and StartDelay emulate TRE creation latency.
	DeployDelay sim.Time
	StartDelay  sim.Time
}

// Run simulates DawningCloud over the given workloads and returns the
// shared Result type for comparison with the baseline systems. The context
// cancels the simulation mid-run; an aborted run returns ctx.Err().
//
// Run is safe to call from concurrent goroutines: every piece of mutable
// state (engine, pool, accountant, provision service, servers) is
// constructed per call, and workloads are only read — jobs are immutable
// by contract (see job.Job). Callers that retune or resort workloads
// between concurrent runs must pass clones (systems.CloneWorkloads).
func Run(ctx context.Context, workloads []systems.Workload, cfg Config) (systems.Result, error) {
	if err := systems.ValidateWorkloads(workloads); err != nil {
		return systems.Result{}, err
	}
	// Partitioned path: with the default pool the cloud is never
	// capacity-bound (defaultPoolCapacity's contract), so every dynamic
	// grant succeeds regardless of what other providers hold —
	// per-partition pools of the same capacity reproduce the serial run
	// exactly. A caller-bounded pool couples providers through Free()
	// and must stay serial.
	if p := cfg.PartitionCount(len(workloads)); p > 1 && cfg.PoolCapacity == 0 {
		return systems.RunPartitioned(ctx, workloads, cfg.Options, systems.PartitionSpec{
			System: "DawningCloud",
			Open: func(chunk []systems.Workload, first int, o systems.Options) (systems.PartitionInstance, error) {
				c := cfg
				c.Options = o
				return Open(defaultPoolCapacity, c)
			},
		})
	}
	horizon := cfg.HorizonFor(workloads)
	capacity := cfg.PoolCapacity
	if capacity == 0 {
		capacity = defaultPoolCapacity
	}
	inst, err := Open(capacity, cfg)
	if err != nil {
		return systems.Result{}, err
	}
	for i := range workloads {
		if err := inst.Attach(&workloads[i]); err != nil {
			return systems.Result{}, err
		}
	}
	if err := inst.Engine().RunContext(ctx, horizon); err != nil {
		return systems.Result{}, fmt.Errorf("core: DawningCloud run aborted: %w", err)
	}
	return inst.Finalize(horizon)
}

// Instance is an open DawningCloud simulation that accepts provider
// workloads incrementally: Open, Attach each provider while the virtual
// clock has not passed its first submission, drive the engine
// (RunContext, or the sim step primitives under a federated orchestrator
// such as internal/clustersim), then Finalize to settle accounting and
// assemble the Result.
type Instance struct {
	cfg       Config
	engine    *sim.Engine
	pool      *nodepool.Pool
	acct      *metrics.Accountant
	setup     float64
	prov      *csf.ProvisionService
	framework *csf.Framework
	slots     []coreSlot
	seen      map[string]bool
}

type coreSlot struct {
	wl     *systems.Workload
	server interface {
		Submitted() int
		CompletedBy(sim.Time) int
		TasksPerSecond() float64
	}
}

// Open opens an empty DawningCloud instance over a pool of capacity
// nodes. Attached workloads must already be valid (the blocking Run
// validates whole sets up front); capacity must be positive.
func Open(capacity int, cfg Config) (*Instance, error) {
	engine := sim.New()
	pool, err := nodepool.NewPool(capacity)
	if err != nil {
		return nil, err
	}
	acct := metrics.NewAccountant(engine.Now)
	setup := cfg.SetupCost
	if setup == 0 {
		setup = csf.DefaultNodeSetupSeconds
	}
	prov := csf.NewProvisionService(pool, acct, cfg.Provision, setup)
	framework := csf.NewFramework(engine, prov)
	framework.DeployDelay = cfg.DeployDelay
	framework.StartDelay = cfg.StartDelay
	return &Instance{
		cfg:       cfg,
		engine:    engine,
		pool:      pool,
		acct:      acct,
		setup:     setup,
		prov:      prov,
		framework: framework,
		seen:      make(map[string]bool),
	}, nil
}

// Engine exposes the instance's simulation engine so an orchestrator can
// drive it through the step primitives.
func (x *Instance) Engine() *sim.Engine { return x.engine }

// PoolLoad snapshots the instance's node pool occupancy.
func (x *Instance) PoolLoad() (inUse, capacity int) {
	return x.pool.InUse(), x.pool.Capacity()
}

// Accounting exposes the instance's accountant for partitioned-run
// merging (see systems.PartitionInstance).
func (x *Instance) Accounting() *metrics.Accountant { return x.acct }

// Attach admits one provider workload: its thin runtime environment is
// created through the CSF lifecycle and its job arrivals are scheduled
// on the instance clock.
func (x *Instance) Attach(wl *systems.Workload) error {
	if x.seen[wl.Name] {
		return fmt.Errorf("systems: duplicate workload name %q", wl.Name)
	}
	switch wl.Class {
	case job.HTC:
		srv, err := tre.NewHTCServer(x.engine, x.prov, tre.Config{
			Name:         wl.Name,
			Params:       wl.Params,
			EasyBackfill: x.cfg.EasyBackfill,
		})
		if err != nil {
			return err
		}
		if err := createAndFeedHTC(x.engine, x.framework, srv, wl); err != nil {
			return err
		}
		x.slots = append(x.slots, coreSlot{wl: wl, server: srv})
	case job.MTC:
		srv, err := tre.NewMTCServer(x.engine, x.prov, tre.Config{
			Name:                wl.Name,
			Params:              wl.Params,
			DestroyOnCompletion: true,
		})
		if err != nil {
			return err
		}
		if err := createAndFeedMTC(x.engine, x.framework, srv, wl); err != nil {
			return err
		}
		x.slots = append(x.slots, coreSlot{wl: wl, server: srv})
	default:
		return fmt.Errorf("core: workload %s: unknown class %v", wl.Name, wl.Class)
	}
	x.seen[wl.Name] = true
	return nil
}

// Finalize settles open leases at horizon and assembles the Result over
// every attached workload, in attach order.
func (x *Instance) Finalize(horizon sim.Time) (systems.Result, error) {
	x.acct.CloseAll(horizon, true)
	aggs := make([]systems.ProviderAgg, 0, len(x.slots))
	for _, s := range x.slots {
		a := systems.ProviderAgg{
			Name:      s.wl.Name,
			Class:     s.wl.Class,
			Owners:    []string{s.wl.Name},
			Submitted: s.server.Submitted(),
			Completed: s.server.CompletedBy(horizon),
			Adjusted:  -1,
		}
		if s.wl.Class == job.MTC {
			a.TPS = s.server.TasksPerSecond()
		}
		aggs = append(aggs, a)
	}
	return systems.BuildResult("DawningCloud", horizon, x.acct, x.setup, x.prov.RejectedRequests(), aggs), nil
}

// Window snapshots every attached provider at virtual time t, for
// per-window streamed reports; see systems.FixedInstance.Window.
func (x *Instance) Window(t sim.Time) []systems.ProviderWindow {
	aggs := make([]systems.ProviderAgg, 0, len(x.slots))
	for _, s := range x.slots {
		aggs = append(aggs, systems.ProviderAgg{
			Name:      s.wl.Name,
			Class:     s.wl.Class,
			Owners:    []string{s.wl.Name},
			Completed: s.server.CompletedBy(t),
			Adjusted:  -1,
		})
	}
	return systems.BuildWindow(x.acct, t, aggs)
}

// createTREAt issues the CSF create-and-start lifecycle for wl's thin
// runtime environment at time t.
func createTREAt(engine *sim.Engine, fw *csf.Framework, name, kind string, t sim.Time, start func() error) {
	engine.At(t, func() {
		_, err := fw.CreateTRE(name, kind, func() {
			if err := start(); err != nil {
				panic(fmt.Sprintf("core: start TRE %s: %v", name, err))
			}
		})
		if err != nil {
			panic(fmt.Sprintf("core: create TRE %s: %v", name, err))
		}
	})
}

// createAndFeedHTC walks the TRE through the CSF lifecycle at the
// workload's first submission and schedules job arrivals.
func createAndFeedHTC(engine *sim.Engine, fw *csf.Framework, srv *tre.Server, wl *systems.Workload) error {
	createTREAt(engine, fw, wl.Name, "HTC", wl.FirstSubmit(), srv.Start)
	engine.ScheduleBatch(len(wl.Jobs), func(i int) (sim.Time, func()) {
		j := &wl.Jobs[i]
		return j.Submit, func() { srv.Submit(j) }
	})
	return nil
}

// createAndFeedMTC does the same for an MTC provider, submitting whole
// workflows at their first task's submission time.
func createAndFeedMTC(engine *sim.Engine, fw *csf.Framework, srv *tre.MTCServer, wl *systems.Workload) error {
	createTREAt(engine, fw, wl.Name, "MTC", wl.FirstSubmit(), srv.Start)
	for _, a := range systems.MTCWorkflowActions(srv.SubmitWorkflow, wl.Name, wl.Jobs, "core") {
		engine.At(a.At, a.Run)
	}
	return nil
}

// AttachStream admits one provider workload fed through f instead of a
// materialized schedule; see systems.FixedInstance.AttachStream for the
// streaming contract (HTC jobs from src, MTC workloads as materialized
// workflow actions, one shared feeder per instance).
func (x *Instance) AttachStream(wl *systems.Workload, src stream.Source, f *stream.Feeder) error {
	if x.seen[wl.Name] {
		return fmt.Errorf("systems: duplicate workload name %q", wl.Name)
	}
	switch wl.Class {
	case job.HTC:
		srv, err := tre.NewHTCServer(x.engine, x.prov, tre.Config{
			Name:         wl.Name,
			Params:       wl.Params,
			EasyBackfill: x.cfg.EasyBackfill,
		})
		if err != nil {
			return err
		}
		if src == nil {
			src = stream.FromJobs(wl.Jobs)
		}
		err = f.AddJobs(wl.Name, src,
			func(first sim.Time) { createTREAt(x.engine, x.framework, wl.Name, "HTC", first, srv.Start) },
			func(j *job.Job) { srv.Submit(j) })
		if err != nil {
			return err
		}
		x.slots = append(x.slots, coreSlot{wl: wl, server: srv})
	case job.MTC:
		if src != nil {
			return fmt.Errorf("core: workload %s: MTC workloads stream as materialized workflows (source must be nil)", wl.Name)
		}
		srv, err := tre.NewMTCServer(x.engine, x.prov, tre.Config{
			Name:                wl.Name,
			Params:              wl.Params,
			DestroyOnCompletion: true,
		})
		if err != nil {
			return err
		}
		actions := systems.MTCWorkflowActions(srv.SubmitWorkflow, wl.Name, wl.Jobs, "core")
		err = f.AddActions(wl.Name, actions,
			func(first sim.Time) { createTREAt(x.engine, x.framework, wl.Name, "MTC", first, srv.Start) })
		if err != nil {
			return err
		}
		x.slots = append(x.slots, coreSlot{wl: wl, server: srv})
	default:
		return fmt.Errorf("core: workload %s: unknown class %v", wl.Name, wl.Class)
	}
	x.seen[wl.Name] = true
	return nil
}
