package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/systems"
)

// randomHTCWorkload draws a small valid HTC workload from a seed.
func randomHTCWorkload(seed int64) systems.Workload {
	rng := rand.New(rand.NewSource(seed))
	n := rng.Intn(30) + 5
	maxNodes := rng.Intn(24) + 8
	jobs := make([]job.Job, n)
	for i := range jobs {
		jobs[i] = job.Job{
			ID:      i + 1,
			Submit:  int64(rng.Intn(6 * 3600)),
			Runtime: int64(rng.Intn(3600) + 60),
			Nodes:   rng.Intn(maxNodes) + 1,
		}
	}
	return systems.Workload{
		Name:       "prop-htc",
		Class:      job.HTC,
		Jobs:       jobs,
		FixedNodes: maxNodes,
		Params:     policy.HTCDefaults(rng.Intn(8)+2, 1.0+rng.Float64()),
	}
}

// TestPropertyCrossSystemInvariants drives random workloads through all
// four systems and checks the invariants the evaluation relies on:
//
//  1. completions never exceed submissions and no system loses jobs that
//     had time to run;
//  2. DCS and SSP report identical performance and consumption;
//  3. the fixed systems bill exactly size x window;
//  4. every system's consumption covers at least the raw demand it served;
//  5. peaks are positive and bounded by the pool.
func TestPropertyCrossSystemInvariants(t *testing.T) {
	horizon := int64(48 * 3600) // generous: everything can finish
	f := func(seed int64) bool {
		wl := randomHTCWorkload(seed)
		opts := systems.Options{Horizon: horizon}
		dcs, err := systems.RunDCS(context.Background(), []systems.Workload{wl}, opts)
		if err != nil {
			return false
		}
		ssp, err := systems.RunSSP(context.Background(), []systems.Workload{wl}, opts)
		if err != nil {
			return false
		}
		drp, err := systems.RunDRP(context.Background(), []systems.Workload{wl}, opts)
		if err != nil {
			return false
		}
		dc, err := Run(context.Background(), []systems.Workload{wl}, Config{Options: opts})
		if err != nil {
			return false
		}
		pDCS, _ := dcs.Provider(wl.Name)
		pSSP, _ := ssp.Provider(wl.Name)
		pDRP, _ := drp.Provider(wl.Name)
		pDC, _ := dc.Provider(wl.Name)

		// (1) all jobs complete under the generous horizon.
		for _, p := range []systems.ProviderResult{pDCS, pSSP, pDRP, pDC} {
			if p.Completed != len(wl.Jobs) || p.Submitted != len(wl.Jobs) {
				return false
			}
		}
		// (2) DCS == SSP.
		if pDCS.Completed != pSSP.Completed || pDCS.NodeHours != pSSP.NodeHours {
			return false
		}
		// (3) fixed billing: the RE starts at the first submission and
		// bills whole hours until the horizon.
		leaseHours := float64((horizon - wl.FirstSubmit() + 3599) / 3600)
		if pDCS.NodeHours != float64(wl.FixedNodes)*leaseHours {
			return false
		}
		// (4) consumption >= raw demand served.
		raw := float64(job.TotalNodeSeconds(wl.Jobs)) / 3600
		for _, p := range []systems.ProviderResult{pDRP, pDC} {
			if p.NodeHours < raw-1e-6 {
				return false
			}
		}
		// (5) peaks sane.
		for _, r := range []systems.Result{dcs, ssp, drp, dc} {
			if r.PeakNodes <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDawningCloudNeverBelowInitialLease checks the B floor: the
// DSP system's consumption is at least B x window (the initial lease is
// never released while the TRE lives).
func TestPropertyDawningCloudNeverBelowInitialLease(t *testing.T) {
	horizon := int64(24 * 3600)
	f := func(seed int64) bool {
		wl := randomHTCWorkload(seed)
		dc, err := Run(context.Background(), []systems.Workload{wl}, Config{Options: systems.Options{Horizon: horizon}})
		if err != nil {
			return false
		}
		p, _ := dc.Provider(wl.Name)
		// The initial lease exists from the TRE's start — the first
		// submission — not from the epoch, so the floor covers the
		// remaining window. (With the epoch-based floor this property
		// failed for seeds pairing a late first submit with a large B,
		// e.g. 5464184659837772391.)
		floor := float64(wl.Params.InitialNodes) * float64(horizon-wl.FirstSubmit()) / 3600
		return p.NodeHours >= floor-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterministicRuns re-runs each system on the same workload
// and requires bit-identical results.
func TestPropertyDeterministicRuns(t *testing.T) {
	f := func(seed int64) bool {
		wl := randomHTCWorkload(seed)
		opts := systems.Options{Horizon: 24 * 3600}
		a, err := systems.RunDRP(context.Background(), []systems.Workload{wl}, opts)
		if err != nil {
			return false
		}
		b, err := systems.RunDRP(context.Background(), []systems.Workload{wl}, opts)
		if err != nil {
			return false
		}
		pa, _ := a.Provider(wl.Name)
		pb, _ := b.Provider(wl.Name)
		return pa.NodeHours == pb.NodeHours && pa.Completed == pb.Completed &&
			a.PeakNodes == b.PeakNodes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
