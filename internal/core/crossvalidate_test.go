package core

import (
	"context"
	"math"
	"testing"

	"repro/internal/emulation"
	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/systems"
)

// TestCrossValidationEmulationVsSimulation is the methodological check
// behind the substitution documented in DESIGN.md: the paper evaluates via
// a wall-clock emulation; this repository's experiments run on a virtual
// clock. Both engines execute the same DSP policy over the same workload;
// completions must match exactly and consumption must agree within a
// tolerance covering the emulator's timer jitter (its scans are not
// phase-locked to the virtual clock).
func TestCrossValidationEmulationVsSimulation(t *testing.T) {
	var jobs []job.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, job.Job{
			ID:      i + 1,
			Submit:  int64(i * 300),
			Runtime: 600,
			Nodes:   (i % 4) + 1,
		})
	}
	params := policy.HTCDefaults(4, 1.5)
	horizon := int64(4 * 3600)

	emu, err := emulation.Run(emulation.Config{
		Speedup: 30000,
		Jobs:    jobs,
		Params:  params,
		Horizon: horizon,
	})
	if err != nil {
		t.Fatalf("emulation: %v", err)
	}

	wl := systems.Workload{
		Name:       "emulated-htc",
		Class:      job.HTC,
		Jobs:       jobs,
		FixedNodes: job.MaxNodes(jobs),
		Params:     params,
	}
	des, err := Run(context.Background(), []systems.Workload{wl}, Config{Options: systems.Options{Horizon: horizon}})
	if err != nil {
		t.Fatalf("simulation: %v", err)
	}
	p, ok := des.Provider("emulated-htc")
	if !ok {
		t.Fatal("provider missing from simulation")
	}

	if emu.Completed != p.Completed {
		t.Errorf("completed: emulation %d vs simulation %d", emu.Completed, p.Completed)
	}
	if p.NodeHours == 0 {
		t.Fatal("simulation recorded no consumption")
	}
	ratio := emu.NodeHours / p.NodeHours
	if math.Abs(ratio-1) > 0.35 {
		t.Errorf("consumption diverges: emulation %.1f vs simulation %.1f (ratio %.2f)",
			emu.NodeHours, p.NodeHours, ratio)
	}
}
