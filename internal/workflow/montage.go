package workflow

import (
	"fmt"
	"math"
	"math/rand"
)

// MontageConfig parameterizes the Montage DAG generator. The defaults in
// PaperMontage reproduce the paper's 1,000-task instance.
type MontageConfig struct {
	// Name labels the workflow.
	Name string
	// Seed drives runtime jitter and overlap-pair selection.
	Seed int64
	// Images is the number of input sky images (the width of the
	// mProjectPP and mBackground levels).
	Images int
	// Diffs is the number of overlapping image pairs (the width of the
	// mDiffFit level, the workflow's widest level). Zero defaults to
	// roughly four overlaps per image, the shape of a dense mosaic.
	Diffs int
	// Shrinks is the number of mShrink tiles. Zero defaults to
	// max(1, Images/28).
	Shrinks int
	// MeanRuntime rescales task runtimes so their mean matches this
	// value in seconds. Zero keeps the built-in per-type profile.
	MeanRuntime float64
	// RuntimeJitter is the lognormal sigma applied per task (0 = none).
	RuntimeJitter float64
}

// montageProfile is the relative per-type runtime profile, loosely
// following published Montage task characterizations: many short parallel
// tasks plus a few long serial aggregation steps.
var montageProfile = map[string]float64{
	"mProjectPP":  13,
	"mDiffFit":    10,
	"mConcatFit":  60,
	"mBgModel":    90,
	"mBackground": 11,
	"mImgtbl":     30,
	"mAdd":        80,
	"mShrink":     45,
	"mJPEG":       40,
}

// TaskCount reports how many tasks the configuration generates:
// 2*Images + Diffs + Shrinks + 5 serial tasks.
func (c *MontageConfig) TaskCount() int {
	c2 := *c
	c2.applyDefaults()
	return 2*c2.Images + c2.Diffs + c2.Shrinks + 5
}

func (c *MontageConfig) applyDefaults() {
	if c.Name == "" {
		c.Name = "montage"
	}
	if c.Diffs == 0 {
		c.Diffs = 4*c.Images - 7
		if c.Diffs < 1 {
			c.Diffs = 1
		}
	}
	if c.Shrinks == 0 {
		c.Shrinks = c.Images / 28
		if c.Shrinks < 1 {
			c.Shrinks = 1
		}
	}
}

// Montage generates a Montage-shaped DAG:
//
//	mProjectPP (Images) -> mDiffFit (Diffs) -> mConcatFit -> mBgModel ->
//	mBackground (Images) -> mImgtbl -> mAdd -> mShrink (Shrinks) -> mJPEG
//
// Each mDiffFit depends on two neighbouring projections; each mBackground
// on its projection plus the background model; the aggregation tasks on
// every task of the preceding level. All tasks demand one node.
func Montage(cfg MontageConfig) (*DAG, error) {
	if cfg.Images < 2 {
		return nil, fmt.Errorf("workflow: montage needs >= 2 images, got %d", cfg.Images)
	}
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &DAG{Name: cfg.Name}
	nextID := 1
	add := func(typ string, deps []int) int {
		id := nextID
		nextID++
		d.Tasks = append(d.Tasks, Task{
			ID:      id,
			Type:    typ,
			Runtime: sampleMontageRuntime(rng, typ, cfg.RuntimeJitter),
			Nodes:   1,
			Deps:    deps,
		})
		return id
	}

	projects := make([]int, cfg.Images)
	for i := range projects {
		projects[i] = add("mProjectPP", nil)
	}

	diffs := make([]int, cfg.Diffs)
	for i := range diffs {
		// Neighbouring pairs: image i overlaps a nearby image, like
		// tiles in a mosaic grid.
		a := i % cfg.Images
		b := (a + 1 + rng.Intn(3)) % cfg.Images
		if b == a {
			b = (a + 1) % cfg.Images
		}
		diffs[i] = add("mDiffFit", []int{projects[a], projects[b]})
	}

	concat := add("mConcatFit", diffs)
	bgModel := add("mBgModel", []int{concat})

	backgrounds := make([]int, cfg.Images)
	for i := range backgrounds {
		backgrounds[i] = add("mBackground", []int{projects[i], bgModel})
	}

	imgtbl := add("mImgtbl", backgrounds)
	mAdd := add("mAdd", []int{imgtbl})

	shrinks := make([]int, cfg.Shrinks)
	for i := range shrinks {
		shrinks[i] = add("mShrink", []int{mAdd})
	}
	add("mJPEG", shrinks)

	if cfg.MeanRuntime > 0 {
		rescaleMean(d, cfg.MeanRuntime)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func sampleMontageRuntime(rng *rand.Rand, typ string, jitter float64) int64 {
	base := montageProfile[typ]
	if base == 0 {
		base = 10
	}
	if jitter > 0 {
		base *= math.Exp(rng.NormFloat64() * jitter)
	}
	r := int64(math.Round(base))
	if r < 1 {
		r = 1
	}
	return r
}

// rescaleMean multiplies runtimes so the DAG mean approaches target,
// distributing integer rounding remainders over the widest level.
func rescaleMean(d *DAG, target float64) {
	mean := d.MeanRuntime()
	if mean == 0 {
		return
	}
	factor := target / mean
	for i := range d.Tasks {
		r := int64(math.Round(float64(d.Tasks[i].Runtime) * factor))
		if r < 1 {
			r = 1
		}
		d.Tasks[i].Runtime = r
	}
	// Distribute the remaining whole seconds one at a time.
	want := int64(math.Round(target * float64(len(d.Tasks))))
	diff := want - d.TotalRuntime()
	step := int64(1)
	if diff < 0 {
		step = -1
		diff = -diff
	}
	for i := 0; diff > 0 && i < len(d.Tasks); i++ {
		if d.Tasks[i].Runtime+step >= 1 {
			d.Tasks[i].Runtime += step
			diff--
		}
	}
}

// PaperMontage reproduces the paper's workload: 1,000 tasks with mean
// runtime 11.38 s. The level widths (166 projections, 657 overlap pairs,
// 6 shrink tiles) match the paper's reported accumulated demand of 166
// nodes for most of the run and the DRP system's 662-node peak lease.
func PaperMontage(seed int64) (*DAG, error) {
	return Montage(MontageConfig{
		Name:          "montage-1000",
		Seed:          seed,
		Images:        166,
		Diffs:         657,
		Shrinks:       6,
		MeanRuntime:   11.38,
		RuntimeJitter: 0.25,
	})
}
