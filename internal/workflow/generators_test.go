package workflow

import (
	"testing"
	"testing/quick"
)

func TestCyberShakeStructure(t *testing.T) {
	d, err := CyberShake(CyberShakeConfig{Seed: 1, Sites: 3, VariationsPerSite: 5})
	if err != nil {
		t.Fatalf("CyberShake: %v", err)
	}
	// 3 sites x (2 SGT + 5 seis + 5 peak) + 2 zips = 38.
	if len(d.Tasks) != 38 {
		t.Fatalf("tasks = %d, want 38", len(d.Tasks))
	}
	levels, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// SGT -> seis -> peak/zipseis -> zippsa.
	if len(levels) != 4 {
		t.Errorf("levels = %d, want 4", len(levels))
	}
	if len(levels[0]) != 6 {
		t.Errorf("level 0 = %d ExtractSGT tasks, want 6", len(levels[0]))
	}
	w, _ := d.MaxWidth()
	// Level 2 holds the 15 peak calculations plus ZipSeis (it depends
	// only on the level-1 seismograms).
	if w != 16 {
		t.Errorf("max width = %d, want 16", w)
	}
}

func TestCyberShakeValidation(t *testing.T) {
	if _, err := CyberShake(CyberShakeConfig{Sites: 0, VariationsPerSite: 1}); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := CyberShake(CyberShakeConfig{Sites: 1, VariationsPerSite: 0}); err == nil {
		t.Error("zero variations accepted")
	}
}

func TestEpigenomicsDeepChains(t *testing.T) {
	d, err := Epigenomics(EpigenomicsConfig{Seed: 2, Lanes: 8})
	if err != nil {
		t.Fatalf("Epigenomics: %v", err)
	}
	// 1 split + 8 lanes x 4 + merge + index + pileup = 36.
	if len(d.Tasks) != 36 {
		t.Fatalf("tasks = %d, want 36", len(d.Tasks))
	}
	levels, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// split, filter, sol, bfq, map, merge, index, pileup = 8 levels deep.
	if len(levels) != 8 {
		t.Errorf("levels = %d, want 8 (deep pipeline)", len(levels))
	}
	w, _ := d.MaxWidth()
	if w != 8 {
		t.Errorf("max width = %d, want 8 (lanes)", w)
	}
	cp, _ := d.CriticalPath()
	if cp <= 0 {
		t.Error("critical path missing")
	}
}

func TestEpigenomicsValidation(t *testing.T) {
	if _, err := Epigenomics(EpigenomicsConfig{Lanes: 0}); err == nil {
		t.Error("zero lanes accepted")
	}
}

func TestLigoInspiralPairedStages(t *testing.T) {
	d, err := LigoInspiral(LigoConfig{Seed: 3, Groups: 2, TemplatesPerGroup: 4})
	if err != nil {
		t.Fatalf("LigoInspiral: %v", err)
	}
	// Per group: 4 banks + 4 inspirals + thinca + 4 trigbanks +
	// 4 inspirals + thinca = 18; two groups = 36.
	if len(d.Tasks) != 36 {
		t.Fatalf("tasks = %d, want 36", len(d.Tasks))
	}
	levels, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// bank, inspiral, thinca, trigbank, inspiral, thinca = 6 levels.
	if len(levels) != 6 {
		t.Errorf("levels = %d, want 6", len(levels))
	}
	counts := map[string]int{}
	for _, task := range d.Tasks {
		counts[task.Type]++
	}
	if counts["Inspiral"] != 16 || counts["Thinca"] != 4 {
		t.Errorf("type counts = %v", counts)
	}
}

func TestLigoValidation(t *testing.T) {
	if _, err := LigoInspiral(LigoConfig{Groups: 0, TemplatesPerGroup: 1}); err == nil {
		t.Error("zero groups accepted")
	}
}

func TestGeneratorsRegistry(t *testing.T) {
	for name, gen := range Generators {
		d, err := gen(7, 200)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: invalid DAG: %v", name, err)
		}
		if len(d.Tasks) < 20 {
			t.Errorf("%s: only %d tasks for requested ~200", name, len(d.Tasks))
		}
		jobs := d.Jobs(0)
		if len(jobs) != len(d.Tasks) {
			t.Errorf("%s: job conversion lost tasks", name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for name, gen := range Generators {
		a, err := gen(11, 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := gen(11, 100)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Tasks) != len(b.Tasks) {
			t.Errorf("%s: nondeterministic task count", name)
			continue
		}
		for i := range a.Tasks {
			if a.Tasks[i].Runtime != b.Tasks[i].Runtime {
				t.Errorf("%s: task %d runtime differs across runs", name, i)
				break
			}
		}
	}
}

// Property: every generator yields acyclic DAGs whose critical path is
// bounded by the total runtime, for arbitrary seeds and sizes.
func TestPropertyGeneratorInvariants(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		size := int(sizeRaw)%300 + 20
		for _, gen := range Generators {
			d, err := gen(seed, size)
			if err != nil {
				return false
			}
			cp, err := d.CriticalPath()
			if err != nil {
				return false
			}
			if cp <= 0 || cp > d.TotalRuntime() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
