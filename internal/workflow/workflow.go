// Package workflow models MTC scientific workflows as directed acyclic
// graphs of tasks, provides structural analysis (validation, topological
// levels, critical path), JSON serialization for the job emulator, and a
// generator reproducing the shape of the Montage astronomy workflow the
// paper uses (NASA/IPAC sky-mosaic pipeline, 1,000 tasks, mean task
// runtime 11.38 s).
package workflow

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/job"
)

// Task is one node of a workflow DAG.
type Task struct {
	// ID is unique within the workflow.
	ID int `json:"id"`
	// Type is the transformation name (e.g. "mProjectPP").
	Type string `json:"type"`
	// Runtime is the execution duration in seconds.
	Runtime int64 `json:"runtime"`
	// Nodes is the resource demand; Montage tasks are single-node.
	Nodes int `json:"nodes"`
	// Deps lists task IDs that must finish before this task starts.
	Deps []int `json:"deps,omitempty"`
}

// DAG is a whole workflow.
type DAG struct {
	Name  string `json:"name"`
	Tasks []Task `json:"tasks"`
}

// Validate checks IDs, dependency references, resource demands and
// acyclicity. It returns the first problem found.
func (d *DAG) Validate() error {
	index := make(map[int]int, len(d.Tasks))
	for i, t := range d.Tasks {
		if _, dup := index[t.ID]; dup {
			return fmt.Errorf("workflow %s: duplicate task ID %d", d.Name, t.ID)
		}
		index[t.ID] = i
		if t.Nodes < 1 {
			return fmt.Errorf("workflow %s: task %d demands %d nodes", d.Name, t.ID, t.Nodes)
		}
		if t.Runtime < 0 {
			return fmt.Errorf("workflow %s: task %d has negative runtime", d.Name, t.ID)
		}
	}
	for _, t := range d.Tasks {
		for _, dep := range t.Deps {
			if _, ok := index[dep]; !ok {
				return fmt.Errorf("workflow %s: task %d depends on missing task %d", d.Name, t.ID, dep)
			}
			if dep == t.ID {
				return fmt.Errorf("workflow %s: task %d depends on itself", d.Name, t.ID)
			}
		}
	}
	if _, err := d.topoOrder(); err != nil {
		return err
	}
	return nil
}

// topoOrder returns task indices in a topological order, or an error if the
// graph has a cycle.
func (d *DAG) topoOrder() ([]int, error) {
	index := make(map[int]int, len(d.Tasks))
	for i, t := range d.Tasks {
		index[t.ID] = i
	}
	indeg := make([]int, len(d.Tasks))
	children := make([][]int, len(d.Tasks))
	for i, t := range d.Tasks {
		for _, dep := range t.Deps {
			di, ok := index[dep]
			if !ok {
				return nil, fmt.Errorf("workflow %s: task %d depends on missing task %d", d.Name, t.ID, dep)
			}
			indeg[i]++
			children[di] = append(children[di], i)
		}
	}
	queue := make([]int, 0, len(d.Tasks))
	for i := range d.Tasks {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, len(d.Tasks))
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		order = append(order, i)
		for _, c := range children[i] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(order) != len(d.Tasks) {
		return nil, fmt.Errorf("workflow %s: dependency cycle", d.Name)
	}
	return order, nil
}

// Levels groups task IDs by dependency depth: level 0 has no dependencies,
// level k+1 depends only on levels <= k with at least one dependency at
// level k. This is the wave structure an unbounded-resource execution
// follows.
func (d *DAG) Levels() ([][]int, error) {
	order, err := d.topoOrder()
	if err != nil {
		return nil, err
	}
	index := make(map[int]int, len(d.Tasks))
	for i, t := range d.Tasks {
		index[t.ID] = i
	}
	depth := make([]int, len(d.Tasks))
	maxDepth := 0
	for _, i := range order {
		for _, dep := range d.Tasks[i].Deps {
			if dd := depth[index[dep]] + 1; dd > depth[i] {
				depth[i] = dd
			}
		}
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
	}
	levels := make([][]int, maxDepth+1)
	for i, t := range d.Tasks {
		levels[depth[i]] = append(levels[depth[i]], t.ID)
	}
	return levels, nil
}

// MaxWidth reports the largest level size: the peak parallelism an
// unbounded execution reaches. This drives the DRP system's node demand.
func (d *DAG) MaxWidth() (int, error) {
	levels, err := d.Levels()
	if err != nil {
		return 0, err
	}
	w := 0
	for _, l := range levels {
		if len(l) > w {
			w = len(l)
		}
	}
	return w, nil
}

// CriticalPath returns the longest dependency chain duration in seconds:
// a lower bound on any execution's makespan.
func (d *DAG) CriticalPath() (int64, error) {
	order, err := d.topoOrder()
	if err != nil {
		return 0, err
	}
	index := make(map[int]int, len(d.Tasks))
	for i, t := range d.Tasks {
		index[t.ID] = i
	}
	finish := make([]int64, len(d.Tasks))
	var cp int64
	for _, i := range order {
		var start int64
		for _, dep := range d.Tasks[i].Deps {
			if f := finish[index[dep]]; f > start {
				start = f
			}
		}
		finish[i] = start + d.Tasks[i].Runtime
		if finish[i] > cp {
			cp = finish[i]
		}
	}
	return cp, nil
}

// TotalRuntime sums all task runtimes (the serial execution time).
func (d *DAG) TotalRuntime() int64 {
	var total int64
	for _, t := range d.Tasks {
		total += t.Runtime
	}
	return total
}

// MeanRuntime is the average task runtime in seconds, 0 for empty DAGs.
func (d *DAG) MeanRuntime() float64 {
	if len(d.Tasks) == 0 {
		return 0
	}
	return float64(d.TotalRuntime()) / float64(len(d.Tasks))
}

// Jobs converts the DAG into simulation jobs submitted at the given time.
// The MTC server receives the whole workflow at submission; dependency
// release is the trigger monitor's responsibility.
func (d *DAG) Jobs(submit int64) []job.Job {
	jobs := make([]job.Job, len(d.Tasks))
	for i, t := range d.Tasks {
		deps := make([]int, len(t.Deps))
		copy(deps, t.Deps)
		jobs[i] = job.Job{
			ID:       t.ID,
			Name:     fmt.Sprintf("%s/%s-%d", d.Name, t.Type, t.ID),
			Class:    job.MTC,
			Submit:   submit,
			Runtime:  t.Runtime,
			Nodes:    t.Nodes,
			Deps:     deps,
			Workflow: d.Name,
		}
	}
	return jobs
}

// Encode writes the DAG as JSON, the job-emulator input format.
func Encode(w io.Writer, d *DAG) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("workflow: encode %s: %w", d.Name, err)
	}
	return nil
}

// Decode reads a JSON DAG and validates it.
func Decode(r io.Reader) (*DAG, error) {
	var d DAG
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("workflow: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}
