package workflow

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

// diamond returns a 4-task diamond DAG: 1 -> {2,3} -> 4.
func diamond() *DAG {
	return &DAG{
		Name: "diamond",
		Tasks: []Task{
			{ID: 1, Type: "a", Runtime: 10, Nodes: 1},
			{ID: 2, Type: "b", Runtime: 20, Nodes: 1, Deps: []int{1}},
			{ID: 3, Type: "c", Runtime: 5, Nodes: 1, Deps: []int{1}},
			{ID: 4, Type: "d", Runtime: 1, Nodes: 1, Deps: []int{2, 3}},
		},
	}
}

func TestValidateAcceptsDiamond(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Fatalf("Validate(diamond) = %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name string
		d    *DAG
	}{
		{"duplicate id", &DAG{Tasks: []Task{{ID: 1, Nodes: 1}, {ID: 1, Nodes: 1}}}},
		{"zero nodes", &DAG{Tasks: []Task{{ID: 1, Nodes: 0}}}},
		{"negative runtime", &DAG{Tasks: []Task{{ID: 1, Nodes: 1, Runtime: -1}}}},
		{"missing dep", &DAG{Tasks: []Task{{ID: 1, Nodes: 1, Deps: []int{9}}}}},
		{"self dep", &DAG{Tasks: []Task{{ID: 1, Nodes: 1, Deps: []int{1}}}}},
		{"cycle", &DAG{Tasks: []Task{
			{ID: 1, Nodes: 1, Deps: []int{2}},
			{ID: 2, Nodes: 1, Deps: []int{1}},
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.d.Validate(); err == nil {
				t.Error("invalid DAG accepted")
			}
		})
	}
}

func TestLevels(t *testing.T) {
	levels, err := diamond().Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	want := [][]int{{1}, {2, 3}, {4}}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v, want %v", levels, want)
	}
	for i := range want {
		if len(levels[i]) != len(want[i]) {
			t.Errorf("level %d = %v, want %v", i, levels[i], want[i])
		}
	}
}

func TestMaxWidth(t *testing.T) {
	w, err := diamond().MaxWidth()
	if err != nil {
		t.Fatalf("MaxWidth: %v", err)
	}
	if w != 2 {
		t.Errorf("MaxWidth = %d, want 2", w)
	}
}

func TestCriticalPath(t *testing.T) {
	cp, err := diamond().CriticalPath()
	if err != nil {
		t.Fatalf("CriticalPath: %v", err)
	}
	// 10 + 20 + 1 through the slow branch.
	if cp != 31 {
		t.Errorf("CriticalPath = %d, want 31", cp)
	}
}

func TestTotalAndMeanRuntime(t *testing.T) {
	d := diamond()
	if got := d.TotalRuntime(); got != 36 {
		t.Errorf("TotalRuntime = %d, want 36", got)
	}
	if got := d.MeanRuntime(); got != 9 {
		t.Errorf("MeanRuntime = %g, want 9", got)
	}
	empty := &DAG{}
	if empty.MeanRuntime() != 0 {
		t.Error("MeanRuntime(empty) != 0")
	}
}

func TestJobsConversion(t *testing.T) {
	jobs := diamond().Jobs(500)
	if err := job.ValidateAll(jobs); err != nil {
		t.Fatalf("jobs invalid: %v", err)
	}
	for _, j := range jobs {
		if j.Submit != 500 {
			t.Errorf("job %d submit = %d, want 500", j.ID, j.Submit)
		}
		if j.Class != job.MTC {
			t.Errorf("job %d class = %v, want MTC", j.ID, j.Class)
		}
		if j.Workflow != "diamond" {
			t.Errorf("job %d workflow = %q", j.ID, j.Workflow)
		}
	}
	if len(jobs[3].Deps) != 2 {
		t.Errorf("job 4 deps = %v, want 2 deps", jobs[3].Deps)
	}
}

func TestJobsDepsAreCopies(t *testing.T) {
	d := diamond()
	jobs := d.Jobs(0)
	jobs[3].Deps[0] = 999
	if d.Tasks[3].Deps[0] == 999 {
		t.Error("Jobs shares Deps slice with DAG")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, diamond()); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	d, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if d.Name != "diamond" || len(d.Tasks) != 4 {
		t.Errorf("decoded = %s with %d tasks", d.Name, len(d.Tasks))
	}
	if d.Tasks[1].Runtime != 20 || d.Tasks[1].Deps[0] != 1 {
		t.Errorf("task 2 = %+v", d.Tasks[1])
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	bad := `{"name":"x","tasks":[{"id":1,"nodes":0,"runtime":5}]}`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("Decode accepted invalid DAG")
	}
	if _, err := Decode(strings.NewReader("{garbage")); err == nil {
		t.Error("Decode accepted malformed JSON")
	}
}

func TestMontageStructure(t *testing.T) {
	d, err := Montage(MontageConfig{Name: "m", Seed: 1, Images: 10, Diffs: 30, Shrinks: 2})
	if err != nil {
		t.Fatalf("Montage: %v", err)
	}
	wantTasks := 2*10 + 30 + 2 + 5
	if len(d.Tasks) != wantTasks {
		t.Fatalf("tasks = %d, want %d", len(d.Tasks), wantTasks)
	}
	levels, err := d.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	// mProject, mDiffFit, mConcatFit, mBgModel, mBackground, mImgtbl,
	// mAdd, mShrink, mJPEG = 9 levels.
	if len(levels) != 9 {
		t.Fatalf("levels = %d, want 9", len(levels))
	}
	wantWidths := []int{10, 30, 1, 1, 10, 1, 1, 2, 1}
	for i, w := range wantWidths {
		if len(levels[i]) != w {
			t.Errorf("level %d width = %d, want %d", i, len(levels[i]), w)
		}
	}
}

func TestMontageTypesPerLevel(t *testing.T) {
	d, err := Montage(MontageConfig{Seed: 1, Images: 5})
	if err != nil {
		t.Fatalf("Montage: %v", err)
	}
	byID := make(map[int]Task)
	for _, task := range d.Tasks {
		byID[task.ID] = task
	}
	levels, _ := d.Levels()
	wantTypes := []string{"mProjectPP", "mDiffFit", "mConcatFit", "mBgModel",
		"mBackground", "mImgtbl", "mAdd", "mShrink", "mJPEG"}
	for i, lvl := range levels {
		for _, id := range lvl {
			if byID[id].Type != wantTypes[i] {
				t.Errorf("level %d has type %s, want %s", i, byID[id].Type, wantTypes[i])
			}
		}
	}
}

func TestMontageRejectsTooFewImages(t *testing.T) {
	if _, err := Montage(MontageConfig{Images: 1}); err == nil {
		t.Error("Montage accepted 1 image")
	}
}

func TestMontageDeterministicBySeed(t *testing.T) {
	a, err := PaperMontage(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperMontage(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatal("task counts differ")
	}
	for i := range a.Tasks {
		if a.Tasks[i].Runtime != b.Tasks[i].Runtime {
			t.Fatalf("task %d runtime differs", i)
		}
	}
}

func TestPaperMontageMatchesPaper(t *testing.T) {
	d, err := PaperMontage(42)
	if err != nil {
		t.Fatalf("PaperMontage: %v", err)
	}
	if len(d.Tasks) != 1000 {
		t.Errorf("tasks = %d, want 1000", len(d.Tasks))
	}
	if mean := d.MeanRuntime(); math.Abs(mean-11.38) > 0.6 {
		t.Errorf("mean runtime = %.2f, want 11.38 +/- 0.6", mean)
	}
	w, err := d.MaxWidth()
	if err != nil {
		t.Fatal(err)
	}
	if w != 657 {
		t.Errorf("max width = %d, want 657 (mDiffFit level)", w)
	}
	for _, task := range d.Tasks {
		if task.Nodes != 1 {
			t.Errorf("task %d demands %d nodes, want 1", task.ID, task.Nodes)
		}
	}
}

func TestMontageTaskCountHelper(t *testing.T) {
	cfg := MontageConfig{Images: 166, Diffs: 657, Shrinks: 6}
	if got := cfg.TaskCount(); got != 1000 {
		t.Errorf("TaskCount = %d, want 1000", got)
	}
	d, err := Montage(MontageConfig{Seed: 9, Images: 166, Diffs: 657, Shrinks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tasks) != 1000 {
		t.Errorf("generated %d tasks, want 1000", len(d.Tasks))
	}
}

func TestMontageJobsRoundtripThroughJSON(t *testing.T) {
	d, err := Montage(MontageConfig{Seed: 3, Images: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Tasks) != len(d.Tasks) {
		t.Fatalf("roundtrip task count %d != %d", len(d2.Tasks), len(d.Tasks))
	}
	cp1, _ := d.CriticalPath()
	cp2, _ := d2.CriticalPath()
	if cp1 != cp2 {
		t.Errorf("critical path changed across roundtrip: %d vs %d", cp1, cp2)
	}
}

// Property: for random Montage configurations, the DAG validates, the
// critical path never exceeds the total runtime, and the max width never
// exceeds the task count.
func TestPropertyMontageInvariants(t *testing.T) {
	f := func(seed int64, img, diffs, shrinks uint8) bool {
		cfg := MontageConfig{
			Seed:    seed,
			Images:  int(img%50) + 2,
			Diffs:   int(diffs) + 1,
			Shrinks: int(shrinks%10) + 1,
		}
		d, err := Montage(cfg)
		if err != nil {
			return false
		}
		if err := d.Validate(); err != nil {
			return false
		}
		cp, err := d.CriticalPath()
		if err != nil {
			return false
		}
		if cp > d.TotalRuntime() || cp <= 0 {
			return false
		}
		w, err := d.MaxWidth()
		if err != nil {
			return false
		}
		return w <= len(d.Tasks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: levels partition the task set and every dependency crosses to
// a strictly earlier level.
func TestPropertyLevelsPartitionAndOrder(t *testing.T) {
	f := func(seed int64, img uint8) bool {
		d, err := Montage(MontageConfig{Seed: seed, Images: int(img%30) + 2})
		if err != nil {
			return false
		}
		levels, err := d.Levels()
		if err != nil {
			return false
		}
		levelOf := make(map[int]int)
		count := 0
		for li, lvl := range levels {
			for _, id := range lvl {
				if _, dup := levelOf[id]; dup {
					return false
				}
				levelOf[id] = li
				count++
			}
		}
		if count != len(d.Tasks) {
			return false
		}
		for _, task := range d.Tasks {
			for _, dep := range task.Deps {
				if levelOf[dep] >= levelOf[task.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
