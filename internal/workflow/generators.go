package workflow

import (
	"fmt"
	"math"
	"math/rand"
)

// This file adds the other scientific workflows distributed by the Pegasus
// WorkflowGenerator the paper cites for its MTC workloads [15]. Montage is
// the paper's evaluation workload (montage.go); CyberShake, Epigenomics
// and LIGO Inspiral exercise different DAG shapes — broad scatter/gather,
// deep pipelines and paired fan-outs — so the MTC runtime environment and
// its demand accounting are tested well beyond one topology.

// builder accumulates tasks with sequential IDs.
type builder struct {
	rng    *rand.Rand
	jitter float64
	nextID int
	tasks  []Task
}

func newBuilder(seed int64, jitter float64) *builder {
	return &builder{rng: rand.New(rand.NewSource(seed)), jitter: jitter, nextID: 1}
}

func (b *builder) add(typ string, base float64, deps []int) int {
	id := b.nextID
	b.nextID++
	if b.jitter > 0 {
		base *= math.Exp(b.rng.NormFloat64() * b.jitter)
	}
	r := int64(math.Round(base))
	if r < 1 {
		r = 1
	}
	b.tasks = append(b.tasks, Task{ID: id, Type: typ, Runtime: r, Nodes: 1, Deps: deps})
	return id
}

// CyberShakeConfig parameterizes the CyberShake seismic-hazard workflow:
// per-site ruptures are simulated against two strain Green tensors, then
// aggregated.
type CyberShakeConfig struct {
	Name string
	Seed int64
	// Sites is the number of geographic sites (fan-out pairs).
	Sites int
	// VariationsPerSite is the rupture-variation count per site.
	VariationsPerSite int
	// RuntimeJitter is the lognormal sigma per task.
	RuntimeJitter float64
}

// CyberShake generates the CyberShake DAG shape:
//
//	per site: ExtractSGT (x2) -> SeismogramSynthesis (per variation)
//	          -> PeakValCalcOkaya (per variation) -> ZipSeis / ZipPSA (global)
func CyberShake(cfg CyberShakeConfig) (*DAG, error) {
	if cfg.Sites < 1 || cfg.VariationsPerSite < 1 {
		return nil, fmt.Errorf("workflow: cybershake needs sites and variations >= 1, got %d/%d",
			cfg.Sites, cfg.VariationsPerSite)
	}
	if cfg.Name == "" {
		cfg.Name = "cybershake"
	}
	b := newBuilder(cfg.Seed, cfg.RuntimeJitter)
	var allPeaks, allSeis []int
	for s := 0; s < cfg.Sites; s++ {
		sgtX := b.add("ExtractSGT", 110, nil)
		sgtY := b.add("ExtractSGT", 110, nil)
		for v := 0; v < cfg.VariationsPerSite; v++ {
			seis := b.add("SeismogramSynthesis", 22, []int{sgtX, sgtY})
			allSeis = append(allSeis, seis)
			peak := b.add("PeakValCalcOkaya", 1, []int{seis})
			allPeaks = append(allPeaks, peak)
		}
	}
	b.add("ZipSeis", 35, allSeis)
	b.add("ZipPSA", 35, allPeaks)
	d := &DAG{Name: cfg.Name, Tasks: b.tasks}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// EpigenomicsConfig parameterizes the USC Epigenomics pipeline: parallel
// lanes of sequence filtering/mapping feeding one global index.
type EpigenomicsConfig struct {
	Name string
	Seed int64
	// Lanes is the number of parallel sequence partitions.
	Lanes int
	// RuntimeJitter is the lognormal sigma per task.
	RuntimeJitter float64
}

// Epigenomics generates the Epigenomics DAG shape: per lane a deep chain
// fastqSplit -> filterContams -> sol2sanger -> fastq2bfq -> map, then
// mapMerge -> maqIndex -> pileup across lanes. Deep chains make the
// critical path long relative to the width — the opposite regime from
// CyberShake.
func Epigenomics(cfg EpigenomicsConfig) (*DAG, error) {
	if cfg.Lanes < 1 {
		return nil, fmt.Errorf("workflow: epigenomics needs lanes >= 1, got %d", cfg.Lanes)
	}
	if cfg.Name == "" {
		cfg.Name = "epigenomics"
	}
	b := newBuilder(cfg.Seed, cfg.RuntimeJitter)
	split := b.add("fastqSplit", 35, nil)
	var maps []int
	for l := 0; l < cfg.Lanes; l++ {
		filter := b.add("filterContams", 2, []int{split})
		sol := b.add("sol2sanger", 1, []int{filter})
		bfq := b.add("fastq2bfq", 2, []int{sol})
		m := b.add("map", 115, []int{bfq})
		maps = append(maps, m)
	}
	merge := b.add("mapMerge", 9, maps)
	index := b.add("maqIndex", 2, []int{merge})
	b.add("pileup", 56, []int{index})
	d := &DAG{Name: cfg.Name, Tasks: b.tasks}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// LigoConfig parameterizes the LIGO Inspiral gravitational-wave analysis:
// paired template-bank/inspiral fan-outs with thinca coincidence stages.
type LigoConfig struct {
	Name string
	Seed int64
	// Groups is the number of analysis groups.
	Groups int
	// TemplatesPerGroup is the fan-out within each group.
	TemplatesPerGroup int
	// RuntimeJitter is the lognormal sigma per task.
	RuntimeJitter float64
}

// LigoInspiral generates the Inspiral DAG shape: per group, TmpltBank
// tasks feed Inspiral tasks gathered by a Thinca; a second Inspiral stage
// follows TrigBank and gathers into a final Thinca.
func LigoInspiral(cfg LigoConfig) (*DAG, error) {
	if cfg.Groups < 1 || cfg.TemplatesPerGroup < 1 {
		return nil, fmt.Errorf("workflow: ligo needs groups and templates >= 1, got %d/%d",
			cfg.Groups, cfg.TemplatesPerGroup)
	}
	if cfg.Name == "" {
		cfg.Name = "ligo-inspiral"
	}
	b := newBuilder(cfg.Seed, cfg.RuntimeJitter)
	for g := 0; g < cfg.Groups; g++ {
		var firstInspirals []int
		for t := 0; t < cfg.TemplatesPerGroup; t++ {
			bank := b.add("TmpltBank", 18, nil)
			insp := b.add("Inspiral", 460, []int{bank})
			firstInspirals = append(firstInspirals, insp)
		}
		thinca1 := b.add("Thinca", 5, firstInspirals)
		var secondInspirals []int
		for t := 0; t < cfg.TemplatesPerGroup; t++ {
			trig := b.add("TrigBank", 5, []int{thinca1})
			insp := b.add("Inspiral", 460, []int{trig})
			secondInspirals = append(secondInspirals, insp)
		}
		b.add("Thinca", 5, secondInspirals)
	}
	d := &DAG{Name: cfg.Name, Tasks: b.tasks}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// Generators maps generator names to constructors producing roughly
// size-task instances, used by cmd/tracegen and the gallery example.
var Generators = map[string]func(seed int64, size int) (*DAG, error){
	"montage": func(seed int64, size int) (*DAG, error) {
		images := size * 166 / 1000
		if images < 2 {
			images = 2
		}
		return Montage(MontageConfig{
			Seed: seed, Images: images,
			Diffs:       maxInt(1, size*657/1000),
			Shrinks:     maxInt(1, size*6/1000),
			MeanRuntime: 11.38, RuntimeJitter: 0.25,
		})
	},
	"cybershake": func(seed int64, size int) (*DAG, error) {
		// sites*(2+2v)+2 tasks: v=24 gives 50 tasks per site.
		sites := maxInt(1, size/50)
		return CyberShake(CyberShakeConfig{Seed: seed, Sites: sites, VariationsPerSite: 24, RuntimeJitter: 0.3})
	},
	"epigenomics": func(seed int64, size int) (*DAG, error) {
		lanes := maxInt(1, (size-4)/4)
		return Epigenomics(EpigenomicsConfig{Seed: seed, Lanes: lanes, RuntimeJitter: 0.3})
	},
	"ligo": func(seed int64, size int) (*DAG, error) {
		// groups*(4t+2) tasks: t=12 gives 50 per group.
		groups := maxInt(1, size/50)
		return LigoInspiral(LigoConfig{Seed: seed, Groups: groups, TemplatesPerGroup: 12, RuntimeJitter: 0.3})
	},
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
