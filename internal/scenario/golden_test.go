package scenario

import (
	"context"
	"os"
	"reflect"
	"testing"

	"repro/internal/experiments"
)

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestPaperBaselineMatchesSuiteGolden is the subsystem's reproduction
// contract: the declarative paper-baseline scenario must produce exactly
// the numbers the hand-coded experiment suite reports in Tables 2-4 —
// same providers, same seeds, same policies, same horizon — so a spec
// file is a faithful replacement for the hardcoded Go experiments.
func TestPaperBaselineMatchesSuiteGolden(t *testing.T) {
	spec, err := Builtin("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(spec, 0)
	if err != nil {
		t.Fatal(err)
	}

	suite := experiments.NewSuite(42)
	want, err := suite.RunAll()
	if err != nil {
		t.Fatal(err)
	}

	providers := []string{
		experiments.NASAProvider,
		experiments.BLUEProvider,
		experiments.MontageProvider,
	}
	if !reflect.DeepEqual(rep.Providers, providers) {
		t.Fatalf("providers = %v, want %v", rep.Providers, providers)
	}
	for _, system := range experiments.SystemNames {
		got, ok := rep.Base[system]
		if !ok {
			t.Fatalf("scenario missing system %s", system)
		}
		w := want[system]
		for _, provider := range providers {
			gp, ok1 := got.Provider(provider)
			wp, ok2 := w.Provider(provider)
			if !ok1 || !ok2 {
				t.Fatalf("%s: provider %s missing (scenario %v, suite %v)", system, provider, ok1, ok2)
			}
			if gp != wp {
				t.Errorf("%s/%s:\n scenario %+v\n suite    %+v", system, provider, gp, wp)
			}
		}
		if got.TotalNodeHours != w.TotalNodeHours || got.PeakNodes != w.PeakNodes ||
			got.TotalNodesAdjusted != w.TotalNodesAdjusted {
			t.Errorf("%s totals: scenario %.0f/%d/%d, suite %.0f/%d/%d", system,
				got.TotalNodeHours, got.PeakNodes, got.TotalNodesAdjusted,
				w.TotalNodeHours, w.PeakNodes, w.TotalNodesAdjusted)
		}
	}

	// Spot-check the Table 2-4 artifact values through the suite's own
	// rendering path, so this test fails loudly if either side drifts.
	for _, table := range []func(context.Context) (experiments.Artifact, error){suite.Table2, suite.Table3, suite.Table4} {
		a, err := table(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, system := range experiments.SystemNames {
			provider := providers[map[string]int{"table2": 0, "table3": 1, "table4": 2}[a.ID]]
			p, _ := rep.Base[system].Provider(provider)
			if got, want := p.NodeHours, a.Values["nodehours_"+system]; got != want {
				t.Errorf("%s %s node-hours: scenario %.2f, suite %.2f", a.ID, system, got, want)
			}
			if got, want := float64(p.Completed), a.Values["completed_"+system]; got != want {
				t.Errorf("%s %s completed: scenario %.0f, suite %.0f", a.ID, system, got, want)
			}
		}
	}
}

// TestRunParallelMatchesSerial pins the runner's determinism contract:
// any worker count produces the identical report.
func TestRunParallelMatchesSerial(t *testing.T) {
	spec, err := ParseBytes([]byte(`{"name":"det","days":2,"seed":9,
		"systems":["DCS","SSP","DawningCloud"],
		"providers":[
			{"name":"a","count":2,"source":{"kind":"synth","model":"nasa"}},
			{"name":"m","fixed_nodes":64,
			 "source":{"kind":"workflow","generator":"montage","tasks":300,"submit_at":7200}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Base, parallel.Base) {
		t.Error("parallel base results differ from serial")
	}
	if !reflect.DeepEqual(serial.Scale, parallel.Scale) ||
		!reflect.DeepEqual(serial.Grid, parallel.Grid) {
		t.Error("parallel sweep results differ from serial")
	}
	if serial.Render() != parallel.Render() {
		t.Error("rendered reports differ between worker counts")
	}
}

// TestSWFSourceCompiles exercises the third source kind end to end: an
// SWF trace written to disk becomes a provider workload.
func TestSWFSourceCompiles(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.swf"
	swfSrc := "; tiny trace\n" +
		"1 0 -1 600 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n" +
		"2 3600 -1 1200 8 -1 -1 8 1200 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	if err := writeFile(path, swfSrc); err != nil {
		t.Fatal(err)
	}
	s, err := ParseBytes([]byte(`{"name":"swf-test","days":1,"systems":["DCS","DawningCloud"],
		"providers":[{"name":"trace","source":{"kind":"swf","path":"` + path + `"},
		"policy":{"b":4,"r":1.2}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Workloads[0].Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(c.Workloads[0].Jobs))
	}
	if c.Workloads[0].FixedNodes != 8 {
		t.Errorf("derived fixed nodes = %d, want 8 (largest job)", c.Workloads[0].FixedNodes)
	}
	if _, err := c.Run(2); err != nil {
		t.Fatalf("run: %v", err)
	}
}
