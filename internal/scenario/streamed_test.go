package scenario

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/events"
	"repro/internal/job"
	"repro/internal/stream"
	"repro/internal/systems"
)

// captureSink collects events by type, safely across worker goroutines.
type captureSink struct {
	mu        sync.Mutex
	reports   []events.WindowReport
	summaries []events.WindowSummary
}

func (cs *captureSink) sink() events.Sink {
	return func(ev events.Event) {
		cs.mu.Lock()
		defer cs.mu.Unlock()
		switch e := ev.(type) {
		case events.WindowReport:
			cs.reports = append(cs.reports, e)
		case events.WindowSummary:
			cs.summaries = append(cs.summaries, e)
		}
	}
}

// TestStreamingBaselineMatchesPaperBaseline pins the scenario layer's
// half of the streamed byte-identity invariant: the streaming-baseline
// builtin (paper-baseline routed through the streamed path) reproduces
// paper-baseline's base results exactly, while additionally emitting
// one WindowReport per system per day and in-order cross-system
// WindowSummary events whose final window converges on the totals.
func TestStreamingBaselineMatchesPaperBaseline(t *testing.T) {
	want, err := Builtin("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	wantRep, err := Run(want, 4)
	if err != nil {
		t.Fatal(err)
	}

	got, err := Builtin("streaming-baseline")
	if err != nil {
		t.Fatal(err)
	}
	var caught captureSink
	gotRep, err := RunContext(context.Background(), got, 4, caught.sink())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(gotRep.Base, wantRep.Base) {
		t.Errorf("streamed base results diverged from materialized paper-baseline")
	}
	if !reflect.DeepEqual(gotRep.Summary, wantRep.Summary) {
		t.Errorf("streamed summary diverged: got %+v want %+v", gotRep.Summary, wantRep.Summary)
	}

	days := got.Days
	systemsN := len(got.Systems)
	if len(caught.reports) != days*systemsN {
		t.Errorf("got %d window reports, want %d (%d systems x %d days)",
			len(caught.reports), days*systemsN, systemsN, days)
	}
	if len(caught.summaries) != days {
		t.Fatalf("got %d window summaries, want %d", len(caught.summaries), days)
	}
	for i, sum := range caught.summaries {
		if sum.Index != i {
			t.Fatalf("summary %d has index %d; summaries must arrive in window order", i, sum.Index)
		}
	}
	final := caught.summaries[len(caught.summaries)-1]
	for i, system := range final.Systems {
		if want := wantRep.Base[system].TotalNodeHours; final.TotalNodeHours[i] != want {
			t.Errorf("final window total for %s = %g, want the run total %g", system, final.TotalNodeHours[i], want)
		}
	}
	if final.DSPSavedVsDCS != wantRep.Summary.DSPSavedVsDCS {
		t.Errorf("final window saving %g, want %g", final.DSPSavedVsDCS, wantRep.Summary.DSPSavedVsDCS)
	}

	// Per-system reports are monotone in every provider's consumption.
	perSystem := make(map[string][]events.WindowReport)
	for _, rep := range caught.reports {
		perSystem[rep.System] = append(perSystem[rep.System], rep)
	}
	for system, reps := range perSystem {
		for i := 1; i < len(reps); i++ {
			if reps[i].Index != reps[i-1].Index+1 {
				t.Fatalf("%s reports out of order: %d then %d", system, reps[i-1].Index, reps[i].Index)
			}
			for k := range reps[i].NodeHours {
				if reps[i].NodeHours[k] < reps[i-1].NodeHours[k] {
					t.Errorf("%s window %d provider %s consumption shrank: %g -> %g",
						system, reps[i].Index, reps[i].Providers[k], reps[i-1].NodeHours[k], reps[i].NodeHours[k])
				}
			}
		}
	}
}

// TestLiveScenarioMatchesMaterialized feeds a live provider's tasks
// through a LiveSource attached to a compiled scenario and checks the
// run against the same jobs simulated materialized: online ingestion is
// invisible to results.
func TestLiveScenarioMatchesMaterialized(t *testing.T) {
	spec, err := ParseBytes([]byte(`{
  "name": "live-test",
  "days": 1,
  "systems": ["SSP"],
  "providers": [
    {"name": "org-live", "fixed_nodes": 16, "source": {"kind": "live"}}
  ],
  "stream": {"enabled": true, "window_seconds": 43200}
}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Live) != 1 || c.Live[0] != "org-live" {
		t.Fatalf("live providers = %v, want [org-live]", c.Live)
	}

	jobs := make([]job.Job, 0, 60)
	for i := 0; i < 60; i++ {
		jobs = append(jobs, job.Job{
			ID:      i,
			Name:    "live-task",
			Class:   job.HTC,
			Submit:  int64(i) * 600,
			Runtime: int64(300 + 97*(i%7)),
			Nodes:   1 + i%8,
		})
	}
	src := stream.NewLiveSource(0)
	for i := range jobs {
		if err := src.TryPush(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	c.Sources = map[string]stream.Source{"org-live": src}

	var caught captureSink
	rep, err := c.RunContext(context.Background(), 1, caught.sink())
	if err != nil {
		t.Fatal(err)
	}

	wl := c.Workloads[0].Clone()
	wl.Jobs = job.CloneAll(jobs)
	want, err := systems.RunSSP(context.Background(), []systems.Workload{wl}, c.Options)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Base["SSP"], want) {
		t.Errorf("live-fed run diverged from materialized run of the same jobs")
	}
	if len(caught.reports) != 2 {
		t.Errorf("got %d window reports, want 2 (12h windows over 1 day)", len(caught.reports))
	}
}

// TestLiveValidation pins the live-source spec rules.
func TestLiveValidation(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"needs stream", `{"name": "x", "systems": ["SSP"],
			"providers": [{"name": "p", "fixed_nodes": 8, "source": {"kind": "live"}}]}`,
			"stream.enabled"},
		{"needs one system", `{"name": "x", "stream": {"enabled": true},
			"providers": [{"name": "p", "fixed_nodes": 8, "source": {"kind": "live"}}]}`,
			"exactly one"},
		{"needs fixed nodes", `{"name": "x", "systems": ["SSP"], "stream": {"enabled": true},
			"providers": [{"name": "p", "source": {"kind": "live"}}]}`,
			"fixed_nodes"},
		{"no replication", `{"name": "x", "systems": ["SSP"], "stream": {"enabled": true},
			"providers": [{"name": "p", "count": 2, "fixed_nodes": 8, "source": {"kind": "live"}}]}`,
			"replicate"},
		{"no sweep", `{"name": "x", "systems": ["DCS", "DawningCloud"], "stream": {"enabled": true}, "sweep": {"scale": true},
			"providers": [{"name": "p", "fixed_nodes": 8, "source": {"kind": "live"}},
			              {"name": "q", "source": {"kind": "synth", "model": "nasa"}}]}`,
			""},
		{"streamed system only", `{"name": "x", "systems": ["nosuch"], "stream": {"enabled": true},
			"providers": [{"name": "p", "source": {"kind": "synth", "model": "nasa"}}]}`,
			""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBytes([]byte(tc.src))
			if err == nil {
				t.Fatalf("spec unexpectedly valid")
			}
			if tc.want != "" && !containsSub(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
