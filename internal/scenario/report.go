package scenario

import (
	"fmt"
	"strings"

	"repro/internal/job"
	"repro/internal/plot"
	"repro/internal/sim"
	"repro/internal/systems"
)

// ScalePoint is one provider-count prefix of the scale sweep: the
// economies-of-scale curve the paper's title question asks about.
type ScalePoint struct {
	Providers     int
	DCSNodeHours  float64
	DSPNodeHours  float64
	SavedFraction float64
	PeakNodes     int
}

// GridPoint is one B×R combination of the grid sweep (DawningCloud over
// the swept provider in isolation).
type GridPoint struct {
	B              int
	R              float64
	NodeHours      float64
	Completed      int
	TasksPerSecond float64
}

// FederationInstance summarizes one provider instance of the federated
// run.
type FederationInstance struct {
	Name       string
	Dispatched int
	NodeHours  float64
	PeakNodes  int
}

// FederationDispatch records one routing decision of the federated run:
// which instance the policy chose for a provider's workload.
type FederationDispatch struct {
	// Time is the dispatch instant in virtual seconds (the workload's
	// first submission).
	Time int64
	// Workload is the provider name; Instance is the target's 0-based
	// InstanceID.
	Workload string
	Instance int
}

// FederationReport is the federated run's section of the report (nil
// without a federation block): the spec's member providers routed across
// N instances of one system behind a shared clock.
type FederationReport struct {
	System string
	Policy string
	// Providers lists the member providers, in dispatch-owner order.
	Providers []string
	// Instances holds the per-instance summaries in InstanceID order.
	Instances []FederationInstance
	// Merged aggregates the federation as if it were one platform
	// (provider rows in workload order, totals summed; peak nodes is the
	// sum of per-instance peaks).
	Merged systems.Result
	// Dispatches is the routing log, in dispatch order.
	Dispatches []FederationDispatch
	// Windows counts the ClusterWindow aggregates emitted.
	Windows int
}

// Summary condenses the base runs into the economies-of-scale headline.
type Summary struct {
	// TotalNodeHours and PeakNodes index the resource provider's totals
	// by system.
	TotalNodeHours map[string]float64
	PeakNodes      map[string]int
	NodesAdjusted  map[string]int
	// DSPSavedVsDCS is DawningCloud's total-consumption saving against
	// dedicated clusters (0 when either system is absent).
	DSPSavedVsDCS float64
	// DSPSavedVsDRP is the saving against direct resource provision.
	DSPSavedVsDRP float64
}

// Report is a scenario run's structured output.
type Report struct {
	Spec      *Spec
	Horizon   sim.Time
	Providers []string
	Systems   []string
	// Base maps each compared system to its run over the full provider
	// set.
	Base map[string]systems.Result
	// Scale holds the provider-count sweep (empty without sweep.scale).
	Scale []ScalePoint
	// Grid holds the B×R sweep (empty without sweep.grid).
	Grid []GridPoint
	// Federation holds the federated run (nil without a federation
	// block).
	Federation *FederationReport `json:",omitempty"`
	Summary    Summary
	// Simulations counts distinct simulations executed (cache hits and
	// deduplicated cells excluded).
	Simulations int64
}

func summarize(r *Report) Summary {
	s := Summary{
		TotalNodeHours: make(map[string]float64, len(r.Base)),
		PeakNodes:      make(map[string]int, len(r.Base)),
		NodesAdjusted:  make(map[string]int, len(r.Base)),
	}
	for system, res := range r.Base {
		s.TotalNodeHours[system] = res.TotalNodeHours
		s.PeakNodes[system] = res.PeakNodes
		s.NodesAdjusted[system] = res.TotalNodesAdjusted
	}
	if dsp, ok := s.TotalNodeHours["DawningCloud"]; ok {
		if dcs := s.TotalNodeHours["DCS"]; dcs > 0 {
			s.DSPSavedVsDCS = 1 - dsp/dcs
		}
		if drp := s.TotalNodeHours["DRP"]; drp > 0 {
			s.DSPSavedVsDRP = 1 - dsp/drp
		}
	}
	return s
}

// Render formats the whole report as aligned text: the header, one
// service-provider table per provider (the Tables 2-4 shape), the
// resource-provider totals, the sweep tables and the economies-of-scale
// summary.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario: %s  (seed %d, %d-day window, %d providers, %d systems)\n",
		r.Spec.Name, r.Spec.Seed, r.Spec.Days, len(r.Providers), len(r.Systems))
	if r.Spec.Description != "" {
		fmt.Fprintf(&b, "%s\n", r.Spec.Description)
	}
	if r.Spec.Pool.Capacity > 0 {
		fmt.Fprintf(&b, "pool: %d nodes, %s provision\n", r.Spec.Pool.Capacity, r.Spec.Pool.Policy)
	}
	b.WriteByte('\n')
	for _, provider := range r.Providers {
		b.WriteString(r.providerTable(provider))
		b.WriteByte('\n')
	}
	b.WriteString(r.totalsTable())
	if len(r.Scale) > 0 {
		b.WriteByte('\n')
		b.WriteString(r.scaleTable())
	}
	if len(r.Grid) > 0 {
		b.WriteByte('\n')
		b.WriteString(r.gridTable())
	}
	if r.Federation != nil {
		b.WriteByte('\n')
		b.WriteString(r.federationTable())
	}
	b.WriteByte('\n')
	b.WriteString(r.summaryLines())
	return b.String()
}

// federationTable renders the federated run: one row per provider
// instance plus the merged federation-as-one-platform totals.
func (r *Report) federationTable() string {
	f := r.Federation
	columns := []string{"instance", "dispatched", "node*hours", "peak nodes"}
	var rows [][]string
	for _, inst := range f.Instances {
		rows = append(rows, []string{inst.Name, fmt.Sprintf("%d", inst.Dispatched),
			fmt.Sprintf("%.0f", inst.NodeHours), fmt.Sprintf("%d", inst.PeakNodes)})
	}
	rows = append(rows, []string{"merged", fmt.Sprintf("%d", len(f.Dispatches)),
		fmt.Sprintf("%.0f", f.Merged.TotalNodeHours), fmt.Sprintf("%d", f.Merged.PeakNodes)})
	title := fmt.Sprintf("federation: %d %s instances, %s routing", len(f.Instances), f.System, f.Policy)
	note := fmt.Sprintf("%d providers routed over %d aggregation windows", len(f.Providers), f.Windows)
	return plot.Table(title, columns, rows, note)
}

// providerIsMTC reports the provider's workload class as recorded in any
// base run.
func (r *Report) providerIsMTC(provider string) bool {
	for _, res := range r.Base {
		if p, ok := res.Provider(provider); ok {
			return p.Class == job.MTC
		}
	}
	return false
}

// providerTable renders one provider's per-system metrics in the shape of
// the paper's Tables 2-4.
func (r *Report) providerTable(provider string) string {
	mtc := r.providerIsMTC(provider)
	perfHeader := "completed jobs"
	if mtc {
		perfHeader = "tasks/second"
	}
	var dcsHours float64
	if res, ok := r.Base["DCS"]; ok {
		if p, ok := res.Provider(provider); ok {
			dcsHours = p.NodeHours
		}
	}
	columns := []string{"system", perfHeader, "node*hours", "peak", "adjusted", "saved vs DCS"}
	var rows [][]string
	for _, system := range r.Systems {
		res, ok := r.Base[system]
		if !ok {
			continue
		}
		p, ok := res.Provider(provider)
		if !ok {
			continue
		}
		perf := fmt.Sprintf("%d", p.Completed)
		if mtc {
			perf = fmt.Sprintf("%.2f", p.TasksPerSecond)
		}
		saved := "/"
		if system != "DCS" && dcsHours > 0 {
			saved = fmt.Sprintf("%.1f%%", (1-p.NodeHours/dcsHours)*100)
		}
		rows = append(rows, []string{system, perf, fmt.Sprintf("%.0f", p.NodeHours),
			fmt.Sprintf("%d", p.PeakNodes), fmt.Sprintf("%d", p.NodesAdjusted), saved})
	}
	return plot.Table("provider "+provider, columns, rows, "")
}

// totalsTable renders the resource provider's view across systems.
func (r *Report) totalsTable() string {
	columns := []string{"system", "total node*hours", "peak nodes", "adjustments", "overhead s/h", "rejections"}
	var rows [][]string
	for _, system := range r.Systems {
		res, ok := r.Base[system]
		if !ok {
			continue
		}
		rows = append(rows, []string{system,
			fmt.Sprintf("%.0f", res.TotalNodeHours),
			fmt.Sprintf("%d", res.PeakNodes),
			fmt.Sprintf("%d", res.TotalNodesAdjusted),
			fmt.Sprintf("%.1f", res.OverheadPerHour),
			fmt.Sprintf("%d", res.RejectedRequests)})
	}
	return plot.Table("resource provider", columns, rows, "")
}

func (r *Report) scaleTable() string {
	xs := make([]string, len(r.Scale))
	saved := make([]float64, len(r.Scale))
	peaks := make([]float64, len(r.Scale))
	for i, p := range r.Scale {
		xs[i] = fmt.Sprintf("%d", p.Providers)
		saved[i] = p.SavedFraction * 100
		peaks[i] = float64(p.PeakNodes)
	}
	series := []plot.Series{
		{Label: "DSP saving vs dedicated clusters (%)", Y: saved},
		{Label: "DSP peak nodes", Y: peaks},
	}
	return plot.LineTable("economies of scale: DSP savings vs consolidation size",
		"providers", xs, series, "each point consolidates the first n providers")
}

func (r *Report) gridTable() string {
	g := r.Spec.Sweep.Grid
	// The perf metric is fixed by the swept provider's class — never
	// per-point, so a cell that finishes zero tasks cannot splice a job
	// count into a tasks/second series.
	mtc := r.providerIsMTC(g.Provider)
	xs := make([]string, len(r.Grid))
	hours := make([]float64, len(r.Grid))
	perf := make([]float64, len(r.Grid))
	for i, p := range r.Grid {
		xs[i] = fmt.Sprintf("B%d_R%g", p.B, p.R)
		hours[i] = p.NodeHours
		if mtc {
			perf[i] = p.TasksPerSecond
		} else {
			perf[i] = float64(p.Completed)
		}
	}
	perfLabel := "completed jobs"
	if mtc {
		perfLabel = "tasks/second"
	}
	series := []plot.Series{
		{Label: "resource consumption (node*hour)", Y: hours},
		{Label: perfLabel, Y: perf},
	}
	return plot.LineTable("parameter sweep: "+g.Provider+" under DawningCloud",
		"parameters", xs, series, "each row is one (B, R) configuration")
}

func (r *Report) summaryLines() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simulations executed: %d\n", r.Simulations)
	if f := r.Federation; f != nil {
		// The consolidation comparison only makes sense when the whole
		// provider set was federated.
		if base, ok := r.Base[f.System]; ok && base.TotalNodeHours > 0 && len(f.Providers) == len(r.Providers) {
			diff := (f.Merged.TotalNodeHours/base.TotalNodeHours - 1) * 100
			fmt.Fprintf(&b, "federation vs consolidation: %s routing over %d %s instances consumes %.0f node*hours, %+.1f%% vs the consolidated %s run\n",
				f.Policy, len(f.Instances), f.System, f.Merged.TotalNodeHours, diff, f.System)
		} else {
			fmt.Fprintf(&b, "federation: %s routing over %d %s instances consumes %.0f node*hours\n",
				f.Policy, len(f.Instances), f.System, f.Merged.TotalNodeHours)
		}
	}
	if _, ok := r.Base["DawningCloud"]; !ok {
		return b.String()
	}
	if _, ok := r.Base["DCS"]; ok {
		fmt.Fprintf(&b, "economies of scale: DawningCloud consumes %.1f%% less than dedicated clusters (DCS)\n",
			r.Summary.DSPSavedVsDCS*100)
	}
	if _, ok := r.Base["DRP"]; ok {
		fmt.Fprintf(&b, "economies of scale: DawningCloud consumes %.1f%% less than per-job leases (DRP)\n",
			r.Summary.DSPSavedVsDRP*100)
	}
	return b.String()
}
