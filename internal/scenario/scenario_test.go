package scenario

import (
	"strings"
	"testing"

	"repro/internal/job"
)

// parseErr runs a JSON spec through Parse and returns the error text.
func parseErr(t *testing.T, src string) string {
	t.Helper()
	_, err := ParseBytes([]byte(src))
	if err == nil {
		t.Fatalf("spec accepted, want error:\n%s", src)
	}
	return err.Error()
}

func TestValidationFieldErrors(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		wantField string
	}{
		{"unknown system", `{"name":"x","systems":["DCS","VMS"],
			"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`, "systems[1]"},
		{"zero-day window", `{"name":"x","days":-3,
			"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`, "days"},
		{"negative ratio", `{"name":"x",
			"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"},"policy":{"b":10,"r":-1}}]}`,
			"providers[0].policy.r"},
		{"zero initial nodes", `{"name":"x",
			"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"},"policy":{"b":0,"r":1}}]}`,
			"providers[0].policy.b"},
		{"no providers", `{"name":"x","providers":[]}`, "providers"},
		{"unknown source kind", `{"name":"x",
			"providers":[{"name":"p","source":{"kind":"csv"}}]}`, "providers[0].source.kind"},
		{"unknown synth model", `{"name":"x",
			"providers":[{"name":"p","source":{"kind":"synth","model":"cray"}}]}`, "providers[0].source.model"},
		{"swf without path", `{"name":"x",
			"providers":[{"name":"p","source":{"kind":"swf"}}]}`, "providers[0].source.path"},
		{"workflow without generator or path", `{"name":"x",
			"providers":[{"name":"p","source":{"kind":"workflow"}}]}`, "providers[0].source"},
		{"unknown generator", `{"name":"x",
			"providers":[{"name":"p","source":{"kind":"workflow","generator":"sipht"}}]}`,
			"providers[0].source.generator"},
		{"duplicate provider", `{"name":"x","providers":[
			{"name":"p","source":{"kind":"synth","model":"nasa"}},
			{"name":"p","source":{"kind":"synth","model":"blue"}}]}`, "providers[1].name"},
		{"bad pool policy", `{"name":"x","pool":{"policy":"auction"},
			"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`, "pool.policy"},
		{"grid unknown provider", `{"name":"x",
			"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}],
			"sweep":{"grid":{"provider":"ghost","b":[10],"r":[1]}}}`, "sweep.grid.provider"},
		{"grid negative ratio", `{"name":"x",
			"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}],
			"sweep":{"grid":{"provider":"p","b":[10],"r":[1,-2]}}}`, "sweep.grid.r[1]"},
		{"scale without DCS", `{"name":"x","systems":["DawningCloud"],
			"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}],
			"sweep":{"scale":true}}`, "sweep.scale"},
		{"unknown json field", `{"name":"x","providerz":[]}`, "providerz"},
		{"partitions below -1", `{"name":"x","partitions":-2,
			"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`, "partitions"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := parseErr(t, tc.src)
			if !strings.Contains(msg, tc.wantField) {
				t.Errorf("error %q does not name field %q", msg, tc.wantField)
			}
		})
	}
}

func TestDefaultsApplied(t *testing.T) {
	s, err := ParseBytes([]byte(`{"name":"d","providers":[
		{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 42 || s.Days != 14 {
		t.Errorf("seed/days = %d/%d, want 42/14", s.Seed, s.Days)
	}
	if len(s.Systems) != 4 {
		t.Errorf("systems = %v, want all four", s.Systems)
	}
	if s.Pool.Policy != "grant-or-reject" {
		t.Errorf("pool policy = %q", s.Pool.Policy)
	}
	if s.Providers[0].Count != 1 {
		t.Errorf("count = %d, want 1", s.Providers[0].Count)
	}
}

func TestCompileExpandsCounts(t *testing.T) {
	s, err := ParseBytes([]byte(`{"name":"c","days":2,"providers":[
		{"name":"org","count":3,"source":{"kind":"synth","model":"nasa"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Workloads) != 3 {
		t.Fatalf("workloads = %d, want 3", len(c.Workloads))
	}
	wantNames := []string{"org-01", "org-02", "org-03"}
	for i, want := range wantNames {
		if c.Workloads[i].Name != want {
			t.Errorf("workload %d = %s, want %s", i, c.Workloads[i].Name, want)
		}
	}
	// Distinct seeds must produce distinct traces.
	if len(c.Workloads[0].Jobs) == len(c.Workloads[1].Jobs) &&
		c.Workloads[0].Jobs[0].Runtime == c.Workloads[1].Jobs[0].Runtime &&
		c.Workloads[0].Jobs[0].Submit == c.Workloads[1].Jobs[0].Submit {
		t.Error("replicated providers look identical; seeds not advanced")
	}
	if c.Workloads[0].FixedNodes != 128 {
		t.Errorf("derived fixed nodes = %d, want 128 (NASA machine size)", c.Workloads[0].FixedNodes)
	}
}

// TestPartitionsFieldFlowsToOptions pins the spec -> options plumbing:
// a spec's partitions count must reach the compiled run options
// unchanged, including the -1 (one per CPU) sentinel, and default to 0
// (serial) when absent.
func TestPartitionsFieldFlowsToOptions(t *testing.T) {
	for _, p := range []int{0, -1, 4} {
		src := `{"name":"c","days":1,"providers":[
			{"name":"org","source":{"kind":"synth","model":"nasa"}}]`
		if p != 0 {
			src += `,"partitions":` + map[int]string{-1: "-1", 4: "4"}[p]
		}
		src += `}`
		s, err := ParseBytes([]byte(src))
		if err != nil {
			t.Fatalf("partitions=%d: %v", p, err)
		}
		if s.Partitions != p {
			t.Errorf("parsed partitions = %d, want %d", s.Partitions, p)
		}
		c, err := Compile(s)
		if err != nil {
			t.Fatal(err)
		}
		if c.Options.Partitions != p {
			t.Errorf("compiled options partitions = %d, want %d", c.Options.Partitions, p)
		}
	}
}

func TestCompileWorkflowDefaults(t *testing.T) {
	s, err := ParseBytes([]byte(`{"name":"w","days":1,"providers":[
		{"name":"mtc","source":{"kind":"workflow","generator":"cybershake","tasks":120}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	wl := c.Workloads[0]
	if wl.Class != job.MTC {
		t.Errorf("class = %v, want MTC", wl.Class)
	}
	if wl.Params.ScanInterval != 3 {
		t.Errorf("scan interval = %d, want 3 (MTC default)", wl.Params.ScanInterval)
	}
	if wl.FixedNodes < 1 {
		t.Errorf("fixed nodes = %d, want derived max width >= 1", wl.FixedNodes)
	}
}

func TestBuiltinsParseAndCompile(t *testing.T) {
	// The stress builtins generate hundreds of thousands of jobs at their
	// declared window; compiling them over one day exercises the same
	// code path at test-friendly cost (full-size runs are on-demand via
	// dcscen).
	heavy := map[string]bool{"scale-100": true, "million-task": true}
	for _, name := range Names() {
		s, err := Builtin(name)
		if err != nil {
			t.Fatalf("builtin %s: %v", name, err)
		}
		if s.Name != name {
			t.Errorf("builtin %s declares name %q", name, s.Name)
		}
		if heavy[name] {
			s.Days = 1
		}
		if _, err := Compile(s); err != nil {
			t.Errorf("builtin %s does not compile: %v", name, err)
		}
	}
	if _, err := Builtin("ghost"); err == nil {
		t.Error("unknown builtin accepted")
	}
}

// TestMillionSynthSourceCompiles pins the "million" synth model's spec
// wiring: a one-day window still yields tens of thousands of tasks and a
// valid workload sized to the stress machine.
func TestMillionSynthSourceCompiles(t *testing.T) {
	s, err := ParseBytes([]byte(`{"name":"stress","days":1,"systems":["DawningCloud"],
		"providers":[{"name":"m","source":{"kind":"synth","model":"million"}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	wl := c.Workloads[0]
	if len(wl.Jobs) < 50_000 {
		t.Errorf("1-day million workload has %d jobs, want >= 50k", len(wl.Jobs))
	}
	if wl.FixedNodes != 1024 {
		t.Errorf("derived fixed nodes = %d, want 1024 (the stress machine)", wl.FixedNodes)
	}
}

func TestLoadRejectsUnknownReference(t *testing.T) {
	if _, err := Load("no-such-scenario-or-file.json"); err == nil {
		t.Error("unknown reference accepted")
	}
}

func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/tiny.json"
	src := `{"name":"tiny","days":1,"systems":["DCS"],
		"providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}]}`
	if err := writeFile(path, src); err != nil {
		t.Fatal(err)
	}
	s, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "tiny" {
		t.Errorf("name = %q", s.Name)
	}
}

func TestRunSmallScenarioEndToEnd(t *testing.T) {
	s, err := ParseBytes([]byte(`{"name":"mini","days":2,"seed":7,
		"systems":["DCS","DawningCloud"],
		"providers":[
			{"name":"a","count":2,"source":{"kind":"synth","model":"nasa"}}],
		"sweep":{"scale":true,"grid":{"provider":"a-01","b":[20,40],"r":[1.2]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Base) != 2 {
		t.Errorf("base systems = %d, want 2", len(rep.Base))
	}
	if len(rep.Scale) != 2 {
		t.Errorf("scale points = %d, want 2 (n=1 and n=2)", len(rep.Scale))
	}
	if len(rep.Grid) != 2 {
		t.Errorf("grid points = %d, want 2", len(rep.Grid))
	}
	// The full scale prefix must equal the base runs (shared cache cell).
	last := rep.Scale[len(rep.Scale)-1]
	if last.DCSNodeHours != rep.Base["DCS"].TotalNodeHours {
		t.Errorf("scale n=2 DCS %.0f != base DCS %.0f", last.DCSNodeHours, rep.Base["DCS"].TotalNodeHours)
	}
	if last.DSPNodeHours != rep.Base["DawningCloud"].TotalNodeHours {
		t.Errorf("scale n=2 DSP %.0f != base %.0f", last.DSPNodeHours, rep.Base["DawningCloud"].TotalNodeHours)
	}
	// Cells: 2 base + 2 scale (n=1) + 2 grid = 6 distinct simulations;
	// the n=2 scale points are cache hits on the base cells.
	if rep.Simulations != 6 {
		t.Errorf("simulations = %d, want 6 (full prefix deduplicated against base)", rep.Simulations)
	}
	text := rep.Render()
	for _, want := range []string{"scenario: mini", "provider a-01", "provider a-02",
		"resource provider", "economies of scale", "B20_R1.2"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestFederationDefaultsAndValidation(t *testing.T) {
	s, err := ParseBytes([]byte(`{"name":"fed","days":1,"systems":["DawningCloud"],
		"providers":[{"name":"org","count":3,"source":{"kind":"synth","model":"nasa"}}],
		"federation":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	f := s.Federation
	if f.System != "DawningCloud" || f.Policy != "round-robin" || f.Instances != 3 {
		t.Errorf("federation defaults = %s/%s/%d, want DawningCloud/round-robin/3", f.System, f.Policy, f.Instances)
	}
	if got := s.FederationMembers(); len(got) != 3 || got[0] != "org-01" {
		t.Errorf("members = %v, want the three expanded providers", got)
	}

	cases := []struct {
		name      string
		src       string
		wantField string
	}{
		{"unknown policy", `{"name":"x","providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}],
			"federation":{"policy":"dice-roll"}}`, "federation.policy"},
		{"unknown system", `{"name":"x","providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}],
			"federation":{"system":"VMS"}}`, "federation.system"},
		{"unknown member", `{"name":"x","providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}],
			"federation":{"providers":["ghost"]}}`, "federation.providers[0]"},
		{"duplicate member", `{"name":"x","providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}],
			"federation":{"providers":["p","p"]}}`, "federation.providers[1]"},
		{"negative window", `{"name":"x","providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}],
			"federation":{"window_seconds":-60}}`, "federation.window_seconds"},
		{"negative capacity", `{"name":"x","providers":[{"name":"p","source":{"kind":"synth","model":"nasa"}}],
			"federation":{"instance_capacity":-4}}`, "federation.instance_capacity"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := parseErr(t, tc.src)
			if !strings.Contains(msg, tc.wantField) {
				t.Errorf("error %q does not name field %q", msg, tc.wantField)
			}
		})
	}
}

func TestFederationScenarioEndToEnd(t *testing.T) {
	s, err := ParseBytes([]byte(`{"name":"fed-run","days":2,"seed":7,
		"systems":["DawningCloud"],
		"providers":[{"name":"org","count":4,"source":{"kind":"synth","model":"nasa"}}],
		"federation":{"policy":"round-robin","instances":2,"window_seconds":43200}}`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Federation
	if f == nil {
		t.Fatal("report has no federation section")
	}
	if f.System != "DawningCloud" || f.Policy != "round-robin" {
		t.Errorf("federation ran %s/%s", f.System, f.Policy)
	}
	if len(f.Instances) != 2 {
		t.Fatalf("instances = %d, want 2", len(f.Instances))
	}
	total := 0
	for _, inst := range f.Instances {
		total += inst.Dispatched
	}
	if total != 4 || len(f.Dispatches) != 4 {
		t.Errorf("dispatched %d requests with %d log entries, want 4/4", total, len(f.Dispatches))
	}
	if f.Instances[0].Dispatched != 2 || f.Instances[1].Dispatched != 2 {
		t.Errorf("round-robin split = %d/%d, want 2/2", f.Instances[0].Dispatched, f.Instances[1].Dispatched)
	}
	// 2-day horizon over 12-hour windows tiles into exactly 4 aggregates.
	if f.Windows != 4 {
		t.Errorf("windows = %d, want 4", f.Windows)
	}
	if got := len(f.Merged.Providers); got != 4 {
		t.Errorf("merged provider rows = %d, want 4", got)
	}
	// The federation counts as one more executed simulation than the base
	// cell alone.
	if rep.Simulations != 2 {
		t.Errorf("simulations = %d, want 2 (base + federation)", rep.Simulations)
	}
	text := rep.Render()
	for _, want := range []string{"federation: 2 DawningCloud instances, round-robin routing",
		"federation vs consolidation"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestRunReportsCompileErrors(t *testing.T) {
	s := &Spec{Name: "bad"}
	s.ApplyDefaults()
	if _, err := Run(s, 1); err == nil {
		t.Error("empty provider list ran")
	}
}
