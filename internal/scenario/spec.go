// Package scenario is the declarative experiment layer of the
// reproduction: a Spec — a JSON document with validation and defaults —
// declares an arbitrary n-provider × m-system simulation study (the
// generalized case the paper's conclusion asks for), Compile lowers it to
// the comparison harness's workloads, and Run executes every
// system × provider-count × sweep cell over the shared worker pool with
// the experiment suite's cache/singleflight semantics, emitting a
// structured Report with rendered tables and an economies-of-scale
// summary.
//
// A service provider's workload comes from one of four sources: a
// calibrated synthetic HTC model (internal/synth), an external SWF trace
// file (internal/swf), an MTC workflow — a Pegasus-style generator or
// a DAG JSON file (internal/workflow) — or, in streamed specs, a live
// task feed ingested while the simulation runs (kind "live", fed over
// the run service's NDJSON endpoint). Providers replicate with `count`,
// so a 10-organization consolidation study is one data file, not new Go.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/clustersim"
	"repro/internal/experiments"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/streamrun"

	// Shipped registry extensions must be linked in so scenario specs can
	// name them (ssp-spot) through any entry point, not only the CLIs.
	_ "repro/internal/spot"
)

// Known spec vocabularies. System names are not a fixed list: a spec may
// name any system registered in registry.Default at validation time, and
// validation errors list exactly those.
var (
	// DefaultSystems is the system set a spec without a "systems" field
	// compares: the paper's four, in presentation order. Registered
	// extensions must be asked for explicitly so existing specs (and the
	// paper-baseline golden numbers) never change when a new system
	// links in.
	DefaultSystems = append([]string(nil), experiments.SystemNames...)
	// KnownSourceKinds lists the workload source kinds.
	KnownSourceKinds = []string{"synth", "swf", "workflow", "live"}
	// KnownSynthModels lists the synthetic HTC models: the two
	// paper-calibrated traces plus the million-task kernel stress model.
	KnownSynthModels = []string{"nasa", "blue", "million"}
	// KnownGenerators lists the workflow generators.
	KnownGenerators = []string{"paper-montage", "montage", "cybershake", "epigenomics", "ligo"}
)

// Spec declares one scenario: the service providers, the systems to
// compare, the resource provider's pool, the accounting window and
// optional sweep axes. The zero values of optional fields take defaults
// in ApplyDefaults; Validate reports field-level errors.
type Spec struct {
	// Name identifies the scenario in reports and the registry.
	Name string `json:"name"`
	// Description is free text shown in the report header.
	Description string `json:"description,omitempty"`
	// Seed is the base generation seed. Providers without an explicit
	// seed draw Seed + their expanded position (so the first three
	// providers of a seed-42 spec use 42, 43, 44, matching the paper
	// suite's construction). Zero is reserved for "unset" and defaults
	// to 42; to pin a specific seed use any non-zero value (or set the
	// providers' seeds explicitly).
	Seed int64 `json:"seed,omitempty"`
	// Days is the accounting window in days (the paper uses 14).
	Days int `json:"days,omitempty"`
	// Partitions splits each cell's providers onto that many per-core
	// kernel partitions (0 or 1 = serial, -1 = one per CPU). Partitioned
	// cells are byte-identical to serial ones; runners fall back to
	// serial whenever partitioning cannot preserve that (see
	// systems.Options.Partitions).
	Partitions int `json:"partitions,omitempty"`
	// Systems lists which systems to compare; empty means all four.
	Systems []string `json:"systems,omitempty"`
	// Pool configures the resource provider.
	Pool PoolSpec `json:"pool,omitempty"`
	// Providers declares the service providers (before count expansion).
	Providers []ProviderSpec `json:"providers"`
	// Sweep optionally adds B×R grid and provider-count scaling axes.
	Sweep *SweepSpec `json:"sweep,omitempty"`
	// Federation optionally federates the providers behind one shared
	// clock: N provider instances of one system with a routing policy
	// (internal/clustersim), run alongside the consolidated base cells
	// and reported per instance and merged.
	Federation *FederationSpec `json:"federation,omitempty"`
	// Stream optionally routes every cell through the streamed
	// execution path (internal/streamrun): workloads feed the kernel in
	// bounded batches, base cells emit incremental per-window reports,
	// and providers may declare kind-"live" sources fed over the run
	// service's task-ingestion endpoint. Results are byte-identical to
	// the materialized path for the same jobs.
	Stream *StreamSpec `json:"stream,omitempty"`
}

// StreamSpec tunes the streamed execution path.
type StreamSpec struct {
	// Enabled switches every cell to the streamed path. Required true
	// when any provider uses a live source.
	Enabled bool `json:"enabled"`
	// StrideSeconds and LookaheadSeconds tune the feeder's refill
	// rounds (0 takes stream's defaults). Results are invariant to
	// both; they trade resident-task memory against refill frequency.
	StrideSeconds    int64 `json:"stride_seconds,omitempty"`
	LookaheadSeconds int64 `json:"lookahead_seconds,omitempty"`
	// WindowSeconds is the incremental reporting period in virtual
	// seconds; 0 means one day. Base cells emit one WindowReport per
	// window, plus a cross-system WindowSummary once every compared
	// system has reported it.
	WindowSeconds int64 `json:"window_seconds,omitempty"`
	// BufferTasks bounds each live source's ingestion buffer in tasks
	// (the backpressure point of the NDJSON endpoint); 0 takes
	// stream.DefaultLiveBuffer.
	BufferTasks int `json:"buffer_tasks,omitempty"`
}

// FederationSpec declares the optional federated run: the system the
// instances run, the routing policy, the federation size and the
// provider membership.
type FederationSpec struct {
	// System is the system every instance runs (federations are
	// homogeneous); default DawningCloud. It must have federated
	// instance support (clustersim.FederatedSystems).
	System string `json:"system,omitempty"`
	// Policy is the routing policy name from clustersim's registry
	// (round-robin, least-loaded, cost-aware, spot-price-aware,
	// pin-to-owner, or a registered extension); default round-robin.
	Policy string `json:"policy,omitempty"`
	// Instances is the number of provider instances; default one per
	// member provider.
	Instances int `json:"instances,omitempty"`
	// Providers restricts membership to the named expanded providers;
	// empty federates every provider. Member workloads are dispatched by
	// the policy at simulation time; member i's home instance is
	// i mod Instances (the pin-to-owner policy routes there).
	Providers []string `json:"providers,omitempty"`
	// InstanceCapacity is each instance's node pool size; 0 means
	// unconstrained.
	InstanceCapacity int `json:"instance_capacity,omitempty"`
	// WindowSeconds is the ClusterWindow aggregation period in virtual
	// seconds; 0 means one day.
	WindowSeconds int64 `json:"window_seconds,omitempty"`
}

// PoolSpec configures the resource provider's cloud pool.
type PoolSpec struct {
	// Capacity is the pool's node count; 0 means unconstrained (the
	// paper's "large cloud platform").
	Capacity int `json:"capacity,omitempty"`
	// Policy is the provision policy: "grant-or-reject" (the paper's,
	// default) or "best-effort".
	Policy string `json:"policy,omitempty"`
	// SetupCostSeconds is the per-node adjustment cost; 0 uses the
	// paper's measured 15.743 s.
	SetupCostSeconds float64 `json:"setup_cost_seconds,omitempty"`
}

// ProviderSpec declares one service provider (or, with Count > 1, a
// family of identically configured providers with consecutive seeds).
type ProviderSpec struct {
	// Name labels the provider; replicated providers get -01..-NN
	// suffixes.
	Name string `json:"name"`
	// Count replicates the provider with consecutive seeds; default 1.
	Count int `json:"count,omitempty"`
	// Seed overrides the derived per-provider seed (replicas then use
	// Seed, Seed+1, ...).
	Seed *int64 `json:"seed,omitempty"`
	// Source declares where the workload comes from.
	Source SourceSpec `json:"source"`
	// Policy sets the DawningCloud knobs B and R; nil takes the class
	// default (HTC: B40 R1.2, MTC: B10 R8).
	Policy *PolicySpec `json:"policy,omitempty"`
	// FixedNodes is the DCS/SSP runtime-environment size; 0 derives it
	// from the source (synth: machine size; swf: largest job; workflow:
	// maximum level width).
	FixedNodes int `json:"fixed_nodes,omitempty"`
}

// PolicySpec is the paper's two tuning knobs.
type PolicySpec struct {
	// B is the initial (never-reclaimed) node lease.
	B int `json:"b"`
	// R is the DR1 threshold ratio.
	R float64 `json:"r"`
}

// SourceSpec declares a provider's workload source. Kind selects which of
// the remaining fields apply.
type SourceSpec struct {
	// Kind is "synth", "swf", "workflow" or "live". A live source has no
	// pre-built jobs: tasks arrive online (NDJSON over the run service)
	// while the simulation runs. Live sources are HTC-only, require
	// stream.enabled, an explicit fixed_nodes, and exactly one system.
	Kind string `json:"kind"`
	// Model is the synth model: "nasa" or "blue".
	Model string `json:"model,omitempty"`
	// Util overrides the synth model's target utilization (0 keeps the
	// calibrated value).
	Util float64 `json:"util,omitempty"`
	// Path is the SWF trace file (kind "swf") or workflow DAG JSON file
	// (kind "workflow" without a generator).
	Path string `json:"path,omitempty"`
	// Generator is the workflow generator: "paper-montage" (the paper's
	// exact 1,000-task instance), "montage", "cybershake",
	// "epigenomics" or "ligo".
	Generator string `json:"generator,omitempty"`
	// Tasks sizes generated workflows (ignored by paper-montage);
	// default 1000.
	Tasks int `json:"tasks,omitempty"`
	// SubmitAt is the workflow submission time in seconds into the run.
	SubmitAt int64 `json:"submit_at,omitempty"`
}

// SweepSpec declares optional sweep axes.
type SweepSpec struct {
	// Grid sweeps DawningCloud over a B×R grid for one provider in
	// isolation (the paper's Figures 9-11 methodology).
	Grid *GridSpec `json:"grid,omitempty"`
	// Scale runs DCS and DawningCloud over every provider-count prefix
	// 1..n of the expanded provider list: the economies-of-scale curve.
	Scale bool `json:"scale,omitempty"`
}

// GridSpec is the B×R grid of a parameter sweep.
type GridSpec struct {
	// Provider names the (expanded) provider to sweep.
	Provider string `json:"provider"`
	// B lists initial-node values.
	B []int `json:"b"`
	// R lists threshold-ratio values.
	R []float64 `json:"r"`
}

// Parse decodes a JSON spec strictly (unknown fields are errors), applies
// defaults and validates.
func Parse(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseBytes decodes a JSON spec from memory.
func ParseBytes(data []byte) (*Spec, error) { return Parse(bytes.NewReader(data)) }

// ApplyDefaults fills the optional fields: seed 42, a 14-day window, the
// paper's four systems, the grant-or-reject pool policy and per-provider
// count 1. System names are canonicalized to their registered spelling
// ("dawningcloud" becomes "DawningCloud"); unknown names are left as
// written for Validate to report.
func (s *Spec) ApplyDefaults() {
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Days == 0 {
		s.Days = 14
	}
	if len(s.Systems) == 0 {
		s.Systems = append([]string(nil), DefaultSystems...)
	}
	for i, name := range s.Systems {
		if canonical, ok := registry.Default.Canonical(name); ok {
			s.Systems[i] = canonical
		}
	}
	if s.Pool.Policy == "" {
		s.Pool.Policy = "grant-or-reject"
	}
	for i := range s.Providers {
		p := &s.Providers[i]
		if p.Count == 0 {
			p.Count = 1
		}
		if p.Source.Kind == "workflow" && p.Source.Generator != "" &&
			p.Source.Generator != "paper-montage" && p.Source.Tasks == 0 {
			p.Source.Tasks = 1000
		}
	}
	if f := s.Federation; f != nil {
		if f.System == "" {
			f.System = "DawningCloud"
		}
		if canonical, ok := registry.Default.Canonical(f.System); ok {
			f.System = canonical
		}
		if f.Policy == "" {
			f.Policy = clustersim.PolicyRoundRobin
		}
		if f.Instances == 0 {
			f.Instances = len(s.FederationMembers())
		}
	}
}

// FederationMembers lists the expanded provider names the federation
// routes: the membership list, or every provider when unset. Empty
// without a federation block.
func (s *Spec) FederationMembers() []string {
	if s.Federation == nil {
		return nil
	}
	if len(s.Federation.Providers) > 0 {
		return append([]string(nil), s.Federation.Providers...)
	}
	return s.ExpandedNames()
}

// Horizon is the accounting window in seconds.
func (s *Spec) Horizon() sim.Time { return sim.Time(s.Days) * sim.Day }

// Validate reports the first problem with the spec as a field-level
// error ("providers[1].policy.r: ..."), or nil. Call ApplyDefaults first;
// Parse does both.
func (s *Spec) Validate() error {
	fail := func(field, format string, args ...any) error {
		return fmt.Errorf("scenario %s: %s: %s", s.Name, field, fmt.Sprintf(format, args...))
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: name: must not be empty")
	}
	if s.Days < 1 {
		return fail("days", "accounting window %d days < 1", s.Days)
	}
	if s.Partitions < -1 {
		return fail("partitions", "partition count %d < -1 (use -1 for one per CPU)", s.Partitions)
	}
	if len(s.Systems) == 0 {
		return fail("systems", "must name at least one system")
	}
	seenSys := make(map[string]bool)
	for i, name := range s.Systems {
		if !registry.Default.Has(name) {
			return fail(fmt.Sprintf("systems[%d]", i), "unknown system %q (registered: %s)",
				name, strings.Join(registry.Default.Names(), ", "))
		}
		if seenSys[name] {
			return fail(fmt.Sprintf("systems[%d]", i), "system %q listed twice", name)
		}
		seenSys[name] = true
	}
	switch s.Pool.Policy {
	case "grant-or-reject", "best-effort":
	default:
		return fail("pool.policy", "unknown provision policy %q (known: grant-or-reject, best-effort)", s.Pool.Policy)
	}
	if s.Pool.Capacity < 0 {
		return fail("pool.capacity", "capacity %d < 0", s.Pool.Capacity)
	}
	if s.Pool.SetupCostSeconds < 0 {
		return fail("pool.setup_cost_seconds", "setup cost %g < 0", s.Pool.SetupCostSeconds)
	}
	if len(s.Providers) == 0 {
		return fail("providers", "must declare at least one provider")
	}
	names := make(map[string]bool)
	for i := range s.Providers {
		if err := s.Providers[i].validate(fmt.Sprintf("providers[%d]", i), fail); err != nil {
			return err
		}
		if names[s.Providers[i].Name] {
			return fail(fmt.Sprintf("providers[%d].name", i), "duplicate provider name %q", s.Providers[i].Name)
		}
		names[s.Providers[i].Name] = true
	}
	if s.Sweep != nil {
		if err := s.validateSweep(fail); err != nil {
			return err
		}
	}
	if s.Federation != nil {
		if err := s.validateFederation(fail); err != nil {
			return err
		}
	}
	if s.Stream != nil {
		if err := s.validateStream(fail); err != nil {
			return err
		}
	}
	if live := s.LiveProviders(); len(live) > 0 {
		if !s.Streamed() {
			return fail("stream", "live workload sources need stream.enabled")
		}
		if len(s.Systems) != 1 {
			return fail("systems", "a live task feed streams once and cannot feed %d systems (name exactly one)", len(s.Systems))
		}
		if s.Sweep != nil {
			return fail("sweep", "live workload sources cannot be swept")
		}
		if s.Federation != nil {
			return fail("federation", "live workload sources cannot be federated")
		}
	}
	return nil
}

// Streamed reports whether the spec runs on the streamed path.
func (s *Spec) Streamed() bool { return s.Stream != nil && s.Stream.Enabled }

// LiveProviders lists the expanded names of providers with live task
// feeds, in compile order.
func (s *Spec) LiveProviders() []string {
	var out []string
	for i := range s.Providers {
		p := &s.Providers[i]
		if p.Source.Kind != "live" {
			continue
		}
		if p.Count <= 1 {
			out = append(out, p.Name)
			continue
		}
		for k := 1; k <= p.Count; k++ {
			out = append(out, fmt.Sprintf("%s-%02d", p.Name, k))
		}
	}
	return out
}

func (s *Spec) validateStream(fail func(string, string, ...any) error) error {
	st := s.Stream
	if st.StrideSeconds < 0 {
		return fail("stream.stride_seconds", "stride %d < 0", st.StrideSeconds)
	}
	if st.LookaheadSeconds < 0 {
		return fail("stream.lookahead_seconds", "lookahead %d < 0", st.LookaheadSeconds)
	}
	if st.WindowSeconds < 0 {
		return fail("stream.window_seconds", "window %d < 0", st.WindowSeconds)
	}
	if st.BufferTasks < 0 {
		return fail("stream.buffer_tasks", "buffer %d < 0", st.BufferTasks)
	}
	if st.Enabled {
		for i, name := range s.Systems {
			if !streamrun.Supported(name) {
				return fail(fmt.Sprintf("systems[%d]", i), "system %q has no streamed attach surface (supported: %s)",
					name, strings.Join(streamrun.Systems(), ", "))
			}
		}
	}
	return nil
}

func (s *Spec) validateFederation(fail func(string, string, ...any) error) error {
	f := s.Federation
	if !registry.Default.Has(f.System) {
		return fail("federation.system", "unknown system %q (registered: %s)",
			f.System, strings.Join(registry.Default.Names(), ", "))
	}
	if !clustersim.CanFederate(f.System) {
		return fail("federation.system", "system %q has no federated instance support (supported: %s)",
			f.System, strings.Join(clustersim.FederatedSystems(), ", "))
	}
	if !clustersim.HasPolicy(f.Policy) {
		return fail("federation.policy", "unknown routing policy %q (registered: %s)",
			f.Policy, strings.Join(clustersim.PolicyNames(), ", "))
	}
	if f.Instances < 1 {
		return fail("federation.instances", "instance count %d < 1", f.Instances)
	}
	if f.InstanceCapacity < 0 {
		return fail("federation.instance_capacity", "capacity %d < 0", f.InstanceCapacity)
	}
	if f.WindowSeconds < 0 {
		return fail("federation.window_seconds", "window %d < 0", f.WindowSeconds)
	}
	seen := make(map[string]bool)
	for i, name := range f.Providers {
		if !s.hasExpandedProvider(name) {
			return fail(fmt.Sprintf("federation.providers[%d]", i), "unknown provider %q", name)
		}
		if seen[name] {
			return fail(fmt.Sprintf("federation.providers[%d]", i), "provider %q listed twice", name)
		}
		seen[name] = true
	}
	return nil
}

func (p *ProviderSpec) validate(field string, fail func(string, string, ...any) error) error {
	if p.Name == "" {
		return fail(field+".name", "must not be empty")
	}
	if p.Count < 1 {
		return fail(field+".count", "count %d < 1", p.Count)
	}
	if p.FixedNodes < 0 {
		return fail(field+".fixed_nodes", "fixed nodes %d < 0", p.FixedNodes)
	}
	if p.Policy != nil {
		if p.Policy.B < 1 {
			return fail(field+".policy.b", "initial nodes %d < 1", p.Policy.B)
		}
		if p.Policy.R <= 0 {
			return fail(field+".policy.r", "threshold ratio %g <= 0", p.Policy.R)
		}
	}
	src := &p.Source
	switch src.Kind {
	case "synth":
		if !contains(KnownSynthModels, src.Model) {
			return fail(field+".source.model", "unknown synth model %q (known: %s)",
				src.Model, strings.Join(KnownSynthModels, ", "))
		}
		if src.Util < 0 || src.Util >= 1 {
			return fail(field+".source.util", "target utilization %g outside [0,1)", src.Util)
		}
		if src.Path != "" || src.Generator != "" {
			return fail(field+".source", "synth source takes no path or generator")
		}
	case "swf":
		if src.Path == "" {
			return fail(field+".source.path", "swf source needs a trace file path")
		}
		if src.Model != "" || src.Generator != "" {
			return fail(field+".source", "swf source takes no model or generator")
		}
	case "workflow":
		if (src.Generator == "") == (src.Path == "") {
			return fail(field+".source", "workflow source needs exactly one of generator or path")
		}
		if src.Generator != "" && !contains(KnownGenerators, src.Generator) {
			return fail(field+".source.generator", "unknown generator %q (known: %s)",
				src.Generator, strings.Join(KnownGenerators, ", "))
		}
		if src.Tasks < 0 {
			return fail(field+".source.tasks", "tasks %d < 0", src.Tasks)
		}
		if src.SubmitAt < 0 {
			return fail(field+".source.submit_at", "submit time %d < 0", src.SubmitAt)
		}
	case "live":
		if p.FixedNodes < 1 {
			return fail(field+".fixed_nodes", "live source needs an explicit fixed_nodes (no jobs to derive it from)")
		}
		if p.Count != 1 {
			return fail(field+".count", "live providers cannot replicate (each needs its own task feed)")
		}
		if src.Model != "" || src.Path != "" || src.Generator != "" ||
			src.Util != 0 || src.Tasks != 0 || src.SubmitAt != 0 {
			return fail(field+".source", "live source takes only kind")
		}
	default:
		return fail(field+".source.kind", "unknown source kind %q (known: %s)",
			src.Kind, strings.Join(KnownSourceKinds, ", "))
	}
	return nil
}

func (s *Spec) validateSweep(fail func(string, string, ...any) error) error {
	if g := s.Sweep.Grid; g != nil {
		if g.Provider == "" {
			return fail("sweep.grid.provider", "must name the provider to sweep")
		}
		if !s.hasExpandedProvider(g.Provider) {
			return fail("sweep.grid.provider", "unknown provider %q", g.Provider)
		}
		if len(g.B) == 0 || len(g.R) == 0 {
			return fail("sweep.grid", "needs at least one B and one R value")
		}
		for i, b := range g.B {
			if b < 1 {
				return fail(fmt.Sprintf("sweep.grid.b[%d]", i), "initial nodes %d < 1", b)
			}
		}
		for i, r := range g.R {
			if r <= 0 {
				return fail(fmt.Sprintf("sweep.grid.r[%d]", i), "threshold ratio %g <= 0", r)
			}
		}
	}
	if s.Sweep.Scale {
		for _, want := range []string{"DCS", "DawningCloud"} {
			if !contains(s.Systems, want) {
				return fail("sweep.scale", "needs both DCS and DawningCloud in systems (missing %s)", want)
			}
		}
	}
	return nil
}

// ExpandedNames lists the provider names after count expansion, in
// compile order.
func (s *Spec) ExpandedNames() []string {
	var out []string
	for i := range s.Providers {
		p := &s.Providers[i]
		if p.Count <= 1 {
			out = append(out, p.Name)
			continue
		}
		for k := 1; k <= p.Count; k++ {
			out = append(out, fmt.Sprintf("%s-%02d", p.Name, k))
		}
	}
	return out
}

func (s *Spec) hasExpandedProvider(name string) bool {
	return contains(s.ExpandedNames(), name)
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
