package scenario

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/clustersim"
	"repro/internal/events"
	"repro/internal/par"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/systems"
)

// Run compiles and executes the scenario on up to workers concurrent
// simulations (0 = all CPUs, 1 = serial). Results are deterministic at
// any worker count. See RunContext; Run uses the background context and
// no event sink.
func Run(s *Spec, workers int) (*Report, error) {
	return RunContext(context.Background(), s, workers, nil) //dclint:allow ctxfirst -- documented non-ctx convenience wrapper over RunContext
}

// RunContext compiles and executes the scenario with cancellation
// support, publishing progress (run started/completed per simulation,
// cell completed per finished grid/scale/base cell) to sink; a nil sink
// discards events. A cancelled context aborts in-flight simulations
// promptly and returns an error wrapping ctx.Err().
func RunContext(ctx context.Context, s *Spec, workers int, sink events.Sink) (*Report, error) {
	c, err := Compile(s)
	if err != nil {
		return nil, err
	}
	return c.RunContext(ctx, workers, sink)
}

// cell is one simulation the runner must have: a system over the first
// Providers workloads, optionally with grid-overridden policy knobs.
type cell struct {
	system    string
	providers int // prefix length of the workload list
	grid      *gridCell
}

type gridCell struct {
	provider string
	b        int
	r        float64
}

// key is the cache identity: cells that describe the same simulation
// (e.g. the scale sweep's full prefix and the base run) share one
// execution.
func (c cell) key() string {
	if c.grid != nil {
		return fmt.Sprintf("grid|%s|B%d|R%g", c.grid.provider, c.grid.b, c.grid.r)
	}
	return fmt.Sprintf("%s|n=%d", c.system, c.providers)
}

// engine executes cells with the experiment suite's concurrency
// semantics, provided by the shared service.Group: the cache lock is
// held only for the map check/fill and identical in-flight cells are
// deduplicated singleflight-style. Simulation concurrency itself is
// bounded by the par.ForEach pool in Compiled.Run — the engine lives
// for exactly one Run call, so no additional suite-wide semaphore is
// needed.
type engine struct {
	c    *Compiled
	sink events.Sink
	// windows coordinates the streamed path's incremental per-window
	// reports; nil on the materialized path.
	windows *windowEmitter

	flight service.Group

	simulations atomic.Int64
	completed   atomic.Int64
}

// Run executes every base, scale and grid cell of the compiled scenario.
func (c *Compiled) Run(workers int) (*Report, error) {
	return c.RunContext(context.Background(), workers, nil) //dclint:allow ctxfirst -- documented non-ctx convenience wrapper over RunContext
}

// RunContext executes every base, scale and grid cell of the compiled
// scenario with cancellation and progress events.
func (c *Compiled) RunContext(ctx context.Context, workers int, sink events.Sink) (*Report, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	eng := &engine{c: c, sink: sink}
	if c.Spec.Streamed() {
		eng.windows = newWindowEmitter(c.Spec, c.Options, sink)
	}
	cells := c.cells()
	results := make([]systems.Result, len(cells))
	err := par.ForEach(workers, len(cells), func(i int) error {
		r, err := eng.run(ctx, cells[i])
		if err != nil {
			return err
		}
		results[i] = r
		eng.sink.Emit(events.CellCompleted{
			Index: int(eng.completed.Add(1)),
			Total: len(cells),
			Key:   cells[i].key(),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := c.assemble(cells, results, eng.simulations.Load())
	if c.Spec.Federation != nil {
		fed, err := c.runFederation(ctx, sink)
		if err != nil {
			return nil, err
		}
		rep.Federation = fed
		rep.Simulations++
	}
	return rep, nil
}

// runFederation executes the spec's federation block: the member
// workloads routed across N instances of one system behind the shared
// clock (internal/clustersim). It runs after the base cells so the
// report can compare the federation against the consolidated run.
func (c *Compiled) runFederation(ctx context.Context, sink events.Sink) (*FederationReport, error) {
	f := c.Spec.Federation
	members := c.Spec.FederationMembers()
	wls := make([]systems.Workload, 0, len(members))
	for _, name := range members {
		wl, ok := c.workloadByName(name)
		if !ok {
			return nil, fmt.Errorf("scenario %s: federation provider %q missing after compile", c.Spec.Name, name)
		}
		wls = append(wls, wl.Clone())
	}
	cfg := clustersim.Config{
		System:    f.System,
		Policy:    f.Policy,
		Instances: make([]clustersim.InstanceConfig, f.Instances),
		Options:   c.Options,
		Window:    sim.Time(f.WindowSeconds),
		Events:    sink,
	}
	for i := range cfg.Instances {
		cfg.Instances[i] = clustersim.InstanceConfig{Capacity: f.InstanceCapacity}
	}
	cs, err := clustersim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: federation: %w", c.Spec.Name, err)
	}
	key := fmt.Sprintf("federation|%s|%s", f.System, f.Policy)
	sink.Emit(events.RunStarted{System: f.System, Providers: len(wls), Cell: key})
	res, err := cs.Run(ctx, wls, nil)
	if err != nil {
		sink.Emit(events.RunCompleted{System: f.System, Cell: key, Err: err})
		return nil, fmt.Errorf("scenario %s: federation: %w", c.Spec.Name, err)
	}
	sink.Emit(events.RunCompleted{System: f.System, Cell: key, TotalNodeHours: res.Merged.TotalNodeHours})
	rep := &FederationReport{
		System:    f.System,
		Policy:    f.Policy,
		Providers: members,
		Merged:    res.Merged,
		Windows:   res.Windows,
	}
	for _, ir := range res.Instances {
		rep.Instances = append(rep.Instances, FederationInstance{
			Name:       ir.Name,
			Dispatched: ir.Dispatched,
			NodeHours:  ir.Result.TotalNodeHours,
			PeakNodes:  ir.Result.PeakNodes,
		})
	}
	for _, d := range res.Dispatches {
		rep.Dispatches = append(rep.Dispatches, FederationDispatch{
			Time: int64(d.Time), Workload: d.Workload, Instance: int(d.Instance),
		})
	}
	return rep, nil
}

// cells enumerates the scenario's simulations in deterministic order.
func (c *Compiled) cells() []cell {
	n := len(c.Workloads)
	var out []cell
	for _, system := range c.Spec.Systems {
		out = append(out, cell{system: system, providers: n})
	}
	if sw := c.Spec.Sweep; sw != nil {
		if sw.Scale {
			for k := 1; k < n; k++ { // k = n duplicates the base cells
				out = append(out,
					cell{system: "DCS", providers: k},
					cell{system: "DawningCloud", providers: k})
			}
		}
		if g := sw.Grid; g != nil {
			for _, b := range g.B {
				for _, r := range g.R {
					out = append(out, cell{
						system:    "DawningCloud",
						providers: 1,
						grid:      &gridCell{provider: g.Provider, b: b, r: r},
					})
				}
			}
		}
	}
	return out
}

// run executes one cell through the shared cache/singleflight path:
// cells describing the same simulation (the scale sweep's full prefix
// and the base run, say) share one execution and one cached result.
func (e *engine) run(ctx context.Context, c cell) (systems.Result, error) {
	v, err := e.flight.Do(ctx, c.key(), func() (any, error) {
		return e.simulate(ctx, c)
	})
	if err != nil {
		return systems.Result{}, err
	}
	return v.(systems.Result), nil
}

// simulate builds the cell's isolated workload set and runs it through
// the registered system runner, or through the streamed path when the
// spec asks for it.
func (e *engine) simulate(ctx context.Context, c cell) (systems.Result, error) {
	if e.c.Spec.Streamed() {
		return e.simulateStreamed(ctx, c)
	}
	runner, canonical, err := registry.Default.Resolve(c.system)
	if err != nil {
		return systems.Result{}, fmt.Errorf("scenario %s: %w", e.c.Spec.Name, err)
	}
	wls, err := e.cellWorkloads(c)
	if err != nil {
		return systems.Result{}, err
	}
	e.simulations.Add(1)
	e.sink.Emit(events.RunStarted{System: canonical, Providers: len(wls), Cell: c.key()})
	res, err := runner.Run(ctx, wls, e.c.Options)
	e.sink.Emit(events.RunCompleted{System: canonical, Cell: c.key(), Err: err, TotalNodeHours: res.TotalNodeHours})
	if err != nil {
		return systems.Result{}, fmt.Errorf("scenario %s: run %s: %w", e.c.Spec.Name, c.key(), err)
	}
	return res, nil
}

// cellWorkloads builds the cell's isolated workload set: a clone of the
// provider prefix, or the grid cell's single provider with overridden
// policy knobs.
func (e *engine) cellWorkloads(c cell) ([]systems.Workload, error) {
	if c.grid != nil {
		base, ok := e.c.workloadByName(c.grid.provider)
		if !ok {
			return nil, fmt.Errorf("scenario %s: sweep provider %q missing after compile",
				e.c.Spec.Name, c.grid.provider)
		}
		wl := base.Clone()
		wl.Params.InitialNodes = c.grid.b
		wl.Params.ThresholdRatio = c.grid.r
		return []systems.Workload{wl}, nil
	}
	return systems.CloneWorkloads(e.c.Workloads[:c.providers]), nil
}

func (c *Compiled) workloadByName(name string) (*systems.Workload, bool) {
	for i := range c.Workloads {
		if c.Workloads[i].Name == name {
			return &c.Workloads[i], true
		}
	}
	return nil, false
}

// assemble sorts the flat cell results into the structured report.
func (c *Compiled) assemble(cells []cell, results []systems.Result, sims int64) *Report {
	rep := &Report{
		Spec:        c.Spec,
		Horizon:     c.Spec.Horizon(),
		Systems:     append([]string(nil), c.Spec.Systems...),
		Base:        make(map[string]systems.Result, len(c.Spec.Systems)),
		Simulations: sims,
	}
	for i := range c.Workloads {
		rep.Providers = append(rep.Providers, c.Workloads[i].Name)
	}
	scale := make(map[int]*ScalePoint) // providers -> point under construction
	for i, cl := range cells {
		res := results[i]
		switch {
		case cl.grid != nil:
			gp := GridPoint{B: cl.grid.b, R: cl.grid.r}
			if p, ok := res.Provider(cl.grid.provider); ok {
				gp.NodeHours = p.NodeHours
				gp.Completed = p.Completed
				gp.TasksPerSecond = p.TasksPerSecond
			}
			rep.Grid = append(rep.Grid, gp)
		case cl.providers == len(c.Workloads):
			rep.Base[cl.system] = res
		}
		if c.Spec.Sweep != nil && c.Spec.Sweep.Scale && cl.grid == nil &&
			(cl.system == "DCS" || cl.system == "DawningCloud") {
			pt := scale[cl.providers]
			if pt == nil {
				pt = &ScalePoint{Providers: cl.providers}
				scale[cl.providers] = pt
			}
			if cl.system == "DCS" {
				pt.DCSNodeHours = res.TotalNodeHours
			} else {
				pt.DSPNodeHours = res.TotalNodeHours
				pt.PeakNodes = res.PeakNodes
			}
		}
	}
	if len(scale) > 0 {
		for n := 1; n <= len(c.Workloads); n++ {
			pt := scale[n]
			if pt == nil {
				continue
			}
			if pt.DCSNodeHours > 0 {
				pt.SavedFraction = 1 - pt.DSPNodeHours/pt.DCSNodeHours
			}
			rep.Scale = append(rep.Scale, *pt)
		}
	}
	rep.Summary = summarize(rep)
	return rep
}
