package scenario

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/csf"
	"repro/internal/events"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/streamrun"
	"repro/internal/systems"
)

// simulateStreamed runs one cell through the streamed path
// (internal/streamrun) instead of the registry runner: the workloads
// feed the kernel through a bounded-lookahead feeder, live providers
// draw from their attached sources, and base cells carry the read-only
// per-window reporters. Results are byte-identical to the materialized
// path for the same jobs, so the cache key and the report shape do not
// change.
func (e *engine) simulateStreamed(ctx context.Context, c cell) (systems.Result, error) {
	wls, err := e.cellWorkloads(c)
	if err != nil {
		return systems.Result{}, err
	}
	st := e.c.Spec.Stream
	spec := streamrun.Spec{
		System:    c.system,
		Workloads: wls,
		Options:   e.c.Options,
		Feeder: stream.Options{
			Stride:       sim.Time(st.StrideSeconds),
			MinLookahead: sim.Time(st.LookaheadSeconds),
		},
	}
	if len(e.c.Live) > 0 {
		// Spec validation pins live scenarios to a single system with no
		// sweeps, so exactly one cell — this one — consumes the feeds.
		spec.Sources = make(map[string]stream.Source, len(e.c.Live))
		for _, name := range e.c.Live {
			src, ok := e.c.Sources[name]
			if !ok {
				return systems.Result{}, fmt.Errorf("scenario %s: live provider %q has no attached source (fill Compiled.Sources before running)",
					e.c.Spec.Name, name)
			}
			spec.Sources[name] = src
		}
	}
	if c.grid == nil && c.providers == len(e.c.Workloads) && e.windows != nil {
		spec.Observe = e.windows.observer(c.system, c.key())
	}
	e.simulations.Add(1)
	e.sink.Emit(events.RunStarted{System: c.system, Providers: len(wls), Cell: c.key()})
	res, err := streamrun.Run(ctx, spec)
	e.sink.Emit(events.RunCompleted{System: c.system, Cell: c.key(), Err: err, TotalNodeHours: res.TotalNodeHours})
	if err != nil {
		return systems.Result{}, fmt.Errorf("scenario %s: run %s: %w", e.c.Spec.Name, c.key(), err)
	}
	return res, nil
}

// windowEmitter coordinates a streamed scenario's incremental results:
// each base cell's observer emits one WindowReport per accounting
// window, and once every compared system has reported a window the
// emitter closes it with the cross-system WindowSummary — the running
// economies-of-scale line. Window contents are deterministic (they read
// the virtual clock); only the wall-clock interleaving of reports
// across concurrently running systems varies, and summaries always
// arrive in window order.
type windowEmitter struct {
	sink    events.Sink
	window  sim.Time
	horizon sim.Time
	setup   float64
	systems []string

	mu      sync.Mutex
	reports map[int]map[string]events.WindowReport
	next    int
}

func newWindowEmitter(spec *Spec, opts systems.Options, sink events.Sink) *windowEmitter {
	window := sim.Time(spec.Stream.WindowSeconds)
	if window <= 0 {
		window = sim.Day
	}
	setup := opts.SetupCost
	if setup == 0 {
		setup = csf.DefaultNodeSetupSeconds
	}
	return &windowEmitter{
		sink:    sink,
		window:  window,
		horizon: spec.Horizon(),
		setup:   setup,
		systems: append([]string(nil), spec.Systems...),
		reports: make(map[int]map[string]events.WindowReport),
	}
}

// observer schedules the per-window reporters on a streamed instance's
// clock; streamrun calls it after every attach and before the feeder
// starts. Reporter events are therefore scheduled before any simulation
// event and run first at each boundary: the snapshot covers [start, end)
// exactly, and since reporters only read, the simulation stays
// byte-identical to the unobserved run.
func (w *windowEmitter) observer(system, cellKey string) func(streamrun.Instance) {
	return func(inst streamrun.Instance) {
		for i, start := 0, sim.Time(0); start < w.horizon; i, start = i+1, start+w.window {
			i, start := i, start
			end := start + w.window
			if end > w.horizon {
				end = w.horizon
			}
			inst.Engine().At(end, func() {
				rep := events.WindowReport{
					System: system,
					Cell:   cellKey,
					Index:  i,
					Start:  int64(start),
					End:    int64(end),
				}
				adjusted := 0
				for _, pw := range inst.Window(end) {
					rep.Providers = append(rep.Providers, pw.Name)
					rep.Completed = append(rep.Completed, pw.Completed)
					rep.NodeHours = append(rep.NodeHours, pw.NodeHours)
					rep.Adjusted = append(rep.Adjusted, pw.Adjusted)
					rep.TotalNodeHours += pw.NodeHours
					adjusted += pw.Adjusted
				}
				rep.OverheadSeconds = float64(adjusted) * w.setup
				w.sink.Emit(rep)
				w.add(rep)
			})
		}
	}
}

// add files one system's report and emits every window that became
// complete, in index order.
func (w *windowEmitter) add(rep events.WindowReport) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.reports[rep.Index]
	if m == nil {
		m = make(map[string]events.WindowReport, len(w.systems))
		w.reports[rep.Index] = m
	}
	m[rep.System] = rep
	for {
		done, ok := w.reports[w.next]
		if !ok || len(done) < len(w.systems) {
			return
		}
		sum := events.WindowSummary{Index: w.next}
		for _, system := range w.systems {
			r := done[system]
			sum.Start, sum.End = r.Start, r.End
			sum.Systems = append(sum.Systems, system)
			sum.TotalNodeHours = append(sum.TotalNodeHours, r.TotalNodeHours)
		}
		if dsp, ok := done["DawningCloud"]; ok {
			if dcs := done["DCS"].TotalNodeHours; dcs > 0 {
				sum.DSPSavedVsDCS = 1 - dsp.TotalNodeHours/dcs
			}
			if drp := done["DRP"].TotalNodeHours; drp > 0 {
				sum.DSPSavedVsDRP = 1 - dsp.TotalNodeHours/drp
			}
		}
		delete(w.reports, w.next)
		w.next++
		w.sink.Emit(sum)
	}
}
