package scenario

import (
	"fmt"
	"os"

	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/stream"
	"repro/internal/swf"
	"repro/internal/synth"
	"repro/internal/systems"
	"repro/internal/workflow"
)

// Class-default policy knobs (the paper's chosen parameters for its
// representative HTC and MTC providers).
const (
	defaultHTCInitial = 40
	defaultHTCRatio   = 1.2
	defaultMTCInitial = 10
	defaultMTCRatio   = 8
)

// Compiled is a spec lowered to the comparison harness's inputs. The
// workload slice is the engine's shared base copy; every run clones the
// slice before simulating.
type Compiled struct {
	Spec      *Spec
	Workloads []systems.Workload
	Options   systems.Options
	// Live lists the expanded names of providers with live task feeds,
	// in compile order; their workloads carry no jobs. Sources maps
	// those names to the streaming sources the caller attaches (the run
	// service's ingestion endpoint fills it) before RunContext — a
	// streamed run fails on a live provider with no source.
	Live    []string
	Sources map[string]stream.Source
}

// Compile lowers the spec: it expands provider counts, derives seeds,
// generates or loads each workload, resolves policy and fixed-RE
// defaults, and validates the result against the harness's rules.
func Compile(s *Spec) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Spec: s, Options: s.options()}
	position := int64(0) // expanded index, drives default seeds
	for i := range s.Providers {
		p := &s.Providers[i]
		for k := 0; k < p.Count; k++ {
			seed := s.Seed + position
			if p.Seed != nil {
				seed = *p.Seed + int64(k)
			}
			name := p.Name
			if p.Count > 1 {
				name = fmt.Sprintf("%s-%02d", p.Name, k+1)
			}
			wl, err := buildWorkload(s, p, name, seed)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: providers[%d] (%s): %w", s.Name, i, name, err)
			}
			c.Workloads = append(c.Workloads, wl)
			if p.Source.Kind == "live" {
				c.Live = append(c.Live, name)
			}
			position++
		}
	}
	if err := c.validateWorkloads(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return c, nil
}

// validateWorkloads is ValidateWorkloads with a carve-out for live
// providers: their workloads have no jobs until the run ingests them, so
// only the spec-level checks (name, fixed nodes, params) apply.
func (c *Compiled) validateWorkloads() error {
	live := make(map[string]bool, len(c.Live))
	for _, name := range c.Live {
		live[name] = true
	}
	if len(c.Workloads) == 0 {
		return fmt.Errorf("systems: no workloads")
	}
	seen := make(map[string]bool, len(c.Workloads))
	for i := range c.Workloads {
		wl := &c.Workloads[i]
		if seen[wl.Name] {
			return fmt.Errorf("systems: duplicate workload name %q", wl.Name)
		}
		seen[wl.Name] = true
		if live[wl.Name] {
			if err := wl.Params.Validate(); err != nil {
				return fmt.Errorf("systems: workload %s: %w", wl.Name, err)
			}
			continue
		}
		if err := wl.Validate(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Spec) options() systems.Options {
	prov := policy.GrantOrReject
	if s.Pool.Policy == "best-effort" {
		prov = policy.BestEffort
	}
	return systems.Options{
		Horizon:      s.Horizon(),
		PoolCapacity: s.Pool.Capacity,
		Provision:    prov,
		SetupCost:    s.Pool.SetupCostSeconds,
		Seed:         s.Seed,
		Partitions:   s.Partitions,
	}
}

func buildWorkload(s *Spec, p *ProviderSpec, name string, seed int64) (systems.Workload, error) {
	switch p.Source.Kind {
	case "synth":
		return buildSynth(s, p, name, seed)
	case "swf":
		return buildSWF(p, name)
	case "workflow":
		return buildWorkflow(p, name, seed)
	case "live":
		return systems.Workload{
			Name:       name,
			Class:      job.HTC,
			FixedNodes: p.FixedNodes,
			Params:     htcParams(p.Policy),
		}, nil
	default:
		return systems.Workload{}, fmt.Errorf("unknown source kind %q", p.Source.Kind)
	}
}

func buildSynth(s *Spec, p *ProviderSpec, name string, seed int64) (systems.Workload, error) {
	var model *synth.Model
	switch p.Source.Model {
	case "nasa":
		model = synth.NASAiPSC(seed)
		model.Days = s.Days
	case "blue":
		model = synth.SDSCBlueWindowed(seed, s.Days)
	case "million":
		model = synth.MillionTaskWindowed(seed, s.Days)
	default:
		return systems.Workload{}, fmt.Errorf("unknown synth model %q", p.Source.Model)
	}
	if p.Source.Util > 0 {
		model.TargetUtil = p.Source.Util
	}
	jobs, err := model.Generate()
	if err != nil {
		return systems.Workload{}, err
	}
	fixed := p.FixedNodes
	if fixed == 0 {
		fixed = model.MachineNodes
	}
	return systems.Workload{
		Name:       name,
		Class:      job.HTC,
		Jobs:       jobs,
		FixedNodes: fixed,
		Params:     htcParams(p.Policy),
	}, nil
}

func buildSWF(p *ProviderSpec, name string) (systems.Workload, error) {
	f, err := os.Open(p.Source.Path)
	if err != nil {
		return systems.Workload{}, err
	}
	defer f.Close()
	trace, err := swf.Parse(f)
	if err != nil {
		return systems.Workload{}, err
	}
	jobs := trace.Jobs()
	fixed := p.FixedNodes
	if fixed == 0 {
		fixed = job.MaxNodes(jobs)
	}
	return systems.Workload{
		Name:       name,
		Class:      job.HTC,
		Jobs:       jobs,
		FixedNodes: fixed,
		Params:     htcParams(p.Policy),
	}, nil
}

func buildWorkflow(p *ProviderSpec, name string, seed int64) (systems.Workload, error) {
	dag, err := loadDAG(&p.Source, seed)
	if err != nil {
		return systems.Workload{}, err
	}
	fixed := p.FixedNodes
	if fixed == 0 {
		if fixed, err = dag.MaxWidth(); err != nil {
			return systems.Workload{}, err
		}
	}
	return systems.Workload{
		Name:       name,
		Class:      job.MTC,
		Jobs:       dag.Jobs(p.Source.SubmitAt),
		FixedNodes: fixed,
		Params:     mtcParams(p.Policy),
	}, nil
}

func loadDAG(src *SourceSpec, seed int64) (*workflow.DAG, error) {
	if src.Path != "" {
		f, err := os.Open(src.Path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workflow.Decode(f)
	}
	if src.Generator == "paper-montage" {
		return workflow.PaperMontage(seed)
	}
	gen, ok := workflow.Generators[src.Generator]
	if !ok {
		return nil, fmt.Errorf("unknown workflow generator %q", src.Generator)
	}
	return gen(seed, src.Tasks)
}

func htcParams(p *PolicySpec) policy.Params {
	if p == nil {
		return policy.HTCDefaults(defaultHTCInitial, defaultHTCRatio)
	}
	return policy.HTCDefaults(p.B, p.R)
}

func mtcParams(p *PolicySpec) policy.Params {
	if p == nil {
		return policy.MTCDefaults(defaultMTCInitial, defaultMTCRatio)
	}
	return policy.MTCDefaults(p.B, p.R)
}
