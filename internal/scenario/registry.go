package scenario

import (
	"fmt"
	"os"
	"strings"
)

// builtins maps scenario names to their JSON specs. The registry entries
// are stored as JSON — not Go structs — so every built-in exercises the
// exact parse/validate/default path a user's spec file takes, and can be
// dumped as a starting point for new scenarios.
var builtins = map[string]string{
	// paper-baseline is the paper's evaluation: the three service
	// providers with the paper-chosen parameters over the two-week
	// window. It reproduces the suite's Tables 2-4 numbers exactly
	// (enforced by a golden test).
	"paper-baseline": `{
  "name": "paper-baseline",
  "description": "the paper's evaluation: NASA + BLUE HTC organizations and the 1,000-task Montage MTC organization over two weeks",
  "seed": 42,
  "days": 14,
  "providers": [
    {"name": "org-nasa-htc", "source": {"kind": "synth", "model": "nasa"}},
    {"name": "org-blue-htc", "source": {"kind": "synth", "model": "blue"}, "policy": {"b": 80, "r": 1.5}},
    {"name": "org-montage-mtc", "fixed_nodes": 166,
     "source": {"kind": "workflow", "generator": "paper-montage", "submit_at": 644400}}
  ]
}`,

	// streaming-baseline is paper-baseline on the streamed execution
	// path: identical final numbers (the streamed kernel is
	// byte-identical to the materialized one, enforced by a differential
	// test), produced incrementally with a WindowReport per system per
	// day and a cross-system WindowSummary as each day closes.
	"streaming-baseline": `{
  "name": "streaming-baseline",
  "description": "the paper's evaluation fed through the bounded-memory streamed path, with daily incremental window reports",
  "seed": 42,
  "days": 14,
  "providers": [
    {"name": "org-nasa-htc", "source": {"kind": "synth", "model": "nasa"}},
    {"name": "org-blue-htc", "source": {"kind": "synth", "model": "blue"}, "policy": {"b": 80, "r": 1.5}},
    {"name": "org-montage-mtc", "fixed_nodes": 166,
     "source": {"kind": "workflow", "generator": "paper-montage", "submit_at": 644400}}
  ],
  "stream": {"enabled": true, "window_seconds": 86400}
}`,

	// scale-10 is the generalized case the paper's conclusion asks for:
	// ten NASA-like organizations consolidating one by one.
	"scale-10": `{
  "name": "scale-10",
  "description": "economies-of-scale curve: 10 distinct-seed NASA-like HTC organizations consolidated one at a time",
  "seed": 42,
  "days": 14,
  "systems": ["DCS", "DawningCloud"],
  "providers": [
    {"name": "org", "count": 10, "source": {"kind": "synth", "model": "nasa"}}
  ],
  "sweep": {"scale": true}
}`,

	// scale-100 is the kernel's target scale: one hundred distinct-seed
	// NASA-like organizations consolidated at once (no per-prefix sweep —
	// that is scale-10's job), several hundred thousand jobs through one
	// event loop per system. Together with the "million" synth model it
	// lets dcscen drive 10⁶-task runs from a spec file.
	"scale-100": `{
  "name": "scale-100",
  "description": "kernel stress at the ROADMAP scale: 100 distinct-seed NASA-like HTC organizations consolidated in one run",
  "seed": 42,
  "days": 14,
  "systems": ["DCS", "DawningCloud"],
  "providers": [
    {"name": "org", "count": 100, "source": {"kind": "synth", "model": "nasa"}}
  ]
}`,

	// million-task drives ≈1e6 tasks through a single provider's event
	// loop: the kernel throughput scenario.
	"million-task": `{
  "name": "million-task",
  "description": "a single million-task HTC organization on a 1024-node machine: the event-loop stress run",
  "seed": 42,
  "days": 14,
  "systems": ["DawningCloud"],
  "providers": [
    {"name": "org-million", "source": {"kind": "synth", "model": "million"}}
  ]
}`,

	// blue-heavy skews the mix toward heavily loaded, bursty machines.
	"blue-heavy": `{
  "name": "blue-heavy",
  "description": "a consolidation dominated by heavily loaded BLUE-like machines plus one light NASA-like organization",
  "seed": 42,
  "days": 14,
  "providers": [
    {"name": "org-blue", "count": 3, "source": {"kind": "synth", "model": "blue"}, "policy": {"b": 80, "r": 1.5}},
    {"name": "org-nasa", "source": {"kind": "synth", "model": "nasa"}}
  ]
}`,

	// mtc-burst submits several workflows in a short window: the MTC
	// side of the title question at more than one topology.
	"mtc-burst": `{
  "name": "mtc-burst",
  "description": "an MTC-only burst: three Montage mosaics plus CyberShake and LIGO Inspiral workflows submitted within hours",
  "seed": 42,
  "days": 1,
  "providers": [
    {"name": "org-montage", "count": 3, "fixed_nodes": 166,
     "source": {"kind": "workflow", "generator": "paper-montage", "submit_at": 14400}},
    {"name": "org-cybershake",
     "source": {"kind": "workflow", "generator": "cybershake", "tasks": 500, "submit_at": 21600}},
    {"name": "org-ligo",
     "source": {"kind": "workflow", "generator": "ligo", "tasks": 400, "submit_at": 28800}}
  ]
}`,

	// mixed-federation consolidates HTC and MTC organizations and sweeps
	// the BLUE organization's policy knobs.
	"mixed-federation": `{
  "name": "mixed-federation",
  "description": "a mixed federation: two HTC organizations, a Montage mosaic and a CyberShake hazard run, with a B x R sweep of the BLUE organization",
  "seed": 42,
  "days": 7,
  "providers": [
    {"name": "org-nasa", "source": {"kind": "synth", "model": "nasa"}},
    {"name": "org-blue", "source": {"kind": "synth", "model": "blue"}, "policy": {"b": 80, "r": 1.5}},
    {"name": "org-montage", "fixed_nodes": 166,
     "source": {"kind": "workflow", "generator": "paper-montage", "submit_at": 302400}},
    {"name": "org-cybershake",
     "source": {"kind": "workflow", "generator": "cybershake", "tasks": 500, "submit_at": 308000}}
  ],
  "sweep": {"grid": {"provider": "org-blue", "b": [40, 80], "r": [1.2, 1.5]}}
}`,

	// federation-baseline federates the paper's three organizations:
	// each provider dispatches to one of three DawningCloud instances
	// behind a shared clock, round-robin routed.
	"federation-baseline": `{
  "name": "federation-baseline",
  "description": "the paper's three organizations federated: three DawningCloud instances behind one shared clock with round-robin routing, reported against the consolidated run",
  "seed": 42,
  "days": 14,
  "systems": ["DawningCloud"],
  "providers": [
    {"name": "org-nasa-htc", "source": {"kind": "synth", "model": "nasa"}},
    {"name": "org-blue-htc", "source": {"kind": "synth", "model": "blue"}, "policy": {"b": 80, "r": 1.5}},
    {"name": "org-montage-mtc", "fixed_nodes": 166,
     "source": {"kind": "workflow", "generator": "paper-montage", "submit_at": 644400}}
  ],
  "federation": {"policy": "round-robin"}
}`,

	// consolidation-vs-federation is the multi-cloud-arbitrage question:
	// six organizations on one consolidated platform vs split across a
	// three-instance federation under least-loaded routing.
	"consolidation-vs-federation": `{
  "name": "consolidation-vs-federation",
  "description": "does consolidation beat federation? six NASA-like organizations consolidated on one platform vs spread across three least-loaded DawningCloud instances",
  "seed": 42,
  "days": 14,
  "systems": ["DCS", "DawningCloud"],
  "providers": [
    {"name": "org", "count": 6, "source": {"kind": "synth", "model": "nasa"}}
  ],
  "federation": {"policy": "least-loaded", "instances": 3}
}`,
}

// Names lists the built-in scenarios in presentation order.
func Names() []string {
	return []string{"paper-baseline", "streaming-baseline", "scale-10", "scale-100", "million-task", "blue-heavy", "mtc-burst", "mixed-federation", "federation-baseline", "consolidation-vs-federation"}
}

// Builtin returns the named built-in scenario, parsed and validated.
func Builtin(name string) (*Spec, error) {
	src, ok := builtins[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown built-in %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	s, err := ParseBytes([]byte(src))
	if err != nil {
		return nil, fmt.Errorf("scenario: built-in %s: %w", name, err)
	}
	return s, nil
}

// BuiltinJSON returns the named built-in's JSON source, a starting point
// for custom spec files.
func BuiltinJSON(name string) (string, error) {
	src, ok := builtins[name]
	if !ok {
		return "", fmt.Errorf("scenario: unknown built-in %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	return src, nil
}

// Load resolves a scenario reference: a built-in name first, then a spec
// file path.
func Load(nameOrPath string) (*Spec, error) {
	if _, ok := builtins[nameOrPath]; ok {
		return Builtin(nameOrPath)
	}
	f, err := os.Open(nameOrPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("scenario: %q is neither a built-in (%s) nor a readable spec file",
				nameOrPath, strings.Join(Names(), ", "))
		}
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}
