package experiments

import (
	"context"
	"fmt"

	"repro/internal/cost"
	"repro/internal/events"
	"repro/internal/plot"
	"repro/internal/systems"
)

// tableSpec drives the shared service-provider table construction.
type tableSpec struct {
	id         string
	title      string
	provider   string
	mtc        bool // use tasks/second instead of completed jobs
	paperRef   string
	paperSaved map[string]float64 // system -> paper's saved-vs-DCS fraction
}

// Table2 reproduces the NASA-trace service-provider metrics.
func (s *Suite) Table2(ctx context.Context) (Artifact, error) {
	return s.providerTable(ctx, tableSpec{
		id:       "table2",
		title:    "Table 2: metrics of the service providers for NASA trace",
		provider: NASAProvider,
		paperRef: "paper: completed 2603 for all systems; node-hours DCS/SSP 43008, " +
			"DRP 54118 (-25.8%), DawningCloud 29014 (+32.5%)",
		paperSaved: map[string]float64{"SSP": 0, "DRP": -0.258, "DawningCloud": 0.325},
	})
}

// Table3 reproduces the BLUE-trace service-provider metrics.
func (s *Suite) Table3(ctx context.Context) (Artifact, error) {
	return s.providerTable(ctx, tableSpec{
		id:       "table3",
		title:    "Table 3: metrics of the service provider for BLUE trace",
		provider: BLUEProvider,
		paperRef: "paper: completed 2649/2649/2657/2653; node-hours DCS/SSP 48384, " +
			"DRP 35838 (+25.9%), DawningCloud 35201 (+27.2%)",
		paperSaved: map[string]float64{"SSP": 0, "DRP": 0.259, "DawningCloud": 0.272},
	})
}

// Table4 reproduces the Montage service-provider metrics.
func (s *Suite) Table4(ctx context.Context) (Artifact, error) {
	return s.providerTable(ctx, tableSpec{
		id:       "table4",
		title:    "Table 4: metrics of the service provider for Montage",
		provider: MontageProvider,
		mtc:      true,
		paperRef: "paper: tasks/s 2.49/2.49/2.71/2.49; node-hours DCS/SSP 166, " +
			"DRP 662 (-298.8%), DawningCloud 166 (0%)",
		paperSaved: map[string]float64{"SSP": 0, "DRP": -2.988, "DawningCloud": 0},
	})
}

func (s *Suite) providerTable(ctx context.Context, spec tableSpec) (Artifact, error) {
	results, err := s.RunAllContext(ctx)
	if err != nil {
		return Artifact{}, err
	}
	dcs, ok := results["DCS"].Provider(spec.provider)
	if !ok {
		return Artifact{}, fmt.Errorf("experiments: provider %s missing from DCS run", spec.provider)
	}
	perfHeader := "completed jobs"
	if spec.mtc {
		perfHeader = "tasks/second"
	}
	columns := []string{"configuration", perfHeader, "resource consumption", "saved resources"}
	values := make(map[string]float64)
	var rows [][]string
	for _, system := range SystemNames {
		p, ok := results[system].Provider(spec.provider)
		if !ok {
			return Artifact{}, fmt.Errorf("experiments: provider %s missing from %s run", spec.provider, system)
		}
		perf := fmt.Sprintf("%d", p.Completed)
		if spec.mtc {
			perf = fmt.Sprintf("%.2f", p.TasksPerSecond)
		}
		saved := "/"
		if system != "DCS" && dcs.NodeHours > 0 {
			frac := 1 - p.NodeHours/dcs.NodeHours
			saved = fmt.Sprintf("%.1f%%", frac*100)
			values["saved_"+system] = frac
		}
		values["nodehours_"+system] = p.NodeHours
		values["completed_"+system] = float64(p.Completed)
		if spec.mtc {
			values["tps_"+system] = p.TasksPerSecond
		}
		rows = append(rows, []string{system + " system", perf, fmt.Sprintf("%.0f", p.NodeHours), saved})
	}
	text := plot.Table(spec.title, columns, rows,
		"resource consumption in node*hour; saved resources relative to the DCS system")
	return s.emitTable(Artifact{
		ID:       spec.id,
		Title:    spec.title,
		Text:     text,
		PaperRef: spec.paperRef,
		Values:   values,
	}), nil
}

// emitTable publishes a TableRendered event for a finished artifact and
// returns it unchanged.
func (s *Suite) emitTable(a Artifact) Artifact {
	s.Events.Emit(events.TableRendered{ID: a.ID, Title: a.Title})
	return a
}

// TCO reproduces Section 4.5.5: monthly total cost of ownership of a
// service provider under DCS versus SSP (EC2 pricing).
func TCO() (Artifact, error) {
	cmp, err := cost.Compare(cost.PaperDCS(), cost.PaperEC2())
	if err != nil {
		return Artifact{}, err
	}
	columns := []string{"system", "item", "$/month"}
	var rows [][]string
	for _, it := range cmp.DCS.Items {
		rows = append(rows, []string{"DCS", it.Label, fmt.Sprintf("%.1f", it.Dollars)})
	}
	rows = append(rows, []string{"DCS", "total", fmt.Sprintf("%.1f", cmp.DCS.Total())})
	for _, it := range cmp.SSP.Items {
		rows = append(rows, []string{"SSP (EC2)", it.Label, fmt.Sprintf("%.1f", it.Dollars)})
	}
	rows = append(rows, []string{"SSP (EC2)", "total", fmt.Sprintf("%.1f", cmp.SSP.Total())})
	note := fmt.Sprintf("SSP TCO is %.1f%% of DCS TCO", cmp.Ratio*100)
	return Artifact{
		ID:       "tco",
		Title:    "Section 4.5.5: total cost of ownership per month",
		Text:     plot.Table("TCO of the service provider in the SSP and DCS systems", columns, rows, note),
		PaperRef: "paper: DCS $3,160/month; SSP $2,260/month = 71.5% of DCS",
		Values: map[string]float64{
			"dcs_total": cmp.DCS.Total(),
			"ssp_total": cmp.SSP.Total(),
			"ratio":     cmp.Ratio,
		},
	}, nil
}

// totalsFigure renders one resource-provider bar chart over the four
// systems from a per-result metric.
func (s *Suite) totalsFigure(ctx context.Context, id, title, unit, paperRef string, metric func(systems.Result) float64) (Artifact, error) {
	results, err := s.RunAllContext(ctx)
	if err != nil {
		return Artifact{}, err
	}
	bars := make([]plot.Bar, 0, len(SystemNames))
	values := make(map[string]float64)
	for _, system := range SystemNames {
		v := metric(results[system])
		bars = append(bars, plot.Bar{Label: system, Value: v})
		values[system] = v
	}
	return s.emitTable(Artifact{
		ID:       id,
		Title:    title,
		Text:     plot.BarChart(title, unit, bars, 48),
		SVG:      plot.BarChartSVG(title, unit, bars),
		PaperRef: paperRef,
		Values:   values,
	}), nil
}

// Figure12 reproduces the resource provider's total resource consumption.
func (s *Suite) Figure12(ctx context.Context) (Artifact, error) {
	return s.totalsFigure(ctx, "fig12",
		"Figure 12: total resource consumption of the resource provider",
		"node*hour",
		"paper: DawningCloud saves 29.7% of the DCS/SSP total and 29.0% of the DRP total",
		func(r systems.Result) float64 { return r.TotalNodeHours })
}

// Figure13 reproduces the resource provider's peak resource consumption.
func (s *Suite) Figure13(ctx context.Context) (Artifact, error) {
	return s.totalsFigure(ctx, "fig13",
		"Figure 13: peak resource consumption of the resource provider",
		"nodes/hour",
		"paper: DawningCloud peak = 1.06x DCS/SSP peak and 0.21x DRP peak",
		func(r systems.Result) float64 { return float64(r.PeakNodes) })
}

// Figure14 reproduces the accumulated node-adjustment counts (management
// overhead).
func (s *Suite) Figure14(ctx context.Context) (Artifact, error) {
	art, err := s.totalsFigure(ctx, "fig14",
		"Figure 14: accumulated times of adjusting nodes",
		"nodes adjusted",
		"paper: SSP lowest; DawningCloud below DRP; DawningCloud overhead ~341 s/hour at 15.743 s per node",
		func(r systems.Result) float64 { return float64(r.TotalNodesAdjusted) })
	if err != nil {
		return Artifact{}, err
	}
	results, err := s.RunAllContext(ctx)
	if err != nil {
		return Artifact{}, err
	}
	dc := results["DawningCloud"]
	art.Text += fmt.Sprintf("DawningCloud management overhead: %.0f s total, %.1f s/hour\n",
		dc.OverheadSeconds, dc.OverheadPerHour)
	art.Values["dawningcloud_overhead_per_hour"] = dc.OverheadPerHour
	return art, nil
}
