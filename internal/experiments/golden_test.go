package experiments

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

// TestPaperTablesGoldenBytes is the scheduling stack's byte-level
// regression pin: the rendered Tables 2-4 must match
// testdata/table{2,3,4}.golden exactly. The golden files were captured
// under the original container/heap kernel before the indexed fast-path
// kernel (and the allocation-free scheduling rework in internal/sched and
// internal/tre) replaced it, so byte-identical output here proves the new
// kernel and schedulers replay the paper evaluation event-for-event.
//
// The suite runs with Workers = 4 — more than one worker on every CI
// machine — and the full test job runs under -race, so this also pins
// that parallel table regeneration is deterministic and race-free.
func TestPaperTablesGoldenBytes(t *testing.T) {
	suite := NewSuite(42)
	suite.Workers = 4
	for _, tb := range []struct {
		id string
		fn func(context.Context) (Artifact, error)
	}{
		{"table2", suite.Table2},
		{"table3", suite.Table3},
		{"table4", suite.Table4},
	} {
		a, err := tb.fn(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", tb.id, err)
		}
		path := filepath.Join("testdata", tb.id+".golden")
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", tb.id, err)
		}
		if a.Text != string(want) {
			t.Errorf("%s drifted from the reference-kernel golden %s:\n got:\n%s\nwant:\n%s",
				tb.id, path, a.Text, want)
		}
	}
}

// TestPaperTablesGoldenBytesPartitioned re-renders Tables 2-4 with each
// simulation's providers split onto per-core kernel partitions and
// requires byte-identical output against the same serial-kernel golden
// files: intra-run partitioning must be invisible in every published
// number. P=4 exceeds the paper evaluation's three providers, so this
// also pins the clamp-to-workload-count path.
func TestPaperTablesGoldenBytesPartitioned(t *testing.T) {
	for _, p := range []int{2, 4} {
		suite := NewSuite(42)
		suite.Workers = 2
		suite.Partitions = p
		for _, tb := range []struct {
			id string
			fn func(context.Context) (Artifact, error)
		}{
			{"table2", suite.Table2},
			{"table3", suite.Table3},
			{"table4", suite.Table4},
		} {
			a, err := tb.fn(context.Background())
			if err != nil {
				t.Fatalf("P=%d %s: %v", p, tb.id, err)
			}
			path := filepath.Join("testdata", tb.id+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%s: %v", tb.id, err)
			}
			if a.Text != string(want) {
				t.Errorf("P=%d: %s drifted from the serial-kernel golden %s:\n got:\n%s\nwant:\n%s",
					p, tb.id, path, a.Text, want)
			}
		}
	}
}

// TestPaperTablesGoldenBytesAnyWorkerCount re-renders one table at three
// worker counts and requires identical bytes: worker scheduling must not
// leak into artifact content.
func TestPaperTablesGoldenBytesAnyWorkerCount(t *testing.T) {
	render := func(workers int) string {
		suite := NewSuite(42)
		suite.Workers = workers
		a, err := suite.Table2(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return a.Text
	}
	serial := render(1)
	for _, w := range []int{2, 8} {
		if got := render(w); got != serial {
			t.Errorf("table2 differs between workers=1 and workers=%d", w)
		}
	}
}
