package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/par"
)

// paperIDs are the paper's Section 4 artifacts in presentation order —
// what "all" has always meant (the extension studies are asked for
// separately).
var paperIDs = []string{
	"table1", "fig9", "fig10", "fig11",
	"table2", "table3", "table4",
	"fig12", "fig13", "fig14", "tco",
}

// extensionIDs are the group the "extensions" alias expands to.
var extensionIDs = []string{"ext-scale", "ext-backfill", "ext-provision"}

// ArtifactIDs lists every addressable artifact in paper order: the
// vocabulary shared by dawningbench's -experiment flag, the public
// SubmitRequest.Experiments union arm and dcserve's suite requests.
func ArtifactIDs() []string {
	return append(append([]string(nil), paperIDs...), extensionIDs...)
}

// ExpandArtifactIDs normalizes a requested artifact list: "all" expands
// to the paper's eleven Section 4 artifacts (its historical meaning),
// "extensions" to the three extension studies, and unknown IDs fail
// with the full vocabulary. The result preserves request order with
// duplicates removed.
func ExpandArtifactIDs(ids []string) ([]string, error) {
	known := make(map[string]bool, len(ArtifactIDs()))
	for _, id := range ArtifactIDs() {
		known[id] = true
	}
	var out []string
	seen := make(map[string]bool)
	add := func(id string) {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	for _, raw := range ids {
		id := strings.ToLower(strings.TrimSpace(raw))
		switch {
		case id == "all":
			for _, a := range paperIDs {
				add(a)
			}
		case id == "extensions":
			for _, a := range extensionIDs {
				add(a)
			}
		case known[id]:
			add(id)
		default:
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: all, extensions, %s)",
				raw, strings.Join(ArtifactIDs(), ", "))
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no artifact IDs requested")
	}
	return out, nil
}

// artifactStep resolves one artifact ID to its producing step.
func (s *Suite) artifactStep(id string) (func(context.Context) (Artifact, error), bool) {
	steps := map[string]func(context.Context) (Artifact, error){
		"table1": func(context.Context) (Artifact, error) { return Table1(), nil },
		"fig9":   s.Figure9,
		"fig10":  s.Figure10,
		"fig11":  s.Figure11,
		"table2": s.Table2,
		"table3": s.Table3,
		"table4": s.Table4,
		"fig12":  s.Figure12,
		"fig13":  s.Figure13,
		"fig14":  s.Figure14,
		"tco":    func(context.Context) (Artifact, error) { return TCO() },
		"ext-scale": func(ctx context.Context) (Artifact, error) {
			return s.ScaleArtifact(ctx, 5)
		},
		"ext-backfill": func(ctx context.Context) (Artifact, error) {
			return s.AblationBackfill(ctx, NASAProvider)
		},
		"ext-provision": func(ctx context.Context) (Artifact, error) {
			return s.AblationProvision(ctx, NASAProvider, 160)
		},
	}
	step, ok := steps[id]
	return step, ok
}

// ArtifactByID regenerates one artifact by ID.
func (s *Suite) ArtifactByID(ctx context.Context, id string) (Artifact, error) {
	step, ok := s.artifactStep(id)
	if !ok {
		return Artifact{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)",
			id, strings.Join(ArtifactIDs(), ", "))
	}
	return step(ctx)
}

// ArtifactsByID regenerates the requested artifacts ("all" and
// "extensions" expand; see ExpandArtifactIDs), fanning independent
// steps out over the suite's worker pool while the suite-wide cache,
// singleflight and semaphore keep total simulation work deduplicated
// and bounded. Results come back in request order at any worker count.
func (s *Suite) ArtifactsByID(ctx context.Context, ids ...string) ([]Artifact, error) {
	expanded, err := ExpandArtifactIDs(ids)
	if err != nil {
		return nil, err
	}
	out := make([]Artifact, len(expanded))
	err = par.ForEach(s.workers(), len(expanded), func(i int) error {
		a, err := s.ArtifactByID(ctx, expanded[i])
		if err != nil {
			return err
		}
		out[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
