package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/par"
	"repro/internal/plot"
	"repro/internal/policy"
	"repro/internal/synth"
	"repro/internal/systems"
)

// This file implements studies beyond the paper's evaluation: the paper's
// conclusion asks for "a more formal framework to model the generalized
// case in that n resource provider provisions resources to m service
// providers" and for investigating "the optimal resource management and
// scheduling policies". ScaleStudy, AblationBackfill and AblationProvision
// are concrete first steps on those questions using the same machinery.

// ScalePoint is one consolidation size's outcome.
type ScalePoint struct {
	Providers     int
	DCSNodeHours  float64
	DSPNodeHours  float64
	SavedFraction float64
	PeakNodes     int
}

// ScaleStudy grows the number of consolidated HTC service providers from 1
// to n (each a distinct-seed NASA-like organization) and reports how the
// resource provider's DSP savings evolve against per-organization
// dedicated clusters: the economies-of-scale curve behind the paper's
// title question.
func (s *Suite) ScaleStudy(ctx context.Context, n int) ([]ScalePoint, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: scale study needs n >= 1")
	}
	opts := s.Options()
	var out []ScalePoint
	var workloads []systems.Workload
	for i := 0; i < n; i++ {
		model := synth.NASAiPSC(s.Seed + int64(100+i))
		model.Days = s.Days
		jobs, err := model.Generate()
		if err != nil {
			return nil, err
		}
		workloads = append(workloads, systems.Workload{
			Name:       fmt.Sprintf("org-%02d", i+1),
			Class:      job.HTC,
			Jobs:       jobs,
			FixedNodes: model.MachineNodes,
			Params:     policy.HTCDefaults(NASAInitial, NASARatio),
		})
		var dcs, dsp systems.Result
		runs := []func() error{
			func() (err error) {
				dcs, err = systems.RunDCS(ctx, systems.CloneWorkloads(workloads), opts)
				return err
			},
			func() (err error) {
				dsp, err = core.Run(ctx, systems.CloneWorkloads(workloads), core.Config{Options: opts})
				return err
			},
		}
		if err := s.runPair(runs); err != nil {
			return nil, err
		}
		pt := ScalePoint{
			Providers:    i + 1,
			DCSNodeHours: dcs.TotalNodeHours,
			DSPNodeHours: dsp.TotalNodeHours,
			PeakNodes:    dsp.PeakNodes,
		}
		if pt.DCSNodeHours > 0 {
			pt.SavedFraction = 1 - pt.DSPNodeHours/pt.DCSNodeHours
		}
		out = append(out, pt)
	}
	return out, nil
}

// ScaleArtifact renders the scale study.
func (s *Suite) ScaleArtifact(ctx context.Context, n int) (Artifact, error) {
	points, err := s.ScaleStudy(ctx, n)
	if err != nil {
		return Artifact{}, err
	}
	xs := make([]string, len(points))
	saved := make([]float64, len(points))
	peaks := make([]float64, len(points))
	values := make(map[string]float64)
	for i, p := range points {
		xs[i] = fmt.Sprintf("%d", p.Providers)
		saved[i] = p.SavedFraction * 100
		peaks[i] = float64(p.PeakNodes)
		values[fmt.Sprintf("saved_pct_n%d", p.Providers)] = saved[i]
	}
	series := []plot.Series{
		{Label: "DSP saving vs dedicated clusters (%)", Y: saved},
		{Label: "DSP peak nodes", Y: peaks},
	}
	return Artifact{
		ID:    "ext-scale",
		Title: "Extension: economies of scale vs number of consolidated providers",
		Text: plot.LineTable("Extension: DSP savings as providers consolidate",
			"providers", xs, series,
			"each provider is a distinct-seed NASA-like organization"),
		SVG: plot.LineChartSVG("DSP savings vs consolidation size",
			"providers", "percent / nodes", xs, series),
		PaperRef: "paper future work: generalize to n providers; savings should persist or grow with consolidation",
		Values:   values,
	}, nil
}

// AblationBackfill compares the paper's First-Fit HTC dispatch with EASY
// backfilling on one workload under DawningCloud.
func (s *Suite) AblationBackfill(ctx context.Context, provider string) (Artifact, error) {
	wl, err := s.workloadByName(provider)
	if err != nil {
		return Artifact{}, err
	}
	opts := s.Options()
	var ff, easy systems.Result
	runs := []func() error{
		func() (err error) {
			ff, err = core.Run(ctx, []systems.Workload{wl.Clone()}, core.Config{Options: opts})
			return err
		},
		func() (err error) {
			easy, err = core.Run(ctx, []systems.Workload{wl.Clone()}, core.Config{Options: opts, EasyBackfill: true})
			return err
		},
	}
	if err := s.runPair(runs); err != nil {
		return Artifact{}, err
	}
	pf, _ := ff.Provider(provider)
	pe, _ := easy.Provider(provider)
	rows := [][]string{
		{"first-fit (paper)", fmt.Sprintf("%d", pf.Completed), fmt.Sprintf("%.0f", pf.NodeHours)},
		{"EASY backfill", fmt.Sprintf("%d", pe.Completed), fmt.Sprintf("%.0f", pe.NodeHours)},
	}
	return Artifact{
		ID:    "ext-backfill",
		Title: "Extension: HTC dispatch ablation (" + provider + ")",
		Text: plot.Table("Extension: First-Fit vs EASY backfilling under DawningCloud",
			[]string{"scheduler", "completed jobs", "node*hours"}, rows,
			"the paper's policy avoids runtime estimates; EASY needs them"),
		PaperRef: "not in the paper; scheduling-policy future work",
		Values: map[string]float64{
			"firstfit_nodehours": pf.NodeHours,
			"easy_nodehours":     pe.NodeHours,
			"firstfit_completed": float64(pf.Completed),
			"easy_completed":     float64(pe.Completed),
		},
	}, nil
}

// AblationProvision contrasts the paper's grant-or-reject provision policy
// with best-effort partial grants on a capacity-constrained cloud.
func (s *Suite) AblationProvision(ctx context.Context, provider string, capacity int) (Artifact, error) {
	wl, err := s.workloadByName(provider)
	if err != nil {
		return Artifact{}, err
	}
	opts := s.Options()
	opts.PoolCapacity = capacity
	strictOpts, effortOpts := opts, opts
	strictOpts.Provision = policy.GrantOrReject
	effortOpts.Provision = policy.BestEffort
	var strict, effort systems.Result
	runs := []func() error{
		func() (err error) {
			strict, err = core.Run(ctx, []systems.Workload{wl.Clone()}, core.Config{Options: strictOpts})
			return err
		},
		func() (err error) {
			effort, err = core.Run(ctx, []systems.Workload{wl.Clone()}, core.Config{Options: effortOpts})
			return err
		},
	}
	if err := s.runPair(runs); err != nil {
		return Artifact{}, err
	}
	ps, _ := strict.Provider(provider)
	pe, _ := effort.Provider(provider)
	rows := [][]string{
		{"grant-or-reject (paper)", fmt.Sprintf("%d", ps.Completed),
			fmt.Sprintf("%.0f", ps.NodeHours), fmt.Sprintf("%d", strict.RejectedRequests)},
		{"best-effort", fmt.Sprintf("%d", pe.Completed),
			fmt.Sprintf("%.0f", pe.NodeHours), fmt.Sprintf("%d", effort.RejectedRequests)},
	}
	return Artifact{
		ID:    "ext-provision",
		Title: fmt.Sprintf("Extension: provision-policy ablation (%s, %d-node cloud)", provider, capacity),
		Text: plot.Table("Extension: provision policies on a constrained pool",
			[]string{"policy", "completed jobs", "node*hours", "rejections"}, rows, ""),
		PaperRef: "paper future work: optimal resource management policies",
		Values: map[string]float64{
			"strict_completed": float64(ps.Completed),
			"effort_completed": float64(pe.Completed),
			"strict_rejected":  float64(strict.RejectedRequests),
			"effort_rejected":  float64(effort.RejectedRequests),
		},
	}, nil
}

// runPair executes an ablation's two independent simulations on the
// worker pool, each under a suite semaphore slot.
func (s *Suite) runPair(runs []func() error) error {
	return par.ForEach(s.workers(), len(runs), func(i int) error {
		return s.simulate(runs[i])
	})
}

func (s *Suite) workloadByName(name string) (*systems.Workload, error) {
	wls, err := s.Workloads()
	if err != nil {
		return nil, err
	}
	for i := range wls {
		if wls[i].Name == name {
			return &wls[i], nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown provider %q", name)
}
