// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). A Suite fixes the workload construction — the
// synthetic NASA iPSC and SDSC BLUE traces, the 1,000-task Montage
// workflow, and the paper's chosen policy parameters — and produces each
// artifact as structured data plus a rendered text form. The paper's
// reported values are embedded so EXPERIMENTS.md and the bench harness can
// print paper-vs-measured side by side.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/events"
	"repro/internal/job"
	"repro/internal/par"
	"repro/internal/plot"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/systems"
	"repro/internal/workflow"
)

// Provider names used throughout the suite.
const (
	NASAProvider    = "org-nasa-htc"
	BLUEProvider    = "org-blue-htc"
	MontageProvider = "org-montage-mtc"
)

// Paper-chosen policy parameters (Section 4.5.1).
const (
	NASAInitial    = 40
	NASARatio      = 1.2
	BLUEInitial    = 80
	BLUERatio      = 1.5
	MontageInitial = 10
	MontageRatio   = 8
)

// Fixed runtime environment sizes for DCS/SSP (Section 4.4).
const (
	NASAFixed    = 128
	BLUEFixed    = 144
	MontageFixed = 166
)

// Suite fixes workloads and options for one reproduction run.
//
// A Suite is safe for concurrent use: RunAll, Sweep and Artifacts fan
// their independent simulations out over a bounded worker pool, and the
// cache/singleflight semantics live in a service.Group — the lock is
// held only for the map check/fill (never across a simulation), and
// identical in-flight runs are deduplicated so concurrent callers share
// one simulation instead of racing to repeat it.
type Suite struct {
	// Seed drives all synthetic generation.
	Seed int64
	// Days shortens the trace window (default 14, the paper's two
	// weeks). Tests use smaller windows.
	Days int
	// Workers bounds how many simulations run concurrently across
	// RunAll, Sweep and Artifacts. Zero means runtime.NumCPU(); one
	// forces the serial reference behaviour. Set it before the first
	// run.
	Workers int
	// Partitions splits each simulation's providers onto per-core
	// kernel partitions (see systems.Options.Partitions): 0 or 1 runs
	// serially, negative means one partition per CPU. Results are
	// byte-identical at any setting.
	Partitions int
	// Events receives the suite's progress stream (run started/completed
	// and table rendered). The sink is called from worker goroutines and
	// must be safe for concurrent use; nil discards events. Set it
	// before the first run.
	Events events.Sink

	workloadsOnce sync.Once
	workloads     []systems.Workload
	workloadsErr  error

	mu  sync.Mutex
	sem chan struct{} // bounds concurrent simulations suite-wide

	// flight caches each system's result and deduplicates identical
	// in-flight runs (the generalized singleflight shared with the
	// scenario engine and the run service).
	flight service.Group

	simulations atomic.Int64
}

// NewSuite builds a suite with the paper's two-week window.
func NewSuite(seed int64) *Suite {
	return &Suite{Seed: seed, Days: 14}
}

// NewQuickSuite builds a reduced suite for fast tests: a shorter trace
// window with the same calibration targets.
func NewQuickSuite(seed int64) *Suite {
	return &Suite{Seed: seed, Days: 4}
}

// workers resolves the effective pool size.
func (s *Suite) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.NumCPU()
}

// simulate runs one simulation under a suite-wide semaphore slot and
// counts it. The semaphore spans every fan-out (Artifacts over steps,
// each step over systems or grid points), so nested parallelism never
// exceeds Workers concurrent simulations in total.
func (s *Suite) simulate(fn func() error) error {
	s.mu.Lock()
	if s.sem == nil {
		s.sem = make(chan struct{}, s.workers())
	}
	sem := s.sem
	s.mu.Unlock()
	sem <- struct{}{}
	defer func() { <-sem }()
	s.simulations.Add(1)
	return fn()
}

// Simulations reports how many full system simulations the suite has
// executed (cache hits and deduplicated concurrent calls excluded).
func (s *Suite) Simulations() int64 { return s.simulations.Load() }

// Horizon is the accounting window.
func (s *Suite) Horizon() sim.Time { return sim.Time(s.Days) * sim.Day }

// Options returns the shared run options.
func (s *Suite) Options() systems.Options {
	return systems.Options{Horizon: s.Horizon(), Provision: policy.GrantOrReject, Partitions: s.Partitions}
}

// Workloads builds (once) the three service providers' workloads: two HTC
// organizations replaying the NASA-like and BLUE-like traces, and one MTC
// organization running the Montage workflow mid-trace. The returned slice
// is the shared cached copy; runs clone it before mutating anything.
func (s *Suite) Workloads() ([]systems.Workload, error) {
	s.workloadsOnce.Do(func() {
		s.workloads, s.workloadsErr = s.buildWorkloads()
	})
	return s.workloads, s.workloadsErr
}

func (s *Suite) buildWorkloads() ([]systems.Workload, error) {
	nasaModel := synth.NASAiPSC(s.Seed)
	nasaModel.Days = s.Days
	nasa, err := nasaModel.Generate()
	if err != nil {
		return nil, fmt.Errorf("experiments: NASA trace: %w", err)
	}
	blue, err := synth.SDSCBlueWindowed(s.Seed+1, s.Days).Generate()
	if err != nil {
		return nil, fmt.Errorf("experiments: BLUE trace: %w", err)
	}
	dag, err := workflow.PaperMontage(s.Seed + 2)
	if err != nil {
		return nil, fmt.Errorf("experiments: Montage: %w", err)
	}
	// Submit the workflow mid-trace during a busy morning hour so the
	// consolidated peak reflects coexisting workloads.
	montageAt := sim.Time(s.Days/2)*sim.Day + 11*sim.Hour
	return []systems.Workload{
		{
			Name:       NASAProvider,
			Class:      job.HTC,
			Jobs:       nasa,
			FixedNodes: NASAFixed,
			Params:     policy.HTCDefaults(NASAInitial, NASARatio),
		},
		{
			Name:       BLUEProvider,
			Class:      job.HTC,
			Jobs:       blue,
			FixedNodes: BLUEFixed,
			Params:     policy.HTCDefaults(BLUEInitial, BLUERatio),
		},
		{
			Name:       MontageProvider,
			Class:      job.MTC,
			Jobs:       dag.Jobs(montageAt),
			FixedNodes: MontageFixed,
			Params:     policy.MTCDefaults(MontageInitial, MontageRatio),
		},
	}, nil
}

// SystemNames lists the four systems the paper compares, in presentation
// order. The registry may hold more (registered extensions such as
// ssp-spot); the paper's tables and figures only ever run these four.
var SystemNames = []string{"DCS", "SSP", "DRP", "DawningCloud"}

// Run simulates one system over the consolidated three-provider workload,
// caching the result. See RunContext; Run uses the background context.
func (s *Suite) Run(system string) (systems.Result, error) {
	return s.RunContext(context.Background(), system) //dclint:allow ctxfirst -- documented non-ctx convenience wrapper over RunContext
}

// RunContext simulates one registered system over the consolidated
// workload, caching the result. The cache/singleflight semantics come
// from service.Group: the lock guards only the cache check/fill, never
// a simulation; concurrent callers asking for the same system share one
// in-flight run instead of repeating it; and a caller waiting on
// another caller's in-flight run retries with its own context if that
// run is abandoned by cancellation, so one caller's cancelled context
// never poisons another's result.
func (s *Suite) RunContext(ctx context.Context, system string) (systems.Result, error) {
	v, err := s.flight.Do(ctx, system, func() (any, error) {
		return s.runSystem(ctx, system)
	})
	if err != nil {
		return systems.Result{}, err
	}
	return v.(systems.Result), nil
}

// runSystem executes one full simulation on a cloned workload set. The
// baseline runners and core.Run only read their workloads, but cloning
// makes the isolation unconditional: no concurrent run can observe
// another's job slices no matter how a future runner evolves.
func (s *Suite) runSystem(ctx context.Context, system string) (systems.Result, error) {
	runner, canonical, err := registry.Default.Resolve(system)
	if err != nil {
		return systems.Result{}, fmt.Errorf("experiments: %w", err)
	}
	workloads, err := s.Workloads()
	if err != nil {
		return systems.Result{}, err
	}
	opts := s.Options()
	opts.Seed = s.Seed
	var r systems.Result
	err = s.simulate(func() (err error) {
		s.Events.Emit(events.RunStarted{System: canonical, Providers: len(workloads)})
		r, err = runner.Run(ctx, systems.CloneWorkloads(workloads), opts)
		s.Events.Emit(events.RunCompleted{System: canonical, Err: err, TotalNodeHours: r.TotalNodeHours})
		if err != nil {
			return fmt.Errorf("experiments: run %s: %w", canonical, err)
		}
		return nil
	})
	if err != nil {
		return systems.Result{}, err
	}
	return r, nil
}

// RunAll simulates the paper's four systems, fanning out over the worker
// pool. See RunAllContext; RunAll uses the background context.
func (s *Suite) RunAll() (map[string]systems.Result, error) {
	return s.RunAllContext(context.Background()) //dclint:allow ctxfirst -- documented non-ctx convenience wrapper over RunAllContext
}

// RunAllContext simulates the paper's four systems concurrently,
// honoring cancellation end-to-end.
func (s *Suite) RunAllContext(ctx context.Context) (map[string]systems.Result, error) {
	results := make([]systems.Result, len(SystemNames))
	err := par.ForEach(s.workers(), len(SystemNames), func(i int) error {
		r, err := s.RunContext(ctx, SystemNames[i])
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]systems.Result, len(SystemNames))
	for i, name := range SystemNames {
		out[name] = results[i]
	}
	return out, nil
}

// Artifact is a rendered experiment output.
type Artifact struct {
	ID       string // "table2", "fig12", ...
	Title    string
	Text     string             // rendered text form
	SVG      string             // optional standalone SVG ("" when not a chart)
	PaperRef string             // the paper's reported numbers, for comparison
	Values   map[string]float64 // key measured values for assertions
}

// Table1 renders the qualitative usage-model comparison (paper Table 1).
func Table1() Artifact {
	columns := []string{"", "DCS", "SSP", "DRP", "DSP"}
	rows := [][]string{
		{"resource property", "local", "leased", "leased", "leased"},
		{"runtime environment", "stereotyped", "stereotyped", "no offering", "created on demand"},
		{"resource provision for RE", "fixed", "fixed", "manual", "flexible"},
	}
	text := plot.Table("Table 1: comparison of usage models", columns, rows, "")
	return Artifact{
		ID:    "table1",
		Title: "Comparison of different usage models",
		Text:  text,
		PaperRef: "identical by construction: the table is the paper's " +
			"definition of the four usage models",
	}
}
