// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). A Suite fixes the workload construction — the
// synthetic NASA iPSC and SDSC BLUE traces, the 1,000-task Montage
// workflow, and the paper's chosen policy parameters — and produces each
// artifact as structured data plus a rendered text form. The paper's
// reported values are embedded so EXPERIMENTS.md and the bench harness can
// print paper-vs-measured side by side.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/plot"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/systems"
	"repro/internal/workflow"
)

// Provider names used throughout the suite.
const (
	NASAProvider    = "org-nasa-htc"
	BLUEProvider    = "org-blue-htc"
	MontageProvider = "org-montage-mtc"
)

// Paper-chosen policy parameters (Section 4.5.1).
const (
	NASAInitial    = 40
	NASARatio      = 1.2
	BLUEInitial    = 80
	BLUERatio      = 1.5
	MontageInitial = 10
	MontageRatio   = 8
)

// Fixed runtime environment sizes for DCS/SSP (Section 4.4).
const (
	NASAFixed    = 128
	BLUEFixed    = 144
	MontageFixed = 166
)

// Suite fixes workloads and options for one reproduction run.
type Suite struct {
	// Seed drives all synthetic generation.
	Seed int64
	// Days shortens the trace window (default 14, the paper's two
	// weeks). Tests use smaller windows.
	Days int

	mu        sync.Mutex
	workloads []systems.Workload
	results   map[string]systems.Result
}

// NewSuite builds a suite with the paper's two-week window.
func NewSuite(seed int64) *Suite {
	return &Suite{Seed: seed, Days: 14, results: make(map[string]systems.Result)}
}

// NewQuickSuite builds a reduced suite for fast tests: a shorter trace
// window with the same calibration targets.
func NewQuickSuite(seed int64) *Suite {
	return &Suite{Seed: seed, Days: 4, results: make(map[string]systems.Result)}
}

// Horizon is the accounting window.
func (s *Suite) Horizon() sim.Time { return sim.Time(s.Days) * sim.Day }

// Options returns the shared run options.
func (s *Suite) Options() systems.Options {
	return systems.Options{Horizon: s.Horizon(), Provision: policy.GrantOrReject}
}

// Workloads builds (once) the three service providers' workloads: two HTC
// organizations replaying the NASA-like and BLUE-like traces, and one MTC
// organization running the Montage workflow mid-trace.
func (s *Suite) Workloads() ([]systems.Workload, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.workloadsLocked()
}

func (s *Suite) workloadsLocked() ([]systems.Workload, error) {
	if s.workloads != nil {
		return s.workloads, nil
	}
	nasaModel := synth.NASAiPSC(s.Seed)
	nasaModel.Days = s.Days
	nasa, err := nasaModel.Generate()
	if err != nil {
		return nil, fmt.Errorf("experiments: NASA trace: %w", err)
	}
	blueModel := synth.SDSCBlue(s.Seed + 1)
	blueModel.Days = s.Days
	if s.Days < 14 {
		// Keep the quiet-then-busy shape on shortened windows.
		blueModel.WeekFactors = []float64{0.55, 1.45, 1.45}
	}
	blue, err := blueModel.Generate()
	if err != nil {
		return nil, fmt.Errorf("experiments: BLUE trace: %w", err)
	}
	dag, err := workflow.PaperMontage(s.Seed + 2)
	if err != nil {
		return nil, fmt.Errorf("experiments: Montage: %w", err)
	}
	// Submit the workflow mid-trace during a busy morning hour so the
	// consolidated peak reflects coexisting workloads.
	montageAt := sim.Time(s.Days/2)*sim.Day + 11*sim.Hour
	s.workloads = []systems.Workload{
		{
			Name:       NASAProvider,
			Class:      job.HTC,
			Jobs:       nasa,
			FixedNodes: NASAFixed,
			Params:     policy.HTCDefaults(NASAInitial, NASARatio),
		},
		{
			Name:       BLUEProvider,
			Class:      job.HTC,
			Jobs:       blue,
			FixedNodes: BLUEFixed,
			Params:     policy.HTCDefaults(BLUEInitial, BLUERatio),
		},
		{
			Name:       MontageProvider,
			Class:      job.MTC,
			Jobs:       dag.Jobs(montageAt),
			FixedNodes: MontageFixed,
			Params:     policy.MTCDefaults(MontageInitial, MontageRatio),
		},
	}
	return s.workloads, nil
}

// SystemNames lists the four compared systems in presentation order.
var SystemNames = []string{"DCS", "SSP", "DRP", "DawningCloud"}

// Run simulates one system over the consolidated three-provider workload,
// caching the result.
func (s *Suite) Run(system string) (systems.Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.results[system]; ok {
		return r, nil
	}
	workloads, err := s.workloadsLocked()
	if err != nil {
		return systems.Result{}, err
	}
	opts := systems.Options{Horizon: s.Horizon(), Provision: policy.GrantOrReject}
	var r systems.Result
	switch system {
	case "DCS":
		r, err = systems.RunDCS(workloads, opts)
	case "SSP":
		r, err = systems.RunSSP(workloads, opts)
	case "DRP":
		r, err = systems.RunDRP(workloads, opts)
	case "DawningCloud":
		r, err = core.Run(workloads, core.Config{Options: opts})
	default:
		return systems.Result{}, fmt.Errorf("experiments: unknown system %q", system)
	}
	if err != nil {
		return systems.Result{}, fmt.Errorf("experiments: run %s: %w", system, err)
	}
	s.results[system] = r
	return r, nil
}

// RunAll simulates all four systems.
func (s *Suite) RunAll() (map[string]systems.Result, error) {
	out := make(map[string]systems.Result, len(SystemNames))
	for _, name := range SystemNames {
		r, err := s.Run(name)
		if err != nil {
			return nil, err
		}
		out[name] = r
	}
	return out, nil
}

// Artifact is a rendered experiment output.
type Artifact struct {
	ID       string // "table2", "fig12", ...
	Title    string
	Text     string             // rendered text form
	SVG      string             // optional standalone SVG ("" when not a chart)
	PaperRef string             // the paper's reported numbers, for comparison
	Values   map[string]float64 // key measured values for assertions
}

// Table1 renders the qualitative usage-model comparison (paper Table 1).
func Table1() Artifact {
	columns := []string{"", "DCS", "SSP", "DRP", "DSP"}
	rows := [][]string{
		{"resource property", "local", "leased", "leased", "leased"},
		{"runtime environment", "stereotyped", "stereotyped", "no offering", "created on demand"},
		{"resource provision for RE", "fixed", "fixed", "manual", "flexible"},
	}
	text := plot.Table("Table 1: comparison of usage models", columns, rows, "")
	return Artifact{
		ID:    "table1",
		Title: "Comparison of different usage models",
		Text:  text,
		PaperRef: "identical by construction: the table is the paper's " +
			"definition of the four usage models",
	}
}
