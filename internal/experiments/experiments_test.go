package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/job"
)

// The full two-week suite runs in well under a second, so the shape tests
// use the paper's real window. One shared suite avoids re-simulating.
var shared = NewSuite(42)

func TestWorkloadsConstruction(t *testing.T) {
	wls, err := shared.Workloads()
	if err != nil {
		t.Fatalf("Workloads: %v", err)
	}
	if len(wls) != 3 {
		t.Fatalf("workloads = %d, want 3 (two HTC + one MTC)", len(wls))
	}
	byName := map[string]int{}
	for i, wl := range wls {
		byName[wl.Name] = i
	}
	nasa := wls[byName[NASAProvider]]
	if nasa.Class != job.HTC || nasa.FixedNodes != 128 {
		t.Errorf("NASA workload misconfigured: %v fixed=%d", nasa.Class, nasa.FixedNodes)
	}
	if nasa.Params.InitialNodes != 40 || nasa.Params.ThresholdRatio != 1.2 {
		t.Errorf("NASA params = %+v, want B40 R1.2", nasa.Params)
	}
	blue := wls[byName[BLUEProvider]]
	if blue.FixedNodes != 144 || blue.Params.InitialNodes != 80 || blue.Params.ThresholdRatio != 1.5 {
		t.Errorf("BLUE workload misconfigured: fixed=%d params=%+v", blue.FixedNodes, blue.Params)
	}
	montage := wls[byName[MontageProvider]]
	if montage.Class != job.MTC || montage.FixedNodes != 166 {
		t.Errorf("Montage workload misconfigured: %v fixed=%d", montage.Class, montage.FixedNodes)
	}
	if len(montage.Jobs) != 1000 {
		t.Errorf("Montage tasks = %d, want 1000", len(montage.Jobs))
	}
	if montage.Params.ScanInterval != 3 {
		t.Errorf("Montage scan interval = %d, want 3", montage.Params.ScanInterval)
	}
}

func TestRunUnknownSystem(t *testing.T) {
	if _, err := shared.Run("VMS"); err == nil {
		t.Error("unknown system accepted")
	}
}

// TestPaperShapeServiceProviders asserts the orderings of Tables 2-4: who
// wins and roughly by what factor, the reproduction contract.
func TestPaperShapeServiceProviders(t *testing.T) {
	rs, err := shared.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	get := func(system, provider string) float64 {
		p, ok := rs[system].Provider(provider)
		if !ok {
			t.Fatalf("%s missing provider %s", system, provider)
		}
		return p.NodeHours
	}
	// DCS and SSP are performance-identical by construction.
	for _, prov := range []string{NASAProvider, BLUEProvider, MontageProvider} {
		if dcs, ssp := get("DCS", prov), get("SSP", prov); dcs != ssp {
			t.Errorf("%s: DCS %.0f != SSP %.0f", prov, dcs, ssp)
		}
	}
	// Fixed REs bill exactly size x period for the HTC providers.
	if got := get("DCS", NASAProvider); got != 128*14*24 {
		t.Errorf("DCS NASA = %.0f, want %d", got, 128*14*24)
	}
	if got := get("DCS", BLUEProvider); got != 144*14*24 {
		t.Errorf("DCS BLUE = %.0f, want %d", got, 144*14*24)
	}
	// Table 2 shape: DawningCloud saves >= 10% vs DCS on NASA; DRP is
	// more expensive than DCS (the short-job hourly-rounding penalty).
	nasaDCS, nasaDRP, nasaDC := get("DCS", NASAProvider), get("DRP", NASAProvider), get("DawningCloud", NASAProvider)
	if nasaDC >= nasaDCS*0.9 {
		t.Errorf("NASA: DawningCloud %.0f not <= 0.9x DCS %.0f", nasaDC, nasaDCS)
	}
	if nasaDRP <= nasaDCS {
		t.Errorf("NASA: DRP %.0f not above DCS %.0f (paper: -25.8%%)", nasaDRP, nasaDCS)
	}
	if nasaDRP <= nasaDC {
		t.Errorf("NASA: DRP %.0f not above DawningCloud %.0f", nasaDRP, nasaDC)
	}
	// Table 3 shape: both DRP and DawningCloud save vs DCS on BLUE and
	// land near each other (paper: 25.9% vs 27.2%).
	blueDCS, blueDRP, blueDC := get("DCS", BLUEProvider), get("DRP", BLUEProvider), get("DawningCloud", BLUEProvider)
	if blueDC >= blueDCS {
		t.Errorf("BLUE: DawningCloud %.0f not below DCS %.0f", blueDC, blueDCS)
	}
	if blueDRP >= blueDCS {
		t.Errorf("BLUE: DRP %.0f not below DCS %.0f", blueDRP, blueDCS)
	}
	if ratio := blueDC / blueDRP; ratio < 0.75 || ratio > 1.25 {
		t.Errorf("BLUE: DawningCloud/DRP = %.2f, want near 1 (paper: 35201/35838)", ratio)
	}
	// Table 4 shape: DawningCloud matches the fixed systems on Montage
	// while DRP pays for the workflow's full width.
	mDCS, mDRP, mDC := get("DCS", MontageProvider), get("DRP", MontageProvider), get("DawningCloud", MontageProvider)
	if mDCS != 166 {
		t.Errorf("Montage DCS = %.0f, want 166 (fixed RE for one billed hour)", mDCS)
	}
	if diff := mDC / mDCS; diff < 0.85 || diff > 1.15 {
		t.Errorf("Montage: DawningCloud %.0f not within 15%% of DCS %.0f", mDC, mDCS)
	}
	if mDRP < 3*mDCS {
		t.Errorf("Montage: DRP %.0f not >= 3x DCS %.0f (paper: -298.8%%)", mDRP, mDCS)
	}
}

// TestPaperShapeThroughput asserts the performance columns: queued systems
// never beat DRP, and DawningCloud matches DCS/SSP.
func TestPaperShapeThroughput(t *testing.T) {
	rs, err := shared.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, prov := range []string{NASAProvider, BLUEProvider} {
		dcs, _ := rs["DCS"].Provider(prov)
		drp, _ := rs["DRP"].Provider(prov)
		dc, _ := rs["DawningCloud"].Provider(prov)
		if drp.Completed < dcs.Completed {
			t.Errorf("%s: DRP completed %d < DCS %d", prov, drp.Completed, dcs.Completed)
		}
		if dc.Completed < dcs.Completed {
			t.Errorf("%s: DawningCloud completed %d < DCS %d", prov, dc.Completed, dcs.Completed)
		}
	}
	dcs, _ := rs["DCS"].Provider(MontageProvider)
	drp, _ := rs["DRP"].Provider(MontageProvider)
	dc, _ := rs["DawningCloud"].Provider(MontageProvider)
	if drp.TasksPerSecond < dcs.TasksPerSecond {
		t.Errorf("Montage: DRP tasks/s %.2f < DCS %.2f", drp.TasksPerSecond, dcs.TasksPerSecond)
	}
	if ratio := dc.TasksPerSecond / dcs.TasksPerSecond; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("Montage: DawningCloud/DCS tasks/s = %.2f, want ~1 (paper: 2.49/2.49)", ratio)
	}
	if dcs.Completed != 1000 || drp.Completed != 1000 || dc.Completed != 1000 {
		t.Error("Montage workflow did not complete in some system")
	}
}

// TestPaperShapeResourceProvider asserts Figures 12-14: total, peak and
// adjustment orderings for the resource provider.
func TestPaperShapeResourceProvider(t *testing.T) {
	rs, err := shared.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	dcs, ssp, drp, dc := rs["DCS"], rs["SSP"], rs["DRP"], rs["DawningCloud"]
	// Figure 12: DawningCloud's total is the lowest.
	if dc.TotalNodeHours >= dcs.TotalNodeHours {
		t.Errorf("total: DawningCloud %.0f not below DCS %.0f (paper: -29.7%%)",
			dc.TotalNodeHours, dcs.TotalNodeHours)
	}
	if dc.TotalNodeHours >= drp.TotalNodeHours {
		t.Errorf("total: DawningCloud %.0f not below DRP %.0f (paper: -29.0%%)",
			dc.TotalNodeHours, drp.TotalNodeHours)
	}
	if dcs.TotalNodeHours != ssp.TotalNodeHours {
		t.Errorf("total: DCS %.0f != SSP %.0f", dcs.TotalNodeHours, ssp.TotalNodeHours)
	}
	// Figure 13: DCS/SSP peak is the sum of fixed REs; DawningCloud sits
	// within ~25% of it (paper: 1.06x) and far below DRP (paper: 0.21x).
	if dcs.PeakNodes != 438 {
		t.Errorf("DCS peak = %d, want 438 (128+144+166)", dcs.PeakNodes)
	}
	ratio := float64(dc.PeakNodes) / float64(dcs.PeakNodes)
	if ratio < 0.95 || ratio > 1.3 {
		t.Errorf("peak: DawningCloud/DCS = %.2f, want ~1.06", ratio)
	}
	if dc.PeakNodes >= drp.PeakNodes {
		t.Errorf("peak: DawningCloud %d not below DRP %d", dc.PeakNodes, drp.PeakNodes)
	}
	// Figure 14: SSP adjusts least; DawningCloud adjusts less than DRP.
	if !(ssp.TotalNodesAdjusted < dc.TotalNodesAdjusted && dc.TotalNodesAdjusted < drp.TotalNodesAdjusted) {
		t.Errorf("adjustments: want SSP %d < DawningCloud %d < DRP %d",
			ssp.TotalNodesAdjusted, dc.TotalNodesAdjusted, drp.TotalNodesAdjusted)
	}
	if dcs.TotalNodesAdjusted != 0 {
		t.Errorf("DCS adjustments = %d, want 0 (owned machines)", dcs.TotalNodesAdjusted)
	}
	if dc.OverheadPerHour <= 0 {
		t.Error("DawningCloud overhead per hour not positive")
	}
	// No system should hit provisioning rejections on the open pool.
	for name, r := range rs {
		if r.RejectedRequests != 0 {
			t.Errorf("%s: %d rejected requests on an unconstrained pool", name, r.RejectedRequests)
		}
	}
}

func TestTable1Static(t *testing.T) {
	a := Table1()
	if a.ID != "table1" {
		t.Errorf("ID = %s", a.ID)
	}
	for _, want := range []string{"DCS", "SSP", "DRP", "DSP", "created on demand", "flexible"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("Table1 missing %q:\n%s", want, a.Text)
		}
	}
}

func TestTablesRender(t *testing.T) {
	for _, step := range []func(context.Context) (Artifact, error){shared.Table2, shared.Table3, shared.Table4} {
		a, err := step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, system := range SystemNames {
			if !strings.Contains(a.Text, system) {
				t.Errorf("%s missing row for %s:\n%s", a.ID, system, a.Text)
			}
		}
		if a.PaperRef == "" {
			t.Errorf("%s has no paper reference", a.ID)
		}
		if len(a.Values) == 0 {
			t.Errorf("%s exposes no values", a.ID)
		}
	}
}

func TestFiguresRender(t *testing.T) {
	for _, step := range []func(context.Context) (Artifact, error){shared.Figure12, shared.Figure13, shared.Figure14} {
		a, err := step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(a.SVG, "<svg") {
			t.Errorf("%s has no SVG", a.ID)
		}
		for _, system := range SystemNames {
			if _, ok := a.Values[system]; !ok {
				t.Errorf("%s missing value for %s", a.ID, system)
			}
		}
	}
}

func TestTCOMatchesPaper(t *testing.T) {
	a, err := TCO()
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports $3,160 vs $2,260 per month, ratio 71.5%.
	if got := a.Values["dcs_total"]; got < 3100 || got > 3200 {
		t.Errorf("DCS TCO = %.1f, want ~3162.5", got)
	}
	if got := a.Values["ssp_total"]; got != 2260 {
		t.Errorf("SSP TCO = %.1f, want 2260", got)
	}
	if got := a.Values["ratio"]; got < 0.705 || got > 0.725 {
		t.Errorf("ratio = %.3f, want ~0.715", got)
	}
}

// TestSweepParameterEffects checks the Figure 11 trade-off: with B=10 and
// R=8 the first Montage wave (166 ready tasks against 10 owned) trips DR1
// and the TRE expands to the working width, while with B=80 the ratio
// 166/80 stays under the threshold, so the TRE never expands — cheaper but
// slower. The paper picks B10_R8 for exactly this reason.
func TestSweepParameterEffects(t *testing.T) {
	pts, err := shared.Sweep(MontageProvider, []int{10, 80}, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	b10, b80 := pts[0], pts[1]
	if b80.NodeHours >= b10.NodeHours {
		t.Errorf("B80 consumption %.0f not below B10 %.0f (no expansion expected)",
			b80.NodeHours, b10.NodeHours)
	}
	if b80.Perf >= b10.Perf {
		t.Errorf("B80 tasks/s %.2f not below B10 %.2f (fewer nodes must be slower)",
			b80.Perf, b10.Perf)
	}
	for _, p := range pts {
		if p.Perf < 0.5 || p.Perf > 4.0 {
			t.Errorf("B%d R%g tasks/s = %.2f outside sane band", p.B, p.R, p.Perf)
		}
	}
}

func TestSweepUnknownProvider(t *testing.T) {
	if _, err := shared.Sweep("nobody", []int{10}, []float64{1}); err == nil {
		t.Error("unknown provider accepted")
	}
}

func TestFigure9SweepRendersAllPoints(t *testing.T) {
	a, err := shared.Figure9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(SweepInitials) * len(SweepRatiosHTC)
	count := 0
	for k := range a.Values {
		if strings.HasPrefix(k, "nodehours_") {
			count++
		}
	}
	if count != wantPoints {
		t.Errorf("sweep points = %d, want %d", count, wantPoints)
	}
	if !strings.Contains(a.Text, "B80_R1.5") {
		t.Errorf("figure 9 missing the paper's chosen configuration:\n%s", a.Text)
	}
}

func TestArtifactsComplete(t *testing.T) {
	arts, err := shared.Artifacts()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"table1", "fig9", "fig10", "fig11", "table2", "table3",
		"table4", "fig12", "fig13", "fig14", "tco"}
	if len(arts) != len(wantIDs) {
		t.Fatalf("artifacts = %d, want %d", len(arts), len(wantIDs))
	}
	for i, id := range wantIDs {
		if arts[i].ID != id {
			t.Errorf("artifact %d = %s, want %s", i, arts[i].ID, id)
		}
		if arts[i].Text == "" {
			t.Errorf("artifact %s has empty text", id)
		}
	}
}

func TestQuickSuiteRuns(t *testing.T) {
	q := NewQuickSuite(7)
	r, err := q.Run("DawningCloud")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Providers) != 3 {
		t.Errorf("quick suite providers = %d, want 3", len(r.Providers))
	}
	if r.Horizon != 4*24*3600 {
		t.Errorf("quick horizon = %d, want 4 days", r.Horizon)
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a := NewSuite(123)
	b := NewSuite(123)
	ra, err := a.Run("DawningCloud")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Run("DawningCloud")
	if err != nil {
		t.Fatal(err)
	}
	if ra.TotalNodeHours != rb.TotalNodeHours || ra.PeakNodes != rb.PeakNodes {
		t.Errorf("same seed produced different results: %.0f/%d vs %.0f/%d",
			ra.TotalNodeHours, ra.PeakNodes, rb.TotalNodeHours, rb.PeakNodes)
	}
}
