package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// Extensions run on the quick suite: a 4-day window keeps the scale study
// fast while preserving the consolidation dynamics.
var extSuite = NewQuickSuite(42)

func TestScaleStudySavingsPersist(t *testing.T) {
	points, err := extSuite.ScaleStudy(context.Background(), 3)
	if err != nil {
		t.Fatalf("ScaleStudy: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	for _, p := range points {
		if p.DSPNodeHours >= p.DCSNodeHours {
			t.Errorf("n=%d: DSP %.0f not below DCS %.0f", p.Providers, p.DSPNodeHours, p.DCSNodeHours)
		}
		if p.SavedFraction <= 0 {
			t.Errorf("n=%d: no savings (%.3f)", p.Providers, p.SavedFraction)
		}
	}
	// Totals grow with consolidation size.
	if points[2].DCSNodeHours <= points[0].DCSNodeHours {
		t.Error("DCS total did not grow with more providers")
	}
}

func TestScaleStudyValidation(t *testing.T) {
	if _, err := extSuite.ScaleStudy(context.Background(), 0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestScaleArtifactRenders(t *testing.T) {
	a, err := extSuite.ScaleArtifact(context.Background(), 2)
	if err != nil {
		t.Fatalf("ScaleArtifact: %v", err)
	}
	if a.ID != "ext-scale" || !strings.Contains(a.Text, "providers") {
		t.Errorf("artifact = %+v", a)
	}
	if !strings.Contains(a.SVG, "<svg") {
		t.Error("missing SVG")
	}
	if _, ok := a.Values["saved_pct_n1"]; !ok {
		t.Error("missing n=1 value")
	}
}

func TestAblationBackfill(t *testing.T) {
	a, err := extSuite.AblationBackfill(context.Background(), NASAProvider)
	if err != nil {
		t.Fatalf("AblationBackfill: %v", err)
	}
	ffDone := a.Values["firstfit_completed"]
	easyDone := a.Values["easy_completed"]
	if ffDone == 0 || easyDone == 0 {
		t.Fatalf("no completions: ff=%.0f easy=%.0f", ffDone, easyDone)
	}
	// Both schedulers must process essentially the whole trace.
	if ratio := easyDone / ffDone; ratio < 0.98 || ratio > 1.02 {
		t.Errorf("completion ratio = %.3f, want ~1", ratio)
	}
	if !strings.Contains(a.Text, "EASY") {
		t.Errorf("text missing EASY row:\n%s", a.Text)
	}
}

func TestAblationBackfillUnknownProvider(t *testing.T) {
	if _, err := extSuite.AblationBackfill(context.Background(), "ghost"); err == nil {
		t.Error("unknown provider accepted")
	}
}

// TestScaleStudySingleProviderEdge covers the sweep's smallest grid —
// ScaleStudy(1) runs exactly one consolidation point — and pins its
// determinism: a Workers > 1 suite must reproduce the serial suite's
// numbers bit for bit (run under -race in CI, this also exercises the
// pair fan-out's synchronization).
func TestScaleStudySingleProviderEdge(t *testing.T) {
	serial := NewQuickSuite(42)
	serial.Workers = 1
	parallel := NewQuickSuite(42)
	parallel.Workers = 4

	sp, err := serial.ScaleStudy(context.Background(), 1)
	if err != nil {
		t.Fatalf("serial ScaleStudy(1): %v", err)
	}
	pp, err := parallel.ScaleStudy(context.Background(), 1)
	if err != nil {
		t.Fatalf("parallel ScaleStudy(1): %v", err)
	}
	if len(sp) != 1 || len(pp) != 1 {
		t.Fatalf("points = %d/%d, want 1/1", len(sp), len(pp))
	}
	if sp[0].Providers != 1 {
		t.Errorf("point providers = %d, want 1", sp[0].Providers)
	}
	if !reflect.DeepEqual(sp, pp) {
		t.Errorf("Workers=4 diverged from serial:\n serial   %+v\n parallel %+v", sp[0], pp[0])
	}
}

// TestAblationProvisionTwoPointDeterminism runs the ablation's two
// simulations (grant-or-reject vs best-effort) on serial and Workers > 1
// suites and requires identical artifact values regardless of which of
// the pair finishes first.
func TestAblationProvisionTwoPointDeterminism(t *testing.T) {
	serial := NewQuickSuite(42)
	serial.Workers = 1
	parallel := NewQuickSuite(42)
	parallel.Workers = 4

	sa, err := serial.AblationProvision(context.Background(), NASAProvider, 160)
	if err != nil {
		t.Fatalf("serial AblationProvision: %v", err)
	}
	pa, err := parallel.AblationProvision(context.Background(), NASAProvider, 160)
	if err != nil {
		t.Fatalf("parallel AblationProvision: %v", err)
	}
	if !reflect.DeepEqual(sa.Values, pa.Values) {
		t.Errorf("Workers=4 diverged from serial:\n serial   %v\n parallel %v", sa.Values, pa.Values)
	}
	if sa.Text != pa.Text {
		t.Error("rendered ablation tables differ between worker counts")
	}
	if got := parallel.Simulations(); got != 2 {
		t.Errorf("parallel suite ran %d simulations, want exactly 2", got)
	}
}

func TestAblationProvisionConstrainedPool(t *testing.T) {
	// 160 nodes: B=40 fits but large DR requests are rejected outright
	// under grant-or-reject while best-effort takes partial grants.
	a, err := extSuite.AblationProvision(context.Background(), NASAProvider, 160)
	if err != nil {
		t.Fatalf("AblationProvision: %v", err)
	}
	if a.Values["strict_rejected"] == 0 {
		t.Error("strict policy recorded no rejections on a 160-node pool")
	}
	// Best-effort never rejects while nodes remain; it may still reject
	// when the pool is fully allocated, but must reject no more often.
	if a.Values["effort_rejected"] > a.Values["strict_rejected"] {
		t.Errorf("best-effort rejected more (%v) than strict (%v)",
			a.Values["effort_rejected"], a.Values["strict_rejected"])
	}
	if a.Values["effort_completed"] < a.Values["strict_completed"]*0.95 {
		t.Errorf("best-effort completed %v << strict %v",
			a.Values["effort_completed"], a.Values["strict_completed"])
	}
}
