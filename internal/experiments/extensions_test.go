package experiments

import (
	"strings"
	"testing"
)

// Extensions run on the quick suite: a 4-day window keeps the scale study
// fast while preserving the consolidation dynamics.
var extSuite = NewQuickSuite(42)

func TestScaleStudySavingsPersist(t *testing.T) {
	points, err := extSuite.ScaleStudy(3)
	if err != nil {
		t.Fatalf("ScaleStudy: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	for _, p := range points {
		if p.DSPNodeHours >= p.DCSNodeHours {
			t.Errorf("n=%d: DSP %.0f not below DCS %.0f", p.Providers, p.DSPNodeHours, p.DCSNodeHours)
		}
		if p.SavedFraction <= 0 {
			t.Errorf("n=%d: no savings (%.3f)", p.Providers, p.SavedFraction)
		}
	}
	// Totals grow with consolidation size.
	if points[2].DCSNodeHours <= points[0].DCSNodeHours {
		t.Error("DCS total did not grow with more providers")
	}
}

func TestScaleStudyValidation(t *testing.T) {
	if _, err := extSuite.ScaleStudy(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestScaleArtifactRenders(t *testing.T) {
	a, err := extSuite.ScaleArtifact(2)
	if err != nil {
		t.Fatalf("ScaleArtifact: %v", err)
	}
	if a.ID != "ext-scale" || !strings.Contains(a.Text, "providers") {
		t.Errorf("artifact = %+v", a)
	}
	if !strings.Contains(a.SVG, "<svg") {
		t.Error("missing SVG")
	}
	if _, ok := a.Values["saved_pct_n1"]; !ok {
		t.Error("missing n=1 value")
	}
}

func TestAblationBackfill(t *testing.T) {
	a, err := extSuite.AblationBackfill(NASAProvider)
	if err != nil {
		t.Fatalf("AblationBackfill: %v", err)
	}
	ffDone := a.Values["firstfit_completed"]
	easyDone := a.Values["easy_completed"]
	if ffDone == 0 || easyDone == 0 {
		t.Fatalf("no completions: ff=%.0f easy=%.0f", ffDone, easyDone)
	}
	// Both schedulers must process essentially the whole trace.
	if ratio := easyDone / ffDone; ratio < 0.98 || ratio > 1.02 {
		t.Errorf("completion ratio = %.3f, want ~1", ratio)
	}
	if !strings.Contains(a.Text, "EASY") {
		t.Errorf("text missing EASY row:\n%s", a.Text)
	}
}

func TestAblationBackfillUnknownProvider(t *testing.T) {
	if _, err := extSuite.AblationBackfill("ghost"); err == nil {
		t.Error("unknown provider accepted")
	}
}

func TestAblationProvisionConstrainedPool(t *testing.T) {
	// 160 nodes: B=40 fits but large DR requests are rejected outright
	// under grant-or-reject while best-effort takes partial grants.
	a, err := extSuite.AblationProvision(NASAProvider, 160)
	if err != nil {
		t.Fatalf("AblationProvision: %v", err)
	}
	if a.Values["strict_rejected"] == 0 {
		t.Error("strict policy recorded no rejections on a 160-node pool")
	}
	// Best-effort never rejects while nodes remain; it may still reject
	// when the pool is fully allocated, but must reject no more often.
	if a.Values["effort_rejected"] > a.Values["strict_rejected"] {
		t.Errorf("best-effort rejected more (%v) than strict (%v)",
			a.Values["effort_rejected"], a.Values["strict_rejected"])
	}
	if a.Values["effort_completed"] < a.Values["strict_completed"]*0.95 {
		t.Errorf("best-effort completed %v << strict %v",
			a.Values["effort_completed"], a.Values["strict_completed"])
	}
}
