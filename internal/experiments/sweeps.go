package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/systems"
)

// Paper sweep grids (Section 4.5.1): B from 10 to 80; R from 1.0 to 2.0
// for HTC and from 2 to 16 for MTC.
var (
	SweepInitials  = []int{10, 20, 40, 80}
	SweepRatiosHTC = []float64{1.0, 1.2, 1.5, 2.0}
	SweepRatiosMTC = []float64{2, 4, 8, 16}
)

// SweepPoint is one parameter combination's outcome.
type SweepPoint struct {
	B         int
	R         float64
	NodeHours float64
	// Perf is completed jobs for HTC, tasks/second for MTC.
	Perf float64
}

// Sweep runs DawningCloud over the B x R grid for one provider's workload
// in isolation, the paper's parameter-tuning methodology.
func (s *Suite) Sweep(provider string, bs []int, rs []float64) ([]SweepPoint, error) {
	workloads, err := s.Workloads()
	if err != nil {
		return nil, err
	}
	var base *systems.Workload
	for i := range workloads {
		if workloads[i].Name == provider {
			base = &workloads[i]
			break
		}
	}
	if base == nil {
		return nil, fmt.Errorf("experiments: unknown provider %q", provider)
	}
	opts := s.Options()
	var points []SweepPoint
	for _, b := range bs {
		for _, r := range rs {
			wl := *base
			wl.Params.InitialNodes = b
			wl.Params.ThresholdRatio = r
			res, err := core.Run([]systems.Workload{wl}, core.Config{Options: opts})
			if err != nil {
				return nil, fmt.Errorf("experiments: sweep %s B%d R%g: %w", provider, b, r, err)
			}
			p, ok := res.Provider(provider)
			if !ok {
				return nil, fmt.Errorf("experiments: sweep %s B%d R%g: provider missing", provider, b, r)
			}
			perf := float64(p.Completed)
			if p.TasksPerSecond > 0 {
				perf = p.TasksPerSecond
			}
			points = append(points, SweepPoint{B: b, R: r, NodeHours: p.NodeHours, Perf: perf})
		}
	}
	return points, nil
}

// sweepArtifact renders a sweep as the paper's paired consumption/
// performance view.
func sweepArtifact(id, title, perfLabel, paperRef string, points []SweepPoint) Artifact {
	xs := make([]string, len(points))
	consumption := make([]float64, len(points))
	perf := make([]float64, len(points))
	values := make(map[string]float64, 2*len(points))
	for i, p := range points {
		key := fmt.Sprintf("B%d_R%g", p.B, p.R)
		xs[i] = key
		consumption[i] = p.NodeHours
		perf[i] = p.Perf
		values["nodehours_"+key] = p.NodeHours
		values["perf_"+key] = p.Perf
	}
	series := []plot.Series{
		{Label: "resource consumption (node*hour)", Y: consumption},
		{Label: perfLabel, Y: perf},
	}
	return Artifact{
		ID:    id,
		Title: title,
		Text: plot.LineTable(title, "parameters", xs, series,
			"DawningCloud only; each row is one (B, R) configuration"),
		SVG:      plot.LineChartSVG(title, "parameters (B, R)", "value", xs, series),
		PaperRef: paperRef,
		Values:   values,
	}
}

// Figure9 sweeps B and R for the BLUE trace.
func (s *Suite) Figure9() (Artifact, error) {
	points, err := s.Sweep(BLUEProvider, SweepInitials, SweepRatiosHTC)
	if err != nil {
		return Artifact{}, err
	}
	return sweepArtifact("fig9",
		"Figure 9: resource consumption and completed jobs vs parameters, BLUE trace",
		"completed jobs",
		"paper: chooses B80_R1.5 to save consumption while preserving throughput",
		points), nil
}

// Figure10 sweeps B and R for the NASA trace.
func (s *Suite) Figure10() (Artifact, error) {
	points, err := s.Sweep(NASAProvider, SweepInitials, SweepRatiosHTC)
	if err != nil {
		return Artifact{}, err
	}
	return sweepArtifact("fig10",
		"Figure 10: resource consumption and completed jobs vs parameters, NASA trace",
		"completed jobs",
		"paper: chooses B40_R1.2",
		points), nil
}

// Figure11 sweeps B and R for the Montage workload.
func (s *Suite) Figure11() (Artifact, error) {
	points, err := s.Sweep(MontageProvider, SweepInitials, SweepRatiosMTC)
	if err != nil {
		return Artifact{}, err
	}
	return sweepArtifact("fig11",
		"Figure 11: resource consumption and tasks/second vs parameters, Montage",
		"tasks/second",
		"paper: chooses B10_R8",
		points), nil
}

// Artifacts runs every experiment in paper order.
func (s *Suite) Artifacts() ([]Artifact, error) {
	out := []Artifact{Table1()}
	steps := []func() (Artifact, error){
		s.Figure9, s.Figure10, s.Figure11,
		s.Table2, s.Table3, s.Table4,
		s.Figure12, s.Figure13, s.Figure14,
		TCO,
	}
	for _, step := range steps {
		a, err := step()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}
