package experiments

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/job"
	"repro/internal/par"
	"repro/internal/plot"
	"repro/internal/systems"
)

// Paper sweep grids (Section 4.5.1): B from 10 to 80; R from 1.0 to 2.0
// for HTC and from 2 to 16 for MTC.
var (
	SweepInitials  = []int{10, 20, 40, 80}
	SweepRatiosHTC = []float64{1.0, 1.2, 1.5, 2.0}
	SweepRatiosMTC = []float64{2, 4, 8, 16}
)

// SweepPoint is one parameter combination's outcome. Both performance
// quantities are recorded separately so a sweep surface never splices
// incomparable units: Completed counts finished jobs (or workflow tasks)
// and TasksPerSecond is the MTC throughput (zero for HTC workloads).
type SweepPoint struct {
	B         int
	R         float64
	NodeHours float64
	// Completed is the number of jobs (HTC) or workflow tasks (MTC)
	// finished within the accounting window.
	Completed int
	// TasksPerSecond is the MTC throughput; it stays 0 for HTC
	// workloads rather than standing in for a job count.
	TasksPerSecond float64
	// Perf is the metric the corresponding paper figure plots, chosen
	// by workload class: Completed for HTC (Figures 9-10),
	// TasksPerSecond for MTC (Figure 11).
	Perf float64
}

// Sweep runs DawningCloud over the B x R grid for one provider's workload
// in isolation, the paper's parameter-tuning methodology. See
// SweepContext; Sweep uses the background context.
func (s *Suite) Sweep(provider string, bs []int, rs []float64) ([]SweepPoint, error) {
	return s.SweepContext(context.Background(), provider, bs, rs) //dclint:allow ctxfirst -- documented non-ctx convenience wrapper over SweepContext
}

// SweepContext runs the B x R grid with cancellation support. Grid points
// are independent simulations, so they fan out over the suite's worker
// pool; the returned slice is always in b-major, r-minor grid order
// regardless of scheduling. Each point deep-clones the base workload
// before retuning it, so no grid point ever aliases the cached workloads
// or another point.
func (s *Suite) SweepContext(ctx context.Context, provider string, bs []int, rs []float64) ([]SweepPoint, error) {
	base, err := s.workloadByName(provider)
	if err != nil {
		return nil, err
	}
	opts := s.Options()
	points := make([]SweepPoint, len(bs)*len(rs))
	var done atomic.Int64
	err = par.ForEach(s.workers(), len(points), func(i int) error {
		b, r := bs[i/len(rs)], rs[i%len(rs)]
		var res systems.Result
		err := s.simulate(func() (err error) {
			wl := base.Clone()
			wl.Params.InitialNodes = b
			wl.Params.ThresholdRatio = r
			res, err = core.Run(ctx, []systems.Workload{wl}, core.Config{Options: opts})
			return err
		})
		if err != nil {
			return fmt.Errorf("experiments: sweep %s B%d R%g: %w", provider, b, r, err)
		}
		s.Events.Emit(events.CellCompleted{
			Index: int(done.Add(1)),
			Total: len(points),
			Key:   fmt.Sprintf("sweep|%s|B%d|R%g", provider, b, r),
		})
		p, ok := res.Provider(provider)
		if !ok {
			return fmt.Errorf("experiments: sweep %s B%d R%g: provider missing", provider, b, r)
		}
		pt := SweepPoint{
			B:              b,
			R:              r,
			NodeHours:      p.NodeHours,
			Completed:      p.Completed,
			TasksPerSecond: p.TasksPerSecond,
		}
		if base.Class == job.MTC {
			pt.Perf = p.TasksPerSecond
		} else {
			pt.Perf = float64(p.Completed)
		}
		points[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// sweepArtifact renders a sweep as the paper's paired consumption/
// performance view.
func sweepArtifact(id, title, perfLabel, paperRef string, points []SweepPoint) Artifact {
	xs := make([]string, len(points))
	consumption := make([]float64, len(points))
	perf := make([]float64, len(points))
	values := make(map[string]float64, 4*len(points))
	for i, p := range points {
		key := fmt.Sprintf("B%d_R%g", p.B, p.R)
		xs[i] = key
		consumption[i] = p.NodeHours
		perf[i] = p.Perf
		values["nodehours_"+key] = p.NodeHours
		values["perf_"+key] = p.Perf
		values["completed_"+key] = float64(p.Completed)
		values["tps_"+key] = p.TasksPerSecond
	}
	series := []plot.Series{
		{Label: "resource consumption (node*hour)", Y: consumption},
		{Label: perfLabel, Y: perf},
	}
	return Artifact{
		ID:    id,
		Title: title,
		Text: plot.LineTable(title, "parameters", xs, series,
			"DawningCloud only; each row is one (B, R) configuration; "+
				"performance column plots "+perfLabel),
		SVG:      plot.LineChartSVG(title, "parameters (B, R)", "value", xs, series),
		PaperRef: paperRef,
		Values:   values,
	}
}

// Figure9 sweeps B and R for the BLUE trace.
func (s *Suite) Figure9(ctx context.Context) (Artifact, error) {
	points, err := s.SweepContext(ctx, BLUEProvider, SweepInitials, SweepRatiosHTC)
	if err != nil {
		return Artifact{}, err
	}
	return s.emitTable(sweepArtifact("fig9",
		"Figure 9: resource consumption and completed jobs vs parameters, BLUE trace",
		"completed jobs",
		"paper: chooses B80_R1.5 to save consumption while preserving throughput",
		points)), nil
}

// Figure10 sweeps B and R for the NASA trace.
func (s *Suite) Figure10(ctx context.Context) (Artifact, error) {
	points, err := s.SweepContext(ctx, NASAProvider, SweepInitials, SweepRatiosHTC)
	if err != nil {
		return Artifact{}, err
	}
	return s.emitTable(sweepArtifact("fig10",
		"Figure 10: resource consumption and completed jobs vs parameters, NASA trace",
		"completed jobs",
		"paper: chooses B40_R1.2",
		points)), nil
}

// Figure11 sweeps B and R for the Montage workload.
func (s *Suite) Figure11(ctx context.Context) (Artifact, error) {
	points, err := s.SweepContext(ctx, MontageProvider, SweepInitials, SweepRatiosMTC)
	if err != nil {
		return Artifact{}, err
	}
	return s.emitTable(sweepArtifact("fig11",
		"Figure 11: resource consumption and tasks/second vs parameters, Montage",
		"tasks/second",
		"paper: chooses B10_R8",
		points)), nil
}

// Artifacts runs every experiment and returns them in paper order. See
// ArtifactsContext; Artifacts uses the background context.
func (s *Suite) Artifacts() ([]Artifact, error) {
	return s.ArtifactsContext(context.Background()) //dclint:allow ctxfirst -- documented non-ctx convenience wrapper over ArtifactsContext
}

// ArtifactsContext runs every experiment with cancellation support. The
// steps fan out over the worker pool: the three sweeps proceed while the
// table and figure steps share the four deduplicated system runs, and the
// suite-wide semaphore keeps total simulation concurrency bounded.
// The paper-order artifact list has one home: artifacts.go's paperIDs,
// which "all" expands to.
func (s *Suite) ArtifactsContext(ctx context.Context) ([]Artifact, error) {
	return s.ArtifactsByID(ctx, "all")
}
