package experiments

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/job"
	"repro/internal/systems"
)

// TestRunAllConcurrentCallers hammers one suite from many goroutines
// under -race: every caller must observe identical results, and the
// singleflight dedup must collapse the work to exactly one simulation
// per system.
func TestRunAllConcurrentCallers(t *testing.T) {
	s := NewQuickSuite(42)
	const callers = 8
	results := make([]map[string]systems.Result, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], errs[i] = s.RunAll()
		}()
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Errorf("caller %d saw different results", i)
		}
	}
	if got := s.Simulations(); got != int64(len(SystemNames)) {
		t.Errorf("simulations = %d, want %d (one per system, dedup collapsing the rest)",
			got, len(SystemNames))
	}
}

// TestSweepConcurrentCallers runs two different sweeps from concurrent
// goroutines over one suite, the -race check for the grid fan-out.
func TestSweepConcurrentCallers(t *testing.T) {
	s := NewQuickSuite(42)
	var wg sync.WaitGroup
	var mtc, htc []SweepPoint
	var mtcErr, htcErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		mtc, mtcErr = s.Sweep(MontageProvider, []int{10, 80}, []float64{8})
	}()
	go func() {
		defer wg.Done()
		htc, htcErr = s.Sweep(NASAProvider, []int{20, 40}, []float64{1.2})
	}()
	wg.Wait()
	if mtcErr != nil || htcErr != nil {
		t.Fatalf("sweeps failed: %v / %v", mtcErr, htcErr)
	}
	if len(mtc) != 2 || len(htc) != 2 {
		t.Fatalf("points = %d/%d, want 2/2", len(mtc), len(htc))
	}
	for _, p := range htc {
		if p.TasksPerSecond != 0 {
			t.Errorf("HTC point B%d reports tasks/second %.2f, want 0", p.B, p.TasksPerSecond)
		}
		if p.Perf != float64(p.Completed) {
			t.Errorf("HTC point B%d plots %.2f, want completed jobs %d", p.B, p.Perf, p.Completed)
		}
	}
	for _, p := range mtc {
		if p.Perf != p.TasksPerSecond {
			t.Errorf("MTC point B%d plots %.2f, want tasks/second %.2f", p.B, p.Perf, p.TasksPerSecond)
		}
	}
}

// TestParallelMatchesSerial is the determinism contract: a parallel suite
// must produce bit-identical Results, SweepPoints and artifact Values to
// the workers=1 reference on the same seed.
func TestParallelMatchesSerial(t *testing.T) {
	serial := NewQuickSuite(7)
	serial.Workers = 1
	parallel := NewQuickSuite(7)
	parallel.Workers = runtime.NumCPU()

	sr, err := serial.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := parallel.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr, pr) {
		t.Errorf("RunAll diverged:\nserial:   %+v\nparallel: %+v", sr, pr)
	}

	sp, err := serial.Sweep(MontageProvider, SweepInitials, SweepRatiosMTC)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := parallel.Sweep(MontageProvider, SweepInitials, SweepRatiosMTC)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, pp) {
		t.Errorf("Sweep diverged:\nserial:   %+v\nparallel: %+v", sp, pp)
	}

	sa, err := serial.Artifacts()
	if err != nil {
		t.Fatal(err)
	}
	pa, err := parallel.Artifacts()
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != len(pa) {
		t.Fatalf("artifact counts diverged: %d vs %d", len(sa), len(pa))
	}
	for i := range sa {
		if sa[i].ID != pa[i].ID {
			t.Errorf("artifact %d order diverged: %s vs %s", i, sa[i].ID, pa[i].ID)
		}
		if !reflect.DeepEqual(sa[i].Values, pa[i].Values) {
			t.Errorf("artifact %s Values diverged:\nserial:   %v\nparallel: %v",
				sa[i].ID, sa[i].Values, pa[i].Values)
		}
		if sa[i].Text != pa[i].Text {
			t.Errorf("artifact %s rendered text diverged", sa[i].ID)
		}
	}
}

// TestSweepDoesNotMutateBase asserts the deep-copy fix: retuning grid
// points must never write through to the suite's cached workloads.
func TestSweepDoesNotMutateBase(t *testing.T) {
	s := NewQuickSuite(42)
	before, err := s.Workloads()
	if err != nil {
		t.Fatal(err)
	}
	var montage systems.Workload
	for _, wl := range before {
		if wl.Name == MontageProvider {
			montage = wl.Clone()
		}
	}
	if _, err := s.Sweep(MontageProvider, []int{77}, []float64{3}); err != nil {
		t.Fatal(err)
	}
	after, err := s.workloadByName(MontageProvider)
	if err != nil {
		t.Fatal(err)
	}
	if after.Params != montage.Params {
		t.Errorf("sweep mutated cached params: %+v -> %+v", montage.Params, after.Params)
	}
	if !reflect.DeepEqual(after.Jobs, montage.Jobs) {
		t.Error("sweep mutated cached jobs")
	}
}

// TestWorkloadCloneIsolation asserts the clone severs every backing
// array a struct copy would share.
func TestWorkloadCloneIsolation(t *testing.T) {
	orig := systems.Workload{
		Name:  "w",
		Class: job.MTC,
		Jobs: []job.Job{
			{ID: 1, Nodes: 1, Runtime: 5, Workflow: "wf"},
			{ID: 2, Nodes: 2, Runtime: 5, Deps: []int{1}, Workflow: "wf"},
		},
		FixedNodes: 4,
	}
	c := orig.Clone()
	c.Jobs[0].Nodes = 99
	c.Jobs[1].Deps[0] = 42
	c.Params.InitialNodes = 7
	if orig.Jobs[0].Nodes != 1 {
		t.Error("clone shares the job slice")
	}
	if orig.Jobs[1].Deps[0] != 1 {
		t.Error("clone shares a Deps slice")
	}
	if orig.Params.InitialNodes != 0 {
		t.Error("clone shares params")
	}
}

// TestArtifactsConcurrentWithExtensions drives the full artifact set and
// the extension studies from concurrent goroutines, the widest -race
// surface the suite exposes.
func TestArtifactsConcurrentWithExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact set")
	}
	s := NewQuickSuite(42)
	var wg sync.WaitGroup
	errCh := make(chan error, 3)
	wg.Add(3)
	go func() {
		defer wg.Done()
		_, err := s.Artifacts()
		errCh <- err
	}()
	go func() {
		defer wg.Done()
		_, err := s.AblationBackfill(context.Background(), NASAProvider)
		errCh <- err
	}()
	go func() {
		defer wg.Done()
		_, err := s.ScaleStudy(context.Background(), 2)
		errCh <- err
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}
}
