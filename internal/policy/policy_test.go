package policy

import (
	"testing"
	"testing/quick"
)

func TestRequestKindString(t *testing.T) {
	tests := []struct {
		k    RequestKind
		want string
	}{
		{NoRequest, "none"},
		{DR1, "DR1"},
		{DR2, "DR2"},
		{RequestKind(9), "RequestKind(9)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	good := HTCDefaults(40, 1.2)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{InitialNodes: 0, ThresholdRatio: 1, ScanInterval: 60, IdleCheckInterval: 3600},
		{InitialNodes: 1, ThresholdRatio: 0, ScanInterval: 60, IdleCheckInterval: 3600},
		{InitialNodes: 1, ThresholdRatio: 1, ScanInterval: 0, IdleCheckInterval: 3600},
		{InitialNodes: 1, ThresholdRatio: 1, ScanInterval: 60, IdleCheckInterval: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestDefaultsMatchPaperSchedules(t *testing.T) {
	htc := HTCDefaults(80, 1.5)
	if htc.ScanInterval != 60 {
		t.Errorf("HTC scan interval = %d, want 60 (per minute)", htc.ScanInterval)
	}
	if htc.IdleCheckInterval != 3600 {
		t.Errorf("HTC idle check = %d, want 3600 (hourly)", htc.IdleCheckInterval)
	}
	mtc := MTCDefaults(10, 8)
	if mtc.ScanInterval != 3 {
		t.Errorf("MTC scan interval = %d, want 3 (per 3 seconds)", mtc.ScanInterval)
	}
	if htc.InitialNodes != 80 || htc.ThresholdRatio != 1.5 {
		t.Error("HTCDefaults did not carry B/R")
	}
}

func TestRatio(t *testing.T) {
	tests := []struct {
		s    QueueState
		want float64
	}{
		{QueueState{AccumulatedDemand: 30, OwnedNodes: 20}, 1.5},
		{QueueState{AccumulatedDemand: 0, OwnedNodes: 20}, 0},
		{QueueState{AccumulatedDemand: 5, OwnedNodes: 0}, 1e18},
		{QueueState{AccumulatedDemand: 0, OwnedNodes: 0}, 0},
	}
	for _, tt := range tests {
		if got := tt.s.Ratio(); got != tt.want {
			t.Errorf("Ratio(%+v) = %g, want %g", tt.s, got, tt.want)
		}
	}
}

func TestDecideDR1(t *testing.T) {
	// Paper: ratio exceeds threshold -> DR1 = accumulated - owned.
	s := QueueState{AccumulatedDemand: 100, LargestDemand: 30, OwnedNodes: 40}
	kind, size := Decide(s, HTCDefaults(40, 1.5))
	if kind != DR1 {
		t.Fatalf("kind = %v, want DR1", kind)
	}
	if size != 60 {
		t.Errorf("size = %d, want 60 (100-40)", size)
	}
}

func TestDecideDR2(t *testing.T) {
	// Ratio below threshold but the biggest job does not fit.
	s := QueueState{AccumulatedDemand: 50, LargestDemand: 48, OwnedNodes: 40}
	kind, size := Decide(s, HTCDefaults(40, 1.5))
	if kind != DR2 {
		t.Fatalf("kind = %v, want DR2 (ratio 1.25 <= 1.5, largest 48 > 40)", kind)
	}
	if size != 8 {
		t.Errorf("size = %d, want 8 (48-40)", size)
	}
}

func TestDecideNoRequest(t *testing.T) {
	s := QueueState{AccumulatedDemand: 30, LargestDemand: 20, OwnedNodes: 40}
	kind, size := Decide(s, HTCDefaults(40, 1.5))
	if kind != NoRequest || size != 0 {
		t.Errorf("Decide = %v,%d, want none,0", kind, size)
	}
}

func TestDecideRatioExactlyAtThresholdDoesNotFire(t *testing.T) {
	// The paper says "exceeds the threshold ratio": equality stands pat.
	s := QueueState{AccumulatedDemand: 60, LargestDemand: 10, OwnedNodes: 40}
	kind, _ := Decide(s, HTCDefaults(40, 1.5))
	if kind != NoRequest {
		t.Errorf("kind = %v at ratio == R, want none", kind)
	}
}

func TestDecideSubUnityThresholdCannotRequestNegative(t *testing.T) {
	// R < 1 can make the ratio fire while demand <= owned; no request.
	s := QueueState{AccumulatedDemand: 30, LargestDemand: 10, OwnedNodes: 40}
	kind, size := Decide(s, Params{InitialNodes: 1, ThresholdRatio: 0.5, ScanInterval: 60, IdleCheckInterval: 3600})
	if kind != NoRequest || size != 0 {
		t.Errorf("Decide = %v,%d, want none,0", kind, size)
	}
}

func TestDecideZeroOwnedRequestsFullDemand(t *testing.T) {
	s := QueueState{AccumulatedDemand: 25, LargestDemand: 25, OwnedNodes: 0}
	kind, size := Decide(s, HTCDefaults(1, 2))
	if kind != DR1 || size != 25 {
		t.Errorf("Decide = %v,%d, want DR1,25", kind, size)
	}
}

func TestReleaseDecision(t *testing.T) {
	tests := []struct {
		idle, grant int
		want        bool
	}{
		{10, 5, true},
		{5, 5, true},
		{4, 5, false},
		{10, 0, false},
		{0, 0, false},
	}
	for _, tt := range tests {
		if got := ReleaseDecision(tt.idle, tt.grant); got != tt.want {
			t.Errorf("ReleaseDecision(%d,%d) = %v, want %v", tt.idle, tt.grant, got, tt.want)
		}
	}
}

func TestProvisionPolicyString(t *testing.T) {
	if GrantOrReject.String() != "grant-or-reject" {
		t.Error("GrantOrReject name wrong")
	}
	if BestEffort.String() != "best-effort" {
		t.Error("BestEffort name wrong")
	}
	if ProvisionPolicy(9).String() != "ProvisionPolicy(9)" {
		t.Error("unknown policy name wrong")
	}
}

func TestGrantOrReject(t *testing.T) {
	tests := []struct {
		n, free, want int
	}{
		{10, 20, 10},
		{10, 10, 10},
		{10, 9, 0}, // rejected outright
		{0, 10, 0},
		{10, 0, 0},
	}
	for _, tt := range tests {
		if got := GrantOrReject.Grant(tt.n, tt.free); got != tt.want {
			t.Errorf("GrantOrReject.Grant(%d,%d) = %d, want %d", tt.n, tt.free, got, tt.want)
		}
	}
}

func TestBestEffort(t *testing.T) {
	if got := BestEffort.Grant(10, 6); got != 6 {
		t.Errorf("BestEffort.Grant(10,6) = %d, want 6", got)
	}
	if got := BestEffort.Grant(4, 6); got != 4 {
		t.Errorf("BestEffort.Grant(4,6) = %d, want 4", got)
	}
}

// Property: Decide never requests a non-positive size, and granting the
// request always covers either the whole queue (DR1) or the largest job
// (DR2).
func TestPropertyDecideCoversNeed(t *testing.T) {
	f := func(acc, largest, owned uint8, rTenths uint8) bool {
		s := QueueState{
			AccumulatedDemand: int(acc),
			LargestDemand:     int(largest) % (int(acc) + 1), // largest <= accumulated
			OwnedNodes:        int(owned),
		}
		p := Params{
			InitialNodes:      1,
			ThresholdRatio:    float64(rTenths%40)/10 + 0.1,
			ScanInterval:      60,
			IdleCheckInterval: 3600,
		}
		kind, size := Decide(s, p)
		switch kind {
		case NoRequest:
			return size == 0
		case DR1:
			return size > 0 && s.OwnedNodes+size == s.AccumulatedDemand
		case DR2:
			return size > 0 && s.OwnedNodes+size == s.LargestDemand
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: grants never exceed free capacity under either provision
// policy, and GrantOrReject is all-or-nothing.
func TestPropertyGrantBounds(t *testing.T) {
	f := func(n, free uint8) bool {
		g1 := GrantOrReject.Grant(int(n), int(free))
		g2 := BestEffort.Grant(int(n), int(free))
		if g1 != 0 && g1 != int(n) {
			return false
		}
		return g1 <= int(free) && g2 <= int(free) && g2 <= int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
