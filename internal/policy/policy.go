// Package policy implements the DSP model's resource management policies
// (paper Section 3.2.2) as pure decision functions, so the negotiation
// logic is unit-testable independent of the simulation loop.
//
// An HTC server scans its queue every minute; an MTC server every three
// seconds (MTC tasks often complete in seconds). Two request kinds exist:
//
//   - DR1: the ratio of obtaining resources (accumulated queued demand over
//     owned nodes) exceeded the threshold ratio R; request enough to cover
//     the whole queue.
//   - DR2: the largest queued job does not fit in the owned nodes (and the
//     ratio condition did not fire); request enough to fit it.
//
// After a grant, an hourly timer releases the granted block back once that
// many nodes sit idle. Initial resources (B) are never released until the
// runtime environment is destroyed.
package policy

import "fmt"

// RequestKind labels why a dynamic resource request was made.
type RequestKind int

const (
	// NoRequest means the policy decided to stand pat.
	NoRequest RequestKind = iota
	// DR1 covers the accumulated demand of the whole queue.
	DR1
	// DR2 covers the largest single queued job.
	DR2
)

// String implements fmt.Stringer.
func (k RequestKind) String() string {
	switch k {
	case NoRequest:
		return "none"
	case DR1:
		return "DR1"
	case DR2:
		return "DR2"
	default:
		return fmt.Sprintf("RequestKind(%d)", int(k))
	}
}

// Params are the two tuning knobs the paper sweeps in Figures 9-11.
type Params struct {
	// InitialNodes (B) is the never-reclaimed startup lease.
	InitialNodes int
	// ThresholdRatio (R) triggers DR1 requests when the accumulated
	// queued demand exceeds R times the owned nodes.
	ThresholdRatio float64
	// ScanInterval is the queue scan period in seconds: 60 for HTC,
	// 3 for MTC.
	ScanInterval int64
	// IdleCheckInterval is the release timer period in seconds (one
	// hour in the paper).
	IdleCheckInterval int64
}

// Validate reports the first bad parameter, or nil.
func (p Params) Validate() error {
	if p.InitialNodes < 1 {
		return fmt.Errorf("policy: initial nodes %d < 1", p.InitialNodes)
	}
	if p.ThresholdRatio <= 0 {
		return fmt.Errorf("policy: threshold ratio %g <= 0", p.ThresholdRatio)
	}
	if p.ScanInterval <= 0 {
		return fmt.Errorf("policy: scan interval %d <= 0", p.ScanInterval)
	}
	if p.IdleCheckInterval <= 0 {
		return fmt.Errorf("policy: idle check interval %d <= 0", p.IdleCheckInterval)
	}
	return nil
}

// HTCDefaults returns the paper's HTC policy schedule with the given B and
// R: scan every minute, check idle resources hourly.
func HTCDefaults(initialNodes int, thresholdRatio float64) Params {
	return Params{
		InitialNodes:      initialNodes,
		ThresholdRatio:    thresholdRatio,
		ScanInterval:      60,
		IdleCheckInterval: 3600,
	}
}

// MTCDefaults returns the paper's MTC policy schedule with the given B and
// R: scan every three seconds, check idle resources hourly.
func MTCDefaults(initialNodes int, thresholdRatio float64) Params {
	return Params{
		InitialNodes:      initialNodes,
		ThresholdRatio:    thresholdRatio,
		ScanInterval:      3,
		IdleCheckInterval: 3600,
	}
}

// QueueState is the scan-time snapshot the decision consumes.
type QueueState struct {
	// AccumulatedDemand sums node demands of all queued jobs. For MTC,
	// every task of a submitted workflow still in queue is counted.
	AccumulatedDemand int
	// LargestDemand is the biggest single queued job's node demand.
	LargestDemand int
	// OwnedNodes is the TRE's current lease (initial + dynamic).
	OwnedNodes int
}

// Ratio computes the paper's "ratio of obtaining resources". It is +Inf
// only in the degenerate case of demand against zero owned nodes, which
// the policy treats as exceeding any threshold.
func (s QueueState) Ratio() float64 {
	if s.OwnedNodes <= 0 {
		if s.AccumulatedDemand > 0 {
			return 1e18
		}
		return 0
	}
	return float64(s.AccumulatedDemand) / float64(s.OwnedNodes)
}

// Decide implements Section 3.2.2's request rules: DR1 when the ratio of
// obtaining resources exceeds the threshold; otherwise DR2 when the largest
// queued job cannot fit the owned nodes. The returned size is how many
// nodes to request (always positive when kind != NoRequest).
func Decide(s QueueState, p Params) (kind RequestKind, size int) {
	if s.Ratio() > p.ThresholdRatio {
		size = s.AccumulatedDemand - s.OwnedNodes
		if size > 0 {
			return DR1, size
		}
		// Ratio can exceed R while demand <= owned only when R < 1;
		// there is nothing to request then.
		return NoRequest, 0
	}
	if s.LargestDemand > s.OwnedNodes {
		return DR2, s.LargestDemand - s.OwnedNodes
	}
	return NoRequest, 0
}

// ReleaseDecision implements the hourly idle check: a dynamic block of
// grantSize nodes is released only when at least grantSize nodes sit idle.
func ReleaseDecision(idleNodes, grantSize int) bool {
	return grantSize > 0 && idleNodes >= grantSize
}

// ProvisionPolicy is the resource provider's side of the negotiation
// (Section 3.2.2.3): grant fully when capacity allows, otherwise reject.
type ProvisionPolicy int

const (
	// GrantOrReject is the paper's policy: assign the full request or
	// refuse it outright.
	GrantOrReject ProvisionPolicy = iota
	// BestEffort grants as many nodes as remain, a non-paper ablation.
	BestEffort
)

// String implements fmt.Stringer.
func (p ProvisionPolicy) String() string {
	switch p {
	case GrantOrReject:
		return "grant-or-reject"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("ProvisionPolicy(%d)", int(p))
	}
}

// Grant resolves a request for n nodes against free capacity under the
// policy, returning how many nodes to assign (0 = rejected).
func (p ProvisionPolicy) Grant(n, free int) int {
	if n <= 0 || free <= 0 {
		return 0
	}
	switch p {
	case BestEffort:
		if n > free {
			return free
		}
		return n
	default: // GrantOrReject
		if n > free {
			return 0
		}
		return n
	}
}
