package runstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Data directory layout:
//
//	<dir>/snapshot.json  — the reduced state at the last compaction,
//	                       written to a temp file and renamed into
//	                       place, so it is always whole or absent.
//	<dir>/wal.log        — checksummed records appended since the
//	                       snapshot (see wal.go for the framing).
//
// Open loads the snapshot (if any) and replays the WAL over it; a torn
// WAL tail is truncated, not fatal. A crash between writing a snapshot
// and truncating the WAL replays already-compacted records over the
// snapshot, which is safe because replay is idempotent (all record
// fields are absolute).

const (
	snapshotFile = "snapshot.json"
	walFile      = "wal.log"

	// DefaultSnapshotEvery is the record count between compactions.
	DefaultSnapshotEvery = 4096
)

// Options configures a durable store.
type Options struct {
	// Dir is the data directory (created if missing). Required.
	Dir string
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// appended records (default DefaultSnapshotEvery; negative disables
	// compaction).
	SnapshotEvery int
	// NoSync skips the per-append fsync. Heartbeat records are never
	// fsynced regardless (losing a heartbeat costs at most one spurious
	// requeue of an idempotent run); every other record is flushed to
	// disk before Append returns unless NoSync is set.
	NoSync bool
}

// snapshot is the on-disk snapshot document.
type snapshot struct {
	Version int        `json:"version"`
	Runs    []RunState `json:"runs"`
}

// Durable is the WAL+snapshot store behind `dcserve -data`.
type Durable struct {
	opts Options

	mu        sync.Mutex
	wal       *os.File
	states    map[string]*RunState
	sinceSnap int
	appends   int64
	snaps     int64
	truncated int64
	closed    bool
}

// Open opens (or initializes) the data directory, recovers the reduced
// run state from snapshot + WAL, and truncates any torn WAL tail left
// by a crash.
func Open(opts Options) (*Durable, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("runstore: open: empty data dir")
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: open: %w", err)
	}
	d := &Durable{opts: opts, states: make(map[string]*RunState)}

	snapPath := filepath.Join(opts.Dir, snapshotFile)
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("runstore: corrupt snapshot %s: %w", snapPath, err)
		}
		for i := range snap.Runs {
			st := snap.Runs[i]
			d.states[st.ID] = &st
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("runstore: read snapshot: %w", err)
	}

	walPath := filepath.Join(opts.Dir, walFile)
	recs, truncated, err := replayWALFile(walPath)
	if err != nil {
		return nil, err
	}
	d.truncated = truncated
	for i := range recs {
		apply(d.states, &recs[i])
	}
	d.sinceSnap = len(recs)
	d.appends = int64(len(recs)) // replayed records are still in the WAL

	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: open wal for append: %w", err)
	}
	d.wal = wal
	return d, nil
}

// Durable reports true.
func (d *Durable) Durable() bool { return true }

// Append writes one checksummed record to the WAL (fsynced unless
// NoSync, except heartbeats), folds it into the reduced state, and
// compacts into a snapshot when due.
func (d *Durable) Append(rec *Record) error {
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("runstore: append to closed store")
	}
	if _, err := d.wal.Write(line); err != nil {
		return fmt.Errorf("runstore: append wal: %w", err)
	}
	if !d.opts.NoSync && rec.Op != OpHeartbeat {
		if err := d.wal.Sync(); err != nil {
			return fmt.Errorf("runstore: sync wal: %w", err)
		}
	}
	apply(d.states, rec)
	d.appends++
	d.sinceSnap++
	if d.opts.SnapshotEvery > 0 && d.sinceSnap >= d.opts.SnapshotEvery {
		if err := d.snapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot forces a compaction now (normally driven by SnapshotEvery).
func (d *Durable) Snapshot() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return fmt.Errorf("runstore: snapshot closed store")
	}
	return d.snapshotLocked()
}

// snapshotLocked writes the reduced state atomically (temp file +
// rename + dir sync) and resets the WAL. Caller holds d.mu.
func (d *Durable) snapshotLocked() error {
	data, err := json.Marshal(snapshot{Version: 1, Runs: sortedStates(d.states)})
	if err != nil {
		return fmt.Errorf("runstore: encode snapshot: %w", err)
	}
	tmp := filepath.Join(d.opts.Dir, snapshotFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("runstore: snapshot temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("runstore: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("runstore: sync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("runstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.opts.Dir, snapshotFile)); err != nil {
		return fmt.Errorf("runstore: publish snapshot: %w", err)
	}
	if dir, err := os.Open(d.opts.Dir); err == nil {
		dir.Sync() // make the rename durable before truncating the WAL
		dir.Close()
	}
	// The snapshot now owns every record; a crash before this truncate
	// replays them over it, which reduce idempotence absorbs.
	if err := d.wal.Truncate(0); err != nil {
		return fmt.Errorf("runstore: reset wal: %w", err)
	}
	if _, err := d.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("runstore: rewind wal: %w", err)
	}
	d.sinceSnap = 0
	d.snaps++
	return nil
}

// Runs returns the reduced run states in submission order.
func (d *Durable) Runs() []RunState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return sortedStates(d.states)
}

// Stats snapshots the durability counters.
func (d *Durable) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{WALRecords: d.appends, Snapshots: d.snaps, TruncatedBytes: d.truncated}
}

// Close syncs and closes the WAL. Further appends fail.
func (d *Durable) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if err := d.wal.Sync(); err != nil {
		d.wal.Close()
		return fmt.Errorf("runstore: close: sync wal: %w", err)
	}
	return d.wal.Close()
}
