// Package runstore is the pluggable persistence layer behind the run
// service (internal/service): every lifecycle transition of a stored
// run — submission, worker claim, heartbeat, requeue, terminal finish,
// eviction — is recorded as a Record through the Store interface, and a
// Store can play the reduced per-run state back so a restarted service
// resumes exactly where the crashed one stopped.
//
// Two implementations ship:
//
//   - Mem keeps the reduced state in memory only. It is the default
//     behind the service and preserves the pre-durability behavior
//     exactly: nothing survives the process.
//   - Durable appends every record to a write-ahead log with a per-record
//     checksum and periodically compacts the log into an atomic snapshot
//     file; Open replays snapshot + WAL (truncating a torn tail) so a
//     `dcserve -data <dir>` restart serves finished results from disk
//     and re-queues the runs the crash interrupted.
//
// The package deliberately lives outside dclint's walltime-protected
// set: it is a real-I/O, wall-clock layer (fsync, lease timestamps)
// with no simulation-path code.
package runstore

import (
	"encoding/json"
	"sort"
	"time"
)

// Op is the kind of lifecycle transition a Record describes.
type Op string

// The record vocabulary. Replay folds records left-to-right with
// last-writer-wins field semantics, so re-applying a prefix (snapshot
// plus an overlapping WAL after a crash between snapshot and truncate)
// is idempotent.
const (
	// OpSubmit creates the run: identity, content key, kind, label and
	// the serialized submission spec a restart rehydrates the task from.
	OpSubmit Op = "submit"
	// OpClaim moves the run to running under a worker's lease.
	OpClaim Op = "claim"
	// OpHeartbeat refreshes the claim's lease timestamp.
	OpHeartbeat Op = "heartbeat"
	// OpRequeue returns a stale-claimed run to the queue with its
	// incremented retry count.
	OpRequeue Op = "requeue"
	// OpFinish records the terminal state — status, error, and (for
	// successful durable runs) the encoded result — in one atomic
	// record, so a crash can never persist a "done" without its result.
	OpFinish Op = "finish"
	// OpDrop removes an evicted run from the store.
	OpDrop Op = "drop"
)

// Record is one durable lifecycle transition. Only the fields relevant
// to the Op are set; all values are absolute (never deltas) so replay
// is idempotent.
type Record struct {
	Op Op     `json:"op"`
	ID string `json:"id"`

	// At timestamps the transition (claim, heartbeat, requeue, finish).
	At time.Time `json:"at,omitzero"`

	// OpSubmit fields.
	Seq     int64           `json:"seq,omitempty"`
	Key     string          `json:"key,omitempty"`
	Kind    string          `json:"kind,omitempty"`
	Label   string          `json:"label,omitempty"`
	Spec    json.RawMessage `json:"spec,omitempty"`
	Created time.Time       `json:"created,omitzero"`

	// OpClaim fields.
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`

	// OpRequeue fields (Retries is the absolute count after the bump).
	Retries int `json:"retries,omitempty"`

	// OpFinish fields.
	Status string          `json:"status,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// RunState is the reduced state of one run after replaying its records:
// what a restarted service needs to rebuild the run.
type RunState struct {
	ID    string          `json:"id"`
	Seq   int64           `json:"seq"`
	Key   string          `json:"key,omitempty"`
	Kind  string          `json:"kind,omitempty"`
	Label string          `json:"label,omitempty"`
	Spec  json.RawMessage `json:"spec,omitempty"`

	Status  string `json:"status"`
	Error   string `json:"error,omitempty"`
	Retries int    `json:"retries,omitempty"`

	Worker   string    `json:"worker,omitempty"`
	Attempt  int       `json:"attempt,omitempty"`
	LastBeat time.Time `json:"last_beat,omitzero"`

	Created  time.Time `json:"created,omitzero"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`

	Result json.RawMessage `json:"result,omitempty"`
}

// Stats counts a store's durability activity.
type Stats struct {
	// WALRecords is the number of records appended since Open (Durable)
	// or construction (Mem), counting records replayed from the log at
	// Open — i.e. total log activity visible to this store instance.
	WALRecords int64 `json:"wal_records"`
	// Snapshots is the number of compactions performed since Open.
	Snapshots int64 `json:"snapshots"`
	// TruncatedBytes reports how much of a torn WAL tail recovery cut
	// off at Open (0 for a clean log).
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
}

// Store records run lifecycle transitions and plays the reduced state
// back at boot. Implementations must be safe for concurrent use.
type Store interface {
	// Durable reports whether records survive a process restart. The
	// service skips result encoding for non-durable stores, keeping the
	// in-memory path free of serialization cost.
	Durable() bool
	// Append records one transition.
	Append(rec *Record) error
	// Runs returns the reduced state of every recorded run in
	// submission (Seq) order. For Durable this is the recovered state
	// at Open plus everything appended since; a fresh store is empty.
	Runs() []RunState
	// Stats snapshots the durability counters.
	Stats() Stats
	// Close releases the store's resources (a no-op for Mem).
	Close() error
}

// apply folds one record into the state map: the single reduction
// shared by Mem, Durable and WAL replay, so every path recovers the
// same state from the same records.
func apply(states map[string]*RunState, rec *Record) {
	if rec.Op == OpSubmit {
		states[rec.ID] = &RunState{
			ID: rec.ID, Seq: rec.Seq, Key: rec.Key, Kind: rec.Kind,
			Label: rec.Label, Spec: rec.Spec, Status: "queued",
			Created: rec.Created, Retries: rec.Retries,
		}
		return
	}
	st, ok := states[rec.ID]
	if !ok {
		// A record for an unknown run: its submit was compacted away
		// after a drop, or the WAL lost its head. Ignore; replay must
		// stay total.
		return
	}
	switch rec.Op {
	case OpClaim:
		st.Status = "running"
		st.Worker, st.Attempt = rec.Worker, rec.Attempt
		st.LastBeat = rec.At
		if st.Started.IsZero() {
			st.Started = rec.At
		}
	case OpHeartbeat:
		st.LastBeat = rec.At
	case OpRequeue:
		st.Status = "queued"
		st.Worker = ""
		st.Retries = rec.Retries
	case OpFinish:
		st.Status = rec.Status
		st.Error = rec.Error
		st.Finished = rec.At
		st.Worker = ""
		if len(rec.Result) > 0 {
			st.Result = rec.Result
		}
	case OpDrop:
		delete(states, rec.ID)
	}
}

// sortedStates flattens a state map into Seq order.
func sortedStates(states map[string]*RunState) []RunState {
	out := make([]RunState, 0, len(states))
	for _, st := range states {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
