package runstore

import "sync"

// Mem is the in-memory store: it reduces records exactly like Durable
// but persists nothing, so a service over it behaves like the original
// memory-only run store. It is the default when no data directory is
// configured, and the reduction twin the durable tests compare against.
type Mem struct {
	mu      sync.Mutex
	states  map[string]*RunState
	appends int64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{states: make(map[string]*RunState)}
}

// Durable reports false: nothing survives the process.
func (m *Mem) Durable() bool { return false }

// Append folds the record into the in-memory state.
func (m *Mem) Append(rec *Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	apply(m.states, rec)
	m.appends++
	return nil
}

// Runs returns the reduced run states in submission order.
func (m *Mem) Runs() []RunState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return sortedStates(m.states)
}

// Stats counts appends; Mem never snapshots.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{WALRecords: m.appends}
}

// Close is a no-op.
func (m *Mem) Close() error { return nil }
