package runstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL record framing: one record per line, `crc32hex json\n`, where the
// checksum covers exactly the JSON bytes. A crash can tear only the
// tail of an append-only file, so recovery scans lines from the start
// and stops at the first one that is short, unparsable or fails its
// checksum; everything before that offset is intact, and the file is
// truncated back to it so the next append starts from a clean boundary.

// encodeRecord renders one framed WAL line.
func encodeRecord(rec *Record) ([]byte, error) {
	body, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("runstore: encode %s record for %s: %w", rec.Op, rec.ID, err)
	}
	line := make([]byte, 0, len(body)+10)
	line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(body))
	line = append(line, body...)
	line = append(line, '\n')
	return line, nil
}

// decodeLine verifies and parses one framed line (without the trailing
// newline). It reports ok=false for any form of corruption.
func decodeLine(line []byte) (rec Record, ok bool) {
	if len(line) < 10 || line[8] != ' ' {
		return Record{}, false
	}
	var sum uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &sum); err != nil {
		return Record{}, false
	}
	body := line[9:]
	if crc32.ChecksumIEEE(body) != sum {
		return Record{}, false
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// replayWAL reads every intact record from r, stopping at the first
// torn or corrupt line. It returns the records and the byte offset of
// the first bad line (== total valid length; the caller truncates the
// file there).
func replayWAL(r io.Reader) (recs []Record, valid int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// A partial line with no newline is a torn tail: stop, do
			// not count it as valid.
			return recs, valid, nil
		}
		if err != nil {
			return recs, valid, fmt.Errorf("runstore: read wal: %w", err)
		}
		rec, ok := decodeLine(bytes.TrimSuffix(line, []byte("\n")))
		if !ok {
			// Corrupt record: everything from here on is suspect (the
			// log is append-only, so a bad record means the crash
			// happened mid-write of this line; later bytes are noise).
			return recs, valid, nil
		}
		recs = append(recs, rec)
		valid += int64(len(line))
	}
}

// replayWALFile replays the WAL at path and truncates any torn tail in
// place, returning the intact records and how many bytes were cut.
func replayWALFile(path string) (recs []Record, truncated int64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("runstore: open wal: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("runstore: size wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("runstore: rewind wal: %w", err)
	}
	recs, valid, err := replayWAL(f)
	f.Close()
	if err != nil {
		return nil, 0, err
	}
	if valid < size {
		if err := os.Truncate(path, valid); err != nil {
			return nil, 0, fmt.Errorf("runstore: truncate torn wal tail: %w", err)
		}
		truncated = size - valid
	}
	return recs, truncated, nil
}
