package runstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// sampleRecords is a run's full happy-path lifecycle plus a second run
// that survives a requeue, a third that dead-letters, and a fourth that
// is dropped.
func sampleRecords() []*Record {
	t0 := time.Unix(1_700_000_000, 0).UTC()
	return []*Record{
		{Op: OpSubmit, ID: "a-000001", Seq: 1, Key: "ka", Kind: "scenario", Label: "scenario a",
			Spec: json.RawMessage(`{"scenario":{"name":"a"}}`), Created: t0},
		{Op: OpSubmit, ID: "b-000002", Seq: 2, Key: "kb", Kind: "system", Label: "system b",
			Spec: json.RawMessage(`{"system":"DCS"}`), Created: t0.Add(time.Second)},
		{Op: OpSubmit, ID: "c-000003", Seq: 3, Key: "kc", Kind: "system", Label: "system c",
			Spec: json.RawMessage(`{"system":"SSP"}`), Created: t0.Add(2 * time.Second)},
		{Op: OpSubmit, ID: "d-000004", Seq: 4, Kind: "system", Label: "system d", Created: t0},

		{Op: OpClaim, ID: "a-000001", Worker: "w1", Attempt: 1, At: t0.Add(3 * time.Second)},
		{Op: OpHeartbeat, ID: "a-000001", At: t0.Add(5 * time.Second)},
		{Op: OpFinish, ID: "a-000001", Status: "done", At: t0.Add(9 * time.Second),
			Result: json.RawMessage(`{"report":1}`)},

		{Op: OpClaim, ID: "b-000002", Worker: "w1", Attempt: 1, At: t0.Add(4 * time.Second)},
		{Op: OpRequeue, ID: "b-000002", Retries: 1, At: t0.Add(40 * time.Second)},
		{Op: OpClaim, ID: "b-000002", Worker: "w2", Attempt: 2, At: t0.Add(41 * time.Second)},

		{Op: OpClaim, ID: "c-000003", Worker: "w1", Attempt: 1, At: t0.Add(6 * time.Second)},
		{Op: OpRequeue, ID: "c-000003", Retries: 3, At: t0.Add(50 * time.Second)},
		{Op: OpFinish, ID: "c-000003", Status: "dead_letter",
			Error: "lease expired 3 times", At: t0.Add(51 * time.Second)},

		{Op: OpDrop, ID: "d-000004"},
	}
}

func appendAll(t *testing.T, s Store, recs []*Record) {
	t.Helper()
	for _, rec := range recs {
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %s %s: %v", rec.Op, rec.ID, err)
		}
	}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, d, sampleRecords())
	before := d.Runs()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Stats().TruncatedBytes; got != 0 {
		t.Fatalf("clean log reported %d truncated bytes", got)
	}
	after := re.Runs()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("state changed across restart:\nbefore %+v\nafter  %+v", before, after)
	}

	// Spot-check the reduction itself.
	if len(after) != 3 {
		t.Fatalf("got %d runs, want 3 (one dropped)", len(after))
	}
	if after[0].Status != "done" || string(after[0].Result) != `{"report":1}` {
		t.Fatalf("run a: %+v", after[0])
	}
	if after[1].Status != "running" || after[1].Retries != 1 || after[1].Worker != "w2" || after[1].Attempt != 2 {
		t.Fatalf("run b: %+v", after[1])
	}
	if after[2].Status != "dead_letter" || after[2].Error == "" {
		t.Fatalf("run c: %+v", after[2])
	}
}

// TestMemDurableEquivalence proves both stores reduce the same records
// to the same state — the property service recovery rests on.
func TestMemDurableEquivalence(t *testing.T) {
	m := NewMem()
	d, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	appendAll(t, m, sampleRecords())
	appendAll(t, d, sampleRecords())
	if !reflect.DeepEqual(m.Runs(), d.Runs()) {
		t.Fatalf("Mem and Durable reduced differently:\nmem     %+v\ndurable %+v", m.Runs(), d.Runs())
	}
	if m.Durable() || !d.Durable() {
		t.Fatal("Durable() flags wrong")
	}
}

// TestTornTailTruncated injects a torn trailing record — the shape a
// kill -9 mid-write leaves — and asserts recovery keeps every intact
// record, truncates the tail cleanly, and the log accepts appends
// again.
func TestTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(b []byte) []byte
		// survivors counts runs after recovery: tears that destroy the
		// final record (the OpDrop of run d) resurrect run d (4 runs);
		// pure garbage after an intact log leaves the drop applied (3).
		survivors int
	}{
		{"partial-line", func(b []byte) []byte { return b[:len(b)-7] }, 4}, // mid-record, newline lost
		{"flipped-byte", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-10] ^= 0x41 // corrupt the final record's body; its checksum must catch it
			return c
		}, 4},
		{"garbage-tail", func(b []byte) []byte { return append(b, []byte("\x00\xff half a record")...) }, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			recs := sampleRecords()
			appendAll(t, d, recs)
			d.Close()

			walPath := filepath.Join(dir, walFile)
			b, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, tc.tear(b), 0o644); err != nil {
				t.Fatal(err)
			}

			re, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("recovery must not be fatal: %v", err)
			}
			if re.Stats().TruncatedBytes == 0 {
				t.Fatal("no bytes reported truncated")
			}
			// Every record before the tear survives.
			runs := re.Runs()
			if len(runs) != tc.survivors {
				t.Fatalf("got %d runs after torn-tail recovery, want %d", len(runs), tc.survivors)
			}

			// The truncated log is a clean append boundary again.
			if err := re.Append(recs[len(recs)-1]); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			re.Close()
			re2, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer re2.Close()
			if got := re2.Stats().TruncatedBytes; got != 0 {
				t.Fatalf("second recovery truncated %d bytes from a repaired log", got)
			}
			if len(re2.Runs()) != 3 {
				t.Fatalf("got %d runs, want 3 after re-appended drop", len(re2.Runs()))
			}
		})
	}
}

// TestSnapshotCompaction drives the WAL past SnapshotEvery and asserts
// the state survives compaction and restart.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, d, sampleRecords())
	if snaps := d.Stats().Snapshots; snaps < 3 {
		t.Fatalf("14 records over SnapshotEvery=4 produced %d snapshots", snaps)
	}
	before := d.Runs()
	d.Close()

	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, walFile)); err == nil && fi.Size() > 1024 {
		t.Fatalf("wal not compacted: %d bytes", fi.Size())
	}

	re, err := Open(Options{Dir: dir, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !reflect.DeepEqual(before, re.Runs()) {
		t.Fatalf("state changed across snapshot+restart:\nbefore %+v\nafter  %+v", before, re.Runs())
	}
}

// TestSnapshotWALOverlapIdempotent simulates a crash between writing
// the snapshot and truncating the WAL: the same records replay over the
// snapshot that already contains them, and reduction idempotence must
// absorb it.
func TestSnapshotWALOverlapIdempotent(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	appendAll(t, d, recs)
	want := d.Runs()
	if err := d.Snapshot(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Re-create the pre-truncate WAL: every record again, after the
	// snapshot already absorbed them.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		line, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(line); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !reflect.DeepEqual(want, re.Runs()) {
		t.Fatalf("overlapping snapshot+wal replay diverged:\nwant %+v\ngot  %+v", want, re.Runs())
	}
}

// TestNoSyncStillRecovers: NoSync trades the fsync for speed but the
// file write still lands; a graceful Close must leave a fully
// replayable log.
func TestNoSyncStillRecovers(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, d, sampleRecords())
	want := d.Runs()
	d.Close()
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if !reflect.DeepEqual(want, re.Runs()) {
		t.Fatal("NoSync log did not round-trip")
	}
}

func TestOpenRejectsEmptyDirAndCorruptSnapshot(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("empty dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("corrupt snapshot accepted; must be surfaced, not silently dropped")
	}
}
