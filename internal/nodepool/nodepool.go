// Package nodepool models the physical substrate of the cloud platform: a
// pool of identical single-CPU nodes (the paper scales every trace to
// one-CPU nodes). The pool enforces capacity and tracks how many nodes each
// consumer holds; billing and timelines live in internal/metrics.
//
// (The package was formerly named internal/cluster; it was renamed so the
// federated cluster simulator, internal/clustersim, could take the
// "cluster" name without colliding with this low-level node pool.)
package nodepool

import "fmt"

// Pool is a fixed-capacity collection of nodes. The zero value is unusable;
// construct with NewPool.
type Pool struct {
	capacity int
	inUse    int
	held     map[string]int
}

// NewPool creates a pool of capacity nodes. Capacity must be positive;
// use a generously sized pool to model the paper's "large cloud platform".
func NewPool(capacity int) (*Pool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("nodepool: capacity %d must be positive", capacity)
	}
	return &Pool{capacity: capacity, held: make(map[string]int)}, nil
}

// Capacity reports the total node count.
func (p *Pool) Capacity() int { return p.capacity }

// InUse reports the number of allocated nodes.
func (p *Pool) InUse() int { return p.inUse }

// Free reports the number of unallocated nodes.
func (p *Pool) Free() int { return p.capacity - p.inUse }

// Held reports how many nodes owner currently holds.
func (p *Pool) Held(owner string) int { return p.held[owner] }

// ErrInsufficient is returned when an allocation exceeds free capacity.
type ErrInsufficient struct {
	Requested, Free int
}

func (e *ErrInsufficient) Error() string {
	return fmt.Sprintf("nodepool: requested %d nodes, only %d free", e.Requested, e.Free)
}

// Allocate gives owner n more nodes, or fails with *ErrInsufficient leaving
// the pool unchanged (the paper's provision policy grants fully or rejects).
func (p *Pool) Allocate(owner string, n int) error {
	if n <= 0 {
		return fmt.Errorf("nodepool: allocate %d nodes (must be positive)", n)
	}
	if n > p.Free() {
		return &ErrInsufficient{Requested: n, Free: p.Free()}
	}
	p.inUse += n
	p.held[owner] += n
	return nil
}

// Release returns n of owner's nodes to the pool.
func (p *Pool) Release(owner string, n int) error {
	if n <= 0 {
		return fmt.Errorf("nodepool: release %d nodes (must be positive)", n)
	}
	if p.held[owner] < n {
		return fmt.Errorf("nodepool: %s releasing %d nodes but holds %d", owner, n, p.held[owner])
	}
	p.held[owner] -= n
	if p.held[owner] == 0 {
		delete(p.held, owner)
	}
	p.inUse -= n
	return nil
}

// Owners returns the number of consumers currently holding nodes.
func (p *Pool) Owners() int { return len(p.held) }
