package nodepool

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewPoolRejectsNonPositive(t *testing.T) {
	for _, c := range []int{0, -5} {
		if _, err := NewPool(c); err == nil {
			t.Errorf("NewPool(%d) succeeded", c)
		}
	}
}

func TestAllocateRelease(t *testing.T) {
	p, err := NewPool(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Allocate("a", 30); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := p.Allocate("b", 50); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if p.InUse() != 80 || p.Free() != 20 {
		t.Errorf("InUse/Free = %d/%d, want 80/20", p.InUse(), p.Free())
	}
	if p.Held("a") != 30 || p.Held("b") != 50 {
		t.Errorf("Held = %d,%d, want 30,50", p.Held("a"), p.Held("b"))
	}
	if p.Owners() != 2 {
		t.Errorf("Owners = %d, want 2", p.Owners())
	}
	if err := p.Release("a", 30); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if p.Held("a") != 0 || p.Owners() != 1 {
		t.Errorf("after release Held(a) = %d, Owners = %d", p.Held("a"), p.Owners())
	}
}

func TestAllocateInsufficientLeavesPoolUnchanged(t *testing.T) {
	p, _ := NewPool(10)
	if err := p.Allocate("a", 8); err != nil {
		t.Fatal(err)
	}
	err := p.Allocate("b", 5)
	if err == nil {
		t.Fatal("over-allocation succeeded")
	}
	var ie *ErrInsufficient
	if !errors.As(err, &ie) {
		t.Fatalf("error type = %T, want *ErrInsufficient", err)
	}
	if ie.Requested != 5 || ie.Free != 2 {
		t.Errorf("ErrInsufficient = %+v, want {5 2}", ie)
	}
	if p.InUse() != 8 || p.Held("b") != 0 {
		t.Error("failed allocation mutated the pool")
	}
}

func TestAllocateNonPositive(t *testing.T) {
	p, _ := NewPool(10)
	if err := p.Allocate("a", 0); err == nil {
		t.Error("Allocate(0) succeeded")
	}
	if err := p.Allocate("a", -1); err == nil {
		t.Error("Allocate(-1) succeeded")
	}
}

func TestReleaseErrors(t *testing.T) {
	p, _ := NewPool(10)
	if err := p.Release("ghost", 1); err == nil {
		t.Error("Release from unknown owner succeeded")
	}
	_ = p.Allocate("a", 3)
	if err := p.Release("a", 4); err == nil {
		t.Error("over-release succeeded")
	}
	if err := p.Release("a", 0); err == nil {
		t.Error("Release(0) succeeded")
	}
}

// Property: any sequence of valid allocate/release operations keeps
// invariants: 0 <= InUse <= Capacity and InUse equals the sum of holdings.
func TestPropertyPoolInvariants(t *testing.T) {
	f := func(ops []struct {
		Owner   uint8
		N       uint8
		Release bool
	}) bool {
		p, err := NewPool(256)
		if err != nil {
			return false
		}
		holdings := map[string]int{}
		for _, op := range ops {
			owner := string(rune('a' + op.Owner%5))
			n := int(op.N%64) + 1
			if op.Release {
				err := p.Release(owner, n)
				if holdings[owner] >= n {
					if err != nil {
						return false
					}
					holdings[owner] -= n
				} else if err == nil {
					return false
				}
			} else {
				err := p.Allocate(owner, n)
				if p.InUse() > 256 {
					return false
				}
				if err == nil {
					holdings[owner] += n
				}
			}
		}
		sum := 0
		for owner, h := range holdings {
			if p.Held(owner) != h {
				return false
			}
			sum += h
		}
		return p.InUse() == sum && p.Free() == 256-sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
