package events

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestStringForms(t *testing.T) {
	cases := []struct {
		ev   Event
		want []string
	}{
		{RunStarted{System: "SSP", Providers: 3}, []string{"run started", "SSP", "3 providers"}},
		{RunStarted{System: "SSP", Providers: 1, Cell: "n=1"}, []string{"[n=1]"}},
		{RunCompleted{System: "DCS", TotalNodeHours: 120}, []string{"run completed", "DCS", "120 node*hours"}},
		{RunCompleted{System: "DCS", Err: errors.New("boom")}, []string{"run failed", "boom"}},
		{CellCompleted{Index: 2, Total: 7, Key: "DCS|n=2"}, []string{"cell 2/7 done", "DCS|n=2"}},
		{TableRendered{ID: "table2", Title: "NASA"}, []string{"rendered table2", "NASA"}},
		{RunQueued{ID: "run-000007", Label: "scenario x"}, []string{"run run-000007 queued", "scenario x"}},
		{RunRequeued{ID: "r1", Retries: 2, Reason: "lease expired"}, []string{"run r1 requeued", "retry 2", "lease expired"}},
		{RunDeadLettered{ID: "r1", Retries: 3, Err: errors.New("gone")}, []string{"run r1 dead-lettered", "3 retries", "gone"}},
		{RunFinished{ID: "run-000007", Status: "done"}, []string{"run run-000007 done"}},
		{RunFinished{ID: "r1", Status: "failed", Err: errors.New("boom")}, []string{"r1 failed", "boom"}},
	}
	for _, tc := range cases {
		got := tc.ev.String()
		for _, want := range tc.want {
			if !strings.Contains(got, want) {
				t.Errorf("%T.String() = %q, missing %q", tc.ev, got, want)
			}
		}
	}
}

// TestNilSinkEmitIsSafe pins the sink contract: a nil Sink — the zero
// value, Sink(nil), and the conversion of a nil func(Event) — is a
// valid no-op sink under concurrent emission, not a latent panic.
func TestNilSinkEmitIsSafe(t *testing.T) {
	var s Sink
	s.Emit(RunStarted{System: "x"}) // must not panic

	var fn func(Event)
	Sink(fn).Emit(RunCompleted{System: "x"}) // nil func conversion: still no-op
	Sink(nil).Emit(CellCompleted{Index: 1, Total: 1})

	// Concurrent emission through a nil sink is equally a no-op.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Emit(RunStarted{System: "concurrent"})
			}
		}()
	}
	wg.Wait()

	var got Event
	s = func(ev Event) { got = ev }
	s.Emit(TableRendered{ID: "t"})
	if got == nil {
		t.Error("sink did not receive the event")
	}
}

// TestConsoleRendersAndFilters: the shared console renderer prefixes
// every line, and SkipRunStarted drops exactly the RunStarted events.
func TestConsoleRendersAndFilters(t *testing.T) {
	var buf strings.Builder
	sink := Console(&buf, "test:")
	sink(RunStarted{System: "DCS", Providers: 1})
	sink(RunCompleted{System: "DCS", TotalNodeHours: 3})
	out := buf.String()
	if !strings.Contains(out, "test:") || !strings.Contains(out, "run started: DCS") ||
		!strings.Contains(out, "run completed: DCS") {
		t.Errorf("console output:\n%s", out)
	}

	buf.Reset()
	filtered := Console(&buf, "f:", SkipRunStarted())
	filtered(RunStarted{System: "DCS"})
	filtered(CellCompleted{Index: 1, Total: 2, Key: "k"})
	out = buf.String()
	if strings.Contains(out, "run started") {
		t.Errorf("SkipRunStarted leaked a RunStarted line:\n%s", out)
	}
	if !strings.Contains(out, "cell 1/2 done") {
		t.Errorf("filtered console dropped a wanted event:\n%s", out)
	}
}

// TestConsoleConcurrentEmitNoInterleave: lines from concurrent emitters
// never interleave mid-line (run under -race).
func TestConsoleConcurrentEmitNoInterleave(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	sink := Console(w, "c:")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				sink(CellCompleted{Index: j, Total: 50, Key: "x"})
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if !strings.HasPrefix(line, "c:") || !strings.Contains(line, "done") {
			t.Fatalf("interleaved or malformed line: %q", line)
		}
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestWireEncoding: every event type flattens to a typed wire object
// whose JSON round-trips, with errors carried as text.
func TestWireEncoding(t *testing.T) {
	cases := []struct {
		ev       Event
		wantType string
		check    func(w Wire) bool
	}{
		{RunQueued{ID: "r1", Label: "l"}, "run_queued",
			func(w Wire) bool { return w.RunID == "r1" && w.Label == "l" }},
		{RunStarted{System: "SSP", Providers: 3, Cell: "n=3"}, "run_started",
			func(w Wire) bool { return w.System == "SSP" && w.Providers == 3 && w.Cell == "n=3" }},
		{RunCompleted{System: "DCS", TotalNodeHours: 42}, "run_completed",
			func(w Wire) bool { return w.System == "DCS" && w.TotalNodeHours == 42 && w.Error == "" }},
		{RunCompleted{System: "DCS", Err: errors.New("boom")}, "run_completed",
			func(w Wire) bool { return w.Error == "boom" }},
		{CellCompleted{Index: 2, Total: 9, Key: "k"}, "cell_completed",
			func(w Wire) bool { return w.Index == 2 && w.Total == 9 && w.Key == "k" }},
		{TableRendered{ID: "table2", Title: "T"}, "table_rendered",
			func(w Wire) bool { return w.ArtifactID == "table2" && w.Title == "T" }},
		{ClusterWindow{System: "DCS", Policy: "round-robin", Index: 3,
			Start: 86400, End: 172800, Dispatched: []int{2, 1}, NodesInUse: []int{16, 8}}, "cluster_window",
			func(w Wire) bool {
				return w.System == "DCS" && w.Policy == "round-robin" && w.Index == 3 &&
					w.Start == 86400 && w.End == 172800 &&
					len(w.Dispatched) == 2 && w.Dispatched[0] == 2 &&
					len(w.NodesInUse) == 2 && w.NodesInUse[1] == 8
			}},
		{RunRequeued{ID: "r2", Retries: 1, Reason: "lease expired"}, "run_requeued",
			func(w Wire) bool { return w.RunID == "r2" && w.Retries == 1 && w.Reason == "lease expired" }},
		{RunDeadLettered{ID: "r3", Retries: 3, Err: errors.New("stale")}, "run_dead_lettered",
			func(w Wire) bool { return w.RunID == "r3" && w.Retries == 3 && w.Error == "stale" }},
		{RunFinished{ID: "r1", Status: "canceled", Err: errors.New("ctx")}, "run_finished",
			func(w Wire) bool { return w.RunID == "r1" && w.Status == "canceled" && w.Error == "ctx" }},
	}
	for _, tc := range cases {
		w := Encode(tc.ev)
		if w.Type != tc.wantType {
			t.Errorf("%T -> type %q, want %q", tc.ev, w.Type, tc.wantType)
		}
		if w.Text != tc.ev.String() {
			t.Errorf("%T wire text %q != String %q", tc.ev, w.Text, tc.ev.String())
		}
		if !tc.check(w) {
			t.Errorf("%T wire fields wrong: %+v", tc.ev, w)
		}
		data, err := json.Marshal(w)
		if err != nil {
			t.Errorf("%T marshal: %v", tc.ev, err)
		}
		var back Wire
		if err := json.Unmarshal(data, &back); err != nil || !reflect.DeepEqual(back, w) {
			t.Errorf("%T wire does not round-trip: %+v vs %+v (%v)", tc.ev, back, w, err)
		}
	}
}
