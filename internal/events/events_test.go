package events

import (
	"errors"
	"strings"
	"testing"
)

func TestStringForms(t *testing.T) {
	cases := []struct {
		ev   Event
		want []string
	}{
		{RunStarted{System: "SSP", Providers: 3}, []string{"run started", "SSP", "3 providers"}},
		{RunStarted{System: "SSP", Providers: 1, Cell: "n=1"}, []string{"[n=1]"}},
		{RunCompleted{System: "DCS", TotalNodeHours: 120}, []string{"run completed", "DCS", "120 node*hours"}},
		{RunCompleted{System: "DCS", Err: errors.New("boom")}, []string{"run failed", "boom"}},
		{CellCompleted{Index: 2, Total: 7, Key: "DCS|n=2"}, []string{"cell 2/7 done", "DCS|n=2"}},
		{TableRendered{ID: "table2", Title: "NASA"}, []string{"rendered table2", "NASA"}},
	}
	for _, tc := range cases {
		got := tc.ev.String()
		for _, want := range tc.want {
			if !strings.Contains(got, want) {
				t.Errorf("%T.String() = %q, missing %q", tc.ev, got, want)
			}
		}
	}
}

func TestNilSinkEmitIsSafe(t *testing.T) {
	var s Sink
	s.Emit(RunStarted{System: "x"}) // must not panic
	var got Event
	s = func(ev Event) { got = ev }
	s.Emit(TableRendered{ID: "t"})
	if got == nil {
		t.Error("sink did not receive the event")
	}
}
