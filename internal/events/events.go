// Package events defines the typed progress stream emitted by observable
// runs: the public Engine, the experiment suite and the scenario engine
// publish events as simulations start and finish, grid/scale cells
// complete, and tables render. dcsim and dcscen turn the stream into live
// progress output; library callers subscribe with a Sink.
package events

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one progress notification. The concrete types below are the
// full vocabulary; a String form is always available for plain logging.
type Event interface {
	fmt.Stringer
	// event restricts implementations to this package so consumers can
	// switch exhaustively over the concrete types.
	event()
}

// Sink consumes events. Sinks may be invoked concurrently from worker
// goroutines and must be safe for concurrent use.
//
// A nil Sink — including events.Sink(nil) and the conversion of a nil
// func(Event) — is explicitly a valid no-op sink: emitting through it
// discards the event (see Emit). Producers therefore never need a nil
// check, and callers may pass nil wherever a Sink is accepted (e.g.
// RunScenarioContext's fn parameter) to run unobserved.
type Sink func(Event)

// Emit sends ev to the sink; a nil sink drops it. Emit exists so
// producers never need a nil check at the call site.
func (s Sink) Emit(ev Event) {
	if s != nil {
		s(ev)
	}
}

// ConsoleOption tunes the Console renderer.
type ConsoleOption func(*consoleConfig)

type consoleConfig struct {
	skip func(Event) bool
}

// SkipRunStarted drops RunStarted events from the console: multi-cell
// studies emit one per simulation, and the cell completions carry the
// useful signal.
func SkipRunStarted() ConsoleOption {
	return Skip(func(ev Event) bool {
		_, ok := ev.(RunStarted)
		return ok
	})
}

// Skip drops every event the predicate matches.
func Skip(pred func(Event) bool) ConsoleOption {
	return func(c *consoleConfig) {
		prev := c.skip
		c.skip = func(ev Event) bool {
			return (prev != nil && prev(ev)) || pred(ev)
		}
	}
}

// Console returns the shared progress renderer behind every CLI's
// -progress flag (dcsim, dcscen, dawningbench) and dcserve's access
// log: each event becomes one prefixed line with seconds elapsed since
// the sink's creation, serialized by an internal mutex so concurrent
// emitters never interleave lines. Feed it a RunHandle subscription or
// pass it as any event sink.
func Console(w io.Writer, prefix string, opts ...ConsoleOption) Sink {
	var cfg consoleConfig
	for _, o := range opts {
		o(&cfg)
	}
	var mu sync.Mutex
	start := time.Now()
	return func(ev Event) {
		if cfg.skip != nil && cfg.skip(ev) {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, "%s %6.2fs %s\n", prefix, time.Since(start).Seconds(), ev)
	}
}

// RunStarted announces one simulation starting: a system over a workload
// set.
type RunStarted struct {
	// System is the canonical registered system name.
	System string
	// Providers is the number of service providers in the run.
	Providers int
	// Cell identifies the run within a larger study (a sweep point or
	// scale prefix key); empty for a standalone run.
	Cell string
}

func (e RunStarted) event() {}

func (e RunStarted) String() string {
	if e.Cell != "" {
		return fmt.Sprintf("run started: %s [%s] (%d providers)", e.System, e.Cell, e.Providers)
	}
	return fmt.Sprintf("run started: %s (%d providers)", e.System, e.Providers)
}

// RunCompleted announces one simulation finishing (successfully or not).
type RunCompleted struct {
	System string
	Cell   string
	// Err is non-nil when the run failed or was cancelled.
	Err error
	// TotalNodeHours is the run's headline metric (0 on failure).
	TotalNodeHours float64
}

func (e RunCompleted) event() {}

func (e RunCompleted) String() string {
	label := e.System
	if e.Cell != "" {
		label = fmt.Sprintf("%s [%s]", e.System, e.Cell)
	}
	if e.Err != nil {
		return fmt.Sprintf("run failed: %s: %v", label, e.Err)
	}
	return fmt.Sprintf("run completed: %s (%.0f node*hours)", label, e.TotalNodeHours)
}

// CellCompleted reports progress through a multi-cell study: one
// system × provider-count × sweep cell out of a known total.
type CellCompleted struct {
	// Index is the 1-based number of completed cells so far.
	Index int
	// Total is the study's cell count.
	Total int
	// Key identifies the cell ("DawningCloud|n=3", "grid|org|B40|R1.2").
	Key string
}

func (e CellCompleted) event() {}

func (e CellCompleted) String() string {
	return fmt.Sprintf("cell %d/%d done: %s", e.Index, e.Total, e.Key)
}

// RunQueued announces a submission accepted into the run service: the
// run exists, has its stable ID, and is waiting for (or about to get) a
// worker slot. It is always the first event on a run's stream.
type RunQueued struct {
	// ID is the run's stable identity in the run store.
	ID string
	// Label is the submission's human-readable description.
	Label string
}

func (e RunQueued) event() {}

func (e RunQueued) String() string {
	if e.Label != "" {
		return fmt.Sprintf("run %s queued: %s", e.ID, e.Label)
	}
	return fmt.Sprintf("run %s queued", e.ID)
}

// RunRequeued announces the self-healing path: a run whose worker claim
// went stale (crashed process, lost worker) has been returned to the
// queue for another attempt.
type RunRequeued struct {
	// ID is the run's stable identity in the run store.
	ID string
	// Retries is the run's total requeue count so far (bounded by the
	// service's MaxRetries).
	Retries int
	// Reason says why ("lease expired", "recovered after restart").
	Reason string
}

func (e RunRequeued) event() {}

func (e RunRequeued) String() string {
	return fmt.Sprintf("run %s requeued (retry %d): %s", e.ID, e.Retries, e.Reason)
}

// RunDeadLettered reports a run abandoned by the self-healing loop: its
// claim went stale more than MaxRetries times, so instead of burning a
// worker slot forever it is parked in the terminal dead-letter state,
// visible via the API for operator inspection.
type RunDeadLettered struct {
	// ID is the run's stable identity in the run store.
	ID string
	// Retries is how many requeues were spent before giving up.
	Retries int
	// Err describes the final failure.
	Err error
}

func (e RunDeadLettered) event() {}

func (e RunDeadLettered) String() string {
	return fmt.Sprintf("run %s dead-lettered after %d retries: %v", e.ID, e.Retries, e.Err)
}

// RunFinished closes a run's stream: the terminal lifecycle status of a
// stored run ("done", "failed" or "canceled"). It is distinct from
// RunCompleted, which reports one simulation inside the run; a scenario
// run emits many RunCompleted events and exactly one RunFinished.
type RunFinished struct {
	// ID is the run's stable identity in the run store.
	ID string
	// Status is the terminal status string.
	Status string
	// Err is non-nil when the run failed or was canceled.
	Err error
}

func (e RunFinished) event() {}

func (e RunFinished) String() string {
	if e.Err != nil {
		return fmt.Sprintf("run %s %s: %v", e.ID, e.Status, e.Err)
	}
	return fmt.Sprintf("run %s %s", e.ID, e.Status)
}

// ClusterWindow reports one aggregation window of a federated cluster
// simulation (internal/clustersim): where the shared virtual clock
// stands and how the routing policy has spread load across the
// federation's provider instances.
type ClusterWindow struct {
	// System is the system every instance runs; Policy is the routing
	// policy name.
	System string
	Policy string
	// Index is the 0-based window number; Start and End bound the
	// window in virtual seconds (End is exclusive, except for the final
	// partial window which closes at the horizon).
	Index int
	Start int64
	End   int64
	// Dispatched is the cumulative request count per instance, indexed
	// by InstanceID; NodesInUse is each instance's pool occupancy at the
	// window boundary.
	Dispatched []int
	NodesInUse []int
}

func (e ClusterWindow) event() {}

func (e ClusterWindow) String() string {
	total := 0
	for _, d := range e.Dispatched {
		total += d
	}
	return fmt.Sprintf("cluster window %d [%d,%d): %s/%s, %d dispatched over %d instances",
		e.Index, e.Start, e.End, e.System, e.Policy, total, len(e.Dispatched))
}

// WindowReport reports one accounting window of a streamed run: what
// every service provider of one system has completed and consumed by the
// window boundary. Consumption bills still-open leases as if they closed
// at End (metrics.BilledNodeHoursThrough), so successive windows are
// monotone and the final window converges on the run's Result. The
// report is read-only over the instance clock: emitting it never
// perturbs the simulation, which stays byte-identical to the
// unobserved run.
type WindowReport struct {
	// System is the system the streamed run compares; Cell identifies
	// the run within a larger study (empty for a standalone run).
	System string
	Cell   string
	// Index is the 0-based window number; Start and End bound the
	// window in virtual seconds. End is exclusive — events at exactly
	// End belong to the next window — except for the final window,
	// which closes at the horizon.
	Index int
	Start int64
	End   int64
	// Providers, Completed, NodeHours and Adjusted are parallel arrays
	// in attach order: each provider's tasks completed by End, its
	// node*hours billed through End, and its node-adjustment count.
	Providers []string
	Completed []int
	NodeHours []float64
	Adjusted  []int
	// TotalNodeHours is the resource provider's running total;
	// OverheadSeconds the running management overhead it implies.
	TotalNodeHours  float64
	OverheadSeconds float64
}

func (e WindowReport) event() {}

func (e WindowReport) String() string {
	done := 0
	for _, c := range e.Completed {
		done += c
	}
	return fmt.Sprintf("window %d [%d,%d): %s, %d tasks done, %.0f node*hours",
		e.Index, e.Start, e.End, e.System, done, e.TotalNodeHours)
}

// WindowSummary is the running economies-of-scale line of a streamed
// study: emitted once every compared system has reported the same
// window, with the paper's headline savings computed over consumption
// billed through the same boundary. Summaries arrive in window order.
type WindowSummary struct {
	// Index, Start and End identify the window (see WindowReport).
	Index int
	Start int64
	End   int64
	// Systems and TotalNodeHours are parallel arrays in comparison
	// order.
	Systems        []string
	TotalNodeHours []float64
	// DSPSavedVsDCS / DSPSavedVsDRP are DawningCloud's running savings
	// against dedicated clusters and per-job leases (0 when either
	// system is absent from the comparison).
	DSPSavedVsDCS float64
	DSPSavedVsDRP float64
}

func (e WindowSummary) event() {}

func (e WindowSummary) String() string {
	return fmt.Sprintf("window %d [%d,%d): %d systems reported, DSP saves %.1f%% vs DCS",
		e.Index, e.Start, e.End, len(e.Systems), e.DSPSavedVsDCS*100)
}

// TableRendered announces a finished artifact: a table or figure rendered
// from completed simulations.
type TableRendered struct {
	// ID is the artifact identifier ("table2", "fig12", ...).
	ID string
	// Title is the artifact's human-readable title.
	Title string
}

func (e TableRendered) event() {}

func (e TableRendered) String() string {
	return fmt.Sprintf("rendered %s: %s", e.ID, e.Title)
}
