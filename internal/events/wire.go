package events

// Wire is the flat JSON form of an Event, the encoding dcserve streams
// over HTTP (one object per NDJSON line / SSE data field). Type selects
// which of the optional fields apply; Text always carries the event's
// rendered String form so minimal clients can log without switching.
type Wire struct {
	// Type is the snake_case event name: "run_queued", "run_started",
	// "run_completed", "cell_completed", "cluster_window",
	// "window_report", "window_summary", "table_rendered",
	// "run_requeued", "run_dead_lettered", "run_finished".
	Type string `json:"type"`
	// Text is the event's String() rendering.
	Text string `json:"text"`

	// RunQueued / RunFinished fields.
	RunID  string `json:"run_id,omitempty"`
	Label  string `json:"label,omitempty"`
	Status string `json:"status,omitempty"`

	// RunStarted / RunCompleted fields.
	System         string  `json:"system,omitempty"`
	Providers      int     `json:"providers,omitempty"`
	Cell           string  `json:"cell,omitempty"`
	TotalNodeHours float64 `json:"total_node_hours,omitempty"`

	// CellCompleted fields.
	Index int    `json:"index,omitempty"`
	Total int    `json:"total,omitempty"`
	Key   string `json:"key,omitempty"`

	// TableRendered fields.
	ArtifactID string `json:"artifact_id,omitempty"`
	Title      string `json:"title,omitempty"`

	// ClusterWindow fields (Index doubles as the window number; System
	// carries the federated system). Start/End bound the window in
	// virtual seconds; Dispatched and NodesInUse are per-instance,
	// indexed by InstanceID.
	Policy     string `json:"policy,omitempty"`
	Start      int64  `json:"start,omitempty"`
	End        int64  `json:"end,omitempty"`
	Dispatched []int  `json:"dispatched,omitempty"`
	NodesInUse []int  `json:"nodes_in_use,omitempty"`

	// WindowReport / WindowSummary fields (Index doubles as the window
	// number; Start/End bound the window; System/Cell/TotalNodeHours are
	// reused). Names, Completed, NodeHours and Adjusted are parallel
	// arrays — per provider for a report, per system (Names/NodeHours
	// only) for a summary.
	Names           []string  `json:"names,omitempty"`
	Completed       []int     `json:"completed,omitempty"`
	NodeHours       []float64 `json:"node_hours,omitempty"`
	Adjusted        []int     `json:"adjusted,omitempty"`
	OverheadSeconds float64   `json:"overhead_seconds,omitempty"`
	SavedVsDCS      float64   `json:"saved_vs_dcs,omitempty"`
	SavedVsDRP      float64   `json:"saved_vs_drp,omitempty"`

	// RunRequeued / RunDeadLettered fields (RunID identifies the run).
	Retries int    `json:"retries,omitempty"`
	Reason  string `json:"reason,omitempty"`

	// Error carries RunCompleted.Err / RunDeadLettered.Err /
	// RunFinished.Err as text (error values do not survive JSON).
	Error string `json:"error,omitempty"`
}

// Encode flattens an event into its wire form.
func Encode(ev Event) Wire {
	w := Wire{Text: ev.String()}
	switch e := ev.(type) {
	case RunQueued:
		w.Type = "run_queued"
		w.RunID = e.ID
		w.Label = e.Label
	case RunStarted:
		w.Type = "run_started"
		w.System = e.System
		w.Providers = e.Providers
		w.Cell = e.Cell
	case RunCompleted:
		w.Type = "run_completed"
		w.System = e.System
		w.Cell = e.Cell
		w.TotalNodeHours = e.TotalNodeHours
		if e.Err != nil {
			w.Error = e.Err.Error()
		}
	case CellCompleted:
		w.Type = "cell_completed"
		w.Index = e.Index
		w.Total = e.Total
		w.Key = e.Key
	case ClusterWindow:
		w.Type = "cluster_window"
		w.System = e.System
		w.Policy = e.Policy
		w.Index = e.Index
		w.Start = e.Start
		w.End = e.End
		w.Dispatched = e.Dispatched
		w.NodesInUse = e.NodesInUse
	case WindowReport:
		w.Type = "window_report"
		w.System = e.System
		w.Cell = e.Cell
		w.Index = e.Index
		w.Start = e.Start
		w.End = e.End
		w.Names = e.Providers
		w.Completed = e.Completed
		w.NodeHours = e.NodeHours
		w.Adjusted = e.Adjusted
		w.TotalNodeHours = e.TotalNodeHours
		w.OverheadSeconds = e.OverheadSeconds
	case WindowSummary:
		w.Type = "window_summary"
		w.Index = e.Index
		w.Start = e.Start
		w.End = e.End
		w.Names = e.Systems
		w.NodeHours = e.TotalNodeHours
		w.SavedVsDCS = e.DSPSavedVsDCS
		w.SavedVsDRP = e.DSPSavedVsDRP
	case TableRendered:
		w.Type = "table_rendered"
		w.ArtifactID = e.ID
		w.Title = e.Title
	case RunRequeued:
		w.Type = "run_requeued"
		w.RunID = e.ID
		w.Retries = e.Retries
		w.Reason = e.Reason
	case RunDeadLettered:
		w.Type = "run_dead_lettered"
		w.RunID = e.ID
		w.Retries = e.Retries
		if e.Err != nil {
			w.Error = e.Err.Error()
		}
	case RunFinished:
		w.Type = "run_finished"
		w.RunID = e.ID
		w.Status = e.Status
		if e.Err != nil {
			w.Error = e.Err.Error()
		}
	default:
		w.Type = "event"
	}
	return w
}
