package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperDCSTCO(t *testing.T) {
	b, err := PaperDCS().TCOPerMonth()
	if err != nil {
		t.Fatalf("TCOPerMonth: %v", err)
	}
	// 120000/96 + 30000/96 + 1600 = 1250 + 312.5 + 1600 = 3162.5,
	// the paper rounds to $3,160.
	if got := b.Total(); math.Abs(got-3162.5) > 0.01 {
		t.Errorf("DCS TCO = %.2f, want 3162.50 (paper: ~3160)", got)
	}
	if len(b.Items) != 3 {
		t.Errorf("items = %d, want 3", len(b.Items))
	}
	if b.Items[0].Label != "CapEx depreciation" || math.Abs(b.Items[0].Dollars-1250) > 0.01 {
		t.Errorf("depreciation item = %+v, want 1250", b.Items[0])
	}
}

func TestPaperEC2TCO(t *testing.T) {
	b, err := PaperEC2().TCOPerMonth()
	if err != nil {
		t.Fatalf("TCOPerMonth: %v", err)
	}
	// 30 instances * 720 h * $0.10 = 2160; 1000 GB * $0.10 = 100.
	if got := b.Total(); got != 2260 {
		t.Errorf("SSP TCO = %.2f, want 2260", got)
	}
	if b.Items[0].Dollars != 2160 || b.Items[1].Dollars != 100 {
		t.Errorf("items = %+v, want 2160/100", b.Items)
	}
}

func TestPaperComparisonRatio(t *testing.T) {
	cmp, err := Compare(PaperDCS(), PaperEC2())
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	// The paper reports 71.5%.
	if math.Abs(cmp.Ratio-0.7146) > 0.001 {
		t.Errorf("ratio = %.4f, want ~0.7146", cmp.Ratio)
	}
}

func TestDCSValidation(t *testing.T) {
	bad := PaperDCS()
	bad.DepreciationYears = 0
	if _, err := bad.TCOPerMonth(); err == nil {
		t.Error("zero depreciation accepted")
	}
	neg := PaperDCS()
	neg.CapExDollars = -1
	if _, err := neg.TCOPerMonth(); err == nil {
		t.Error("negative CapEx accepted")
	}
}

func TestEC2Validation(t *testing.T) {
	bad := PaperEC2()
	bad.Instances = -1
	if _, err := bad.TCOPerMonth(); err == nil {
		t.Error("negative instances accepted")
	}
}

func TestCompareePropagatesErrors(t *testing.T) {
	bad := PaperDCS()
	bad.DepreciationYears = -1
	if _, err := Compare(bad, PaperEC2()); err == nil {
		t.Error("Compare accepted invalid DCS spec")
	}
	badE := PaperEC2()
	badE.HoursPerMonth = -1
	if _, err := Compare(PaperDCS(), badE); err == nil {
		t.Error("Compare accepted invalid EC2 spec")
	}
}

func TestBreakdownTotalEmpty(t *testing.T) {
	var b Breakdown
	if b.Total() != 0 {
		t.Error("empty breakdown total != 0")
	}
}

func TestCompareZeroDCS(t *testing.T) {
	zero := DCSSpec{DepreciationYears: 1}
	cmp, err := Compare(zero, EC2Spec{})
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Ratio != 0 {
		t.Errorf("ratio with zero DCS = %g, want 0", cmp.Ratio)
	}
}

// Property: EC2 TCO scales linearly in instances and DCS TCO decreases
// monotonically with a longer depreciation cycle.
func TestPropertyTCOMonotonicity(t *testing.T) {
	f := func(inst uint8, years uint8) bool {
		e := PaperEC2()
		e.Instances = int(inst)
		b1, err := e.TCOPerMonth()
		if err != nil {
			return false
		}
		e.Instances = int(inst) + 1
		b2, err := e.TCOPerMonth()
		if err != nil {
			return false
		}
		if b2.Total() < b1.Total() {
			return false
		}
		d := PaperDCS()
		d.DepreciationYears = float64(years%30) + 1
		t1, err := d.TCOPerMonth()
		if err != nil {
			return false
		}
		d.DepreciationYears += 5
		t2, err := d.TCOPerMonth()
		if err != nil {
			return false
		}
		return t2.Total() <= t1.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
