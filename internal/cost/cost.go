// Package cost implements the paper's total-cost-of-ownership analysis
// (Section 4.5.5): a dedicated cluster's monthly TCO from capital expenses,
// depreciation and operating expenses, versus leasing equivalent capacity
// from EC2 at 2009 prices.
package cost

import "fmt"

// DCSSpec describes a dedicated cluster system purchase. The paper's real
// case is the 2006 grid lab of Beijing University of Technology.
type DCSSpec struct {
	// Nodes is the cluster size (informational).
	Nodes int
	// CapExDollars is the total capital expense.
	CapExDollars float64
	// DepreciationYears is the depreciation cycle.
	DepreciationYears float64
	// MaintenanceTotalDollars is the total maintenance cost over the
	// depreciation cycle.
	MaintenanceTotalDollars float64
	// EnergySpacePerMonthDollars is the recurring energy and space cost.
	EnergySpacePerMonthDollars float64
}

// Validate reports the first bad field, or nil.
func (d DCSSpec) Validate() error {
	if d.CapExDollars < 0 || d.MaintenanceTotalDollars < 0 || d.EnergySpacePerMonthDollars < 0 {
		return fmt.Errorf("cost: negative dollars in DCS spec %+v", d)
	}
	if d.DepreciationYears <= 0 {
		return fmt.Errorf("cost: depreciation years %g <= 0", d.DepreciationYears)
	}
	return nil
}

// Breakdown itemizes a monthly TCO.
type Breakdown struct {
	Items []Item
}

// Item is one cost line.
type Item struct {
	Label   string
	Dollars float64
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 {
	var t float64
	for _, it := range b.Items {
		t += it.Dollars
	}
	return t
}

// TCOPerMonth computes the paper's formula (1):
// TCO_dcs = CapEx depreciation + OpEx, per month.
func (d DCSSpec) TCOPerMonth() (Breakdown, error) {
	if err := d.Validate(); err != nil {
		return Breakdown{}, err
	}
	months := d.DepreciationYears * 12
	return Breakdown{Items: []Item{
		{Label: "CapEx depreciation", Dollars: d.CapExDollars / months},
		{Label: "maintenance", Dollars: d.MaintenanceTotalDollars / months},
		{Label: "energy and space", Dollars: d.EnergySpacePerMonthDollars},
	}}, nil
}

// EC2Spec describes leasing a fixed fleet of EC2 instances, the paper's SSP
// pricing meter.
type EC2Spec struct {
	// Instances is the fleet size matched to the DCS configuration.
	Instances int
	// PricePerInstanceHour is the on-demand rate (2009: $0.10).
	PricePerInstanceHour float64
	// HoursPerMonth is the billing month (the paper uses 30*24).
	HoursPerMonth float64
	// InboundGBPerMonth is the data transferred in per month.
	InboundGBPerMonth float64
	// PricePerGBInbound is the inbound transfer rate (2009: $0.10).
	PricePerGBInbound float64
}

// Validate reports the first bad field, or nil.
func (e EC2Spec) Validate() error {
	if e.Instances < 0 || e.PricePerInstanceHour < 0 || e.HoursPerMonth < 0 ||
		e.InboundGBPerMonth < 0 || e.PricePerGBInbound < 0 {
		return fmt.Errorf("cost: negative field in EC2 spec %+v", e)
	}
	return nil
}

// TCOPerMonth computes the paper's formula (2):
// TCO_ssp = total instance cost + inbound transfer cost, per month.
func (e EC2Spec) TCOPerMonth() (Breakdown, error) {
	if err := e.Validate(); err != nil {
		return Breakdown{}, err
	}
	return Breakdown{Items: []Item{
		{Label: "instances", Dollars: float64(e.Instances) * e.HoursPerMonth * e.PricePerInstanceHour},
		{Label: "inbound transfer", Dollars: e.InboundGBPerMonth * e.PricePerGBInbound},
	}}, nil
}

// PaperDCS returns the paper's real DCS case: 15 nodes (2x2 GHz CPU, 4 GB
// memory, 160 GB disk each), $120,000 CapEx over an 8-year depreciation
// cycle, $30,000 total maintenance, $1,600/month energy and space.
func PaperDCS() DCSSpec {
	return DCSSpec{
		Nodes:                      15,
		CapExDollars:               120000,
		DepreciationYears:          8,
		MaintenanceTotalDollars:    30000,
		EnergySpacePerMonthDollars: 1600,
	}
}

// PaperEC2 returns the paper's matched EC2 fleet: 30 instances (one DCS
// node maps to two 2 GHz/1.7 GB instances) at $0.10 per instance-hour, with
// under 1,000 GB/month inbound at $0.10/GB.
func PaperEC2() EC2Spec {
	return EC2Spec{
		Instances:            30,
		PricePerInstanceHour: 0.10,
		HoursPerMonth:        30 * 24,
		InboundGBPerMonth:    1000,
		PricePerGBInbound:    0.10,
	}
}

// Comparison is the paper's bottom line: SSP monthly TCO as a fraction of
// DCS monthly TCO (the paper reports 71.5%).
type Comparison struct {
	DCS   Breakdown
	SSP   Breakdown
	Ratio float64
}

// Compare computes both TCOs and their ratio.
func Compare(d DCSSpec, e EC2Spec) (Comparison, error) {
	db, err := d.TCOPerMonth()
	if err != nil {
		return Comparison{}, err
	}
	eb, err := e.TCOPerMonth()
	if err != nil {
		return Comparison{}, err
	}
	c := Comparison{DCS: db, SSP: eb}
	if t := db.Total(); t > 0 {
		c.Ratio = eb.Total() / t
	}
	return c, nil
}
