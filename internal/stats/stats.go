// Package stats provides the thin numeric helpers the experiment harness
// needs: summary statistics, percentiles, histograms and time-series
// bucketing. It exists so the rest of the repository stays free of ad-hoc
// numeric code (the paper's evaluation is mostly arithmetic over series).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// MinMax returns the extremes of xs; it returns (0, 0) for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median is the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Histogram counts values into uniform-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram of xs with the given number of bins.
// Values outside [min, max] clamp to the edge bins.
func NewHistogram(xs []float64, bins int, min, max float64) *Histogram {
	if bins < 1 {
		bins = 1
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	width := (max - min) / float64(bins)
	for _, x := range xs {
		var idx int
		if width > 0 {
			idx = int((x - min) / width)
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= bins {
			idx = bins - 1
		}
		h.Counts[idx]++
	}
	return h
}

// Total returns the number of samples in the histogram.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Interval is a [Start, End) span with an integer level, used to bucket
// resource-usage timelines.
type Interval struct {
	Start, End int64
	Level      int
}

// BucketMax splits [0, horizon) into fixed-width buckets and reports the
// maximum level observed inside each bucket given step-function intervals.
// Intervals may overlap; overlapping levels add.
func BucketMax(intervals []Interval, horizon, width int64) []int {
	if width <= 0 || horizon <= 0 {
		return nil
	}
	n := int((horizon + width - 1) / width)
	out := make([]int, n)
	// Build change points: +level at start, -level at end.
	type change struct {
		t     int64
		delta int
	}
	changes := make([]change, 0, 2*len(intervals))
	for _, iv := range intervals {
		if iv.End <= iv.Start {
			continue
		}
		changes = append(changes, change{iv.Start, iv.Level}, change{iv.End, -iv.Level})
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].t != changes[j].t {
			return changes[i].t < changes[j].t
		}
		// Process releases before acquires at the same instant so an
		// instantaneous swap does not double-count.
		return changes[i].delta < changes[j].delta
	})
	level := 0
	ci := 0
	for b := 0; b < n; b++ {
		bStart := int64(b) * width
		bEnd := bStart + width
		// Apply changes before the bucket starts.
		for ci < len(changes) && changes[ci].t <= bStart {
			level += changes[ci].delta
			ci++
		}
		maxLevel := level
		for cj := ci; cj < len(changes) && changes[cj].t < bEnd; cj++ {
			level += changes[cj].delta
			if level > maxLevel {
				maxLevel = level
			}
			ci = cj + 1
		}
		out[b] = maxLevel
	}
	return out
}

// MaxInt returns the maximum of an int slice, 0 for empty input.
func MaxInt(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}

// FormatFloat renders a float compactly for table output: integers print
// without a decimal point, other values with two decimals.
func FormatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.2f", x)
}
