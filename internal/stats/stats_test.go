package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	tests := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, tt := range tests {
		if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Mean(%v) = %g, want %g", tt.xs, got, tt.want)
		}
	}
}

func TestSum(t *testing.T) {
	if got := Sum([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("Sum = %g, want 6.5", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %g, want 0", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev(const) = %g, want 0", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("StdDev(single) = %g, want 0", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %g,%g, want -1,7", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Errorf("MinMax(nil) = %g,%g, want 0,0", min, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p, want float64
	}{
		{0, 1},
		{50, 3},
		{100, 5},
		{25, 2},
		{-10, 1}, // clamps
		{110, 5}, // clamps
		{62.5, 3.5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%g) = %g, want %g", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
	if got := Percentile([]float64{9}, 75); got != 9 {
		t.Errorf("Percentile(single) = %g, want 9", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{1, 100, 2}); got != 2 {
		t.Errorf("Median = %g, want 2", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 9.9, 10, 11, -5}
	h := NewHistogram(xs, 5, 0, 10)
	if h.Total() != len(xs) {
		t.Errorf("Total = %d, want %d", h.Total(), len(xs))
	}
	// Bin width 2: [0,2): {0,1,-5 clamped}, [2,4): {2,3}, [4,6): {4,5},
	// [6,8): {}, [8,10): {9.9, 10 clamped, 11 clamped}.
	want := []int{3, 2, 2, 0, 3}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("Counts[%d] = %d, want %d", i, h.Counts[i], c)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 1}, 0, 1, 1)
	if len(h.Counts) != 1 || h.Counts[0] != 3 {
		t.Errorf("degenerate histogram = %+v", h)
	}
}

func TestBucketMax(t *testing.T) {
	intervals := []Interval{
		{Start: 0, End: 100, Level: 10},
		{Start: 50, End: 150, Level: 5},
		{Start: 200, End: 210, Level: 100},
	}
	got := BucketMax(intervals, 300, 100)
	// Bucket [0,100): level reaches 15. [100,200): 5 then 0. [200,300): 100.
	want := []int{15, 5, 100}
	if len(got) != len(want) {
		t.Fatalf("buckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBucketMaxInstantSwapDoesNotDoubleCount(t *testing.T) {
	intervals := []Interval{
		{Start: 0, End: 100, Level: 10},
		{Start: 100, End: 200, Level: 10},
	}
	got := BucketMax(intervals, 200, 50)
	for i, v := range got {
		if v != 10 {
			t.Errorf("bucket %d = %d, want 10 (no double count at swap)", i, v)
		}
	}
}

func TestBucketMaxEmptyAndInvalid(t *testing.T) {
	if got := BucketMax(nil, 0, 100); got != nil {
		t.Errorf("BucketMax(horizon 0) = %v, want nil", got)
	}
	if got := BucketMax(nil, 100, 0); got != nil {
		t.Errorf("BucketMax(width 0) = %v, want nil", got)
	}
	got := BucketMax(nil, 100, 50)
	if len(got) != 2 || got[0] != 0 || got[1] != 0 {
		t.Errorf("BucketMax(no intervals) = %v, want [0 0]", got)
	}
}

func TestMaxInt(t *testing.T) {
	if got := MaxInt([]int{3, 9, 1}); got != 9 {
		t.Errorf("MaxInt = %d, want 9", got)
	}
	if got := MaxInt(nil); got != 0 {
		t.Errorf("MaxInt(nil) = %d, want 0", got)
	}
	if got := MaxInt([]int{-5, -2}); got != -2 {
		t.Errorf("MaxInt(negatives) = %d, want -2", got)
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		x    float64
		want string
	}{
		{42, "42"},
		{42.5, "42.50"},
		{0, "0"},
		{-3.14159, "-3.14"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.x); got != tt.want {
			t.Errorf("FormatFloat(%g) = %q, want %q", tt.x, got, tt.want)
		}
	}
}

// Property: mean lies between min and max for non-empty input.
func TestPropertyMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		min, max := MinMax(clean)
		return m >= min-1e-6 && m <= max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, pa, pb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(pa) / 255 * 100
		b := float64(pb) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: histogram total equals sample count regardless of range.
func TestPropertyHistogramTotal(t *testing.T) {
	f := func(raw []int16, bins uint8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		h := NewHistogram(xs, int(bins%20)+1, -100, 100)
		return h.Total() == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
