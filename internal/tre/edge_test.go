package tre

import (
	"testing"

	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/workflow"
)

// TestMTCServerRunsMultipleWorkflows submits two workflows with colliding
// task ID spaces; the per-submission namespacing must keep them apart.
func TestMTCServerRunsMultipleWorkflows(t *testing.T) {
	f := newFixture(t, 1000)
	m, err := NewMTCServer(f.engine, f.prov, Config{
		Name:   "mtc-multi",
		Params: policy.MTCDefaults(4, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	mkChain := func(name string) []*job.Job {
		a := &job.Job{ID: 1, Nodes: 1, Runtime: 30, Workflow: name}
		b := &job.Job{ID: 2, Nodes: 1, Runtime: 30, Workflow: name, Deps: []int{1}}
		return []*job.Job{a, b}
	}
	if err := m.SubmitWorkflow(mkChain("w1")); err != nil {
		t.Fatalf("first workflow: %v", err)
	}
	if err := m.SubmitWorkflow(mkChain("w2")); err != nil {
		t.Fatalf("second workflow with same IDs: %v", err)
	}
	f.engine.Run(3600)
	if m.Completed() != 4 {
		t.Errorf("Completed = %d, want 4 across two workflows", m.Completed())
	}
	if m.WaitingTasks() != 0 {
		t.Errorf("WaitingTasks = %d, want 0", m.WaitingTasks())
	}
}

// TestMTCSecondWorkflowAfterFirstCompletes exercises ID reuse over time.
func TestMTCSecondWorkflowAfterFirstCompletes(t *testing.T) {
	f := newFixture(t, 1000)
	m, err := NewMTCServer(f.engine, f.prov, Config{
		Name:   "mtc-seq",
		Params: policy.MTCDefaults(4, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	a := &job.Job{ID: 1, Nodes: 1, Runtime: 10}
	if err := m.SubmitWorkflow([]*job.Job{a}); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(600)
	b := &job.Job{ID: 1, Nodes: 1, Runtime: 10}
	if err := m.SubmitWorkflow([]*job.Job{b}); err != nil {
		t.Fatalf("resubmitting ID 1 after completion: %v", err)
	}
	f.engine.Run(1200)
	if m.Completed() != 2 {
		t.Errorf("Completed = %d, want 2", m.Completed())
	}
}

// TestEasyBackfillServerCompletesMixedQueue runs the ablation scheduler on
// a queue where a wide head job would block FCFS.
func TestEasyBackfillServerCompletesMixedQueue(t *testing.T) {
	f := newFixture(t, 100)
	s, err := NewHTCServer(f.engine, f.prov, Config{
		Name:         "htc-easy",
		Params:       policy.HTCDefaults(10, 1e18), // fixed lease
		EasyBackfill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Head occupies 8 nodes for 100 s; the 10-node job must wait; small
	// jobs may backfill if they finish inside the head's shadow.
	s.Submit(&job.Job{ID: 1, Nodes: 8, Runtime: 100})
	s.Submit(&job.Job{ID: 2, Nodes: 10, Runtime: 50})
	s.Submit(&job.Job{ID: 3, Nodes: 2, Runtime: 60})
	f.engine.Run(3600)
	if s.Completed() != 3 {
		t.Errorf("Completed = %d, want 3", s.Completed())
	}
}

// TestDestroyMidWorkflowReleasesPool destroys an MTC TRE while tasks wait
// on dependencies: the pool must recover every node.
func TestDestroyMidWorkflowReleasesPool(t *testing.T) {
	f := newFixture(t, 1000)
	m, err := NewMTCServer(f.engine, f.prov, Config{
		Name:   "mtc-abort",
		Params: policy.MTCDefaults(8, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	dag, err := workflow.Montage(workflow.MontageConfig{Seed: 1, Images: 20})
	if err != nil {
		t.Fatal(err)
	}
	jobs := dag.Jobs(0)
	ptrs := make([]*job.Job, len(jobs))
	for i := range jobs {
		ptrs[i] = &jobs[i]
	}
	if err := m.SubmitWorkflow(ptrs); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(30) // mid-flight
	if m.Completed() == 0 {
		t.Fatal("nothing ran before the abort")
	}
	if err := m.Destroy(); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if f.pool.InUse() != 0 {
		t.Errorf("pool in use = %d after destroy, want 0", f.pool.InUse())
	}
	// Pending completion events for running tasks must be harmless.
	f.engine.Run(7200)
}

// TestHTCZeroRuntimeJobCompletesImmediately covers the degenerate runtime.
func TestHTCZeroRuntimeJobCompletesImmediately(t *testing.T) {
	f := newFixture(t, 100)
	s := newHTC(t, f, 4, 1.5)
	s.Submit(&job.Job{ID: 1, Nodes: 1, Runtime: 0})
	f.engine.Run(60)
	if s.Completed() != 1 {
		t.Errorf("Completed = %d, want 1", s.Completed())
	}
}

// TestQueueDrainAfterRejectionRecovers: once pool pressure clears, a
// previously rejected DR2 request succeeds at a later scan.
func TestQueueDrainAfterRejectionRecovers(t *testing.T) {
	f := newFixture(t, 30)
	s := newHTC(t, f, 10, 2.0)
	// A competing tenant holds 15 nodes for one hour.
	if err := f.prov.RequestInitial("tenant", 15); err != nil {
		t.Fatal(err)
	}
	f.engine.Schedule(3600, func() {
		if err := f.prov.Release("tenant", 15); err != nil {
			t.Errorf("tenant release: %v", err)
		}
	})
	// Needs DR2 of 15; only 5 free until the tenant leaves.
	s.Submit(&job.Job{ID: 1, Nodes: 25, Runtime: 100})
	f.engine.Run(3500)
	if s.Completed() != 0 {
		t.Fatal("job ran before capacity existed")
	}
	f.engine.Run(7200)
	if s.Completed() != 1 {
		t.Errorf("Completed = %d, want 1 after the tenant releases", s.Completed())
	}
}
