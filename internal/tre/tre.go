// Package tre implements DawningCloud's thin runtime environments (paper
// Section 3.1.2): the workload-specific servers that schedule jobs and
// negotiate resources with the CSF's provision service.
//
// The HTC TRE bundles the HTC server and scheduler: it scans its queue
// every minute, dispatches with First-Fit, and applies the DR1/DR2 dynamic
// resource policy. The MTC TRE adds the trigger monitor: workflow tasks
// enter the scheduling queue only when their dependencies complete, the
// queue is scanned every three seconds and dispatched FCFS, and the TRE can
// destroy itself once its workflows finish (the service provider ends the
// computing service). Web portals are the emulation's job source and are
// not modelled.
package tre

import (
	"fmt"
	"sort"

	"repro/internal/csf"
	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config configures a server.
type Config struct {
	// Name is the TRE's identity with the provision service.
	Name string
	// Params is the resource-management policy (B, R, scan intervals).
	Params policy.Params
	// Scheduler dispatches queued jobs; defaults to First-Fit for HTC
	// and FCFS for MTC when nil.
	Scheduler sched.Policy
	// EasyBackfill replaces the HTC dispatch policy with EASY
	// backfilling wired to the server's running-job state (an ablation
	// extension; the paper's policy avoids runtime estimates).
	EasyBackfill bool
	// DestroyOnCompletion tears the TRE down (releasing all nodes, the
	// initial lease included) once every submitted job completed. The
	// paper's MTC provider ends its service after the workflow runs.
	DestroyOnCompletion bool
}

// Server is the common machinery of both TRE flavours.
type Server struct {
	cfg    Config
	engine *sim.Engine
	prov   *csf.ProvisionService

	queue job.Queue
	owned int // nodes currently leased (initial + dynamic)
	busy  int // nodes running jobs

	submitted   int
	total       int // jobs expected (for DestroyOnCompletion)
	completions []sim.Time
	firstSubmit sim.Time
	lastDone    sim.Time

	running   map[*job.Job]sim.Time // job -> end time (for backfill)
	stopScan  func()
	destroyed bool
	started   bool

	// completeHook lets the MTC trigger monitor observe completions to
	// release dependent tasks. Nil for plain HTC servers.
	completeHook func(*job.Job)

	// Scratch state reused across events so the steady-state scheduling
	// loop allocates nothing: pickBuf/jobBuf back each dispatch's
	// selection, and the free lists recycle the completion and
	// idle-check timer nodes.
	pickBuf  []int
	jobBuf   []*job.Job
	compFree []*compNode
	idleFree []*idleNode
}

// compNode is a reusable completion timer: one pre-bound callback per
// in-flight job, recycled through the server's free list, so dispatching
// a job schedules its completion without allocating a closure per event.
type compNode struct {
	s  *Server
	j  *job.Job
	fn func()
}

func (n *compNode) run() {
	j := n.j
	n.j = nil
	s := n.s
	s.compFree = append(s.compFree, n)
	s.complete(j)
}

// idleNode is a reusable hourly idle-release timer for one dynamic grant
// (paper Section 3.2.2): it re-arms itself on the same node until the
// block releases, then returns to the server's free list.
type idleNode struct {
	s    *Server
	size int
	fn   func()
}

func (n *idleNode) run() {
	s := n.s
	if s.destroyed {
		n.release()
		return
	}
	idle := s.owned - s.busy
	if policy.ReleaseDecision(idle, n.size) {
		if err := s.prov.Release(s.cfg.Name, n.size); err != nil {
			panic(fmt.Sprintf("tre: release %d from %s: %v", n.size, s.cfg.Name, err))
		}
		s.owned -= n.size
		n.release()
		return
	}
	s.engine.Schedule(s.cfg.Params.IdleCheckInterval, n.fn)
}

func (n *idleNode) release() {
	n.size = 0
	n.s.idleFree = append(n.s.idleFree, n)
}

// newServer builds the shared core.
func newServer(engine *sim.Engine, prov *csf.ProvisionService, cfg Config) (*Server, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Name == "" {
		return nil, fmt.Errorf("tre: empty server name")
	}
	return &Server{
		cfg:         cfg,
		engine:      engine,
		prov:        prov,
		firstSubmit: -1,
		running:     make(map[*job.Job]sim.Time),
	}, nil
}

// NewHTCServer builds an HTC TRE server (First-Fit, minute scans unless
// overridden by cfg.Params).
func NewHTCServer(engine *sim.Engine, prov *csf.ProvisionService, cfg Config) (*Server, error) {
	if cfg.Scheduler == nil {
		cfg.Scheduler = sched.FirstFit{}
	}
	s, err := newServer(engine, prov, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.EasyBackfill {
		s.cfg.Scheduler = sched.EasyBackfill{Now: engine.Now, RunningEnds: s.RunningEnds}
	}
	return s, nil
}

// Start acquires the initial resources and begins the scan loop. The
// initial lease must be grantable or the TRE cannot come up.
func (s *Server) Start() error {
	if s.started {
		return fmt.Errorf("tre: %s already started", s.cfg.Name)
	}
	if err := s.prov.RequestInitial(s.cfg.Name, s.cfg.Params.InitialNodes); err != nil {
		return err
	}
	s.owned = s.cfg.Params.InitialNodes
	s.started = true
	s.stopScan = s.engine.Every(s.cfg.Params.ScanInterval, s.scan)
	return nil
}

// Submit enqueues one independent job (HTC path) and loads it right away
// when the current lease has room; the scan loop only drives the resource
// negotiation policy.
func (s *Server) Submit(j *job.Job) {
	if s.destroyed {
		return
	}
	s.noteSubmit()
	s.total++
	s.queue.Push(j)
	if s.started {
		s.dispatch()
	}
}

func (s *Server) noteSubmit() {
	s.submitted++
	if s.firstSubmit < 0 {
		s.firstSubmit = s.engine.Now()
	}
}

// scan is the periodic server loop: load whatever jobs fit the owned
// nodes, then negotiate resources against the demand still waiting in the
// queue (paper Section 3.2.2: the ratio of obtaining resources counts jobs
// *in the queue*, i.e. the backlog the current lease cannot serve), and
// dispatch again once a grant arrives.
func (s *Server) scan() {
	if s.destroyed {
		return
	}
	s.dispatch()
	state := policy.QueueState{
		AccumulatedDemand: s.queue.AccumulatedDemand(),
		LargestDemand:     s.queue.LargestDemand(),
		OwnedNodes:        s.owned,
	}
	kind, size := policy.Decide(state, s.cfg.Params)
	if kind != policy.NoRequest {
		if granted := s.prov.RequestDynamic(s.cfg.Name, size); granted > 0 {
			s.owned += granted
			s.armIdleCheck(granted)
			s.dispatch()
		}
	}
}

// dispatch starts every queued job the scheduler selects for the free
// nodes. It runs on reused scratch buffers and pooled completion nodes:
// one dispatch performs no allocation beyond initial buffer growth.
func (s *Server) dispatch() {
	free := s.owned - s.busy
	if free <= 0 || s.queue.Len() == 0 {
		return
	}
	view := s.queue.View()
	s.pickBuf = s.cfg.Scheduler.Select(s.pickBuf[:0], view, free)
	picked := s.pickBuf
	if len(picked) == 0 {
		return
	}
	// Copy the selected jobs out before RemoveAll compacts the queue's
	// backing array under the view.
	s.jobBuf = s.jobBuf[:0]
	for _, idx := range picked {
		s.jobBuf = append(s.jobBuf, view[idx])
	}
	s.queue.RemoveAll(picked)
	for _, j := range s.jobBuf {
		s.busy += j.Nodes
		end := s.engine.Now() + j.Runtime
		s.running[j] = end
		s.scheduleCompletion(j)
	}
}

// scheduleCompletion arms j's completion timer on a recycled node.
func (s *Server) scheduleCompletion(j *job.Job) {
	var n *compNode
	if k := len(s.compFree); k > 0 {
		n = s.compFree[k-1]
		s.compFree = s.compFree[:k-1]
	} else {
		n = &compNode{s: s}
		n.fn = n.run
	}
	n.j = j
	s.engine.Schedule(j.Runtime, n.fn)
}

// complete finishes a job, freeing its nodes at the server level.
func (s *Server) complete(j *job.Job) {
	if s.destroyed {
		return
	}
	s.busy -= j.Nodes
	delete(s.running, j)
	now := s.engine.Now()
	s.completions = append(s.completions, now)
	s.lastDone = now
	if s.completeHook != nil {
		s.completeHook(j)
	}
	// Load queued work onto the freed nodes immediately; waiting for the
	// next scan would idle them for up to a full scan interval.
	s.dispatch()
	if s.cfg.DestroyOnCompletion && len(s.completions) == s.total && s.queue.Len() == 0 && s.busy == 0 {
		if err := s.Destroy(); err != nil {
			panic(fmt.Sprintf("tre: self-destroy of %s: %v", s.cfg.Name, err))
		}
	}
}

// armIdleCheck registers the paper's hourly release timer for one dynamic
// grant: once the block's worth of nodes sit idle, release exactly that
// block; otherwise check again next hour. The timer runs on a recycled
// idleNode instead of a fresh closure per grant.
func (s *Server) armIdleCheck(size int) {
	var n *idleNode
	if k := len(s.idleFree); k > 0 {
		n = s.idleFree[k-1]
		s.idleFree = s.idleFree[:k-1]
	} else {
		n = &idleNode{s: s}
		n.fn = n.run
	}
	n.size = size
	s.engine.Schedule(s.cfg.Params.IdleCheckInterval, n.fn)
}

// Destroy stops the scan loop and releases every node the TRE holds,
// including the initial lease (paper lifecycle step 8).
func (s *Server) Destroy() error {
	if s.destroyed {
		return fmt.Errorf("tre: %s already destroyed", s.cfg.Name)
	}
	s.destroyed = true
	if s.stopScan != nil {
		s.stopScan()
	}
	if s.owned > 0 {
		if err := s.prov.Release(s.cfg.Name, s.owned); err != nil {
			return err
		}
		s.owned = 0
	}
	return nil
}

// Destroyed reports whether the TRE tore itself down.
func (s *Server) Destroyed() bool { return s.destroyed }

// Owned reports the current lease size.
func (s *Server) Owned() int { return s.owned }

// Busy reports nodes running jobs.
func (s *Server) Busy() int { return s.busy }

// QueueLen reports the number of queued (ready, undispatched) jobs.
func (s *Server) QueueLen() int { return s.queue.Len() }

// Submitted reports how many jobs were submitted.
func (s *Server) Submitted() int { return s.submitted }

// Completed reports how many jobs finished so far.
func (s *Server) Completed() int { return len(s.completions) }

// CompletedBy reports how many jobs finished at or before t.
func (s *Server) CompletedBy(t sim.Time) int {
	n := 0
	for _, c := range s.completions {
		if c <= t {
			n++
		}
	}
	return n
}

// Makespan reports the time from first submission to last completion, or 0
// before anything completed.
func (s *Server) Makespan() sim.Time {
	if s.firstSubmit < 0 || s.lastDone <= s.firstSubmit {
		return 0
	}
	return s.lastDone - s.firstSubmit
}

// TasksPerSecond is the MTC throughput metric: completed tasks over the
// makespan.
func (s *Server) TasksPerSecond() float64 {
	ms := s.Makespan()
	if ms <= 0 {
		return 0
	}
	return float64(len(s.completions)) / float64(ms)
}

// RunningEnds snapshots running jobs for backfilling schedulers. The
// snapshot is sorted (end time, then width): s.running is a map, and
// leaking its random iteration order would let jobs with tied end
// times change the backfill shadow window between runs.
func (s *Server) RunningEnds() []sched.RunningJob {
	out := make([]sched.RunningJob, 0, len(s.running))
	for j, end := range s.running {
		out = append(out, sched.RunningJob{End: end, Nodes: j.Nodes})
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].End != out[k].End {
			return out[i].End < out[k].End
		}
		return out[i].Nodes < out[k].Nodes
	})
	return out
}
