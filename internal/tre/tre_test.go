package tre

import (
	"testing"

	"repro/internal/nodepool"
	"repro/internal/csf"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workflow"
)

type fixture struct {
	engine *sim.Engine
	pool   *nodepool.Pool
	acct   *metrics.Accountant
	prov   *csf.ProvisionService
}

func newFixture(t *testing.T, capacity int) *fixture {
	t.Helper()
	engine := sim.New()
	pool, err := nodepool.NewPool(capacity)
	if err != nil {
		t.Fatal(err)
	}
	acct := metrics.NewAccountant(engine.Now)
	prov := csf.NewProvisionService(pool, acct, policy.GrantOrReject, csf.DefaultNodeSetupSeconds)
	return &fixture{engine: engine, pool: pool, acct: acct, prov: prov}
}

func newHTC(t *testing.T, f *fixture, b int, r float64) *Server {
	t.Helper()
	s, err := NewHTCServer(f.engine, f.prov, Config{
		Name:   "htc-test",
		Params: policy.HTCDefaults(b, r),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStartAcquiresInitialResources(t *testing.T) {
	f := newFixture(t, 100)
	s := newHTC(t, f, 40, 1.5)
	if s.Owned() != 40 {
		t.Errorf("Owned = %d, want 40", s.Owned())
	}
	if f.pool.Held("htc-test") != 40 {
		t.Errorf("pool holding = %d, want 40", f.pool.Held("htc-test"))
	}
}

func TestStartFailsWithoutCapacity(t *testing.T) {
	f := newFixture(t, 10)
	s, err := NewHTCServer(f.engine, f.prov, Config{
		Name:   "big",
		Params: policy.HTCDefaults(50, 1.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Error("Start succeeded beyond pool capacity")
	}
}

func TestDoubleStartFails(t *testing.T) {
	f := newFixture(t, 100)
	s := newHTC(t, f, 10, 1.5)
	if err := s.Start(); err == nil {
		t.Error("second Start succeeded")
	}
}

func TestConfigValidation(t *testing.T) {
	f := newFixture(t, 10)
	if _, err := NewHTCServer(f.engine, f.prov, Config{Name: "x"}); err == nil {
		t.Error("zero Params accepted")
	}
	if _, err := NewHTCServer(f.engine, f.prov, Config{Params: policy.HTCDefaults(1, 1)}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestJobRunsAtNextScanAndCompletes(t *testing.T) {
	f := newFixture(t, 100)
	s := newHTC(t, f, 10, 1.5)
	j := &job.Job{ID: 1, Nodes: 4, Runtime: 120}
	s.Submit(j)
	// The job loads at submission (event-driven dispatch) and completes
	// at t=120.
	f.engine.Run(119)
	if s.Completed() != 0 {
		t.Fatalf("completed early: %d", s.Completed())
	}
	if s.Busy() != 4 {
		t.Fatalf("Busy = %d, want 4", s.Busy())
	}
	f.engine.Run(120)
	if s.Completed() != 1 {
		t.Errorf("Completed = %d, want 1", s.Completed())
	}
	if s.Busy() != 0 {
		t.Errorf("Busy = %d, want 0", s.Busy())
	}
	if got := s.CompletedBy(120); got != 1 {
		t.Errorf("CompletedBy(120) = %d, want 1", got)
	}
	if got := s.CompletedBy(119); got != 0 {
		t.Errorf("CompletedBy(119) = %d, want 0", got)
	}
}

func TestDR1GrowsLeaseWhenRatioExceeded(t *testing.T) {
	f := newFixture(t, 1000)
	s := newHTC(t, f, 10, 1.5)
	// Job 1 dispatches on submit; job 2 loads when it completes at t=50.
	// The scan at t=60 sees a 20-node backlog against 10 owned: ratio 2
	// exceeds 1.5, so DR1 = 20 - 10 = 10 and the lease grows to 20.
	for i := 0; i < 4; i++ {
		s.Submit(&job.Job{ID: i + 1, Nodes: 10, Runtime: 50})
	}
	f.engine.Run(60)
	if s.Owned() != 20 {
		t.Errorf("Owned = %d, want 20 after DR1", s.Owned())
	}
	if s.Busy() != 20 {
		t.Errorf("Busy = %d, want 20", s.Busy())
	}
	if s.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1", s.QueueLen())
	}
}

func TestDR2GrowsLeaseForBigJob(t *testing.T) {
	f := newFixture(t, 1000)
	s := newHTC(t, f, 10, 2.0)
	// One 14-node job: ratio 1.4 <= 2.0 but largest 14 > 10 -> DR2 = 4.
	s.Submit(&job.Job{ID: 1, Nodes: 14, Runtime: 50})
	f.engine.Run(60)
	if s.Owned() != 14 {
		t.Errorf("Owned = %d, want 14 after DR2", s.Owned())
	}
	if s.Busy() != 14 {
		t.Errorf("Busy = %d, want 14", s.Busy())
	}
}

func TestIdleCheckReleasesDynamicBlock(t *testing.T) {
	f := newFixture(t, 1000)
	s := newHTC(t, f, 10, 1.5)
	for i := 0; i < 4; i++ {
		s.Submit(&job.Job{ID: i + 1, Nodes: 10, Runtime: 50})
	}
	// Grant of 10 at t=60 (owned 20); all jobs drain well before the
	// idle check at t=60+3600 releases the 10-node block.
	f.engine.Run(3659)
	if s.Owned() != 20 {
		t.Fatalf("Owned = %d before idle check, want 20", s.Owned())
	}
	f.engine.Run(3660)
	if s.Owned() != 10 {
		t.Errorf("Owned = %d after idle check, want 10 (initial only)", s.Owned())
	}
	if f.pool.Held("htc-test") != 10 {
		t.Errorf("pool holding = %d, want 10", f.pool.Held("htc-test"))
	}
}

func TestIdleCheckDefersWhileBusy(t *testing.T) {
	f := newFixture(t, 1000)
	s := newHTC(t, f, 10, 1.5)
	// Long jobs keep the dynamic block busy past the first idle check.
	for i := 0; i < 4; i++ {
		s.Submit(&job.Job{ID: i + 1, Nodes: 10, Runtime: 2 * 3600})
	}
	f.engine.Run(3600) // before any release: lease still grown
	if s.Owned() <= 10 {
		t.Fatalf("Owned = %d at first check, want > 10 (still busy)", s.Owned())
	}
	// The queued fourth job dispatches as the first batch ends; once all
	// jobs drain, an hourly check releases the 20-node block.
	f.engine.Run(6 * 3600)
	if s.Owned() != 10 {
		t.Errorf("Owned = %d after drain, want 10", s.Owned())
	}
}

func TestInitialResourcesNeverReleasedByIdleCheck(t *testing.T) {
	f := newFixture(t, 1000)
	s := newHTC(t, f, 25, 1.5)
	s.Submit(&job.Job{ID: 1, Nodes: 1, Runtime: 10})
	f.engine.Run(14 * 24 * 3600) // two idle weeks
	if s.Owned() != 25 {
		t.Errorf("Owned = %d, want 25 (initial lease kept)", s.Owned())
	}
}

func TestRejectedDynamicRequestLeavesJobQueued(t *testing.T) {
	f := newFixture(t, 12)
	s := newHTC(t, f, 10, 2.0)
	// Needs DR2 of 4 but only 2 free in the pool: rejected.
	s.Submit(&job.Job{ID: 1, Nodes: 14, Runtime: 50})
	f.engine.Run(600)
	if s.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1 (job stuck)", s.QueueLen())
	}
	if f.prov.RejectedRequests() == 0 {
		t.Error("no rejections recorded")
	}
	if s.Owned() != 10 {
		t.Errorf("Owned = %d, want 10", s.Owned())
	}
}

func TestDestroyReleasesEverything(t *testing.T) {
	f := newFixture(t, 1000)
	s := newHTC(t, f, 10, 1.5)
	for i := 0; i < 4; i++ {
		s.Submit(&job.Job{ID: i + 1, Nodes: 10, Runtime: 5000})
	}
	f.engine.Run(60)
	if err := s.Destroy(); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if f.pool.InUse() != 0 {
		t.Errorf("pool in use = %d after destroy, want 0", f.pool.InUse())
	}
	if !s.Destroyed() {
		t.Error("Destroyed() = false")
	}
	if err := s.Destroy(); err == nil {
		t.Error("double Destroy succeeded")
	}
	// Scan loop must be dead: no panic, no further activity.
	f.engine.Run(7200)
}

func TestSubmitAfterDestroyIgnored(t *testing.T) {
	f := newFixture(t, 100)
	s := newHTC(t, f, 10, 1.5)
	if err := s.Destroy(); err != nil {
		t.Fatal(err)
	}
	s.Submit(&job.Job{ID: 1, Nodes: 1, Runtime: 10})
	if s.Submitted() != 0 {
		t.Error("Submit after destroy counted")
	}
}

func TestFirstFitSkipsBlockedHead(t *testing.T) {
	f := newFixture(t, 50)
	s := newHTC(t, f, 10, 100) // huge R: DR1 never fires
	s.Submit(&job.Job{ID: 1, Nodes: 99, Runtime: 10})
	s.Submit(&job.Job{ID: 2, Nodes: 5, Runtime: 10})
	f.engine.Run(600)
	// DR2 asks for 89 nodes but only 40 are free: rejected every scan.
	// First-Fit passes over the blocked 99-node head: the 5-node job ran
	// and completed while the head stays queued.
	if s.Completed() != 1 {
		t.Errorf("Completed = %d, want 1 (small job ran past blocked head)", s.Completed())
	}
	if s.QueueLen() != 1 {
		t.Errorf("QueueLen = %d, want 1 (head stuck)", s.QueueLen())
	}
	if s.Owned() != 10 {
		t.Errorf("Owned = %d, want 10 (DR2 rejected)", s.Owned())
	}
}

func TestMakespanAndThroughput(t *testing.T) {
	f := newFixture(t, 100)
	s := newHTC(t, f, 10, 1.5)
	s.Submit(&job.Job{ID: 1, Nodes: 2, Runtime: 100})
	s.Submit(&job.Job{ID: 2, Nodes: 2, Runtime: 200})
	f.engine.Run(3600)
	// Jobs dispatch on submission (event-driven loading); the last
	// completion lands at t=200.
	if got := s.Makespan(); got != 200 {
		t.Errorf("Makespan = %d, want 200", got)
	}
	want := 2.0 / 200.0
	if got := s.TasksPerSecond(); got != want {
		t.Errorf("TasksPerSecond = %g, want %g", got, want)
	}
}

func TestMakespanZeroBeforeCompletion(t *testing.T) {
	f := newFixture(t, 100)
	s := newHTC(t, f, 10, 1.5)
	if s.Makespan() != 0 || s.TasksPerSecond() != 0 {
		t.Error("metrics nonzero with no completions")
	}
}

func TestMTCWorkflowRunsInDependencyOrder(t *testing.T) {
	f := newFixture(t, 1000)
	m, err := NewMTCServer(f.engine, f.prov, Config{
		Name:   "mtc-test",
		Params: policy.MTCDefaults(10, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	dag := &workflow.DAG{
		Name: "diamond",
		Tasks: []workflow.Task{
			{ID: 1, Type: "a", Runtime: 10, Nodes: 1},
			{ID: 2, Type: "b", Runtime: 20, Nodes: 1, Deps: []int{1}},
			{ID: 3, Type: "c", Runtime: 5, Nodes: 1, Deps: []int{1}},
			{ID: 4, Type: "d", Runtime: 1, Nodes: 1, Deps: []int{2, 3}},
		},
	}
	jobs := dag.Jobs(0)
	ptrs := make([]*job.Job, len(jobs))
	for i := range jobs {
		ptrs[i] = &jobs[i]
	}
	if err := m.SubmitWorkflow(ptrs); err != nil {
		t.Fatal(err)
	}
	if m.QueueLen() != 1 || m.WaitingTasks() != 3 {
		t.Fatalf("queue/waiting = %d/%d, want 1/3", m.QueueLen(), m.WaitingTasks())
	}
	f.engine.Run(3600)
	if m.Completed() != 4 {
		t.Errorf("Completed = %d, want 4", m.Completed())
	}
	if m.WaitingTasks() != 0 {
		t.Errorf("WaitingTasks = %d, want 0", m.WaitingTasks())
	}
}

func TestMTCSelfDestroyReleasesNodes(t *testing.T) {
	f := newFixture(t, 1000)
	m, err := NewMTCServer(f.engine, f.prov, Config{
		Name:                "mtc-auto",
		Params:              policy.MTCDefaults(10, 8),
		DestroyOnCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	j := job.Job{ID: 1, Nodes: 1, Runtime: 10, Class: job.MTC}
	if err := m.SubmitWorkflow([]*job.Job{&j}); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(3600)
	if !m.Destroyed() {
		t.Error("MTC TRE did not self-destroy")
	}
	if f.pool.InUse() != 0 {
		t.Errorf("pool in use = %d, want 0 after self-destroy", f.pool.InUse())
	}
}

func TestMTCDuplicateTaskIDRejected(t *testing.T) {
	f := newFixture(t, 100)
	m, err := NewMTCServer(f.engine, f.prov, Config{
		Name:   "mtc-dup",
		Params: policy.MTCDefaults(10, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	a := job.Job{ID: 1, Nodes: 1, Runtime: 1}
	b := job.Job{ID: 1, Nodes: 1, Runtime: 1}
	if err := m.SubmitWorkflow([]*job.Job{&a, &b}); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestMTCDemandCountsOnlyReadyTasks(t *testing.T) {
	f := newFixture(t, 10000)
	m, err := NewMTCServer(f.engine, f.prov, Config{
		Name:   "mtc-demand",
		Params: policy.MTCDefaults(10, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	// 50 ready tasks + 50 blocked tasks. At the first scan 10 dispatch
	// onto the initial nodes; the 40-task backlog gives ratio 4 > 2, so
	// DR1 = 30 and the lease grows to 40 (blocked tasks are invisible).
	tasks := make([]*job.Job, 0, 100)
	for i := 1; i <= 50; i++ {
		tasks = append(tasks, &job.Job{ID: i, Nodes: 1, Runtime: 1000})
	}
	for i := 51; i <= 100; i++ {
		tasks = append(tasks, &job.Job{ID: i, Nodes: 1, Runtime: 1000, Deps: []int{i - 50}})
	}
	if err := m.SubmitWorkflow(tasks); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(3)
	if m.Owned() != 40 {
		t.Errorf("Owned = %d, want 40 (backlog after dispatch)", m.Owned())
	}
}

func TestMontageThroughDawningCloudTRE(t *testing.T) {
	f := newFixture(t, 10000)
	m, err := NewMTCServer(f.engine, f.prov, Config{
		Name:                "mtc-montage",
		Params:              policy.MTCDefaults(10, 8),
		DestroyOnCompletion: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	dag, err := workflow.PaperMontage(1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := dag.Jobs(0)
	ptrs := make([]*job.Job, len(jobs))
	for i := range jobs {
		ptrs[i] = &jobs[i]
	}
	if err := m.SubmitWorkflow(ptrs); err != nil {
		t.Fatal(err)
	}
	f.engine.Run(6 * 3600)
	if m.Completed() != 1000 {
		t.Fatalf("Completed = %d, want 1000", m.Completed())
	}
	if !m.Destroyed() {
		t.Error("Montage TRE did not self-destroy")
	}
	// The DSP policy converges to the first wave's width: 166 projects
	// from B=10 via DR1 = 166-10 = 156 -> owned 166. Later levels never
	// push ratio past 8 (657/166 < 8).
	acct := f.acct
	acct.CloseAll(f.engine.Now(), true)
	billed := acct.BilledNodeHours("mtc-montage")
	if billed < 100 || billed > 300 {
		t.Errorf("billed = %g node-hours, want ~166 (paper Table 4)", billed)
	}
	tps := m.TasksPerSecond()
	if tps < 1.0 || tps > 4.0 {
		t.Errorf("tasks/s = %.2f, want ~2.5 (paper Table 4)", tps)
	}
}

func TestPoolConservationThroughBusyTraffic(t *testing.T) {
	f := newFixture(t, 500)
	s := newHTC(t, f, 20, 1.2)
	// A burst pattern exercising grants and releases repeatedly.
	for round := 0; round < 10; round++ {
		base := round * 20
		for i := 0; i < 20; i++ {
			jb := &job.Job{ID: base + i + 1, Nodes: (i % 16) + 1, Runtime: int64(100 + i*37)}
			at := int64(round * 5000)
			f.engine.At(at, func() { s.Submit(jb) })
		}
	}
	f.engine.Run(200000)
	if f.pool.InUse() != s.Owned() {
		t.Errorf("pool.InUse %d != server Owned %d", f.pool.InUse(), s.Owned())
	}
	if s.Completed() != 200 {
		t.Errorf("Completed = %d, want 200", s.Completed())
	}
	if s.Busy() != 0 {
		t.Errorf("Busy = %d, want 0 after drain", s.Busy())
	}
}
