package tre

import (
	"fmt"

	"repro/internal/csf"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
)

// taskKey identifies a task across workflow submissions: task IDs only need
// to be unique within one workflow, so the server namespaces them by a
// per-submission sequence number.
type taskKey struct {
	wf, id int
}

// MTCServer is the MTC thin runtime environment: the MTC server plus the
// trigger monitor. A submitted workflow is parsed into constituent tasks;
// tasks whose dependencies are met enter the scheduling queue, and the
// trigger monitor watches completions, releasing dependents stage by stage
// (paper Section 3.1.2). Demand accounting sees every *ready* constituent
// task, the MTC variant of the resource management policy.
type MTCServer struct {
	*Server

	wfSeq      int
	keyOf      map[*job.Job]taskKey // active tasks -> namespaced key
	waiting    map[taskKey]*job.Job // tasks with unmet dependencies
	unmet      map[taskKey]int      // remaining unmet dependency counts
	dependents map[taskKey][]taskKey
	done       map[taskKey]bool
}

// NewMTCServer builds an MTC TRE server (FCFS, 3-second scans unless
// overridden by cfg.Params).
func NewMTCServer(engine *sim.Engine, prov *csf.ProvisionService, cfg Config) (*MTCServer, error) {
	if cfg.Scheduler == nil {
		cfg.Scheduler = sched.FCFS{}
	}
	base, err := newServer(engine, prov, cfg)
	if err != nil {
		return nil, err
	}
	m := &MTCServer{
		Server:     base,
		keyOf:      make(map[*job.Job]taskKey),
		waiting:    make(map[taskKey]*job.Job),
		unmet:      make(map[taskKey]int),
		dependents: make(map[taskKey][]taskKey),
		done:       make(map[taskKey]bool),
	}
	base.completeHook = m.triggerMonitor
	return m, nil
}

// SubmitWorkflow parses one workflow's tasks: ready tasks enter the queue,
// the rest wait on the trigger monitor. Task IDs must be unique within the
// workflow and every dependency must reference a task of the same workflow
// (validate DAGs with workflow.DAG.Validate before converting).
func (m *MTCServer) SubmitWorkflow(tasks []*job.Job) error {
	if m.destroyed {
		return fmt.Errorf("tre: %s destroyed, cannot submit", m.cfg.Name)
	}
	ids := make(map[int]bool, len(tasks))
	for _, t := range tasks {
		if ids[t.ID] {
			return fmt.Errorf("tre: %s: duplicate task ID %d in workflow", m.cfg.Name, t.ID)
		}
		ids[t.ID] = true
	}
	for _, t := range tasks {
		for _, dep := range t.Deps {
			if !ids[dep] {
				return fmt.Errorf("tre: %s: task %d depends on %d, absent from the workflow", m.cfg.Name, t.ID, dep)
			}
		}
	}
	m.wfSeq++
	wf := m.wfSeq
	for _, t := range tasks {
		key := taskKey{wf: wf, id: t.ID}
		m.keyOf[t] = key
		m.noteSubmit()
		m.total++
		if len(t.Deps) == 0 {
			m.queue.Push(t)
			continue
		}
		m.waiting[key] = t
		m.unmet[key] = len(t.Deps)
		for _, dep := range t.Deps {
			depKey := taskKey{wf: wf, id: dep}
			m.dependents[depKey] = append(m.dependents[depKey], key)
		}
	}
	return nil
}

// triggerMonitor fires on every completion: it notifies the MTC server of
// the change, releasing tasks whose dependency sets are now satisfied.
func (m *MTCServer) triggerMonitor(j *job.Job) {
	key, ok := m.keyOf[j]
	if !ok {
		return
	}
	delete(m.keyOf, j)
	m.done[key] = true
	for _, depKey := range m.dependents[key] {
		m.unmet[depKey]--
		if m.unmet[depKey] == 0 {
			t := m.waiting[depKey]
			delete(m.waiting, depKey)
			delete(m.unmet, depKey)
			m.queue.Push(t)
		}
	}
	delete(m.dependents, key)
}

// WaitingTasks reports tasks still blocked on dependencies.
func (m *MTCServer) WaitingTasks() int { return len(m.waiting) }
