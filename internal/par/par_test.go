package par

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		n := 37
		counts := make([]int32, n)
		err := ForEach(workers, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Error("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReportsFailure(t *testing.T) {
	err := ForEach(8, 20, func(i int) error {
		if i == 1 {
			return fmt.Errorf("fail %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail 1" {
		t.Errorf("err = %v, want fail 1", err)
	}
}

func TestForEachStopsDispatchAfterFailure(t *testing.T) {
	const n = 100000
	var ran int32
	err := ForEach(2, n, func(i int) error {
		atomic.AddInt32(&ran, 1)
		if i == 0 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := atomic.LoadInt32(&ran); got == n {
		t.Errorf("all %d tasks ran despite the first one failing", n)
	}
}

func TestForEachSerialShortCircuits(t *testing.T) {
	ran := 0
	err := ForEach(1, 10, func(i int) error {
		ran++
		if i == 2 {
			return fmt.Errorf("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if ran != 3 {
		t.Errorf("ran %d calls after error, want 3", ran)
	}
}
