// Package par provides the bounded fan-out primitive shared by the
// experiment suite and the public multi-system runner. The simulations in
// this repository are embarrassingly parallel — independent system runs
// and parameter-sweep grid points share no state once workloads are
// cloned — so a fixed worker pool with deterministic, index-addressed
// output is all the orchestration they need.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(0), ..., fn(n-1) across at most workers goroutines and
// waits for all of them. Callers get deterministic output by writing
// results into caller-owned slots indexed by i. Once any call fails, no
// further calls start (in-flight ones finish), mirroring the serial
// loop's short-circuit; among the calls that did run, the error of the
// lowest index wins. workers <= 1 (or n <= 1) degrades to a plain serial
// loop on the calling goroutine.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	idx := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !failed.Load(); i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
