// Package clustersim runs N provider instances behind one shared
// virtual clock with a pluggable routing policy — the federated
// counterpart of the single-platform consolidation the paper evaluates.
// Each instance is a full simulation of one registered system (its own
// engine, node pool, accountant and provision service) opened through
// the open/attach/finalize instance API; the orchestrator dispatches
// each service provider's workload to an instance at simulation time and
// interleaves the instances' events in global time order.
//
// # Shared-clock invariants
//
//   - The orchestrator always advances the instance whose next event is
//     earliest; ties are broken by InstanceID, so the global interleaving
//     is a deterministic function of the inputs.
//   - A request (one provider's whole workload, arriving at its first
//     submission time) is dispatched before any instance event with the
//     same or a later timestamp, so the chosen instance's clock has
//     never passed the request's arrival when Attach runs.
//   - No instance's clock can pass an undispatched request's arrival
//     time: routing policies observe instance state as of dispatch time,
//     never from an instance's future.
//   - Per-instance randomness derives from the run seed and the stable
//     InstanceID alone (see ProviderInstance.Seed), so an instance's
//     results are independent of how many sibling instances exist and of
//     how their events interleave. Federating N identical providers over
//     N instances reproduces N independent runs byte-identically — the
//     shared clock adds no drift (proved in the test suite).
//
// # Routing policies
//
// A RoutingPolicy maps each request to an instance given a snapshot of
// every instance's observable state. Policies register by name in the
// package registry (RegisterPolicy), mirroring internal/registry's
// conventions; round-robin, least-loaded, cost-aware, spot-price-aware
// and pin-to-owner ship built in. To add one:
//
//	clustersim.RegisterPolicy("my-policy", func(cfg clustersim.PolicyConfig) clustersim.RoutingPolicy {
//		return myPolicy{instances: cfg.Instances}
//	})
//
// and reference it by name from a scenario spec's federation block.
package clustersim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/sim"
	"repro/internal/spot"
	"repro/internal/systems"
)

// InstanceID identifies a provider instance within a federation: the
// 0-based position in the federation's instance list, stable for the
// life of the run.
type InstanceID int

// DefaultCapacity is the node pool size of an instance that does not
// constrain capacity — the paper's "large cloud platform", matching the
// DRP/DawningCloud never-reject default.
const DefaultCapacity = 1 << 20

// DefaultWindow is the aggregation window for ClusterWindow events.
const DefaultWindow = sim.Day

// instanceSeedStride spaces per-instance seeds derived from the run
// seed. It is coprime to the per-workload stride inside an instance
// (7919, see internal/spot), so no two random streams in a federation
// share a seed.
const instanceSeedStride = 104729

// Backend is the open simulation a ProviderInstance wraps: a system
// that can accept provider workloads incrementally and be driven by an
// external loop through the sim step primitives. systems.FixedInstance,
// systems.DRPInstance, core.Instance and spot.Instance all satisfy it.
type Backend interface {
	// Engine exposes the instance's simulation engine for stepping.
	Engine() *sim.Engine
	// Attach admits one (already validated) provider workload at the
	// engine's current virtual time.
	Attach(wl *systems.Workload) error
	// Finalize settles accounting at horizon and assembles the Result.
	Finalize(horizon sim.Time) (systems.Result, error)
	// PoolLoad snapshots node pool occupancy.
	PoolLoad() (inUse, capacity int)
}

// OpenBackend opens one instance's backend over a pool of capacity
// nodes. opts carries the instance's derived seed.
type OpenBackend func(capacity int, opts systems.Options) (Backend, error)

// openBackend maps a canonical system name to its instance opener for
// the built-in systems. (The blocking registry.Runner interface cannot
// back a steppable instance, so federation support is a second, smaller
// mapping; extensions with open/attach/finalize support can be added
// here when the need arises.)
// FederatedSystems lists the registered systems with federated instance
// support, in presentation order.
func FederatedSystems() []string {
	return []string{"DCS", "SSP", "DRP", "DawningCloud", spot.Name}
}

// CanFederate reports whether the named system can back a federated
// provider instance (has open/attach/finalize support).
func CanFederate(system string) bool {
	_, err := openBackend(system)
	return err == nil
}

func openBackend(system string) (OpenBackend, error) {
	switch system {
	case "DCS":
		return func(capacity int, opts systems.Options) (Backend, error) {
			return systems.OpenFixed("DCS", true, capacity, opts)
		}, nil
	case "SSP":
		return func(capacity int, opts systems.Options) (Backend, error) {
			return systems.OpenFixed("SSP", false, capacity, opts)
		}, nil
	case "DRP":
		return func(capacity int, opts systems.Options) (Backend, error) {
			return systems.OpenDRP(capacity, opts)
		}, nil
	case "DawningCloud":
		return func(capacity int, opts systems.Options) (Backend, error) {
			return core.Open(capacity, core.Config{Options: opts})
		}, nil
	case spot.Name:
		return func(capacity int, opts systems.Options) (Backend, error) {
			return spot.Open(capacity, opts)
		}, nil
	}
	return nil, fmt.Errorf("clustersim: system %q has no federated instance support (supported: %s)",
		system, strings.Join(FederatedSystems(), ", "))
}

// InstanceConfig describes one provider instance of a federation.
type InstanceConfig struct {
	// Name labels the instance in results and events; empty derives
	// "instance-<id>".
	Name string
	// Capacity is the instance's node pool size; zero means
	// DefaultCapacity (never rejecting).
	Capacity int
	// PricePerNodeHour is the instance's on-demand rate, observed by the
	// cost-aware routing policy; zero means the paper's 2009 EC2 rate
	// via internal/cost (two instances per node).
	PricePerNodeHour float64
}

// Config describes a federation run.
type Config struct {
	// System is the registered system name every instance runs
	// (federations are homogeneous; comparing systems is the scenario
	// layer's job).
	System string
	// Policy is the routing policy name (see RegisterPolicy).
	Policy string
	// Instances lists the federation's provider instances. At least one
	// is required.
	Instances []InstanceConfig
	// Options are the shared run options. Options.Seed is the run seed
	// every instance's randomness derives from; Options.PoolCapacity is
	// ignored (capacity is per instance).
	Options systems.Options
	// Window is the ClusterWindow aggregation period; zero means
	// DefaultWindow (one day).
	Window sim.Time
	// Events receives ClusterWindow aggregates; nil runs unobserved.
	Events events.Sink
}

// ProviderInstance is one federated provider: a stable identity plus the
// open backend simulation it wraps.
type ProviderInstance struct {
	id      InstanceID
	name    string
	seed    int64
	price   float64
	backend Backend

	attached   int
	dispatched int
}

// ID reports the instance's stable identity.
func (p *ProviderInstance) ID() InstanceID { return p.id }

// Name reports the instance's label.
func (p *ProviderInstance) Name() string { return p.name }

// Seed reports the instance's derived seed: a pure function of the run
// seed and the InstanceID, so per-instance randomness is independent of
// instance count and event interleaving.
func (p *ProviderInstance) Seed() int64 { return p.seed }

// Backend exposes the wrapped open simulation.
func (p *ProviderInstance) Backend() Backend { return p.backend }

// InstanceState is one instance's observable state in the snapshot a
// routing policy receives at dispatch time.
type InstanceState struct {
	ID   InstanceID
	Name string
	// Now is the instance's virtual clock.
	Now sim.Time
	// NodesInUse and Capacity snapshot the instance's node pool.
	NodesInUse int
	Capacity   int
	// PricePerNodeHour is the instance's on-demand rate.
	PricePerNodeHour float64
	// SpotPrice is the instance's current spot-market price (its
	// per-instance PriceWalk advanced to the dispatch hour).
	SpotPrice float64
	// Attached counts provider workloads attached so far; Dispatched
	// counts requests routed here (equal unless an Attach failed).
	Attached   int
	Dispatched int
	// PendingEvents is the instance's event queue length.
	PendingEvents int
}

// Request is one dispatch unit: a whole service provider workload
// arriving at its first submission time.
type Request struct {
	// Index is the workload's position in the submitted set.
	Index int
	// Time is the workload's first submission.
	Time sim.Time
	// Workload is the provider's workload (read-only).
	Workload *systems.Workload
	// Owner is the instance this provider belongs to — the degenerate
	// pin-to-owner policy routes here, and consolidation-vs-federation
	// studies use it to model "everyone keeps their own provider".
	Owner InstanceID
}

// Dispatch records one routing decision.
type Dispatch struct {
	Time     sim.Time
	Workload string
	Instance InstanceID
}

// InstanceResult is one instance's finalized result.
type InstanceResult struct {
	ID         InstanceID
	Name       string
	Dispatched int
	Result     systems.Result
}

// ClusterResult is a finished federation run.
type ClusterResult struct {
	System  string
	Policy  string
	Horizon sim.Time
	// Instances holds each instance's own Result, in InstanceID order.
	Instances []InstanceResult
	// Merged aggregates the federation as if it were one platform:
	// provider rows in original workload order, totals summed across
	// instances. PeakNodes is the sum of per-instance peaks — the node
	// count the federation must be able to hold simultaneously in the
	// worst case — since separate pools peak at different hours.
	Merged systems.Result
	// Dispatches is the routing log, in dispatch order.
	Dispatches []Dispatch
	// Windows is the number of ClusterWindow aggregates emitted.
	Windows int
	// Steps counts the engine events executed through the shared clock
	// across every instance (the federation's total event volume).
	Steps int64
}

// ClusterSim orchestrates N provider instances behind one shared clock.
// The zero value is not usable; construct with New.
type ClusterSim struct {
	cfg       Config
	system    string
	policy    RoutingPolicy
	instances []*ProviderInstance

	// walks are the per-instance spot price processes the routing
	// snapshot exposes; walkHour tracks how far each has been advanced.
	walks    []*spot.PriceWalk
	walkHour []int64
}

// New builds a federation from cfg: every instance's backend is opened
// (empty, clock at zero) and the routing policy is instantiated.
func New(cfg Config) (*ClusterSim, error) {
	if len(cfg.Instances) == 0 {
		return nil, fmt.Errorf("clustersim: federation needs at least one instance")
	}
	open, err := openBackend(cfg.System)
	if err != nil {
		return nil, err
	}
	policy, err := NewPolicy(cfg.Policy, PolicyConfig{
		Instances: len(cfg.Instances),
		Seed:      cfg.Options.Seed,
	})
	if err != nil {
		return nil, err
	}
	c := &ClusterSim{
		cfg:       cfg,
		system:    cfg.System,
		policy:    policy,
		instances: make([]*ProviderInstance, 0, len(cfg.Instances)),
		walks:     make([]*spot.PriceWalk, len(cfg.Instances)),
		walkHour:  make([]int64, len(cfg.Instances)),
	}
	for i, ic := range cfg.Instances {
		name := ic.Name
		if name == "" {
			name = fmt.Sprintf("instance-%d", i)
		}
		capacity := ic.Capacity
		if capacity == 0 {
			capacity = DefaultCapacity
		}
		price := ic.PricePerNodeHour
		if price == 0 {
			price = defaultPricePerNodeHour()
		}
		seed := cfg.Options.Seed + int64(i)*instanceSeedStride
		opts := cfg.Options
		opts.Seed = seed
		opts.PoolCapacity = capacity
		backend, err := open(capacity, opts)
		if err != nil {
			return nil, fmt.Errorf("clustersim: open instance %q: %w", name, err)
		}
		c.instances = append(c.instances, &ProviderInstance{
			id:      InstanceID(i),
			name:    name,
			seed:    seed,
			price:   price,
			backend: backend,
		})
		c.walks[i] = spot.NewPriceWalk(seed)
	}
	return c, nil
}

// Instances exposes the federation's provider instances in ID order.
func (c *ClusterSim) Instances() []*ProviderInstance { return c.instances }

// stepCheckEvery matches the kernels' context-poll cadence.
const stepCheckEvery = 4096

// Run simulates the federation over the workloads: requests (one per
// workload, at its first submission) are routed by the policy and the
// instances' events interleave in global (time, InstanceID) order until
// every queue drains past the horizon.
//
// owners optionally pins each workload (by index) to a home instance —
// the pin-to-owner policy routes there, and any policy may consult
// Request.Owner. nil derives owner i mod N, the natural assignment when
// the workload list groups one provider per instance.
func (c *ClusterSim) Run(ctx context.Context, workloads []systems.Workload, owners []InstanceID) (*ClusterResult, error) {
	if ctx == nil {
		ctx = context.Background() //dclint:allow ctxfirst -- nil-ctx guard: documented to treat nil as no cancellation
	}
	if err := systems.ValidateWorkloads(workloads); err != nil {
		return nil, err
	}
	if owners != nil && len(owners) != len(workloads) {
		return nil, fmt.Errorf("clustersim: %d owners for %d workloads", len(owners), len(workloads))
	}
	n := len(c.instances)
	requests := make([]Request, len(workloads))
	for i := range workloads {
		owner := InstanceID(i % n)
		if owners != nil {
			owner = owners[i]
		}
		if owner < 0 || int(owner) >= n {
			return nil, fmt.Errorf("clustersim: workload %s: owner %d out of range [0,%d)", workloads[i].Name, owner, n)
		}
		requests[i] = Request{
			Index:    i,
			Time:     workloads[i].FirstSubmit(),
			Workload: &workloads[i],
			Owner:    owner,
		}
	}
	sort.SliceStable(requests, func(i, j int) bool {
		if requests[i].Time != requests[j].Time {
			return requests[i].Time < requests[j].Time
		}
		return requests[i].Index < requests[j].Index
	})
	horizon := c.cfg.Options.HorizonFor(workloads)
	window := c.cfg.Window
	if window <= 0 {
		window = DefaultWindow
	}

	var (
		dispatches  = make([]Dispatch, 0, len(requests))
		homes       = make([]InstanceID, len(workloads))
		states      = make([]InstanceState, n)
		windowStart sim.Time
		windows     int
		steps       int
		done        = ctx.Done()
		ri          int
	)
	flushWindows := func(t sim.Time) {
		for t >= windowStart+window {
			end := windowStart + window
			c.emitWindow(windows, windowStart, end)
			windows++
			windowStart = end
		}
	}
	for {
		// Earliest next event across instances; strict < keeps the
		// lowest InstanceID on ties.
		best := -1
		var bt sim.Time
		for i, inst := range c.instances {
			if t, ok := inst.backend.Engine().PeekNextTime(); ok && (best < 0 || t < bt) {
				best, bt = i, t
			}
		}
		// Requests dispatch before instance events at the same instant,
		// so the target instance's clock has never passed the arrival.
		if ri < len(requests) && (best < 0 || requests[ri].Time <= bt) {
			req := requests[ri]
			ri++
			flushWindows(req.Time)
			target := c.route(req, states)
			inst := c.instances[target]
			inst.dispatched++
			if err := inst.backend.Attach(req.Workload); err != nil {
				return nil, fmt.Errorf("clustersim: dispatch %s to %s: %w", req.Workload.Name, inst.name, err)
			}
			inst.attached++
			homes[req.Index] = target
			dispatches = append(dispatches, Dispatch{Time: req.Time, Workload: req.Workload.Name, Instance: target})
			continue
		}
		if best < 0 || bt > horizon {
			break
		}
		if steps++; steps%stepCheckEvery == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("clustersim: %s federation aborted: %w", c.system, ctx.Err())
			default:
			}
		}
		flushWindows(bt)
		c.instances[best].backend.Engine().Step()
	}
	flushWindows(horizon)
	if windowStart < horizon {
		c.emitWindow(windows, windowStart, horizon)
		windows++
	}

	result := &ClusterResult{
		System:     c.system,
		Policy:     c.cfg.Policy,
		Horizon:    horizon,
		Dispatches: dispatches,
		Windows:    windows,
		Steps:      int64(steps),
	}
	for _, inst := range c.instances {
		// Settle the instance clock at the horizon (no events at or
		// before it remain) exactly as a blocking run would.
		inst.backend.Engine().Run(horizon)
		res, err := inst.backend.Finalize(horizon)
		if err != nil {
			return nil, fmt.Errorf("clustersim: finalize instance %s: %w", inst.name, err)
		}
		result.Instances = append(result.Instances, InstanceResult{
			ID:         inst.id,
			Name:       inst.name,
			Dispatched: inst.dispatched,
			Result:     res,
		})
	}
	result.Merged = c.merge(workloads, homes, horizon, result.Instances)
	return result, nil
}

// route snapshots instance state and asks the policy for a target,
// clamping an out-of-range answer to the request's owner.
func (c *ClusterSim) route(req Request, states []InstanceState) InstanceID {
	hour := req.Time / sim.Hour
	for i, inst := range c.instances {
		for c.walkHour[i] < hour {
			c.walks[i].Tick()
			c.walkHour[i]++
		}
		inUse, capacity := inst.backend.PoolLoad()
		states[i] = InstanceState{
			ID:               inst.id,
			Name:             inst.name,
			Now:              inst.backend.Engine().Now(),
			NodesInUse:       inUse,
			Capacity:         capacity,
			PricePerNodeHour: inst.price,
			SpotPrice:        c.walks[i].Price(),
			Attached:         inst.attached,
			Dispatched:       inst.dispatched,
			PendingEvents:    inst.backend.Engine().Len(),
		}
	}
	target := c.policy.Route(req, states)
	if target < 0 || int(target) >= len(c.instances) {
		target = req.Owner
	}
	return target
}

// emitWindow publishes one ClusterWindow aggregate.
func (c *ClusterSim) emitWindow(index int, start, end sim.Time) {
	if c.cfg.Events == nil {
		return
	}
	ev := events.ClusterWindow{
		System:     c.system,
		Policy:     c.cfg.Policy,
		Index:      index,
		Start:      start,
		End:        end,
		Dispatched: make([]int, len(c.instances)),
		NodesInUse: make([]int, len(c.instances)),
	}
	for i, inst := range c.instances {
		ev.Dispatched[i] = inst.dispatched
		inUse, _ := inst.backend.PoolLoad()
		ev.NodesInUse[i] = inUse
	}
	c.cfg.Events.Emit(ev)
}

// merge folds the per-instance results into one federation-wide Result:
// provider rows in original workload order, totals summed.
func (c *ClusterSim) merge(workloads []systems.Workload, homes []InstanceID, horizon sim.Time, instances []InstanceResult) systems.Result {
	merged := systems.Result{System: c.system, Horizon: horizon}
	for i := range workloads {
		res := instances[homes[i]].Result
		if pr, ok := res.Provider(workloads[i].Name); ok {
			merged.Providers = append(merged.Providers, pr)
		}
	}
	var overhead float64
	for _, ir := range instances {
		merged.TotalNodeHours += ir.Result.TotalNodeHours
		merged.PeakNodes += ir.Result.PeakNodes
		merged.TotalNodesAdjusted += ir.Result.TotalNodesAdjusted
		merged.RejectedRequests += ir.Result.RejectedRequests
		overhead += ir.Result.OverheadSeconds
	}
	merged.OverheadSeconds = overhead
	if horizon > 0 {
		merged.OverheadPerHour = overhead / (float64(horizon) / 3600)
	}
	return merged
}
