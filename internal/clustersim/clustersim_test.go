package clustersim

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/spot"
	"repro/internal/systems"
)

// htcWorkload builds a hand-traceable HTC provider: two jobs starting at
// first, each filling the provider's fixed runtime environment.
func htcWorkload(name string, first sim.Time, nodes int) systems.Workload {
	return systems.Workload{
		Name:  name,
		Class: job.HTC,
		Jobs: []job.Job{
			{ID: 1, Submit: first, Runtime: 1800, Nodes: nodes},
			{ID: 2, Submit: first + 600, Runtime: 1800, Nodes: nodes},
		},
		FixedNodes: nodes,
		Params:     policy.HTCDefaults(2, 1.5),
	}
}

// mtcWorkload builds a 3-task chain workflow provider.
func mtcWorkload(name string, first sim.Time) systems.Workload {
	return systems.Workload{
		Name:  name,
		Class: job.MTC,
		Jobs: []job.Job{
			{ID: 1, Submit: first, Runtime: 60, Nodes: 1, Class: job.MTC, Workflow: "w"},
			{ID: 2, Submit: first, Runtime: 60, Nodes: 2, Class: job.MTC, Workflow: "w", Deps: []int{1}},
			{ID: 3, Submit: first, Runtime: 60, Nodes: 1, Class: job.MTC, Workflow: "w", Deps: []int{2}},
		},
		FixedNodes: 2,
		Params:     policy.MTCDefaults(1, 2),
	}
}

func instanceIDs(dispatches []Dispatch) []InstanceID {
	out := make([]InstanceID, len(dispatches))
	for i, d := range dispatches {
		out[i] = d.Instance
	}
	return out
}

func equalIDs(a, b []InstanceID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMockStudyDispatchSequences is the mock-study harness of the issue:
// small hand-traceable workloads replay through every built-in routing
// policy against hand-coded expected dispatch sequences.
//
// The trace, common to the first three policies (3 DCS instances; each
// provider's runtime environment allocates exactly FixedNodes at its
// first submission and holds them):
//
//	t=0:    p0 (8 nodes) arrives — all instances idle
//	t=600:  p1 (4 nodes) arrives — instance loads {i0:8, i1:0, i2:0}
//	t=1200: p2 (6 nodes) arrives — loads {i0:8, i1:4, i2:0}
//	t=1800: p3 (2 nodes) arrives — loads {i0:8, i1:4, i2:6}
func TestMockStudyDispatchSequences(t *testing.T) {
	workloads := func() []systems.Workload {
		return []systems.Workload{
			htcWorkload("p0", 0, 8),
			htcWorkload("p1", 600, 4),
			htcWorkload("p2", 1200, 6),
			htcWorkload("p3", 1800, 2),
		}
	}
	run := func(t *testing.T, policyName string, instances []InstanceConfig, owners []InstanceID) []InstanceID {
		t.Helper()
		cs, err := New(Config{
			System:    "DCS",
			Policy:    policyName,
			Instances: instances,
			Options:   systems.Options{Seed: 42, Horizon: 3 * sim.Day},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		res, err := cs.Run(context.Background(), workloads(), owners)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return instanceIDs(res.Dispatches)
	}
	three := []InstanceConfig{{Name: "a"}, {Name: "b"}, {Name: "c"}}

	t.Run(PolicyRoundRobin, func(t *testing.T) {
		// Request k goes to instance k mod 3, regardless of state.
		want := []InstanceID{0, 1, 2, 0}
		if got := run(t, PolicyRoundRobin, three, nil); !equalIDs(got, want) {
			t.Fatalf("round-robin dispatches = %v, want %v", got, want)
		}
	})
	t.Run(PolicyLeastLoaded, func(t *testing.T) {
		// t=0: all idle -> i0 (lowest ID). t=600: {8,0,0} -> i1.
		// t=1200: {8,4,0} -> i2. t=1800: {8,4,6} -> i1 (4 is minimal).
		want := []InstanceID{0, 1, 2, 1}
		if got := run(t, PolicyLeastLoaded, three, nil); !equalIDs(got, want) {
			t.Fatalf("least-loaded dispatches = %v, want %v", got, want)
		}
	})
	t.Run(PolicyCostAware, func(t *testing.T) {
		// Prices {i0: 0.20, i1: 0.10, i2: 0.10}: i1 and i2 tie as
		// cheapest, so load breaks the tie among them. t=0: both idle ->
		// i1 (lowest ID). t=600: i1 holds 8 -> i2. t=1200: {i1:8, i2:4}
		// -> i2. t=1800: {i1:8, i2:10} -> i1.
		priced := []InstanceConfig{
			{Name: "a", PricePerNodeHour: 0.20},
			{Name: "b", PricePerNodeHour: 0.10},
			{Name: "c", PricePerNodeHour: 0.10},
		}
		want := []InstanceID{1, 2, 2, 1}
		if got := run(t, PolicyCostAware, priced, nil); !equalIDs(got, want) {
			t.Fatalf("cost-aware dispatches = %v, want %v", got, want)
		}
	})
	t.Run(PolicyPinToOwner, func(t *testing.T) {
		owners := []InstanceID{2, 0, 2, 1}
		if got := run(t, PolicyPinToOwner, three, owners); !equalIDs(got, owners) {
			t.Fatalf("pin-to-owner dispatches = %v, want %v", got, owners)
		}
	})
	t.Run(PolicySpotPriceAware, func(t *testing.T) {
		// Providers arrive in different market hours, so each dispatch
		// reads each instance's PriceWalk advanced to that hour. The
		// expected sequence is recomputed here from the exported walks —
		// the same observable the policy sees — and must route at least
		// two distinct instances for the case to stay meaningful.
		spread := []systems.Workload{
			htcWorkload("p0", 0, 8),
			htcWorkload("p1", 2*sim.Hour, 4),
			htcWorkload("p2", 5*sim.Hour, 6),
			htcWorkload("p3", 9*sim.Hour, 2),
		}
		cs, err := New(Config{
			System:    "DCS",
			Policy:    PolicySpotPriceAware,
			Instances: three,
			Options:   systems.Options{Seed: 42, Horizon: 3 * sim.Day},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		walks := make([]*spot.PriceWalk, len(three))
		hours := make([]int64, len(three))
		for i, inst := range cs.Instances() {
			walks[i] = spot.NewPriceWalk(inst.Seed())
		}
		var want []InstanceID
		for _, first := range []sim.Time{0, 2 * sim.Hour, 5 * sim.Hour, 9 * sim.Hour} {
			hour := first / sim.Hour
			best := 0
			for i := range walks {
				for hours[i] < hour {
					walks[i].Tick()
					hours[i]++
				}
			}
			for i := 1; i < len(walks); i++ {
				if walks[i].Price() < walks[best].Price() {
					best = i
				}
			}
			want = append(want, InstanceID(best))
		}
		res, err := cs.Run(context.Background(), spread, nil)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := instanceIDs(res.Dispatches); !equalIDs(got, want) {
			t.Fatalf("spot-price-aware dispatches = %v, want %v", got, want)
		}
		distinct := make(map[InstanceID]bool)
		for _, id := range want {
			distinct[id] = true
		}
		if len(distinct) < 2 {
			t.Fatalf("degenerate spot case: all dispatches to %v; pick a different seed", want)
		}
	})
}

// TestFederationNoDriftInvariant is the sanity invariant of the issue:
// a federation of N providers pinned one-per-instance (via pin-to-owner,
// and via round-robin whose k mod N assignment coincides when providers
// arrive in index order) reproduces N independent runs byte-identically.
// The shared clock adds no drift.
func TestFederationNoDriftInvariant(t *testing.T) {
	for _, system := range []string{"DCS", "SSP", "DawningCloud", "DRP", spot.Name} {
		t.Run(system, func(t *testing.T) {
			// First submissions strictly increase with index so the
			// round-robin assignment (dispatch order) equals the owner
			// assignment (index order).
			workloads := []systems.Workload{
				htcWorkload("alpha", 0, 8),
				mtcWorkload("beta", 600),
				htcWorkload("gamma", 1200, 6),
			}
			const capacity = 64
			horizon := sim.Time(3 * sim.Day)
			opts := systems.Options{Seed: 42, Horizon: horizon, PoolCapacity: capacity}

			for _, policyName := range []string{PolicyPinToOwner, PolicyRoundRobin} {
				cs, err := New(Config{
					System: system,
					Policy: policyName,
					Instances: []InstanceConfig{
						{Name: "i0", Capacity: capacity},
						{Name: "i1", Capacity: capacity},
						{Name: "i2", Capacity: capacity},
					},
					Options: systems.Options{Seed: 42, Horizon: horizon},
				})
				if err != nil {
					t.Fatalf("New(%s): %v", policyName, err)
				}
				res, err := cs.Run(context.Background(), systems.CloneWorkloads(workloads), nil)
				if err != nil {
					t.Fatalf("Run(%s): %v", policyName, err)
				}
				for i := range workloads {
					if res.Dispatches[i].Instance != InstanceID(i) {
						t.Fatalf("%s: request %d dispatched to %d, want %d",
							policyName, i, res.Dispatches[i].Instance, i)
					}
					// The independent run: the same provider alone on the
					// same system, with the instance's derived seed.
					solo := opts
					solo.Seed = cs.Instances()[i].Seed()
					want := runIndependent(t, system, workloads[i].Clone(), solo)
					got := res.Instances[i].Result
					wantJSON, err := json.Marshal(want)
					if err != nil {
						t.Fatalf("marshal: %v", err)
					}
					gotJSON, err := json.Marshal(got)
					if err != nil {
						t.Fatalf("marshal: %v", err)
					}
					if string(wantJSON) != string(gotJSON) {
						t.Errorf("%s instance %d drifted from the independent run:\nfederated:   %s\nindependent: %s",
							policyName, i, gotJSON, wantJSON)
					}
					// The merged view carries the same provider row.
					pr, ok := res.Merged.Provider(workloads[i].Name)
					if !ok {
						t.Fatalf("merged result missing provider %s", workloads[i].Name)
					}
					soloPR, _ := want.Provider(workloads[i].Name)
					if pr != soloPR {
						t.Errorf("merged provider row %s = %+v, want %+v", workloads[i].Name, pr, soloPR)
					}
				}
			}
		})
	}
}

// runIndependent runs one provider alone through the registered blocking
// runner for the system.
func runIndependent(t *testing.T, system string, wl systems.Workload, opts systems.Options) systems.Result {
	t.Helper()
	var (
		res systems.Result
		err error
	)
	ctx := context.Background()
	wls := []systems.Workload{wl}
	switch system {
	case "DCS":
		res, err = systems.RunDCS(ctx, wls, opts)
	case "SSP":
		res, err = systems.RunSSP(ctx, wls, opts)
	case "DRP":
		res, err = systems.RunDRP(ctx, wls, opts)
	case "DawningCloud":
		res, err = core.Run(ctx, wls, core.Config{Options: opts})
	case spot.Name:
		res, err = spot.Run(ctx, wls, opts)
	default:
		t.Fatalf("unknown system %s", system)
	}
	if err != nil {
		t.Fatalf("independent %s run: %v", system, err)
	}
	return res
}


// TestClusterWindowEvents checks the per-window aggregates: indexes are
// contiguous, bounds tile [0, horizon], dispatch counts are cumulative
// and the count matches ClusterResult.Windows.
func TestClusterWindowEvents(t *testing.T) {
	var windows []events.ClusterWindow
	cs, err := New(Config{
		System:    "DCS",
		Policy:    PolicyRoundRobin,
		Instances: []InstanceConfig{{Name: "a"}, {Name: "b"}},
		Options:   systems.Options{Seed: 1, Horizon: 3 * sim.Day},
		Window:    sim.Day,
		Events: func(ev events.Event) {
			if w, ok := ev.(events.ClusterWindow); ok {
				windows = append(windows, w)
			}
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := cs.Run(context.Background(), []systems.Workload{
		htcWorkload("p0", 0, 4),
		htcWorkload("p1", sim.Day+600, 4),
	}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(windows) == 0 {
		t.Fatal("no ClusterWindow events emitted")
	}
	if len(windows) != res.Windows {
		t.Fatalf("emitted %d windows, result reports %d", len(windows), res.Windows)
	}
	var prev events.ClusterWindow
	total := 0
	for i, w := range windows {
		if w.Index != i {
			t.Errorf("window %d has index %d", i, w.Index)
		}
		if i == 0 {
			if w.Start != 0 {
				t.Errorf("first window starts at %d", w.Start)
			}
		} else if w.Start != prev.End {
			t.Errorf("window %d starts at %d, previous ended at %d", i, w.Start, prev.End)
		}
		if len(w.Dispatched) != 2 || len(w.NodesInUse) != 2 {
			t.Fatalf("window %d arity: %+v", i, w)
		}
		sum := w.Dispatched[0] + w.Dispatched[1]
		if sum < total {
			t.Errorf("window %d dispatch count %d dropped below %d", i, sum, total)
		}
		total = sum
		prev = w
	}
	if last := windows[len(windows)-1]; last.End != res.Horizon {
		t.Errorf("last window ends at %d, horizon %d", last.End, res.Horizon)
	}
	if total != 2 {
		t.Errorf("final cumulative dispatches = %d, want 2", total)
	}
}

// TestPolicyRegistry exercises the registration conventions shared with
// internal/registry.
func TestPolicyRegistry(t *testing.T) {
	builtins := []string{PolicyRoundRobin, PolicyLeastLoaded, PolicyCostAware, PolicySpotPriceAware, PolicyPinToOwner}
	names := PolicyNames()
	for i, want := range builtins {
		if i >= len(names) || names[i] != want {
			t.Fatalf("PolicyNames() = %v, want prefix %v", names, builtins)
		}
	}
	for _, name := range builtins {
		if !HasPolicy(name) {
			t.Errorf("HasPolicy(%q) = false", name)
		}
	}
	if !HasPolicy("Round-Robin") {
		t.Error("policy lookup is not case-insensitive")
	}
	if _, err := NewPolicy("no-such-policy", PolicyConfig{Instances: 1}); err == nil {
		t.Error("unknown policy did not error")
	} else if want := PolicyRoundRobin; !strings.Contains(err.Error(), want) {
		t.Errorf("unknown-policy error %q does not list %q", err, want)
	}
	if err := RegisterPolicy("", func(PolicyConfig) RoutingPolicy { return pinToOwner{} }); err == nil {
		t.Error("empty name accepted")
	}
	if err := RegisterPolicy("has space", func(PolicyConfig) RoutingPolicy { return pinToOwner{} }); err == nil {
		t.Error("whitespace name accepted")
	}
	if err := RegisterPolicy("nil-factory", nil); err == nil {
		t.Error("nil factory accepted")
	}
	if err := RegisterPolicy("ROUND-ROBIN", func(PolicyConfig) RoutingPolicy { return pinToOwner{} }); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	custom := fmt.Sprintf("custom-%d", len(names))
	if err := RegisterPolicy(custom, func(PolicyConfig) RoutingPolicy { return pinToOwner{} }); err != nil {
		t.Fatalf("registering custom policy: %v", err)
	}
	if _, err := NewPolicy(custom, PolicyConfig{Instances: 1}); err != nil {
		t.Fatalf("resolving custom policy: %v", err)
	}
}

// TestRunValidation covers the orchestrator's input checks.
func TestRunValidation(t *testing.T) {
	if _, err := New(Config{System: "DCS", Policy: PolicyRoundRobin}); err == nil {
		t.Error("federation with no instances accepted")
	}
	if _, err := New(Config{System: "no-such-system", Policy: PolicyRoundRobin, Instances: []InstanceConfig{{}}}); err == nil {
		t.Error("unknown system accepted")
	}
	if _, err := New(Config{System: "DCS", Policy: "no-such-policy", Instances: []InstanceConfig{{}}}); err == nil {
		t.Error("unknown policy accepted")
	}
	cs, err := New(Config{System: "DCS", Policy: PolicyRoundRobin, Instances: []InstanceConfig{{}, {}}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wls := []systems.Workload{htcWorkload("p0", 0, 4)}
	if _, err := cs.Run(context.Background(), wls, []InstanceID{5}); err == nil {
		t.Error("out-of-range owner accepted")
	}
	if _, err := cs.Run(context.Background(), wls, []InstanceID{0, 1}); err == nil {
		t.Error("owner/workload length mismatch accepted")
	}
	if _, err := cs.Run(context.Background(), nil, nil); err == nil {
		t.Error("empty workload set accepted")
	}
}
