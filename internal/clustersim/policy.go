package clustersim

import (
	"fmt"
	"strings"
	"sync"
	"unicode"

	"repro/internal/cost"
)

// RoutingPolicy maps each request to a provider instance given a
// snapshot of every instance's observable state at dispatch time.
// Implementations may keep per-run state (a ClusterSim instantiates a
// fresh policy per run) but must be deterministic: the same request and
// snapshot sequence must yield the same dispatch sequence.
type RoutingPolicy interface {
	Route(req Request, snapshot []InstanceState) InstanceID
}

// PolicyConfig parameterizes a policy instantiation.
type PolicyConfig struct {
	// Instances is the federation size.
	Instances int
	// Seed is the run seed, for policies with seeded randomness.
	Seed int64
}

// PolicyFactory builds a fresh policy instance for one federation run.
type PolicyFactory func(cfg PolicyConfig) RoutingPolicy

// policyRegistry mirrors internal/registry's naming conventions for
// routing policies: case-insensitive lookups, canonical single-token
// names validated at registration.
type policyRegistry struct {
	mu        sync.RWMutex
	factories map[string]PolicyFactory // keyed by folded name
	folded    map[string]string        // folded name -> canonical spelling
	order     []string                 // canonical names in registration order
}

var policies = &policyRegistry{
	factories: make(map[string]PolicyFactory),
	folded:    make(map[string]string),
}

// RegisterPolicy adds a routing policy factory under name. Like
// registry.Register it fails on an empty name, a name containing
// whitespace, a nil factory, or a case-insensitive collision with a
// registered name.
func RegisterPolicy(name string, factory PolicyFactory) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("clustersim: empty policy name")
	}
	if strings.ContainsFunc(name, unicode.IsSpace) {
		return fmt.Errorf("clustersim: policy name %q contains whitespace; names must be canonical single tokens", name)
	}
	if factory == nil {
		return fmt.Errorf("clustersim: nil factory for policy %q", name)
	}
	policies.mu.Lock()
	defer policies.mu.Unlock()
	key := strings.ToLower(name)
	if prev, ok := policies.folded[key]; ok {
		return fmt.Errorf("clustersim: policy %q already registered (as %q)", name, prev)
	}
	policies.factories[key] = factory
	policies.folded[key] = name
	policies.order = append(policies.order, name)
	return nil
}

// mustRegisterPolicy is RegisterPolicy, panicking on error; for package
// init-time self-registration.
func mustRegisterPolicy(name string, factory PolicyFactory) {
	if err := RegisterPolicy(name, factory); err != nil {
		panic(err)
	}
}

// NewPolicy instantiates the named policy (case-insensitive), or fails
// with an error listing every registered policy.
func NewPolicy(name string, cfg PolicyConfig) (RoutingPolicy, error) {
	policies.mu.RLock()
	defer policies.mu.RUnlock()
	factory, ok := policies.factories[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("clustersim: unknown routing policy %q (registered: %s)",
			name, strings.Join(policies.order, ", "))
	}
	return factory(cfg), nil
}

// PolicyNames lists every registered policy's canonical name in
// registration order (the built-ins come first).
func PolicyNames() []string {
	policies.mu.RLock()
	defer policies.mu.RUnlock()
	return append([]string(nil), policies.order...)
}

// HasPolicy reports whether name resolves to a registered policy.
func HasPolicy(name string) bool {
	policies.mu.RLock()
	defer policies.mu.RUnlock()
	_, ok := policies.factories[strings.ToLower(name)]
	return ok
}

// Built-in policy names.
const (
	PolicyRoundRobin     = "round-robin"
	PolicyLeastLoaded    = "least-loaded"
	PolicyCostAware      = "cost-aware"
	PolicySpotPriceAware = "spot-price-aware"
	PolicyPinToOwner     = "pin-to-owner"
)

func init() {
	mustRegisterPolicy(PolicyRoundRobin, func(cfg PolicyConfig) RoutingPolicy {
		return &roundRobin{n: cfg.Instances}
	})
	mustRegisterPolicy(PolicyLeastLoaded, func(cfg PolicyConfig) RoutingPolicy {
		return leastLoaded{}
	})
	mustRegisterPolicy(PolicyCostAware, func(cfg PolicyConfig) RoutingPolicy {
		return costAware{}
	})
	mustRegisterPolicy(PolicySpotPriceAware, func(cfg PolicyConfig) RoutingPolicy {
		return spotPriceAware{}
	})
	mustRegisterPolicy(PolicyPinToOwner, func(cfg PolicyConfig) RoutingPolicy {
		return pinToOwner{}
	})
}

// defaultPricePerNodeHour is the instance price when a federation does
// not set one: the paper's 2009 EC2 on-demand rate, two instances per
// single-CPU node (see internal/cost's matched fleet).
func defaultPricePerNodeHour() float64 {
	return 2 * cost.PaperEC2().PricePerInstanceHour
}

// roundRobin dispatches request k to instance k mod N, ignoring state —
// the fairness baseline.
type roundRobin struct {
	n    int
	next int
}

func (p *roundRobin) Route(req Request, snapshot []InstanceState) InstanceID {
	id := InstanceID(p.next % p.n)
	p.next++
	return id
}

// leastLoaded dispatches to the instance with the fewest nodes in use at
// dispatch time; ties go to the lowest InstanceID.
type leastLoaded struct{}

func (leastLoaded) Route(req Request, snapshot []InstanceState) InstanceID {
	best := 0
	for i := 1; i < len(snapshot); i++ {
		if snapshot[i].NodesInUse < snapshot[best].NodesInUse {
			best = i
		}
	}
	return snapshot[best].ID
}

// costAware dispatches to the cheapest instance by on-demand node-hour
// price; among equally cheap instances it prefers the least loaded, then
// the lowest InstanceID.
type costAware struct{}

func (costAware) Route(req Request, snapshot []InstanceState) InstanceID {
	best := 0
	for i := 1; i < len(snapshot); i++ {
		s, b := snapshot[i], snapshot[best]
		if s.PricePerNodeHour < b.PricePerNodeHour ||
			(s.PricePerNodeHour == b.PricePerNodeHour && s.NodesInUse < b.NodesInUse) {
			best = i
		}
	}
	return snapshot[best].ID
}

// spotPriceAware dispatches to the instance whose spot market is
// currently cheapest (each instance's seeded PriceWalk advanced to the
// dispatch hour); ties go to the lowest InstanceID.
type spotPriceAware struct{}

func (spotPriceAware) Route(req Request, snapshot []InstanceState) InstanceID {
	best := 0
	for i := 1; i < len(snapshot); i++ {
		if snapshot[i].SpotPrice < snapshot[best].SpotPrice {
			best = i
		}
	}
	return snapshot[best].ID
}

// pinToOwner is the degenerate no-federation policy: every request goes
// to its home instance. Federating N providers pinned to N instances
// reproduces N independent runs exactly, which is the sanity invariant
// the test suite pins byte-for-byte.
type pinToOwner struct{}

func (pinToOwner) Route(req Request, snapshot []InstanceState) InstanceID {
	return req.Owner
}
