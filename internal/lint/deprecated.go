package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Deprecated re-implements the CI shell SA1019 gate as an analyzer:
// any reference to in-repo API whose doc comment carries a
// "Deprecated:" paragraph fails, everywhere except the compatibility
// shim itself (compat.go and compat_test.go). The shim keeps the
// pre-Engine enum API alive for old callers and golden tests; nothing
// else may grow a new dependency on it.
var Deprecated = &Analyzer{
	Name: "deprecated",
	Doc: "forbid references to in-repo deprecated API outside " +
		"compat.go/compat_test.go (replaces the shell SA1019 gate)",
	Run: runDeprecated,
}

// compatFile reports whether filename is part of the compatibility
// shim, the only place allowed to touch deprecated API.
func compatFile(filename string) bool {
	base := filepath.Base(filename)
	return base == "compat.go" || base == "compat_test.go"
}

// hasDeprecatedDoc reports whether the doc comment carries a
// "Deprecated:" marker per the godoc convention.
func hasDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// buildDeprecatedIndex scans every loaded package's syntax for
// declarations marked "Deprecated:" and returns their object keys
// (pkgpath.Name, or pkgpath.Recv.Name for methods). Indexing from
// syntax keeps doc comments in reach; uses are then resolved through
// the type checker so aliased imports and dot imports cannot hide a
// reference.
func buildDeprecatedIndex(pkgs []*Package) map[string]bool {
	index := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if hasDeprecatedDoc(d.Doc) {
						index[pkg.Path+"."+funcKey(d)] = true
					}
				case *ast.GenDecl:
					declDeprecated := hasDeprecatedDoc(d.Doc)
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if declDeprecated || hasDeprecatedDoc(s.Doc) {
								index[pkg.Path+"."+s.Name.Name] = true
							}
						case *ast.ValueSpec:
							if declDeprecated || hasDeprecatedDoc(s.Doc) {
								for _, name := range s.Names {
									index[pkg.Path+"."+name.Name] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return index
}

// funcKey is the index key suffix for a function or method
// declaration: Name, or RecvType.Name.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver T[P]
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// objKeyOf renders a used object as an index key, or "" when the
// object cannot carry an indexed deprecation: only package-level
// declarations and methods are indexed, so a struct field or local
// that happens to share a deprecated name (SubmitRequest.System vs the
// deprecated type System) never collides.
func objKeyOf(obj types.Object) string {
	pkg := obj.Pkg()
	if pkg == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recv := sig.Recv().Type()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok {
				return pkg.Path() + "." + named.Obj().Name() + "." + fn.Name()
			}
			return ""
		}
	}
	if obj.Parent() != pkg.Scope() {
		return ""
	}
	return pkg.Path() + "." + obj.Name()
}

func runDeprecated(pass *Pass) error {
	for _, f := range pass.Files {
		filename := pass.Fset.Position(f.Pos()).Filename
		if compatFile(filename) {
			continue
		}
		skip := deprecatedDeclRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if skip.contains(id.Pos()) {
				// A deprecated declaration may reference other
				// deprecated API (a legacy const of a legacy type);
				// the declaration is the deprecation, not a use.
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if key := objKeyOf(obj); key != "" && pass.Deprecated[key] {
				pass.Reportf(id.Pos(),
					"%s is deprecated (see its doc comment); only the compat shim "+
						"(compat.go, compat_test.go) may reference deprecated API", key)
			}
			return true
		})
	}
	return nil
}

type posRanges []struct{ lo, hi ast.Node }

func (rs posRanges) contains(pos token.Pos) bool {
	for _, r := range rs {
		if pos >= r.lo.Pos() && pos < r.hi.End() {
			return true
		}
	}
	return false
}

// deprecatedDeclRanges collects the source ranges of declarations that
// are themselves marked deprecated.
func deprecatedDeclRanges(f *ast.File) posRanges {
	var rs posRanges
	add := func(n ast.Node) {
		rs = append(rs, struct{ lo, hi ast.Node }{n, n})
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if hasDeprecatedDoc(d.Doc) {
				add(d)
			}
		case *ast.GenDecl:
			if hasDeprecatedDoc(d.Doc) {
				add(d)
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if hasDeprecatedDoc(s.Doc) {
						add(s)
					}
				case *ast.ValueSpec:
					if hasDeprecatedDoc(s.Doc) {
						add(s)
					}
				}
			}
		}
	}
	return rs
}
