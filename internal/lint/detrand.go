package lint

import (
	"go/ast"
	"go/types"
)

// Detrand forbids nondeterministic randomness in non-test library
// code. Every simulated quantity in this reproduction must be
// replayable from an explicit seed — the goldens (Tables 2–4,
// kernel_golden.json) pin exact bytes — so the process-global
// math/rand source (rand.Intn, rand.Float64, rand.Shuffle, ...) is
// banned, as is seeding any source from the wall clock
// (rand.NewSource(time.Now().UnixNano())). Construct generators as
// rand.New(rand.NewSource(seed)) with a seed that arrives through
// configuration.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc: "forbid math/rand's process-global source and wall-clock seeds " +
		"in non-test library code; randomness must come from " +
		"rand.New(rand.NewSource(seed))",
	Run: runDetrand,
}

// detrandGlobals are the math/rand (and math/rand/v2) top-level
// functions that draw from the shared global source. Constructors
// (New, NewSource, NewZipf, NewPCG, NewChaCha8) and plain types stay
// allowed.
var detrandGlobals = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 additions
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

func isRandPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

func runDetrand(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				obj, ok := pass.Info.Uses[n]
				if ok && isRandPkg(obj.Pkg()) && detrandGlobals[obj.Name()] &&
					obj.Parent() == obj.Pkg().Scope() {
					pass.Reportf(n.Pos(),
						"%s.%s draws from the process-global source; use an explicit "+
							"rand.New(rand.NewSource(seed)) so runs replay deterministically",
						obj.Pkg().Name(), obj.Name())
				}
			case *ast.CallExpr:
				if fn := calleeOf(pass, n); fn != nil && isRandPkg(fn.Pkg()) &&
					(fn.Name() == "NewSource" || fn.Name() == "NewPCG") {
					for _, arg := range n.Args {
						if pos, found := findWallClockSeed(pass, arg); found {
							pass.Reportf(pos.Pos(),
								"rand.%s seeded from the wall clock is nondeterministic; "+
									"pass a configured seed instead", fn.Name())
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// calleeOf resolves the function object a call invokes, or nil when
// the callee is not a simple (possibly package-qualified) identifier.
func calleeOf(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// findWallClockSeed reports a time.Now (or time.Since/time.Until) call
// anywhere inside the seed expression.
func findWallClockSeed(pass *Pass, expr ast.Expr) (pos ast.Node, found bool) {
	var hit ast.Node
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || hit != nil {
			return hit == nil
		}
		obj := pass.Info.Uses[id]
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
			switch obj.Name() {
			case "Now", "Since", "Until":
				hit = n
				return false
			}
		}
		return true
	})
	if hit == nil {
		return nil, false
	}
	return hit, true
}
