// Command mainpkg shows that package main owns the process and may
// mint root contexts.
package main

import "context"

func main() {
	_ = context.Background()
}
