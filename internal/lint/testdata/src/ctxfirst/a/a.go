// Package a exercises the ctxfirst analyzer: context placement,
// context struct fields and minted root contexts in library code.
package a

import "context"

func Good(ctx context.Context, n int) {}

func Bad(n int, ctx context.Context) {} // want `exported Bad takes context\.Context as parameter 2`

type T struct{}

func (T) Method(n int, ctx context.Context) {} // want `exported Method takes context\.Context as parameter 2`

// unexported helpers may order parameters freely.
func helper(n int, ctx context.Context) {}

type holder struct {
	ctx context.Context // want `context\.Context stored in a struct field`
}

func mint() context.Context {
	return context.Background() // want `context\.Background\(\) minted in library code`
}

func todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) minted in library code`
}

func allowed() context.Context {
	return context.Background() //dclint:allow ctxfirst -- fixture demonstrates the suppression directive
}
