// Package stream stands in for the streamed execution path (fixture
// import path internal/stream): records are scheduled on the virtual
// clock, so both the walltime and detrand invariants apply — a host
// clock read or a process-global RNG draw here would desynchronize a
// streamed run from its materialized twin.
package stream

import (
	"math/rand"
	"time"
)

// pullDeadline is the tempting mistake this fixture pins: bounding a
// lane pull with host time instead of failing the feed explicitly.
func pullDeadline() bool {
	start := time.Now()                   // want `time\.Now reads the wall clock inside simulation-path package internal/stream`
	return time.Since(start) > time.Second // want `time\.Since reads the wall clock`
}

func backoff() {
	time.Sleep(10 * time.Millisecond) // want `time\.Sleep reads the wall clock`
	<-time.After(time.Millisecond)    // want `time\.After reads the wall clock`
}

// jitterRecord injects "realistic" arrival jitter from the global RNG —
// forbidden twice over: nondeterministic and wall-seeded.
func jitterRecord(submit int64) int64 {
	return submit + rand.Int63n(30) // want `rand\.Int63n draws from the process-global source`
}

func wallSeededGen() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the wall clock` `time\.Now reads the wall clock`
}

// seededGen is the required construction and stays silent: an explicit
// generator from an explicit seed, exactly like stream.Gen.
func seededGen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Durations and the virtual-time arithmetic they parameterize are pure
// values and remain allowed.
func strideSeconds(d time.Duration) int64 { return int64(d / time.Second) }
