// Package clustersim stands in for the federated cluster simulator
// (fixture import path internal/clustersim): it is simulation-path, so
// the walltime analyzer forbids reading the wall clock, and detrand
// forbids the process-global randomness the shared-clock determinism
// invariants exclude.
package clustersim

import (
	"math/rand"
	"time"
)

func badWall() {
	_ = time.Now()          // want `time\.Now reads the wall clock inside simulation-path package internal/clustersim`
	time.Sleep(time.Second) // want `time\.Sleep reads the wall clock`
}

func badRand() int {
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	return rand.Intn(8)                // want `rand\.Intn draws from the process-global source`
}

// seededRoute is the required construction: per-instance randomness
// from an explicit seed derived from the run seed.
func seededRoute(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}
