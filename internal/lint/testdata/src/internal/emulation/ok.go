// Package emulation stands in for a real-time layer (fixture import
// path internal/emulation): it is not simulation-path, so the walltime
// analyzer leaves it alone.
package emulation

import "time"

func wallClockIsThePoint() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
