// Package runstore stands in for the durable run store (fixture import
// path internal/runstore). Persistence is a real-time layer — WAL
// records carry wall-clock timestamps, worker leases expire against
// the host clock — so the package is walltime-EXEMPT: the time.Now
// calls below must raise no finding. Detrand still applies everywhere;
// the process-global draws keep this fixture dirty for the
// fixtures-must-stay-dirty guard.
package runstore

import (
	"math/rand"
	"time"
)

// stampRecord is legitimate wall-clock use — durability metadata, not
// simulated time — and must stay silent under the walltime analyzer.
func stampRecord() time.Time {
	return time.Now()
}

// leaseStale is the other sanctioned shape: lease arithmetic against
// the host clock.
func leaseStale(lastBeat time.Time, ttl time.Duration) bool {
	return time.Since(lastBeat) >= ttl
}

func jitterBad() time.Duration {
	return time.Duration(rand.Intn(250)) * time.Millisecond // want `rand\.Intn draws from the process-global source`
}

func backoffBad() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global source`
}

// seededJitter is the required construction: randomness from an
// explicit seed that arrives through configuration.
func seededJitter(seed int64, n int) time.Duration {
	r := rand.New(rand.NewSource(seed))
	return time.Duration(r.Intn(n)) * time.Millisecond
}
