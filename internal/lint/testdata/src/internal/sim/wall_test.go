package sim

import "time"

// Test files are exempt even inside simulation-path packages: timing a
// test with the wall clock is fine.
func testHelper() time.Time { return time.Now() }
