// Package sim stands in for a simulation-path package (its fixture
// import path is internal/sim): the walltime analyzer forbids reading
// the wall clock here, where only the virtual clock may advance.
package sim

import "time"

func bad() {
	_ = time.Now()               // want `time\.Now reads the wall clock inside simulation-path package internal/sim`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	<-time.After(0)              // want `time\.After reads the wall clock`
	_ = time.Since(time.Time{})  // want `time\.Since reads the wall clock`
	t := time.NewTicker(1)       // want `time\.NewTicker reads the wall clock`
	t.Stop()
}

// Durations, duration constants and the time.Time type itself are pure
// values and stay allowed.
func ok(d time.Duration, deadline time.Time) time.Duration {
	return d * 2
}

func allowed() {
	time.Sleep(0) //dclint:allow walltime -- fixture demonstrates the suppression directive
}
