// Package partition stands in for the lockstep multi-core driver (its
// fixture import path is internal/sim/partition): walltime protection
// applies — per-partition goroutines must pace on the virtual clock,
// never the host's — and detrand forbids the process-global RNG, whose
// draws would depend on partition interleaving.
package partition

import (
	"math/rand"
	"time"
)

func badClock() {
	_ = time.Now()              // want `time\.Now reads the wall clock inside simulation-path package internal/sim/partition`
	time.Sleep(time.Minute)     // want `time\.Sleep reads the wall clock`
	_ = time.Since(time.Time{}) // want `time\.Since reads the wall clock`
}

func badSeed() int {
	return rand.Intn(8) // want `rand\.Intn draws from the process-global source`
}

// seedFor is the sanctioned construction: partition streams derive from
// the run seed and the partition's serial position, nothing else.
func seedFor(base int64, first int) *rand.Rand {
	return rand.New(rand.NewSource(base + int64(first)*7919))
}
