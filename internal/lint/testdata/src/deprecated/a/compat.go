package a

// The compat shim (matched by file name) is the one place allowed to
// keep deprecated API alive.
func fromCompat() int { return Old() + int(L0) }
