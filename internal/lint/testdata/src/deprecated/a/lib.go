// Package a exercises the deprecated analyzer: in-repo API marked
// "Deprecated:" may only be referenced from compat.go/compat_test.go.
package a

// Old is the legacy entry point.
//
// Deprecated: use Current.
func Old() int { return 1 }

// Current replaced Old.
func Current() int { return 2 }

// Legacy is the closed legacy enum.
//
// Deprecated: use registered names.
type Legacy int

// The legacy enum values.
//
// Deprecated: use registered names.
const (
	L0 Legacy = iota
	L1
)

// Keeper carries one deprecated and one supported method.
type Keeper struct{}

// Gone is the legacy accessor.
//
// Deprecated: use Kept.
func (Keeper) Gone() int { return 0 }

// Kept is supported.
func (Keeper) Kept() int { return 1 }
