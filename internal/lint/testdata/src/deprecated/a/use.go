package a

func useFunc() int { return Old() + Current() } // want `deprecated/a\.Old is deprecated`

func useConst() Legacy { return L0 } // want `deprecated/a\.Legacy is deprecated` `deprecated/a\.L0 is deprecated`

func useMethod(k Keeper) int { return k.Gone() + k.Kept() } // want `deprecated/a\.Keeper\.Gone is deprecated`

func allowed() int {
	return Old() //dclint:allow deprecated -- fixture demonstrates the suppression directive
}
