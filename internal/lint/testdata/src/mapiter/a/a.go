// Package a exercises the mapiter analyzer: ranging over a map into an
// ordered sink leaks Go's randomized iteration order into output.
package a

import (
	"bytes"
	"fmt"
	"slices"
	"sort"
)

func unsortedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `out is appended to while ranging over a map and never sorted`
	}
	return out
}

// sortedAppend is the canonical fix: collect, then sort.
func sortedAppend(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// slicesSorted: the slices package counts as sorting too.
func slicesSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}

func sortRows(rows []string) { sort.Strings(rows) }

// helperSorted: a local sort* helper after the loop also counts.
func helperSorted(m map[string]int) []string {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	sortRows(rows)
	return rows
}

func emits(m map[string]int, buf *bytes.Buffer, ch chan string) {
	for k, v := range m {
		fmt.Println(k, v)  // want `fmt\.Println inside a range over a map emits in random order`
		buf.WriteString(k) // want `bytes\.Buffer\.WriteString inside a range over a map emits in random order`
		ch <- k            // want `channel send inside a range over a map`
	}
}

// keyed assignment into another map is order-independent.
func keyed(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// innerScoped: appending to a slice declared inside the loop body
// cannot leak iteration order out of the iteration.
func innerScoped(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

func allowed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //dclint:allow mapiter -- fixture demonstrates the suppression directive
	}
	return out
}
