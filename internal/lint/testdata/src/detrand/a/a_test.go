package a

import "math/rand"

// Test files are exempt: shuffling inputs or jittering timing in a
// test does not touch golden output.
func testHelper() int { return rand.Intn(3) }
