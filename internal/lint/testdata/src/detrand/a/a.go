// Package a exercises the detrand analyzer: the process-global
// math/rand source and wall-clock seeds are forbidden in non-test
// library code.
package a

import (
	"math/rand"
	"time"
)

func globals() int {
	rand.Seed(1)                       // want `rand\.Seed draws from the process-global source`
	x := rand.Intn(10)                 // want `rand\.Intn draws from the process-global source`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-global source`
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	return x
}

// seeded is the required construction: an explicit generator from an
// explicit seed. Methods on the local generator are fine.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	_ = r.Perm(4)
	_ = r.Float64()
	return r.Intn(10)
}

func wallSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from the wall clock`
}

func allowed() int {
	return rand.Intn(3) //dclint:allow detrand -- fixture demonstrates the suppression directive
}
