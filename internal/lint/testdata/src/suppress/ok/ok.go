// Package ok exercises both placements of the suppression directive;
// every finding below is suppressed, so a run over this fixture must
// be clean.
package ok

import "math/rand"

func sameLine() int {
	return rand.Intn(3) //dclint:allow detrand -- trailing directive on the flagged line
}

func lineAbove() int {
	//dclint:allow detrand -- directive on its own line directly above the flagged line
	return rand.Intn(3)
}
