// Package bad exercises the linting of the suppression directive
// itself: every malformed //dclint:allow is an error, and those errors
// are not suppressible.
package bad

func keep() int { return 1 }

//dclint:allow nosuch -- covering an imaginary analyzer // want `unknown analyzer "nosuch"`

//dclint:allow detrand // want `has no reason`

//dclint:allow detrand -- // want `has no reason`

//dclint:allow -- a reason with no analyzer // want `missing an analyzer name`

//dclint:allow detrand walltime -- two analyzers at once // want `names one analyzer`
