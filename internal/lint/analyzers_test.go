package lint

import (
	"strings"
	"testing"
)

func TestDetrandFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{Detrand}, "detrand/a")
}

func TestWalltimeFixtures(t *testing.T) {
	// internal/sim is simulation-path (findings expected per wants);
	// internal/emulation is a real-time layer and must stay silent.
	runFixture(t, []*Analyzer{Walltime}, "internal/sim", "internal/emulation")
}

func TestPartitionFixtures(t *testing.T) {
	// The lockstep driver package is both walltime-protected (explicitly
	// listed, not just prefix-covered) and detrand-checked: partition
	// goroutines must never pace on the host clock or draw from the
	// process-global RNG.
	runFixture(t, []*Analyzer{Walltime, Detrand}, "internal/sim/partition")
}

func TestClustersimFixtures(t *testing.T) {
	// The federated subsystem is born under the determinism invariants:
	// simulation-path for walltime, and detrand applies everywhere, so
	// the fixture carries findings for both analyzers at once.
	runFixture(t, []*Analyzer{Walltime, Detrand}, "internal/clustersim")
}

func TestStreamFixtures(t *testing.T) {
	// The streamed execution path is simulation-path (ingested records
	// are scheduled on the virtual clock) and detrand-checked: a wall
	// clock read or a global RNG draw would desynchronize a streamed run
	// from its materialized twin.
	runFixture(t, []*Analyzer{Walltime, Detrand}, "internal/stream")
}

func TestRunstoreFixtures(t *testing.T) {
	// The durable run store is a real-time persistence layer: WAL
	// timestamps and lease expiry genuinely read the host clock, so
	// walltime must stay silent over it — while detrand still applies,
	// which is what keeps the fixture dirty.
	runFixture(t, []*Analyzer{Walltime, Detrand}, "internal/runstore")
}

func TestMapiterFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{Mapiter}, "mapiter/a")
}

func TestCtxFirstFixtures(t *testing.T) {
	// ctxfirst/mainpkg is package main: minting a root context there is
	// allowed, so it contributes no wants and must stay silent.
	runFixture(t, []*Analyzer{CtxFirst}, "ctxfirst/a", "ctxfirst/mainpkg")
}

func TestDeprecatedFixtures(t *testing.T) {
	runFixture(t, []*Analyzer{Deprecated}, "deprecated/a")
}

func TestSuppressionDirective(t *testing.T) {
	// Valid directives silence findings in both placements...
	runFixture(t, []*Analyzer{Detrand}, "suppress/ok")
	// ...and malformed directives are errors even when no analyzer in
	// the run would have fired on those lines.
	runFixture(t, []*Analyzer{Detrand}, "suppress/bad")
}

func TestWalltimeAppliesScope(t *testing.T) {
	protected := []string{
		"internal/sim", "internal/sim/refheap", "internal/sim/partition",
		"internal/core",
		"internal/systems", "internal/clustersim", "internal/sched",
		"internal/policy", "internal/tre", "internal/spot",
		"internal/synth", "internal/workflow", "internal/scenario",
		"internal/stream",
	}
	for _, p := range protected {
		if !walltimeApplies(p) {
			t.Errorf("walltimeApplies(%q) = false, want true", p)
		}
	}
	exempt := []string{
		"internal/emulation", "internal/service", "internal/events",
		"internal/runstore", "internal/kernelbench", "internal/simulator",
		".", "cmd/dcsim",
	}
	for _, p := range exempt {
		if walltimeApplies(p) {
			t.Errorf("walltimeApplies(%q) = true, want false", p)
		}
	}
}

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text    string
		wantErr string // substring of the expected error, "" for valid
	}{
		{"//dclint:allow detrand -- seeded upstream", ""},
		{"//dclint:allow mapiter -- keys feed an unordered set", ""},
		{"//dclint:allow nosuch -- reason", `unknown analyzer "nosuch"`},
		{"//dclint:allow detrand", "has no reason"},
		{"//dclint:allow detrand --", "has no reason"},
		{"//dclint:allow detrand --   ", "has no reason"},
		{"//dclint:allow -- reason only", "missing an analyzer name"},
		{"//dclint:allow", "missing an analyzer name"},
		{"//dclint:allow detrand walltime -- both", "names one analyzer"},
		{"//dclint:allowed something", "malformed"},
	}
	for _, tc := range cases {
		d, msg := parseDirective(tc.text)
		if tc.wantErr == "" {
			if msg != "" {
				t.Errorf("parseDirective(%q) unexpected error %q", tc.text, msg)
			}
			continue
		}
		if !strings.Contains(msg, tc.wantErr) {
			t.Errorf("parseDirective(%q) = (%v, %q), want error containing %q",
				tc.text, d, msg, tc.wantErr)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) = (%v, %v), want the analyzer itself", a.Name, got, ok)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error(`ByName("nosuch") resolved`)
	}
}

// TestFixturesAreDirty pins that each analyzer's primary fixture
// actually raises findings when run WITHOUT want-checking — guarding
// against a future refactor that silently turns an analyzer into a
// no-op while its fixture wants rot.
func TestFixturesAreDirty(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		fixture  string
		minimum  int
	}{
		{Detrand, "detrand/a", 5},
		{Walltime, "internal/sim", 5},
		{Walltime, "internal/clustersim", 2},
		{Detrand, "internal/clustersim", 2},
		{Detrand, "internal/runstore", 2},
		{Walltime, "internal/stream", 4},
		{Detrand, "internal/stream", 2},
		{Mapiter, "mapiter/a", 4},
		{CtxFirst, "ctxfirst/a", 5},
		{Deprecated, "deprecated/a", 4},
	}
	for _, tc := range cases {
		pkgs := loadFixturePkgs(t, tc.fixture)
		diags, err := Run(pkgs, []*Analyzer{tc.analyzer})
		if err != nil {
			t.Fatalf("%s: %v", tc.analyzer.Name, err)
		}
		if len(diags) < tc.minimum {
			t.Errorf("%s over %s: %d finding(s), want at least %d",
				tc.analyzer.Name, tc.fixture, len(diags), tc.minimum)
		}
	}
}
