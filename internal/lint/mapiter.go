package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Mapiter flags the classic golden-drift bug: Go randomizes map
// iteration order, so a `range` over a map that feeds an ordered sink
// produces different bytes on every run. Two shapes are diagnosed in
// non-test code:
//
//   - the loop body appends map keys/values to a slice declared
//     outside the loop and no statement after the loop sorts that
//     slice — the slice's order is random;
//   - the loop body emits directly (fmt.Print*/Fprint*, a
//     bytes.Buffer/strings.Builder/io.Writer write, a json
//     Encoder.Encode, or a channel send) — output order is random and
//     no later sort can repair it.
//
// The fix is always the same: collect the keys, sort them, then range
// over the sorted keys (or sort the collected slice before use).
var Mapiter = &Analyzer{
	Name: "mapiter",
	Doc: "flag ranging over a map into an ordered sink (slice without " +
		"a following sort, writer, channel) — map order is random",
	Run: runMapiter,
}

func runMapiter(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				mapiterStmts(pass, fd.Body.List)
			}
		}
		// Function literals hang off expressions (assignments, call
		// arguments, struct fields); their bodies are statement lists
		// too.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				mapiterStmts(pass, lit.Body.List)
			}
			return true
		})
	}
	return nil
}

// mapiterStmts walks one statement list, diagnosing each map-range it
// contains with visibility into the statements that follow it (for
// sort-after-loop detection). It recurses into nested statement lists
// but not into function literals — runMapiter feeds those separately.
func mapiterStmts(pass *Pass, list []ast.Stmt) {
	for i, s := range list {
		mapiterStmt(pass, s, list[i+1:])
	}
}

func mapiterStmt(pass *Pass, s ast.Stmt, rest []ast.Stmt) {
	switch s := s.(type) {
	case *ast.RangeStmt:
		if t := pass.Info.TypeOf(s.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				checkMapRange(pass, s, rest)
			}
		}
		mapiterStmts(pass, s.Body.List)
	case *ast.BlockStmt:
		mapiterStmts(pass, s.List)
	case *ast.IfStmt:
		mapiterStmts(pass, s.Body.List)
		if s.Else != nil {
			mapiterStmt(pass, s.Else, rest)
		}
	case *ast.ForStmt:
		mapiterStmts(pass, s.Body.List)
	case *ast.SwitchStmt:
		mapiterStmts(pass, s.Body.List)
	case *ast.TypeSwitchStmt:
		mapiterStmts(pass, s.Body.List)
	case *ast.SelectStmt:
		mapiterStmts(pass, s.Body.List)
	case *ast.CaseClause:
		mapiterStmts(pass, s.Body)
	case *ast.CommClause:
		mapiterStmts(pass, s.Body)
	case *ast.LabeledStmt:
		mapiterStmt(pass, s.Stmt, rest)
	}
}

// checkMapRange inspects one map-range body for order-sensitive sinks.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately; deferred bodies don't run in loop order
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside a range over a map: map iteration order is "+
					"random, so receivers observe a random order; range over sorted keys")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) {
					continue
				}
				obj := outerTarget(pass, n.Lhs[i], rng)
				if obj == nil {
					continue
				}
				if !sortedAfter(pass, rest, obj) {
					pass.Reportf(n.Pos(),
						"%s is appended to while ranging over a map and never sorted "+
							"afterwards: its element order is random; sort %s after the "+
							"loop or range over sorted keys",
						obj.Name(), obj.Name())
				}
			}
		case *ast.CallExpr:
			if sinkMsg := orderedSinkCall(pass, n); sinkMsg != "" {
				pass.Reportf(n.Pos(),
					"%s inside a range over a map emits in random order; "+
						"collect and sort keys, then emit", sinkMsg)
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// outerTarget resolves the assignment target to an object declared
// outside the range statement: a local or package-level variable, or a
// struct field (s.field = append(s.field, ...)). Targets declared
// inside the loop, and index expressions (m2[k] = append(m2[k], v),
// which key the output and are order-independent), return nil.
func outerTarget(pass *Pass, lhs ast.Expr, rng *ast.RangeStmt) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(lhs)
		if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()) {
			return nil
		}
		return obj
	case *ast.SelectorExpr:
		return pass.Info.ObjectOf(lhs.Sel)
	}
	return nil
}

// sortedAfter reports whether any statement after the loop sorts obj:
// a call into package sort or slices (or a local helper whose name
// starts with "sort") that references obj anywhere in its arguments.
func sortedAfter(pass *Pass, rest []ast.Stmt, obj types.Object) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if !isSortCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall recognizes sort.*, slices.Sort*, and local sortFoo
// helpers.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeOf(pass, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	return strings.HasPrefix(strings.ToLower(fn.Name()), "sort")
}

// orderedSinkCall reports a non-empty description when call writes to
// an ordered sink whose order would become random inside a map range.
func orderedSinkCall(pass *Pass, call *ast.CallExpr) string {
	fn := calleeOf(pass, call)
	if fn == nil {
		return ""
	}
	pkg := fn.Pkg()
	if pkg != nil && pkg.Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return "fmt." + fn.Name()
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	recv := pass.Info.TypeOf(sel.X)
	if recv == nil {
		return ""
	}
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	name := typeFullName(recv)
	switch {
	case strings.HasPrefix(fn.Name(), "Write") &&
		(name == "bytes.Buffer" || name == "strings.Builder" || name == "io.Writer"):
		return name + "." + fn.Name()
	case fn.Name() == "Encode" && name == "encoding/json.Encoder":
		return "json.Encoder.Encode"
	}
	return ""
}

// typeFullName renders a named or interface type as pkgpath.Name.
func typeFullName(t types.Type) string {
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}
