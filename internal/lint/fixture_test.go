package lint

// The analysistest-style fixture harness: fixtures live under
// testdata/src/<path>, and every line that must produce a finding
// carries a `// want "regexp"` (or backquoted) expectation. A run over
// a fixture must raise exactly the expected diagnostics — no more, no
// fewer — so both false negatives and false positives fail the test.

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts quoted or backquoted expectation literals after a
// "// want" marker.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// loadFixturePkgs loads the named fixture directories (paths relative
// to testdata/src) with a shared loader.
func loadFixturePkgs(t *testing.T, rels ...string) []*Package {
	t.Helper()
	loader := NewLoader()
	var pkgs []*Package
	for _, rel := range rels {
		pkg, err := loader.LoadFixture(filepath.Join("testdata", "src", filepath.FromSlash(rel)), rel)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", rel, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// runFixture runs the analyzers over the fixtures and checks every
// finding against the // want expectations.
func runFixture(t *testing.T, analyzers []*Analyzer, rels ...string) {
	t.Helper()
	pkgs := loadFixturePkgs(t, rels...)
	diags, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}

	// file -> line -> expectations.
	wants := make(map[string]map[int][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					byLine := wants[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*expectation)
						wants[pos.Filename] = byLine
					}
					for _, lit := range wantRe.FindAllString(c.Text[idx+len("// want"):], -1) {
						re, err := regexp.Compile(lit[1 : len(lit)-1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
						}
						byLine[pos.Line] = append(byLine[pos.Line], &expectation{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, exp := range wants[d.Pos.Filename][d.Pos.Line] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, byLine := range wants {
		for line, exps := range byLine {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q was not reported",
						file, line, exp.re)
				}
			}
		}
	}
}
