package lint

import (
	"go/ast"
	"strings"
)

// Walltime forbids reading the wall clock inside simulation-path
// packages. Simulated time advances only through the virtual clock of
// the discrete-event kernel; a stray time.Now() or time.Sleep() in a
// system model makes results depend on host scheduling and corrupts
// the byte-pinned goldens. The real-time layers — internal/emulation,
// internal/service, internal/events, internal/runstore (WAL record
// timestamps and worker-lease expiry are wall-clock facts), the
// benches, the commands — and all test files are exempt: they
// genuinely operate in wall-clock time.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Since/Sleep/After/... in simulation-path " +
		"packages, where only the virtual clock may advance",
	Run: runWalltime,
}

// walltimeProtected lists the module-relative package paths (and their
// subpackages) where simulated time is the only time.
var walltimeProtected = []string{
	"internal/sim",
	// internal/sim/partition is prefix-covered by internal/sim, but the
	// lockstep driver is the one place goroutines and simulated time
	// meet, so it is named explicitly: removing the parent entry must
	// not silently unprotect it.
	"internal/sim/partition",
	"internal/core",
	"internal/systems",
	"internal/clustersim",
	"internal/sched",
	"internal/policy",
	"internal/tre",
	"internal/spot",
	"internal/synth",
	"internal/workflow",
	"internal/scenario",
	// The streamed execution path schedules ingested records on the
	// virtual clock; a wall-clock read there (a "timeout" on a lane
	// pull, a host-time window stamp) would silently break the
	// streamed==materialized byte-identity invariant.
	"internal/stream",
}

// walltimeForbidden are the time package functions that observe or
// wait on the wall clock. Pure types and constructors of durations
// (time.Duration, time.Second, ParseDuration) remain allowed.
var walltimeForbidden = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// walltimeApplies reports whether the module-relative package path is
// simulation-path.
func walltimeApplies(relPath string) bool {
	for _, p := range walltimeProtected {
		if relPath == p || strings.HasPrefix(relPath, p+"/") {
			return true
		}
	}
	return false
}

func runWalltime(pass *Pass) error {
	if !walltimeApplies(pass.RelPath) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if walltimeForbidden[obj.Name()] && obj.Parent() == obj.Pkg().Scope() {
				pass.Reportf(id.Pos(),
					"time.%s reads the wall clock inside simulation-path package %s; "+
						"only the virtual clock may advance simulated time",
					obj.Name(), pass.Path)
			}
			return true
		})
	}
	return nil
}
