package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the repository's context-plumbing conventions,
// which keep every run cancellable end-to-end (Engine.Run down into
// the discrete-event loop):
//
//   - an exported function or method that takes a context.Context must
//     take it as the first parameter, per the standard library
//     convention;
//   - context.Context must not be stored in a struct field — a stored
//     context outlives the call it belongs to and silently detaches
//     work from its caller's cancellation;
//   - library code must not mint context.Background() or
//     context.TODO(): thread the caller's ctx instead. Commands
//     (package main) own the process and are exempt, as are tests.
//
// Intentional API defaults (a Background fallback kept for a
// deprecated entry point, an http.Server-style BaseContext field)
// carry a //dclint:allow ctxfirst annotation stating why.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc: "context.Context must be the first parameter of exported " +
		"functions, never a struct field, and library code must not " +
		"mint context.Background()/TODO()",
	Run: runCtxFirst,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return typeFullName(t) == "context.Context"
}

func runCtxFirst(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxParamOrder(pass, n)
			case *ast.StructType:
				checkCtxFields(pass, n)
			case *ast.CallExpr:
				checkCtxMint(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCtxParamOrder flags exported functions whose context.Context
// parameter is not first.
func checkCtxParamOrder(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	flat := 0 // parameter position, counting grouped names (a, b T) individually
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.Info.TypeOf(field.Type)) && flat > 0 {
			pass.Reportf(field.Pos(),
				"exported %s takes context.Context as parameter %d; "+
					"context must be the first parameter", fd.Name.Name, flat+1)
		}
		flat += n
	}
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if isContextType(pass.Info.TypeOf(field.Type)) {
			pass.Reportf(field.Pos(),
				"context.Context stored in a struct field outlives its call and "+
					"detaches work from the caller's cancellation; pass ctx per call")
		}
	}
}

// checkCtxMint flags context.Background()/context.TODO() in library
// (non-main) packages.
func checkCtxMint(pass *Pass, call *ast.CallExpr) {
	if pass.IsMain() {
		return
	}
	fn := calleeOf(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		pass.Reportf(call.Pos(),
			"context.%s() minted in library code severs the caller's cancellation "+
				"chain; accept and thread a ctx parameter instead", fn.Name())
	}
}
