// Package lint is dclint: a suite of custom static analyzers that
// machine-enforce the determinism and concurrency invariants every
// golden in this repository depends on. The paper reproduction pins
// exact bytes (Tables 2–4, kernel_golden.json, the differential kernel
// suite), so invariants that used to live in review convention are
// enforced here at compiler grade:
//
//   - detrand: library code must not draw from math/rand's
//     process-global source (rand.Intn, rand.Float64, ...) and must not
//     seed a source from the wall clock. Randomness comes from an
//     explicit rand.New(rand.NewSource(seed)) so every run is
//     replayable from its seed.
//   - walltime: simulation-path packages (internal/sim, core, systems,
//     sched, policy, tre, spot, synth, workflow, scenario) must not
//     read the wall clock (time.Now, time.Since, time.Sleep,
//     time.After, ...). Only the virtual clock may advance simulated
//     time; internal/emulation, internal/service, internal/events,
//     benchmarks and tests are exempt by construction.
//   - mapiter: a `range` over a map that appends to an outer slice
//     must be followed by a sort of that slice, and must not print,
//     write or send on a channel from inside the loop body — the
//     classic golden-drift bug, since Go randomizes map iteration
//     order.
//   - ctxfirst: exported functions taking a context.Context must take
//     it as the first parameter; context must not be stored in struct
//     fields; and library code (anything outside package main and
//     tests) must not mint context.Background()/context.TODO() but
//     thread the caller's context.
//   - deprecated: in-repo API marked "Deprecated:" may only be
//     referenced from the compatibility shim (compat.go and
//     compat_test.go). This replaces the shell-scripted SA1019 gate
//     that used to live in CI.
//
// # Suppression
//
// Every analyzer honors one suppression directive:
//
//	//dclint:allow <analyzer> -- <reason>
//
// placed either at the end of the flagged line or on its own line
// immediately above it. The directive is itself linted: an allow with
// no reason, or one naming an unknown analyzer, is an error that
// cannot be suppressed. There is no file- or package-level escape
// hatch on purpose — every exception is visible at the line that needs
// it, with its justification beside it.
//
// The suite runs as `go run ./cmd/dclint ./...`, is gated in CI, and
// each analyzer has analysistest-style fixtures under
// internal/lint/testdata/src.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer (which is not vendorable in
// this offline build environment) closely enough that migrating to the
// real driver later is mechanical.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dclint:allow directives. Lowercase, no spaces.
	Name string
	// Doc is the one-paragraph description shown by `dclint -list`.
	Doc string
	// Run performs the check on one package and reports findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// All returns the full dclint suite in stable presentation order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Walltime, Mapiter, CtxFirst, Deprecated}
}

// ByName resolves an analyzer by its directive name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// A Diagnostic is one finding, positioned and attributed to the
// analyzer that raised it. DirectiveErrors carry the pseudo-analyzer
// name "dclint" and are not suppressible.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way compilers do:
// file:line:col: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one type-checked package through one analyzer. The
// fields mirror analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path ("repro/internal/sim").
	Path string
	// RelPath is the import path relative to the module root
	// ("internal/sim"; "." for the module root package). Fixture
	// packages use their path under testdata/src verbatim, so
	// path-scoped analyzers behave identically under test.
	RelPath string
	// Deprecated indexes every "Deprecated:" declaration across the
	// load set, keyed by objKey (see deprecated.go).
	Deprecated map[string]bool

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a *_test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// IsMain reports whether the package is a command (package main).
// Commands own the process and may mint root contexts; library
// invariants about context plumbing do not all apply.
func (p *Pass) IsMain() bool {
	return p.Pkg != nil && p.Pkg.Name() == "main"
}

// Run executes the analyzers over the packages, applies //dclint:allow
// suppression, validates the directives themselves, and returns the
// surviving findings sorted by position. A nil analyzer slice means
// All().
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if analyzers == nil {
		analyzers = All()
	}
	deprecated := buildDeprecatedIndex(pkgs)

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				Path:       pkg.Path,
				RelPath:    pkg.RelPath,
				Deprecated: deprecated,
				diags:      &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	directives, errs := collectDirectives(pkgs)
	kept := raw[:0]
	for _, d := range raw {
		if !directives.suppresses(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, errs...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}
