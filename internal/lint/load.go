package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
// Files holds the package's compiled sources plus its in-package test
// files; external test packages (package foo_test) load as a separate
// Package with an ImportPath suffixed "_test".
type Package struct {
	Path    string
	RelPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// A Loader parses and type-checks packages. It compiles dependencies
// from source via go/importer's "source" compiler, so it works without
// a network, a populated module cache, or installed export data — the
// standard library and in-module imports are all resolved from local
// source. One Loader shares a FileSet and an import cache across every
// package it loads.
type Loader struct {
	Fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a Loader with a fresh FileSet and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// goListPackage is the subset of `go list -json` output the loader
// consumes.
type goListPackage struct {
	ImportPath   string
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Path string }
}

// LoadPatterns expands the go package patterns (for example "./...")
// relative to moduleDir with `go list` and loads every matched
// package. Directory arguments under a testdata tree are loaded as
// fixture packages instead, so dclint can be pointed straight at
// analyzer fixtures.
func (l *Loader) LoadPatterns(moduleDir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var listArgs []string
	var pkgs []*Package
	for _, pat := range patterns {
		if dir, ok := fixtureDir(moduleDir, pat); ok {
			// The fixture's import path is its path below testdata/src,
			// exactly like analysistest — so path-scoped analyzers
			// (walltime) see the same RelPath under test as in the
			// real tree.
			path := filepath.ToSlash(pat)
			if i := strings.Index(path, "testdata/src/"); i >= 0 {
				path = path[i+len("testdata/src/"):]
			}
			p, err := l.LoadFixture(dir, strings.TrimSuffix(path, "/"))
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, p)
			continue
		}
		listArgs = append(listArgs, pat)
	}
	if len(listArgs) == 0 {
		return pkgs, nil
	}

	cmd := exec.Command("go", append([]string{"list", "-json"}, listArgs...)...)
	cmd.Dir = moduleDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s",
			strings.Join(listArgs, " "), err, stderr.String())
	}

	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var gp goListPackage
		if err := dec.Decode(&gp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		modPath := ""
		if gp.Module != nil {
			modPath = gp.Module.Path
		}
		p, err := l.loadListed(gp, modPath, append(gp.GoFiles, gp.TestGoFiles...), gp.ImportPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
		if len(gp.XTestGoFiles) > 0 {
			xp, err := l.loadListed(gp, modPath, gp.XTestGoFiles, gp.ImportPath+"_test")
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, xp)
		}
	}
	return pkgs, nil
}

// fixtureDir reports whether pattern names an on-disk testdata
// directory (rather than a go list package pattern).
func fixtureDir(moduleDir, pattern string) (string, bool) {
	if !strings.Contains(pattern, "testdata") {
		return "", false
	}
	dir := pattern
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(moduleDir, dir)
	}
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return "", false
	}
	return dir, true
}

// loadListed parses the named files of one `go list` entry and
// type-checks them as importPath.
func (l *Loader) loadListed(gp goListPackage, modPath string, files []string, importPath string) (*Package, error) {
	var paths []string
	for _, f := range files {
		paths = append(paths, filepath.Join(gp.Dir, f))
	}
	rel := importPath
	if modPath != "" {
		if importPath == modPath || importPath == modPath+"_test" {
			rel = "."
		} else {
			rel = strings.TrimPrefix(importPath, modPath+"/")
		}
	}
	return l.load(gp.Dir, importPath, rel, paths)
}

// LoadFixture loads a fixture directory as a single package whose
// import path (and RelPath) is path. Fixtures may import only the
// standard library.
func (l *Loader) LoadFixture(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no .go files in fixture %s", dir)
	}
	sort.Strings(paths)
	return l.load(dir, path, path, paths)
}

// load parses files and type-checks them as one package.
func (l *Loader) load(dir, importPath, relPath string, paths []string) (*Package, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(l.Fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", importPath, err)
	}
	return &Package{
		Path:    importPath,
		RelPath: relPath,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
