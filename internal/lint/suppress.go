package lint

import (
	"sort"
	"strings"
)

// The one suppression mechanism all analyzers honor:
//
//	//dclint:allow <analyzer> -- <reason>
//
// The directive suppresses findings of exactly that analyzer on its
// own line (trailing comment) or on the line immediately below (a
// line of its own above the flagged code). The directive is itself
// linted: a missing or empty reason, or an unknown analyzer name, is
// an error attributed to the pseudo-analyzer "dclint" — and those
// errors are not suppressible.

const directivePrefix = "//dclint:allow"

// directiveErrAnalyzer attributes malformed-directive findings.
const directiveErrAnalyzer = "dclint"

type directive struct {
	analyzer string
	file     string
	line     int
}

type directiveSet struct {
	// byFileLine maps file -> analyzer -> sorted directive lines.
	byFileLine map[string]map[string][]int
}

// suppresses reports whether a directive for d's analyzer sits on d's
// line or the line directly above it.
func (s directiveSet) suppresses(d Diagnostic) bool {
	lines := s.byFileLine[d.Pos.Filename][d.Analyzer]
	for _, l := range lines {
		if l == d.Pos.Line || l == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// collectDirectives scans every comment in the load set for
// //dclint:allow directives, returning the valid ones and a
// diagnostic for each malformed one.
func collectDirectives(pkgs []*Package) (directiveSet, []Diagnostic) {
	set := directiveSet{byFileLine: make(map[string]map[string][]int)}
	var errs []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					d, msg := parseDirective(c.Text)
					if msg != "" {
						errs = append(errs, Diagnostic{
							Pos:      pos,
							Analyzer: directiveErrAnalyzer,
							Message:  msg,
						})
						continue
					}
					byAnalyzer := set.byFileLine[pos.Filename]
					if byAnalyzer == nil {
						byAnalyzer = make(map[string][]int)
						set.byFileLine[pos.Filename] = byAnalyzer
					}
					byAnalyzer[d.analyzer] = append(byAnalyzer[d.analyzer], pos.Line)
				}
			}
		}
	}
	for _, byAnalyzer := range set.byFileLine {
		for _, lines := range byAnalyzer {
			sort.Ints(lines)
		}
	}
	return set, errs
}

// parseDirective splits "//dclint:allow <analyzer> -- <reason>". On
// success msg is empty; otherwise msg is the error to report.
func parseDirective(text string) (directive, string) {
	rest := strings.TrimPrefix(text, directivePrefix)
	// The reason ends at a nested comment marker, so analysistest-style
	// fixtures can append `// want "..."` expectations to a directive
	// line.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		// e.g. //dclint:allowed — some other word, not our directive.
		// Treat the unknown spelling as an error rather than silently
		// ignoring a near-miss of the suppression syntax.
		return directive{}, "malformed //dclint:allow directive: want //dclint:allow <analyzer> -- <reason>"
	}
	name, reason, found := strings.Cut(rest, "--")
	name = strings.TrimSpace(name)
	reason = strings.TrimSpace(reason)
	if name == "" {
		return directive{}, "//dclint:allow is missing an analyzer name: want //dclint:allow <analyzer> -- <reason>"
	}
	if strings.ContainsAny(name, " \t") {
		return directive{}, "//dclint:allow names one analyzer: want //dclint:allow <analyzer> -- <reason>"
	}
	if _, ok := ByName(name); !ok {
		known := make([]string, 0, len(All()))
		for _, a := range All() {
			known = append(known, a.Name)
		}
		return directive{}, "//dclint:allow names unknown analyzer " +
			quoted(name) + " (analyzers: " + strings.Join(known, ", ") + ")"
	}
	if !found || reason == "" {
		return directive{}, "//dclint:allow " + name +
			" has no reason: want //dclint:allow " + name + " -- <reason>"
	}
	return directive{analyzer: name}, ""
}

func quoted(s string) string { return `"` + s + `"` }
