package lint

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRootForTest locates the repository root via the go command, so
// the smoke test is independent of the package's location.
func moduleRootForTest(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" {
		t.Fatal("not in a module")
	}
	return filepath.Dir(gomod)
}

// TestSuiteCleanOnRealTree is the gate the CI job re-runs via
// cmd/dclint: the full analyzer suite over the real module must come
// back empty. Every intentional exception in the tree carries a
// //dclint:allow with its reason; anything else is a regression of a
// determinism or concurrency invariant.
func TestSuiteCleanOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader := NewLoader()
	pkgs, err := loader.LoadPatterns(moduleRootForTest(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern expansion looks broken", len(pkgs))
	}
	diags, err := Run(pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
