package plot

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTableAlignsColumns(t *testing.T) {
	out := Table("title", []string{"a", "bbbb"}, [][]string{
		{"xx", "1"},
		{"y", "22"},
	}, "a note")
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "note: a note") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, header, rule, 2 rows, note = 6 lines.
	if len(lines) != 6 {
		t.Fatalf("lines = %d, want 6:\n%s", len(lines), out)
	}
	if len(lines[1]) == 0 || !strings.HasPrefix(lines[2], "---") {
		t.Errorf("header/rule malformed:\n%s", out)
	}
}

func TestTableWithoutTitleOrNote(t *testing.T) {
	out := Table("", []string{"c"}, [][]string{{"v"}}, "")
	if strings.Contains(out, "note:") {
		t.Error("unexpected note line")
	}
	if strings.HasPrefix(out, "\n") {
		t.Error("leading blank line without title")
	}
}

func TestBarChartScalesBars(t *testing.T) {
	out := BarChart("chart", "units", []Bar{
		{Label: "big", Value: 100},
		{Label: "small", Value: 50},
		{Label: "zero", Value: 0},
	}, 20)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	big := strings.Count(lines[1], "#")
	small := strings.Count(lines[2], "#")
	zero := strings.Count(lines[3], "#")
	if big != 20 {
		t.Errorf("big bar = %d hashes, want 20", big)
	}
	if small != 10 {
		t.Errorf("small bar = %d hashes, want 10", small)
	}
	if zero != 0 {
		t.Errorf("zero bar = %d hashes, want 0", zero)
	}
	if !strings.Contains(lines[1], "100 units") {
		t.Errorf("missing value+unit: %q", lines[1])
	}
}

func TestBarChartTinyPositiveGetsOneHash(t *testing.T) {
	out := BarChart("", "", []Bar{{Label: "a", Value: 1000}, {Label: "b", Value: 1}}, 10)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "#") != 1 {
		t.Errorf("tiny positive bar should render one hash: %q", lines[1])
	}
}

func TestLineTable(t *testing.T) {
	out := LineTable("sweep", "x", []string{"p1", "p2"}, []Series{
		{Label: "cons", Y: []float64{10, 20}},
		{Label: "perf", Y: []float64{1.5}},
	}, "")
	if !strings.Contains(out, "p1") || !strings.Contains(out, "p2") {
		t.Errorf("missing ticks:\n%s", out)
	}
	if !strings.Contains(out, "1.50") {
		t.Errorf("missing formatted value:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing filler for short series:\n%s", out)
	}
}

func TestBarChartSVGWellFormed(t *testing.T) {
	svg := BarChartSVG("total <consumption>", "node*hour", []Bar{
		{Label: "DCS", Value: 91558},
		{Label: "DawningCloud", Value: 81419},
	})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Error("SVG not well delimited")
	}
	if strings.Contains(svg, "<consumption>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;consumption&gt;") {
		t.Error("escaped title missing")
	}
	if strings.Count(svg, "<rect") < 3 { // background + 2 bars
		t.Errorf("expected >= 3 rects:\n%s", svg)
	}
	if !strings.Contains(svg, "DawningCloud") {
		t.Error("bar label missing")
	}
}

func TestBarChartSVGEmptyAndZero(t *testing.T) {
	svg := BarChartSVG("t", "u", nil)
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("empty chart not rendered")
	}
	svg = BarChartSVG("t", "u", []Bar{{Label: "z", Value: 0}})
	if !strings.Contains(svg, `height="0.0"`) {
		t.Error("zero bar should have zero height")
	}
}

func TestLineChartSVGSeries(t *testing.T) {
	svg := LineChartSVG("sweep", "params", "value", []string{"a", "b", "c"}, []Series{
		{Label: "s1", Y: []float64{1, 2, 3}},
		{Label: "s2", Y: []float64{3, 2, 1}},
	})
	if strings.Count(svg, "<polyline") != 2 {
		t.Errorf("polylines = %d, want 2", strings.Count(svg, "<polyline"))
	}
	if !strings.Contains(svg, "s1") || !strings.Contains(svg, "s2") {
		t.Error("legend entries missing")
	}
}

func TestLineChartSVGSingleTick(t *testing.T) {
	svg := LineChartSVG("one", "x", "y", []string{"only"}, []Series{{Label: "s", Y: []float64{5}}})
	if !strings.Contains(svg, "only") {
		t.Error("single tick missing")
	}
}

// Property: tables never lose cells — every cell string appears in the
// rendered output.
func TestPropertyTableContainsAllCells(t *testing.T) {
	f := func(raw [][2]uint16) bool {
		if len(raw) == 0 {
			return true
		}
		rows := make([][]string, len(raw))
		for i, r := range raw {
			rows[i] = []string{formatValue(float64(r[0])), formatValue(float64(r[1]))}
		}
		out := Table("t", []string{"c1", "c2"}, rows, "")
		for _, row := range rows {
			for _, cell := range row {
				if !strings.Contains(out, cell) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: bar width is monotone in value.
func TestPropertyBarMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		out := BarChart("", "", []Bar{
			{Label: "a", Value: float64(a)},
			{Label: "b", Value: float64(b)},
		}, 30)
		lines := strings.Split(strings.TrimSpace(out), "\n")
		ha := strings.Count(lines[0], "#")
		hb := strings.Count(lines[1], "#")
		if a >= b && ha < hb {
			return false
		}
		if b >= a && hb < ha {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
