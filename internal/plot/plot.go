// Package plot renders the experiment harness's tables and figures as
// aligned text, ASCII charts and standalone SVG files, using only the
// standard library. It is intentionally thin: the paper's figures are bar
// charts and small parameter-sweep line series.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows of cells with aligned columns, a header rule, and an
// optional caption line.
func Table(title string, columns []string, rows [][]string, note string) string {
	widths := make([]int, len(columns))
	for i, c := range columns {
		widths[i] = len(c)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(columns)-1)))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	if note != "" {
		fmt.Fprintf(&b, "note: %s\n", note)
	}
	return b.String()
}

// Bar is one bar of a chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders a horizontal ASCII bar chart scaled to width characters.
func BarChart(title, unit string, bars []Bar, width int) string {
	if width < 10 {
		width = 10
	}
	var max float64
	labelW := 0
	for _, bar := range bars {
		if bar.Value > max {
			max = bar.Value
		}
		if len(bar.Label) > labelW {
			labelW = len(bar.Label)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, bar := range bars {
		n := 0
		if max > 0 {
			n = int(math.Round(bar.Value / max * float64(width)))
		}
		if bar.Value > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s |%s %s%s\n", labelW, bar.Label,
			strings.Repeat("#", n), formatValue(bar.Value), unitSuffix(unit))
	}
	return b.String()
}

func unitSuffix(unit string) string {
	if unit == "" {
		return ""
	}
	return " " + unit
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// Series is one line of a multi-series chart.
type Series struct {
	Label string
	Y     []float64
}

// LineTable renders multi-series sweep data as an aligned table: one row
// per X tick, one column per series. Sweeps read better as numbers than as
// low-resolution ASCII lines.
func LineTable(title string, xLabel string, xs []string, series []Series, note string) string {
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, xLabel)
	for _, s := range series {
		cols = append(cols, s.Label)
	}
	rows := make([][]string, len(xs))
	for i, x := range xs {
		row := make([]string, 0, len(series)+1)
		row = append(row, x)
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, formatValue(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows[i] = row
	}
	return Table(title, cols, rows, note)
}

// svgEscape escapes text for SVG attribute/content use.
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

var svgPalette = []string{"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948"}

// BarChartSVG renders a vertical bar chart as a standalone SVG document.
func BarChartSVG(title, unit string, bars []Bar) string {
	const (
		w, h             = 640, 400
		marginL, marginB = 60, 60
		marginT, marginR = 40, 20
		plotW            = w - marginL - marginR
		plotH            = h - marginT - marginB
	)
	var max float64
	for _, bar := range bars {
		if bar.Value > max {
			max = bar.Value
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle" font-family="sans-serif">%s</text>`, w/2, svgEscape(title))
	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="11" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 16 %d)">%s</text>`, marginT+plotH/2, marginT+plotH/2, svgEscape(unit))
	if n := len(bars); n > 0 {
		slot := float64(plotW) / float64(n)
		barW := slot * 0.6
		for i, bar := range bars {
			bh := bar.Value / max * float64(plotH)
			x := float64(marginL) + slot*float64(i) + (slot-barW)/2
			y := float64(marginT+plotH) - bh
			color := svgPalette[i%len(svgPalette)]
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`, x, y, barW, bh, color)
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle" font-family="sans-serif">%s</text>`,
				x+barW/2, marginT+plotH+16, svgEscape(bar.Label))
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" font-family="sans-serif">%s</text>`,
				x+barW/2, y-4, formatValue(bar.Value))
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// LineChartSVG renders a multi-series line chart as a standalone SVG
// document. The x axis uses the tick labels verbatim.
func LineChartSVG(title, xLabel, yLabel string, xs []string, series []Series) string {
	const (
		w, h             = 720, 420
		marginL, marginB = 70, 70
		marginT, marginR = 40, 140
		plotW            = w - marginL - marginR
		plotH            = h - marginT - marginB
	)
	var max float64
	for _, s := range series {
		for _, y := range s.Y {
			if y > max {
				max = y
			}
		}
	}
	if max == 0 {
		max = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, w, h)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" text-anchor="middle" font-family="sans-serif">%s</text>`, w/2, svgEscape(title))
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, marginL, marginT, marginL, marginT+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`, marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle" font-family="sans-serif">%s</text>`, marginL+plotW/2, h-16, svgEscape(xLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" text-anchor="middle" font-family="sans-serif" transform="rotate(-90 16 %d)">%s</text>`, marginT+plotH/2, marginT+plotH/2, svgEscape(yLabel))
	n := len(xs)
	xAt := func(i int) float64 {
		if n <= 1 {
			return float64(marginL)
		}
		return float64(marginL) + float64(plotW)*float64(i)/float64(n-1)
	}
	for i, x := range xs {
		if n > 12 && i%2 == 1 {
			continue // thin dense tick labels
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="9" text-anchor="middle" font-family="sans-serif">%s</text>`,
			xAt(i), marginT+plotH+14, svgEscape(x))
	}
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i, y := range s.Y {
			if i >= n {
				break
			}
			py := float64(marginT+plotH) - y/max*float64(plotH)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAt(i), py))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`, strings.Join(pts, " "), color)
		ly := marginT + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, w-marginR+10, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="sans-serif">%s</text>`, w-marginR+24, ly+9, svgEscape(s.Label))
	}
	b.WriteString(`</svg>`)
	return b.String()
}
