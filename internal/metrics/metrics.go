// Package metrics implements the paper's cost accounting: per-provider
// resource consumption in node*hours with the cloud's one-hour leasing
// granularity, the resource provider's total and peak consumption, and the
// node-adjustment counts behind the management-overhead analysis.
//
// The central type is Accountant. Runtime environments call Acquire and
// Release as they negotiate resources; at the end of a run CloseAll settles
// open leases and the experiment harness reads the aggregates.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// HourSeconds is the cloud leasing time unit the paper fixes: resources are
// charged in whole hours, like EC2.
const HourSeconds int64 = 3600

// leaseSeg is a block of count nodes held over [start, end).
type leaseSeg struct {
	start, end int64
	count      int
}

// ownerAccount accumulates one consumer's lease history.
type ownerAccount struct {
	open          []leaseSeg // end undefined while open; LIFO close order
	closed        []leaseSeg
	held          int
	nodesAdjusted int // sum of node counts over acquire+release operations
	adjustOps     int
}

// Accountant records lease activity against a virtual clock.
type Accountant struct {
	now    func() int64
	owners map[string]*ownerAccount
	order  []string // deterministic iteration
}

// NewAccountant builds an accountant reading time from now (typically
// sim.Engine.Now).
func NewAccountant(now func() int64) *Accountant {
	return &Accountant{now: now, owners: make(map[string]*ownerAccount)}
}

func (a *Accountant) owner(name string) *ownerAccount {
	oa, ok := a.owners[name]
	if !ok {
		oa = &ownerAccount{}
		a.owners[name] = oa
		a.order = append(a.order, name)
	}
	return oa
}

// Acquire records owner obtaining n nodes now. Adjustment counters grow by
// n: the paper counts every node assignment as setup work.
func (a *Accountant) Acquire(owner string, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("metrics: acquire %d nodes", n))
	}
	oa := a.owner(owner)
	oa.open = append(oa.open, leaseSeg{start: a.now(), count: n})
	oa.held += n
	oa.nodesAdjusted += n
	oa.adjustOps++
}

// Release records owner returning n nodes now. Open leases close most
// recent first, matching the policy's behaviour of releasing dynamically
// acquired blocks while keeping initial resources.
func (a *Accountant) Release(owner string, n int) error {
	oa := a.owner(owner)
	if n <= 0 {
		return fmt.Errorf("metrics: release %d nodes", n)
	}
	if n > oa.held {
		return fmt.Errorf("metrics: %s releasing %d nodes but holds %d", owner, n, oa.held)
	}
	now := a.now()
	oa.held -= n
	oa.nodesAdjusted += n
	oa.adjustOps++
	remaining := n
	for remaining > 0 {
		last := &oa.open[len(oa.open)-1]
		take := last.count
		if take > remaining {
			take = remaining
		}
		oa.closed = append(oa.closed, leaseSeg{start: last.start, end: now, count: take})
		last.count -= take
		remaining -= take
		if last.count == 0 {
			oa.open = oa.open[:len(oa.open)-1]
		}
	}
	return nil
}

// CloseAll settles every open lease at time end, which must be at or after
// the clock. Call once when a simulation finishes. Closing counts as
// reclaiming for adjustment purposes only when countAdjust is true (a DCS
// owner keeps its machines; a cloud tear-down wipes nodes).
func (a *Accountant) CloseAll(end int64, countAdjust bool) {
	for _, name := range a.order {
		oa := a.owners[name]
		for _, seg := range oa.open {
			if seg.count == 0 {
				continue
			}
			oa.closed = append(oa.closed, leaseSeg{start: seg.start, end: end, count: seg.count})
			if countAdjust {
				oa.nodesAdjusted += seg.count
				oa.adjustOps++
			}
		}
		oa.open = nil
		oa.held = 0
	}
}

// Held reports the nodes owner currently holds.
func (a *Accountant) Held(owner string) int {
	if oa, ok := a.owners[owner]; ok {
		return oa.held
	}
	return 0
}

// billed returns the hour-rounded node-seconds of a segment.
func billed(seg leaseSeg) int64 {
	dur := seg.end - seg.start
	if dur <= 0 {
		// Zero-length leases still pay one unit: acquiring a node and
		// dropping it instantly is a whole billing hour, as on EC2.
		dur = 1
	}
	hours := (dur + HourSeconds - 1) / HourSeconds
	return hours * HourSeconds * int64(seg.count)
}

// BilledNodeHours reports owner's consumption in node*hours with hourly
// rounding per lease segment. Open leases are not counted; CloseAll first.
func (a *Accountant) BilledNodeHours(owner string) float64 {
	oa, ok := a.owners[owner]
	if !ok {
		return 0
	}
	var total int64
	for _, seg := range oa.closed {
		total += billed(seg)
	}
	return float64(total) / float64(HourSeconds)
}

// BilledNodeHoursThrough reports owner's consumption in node*hours as
// it stands at time t: closed segments bill normally and still-open
// leases bill as if they closed at t. It is the mid-run snapshot behind
// per-window reports; because open leases round up to the running hour,
// successive snapshots are monotone and converge on the final
// BilledNodeHours once CloseAll settles at the same instant.
func (a *Accountant) BilledNodeHoursThrough(owner string, t int64) float64 {
	oa, ok := a.owners[owner]
	if !ok {
		return 0
	}
	var total int64
	for _, seg := range oa.closed {
		total += billed(seg)
	}
	for _, seg := range oa.open {
		if seg.count == 0 {
			continue
		}
		total += billed(leaseSeg{start: seg.start, end: t, count: seg.count})
	}
	return float64(total) / float64(HourSeconds)
}

// TotalBilledNodeHoursThrough sums BilledNodeHoursThrough over all
// owners: the running total behind the converging economies-of-scale
// summary.
func (a *Accountant) TotalBilledNodeHoursThrough(t int64) float64 {
	var total float64
	for _, name := range a.order {
		total += a.BilledNodeHoursThrough(name, t)
	}
	return total
}

// ExactNodeHours reports owner's consumption without hourly rounding.
func (a *Accountant) ExactNodeHours(owner string) float64 {
	oa, ok := a.owners[owner]
	if !ok {
		return 0
	}
	var total int64
	for _, seg := range oa.closed {
		if seg.end > seg.start {
			total += (seg.end - seg.start) * int64(seg.count)
		}
	}
	return float64(total) / float64(HourSeconds)
}

// TotalBilledNodeHours sums billed consumption over all owners: the
// resource provider's total resource consumption (Figure 12).
func (a *Accountant) TotalBilledNodeHours() float64 {
	var total float64
	for _, name := range a.order {
		total += a.BilledNodeHours(name)
	}
	return total
}

// NodesAdjusted reports the accumulated node count over owner's acquire and
// release operations (Figure 14).
func (a *Accountant) NodesAdjusted(owner string) int {
	if oa, ok := a.owners[owner]; ok {
		return oa.nodesAdjusted
	}
	return 0
}

// TotalNodesAdjusted sums NodesAdjusted over all owners.
func (a *Accountant) TotalNodesAdjusted() int {
	total := 0
	for _, name := range a.order {
		total += a.owners[name].nodesAdjusted
	}
	return total
}

// AdjustOps reports the number of acquire/release operations by owner.
func (a *Accountant) AdjustOps(owner string) int {
	if oa, ok := a.owners[owner]; ok {
		return oa.adjustOps
	}
	return 0
}

// Owners lists owner names in first-seen order.
func (a *Accountant) Owners() []string {
	out := make([]string, len(a.order))
	copy(out, a.order)
	return out
}

// Intervals returns every closed lease as a stats.Interval, across all
// owners, sorted by start. CloseAll first for a complete picture.
func (a *Accountant) Intervals() []stats.Interval {
	var out []stats.Interval
	for _, name := range a.order {
		for _, seg := range a.owners[name].closed {
			if seg.end > seg.start {
				out = append(out, stats.Interval{Start: seg.start, End: seg.end, Level: seg.count})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// OwnerIntervals returns owner's closed leases sorted by start.
func (a *Accountant) OwnerIntervals(owner string) []stats.Interval {
	oa, ok := a.owners[owner]
	if !ok {
		return nil
	}
	var out []stats.Interval
	for _, seg := range oa.closed {
		if seg.end > seg.start {
			out = append(out, stats.Interval{Start: seg.start, End: seg.end, Level: seg.count})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// PeakNodes reports the maximum of per-hour peak held nodes across all
// owners over [0, horizon): the paper's "peak resource consumption" in
// nodes per hour (Figure 13).
func (a *Accountant) PeakNodes(horizon int64) int {
	buckets := stats.BucketMax(a.Intervals(), horizon, HourSeconds)
	return stats.MaxInt(buckets)
}

// HourlyNodes returns the per-hour peak held nodes series across all
// owners, for plotting capacity-planning profiles.
func (a *Accountant) HourlyNodes(horizon int64) []int {
	return stats.BucketMax(a.Intervals(), horizon, HourSeconds)
}
