package metrics

import (
	"testing"
	"testing/quick"
)

// fakeClock provides a manually advanced now function.
type fakeClock struct{ t int64 }

func (c *fakeClock) now() int64 { return c.t }

func TestBilledRoundsUpToWholeHours(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	a.Acquire("sp", 4)
	c.t = 90 * 60 // 1.5 hours
	if err := a.Release("sp", 4); err != nil {
		t.Fatal(err)
	}
	a.CloseAll(c.t, true)
	// 1.5h rounds to 2h * 4 nodes = 8 node-hours.
	if got := a.BilledNodeHours("sp"); got != 8 {
		t.Errorf("BilledNodeHours = %g, want 8", got)
	}
	if got := a.ExactNodeHours("sp"); got != 6 {
		t.Errorf("ExactNodeHours = %g, want 6", got)
	}
}

func TestExactHourNotRounded(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	a.Acquire("sp", 2)
	c.t = 3600
	if err := a.Release("sp", 2); err != nil {
		t.Fatal(err)
	}
	if got := a.BilledNodeHours("sp"); got != 2 {
		t.Errorf("BilledNodeHours = %g, want 2 (exactly one hour)", got)
	}
}

func TestZeroLengthLeaseBillsOneHour(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	a.Acquire("sp", 3)
	if err := a.Release("sp", 3); err != nil {
		t.Fatal(err)
	}
	if got := a.BilledNodeHours("sp"); got != 3 {
		t.Errorf("BilledNodeHours = %g, want 3 (instant lease pays an hour)", got)
	}
}

func TestLIFOCloseKeepsInitialLease(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	a.Acquire("sp", 10) // initial resources at t=0
	c.t = 3600
	a.Acquire("sp", 5) // dynamic block
	c.t = 2 * 3600
	if err := a.Release("sp", 5); err != nil {
		t.Fatal(err)
	}
	c.t = 10 * 3600
	a.CloseAll(c.t, false)
	// Initial 10 nodes for 10h = 100; dynamic 5 nodes for 1h = 5.
	if got := a.BilledNodeHours("sp"); got != 105 {
		t.Errorf("BilledNodeHours = %g, want 105", got)
	}
}

func TestReleaseSpanningMultipleSegments(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	a.Acquire("sp", 3)
	c.t = 3600
	a.Acquire("sp", 2)
	c.t = 7200
	// Release 4: closes the 2-node segment and 2 of the 3-node segment.
	if err := a.Release("sp", 4); err != nil {
		t.Fatal(err)
	}
	if a.Held("sp") != 1 {
		t.Errorf("Held = %d, want 1", a.Held("sp"))
	}
	a.CloseAll(7200, false)
	// Segments: 2 nodes [3600,7200) = 2h; 2 nodes [0,7200) = 4h;
	// 1 node [0,7200) = 2h. Total = 2+4+2 = 8 node-hours.
	if got := a.BilledNodeHours("sp"); got != 8 {
		t.Errorf("BilledNodeHours = %g, want 8", got)
	}
}

func TestReleaseErrors(t *testing.T) {
	a := NewAccountant(func() int64 { return 0 })
	a.Acquire("sp", 2)
	if err := a.Release("sp", 3); err == nil {
		t.Error("over-release succeeded")
	}
	if err := a.Release("sp", 0); err == nil {
		t.Error("zero release succeeded")
	}
	if err := a.Release("ghost", 1); err == nil {
		t.Error("release from unknown owner succeeded")
	}
}

func TestAcquireNonPositivePanics(t *testing.T) {
	a := NewAccountant(func() int64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Error("Acquire(0) did not panic")
		}
	}()
	a.Acquire("sp", 0)
}

func TestAdjustmentCounters(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	a.Acquire("sp", 10)
	c.t = 3600
	a.Acquire("sp", 5)
	c.t = 7200
	if err := a.Release("sp", 5); err != nil {
		t.Fatal(err)
	}
	if got := a.NodesAdjusted("sp"); got != 20 {
		t.Errorf("NodesAdjusted = %d, want 20 (10+5+5)", got)
	}
	if got := a.AdjustOps("sp"); got != 3 {
		t.Errorf("AdjustOps = %d, want 3", got)
	}
	a.CloseAll(10000, true)
	if got := a.NodesAdjusted("sp"); got != 30 {
		t.Errorf("NodesAdjusted after CloseAll(true) = %d, want 30", got)
	}
}

func TestCloseAllWithoutAdjustCount(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	a.Acquire("dcs", 15)
	a.CloseAll(3600, false)
	if got := a.NodesAdjusted("dcs"); got != 15 {
		t.Errorf("NodesAdjusted = %d, want 15 (acquire only)", got)
	}
	if got := a.BilledNodeHours("dcs"); got != 15 {
		t.Errorf("BilledNodeHours = %g, want 15", got)
	}
}

func TestTotalsAcrossOwners(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	a.Acquire("a", 1)
	a.Acquire("b", 2)
	c.t = 3600
	a.CloseAll(c.t, true)
	if got := a.TotalBilledNodeHours(); got != 3 {
		t.Errorf("TotalBilledNodeHours = %g, want 3", got)
	}
	if got := a.TotalNodesAdjusted(); got != 6 {
		t.Errorf("TotalNodesAdjusted = %d, want 6", got)
	}
	owners := a.Owners()
	if len(owners) != 2 || owners[0] != "a" || owners[1] != "b" {
		t.Errorf("Owners = %v, want [a b]", owners)
	}
}

func TestPeakNodes(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	a.Acquire("a", 100)
	c.t = 1800
	a.Acquire("b", 50)
	c.t = 3600
	if err := a.Release("a", 100); err != nil {
		t.Fatal(err)
	}
	c.t = 4 * 3600
	a.CloseAll(c.t, false)
	// Hour 0: a=100 + b=50 -> 150. Hours 1-3: b=50.
	if got := a.PeakNodes(c.t); got != 150 {
		t.Errorf("PeakNodes = %d, want 150", got)
	}
	hourly := a.HourlyNodes(c.t)
	want := []int{150, 50, 50, 50}
	if len(hourly) != len(want) {
		t.Fatalf("HourlyNodes = %v, want %v", hourly, want)
	}
	for i := range want {
		if hourly[i] != want[i] {
			t.Errorf("hour %d = %d, want %d", i, hourly[i], want[i])
		}
	}
}

func TestIntervalsSortedAndComplete(t *testing.T) {
	c := &fakeClock{}
	a := NewAccountant(c.now)
	c.t = 100
	a.Acquire("b", 2)
	c.t = 200
	a.Acquire("a", 1)
	c.t = 300
	a.CloseAll(c.t, false)
	ivs := a.Intervals()
	if len(ivs) != 2 {
		t.Fatalf("Intervals = %v, want 2 entries", ivs)
	}
	if ivs[0].Start != 100 || ivs[1].Start != 200 {
		t.Errorf("intervals unsorted: %v", ivs)
	}
	own := a.OwnerIntervals("b")
	if len(own) != 1 || own[0].Level != 2 {
		t.Errorf("OwnerIntervals(b) = %v", own)
	}
	if a.OwnerIntervals("ghost") != nil {
		t.Error("OwnerIntervals(ghost) != nil")
	}
}

func TestUnknownOwnerQueries(t *testing.T) {
	a := NewAccountant(func() int64 { return 0 })
	if a.BilledNodeHours("x") != 0 || a.ExactNodeHours("x") != 0 ||
		a.NodesAdjusted("x") != 0 || a.AdjustOps("x") != 0 || a.Held("x") != 0 {
		t.Error("unknown owner should report zeros")
	}
}

// Property: billed consumption is always >= exact consumption, and at most
// exact + one hour per lease segment.
func TestPropertyBillingBounds(t *testing.T) {
	f := func(ops []struct {
		Dt      uint16
		N       uint8
		Release bool
	}) bool {
		c := &fakeClock{}
		a := NewAccountant(c.now)
		segments := 0
		held := 0
		for _, op := range ops {
			c.t += int64(op.Dt)
			n := int(op.N%16) + 1
			if op.Release {
				if held >= n {
					if err := a.Release("o", n); err != nil {
						return false
					}
					held -= n
				}
			} else {
				a.Acquire("o", n)
				held += n
				segments++
			}
		}
		c.t += 10
		a.CloseAll(c.t, false)
		billed := a.BilledNodeHours("o")
		exact := a.ExactNodeHours("o")
		if billed < exact {
			return false
		}
		// Each acquire can split into at most N segments of 1 node, but
		// the rounding overhead is bounded by 1 hour per held node per
		// close; use a safe upper bound: exact + total nodes acquired.
		totalNodes := 0
		for _, op := range ops {
			if !op.Release {
				totalNodes += int(op.N%16) + 1
			}
		}
		return billed <= exact+float64(totalNodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: held nodes reported by the accountant always match a reference
// counter through any valid op sequence.
func TestPropertyHeldMatchesReference(t *testing.T) {
	f := func(ops []struct {
		Dt      uint8
		N       uint8
		Release bool
	}) bool {
		c := &fakeClock{}
		a := NewAccountant(c.now)
		held := 0
		for _, op := range ops {
			c.t += int64(op.Dt)
			n := int(op.N%8) + 1
			if op.Release && held >= n {
				if err := a.Release("o", n); err != nil {
					return false
				}
				held -= n
			} else if !op.Release {
				a.Acquire("o", n)
				held += n
			}
			if a.Held("o") != held {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
