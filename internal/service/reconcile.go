package service

import (
	"fmt"
	"time"

	"repro/internal/runstore"
)

// reconcileLoop runs the stale-claim scan at the configured cadence for
// the service's lifetime. It starts with the worker pool: a service
// that never executes a queued run has no claims to heal.
func (s *Service) reconcileLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ReconcileEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Reconcile()
		case <-s.base.Done():
			return
		}
	}
}

// Reconcile performs one self-healing pass: every running run whose
// worker claim has gone a full LeaseTTL without a heartbeat is returned
// to the queue for a fresh attempt, or dead-lettered once its retries
// are spent. It returns how many runs took each path. The background
// loop calls it on a timer; tests and operators may call it directly —
// concurrent passes are safe (the per-run transition re-checks
// staleness under the run's lock, so only one pass wins).
//
// A healthy in-process worker cannot trip this: its heartbeat runs at
// LeaseTTL/3 by default. The claims that do trip it are real losses —
// a crashed fleet member's runs recovered at boot but wedged again, a
// worker goroutine stuck beyond the lease on a non-cancelable task —
// and requeueing advances the attempt generation, so even if the old
// attempt limps back to life its result and events are dropped.
func (s *Service) Reconcile() (requeued, deadLettered int) {
	now := s.cfg.Now()
	s.mu.Lock()
	var stale []*Run
	for _, r := range s.order {
		if r.claimStale(now, s.cfg.LeaseTTL) {
			stale = append(stale, r)
		}
	}
	s.mu.Unlock()

	for _, r := range stale {
		if r.Retries() >= s.cfg.MaxRetries {
			err := fmt.Errorf("service: run %s: worker claim stale after %d retries: %w",
				r.id, r.Retries(), ErrLeaseExpired)
			if r.finishAs(StatusDeadLetter, nil, err, false, 0) {
				deadLettered++
			}
			continue
		}
		retries, ok := r.requeueStale(s.base, now, s.cfg.LeaseTTL, "lease expired",
			fmt.Errorf("service: run %s attempt superseded: %w", r.id, ErrLeaseExpired))
		if !ok {
			continue // a heartbeat or finish won the race
		}
		s.record(&runstore.Record{Op: runstore.OpRequeue, ID: r.id, Retries: retries, At: now})
		s.mu.Lock()
		s.requeues++
		s.mu.Unlock()
		s.enqueue(r)
		requeued++
	}
	return requeued, deadLettered
}
