// Package service is the run-lifecycle subsystem behind the public
// asynchronous API: a run store with stable identities, content-hash
// deduplication and result caching, a bounded worker queue with
// backpressure, TTL eviction of finished runs, and graceful shutdown.
// cmd/dcserve exposes it over HTTP; the public Engine's blocking methods
// are thin wrappers over inline submissions to the same lifecycle.
//
// The package also provides Group, the synchronous cache/singleflight
// primitive generalized out of the experiment suite and the scenario
// engine: both now share one implementation of "concurrent callers asking
// for identical work share one execution".
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Group deduplicates concurrent identical work and caches successful
// results by key. It generalizes the singleflight logic that used to be
// private to experiments.Suite and the scenario engine:
//
//   - a successful result is cached forever (the simulations here are
//     deterministic, so a key fully identifies its result);
//   - concurrent callers asking for the same key share one in-flight
//     execution instead of racing to repeat it;
//   - a waiter honors its own context while waiting instead of blocking
//     behind another caller's execution;
//   - if the executing caller abandons the run to cancellation while a
//     waiter's own context is still alive, the waiter retries and runs
//     the work itself, so one caller's cancelled context never poisons
//     another's result.
//
// The zero value is ready to use. All methods are safe for concurrent
// use.
type Group struct {
	mu       sync.Mutex
	results  map[string]any
	inflight map[string]*groupCall
}

type groupCall struct {
	done chan struct{}
	res  any
	err  error
}

// Do returns the cached result for key, joins an identical in-flight
// call, or executes fn on the calling goroutine. fn is responsible for
// honoring the caller's own context (it typically closes over it); the
// lock is held only around the map check/fill, never across fn.
func (g *Group) Do(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	for {
		g.mu.Lock()
		if v, ok := g.results[key]; ok {
			g.mu.Unlock()
			return v, nil
		}
		if c, ok := g.inflight[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				// Honor the waiter's own deadline instead of blocking
				// behind another caller's execution.
				return nil, fmt.Errorf("service: wait for %q: %w", key, ctx.Err())
			}
			if c.err != nil && context.Cause(ctx) == nil &&
				(errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded)) {
				continue // the other caller gave up; run it ourselves
			}
			return c.res, c.err
		}
		c := &groupCall{done: make(chan struct{})}
		if g.inflight == nil {
			g.inflight = make(map[string]*groupCall)
		}
		g.inflight[key] = c
		g.mu.Unlock()

		c.res, c.err = fn()

		g.mu.Lock()
		delete(g.inflight, key)
		if c.err == nil {
			if g.results == nil {
				g.results = make(map[string]any)
			}
			g.results[key] = c.res
		}
		g.mu.Unlock()
		close(c.done)
		return c.res, c.err
	}
}

// Cached reports whether key has a cached result.
func (g *Group) Cached(key string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, ok := g.results[key]
	return ok
}
