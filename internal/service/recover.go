package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/events"
	"repro/internal/runstore"
)

// recover rebuilds the service from the store's replayed state at
// construction. A fresh store (and every in-memory store) is empty and
// this is a no-op; a durable store reopened over an existing data dir
// yields the crashed process's runs:
//
//   - terminal runs come back with their persisted result (done runs
//     whose result cannot be decoded demote to failed) and a
//     synthesized event history, and done runs re-enter the dedup
//     cache — identical submissions keep hitting across restarts;
//   - queued runs are rehydrated via Config.Rehydrate and re-queued;
//   - running runs lost their worker with the process: they count one
//     retry and re-queue (or dead-letter once retries are spent).
//
// Runs that cannot be rehydrated (no spec, no rehydrator, or the
// rehydrator fails) finish as failed — visible, explained, and
// persisted — rather than silently vanishing.
func (s *Service) recover() {
	states := s.store.Runs()
	if len(states) == 0 {
		return
	}
	now := s.cfg.Now()
	var resume []*Run
	s.mu.Lock()
	for i := range states {
		st := &states[i]
		if st.Seq > s.seq {
			s.seq = st.Seq
		}
		if r := s.restoreLocked(st, now); r != nil {
			resume = append(resume, r)
		}
	}
	if len(resume) > 0 {
		// Resumed work must not wait for the next submission to start
		// the lazily-launched pool.
		s.startWorkersLocked()
	}
	s.mu.Unlock()
	for _, r := range resume {
		s.enqueue(r)
	}
}

// restoreLocked rebuilds one run from its reduced store state and
// returns it when it needs a worker (recovered queued/running runs).
// Caller holds s.mu.
func (s *Service) restoreLocked(st *runstore.RunState, now time.Time) *Run {
	status, err := ParseStatus(st.Status)
	if err != nil {
		// A status this build does not know (downgrade over a newer data
		// dir). Leave the record on disk untouched; just don't serve it.
		s.storeErrs.Add(1)
		return nil
	}
	ctx, cancel := context.WithCancelCause(s.base)
	r := &Run{
		id: st.ID, seq: st.Seq, key: st.Key, kind: st.Kind, label: st.Label,
		spec:    st.Spec,
		svc:     s,
		created: st.Created,
		ctx:     ctx, cancel: cancel,
		gen: 1, retries: st.Retries,
		status: StatusQueued,
		wake:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	r.events = append(r.events, events.RunQueued{ID: r.id, Label: r.label})
	s.runs[r.id] = r
	s.order = append(s.order, r)

	if status.Terminal() {
		s.restoreTerminalLocked(r, st, status, now)
		return nil
	}

	task, rerr := s.rehydrateTask(st)
	if rerr != nil {
		s.finishRestoredLocked(r, StatusFailed, now,
			fmt.Errorf("service: run %s lost at restart: %w", r.id, rerr))
		s.failed++
		return nil
	}
	r.task = task
	if status == StatusRunning {
		// The claim died with the old process; that spends a retry.
		if r.retries >= s.cfg.MaxRetries {
			s.finishRestoredLocked(r, StatusDeadLetter, now,
				fmt.Errorf("service: run %s: worker claim stale after %d retries: %w",
					r.id, r.retries, ErrLeaseExpired))
			s.deadLetters++
			return nil
		}
		r.retries++
		r.events = append(r.events, events.RunRequeued{
			ID: r.id, Retries: r.retries, Reason: "recovered after restart"})
		s.record(&runstore.Record{Op: runstore.OpRequeue, ID: r.id, Retries: r.retries, At: now})
		s.requeues++
	}
	if st.Key != "" {
		s.byKey[st.Key] = r
	}
	s.recovered++
	return r
}

// restoreTerminalLocked finishes rebuilding an already-terminal run:
// timestamps, error, decoded result, synthesized closing events.
// Caller holds s.mu.
func (s *Service) restoreTerminalLocked(r *Run, st *runstore.RunState, status Status, now time.Time) {
	r.started = st.Started
	r.finished = st.Finished
	if r.finished.IsZero() {
		r.finished = now // defensive: never expose a terminal run with no finish time
	}
	if st.Error != "" {
		r.err = errors.New(st.Error)
	}
	if status == StatusDone {
		res, derr := s.decodeResult(st)
		if derr != nil {
			// The run finished, but this process cannot serve its result;
			// demote to failed and persist the demotion so the next boot
			// agrees.
			s.finishRestoredLocked(r, StatusFailed, now,
				fmt.Errorf("service: run %s result lost at restart: %w", r.id, derr))
			s.failed++
			return
		}
		r.result = res
		if st.Key != "" {
			s.byKey[st.Key] = r // the dedup cache survives restarts
		}
	}
	r.status = status
	if status == StatusDeadLetter {
		r.events = append(r.events, events.RunDeadLettered{ID: r.id, Retries: r.retries, Err: r.err})
	}
	r.events = append(r.events, events.RunFinished{ID: r.id, Status: status.String(), Err: r.err})
	close(r.done)
	r.cancel(nil)
}

// finishRestoredLocked terminalizes a run during recovery — a boot-time
// transition (lost spec, lost result, retries spent), not a replay of
// history — so it also persists the new terminal record. Caller holds
// s.mu; the run is not yet visible to workers, so direct field writes
// are safe.
func (s *Service) finishRestoredLocked(r *Run, st Status, now time.Time, err error) {
	r.status = st
	r.err = err
	r.finished = now
	r.task, r.sink = nil, nil
	if st == StatusDeadLetter {
		r.events = append(r.events, events.RunDeadLettered{ID: r.id, Retries: r.retries, Err: err})
	}
	r.events = append(r.events, events.RunFinished{ID: r.id, Status: st.String(), Err: err})
	close(r.done)
	r.cancel(nil)
	rec := &runstore.Record{Op: runstore.OpFinish, ID: r.id, Status: st.String(), At: now}
	if err != nil {
		rec.Error = err.Error()
	}
	s.record(rec)
}

// rehydrateTask rebuilds a recovered run's Task from its persisted spec.
func (s *Service) rehydrateTask(st *runstore.RunState) (Task, error) {
	if len(st.Spec) == 0 {
		return nil, errors.New("no spec persisted")
	}
	if s.cfg.Rehydrate == nil {
		return nil, errors.New("no rehydrator configured")
	}
	task, err := s.cfg.Rehydrate(st.Kind, st.Spec)
	if err != nil {
		return nil, err
	}
	if task == nil {
		return nil, fmt.Errorf("rehydrating %q returned no task", st.Kind)
	}
	return task, nil
}

// decodeResult rebuilds a recovered done run's result value.
func (s *Service) decodeResult(st *runstore.RunState) (any, error) {
	if len(st.Result) == 0 {
		return nil, errors.New("no result persisted")
	}
	if s.cfg.DecodeResult == nil {
		return nil, errors.New("no result decoder configured")
	}
	return s.cfg.DecodeResult(st.Kind, st.Result)
}
