package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/runstore"
)

// jsonCodec is the trivial result codec the durable tests share: every
// test result is a JSON-round-trippable string.
func jsonEncode(kind string, result any) ([]byte, error) { return json.Marshal(result) }

func jsonDecode(kind string, data []byte) (any, error) {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, err
	}
	return s, nil
}

// rehydrateConst returns a Rehydrate hook that ignores the spec and
// rebuilds every run as a task returning v.
func rehydrateConst(v any) func(kind string, spec []byte) (Task, error) {
	return func(kind string, spec []byte) (Task, error) { return constTask(v), nil }
}

// fakeClock is a manually-advanced clock for lease tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// collectEvents drains a finished run's event history.
func collectEvents(t *testing.T, r *Run) []events.Event {
	t.Helper()
	var evs []events.Event
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for ev := range r.Events(ctx) {
		evs = append(evs, ev)
	}
	return evs
}

// TestDurableRestartServesFinishedResult: a run completed against a
// durable store is served from disk after a restart — same ID, same
// status, same result — and identical submissions keep hitting the
// dedup cache across the restart without re-executing.
func TestDurableRestartServesFinishedResult(t *testing.T) {
	dir := t.TempDir()
	st1, err := runstore.Open(runstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{Workers: 1, Store: st1, EncodeResult: jsonEncode})
	r1, _, err := s1.Submit(Request{
		Key: "persist-me", Kind: "test", Label: "one",
		Spec: []byte(`{"n":1}`), Task: constTask("payload"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := runstore.Open(runstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := New(Config{Workers: 1, Store: st2, DecodeResult: jsonDecode})
	defer s2.Shutdown(context.Background())

	r2, ok := s2.Get(r1.ID())
	if !ok {
		t.Fatalf("run %s not restored", r1.ID())
	}
	if st := r2.Status(); st != StatusDone {
		t.Fatalf("restored status = %v, want done", st)
	}
	v, err := r2.Result(context.Background())
	if err != nil || v != "payload" {
		t.Fatalf("restored result = %v, %v; want payload", v, err)
	}
	if r2.Kind() != "test" || r2.Label() != "one" {
		t.Errorf("restored identity = %q/%q", r2.Kind(), r2.Label())
	}

	// The dedup cache survived: an identical submission is a cache hit,
	// not an execution.
	r3, reused, err := s2.Submit(Request{
		Key: "persist-me", Kind: "test", Task: constTask("other"),
	})
	if err != nil || !reused || r3.ID() != r1.ID() {
		t.Fatalf("resubmit = %v reused %v err %v, want cache hit on %s", r3.ID(), reused, err, r1.ID())
	}
	stats := s2.Stats()
	if stats.Executed != 0 || stats.CacheHits != 1 {
		t.Errorf("stats = %+v, want 0 executed, 1 cache hit", stats)
	}
	if stats.WALRecords == 0 {
		t.Errorf("stats.WALRecords = 0, want persisted records surfaced")
	}
}

// TestDurableCrashMidRunResumes simulates kill -9 while a run is
// executing: the data directory is copied at the instant the worker
// holds the claim (everything before the copy is on disk, nothing
// after), and a second service opened over the copy must resume the
// run through its Rehydrate hook and finish it.
func TestDurableCrashMidRunResumes(t *testing.T) {
	dir := t.TempDir()
	st1, err := runstore.Open(runstore.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	s1 := New(Config{Workers: 1, Store: st1, EncodeResult: jsonEncode})
	defer s1.Shutdown(context.Background())

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	r1, _, err := s1.Submit(Request{
		Key: "interrupted", Kind: "test", Label: "crashy",
		Spec: []byte(`{"resume":true}`), Task: blockingTask(started, release),
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // claim is on disk: OpSubmit + OpClaim appended

	// "kill -9": snapshot the data dir exactly as the dying process
	// would leave it.
	crashDir := t.TempDir()
	copyDataDir(t, dir, crashDir)

	st2, err := runstore.Open(runstore.Options{Dir: crashDir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2 := New(Config{
		Workers: 1, Store: st2,
		EncodeResult: jsonEncode, DecodeResult: jsonDecode,
		Rehydrate: rehydrateConst("recovered"),
	})
	defer s2.Shutdown(context.Background())

	r2, ok := s2.Get(r1.ID())
	if !ok {
		t.Fatalf("interrupted run %s not restored", r1.ID())
	}
	v, err := r2.Result(context.Background())
	if err != nil || v != "recovered" {
		t.Fatalf("resumed result = %v, %v; want recovered", v, err)
	}
	if got := r2.Retries(); got != 1 {
		t.Errorf("retries = %d, want 1 (the crashed attempt)", got)
	}
	stats := s2.Stats()
	if stats.RecoveredRuns != 1 || stats.Requeues != 1 {
		t.Errorf("stats = %+v, want 1 recovered, 1 requeue", stats)
	}

	// The event history tells the story: queued first, a requeue
	// explaining the restart, finished last.
	evs := collectEvents(t, r2)
	if len(evs) < 3 {
		t.Fatalf("events = %v, want queued/requeued/.../finished", evs)
	}
	if _, ok := evs[0].(events.RunQueued); !ok {
		t.Errorf("first event = %T, want RunQueued", evs[0])
	}
	rq, ok := evs[1].(events.RunRequeued)
	if !ok || rq.Retries != 1 || rq.Reason != "recovered after restart" {
		t.Errorf("second event = %#v, want RunRequeued{Retries:1, recovered after restart}", evs[1])
	}
	if _, ok := evs[len(evs)-1].(events.RunFinished); !ok {
		t.Errorf("last event = %T, want RunFinished", evs[len(evs)-1])
	}
}

// copyDataDir clones a run-store data directory byte-for-byte, the
// moral equivalent of rebooting over the same disk.
func copyDataDir(t *testing.T, from, to string) {
	t.Helper()
	entries, err := os.ReadDir(from)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(from, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(to, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoverRehydrateFailureFinishesFailed: a non-terminal run whose
// spec cannot be rebuilt does not vanish — it comes back failed with an
// explanatory error.
func TestRecoverRehydrateFailureFinishesFailed(t *testing.T) {
	store := runstore.NewMem()
	if err := store.Append(&runstore.Record{
		Op: runstore.OpSubmit, ID: "run-lost", Seq: 1, Kind: "test",
		Spec: []byte(`{}`), Created: time.Unix(1, 0),
	}); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Store: store, Rehydrate: func(kind string, spec []byte) (Task, error) {
		return nil, errors.New("schema moved on")
	}})
	defer s.Shutdown(context.Background())

	r, ok := s.Get("run-lost")
	if !ok {
		t.Fatal("run not restored")
	}
	if st := r.Status(); st != StatusFailed {
		t.Fatalf("status = %v, want failed", st)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "lost at restart") {
		t.Errorf("err = %v, want lost-at-restart explanation", err)
	}
}

// TestRecoverDeadLettersSpentRun: a run that was mid-execution with its
// retries already spent dead-letters at boot instead of looping
// forever. The store state is manufactured record by record, which also
// exercises replay of the full op vocabulary.
func TestRecoverDeadLettersSpentRun(t *testing.T) {
	store := runstore.NewMem()
	recs := []*runstore.Record{
		{Op: runstore.OpSubmit, ID: "run-spent", Seq: 1, Kind: "test", Spec: []byte(`{}`), Created: time.Unix(1, 0)},
		{Op: runstore.OpRequeue, ID: "run-spent", Retries: 1, At: time.Unix(2, 0)},
		{Op: runstore.OpClaim, ID: "run-spent", Worker: "w1", Attempt: 2, At: time.Unix(3, 0)},
	}
	for _, rec := range recs {
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Config{
		Workers: 1, Store: store, MaxRetries: 1,
		Rehydrate: rehydrateConst("never-runs"),
	})
	defer s.Shutdown(context.Background())

	r, ok := s.Get("run-spent")
	if !ok {
		t.Fatal("run not restored")
	}
	if st := r.Status(); st != StatusDeadLetter {
		t.Fatalf("status = %v, want dead_letter", st)
	}
	if err := r.Err(); !errors.Is(err, ErrLeaseExpired) {
		t.Errorf("err = %v, want ErrLeaseExpired", err)
	}
	if stats := s.Stats(); stats.DeadLetters != 1 {
		t.Errorf("stats.DeadLetters = %d, want 1", stats.DeadLetters)
	}
	evs := collectEvents(t, r)
	if len(evs) == 0 {
		t.Fatal("no events")
	}
	var sawDead bool
	for _, ev := range evs {
		if _, ok := ev.(events.RunDeadLettered); ok {
			sawDead = true
		}
	}
	if !sawDead {
		t.Errorf("events %v missing RunDeadLettered", evs)
	}
}

// leaseTestService builds a service with a fake clock, background
// timers parked (huge heartbeat/reconcile periods), and the given
// retry budget, so tests drive Reconcile directly.
func leaseTestService(t *testing.T, clock *fakeClock, maxRetries int) *Service {
	t.Helper()
	s := New(Config{
		Workers:        1,
		Now:            clock.Now,
		LeaseTTL:       30 * time.Second,
		HeartbeatEvery: time.Hour,
		ReconcileEvery: time.Hour,
		MaxRetries:     maxRetries,
	})
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s
}

// TestReconcileRequeuesStaleClaim: an attempt that stops heartbeating
// past the lease TTL is returned to the queue; the next attempt
// completes and the stale attempt's late result is discarded.
func TestReconcileRequeuesStaleClaim(t *testing.T) {
	clock := newFakeClock()
	s := leaseTestService(t, clock, 3)

	var attempts atomic.Int32
	started := make(chan struct{}, 4)
	task := func(ctx context.Context, sink events.Sink) (any, error) {
		n := attempts.Add(1)
		started <- struct{}{}
		if n == 1 {
			<-ctx.Done() // wedged first attempt: only the lease cancel frees it
			return nil, fmt.Errorf("attempt 1 canceled: %w", context.Cause(ctx))
		}
		return "second attempt", nil
	}
	r, _, err := s.Submit(Request{Key: "stale", Kind: "test", Task: task})
	if err != nil {
		t.Fatal(err)
	}
	<-started // attempt 1 holds the claim

	// Fresh claim: a pass now must do nothing.
	if rq, dl := s.Reconcile(); rq != 0 || dl != 0 {
		t.Fatalf("premature reconcile = %d requeued, %d dead-lettered", rq, dl)
	}

	clock.Advance(31 * time.Second) // past LeaseTTL with no heartbeat
	rq, dl := s.Reconcile()
	if rq != 1 || dl != 0 {
		t.Fatalf("reconcile = %d requeued, %d dead-lettered; want 1, 0", rq, dl)
	}
	<-started // attempt 2

	v, err := r.Result(context.Background())
	if err != nil || v != "second attempt" {
		t.Fatalf("result = %v, %v; want second attempt", v, err)
	}
	if got := r.Retries(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	stats := s.Stats()
	if stats.Requeues != 1 || stats.DeadLetters != 0 {
		t.Errorf("stats = %+v, want 1 requeue, 0 dead letters", stats)
	}
	var sawRequeue bool
	for _, ev := range collectEvents(t, r) {
		if rq, ok := ev.(events.RunRequeued); ok {
			sawRequeue = true
			if rq.Retries != 1 || rq.Reason != "lease expired" {
				t.Errorf("RunRequeued = %#v", rq)
			}
		}
	}
	if !sawRequeue {
		t.Error("no RunRequeued event")
	}
}

// TestReconcileDeadLettersAfterMaxRetries: a run whose every attempt
// goes stale burns through its retry budget and lands in dead_letter,
// terminal and explained.
func TestReconcileDeadLettersAfterMaxRetries(t *testing.T) {
	clock := newFakeClock()
	s := leaseTestService(t, clock, 1)

	started := make(chan struct{}, 4)
	task := func(ctx context.Context, sink events.Sink) (any, error) {
		started <- struct{}{}
		<-ctx.Done() // every attempt wedges
		return nil, fmt.Errorf("wedged: %w", context.Cause(ctx))
	}
	r, _, err := s.Submit(Request{Key: "doomed", Kind: "test", Task: task})
	if err != nil {
		t.Fatal(err)
	}

	<-started // attempt 1
	clock.Advance(31 * time.Second)
	if rq, dl := s.Reconcile(); rq != 1 || dl != 0 {
		t.Fatalf("first reconcile = %d, %d; want requeue", rq, dl)
	}
	<-started // attempt 2
	clock.Advance(31 * time.Second)
	if rq, dl := s.Reconcile(); rq != 0 || dl != 1 {
		t.Fatalf("second reconcile = %d, %d; want dead-letter", rq, dl)
	}

	if _, err := r.Result(context.Background()); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("result err = %v, want ErrLeaseExpired", err)
	}
	if st := r.Status(); st != StatusDeadLetter {
		t.Fatalf("status = %v, want dead_letter", st)
	}
	stats := s.Stats()
	if stats.DeadLetters != 1 || stats.Requeues != 1 {
		t.Errorf("stats = %+v, want 1 dead letter, 1 requeue", stats)
	}

	// Event invariant holds even on this path: queued first, the
	// dead-letter explanation, then the terminal run_finished.
	evs := collectEvents(t, r)
	if _, ok := evs[0].(events.RunQueued); !ok {
		t.Errorf("first event = %T, want RunQueued", evs[0])
	}
	if _, ok := evs[len(evs)-1].(events.RunFinished); !ok {
		t.Errorf("last event = %T, want RunFinished", evs[len(evs)-1])
	}
	dead, ok := evs[len(evs)-2].(events.RunDeadLettered)
	if !ok || dead.Retries != 1 {
		t.Errorf("penultimate event = %#v, want RunDeadLettered{Retries:1}", evs[len(evs)-2])
	}
}

// TestHeartbeatKeepsClaimFresh: a healthy worker's heartbeats advance
// the lease, so even a long-running task is never reconciled away.
func TestHeartbeatKeepsClaimFresh(t *testing.T) {
	clock := newFakeClock()
	s := New(Config{
		Workers:        1,
		Now:            clock.Now,
		LeaseTTL:       30 * time.Second,
		HeartbeatEvery: time.Millisecond, // real-time ticker, fake-clock timestamps
		ReconcileEvery: time.Hour,
		MaxRetries:     3,
	})
	defer s.Shutdown(context.Background())

	started := make(chan struct{}, 1)
	release := make(chan struct{})
	r, _, err := s.Submit(Request{Key: "healthy", Kind: "test", Task: blockingTask(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Advance the clock past the TTL, then wait for the millisecond
	// heartbeat ticker to stamp the new time before scanning — the
	// internal lastBeat is readable here (same package).
	clock.Advance(31 * time.Second)
	want := clock.Now()
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.mu.Lock()
		lb := r.lastBeat
		r.mu.Unlock()
		if !lb.Before(want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never stamped the advanced clock")
		}
		time.Sleep(time.Millisecond)
	}
	if rq, dl := s.Reconcile(); rq != 0 || dl != 0 {
		t.Fatalf("reconcile requeued a heartbeating run: %d, %d", rq, dl)
	}
	close(release)
	v, err := r.Result(context.Background())
	if err != nil || v != "ok" {
		t.Fatalf("result = %v, %v", v, err)
	}
	if got := r.Retries(); got != 0 {
		t.Errorf("retries = %d, want 0", got)
	}
}

// TestParseStatus round-trips every status and rejects junk.
func TestParseStatus(t *testing.T) {
	for _, st := range []Status{StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCanceled, StatusDeadLetter} {
		got, err := ParseStatus(st.String())
		if err != nil || got != st {
			t.Errorf("ParseStatus(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := ParseStatus("haunted"); err == nil {
		t.Error("ParseStatus accepted junk")
	}
}
