package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	dawningcloud "repro"
	"repro/internal/events"
)

// newTestServer builds an isolated engine + API server torn down with
// the test.
func newTestServer(t *testing.T, cfg dawningcloud.ServiceConfig) (*httptest.Server, *dawningcloud.Engine) {
	t.Helper()
	eng := dawningcloud.NewEngine(dawningcloud.WithServiceConfig(cfg))
	srv := httptest.NewServer(New(eng))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("engine shutdown: %v", err)
		}
	})
	return srv, eng
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("parse %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

type wireSubmit struct {
	ID      string `json:"id"`
	Status  string `json:"status"`
	Kind    string `json:"kind"`
	Deduped bool   `json:"deduped"`
	Links   struct {
		Self   string `json:"self"`
		Events string `json:"events"`
	} `json:"links"`
}

type wireRun struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Error  string `json:"error"`
	Result struct {
		Report *struct {
			Simulations int64
		} `json:"report"`
		Text   string          `json:"text"`
		System json.RawMessage `json:"system"`
	} `json:"result"`
}

type wireHealth struct {
	Status string                    `json:"status"`
	Stats  dawningcloud.ServiceStats `json:"stats"`
}

// pollDone polls a run until it reaches a terminal status.
func pollDone(t *testing.T, base, id string, timeout time.Duration) wireRun {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var run wireRun
		getJSON(t, base+"/v1/runs/"+id, &run)
		switch run.Status {
		case "done", "failed", "canceled":
			return run
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s still %s after %v", id, run.Status, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestConcurrentPaperBaselineSubmissionsExecuteOnce is the dcserve
// acceptance test: >= 8 concurrent submissions of the paper-baseline
// scenario share one run — equal IDs, exactly one execution (observable
// via the cache-hit/dedup counters), typed events streamed over HTTP —
// and the service shuts down gracefully with no leaked goroutines.
func TestConcurrentPaperBaselineSubmissionsExecuteOnce(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	eng := dawningcloud.NewEngine(dawningcloud.WithServiceConfig(dawningcloud.ServiceConfig{Workers: 2}))
	srv := httptest.NewServer(New(eng))

	const n = 8
	results := make([]wireSubmit, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postJSON(t, srv.URL+"/v1/runs", `{"scenario":"paper-baseline","workers":2}`)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("submit %d: status %d: %s", i, resp.StatusCode, data)
				return
			}
			if err := json.Unmarshal(data, &results[i]); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	fresh := 0
	for i, r := range results {
		if r.ID == "" {
			t.Fatalf("submit %d returned no ID", i)
		}
		if r.ID != results[0].ID {
			t.Fatalf("identical specs got different run IDs: %q vs %q", r.ID, results[0].ID)
		}
		if r.Kind != "scenario" {
			t.Errorf("kind = %q", r.Kind)
		}
		if !r.Deduped {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d submissions claim to have started fresh work, want exactly 1", fresh)
	}

	run := pollDone(t, srv.URL, results[0].ID, 5*time.Minute)
	if run.Status != "done" {
		t.Fatalf("run finished %s: %s", run.Status, run.Error)
	}
	if run.Result.Report == nil || run.Result.Report.Simulations != 4 {
		t.Errorf("report missing or wrong: %+v", run.Result.Report)
	}
	if !strings.Contains(run.Result.Text, "scenario: paper-baseline") {
		t.Errorf("rendered text missing header:\n%.200s", run.Result.Text)
	}

	// Dedup is observable via the service counters.
	var health wireHealth
	getJSON(t, srv.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Errorf("healthz = %q", health.Status)
	}
	if health.Stats.Executed != 1 || health.Stats.Deduped+health.Stats.CacheHits != n-1 {
		t.Errorf("stats = %+v, want 1 executed and %d reused", health.Stats, n-1)
	}

	// Typed events stream over HTTP: NDJSON lines, run_queued first,
	// run_finished last, with the scenario's simulations in between.
	resp, err := http.Get(srv.URL + "/v1/runs/" + results[0].ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}
	var wires []events.Wire
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var w events.Wire
		if err := json.Unmarshal(sc.Bytes(), &w); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		wires = append(wires, w)
	}
	resp.Body.Close()
	if len(wires) < 3 {
		t.Fatalf("event stream has %d events", len(wires))
	}
	if wires[0].Type != "run_queued" || wires[0].RunID != results[0].ID {
		t.Errorf("first event = %+v, want run_queued", wires[0])
	}
	last := wires[len(wires)-1]
	if last.Type != "run_finished" || last.Status != "done" {
		t.Errorf("last event = %+v, want run_finished done", last)
	}
	seen := map[string]int{}
	for _, w := range wires {
		seen[w.Type]++
	}
	if seen["run_started"] != 4 || seen["run_completed"] != 4 || seen["cell_completed"] != 4 {
		t.Errorf("event mix = %v, want 4 of each simulation event", seen)
	}

	// Graceful shutdown: no leaked goroutines after the server and the
	// engine's run service stop.
	srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := eng.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= goroutinesBefore {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after shutdown", goroutinesBefore, runtime.NumGoroutine())
}

// TestSystemRunOverHTTP: a system request over a built-in workload runs
// to completion and returns the system result JSON.
func TestSystemRunOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 2})
	resp, data := postJSON(t, srv.URL+"/v1/runs",
		`{"system":"dcs","workload":"montage","seed":7}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sub wireSubmit
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Kind != "system" {
		t.Errorf("kind = %q", sub.Kind)
	}
	run := pollDone(t, srv.URL, sub.ID, time.Minute)
	if run.Status != "done" {
		t.Fatalf("run %s: %s", run.Status, run.Error)
	}
	var result struct {
		System    string
		Providers []struct{ Name string }
	}
	if err := json.Unmarshal(run.Result.System, &result); err != nil {
		t.Fatalf("system result: %v\n%s", err, run.Result.System)
	}
	if result.System != "DCS" || len(result.Providers) != 1 || result.Providers[0].Name != "montage-mtc" {
		t.Errorf("result = %+v", result)
	}
}

// TestSuiteRunOverHTTP: an experiments request returns rendered
// artifacts.
func TestSuiteRunOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 2})
	resp, data := postJSON(t, srv.URL+"/v1/runs", `{"experiments":["table1","tco"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sub wireSubmit
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	var run struct {
		Status string `json:"status"`
		Result struct {
			Artifacts []struct{ ID, Title, Text string } `json:"artifacts"`
		} `json:"result"`
	}
	deadline := time.Now().Add(time.Minute)
	for {
		getJSON(t, srv.URL+"/v1/runs/"+sub.ID, &run)
		if run.Status == "done" || run.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("suite run did not finish")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if run.Status != "done" || len(run.Result.Artifacts) != 2 {
		t.Fatalf("run = %+v", run)
	}
	if run.Result.Artifacts[0].ID != "table1" || run.Result.Artifacts[1].ID != "tco" {
		t.Errorf("artifact order: %+v", run.Result.Artifacts)
	}
}

// TestCancelRunOverHTTP: DELETE aborts a running simulation; the run
// reports canceled with a context error.
func TestCancelRunOverHTTP(t *testing.T) {
	srv, eng := newTestServer(t, dawningcloud.ServiceConfig{Workers: 1})
	started := make(chan struct{}, 1)
	eng.MustRegister("http-block", dawningcloud.RunnerFunc(
		func(ctx context.Context, wls []dawningcloud.Workload, opts dawningcloud.Options) (dawningcloud.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return dawningcloud.Result{}, fmt.Errorf("aborted: %w", ctx.Err())
		}))
	resp, data := postJSON(t, srv.URL+"/v1/runs", `{"system":"http-block","workload":"montage"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sub wireSubmit
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	<-started
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status = %d", dresp.StatusCode)
	}
	run := pollDone(t, srv.URL, sub.ID, time.Minute)
	if run.Status != "canceled" {
		t.Errorf("status = %q, want canceled", run.Status)
	}
	if !strings.Contains(run.Error, "context canceled") {
		t.Errorf("error = %q, want a context cancellation", run.Error)
	}
}

// TestCancelSharedRunRefused: a run deduplicated across several
// submissions cannot be canceled by any one of them (409), so one
// tenant cannot destroy work others wait on.
func TestCancelSharedRunRefused(t *testing.T) {
	srv, eng := newTestServer(t, dawningcloud.ServiceConfig{Workers: 1})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	eng.MustRegister("shared-block", dawningcloud.RunnerFunc(
		func(ctx context.Context, wls []dawningcloud.Workload, opts dawningcloud.Options) (dawningcloud.Result, error) {
			started <- struct{}{}
			select {
			case <-release:
				return dawningcloud.Result{System: "shared-block"}, nil
			case <-ctx.Done():
				return dawningcloud.Result{}, ctx.Err()
			}
		}))
	body := `{"system":"shared-block","workload":"montage"}`
	_, data := postJSON(t, srv.URL+"/v1/runs", body)
	var first wireSubmit
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	<-started
	_, data = postJSON(t, srv.URL+"/v1/runs", body) // dedups onto the same run
	var second wireSubmit
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Deduped || second.ID != first.ID {
		t.Fatalf("second submission did not dedup: %+v", second)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/runs/"+first.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE on shared run = %d (%s), want 409", resp.StatusCode, body2)
	}
	close(release)
	if got := pollDone(t, srv.URL, first.ID, time.Minute); got.Status != "done" {
		t.Errorf("shared run ended %s, want done (cancel must not have landed)", got.Status)
	}
}

// TestStatusPollSkipsResult: ?result=0 omits the result body so polls
// stay light.
func TestStatusPollSkipsResult(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 1})
	_, data := postJSON(t, srv.URL+"/v1/runs", `{"system":"dcs","workload":"montage"}`)
	var sub wireSubmit
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	pollDone(t, srv.URL, sub.ID, time.Minute)
	var slim map[string]json.RawMessage
	getJSON(t, srv.URL+"/v1/runs/"+sub.ID+"?result=0", &slim)
	if _, ok := slim["result"]; ok {
		t.Error("?result=0 still carries the result body")
	}
	var full map[string]json.RawMessage
	getJSON(t, srv.URL+"/v1/runs/"+sub.ID, &full)
	if _, ok := full["result"]; !ok {
		t.Error("default GET lost the result body")
	}
}

// TestBackpressureReturns503: a full queue turns into HTTP 503 with a
// Retry-After hint.
func TestBackpressureReturns503(t *testing.T) {
	srv, eng := newTestServer(t, dawningcloud.ServiceConfig{Workers: 1, QueueDepth: 1})
	started := make(chan struct{}, 1)
	eng.MustRegister("bp-block", dawningcloud.RunnerFunc(
		func(ctx context.Context, wls []dawningcloud.Workload, opts dawningcloud.Options) (dawningcloud.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return dawningcloud.Result{}, ctx.Err()
		}))
	submit := func(seed int) (*http.Response, []byte) {
		return postJSON(t, srv.URL+"/v1/runs",
			fmt.Sprintf(`{"system":"bp-block","workload":"montage","seed":%d}`, seed))
	}
	if resp, data := submit(1); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %d %s", resp.StatusCode, data)
	}
	<-started
	if resp, data := submit(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second: %d %s", resp.StatusCode, data)
	}
	resp, data := submit(3)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third: %d %s, want 503", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestEventStreamSSE: Accept: text/event-stream switches the event
// endpoint to SSE framing.
func TestEventStreamSSE(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 1})
	resp, data := postJSON(t, srv.URL+"/v1/runs", `{"system":"drp","workload":"montage"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sub wireSubmit
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	pollDone(t, srv.URL, sub.ID, time.Minute)

	req, err := http.NewRequest(http.MethodGet, srv.URL+sub.Links.Events, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	eresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(eresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(body, []byte("event: run_queued\ndata: ")) ||
		!bytes.Contains(body, []byte("event: run_finished\ndata: ")) {
		t.Errorf("SSE framing missing:\n%s", body)
	}
}

// TestScenarioCatalogAndErrors covers the catalog endpoint and the
// error contract: bad bodies, unknown names and unknown runs map to
// 400/404 with JSON error bodies.
func TestScenarioCatalogAndErrors(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 1})

	var catalog struct {
		Scenarios []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
			Providers   int    `json:"providers"`
		} `json:"scenarios"`
	}
	getJSON(t, srv.URL+"/v1/scenarios", &catalog)
	names := map[string]int{}
	for _, s := range catalog.Scenarios {
		names[s.Name] = s.Providers
	}
	if names["paper-baseline"] != 3 || names["scale-10"] != 10 {
		t.Errorf("catalog = %v", names)
	}

	cases := []struct {
		name string
		body string
		want int
		msg  string
	}{
		{"malformed json", `{"scenario": paper}`, http.StatusBadRequest, "parse request"},
		{"unknown field", `{"scenariooo":"x"}`, http.StatusBadRequest, "unknown field"},
		{"empty union", `{}`, http.StatusBadRequest, "exactly one of"},
		{"two forms", `{"scenario":"paper-baseline","system":"DCS"}`, http.StatusBadRequest, "exactly one of"},
		{"unknown scenario", `{"scenario":"warp"}`, http.StatusBadRequest, "neither a built-in"},
		{"unknown system", `{"system":"warp","workload":"nasa"}`, http.StatusBadRequest, "unknown system"},
		{"unknown workload", `{"system":"DCS","workload":"mosaic"}`, http.StatusBadRequest, "unknown workload"},
		{"bad inline spec", `{"scenario_spec":{"name":"x","providers":[]}}`, http.StatusBadRequest, "at least one provider"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postJSON(t, srv.URL+"/v1/runs", tc.body)
			if resp.StatusCode != tc.want {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.want, data)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &e); err != nil || !strings.Contains(e.Error, tc.msg) {
				t.Errorf("error body %s missing %q", data, tc.msg)
			}
		})
	}

	for _, path := range []string{"/v1/runs/run-999999", "/v1/runs/run-999999/events"} {
		resp := getJSON(t, srv.URL+path, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestListRunsIncludesStats: the listing carries snapshots and service
// counters.
// TestListRunsPaginationWalk pages a seven-run store with ?limit=3 and
// requires the concatenated pages to reproduce the unpaged listing
// exactly — same IDs, same newest-first order, no duplicates or gaps —
// with the cursor resolving through the service's ID index. Unknown
// cursors keep failing loudly with 400.
func TestListRunsPaginationWalk(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 2})
	const n = 7
	for i := 0; i < n; i++ {
		_, data := postJSON(t, srv.URL+"/v1/runs",
			fmt.Sprintf(`{"system":"dcs","workload":"montage","seed":%d}`, i+1))
		var sub wireSubmit
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatalf("submit %d: %v\n%s", i, err, data)
		}
		pollDone(t, srv.URL, sub.ID, time.Minute)
	}

	type page struct {
		Runs []struct {
			ID string `json:"id"`
		} `json:"runs"`
		NextCursor string `json:"next_cursor"`
	}
	var full page
	getJSON(t, srv.URL+"/v1/runs", &full)
	if len(full.Runs) != n {
		t.Fatalf("unpaged listing = %d runs, want %d", len(full.Runs), n)
	}

	var walked []string
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > n {
			t.Fatal("pagination did not terminate")
		}
		url := srv.URL + "/v1/runs?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var p page
		getJSON(t, url, &p)
		if len(p.Runs) > 3 {
			t.Fatalf("page holds %d runs, want <= 3", len(p.Runs))
		}
		for _, r := range p.Runs {
			walked = append(walked, r.ID)
		}
		if p.NextCursor == "" {
			break
		}
		cursor = p.NextCursor
	}
	if len(walked) != n {
		t.Fatalf("walked %d runs, want %d", len(walked), n)
	}
	for i, id := range walked {
		if id != full.Runs[i].ID {
			t.Errorf("page walk[%d] = %s, want %s", i, id, full.Runs[i].ID)
		}
	}

	resp := getJSON(t, srv.URL+"/v1/runs?cursor=bogus", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown cursor: status %d, want 400", resp.StatusCode)
	}
}

func TestListRunsIncludesStats(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 1})
	_, data := postJSON(t, srv.URL+"/v1/runs", `{"system":"dcs","workload":"montage"}`)
	var sub wireSubmit
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	pollDone(t, srv.URL, sub.ID, time.Minute)
	var list struct {
		Runs []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		} `json:"runs"`
		Stats dawningcloud.ServiceStats `json:"stats"`
	}
	getJSON(t, srv.URL+"/v1/runs", &list)
	if len(list.Runs) != 1 || list.Runs[0].ID != sub.ID || list.Runs[0].Status != "done" {
		t.Errorf("list = %+v", list.Runs)
	}
	if list.Stats.Submitted != 1 || list.Stats.Done != 1 {
		t.Errorf("stats = %+v", list.Stats)
	}
}
