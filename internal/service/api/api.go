// Package api is the HTTP/JSON facade of the run service: the handler
// behind cmd/dcserve, kept importable (examples/service drives it
// in-process) and testable without a network listener.
//
// Endpoints:
//
//	POST   /v1/runs             submit a run (scenario, system or suite request)
//	GET    /v1/runs             list stored runs + service stats
//	                            (?status= filter, ?limit=/?cursor= pagination)
//	GET    /v1/runs/{id}        one run's status, and its result when done
//	GET    /v1/runs/{id}/events typed event stream (NDJSON; SSE via Accept)
//	POST   /v1/runs/{id}/tasks  NDJSON task ingestion into a live-fed run
//	DELETE /v1/runs/{id}        cancel the run
//	GET    /v1/scenarios        list built-in scenarios
//	GET    /healthz             liveness + service stats
//
// Submissions deduplicate by content through the engine: identical
// specs share one run (equal IDs, one execution), observable via the
// deduped flag and the cache-hit counters in /healthz.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	dawningcloud "repro"
	"repro/internal/events"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/synth"
)

// Server handles the dcserve HTTP API over an engine's run service.
// Construct with New; it implements http.Handler.
type Server struct {
	eng     *dawningcloud.Engine
	mux     *http.ServeMux
	started time.Time
	ping    time.Duration

	logMu sync.Mutex
	log   io.Writer
}

// Option configures a Server.
type Option func(*Server)

// WithLog writes one access-log line per handled request (method,
// path, status, elapsed) to w; nil disables logging.
func WithLog(w io.Writer) Option {
	return func(s *Server) { s.log = w }
}

// WithPingInterval sets how often an idle SSE event stream emits a
// ": ping" keep-alive comment so proxies and idle timeouts do not drop
// long-stalled live streams (default 15s; <= 0 disables pings). NDJSON
// streams are never pinged — a comment line would corrupt them.
func WithPingInterval(d time.Duration) Option {
	return func(s *Server) { s.ping = d }
}

// New builds the API handler over eng. The engine owns the run
// lifecycle: configure queue depth, workers and TTL via
// dawningcloud.WithServiceConfig when constructing it, and call
// eng.Shutdown for graceful termination.
func New(eng *dawningcloud.Engine, opts ...Option) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), started: time.Now(), ping: 15 * time.Second}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/runs", s.handleList)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/runs/{id}/tasks", s.handleTasks)
	s.mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// accessRecorder captures the response status for the access log.
type accessRecorder struct {
	http.ResponseWriter
	status int
}

func (a *accessRecorder) WriteHeader(code int) {
	a.status = code
	a.ResponseWriter.WriteHeader(code)
}

func (a *accessRecorder) Flush() {
	if f, ok := a.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.log == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	rec := &accessRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	s.logMu.Lock()
	defer s.logMu.Unlock()
	fmt.Fprintf(s.log, "dcserve: %s %s -> %d (%.0fms)\n",
		r.Method, r.URL.Path, rec.status, time.Since(start).Seconds()*1000)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// submitBody is the POST /v1/runs request union, mirroring
// dawningcloud.SubmitRequest for remote callers. Exactly one of
// scenario, scenario_spec, system or experiments selects the form.
type submitBody struct {
	// Scenario names a built-in scenario (see GET /v1/scenarios).
	Scenario string `json:"scenario,omitempty"`
	// ScenarioSpec is an inline scenario spec document (the dcscen
	// format), validated like a spec file.
	ScenarioSpec json.RawMessage `json:"scenario_spec,omitempty"`

	// System runs one registered system over a built-in workload.
	System string `json:"system,omitempty"`
	// Workload is the built-in workload for a system run: "nasa",
	// "blue" or "montage".
	Workload string `json:"workload,omitempty"`
	// B and R override the DawningCloud policy knobs (0 keeps the
	// workload's paper defaults).
	B int     `json:"b,omitempty"`
	R float64 `json:"r,omitempty"`
	// Capacity bounds the cloud pool (0 = unconstrained).
	Capacity int `json:"capacity,omitempty"`

	// Experiments requests paper-evaluation artifacts by ID ("all",
	// "extensions", "table2", ...).
	Experiments []string `json:"experiments,omitempty"`

	// Seed and Days configure workload generation for system and
	// experiments requests (defaults 42 and 14).
	Seed int64 `json:"seed,omitempty"`
	Days int   `json:"days,omitempty"`
	// Workers bounds the run's inner simulation concurrency
	// (0 = all CPUs).
	Workers int `json:"workers,omitempty"`
}

// links are the hypermedia pointers on submit/list responses.
type links struct {
	Self   string `json:"self"`
	Events string `json:"events"`
}

func runLinks(id string) links {
	return links{
		Self:   "/v1/runs/" + id,
		Events: "/v1/runs/" + id + "/events",
	}
}

// submitResponse acknowledges a submission.
type submitResponse struct {
	ID      string                 `json:"id"`
	Status  dawningcloud.RunStatus `json:"status"`
	Kind    string                 `json:"kind"`
	Label   string                 `json:"label"`
	Deduped bool                   `json:"deduped"`
	Links   links                  `json:"links"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req submitBody
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	sub, opts, err := s.buildSubmit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := s.eng.Submit(r.Context(), sub, opts...)
	switch {
	case err == nil:
	case errors.Is(err, dawningcloud.ErrBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, dawningcloud.ErrShutdown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusAccepted
	if h.Deduped() {
		// The work already exists (in flight or cached): not a new
		// resource.
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{
		ID:      h.ID(),
		Status:  h.Status(),
		Kind:    h.Kind(),
		Label:   h.Label(),
		Deduped: h.Deduped(),
		Links:   runLinks(h.ID()),
	})
}

// buildSubmit lowers the wire request to the engine's union.
func (s *Server) buildSubmit(req submitBody) (dawningcloud.SubmitRequest, []dawningcloud.RunOption, error) {
	forms := 0
	if req.Scenario != "" {
		forms++
	}
	if len(req.ScenarioSpec) > 0 {
		forms++
	}
	if req.System != "" {
		forms++
	}
	if len(req.Experiments) > 0 {
		forms++
	}
	if forms != 1 {
		return dawningcloud.SubmitRequest{}, nil, fmt.Errorf(
			"exactly one of scenario, scenario_spec, system or experiments must be set (got %d)", forms)
	}
	opts := []dawningcloud.RunOption{dawningcloud.WithWorkers(req.Workers)}
	switch {
	case req.Scenario != "":
		spec, err := dawningcloud.LoadScenario(req.Scenario)
		if err != nil {
			return dawningcloud.SubmitRequest{}, nil, err
		}
		return dawningcloud.SubmitRequest{Scenario: spec}, opts, nil
	case len(req.ScenarioSpec) > 0:
		spec, err := dawningcloud.ParseScenario(req.ScenarioSpec)
		if err != nil {
			return dawningcloud.SubmitRequest{}, nil, err
		}
		return dawningcloud.SubmitRequest{Scenario: spec}, opts, nil
	case req.System != "":
		wl, horizon, err := builtinWorkload(req)
		if err != nil {
			return dawningcloud.SubmitRequest{}, nil, err
		}
		opts = append(opts,
			dawningcloud.WithOptions(dawningcloud.Options{
				Horizon:      horizon,
				PoolCapacity: req.Capacity,
			}),
			dawningcloud.WithSeed(seedOrDefault(req.Seed)))
		return dawningcloud.SubmitRequest{
			System:    req.System,
			Workloads: []dawningcloud.Workload{wl},
		}, opts, nil
	default:
		return dawningcloud.SubmitRequest{
			Experiments: req.Experiments,
			Seed:        req.Seed,
			Days:        req.Days,
		}, opts, nil
	}
}

func seedOrDefault(seed int64) int64 {
	if seed == 0 {
		return 42
	}
	return seed
}

// builtinWorkload mirrors dcsim's built-in workload vocabulary for
// remote system runs.
func builtinWorkload(req submitBody) (dawningcloud.Workload, int64, error) {
	seed := seedOrDefault(req.Seed)
	days := req.Days
	if days == 0 {
		days = 14
	}
	horizon := int64(days) * sim.Day
	var wl dawningcloud.Workload
	switch req.Workload {
	case "nasa":
		model := synth.NASAiPSC(seed)
		model.Days = days
		jobs, err := model.Generate()
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		wl = dawningcloud.Workload{
			Name: "nasa-htc", Class: job.HTC, Jobs: jobs,
			FixedNodes: 128, Params: dawningcloud.HTCPolicy(40, 1.2),
		}
	case "blue":
		model := synth.SDSCBlue(seed)
		model.Days = days
		jobs, err := model.Generate()
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		wl = dawningcloud.Workload{
			Name: "blue-htc", Class: job.HTC, Jobs: jobs,
			FixedNodes: 144, Params: dawningcloud.HTCPolicy(80, 1.5),
		}
	case "montage":
		var err error
		wl, err = dawningcloud.MontageWorkload(seed, 0)
		if err != nil {
			return dawningcloud.Workload{}, 0, err
		}
		horizon = 0 // derive from the workflow, as dcsim does
	default:
		return dawningcloud.Workload{}, 0, fmt.Errorf(
			"unknown workload %q (known: nasa, blue, montage)", req.Workload)
	}
	if req.B > 0 {
		wl.Params.InitialNodes = req.B
	}
	if req.R > 0 {
		wl.Params.ThresholdRatio = req.R
	}
	return wl, horizon, nil
}

// listResponse is GET /v1/runs.
type listResponse struct {
	Runs  []runListEntry            `json:"runs"`
	Stats dawningcloud.ServiceStats `json:"stats"`
	// NextCursor is set when ?limit= truncated the listing: pass it
	// back as ?cursor= to continue from the next run.
	NextCursor string `json:"next_cursor,omitempty"`
}

type runListEntry struct {
	dawningcloud.RunInfo
	Links links `json:"links"`
}

// handleList serves GET /v1/runs: the stored runs newest first, plus
// service stats. Query parameters:
//
//	?status=  keep only runs in that lifecycle state ("queued",
//	          "running", "done", "failed", "canceled", "dead_letter")
//	?limit=   page size; the response carries next_cursor while more
//	          runs remain
//	?cursor=  resume a paged listing after the run ID a previous
//	          response returned in next_cursor
//
// With no parameters the full list comes back in one response, exactly
// as before pagination existed.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var filter *dawningcloud.RunStatus
	if v := q.Get("status"); v != "" {
		st, err := dawningcloud.ParseRunStatus(v)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				"unknown status %q (known: queued, running, done, failed, canceled, dead_letter)", v)
			return
		}
		filter = &st
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "limit must be a positive integer, got %q", v)
			return
		}
		limit = n
	}
	var handles []*dawningcloud.RunHandle
	if cursor := q.Get("cursor"); cursor != "" {
		// Resolved via the service's ID index — O(log n) per page — so a
		// full paged listing over a large durable store stays linear
		// instead of rescanning every handle per page.
		var ok bool
		handles, ok = s.eng.HandlesBefore(cursor)
		if !ok {
			// Evicted mid-pagination or plain wrong: fail loudly instead
			// of silently restarting the client from page one.
			writeError(w, http.StatusBadRequest, "unknown or expired cursor %q", cursor)
			return
		}
	} else {
		handles = s.eng.Handles()
	}
	resp := listResponse{Runs: []runListEntry{}, Stats: s.eng.ServiceStats()}
	for _, h := range handles {
		info := h.Snapshot()
		if filter != nil && info.Status != *filter {
			continue
		}
		if limit > 0 && len(resp.Runs) >= limit {
			// One more match exists beyond the page: hand the client a
			// resume point. A page that exactly exhausts the list carries
			// no cursor.
			resp.NextCursor = resp.Runs[len(resp.Runs)-1].ID
			break
		}
		resp.Runs = append(resp.Runs, runListEntry{RunInfo: info, Links: runLinks(h.ID())})
	}
	writeJSON(w, http.StatusOK, resp)
}

// runResponse is GET /v1/runs/{id}: the snapshot plus, when done, the
// kind-shaped result ({"report", "text"} for scenarios, {"system"} for
// system runs, {"artifacts"} for suite runs).
type runResponse struct {
	dawningcloud.RunInfo
	Links  links `json:"links"`
	Result any   `json:"result,omitempty"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	h, ok := s.eng.Handle(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	resp := runResponse{RunInfo: h.Snapshot(), Links: runLinks(h.ID())}
	// ?result=0 keeps status polls O(1); the result view itself is
	// rendered at most once per run (memoized), not once per poll.
	if resp.Status == dawningcloud.RunStatusDone && r.URL.Query().Get("result") != "0" {
		resp.Result = h.ResultView(func(res dawningcloud.RunResult) any {
			switch h.Kind() {
			case "scenario":
				return map[string]any{
					"report": res.Report,
					"text":   res.Report.Render(),
				}
			case "suite":
				return map[string]any{"artifacts": res.Artifacts}
			default:
				return map[string]any{"system": res.Result}
			}
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	h, ok := s.eng.Handle(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	// A deduplicated run is shared work: letting one submitter cancel it
	// would destroy every other tenant's study mid-flight. The
	// check-and-cancel is atomic in the service, so a submission joining
	// concurrently cannot slip between the two.
	if !h.CancelIfSole() {
		writeError(w, http.StatusConflict,
			"run %s is shared by %d submissions; refusing to cancel shared work", h.ID(), h.Submissions())
		return
	}
	writeJSON(w, http.StatusAccepted, runResponse{RunInfo: h.Snapshot(), Links: runLinks(h.ID())})
}

// handleEvents streams the run's typed events: replay first, then live,
// ending when the run is terminal (the last line is run_finished). The
// default wire format is NDJSON — one events.Wire object per line —
// or SSE when the client asks with Accept: text/event-stream.
// ?follow=0 dumps only the events buffered so far and closes.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	h, ok := s.eng.Handle(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", r.PathValue("id"))
		return
	}
	follow := r.URL.Query().Get("follow") != "0"
	limit := -1
	if !follow {
		limit = h.Snapshot().Events
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Idle SSE followers get periodic ": ping" comment lines so proxies
	// and idle timeouts keep long-stalled live streams open (a live-fed
	// run can legitimately sit eventless while it waits for tasks). SSE
	// clients ignore comment lines by spec; NDJSON streams are never
	// pinged because every line must be an event object.
	var ping <-chan time.Time
	if sse && follow && s.ping > 0 {
		t := time.NewTicker(s.ping)
		defer t.Stop()
		ping = t.C
	}
	ch := h.Events(r.Context())
	n := 0
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			wire := events.Encode(ev)
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: ", wire.Type)
			}
			if err := enc.Encode(wire); err != nil {
				return // client went away
			}
			if sse {
				io.WriteString(w, "\n")
			}
			if flusher != nil {
				flusher.Flush()
			}
			n++
			if limit >= 0 && n >= limit {
				return
			}
		case <-ping:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// taskResponse is the POST /v1/runs/{id}/tasks result body: how many
// records were accepted (also on errors — the client's resume point),
// and whether every live lane has received its end-of-stream record.
type taskResponse struct {
	Accepted int    `json:"accepted"`
	Closed   bool   `json:"closed"`
	Error    string `json:"error,omitempty"`
}

// handleTasks ingests NDJSON task records (stream.TaskRecord lines)
// into a live-fed run's task feed. Validation is strict and per record
// — unknown fields, structural problems and submit-order violations
// reject with 400 at the offending line — and backpressure is explicit:
// a full lane buffer answers 503 with Retry-After, and the accepted
// count in the body tells the client where to resume. The explicit
// end-of-stream record {"end":true} closes the lane(s); without it the
// run keeps waiting, since the virtual clock cannot prove no earlier
// task is still coming.
func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.eng.Handle(id); !ok {
		writeError(w, http.StatusNotFound, "unknown run %q", id)
		return
	}
	feed, ok := s.eng.Feed(id)
	if !ok {
		writeError(w, http.StatusConflict,
			"run %s takes no tasks (only non-terminal runs of scenarios with live providers do)", id)
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	accepted := 0
	fail := func(code int, format string, args ...any) {
		writeJSON(w, code, taskResponse{
			Accepted: accepted,
			Closed:   feed.Closed(),
			Error:    fmt.Sprintf(format, args...),
		})
	}
	for line := 1; ; line++ {
		var rec stream.TaskRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			fail(http.StatusBadRequest, "record %d: %v", line, err)
			return
		}
		if rec.End {
			if err := closeLanes(feed, rec.Workload); err != nil {
				fail(http.StatusBadRequest, "record %d: %v", line, err)
				return
			}
			continue
		}
		src, err := feed.Get(rec.Workload)
		if err != nil {
			fail(http.StatusBadRequest, "record %d: %v", line, err)
			return
		}
		switch err := src.TryPush(rec.Job()); {
		case err == nil:
			accepted++
		case errors.Is(err, stream.ErrFull):
			// The run's virtual clock is gating on a slower consumer;
			// shed the rest of the request and have the client retry from
			// the accepted count.
			w.Header().Set("Retry-After", "1")
			fail(http.StatusServiceUnavailable, "record %d: %v", line, err)
			return
		default:
			fail(http.StatusBadRequest, "record %d: %v", line, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, taskResponse{Accepted: accepted, Closed: feed.Closed()})
}

// closeLanes ends the named lane, or every lane when the end record
// names none.
func closeLanes(feed *dawningcloud.LiveFeed, workload string) error {
	if workload == "" && len(feed.Names()) > 1 {
		feed.CloseAll()
		return nil
	}
	src, err := feed.Get(workload)
	if err != nil {
		return err
	}
	return src.Close()
}

// scenarioEntry is one built-in scenario in GET /v1/scenarios.
type scenarioEntry struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Providers   int    `json:"providers"`
	Days        int    `json:"days"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	names := dawningcloud.ScenarioNames()
	entries := make([]scenarioEntry, 0, len(names))
	for _, name := range names {
		spec, err := dawningcloud.LoadScenario(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		entries = append(entries, scenarioEntry{
			Name:        name,
			Description: spec.Description,
			Providers:   len(spec.ExpandedNames()),
			Days:        spec.Days,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": entries})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": int64(time.Since(s.started).Seconds()),
		"stats":          s.eng.ServiceStats(),
	})
}
