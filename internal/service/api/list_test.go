package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	dawningcloud "repro"
)

type wireList struct {
	Runs []struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	} `json:"runs"`
	NextCursor string                    `json:"next_cursor"`
	Stats      dawningcloud.ServiceStats `json:"stats"`
}

// submitNDone submits n distinct fast system runs (same workload,
// different seeds — different content hashes) and waits for all of
// them to finish.
func submitNDone(t *testing.T, base string, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		_, data := postJSON(t, base+"/v1/runs",
			fmt.Sprintf(`{"system":"dcs","workload":"montage","seed":%d}`, i+1))
		var sub wireSubmit
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatalf("submit %d: %v\n%s", i, err, data)
		}
		ids[i] = sub.ID
	}
	for _, id := range ids {
		pollDone(t, base, id, time.Minute)
	}
	return ids
}

// TestListStatusFilter: ?status= narrows the listing to one lifecycle
// state, an empty match is an empty array (not null), and an unknown
// status is a 400 naming the vocabulary.
func TestListStatusFilter(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 2})
	ids := submitNDone(t, srv.URL, 2)

	var done wireList
	getJSON(t, srv.URL+"/v1/runs?status=done", &done)
	if len(done.Runs) != len(ids) {
		t.Errorf("status=done returned %d runs, want %d", len(done.Runs), len(ids))
	}
	for _, r := range done.Runs {
		if r.Status != "done" {
			t.Errorf("run %s leaked into status=done with status %q", r.ID, r.Status)
		}
	}

	var failed wireList
	resp := getJSON(t, srv.URL+"/v1/runs?status=failed", &failed)
	if resp.StatusCode != http.StatusOK || failed.Runs == nil || len(failed.Runs) != 0 {
		t.Errorf("status=failed = %d, runs %v; want 200 with empty array", resp.StatusCode, failed.Runs)
	}

	// dead_letter is part of the queryable vocabulary.
	if resp := getJSON(t, srv.URL+"/v1/runs?status=dead_letter", &wireList{}); resp.StatusCode != http.StatusOK {
		t.Errorf("status=dead_letter = %d, want 200", resp.StatusCode)
	}

	var apiErr apiError
	resp = getJSON(t, srv.URL+"/v1/runs?status=haunted", &apiErr)
	if resp.StatusCode != http.StatusBadRequest || apiErr.Error == "" {
		t.Errorf("status=haunted = %d %q, want 400 with explanation", resp.StatusCode, apiErr.Error)
	}
}

// TestListPagination pages a 5-run store through limit/cursor: every
// run appears exactly once across pages, next_cursor disappears on the
// final page, and a page that exactly exhausts the list carries no
// cursor.
func TestListPagination(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 2})
	ids := submitNDone(t, srv.URL, 5)

	seen := map[string]int{}
	cursor := ""
	pages := 0
	for {
		url := srv.URL + "/v1/runs?limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var page wireList
		getJSON(t, url, &page)
		pages++
		if len(page.Runs) > 2 {
			t.Fatalf("page %d has %d runs, limit was 2", pages, len(page.Runs))
		}
		for _, r := range page.Runs {
			seen[r.ID]++
		}
		if page.NextCursor == "" {
			break
		}
		if got, want := page.NextCursor, page.Runs[len(page.Runs)-1].ID; got != want {
			t.Fatalf("next_cursor = %q, want last entry %q", got, want)
		}
		cursor = page.NextCursor
		if pages > 10 {
			t.Fatal("pagination never terminated")
		}
	}
	if len(seen) != len(ids) {
		t.Errorf("paged union has %d runs, want %d", len(seen), len(ids))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("run %s appeared %d times across pages", id, n)
		}
	}

	// A limit that exactly exhausts the list must not dangle a cursor.
	var exact wireList
	getJSON(t, srv.URL+"/v1/runs?limit=5", &exact)
	if len(exact.Runs) != 5 || exact.NextCursor != "" {
		t.Errorf("limit=5 over 5 runs = %d runs, cursor %q; want all 5, no cursor", len(exact.Runs), exact.NextCursor)
	}
}

// TestListBadPaginationParams: malformed limit and unknown cursor are
// loud 400s, never a silent restart from page one.
func TestListBadPaginationParams(t *testing.T) {
	srv, _ := newTestServer(t, dawningcloud.ServiceConfig{Workers: 1})
	for _, q := range []string{"limit=0", "limit=-3", "limit=two", "cursor=run-nope"} {
		var apiErr apiError
		resp := getJSON(t, srv.URL+"/v1/runs?"+q, &apiErr)
		if resp.StatusCode != http.StatusBadRequest || apiErr.Error == "" {
			t.Errorf("?%s = %d %q, want 400 with explanation", q, resp.StatusCode, apiErr.Error)
		}
	}
}
