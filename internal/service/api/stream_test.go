package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	dawningcloud "repro"
	"repro/internal/job"
	"repro/internal/stream"
)

// liveSpec is a one-day, one-system scenario with a single live
// provider: the smallest run the ingestion endpoint can feed.
func liveSpec(name string, buffer int) string {
	return fmt.Sprintf(`{
  "name": %q,
  "days": 1,
  "systems": ["SSP"],
  "providers": [
    {"name": "org-live", "fixed_nodes": 8, "source": {"kind": "live"}}
  ],
  "stream": {"enabled": true, "window_seconds": 43200, "buffer_tasks": %d}
}`, name, buffer)
}

func submitLive(t *testing.T, url, spec string) (id string) {
	t.Helper()
	resp, data := postJSON(t, url+"/v1/runs", fmt.Sprintf(`{"scenario_spec": %s}`, spec))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit live run: %d\n%s", resp.StatusCode, data)
	}
	var sub struct {
		ID      string `json:"id"`
		Deduped bool   `json:"deduped"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Deduped {
		t.Fatalf("live submission deduped; live runs must never share a feed")
	}
	return sub.ID
}

func postTasks(t *testing.T, url, id, body string) (*http.Response, taskResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/runs/"+id+"/tasks", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr taskResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("parse task response: %v", err)
	}
	return resp, tr
}

// TestLiveRunIngestion drives the tentpole end to end over HTTP: submit
// a live-fed scenario, stream NDJSON tasks plus the end-of-stream
// record in, and watch the run finish with incremental window reports
// on its event stream.
func TestLiveRunIngestion(t *testing.T) {
	srv, eng := newTestServer(t, dawningcloud.ServiceConfig{})
	id := submitLive(t, srv.URL, liveSpec("live-ingest", 0))

	// An identical live spec must start its own run: each needs its own
	// task feed, so dedup would cross-wire producers.
	id2 := submitLive(t, srv.URL, liveSpec("live-ingest", 0))
	if id2 == id {
		t.Fatalf("identical live submissions shared run %s", id)
	}

	jobs := make([]job.Job, 0, 20)
	for i := 0; i < 20; i++ {
		jobs = append(jobs, job.Job{
			ID: i, Class: job.HTC,
			Submit:  int64(i) * 1800,
			Runtime: int64(600 + 120*(i%5)),
			Nodes:   1 + i%4,
		})
	}
	var feed bytes.Buffer
	if err := stream.WriteNDJSON(&feed, "", jobs); err != nil {
		t.Fatal(err)
	}
	resp, tr := postTasks(t, srv.URL, id, feed.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d (%s)", resp.StatusCode, tr.Error)
	}
	if tr.Accepted != len(jobs) || !tr.Closed {
		t.Fatalf("ingest: accepted %d closed %v, want %d true", tr.Accepted, tr.Closed, len(jobs))
	}

	h, ok := eng.Handle(id)
	if !ok {
		t.Fatalf("run %s vanished", id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := h.Result(ctx)
	if err != nil {
		t.Fatalf("live run failed: %v", err)
	}
	ssp, ok := res.Report.Base["SSP"]
	if !ok || ssp.TotalNodeHours <= 0 {
		t.Fatalf("live run produced no SSP result: %+v", res.Report.Base)
	}

	// The replayed event stream carries the incremental results: one
	// window_report per 12h window and the cross-system window_summary.
	resp2, err := http.Get(srv.URL + "/v1/runs/" + id + "/events?follow=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	counts := map[string]int{}
	sc := bufio.NewScanner(resp2.Body)
	for sc.Scan() {
		var wire struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &wire); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		counts[wire.Type]++
	}
	if counts["window_report"] != 2 || counts["window_summary"] != 2 {
		t.Errorf("event stream: %d window_report + %d window_summary, want 2 + 2 (counts: %v)",
			counts["window_report"], counts["window_summary"], counts)
	}

	// A terminal run takes no more tasks.
	resp3, tr3 := postTasks(t, srv.URL, id, `{"end":true}`+"\n")
	if resp3.StatusCode != http.StatusConflict {
		t.Errorf("ingest into finished run: %d (%s), want 409", resp3.StatusCode, tr3.Error)
	}

	if h2, ok := eng.Handle(id2); ok {
		h2.Cancel()
	}
}

// TestTaskValidation pins the strict per-record admission rules and the
// non-live/unknown-run error paths.
func TestTaskValidation(t *testing.T) {
	srv, eng := newTestServer(t, dawningcloud.ServiceConfig{})
	id := submitLive(t, srv.URL, liveSpec("live-validate", 0))
	defer func() {
		if h, ok := eng.Handle(id); ok {
			h.Cancel()
		}
	}()

	cases := []struct {
		name, body string
		code       int
		accepted   int
	}{
		{"unknown field", `{"id":1,"submit":0,"runtime":60,"nodes":1,"bogus":true}`, http.StatusBadRequest, 0},
		{"structurally invalid", `{"id":1,"submit":0,"runtime":60,"nodes":0}`, http.StatusBadRequest, 0},
		{"unknown lane", `{"id":1,"submit":0,"runtime":60,"nodes":1,"workload":"nope"}`, http.StatusBadRequest, 0},
		{"submit order", `{"id":1,"submit":100,"runtime":60,"nodes":1}` + "\n" +
			`{"id":2,"submit":50,"runtime":60,"nodes":1}`, http.StatusBadRequest, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, tr := postTasks(t, srv.URL, id, tc.body)
			if resp.StatusCode != tc.code {
				t.Fatalf("status %d (%s), want %d", resp.StatusCode, tr.Error, tc.code)
			}
			if tr.Accepted != tc.accepted {
				t.Fatalf("accepted %d, want %d", tr.Accepted, tc.accepted)
			}
			if tr.Error == "" {
				t.Fatalf("error body missing")
			}
		})
	}

	// Unknown run: 404. Non-live run: 409.
	resp, _ := postTasks(t, srv.URL, "run-999999", `{"end":true}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run: %d, want 404", resp.StatusCode)
	}
	respSub, data := postJSON(t, srv.URL+"/v1/runs", `{"system":"SSP","workload":"montage"}`)
	if respSub.StatusCode != http.StatusAccepted {
		t.Fatalf("submit system run: %d\n%s", respSub.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil {
		t.Fatal(err)
	}
	resp2, _ := postTasks(t, srv.URL, sub.ID, `{"id":1,"submit":0,"runtime":60,"nodes":1}`)
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("tasks into non-live run: %d, want 409", resp2.StatusCode)
	}
}

// TestTaskBackpressure fills a one-task lane buffer of a queued run (no
// worker is draining it) and requires the explicit 503 + Retry-After
// shed with the client's resume point.
func TestTaskBackpressure(t *testing.T) {
	srv, eng := newTestServer(t, dawningcloud.ServiceConfig{Workers: 1})
	// The first live run occupies the only worker (waiting for tasks
	// that never come), so the second stays queued with nothing
	// consuming its lane.
	blocker := submitLive(t, srv.URL, liveSpec("live-blocker", 0))
	queued := submitLive(t, srv.URL, liveSpec("live-queued", 1))
	defer func() {
		for _, id := range []string{blocker, queued} {
			if h, ok := eng.Handle(id); ok {
				h.Cancel()
			}
		}
	}()

	body := `{"id":1,"submit":0,"runtime":60,"nodes":1}` + "\n" +
		`{"id":2,"submit":10,"runtime":60,"nodes":1}`
	resp, tr := postTasks(t, srv.URL, queued, body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overfull lane: %d (%s), want 503", resp.StatusCode, tr.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After")
	}
	if tr.Accepted != 1 {
		t.Errorf("accepted %d, want 1 (the resume point)", tr.Accepted)
	}
}

// TestEventsPing subscribes to a stalled run's SSE stream and requires
// the keep-alive comments that hold idle connections open.
func TestEventsPing(t *testing.T) {
	eng := dawningcloud.NewEngine(dawningcloud.WithServiceConfig(dawningcloud.ServiceConfig{}))
	srv := httptest.NewServer(New(eng, WithPingInterval(20*time.Millisecond)))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng.Shutdown(ctx); err != nil {
			t.Errorf("engine shutdown: %v", err)
		}
	})

	// A live run with no tasks pushed stalls indefinitely: the feeder is
	// blocked waiting for the producer, and no events flow.
	id := submitLive(t, srv.URL, liveSpec("live-stalled", 0))
	defer func() {
		if h, ok := eng.Handle(id); ok {
			h.Cancel()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	pings := 0
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), ": ping") {
			pings++
			if pings >= 2 {
				return // the stream survived two idle intervals
			}
		}
	}
	t.Fatalf("stream ended after %d pings (want 2): %v", pings, sc.Err())
}
