package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Hasher builds the content hash a submission deduplicates under. It is
// a thin, allocation-light wrapper over SHA-256 with length-prefixed
// field framing, so "ab" + "c" and "a" + "bc" hash differently and a
// million-job workload hashes in one pass without intermediate strings.
type Hasher struct {
	h   hash.Hash
	buf [8]byte
}

// NewHasher starts a hash over the given domain-separation parts (e.g.
// the request kind).
func NewHasher(parts ...string) *Hasher {
	h := &Hasher{h: sha256.New()}
	for _, p := range parts {
		h.Str(p)
	}
	return h
}

// Str folds a length-prefixed string into the hash.
func (h *Hasher) Str(s string) *Hasher {
	h.Int(int64(len(s)))
	h.h.Write([]byte(s))
	return h
}

// Int folds a fixed-width integer into the hash.
func (h *Hasher) Int(v int64) *Hasher {
	binary.LittleEndian.PutUint64(h.buf[:], uint64(v))
	h.h.Write(h.buf[:])
	return h
}

// Float folds a float's bit pattern into the hash.
func (h *Hasher) Float(f float64) *Hasher {
	return h.Int(int64(math.Float64bits(f)))
}

// Sum returns the hex digest.
func (h *Hasher) Sum() string {
	return hex.EncodeToString(h.h.Sum(nil))
}
