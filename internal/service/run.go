package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
)

// Run is one stored execution: a stable identity, a lifecycle status, a
// replayable typed event stream, a cancel switch and an awaitable
// result. All methods are safe for concurrent use.
//
// A run may execute more than once: when a worker's claim goes stale
// (crashed process, wedged fleet member) the reconciler re-queues the
// run for a fresh attempt. Attempts are numbered by a generation
// counter (gen); events, heartbeats and results from a superseded
// attempt are dropped, so a zombie worker finishing late can never
// clobber the retry's state.
type Run struct {
	id, key, kind, label string
	seq                  int64
	task                 Task
	sink                 events.Sink
	svc                  *Service
	created              time.Time
	// spec is the serialized submission a restart rehydrates the task
	// from; empty means the run is not crash-recoverable.
	spec []byte
	// transient marks inline runs: they execute on their caller's
	// goroutine under the caller's context, so they are neither
	// persisted nor lease-managed.
	transient bool

	// joins counts submissions that attached to this run after the one
	// that created it (dedup reuses and cache hits).
	joins atomic.Int64

	memoOnce sync.Once
	memo     any

	mu     sync.Mutex
	ctx    context.Context //dclint:allow ctxfirst -- the current attempt's execution context by design: runs outlive the submitting call and are canceled via cancel
	cancel context.CancelCauseFunc
	// gen is the attempt generation: bumped by every requeue, compared
	// by everything an attempt reports back.
	gen int
	// retries counts requeues (bounded by Config.MaxRetries).
	retries int
	// worker and lastBeat describe the current claim ("" when not
	// running); the reconciler re-queues the run once lastBeat ages
	// past the lease TTL.
	worker   string
	lastBeat time.Time
	status   Status
	started  time.Time
	finished time.Time
	events   []events.Event
	wake     chan struct{} // closed and replaced on every append
	result   any
	err      error

	done chan struct{} // closed once terminal
}

// ID returns the run's stable identity.
func (r *Run) ID() string { return r.id }

// Key returns the content hash the run deduplicates under ("" for
// inline runs).
func (r *Run) Key() string { return r.key }

// Kind returns the request kind ("system", "scenario", "suite").
func (r *Run) Kind() string { return r.kind }

// Label returns the human-readable description.
func (r *Run) Label() string { return r.label }

// Status returns the current lifecycle state.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Retries reports how many times the run has been re-queued after a
// stale worker claim (including a crash-recovery resume).
func (r *Run) Retries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// terminalSince returns the status and, when terminal, the finish time.
func (r *Run) terminalSince() (Status, time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status, r.finished
}

// Done returns a channel closed when the run reaches a terminal status.
func (r *Run) Done() <-chan struct{} { return r.done }

// Joins reports how many submissions attached to this run beyond the
// one that created it. A positive count means the run's result (and its
// cancellation) is shared.
func (r *Run) Joins() int64 { return r.joins.Load() }

// Memo caches a derived view of the terminal result (a wire rendering,
// say): build runs at most once per run, and every caller shares the
// value. Call only after Done — the result is immutable then.
func (r *Run) Memo(build func(result any) any) any {
	r.memoOnce.Do(func() { r.memo = build(r.result) })
	return r.memo
}

// Err returns the terminal error (nil before completion and on success).
func (r *Run) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Cancel aborts the run: a queued run finishes canceled without
// executing, a running run's context is canceled (the simulation
// observes it and returns an error wrapping context.Canceled), and a
// terminal run is unaffected. Cancel is idempotent and returns without
// waiting; receive on Done to wait for the abort to land.
func (r *Run) Cancel() {
	r.mu.Lock()
	cancel := r.cancel
	r.mu.Unlock()
	cancel(ErrCanceled)
	// A queued run has no executing goroutine to notice the canceled
	// context; finalize it here so waiters are released immediately. The
	// check-and-finish is atomic (finishIfQueued holds the lock across
	// both), so a worker that already started the task wins and the
	// task's own return records the terminal state instead.
	r.finishIfQueued(fmt.Errorf("service: run %s canceled while queued: %w", r.id, context.Canceled))
}

// CancelIfSole cancels the run only when no other submission shares
// it, atomically with respect to dedup joins; it reports whether the
// cancellation (or nothing, for terminal runs) applied. See
// Service.cancelIfSole.
func (r *Run) CancelIfSole() bool { return r.svc.cancelIfSole(r) }

// Result blocks until the run is terminal (or ctx is done) and returns
// the task's result and error. The wait is bounded by the caller's ctx
// only; abandoning the wait does not cancel the run.
func (r *Run) Result(ctx context.Context) (any, error) {
	select {
	case <-r.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.result, r.err
}

// Info is a JSON-friendly snapshot of a run.
type Info struct {
	ID     string `json:"id"`
	Kind   string `json:"kind,omitempty"`
	Label  string `json:"label,omitempty"`
	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`
	// Deduped is filled by callers that track per-submission reuse; the
	// run itself does not know how many submissions share it.
	Deduped bool `json:"deduped,omitempty"`
	// Retries counts stale-claim requeues (crash-recovery resumes
	// included); MaxRetries of them park the run in dead_letter.
	Retries  int        `json:"retries,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Events   int        `json:"events"`
}

// Snapshot captures the run's current state.
func (r *Run) Snapshot() Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := Info{
		ID: r.id, Kind: r.kind, Label: r.label,
		Status: r.status, Retries: r.retries,
		Created: r.created, Events: len(r.events),
	}
	if r.err != nil {
		info.Error = r.err.Error()
	}
	if !r.started.IsZero() {
		t := r.started
		info.Started = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		info.Finished = &t
	}
	return info
}

// Events returns a channel that first replays every event the run has
// already recorded and then follows live emissions. The channel closes
// once the run is terminal and every event has been delivered, or when
// ctx is done. Subscribing to a finished run replays its full history.
func (r *Run) Events(ctx context.Context) <-chan events.Event {
	out := make(chan events.Event)
	go func() {
		defer close(out)
		i := 0
		for {
			r.mu.Lock()
			pending := r.events[i:]
			wake := r.wake
			terminal := r.status.Terminal()
			r.mu.Unlock()
			for _, ev := range pending {
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
			}
			i += len(pending)
			if terminal {
				// finish appends its final event before flipping the
				// status, both under the lock, so a terminal snapshot
				// with all events delivered is complete.
				return
			}
			select {
			case <-wake:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// appendEvent records ev in the replay buffer and wakes subscribers.
// Events arriving after the run turned terminal are dropped (tasks
// cannot emit after returning; this only guards misuse).
func (r *Run) appendEvent(ev events.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.status.Terminal() {
		return
	}
	r.appendEventLocked(ev)
}

// appendEventFrom is appendEvent for a specific attempt: events from a
// superseded (requeued-over) attempt are dropped so a zombie worker
// cannot interleave its progress into the retry's stream. It reports
// whether the event was recorded (the caller tees it onward only then).
func (r *Run) appendEventFrom(gen int, ev events.Event) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.status.Terminal() || r.gen != gen {
		return false
	}
	r.appendEventLocked(ev)
	return true
}

// appendEventLocked records and wakes. Caller holds r.mu.
func (r *Run) appendEventLocked(ev events.Event) {
	r.events = append(r.events, ev)
	close(r.wake)
	r.wake = make(chan struct{})
}

// begin moves Queued to Running for a new attempt under worker's claim;
// ok is false if the run is no longer queued (canceled while queued, or
// already claimed). The returned generation and context identify the
// attempt: everything the worker reports back is guarded by them.
func (r *Run) begin(worker string, now time.Time) (gen int, ctx context.Context, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.status != StatusQueued {
		return 0, nil, false
	}
	r.status = StatusRunning
	r.worker = worker
	r.lastBeat = now
	r.started = now
	return r.gen, r.ctx, true
}

// beat refreshes the attempt's lease; false once the attempt is
// superseded or the run left Running (the heartbeat loop exits then).
func (r *Run) beat(gen int, now time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gen != gen || r.status != StatusRunning {
		return false
	}
	r.lastBeat = now
	return true
}

// claimStale reports whether the run holds a worker claim whose lease
// has aged out.
func (r *Run) claimStale(now time.Time, ttl time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status == StatusRunning && r.worker != "" && now.Sub(r.lastBeat) >= ttl
}

// requeueStale atomically returns a stale-claimed run to Queued for a
// fresh attempt: the generation advances (orphaning the zombie
// attempt), the old context is canceled with cause, and a new context
// is derived from base. It re-checks staleness under the lock, so a
// heartbeat racing the reconciler wins.
func (r *Run) requeueStale(base context.Context, now time.Time, ttl time.Duration, reason string, cause error) (retries int, ok bool) {
	r.mu.Lock()
	if r.status != StatusRunning || r.worker == "" || now.Sub(r.lastBeat) < ttl {
		r.mu.Unlock()
		return 0, false
	}
	r.gen++
	r.retries++
	retries = r.retries
	oldCancel := r.cancel
	r.ctx, r.cancel = context.WithCancelCause(base)
	r.status = StatusQueued
	r.worker = ""
	r.started = time.Time{}
	r.appendEventLocked(events.RunRequeued{ID: r.id, Retries: retries, Reason: reason})
	r.mu.Unlock()
	oldCancel(cause)
	return retries, true
}

// runTask executes the attempt's task with a sink that records into the
// replay buffer and tees to the request's synchronous sink (both
// guarded by the attempt generation). A panicking task fails the run
// instead of killing the worker.
func (r *Run) runTask(gen int, ctx context.Context) (res any, err error) {
	r.mu.Lock()
	task, tee := r.task, r.sink
	r.mu.Unlock()
	sink := events.Sink(func(ev events.Event) {
		if r.appendEventFrom(gen, ev) {
			tee.Emit(ev)
		}
	})
	defer func() {
		if p := recover(); p != nil {
			// The stack would otherwise be lost to the recover: a
			// long-lived service has no crashing process to dump it.
			err = fmt.Errorf("service: run %s panicked: %v\n%s", r.id, p, debug.Stack())
		}
	}()
	return task(ctx, sink)
}

// statusAuto tells finishAs to infer Done/Failed/Canceled from the
// error and context; any other value forces that terminal status.
const statusAuto Status = -1

// finish records the terminal state exactly once, with no attempt
// guard (cancellation, shutdown and recovery paths).
func (r *Run) finish(res any, err error) {
	r.finishAs(statusAuto, res, err, false, 0)
}

// finishAttempt is finish for a worker's attempt: a superseded attempt
// (the reconciler requeued the run meanwhile) is dropped.
func (r *Run) finishAttempt(gen int, res any, err error) {
	r.finishAs(statusAuto, res, err, false, gen)
}

// finishIfQueued finishes the run only if no worker has begun it: the
// queued-status check and the terminal transition happen under one
// lock, so it cannot race begin into finishing an executing task.
func (r *Run) finishIfQueued(err error) bool {
	return r.finishAs(statusAuto, nil, err, true, 0)
}

// finishAs is the one terminal transition: status (inferred or forced),
// result and error, the closing RunFinished event (preceded by
// RunDeadLettered when the reconciler gave up on the run), the done
// signal and the service-side retirement. gen != 0 restricts the finish
// to that attempt generation; onlyQueued restricts it to unclaimed runs.
func (r *Run) finishAs(forced Status, res any, err error, onlyQueued bool, gen int) bool {
	r.mu.Lock()
	if r.status.Terminal() || (onlyQueued && r.status != StatusQueued) || (gen != 0 && gen != r.gen) {
		r.mu.Unlock()
		return false
	}
	st := forced
	if st == statusAuto {
		st = StatusDone
		if err != nil {
			if r.ctx.Err() != nil {
				st = StatusCanceled
			} else {
				st = StatusFailed
			}
		}
	}
	r.result, r.err = res, err
	r.status = st
	r.worker = ""
	r.finished = r.svc.cfg.Now()
	if st == StatusDeadLetter {
		r.events = append(r.events, events.RunDeadLettered{ID: r.id, Retries: r.retries, Err: err})
	}
	r.events = append(r.events, events.RunFinished{ID: r.id, Status: st.String(), Err: err})
	// The task closure captures the submitted workloads (possibly
	// millions of jobs); the run outlives execution by the TTL, so drop
	// everything the stored record no longer needs.
	r.task, r.sink = nil, nil
	close(r.wake)
	r.wake = make(chan struct{})
	cancel := r.cancel
	r.mu.Unlock()
	close(r.done)
	cancel(nil) // release the context's resources
	r.svc.retire(r, st, res, err)
	return true
}
