package service

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
)

// Run is one stored execution: a stable identity, a lifecycle status, a
// replayable typed event stream, a cancel switch and an awaitable
// result. All methods are safe for concurrent use.
type Run struct {
	id, key, kind, label string
	task                 Task
	sink                 events.Sink
	svc                  *Service
	created              time.Time

	ctx    context.Context //dclint:allow ctxfirst -- the run's execution context by design: runs outlive the submitting call and are canceled via cancel
	cancel context.CancelCauseFunc

	// joins counts submissions that attached to this run after the one
	// that created it (dedup reuses and cache hits).
	joins atomic.Int64

	memoOnce sync.Once
	memo     any

	mu       sync.Mutex
	status   Status
	started  time.Time
	finished time.Time
	events   []events.Event
	wake     chan struct{} // closed and replaced on every append
	result   any
	err      error

	done chan struct{} // closed once terminal
}

// ID returns the run's stable identity.
func (r *Run) ID() string { return r.id }

// Key returns the content hash the run deduplicates under ("" for
// inline runs).
func (r *Run) Key() string { return r.key }

// Kind returns the request kind ("system", "scenario", "suite").
func (r *Run) Kind() string { return r.kind }

// Label returns the human-readable description.
func (r *Run) Label() string { return r.label }

// Status returns the current lifecycle state.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// terminalSince returns the status and, when terminal, the finish time.
func (r *Run) terminalSince() (Status, time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status, r.finished
}

// Done returns a channel closed when the run reaches a terminal status.
func (r *Run) Done() <-chan struct{} { return r.done }

// Joins reports how many submissions attached to this run beyond the
// one that created it. A positive count means the run's result (and its
// cancellation) is shared.
func (r *Run) Joins() int64 { return r.joins.Load() }

// Memo caches a derived view of the terminal result (a wire rendering,
// say): build runs at most once per run, and every caller shares the
// value. Call only after Done — the result is immutable then.
func (r *Run) Memo(build func(result any) any) any {
	r.memoOnce.Do(func() { r.memo = build(r.result) })
	return r.memo
}

// Err returns the terminal error (nil before completion and on success).
func (r *Run) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Cancel aborts the run: a queued run finishes canceled without
// executing, a running run's context is canceled (the simulation
// observes it and returns an error wrapping context.Canceled), and a
// terminal run is unaffected. Cancel is idempotent and returns without
// waiting; receive on Done to wait for the abort to land.
func (r *Run) Cancel() {
	r.cancel(ErrCanceled)
	// A queued run has no executing goroutine to notice the canceled
	// context; finalize it here so waiters are released immediately. The
	// check-and-finish is atomic (finishIfQueued holds the lock across
	// both), so a worker that flips the run to Running first wins and
	// the task's own return records the terminal state instead.
	r.finishIfQueued(fmt.Errorf("service: run %s canceled while queued: %w", r.id, context.Canceled))
}

// CancelIfSole cancels the run only when no other submission shares
// it, atomically with respect to dedup joins; it reports whether the
// cancellation (or nothing, for terminal runs) applied. See
// Service.cancelIfSole.
func (r *Run) CancelIfSole() bool { return r.svc.cancelIfSole(r) }

// Result blocks until the run is terminal (or ctx is done) and returns
// the task's result and error. The wait is bounded by the caller's ctx
// only; abandoning the wait does not cancel the run.
func (r *Run) Result(ctx context.Context) (any, error) {
	select {
	case <-r.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.result, r.err
}

// Info is a JSON-friendly snapshot of a run.
type Info struct {
	ID     string `json:"id"`
	Kind   string `json:"kind,omitempty"`
	Label  string `json:"label,omitempty"`
	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`
	// Deduped is filled by callers that track per-submission reuse; the
	// run itself does not know how many submissions share it.
	Deduped  bool       `json:"deduped,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Events   int        `json:"events"`
}

// Snapshot captures the run's current state.
func (r *Run) Snapshot() Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := Info{
		ID: r.id, Kind: r.kind, Label: r.label,
		Status: r.status, Created: r.created, Events: len(r.events),
	}
	if r.err != nil {
		info.Error = r.err.Error()
	}
	if !r.started.IsZero() {
		t := r.started
		info.Started = &t
	}
	if !r.finished.IsZero() {
		t := r.finished
		info.Finished = &t
	}
	return info
}

// Events returns a channel that first replays every event the run has
// already recorded and then follows live emissions. The channel closes
// once the run is terminal and every event has been delivered, or when
// ctx is done. Subscribing to a finished run replays its full history.
func (r *Run) Events(ctx context.Context) <-chan events.Event {
	out := make(chan events.Event)
	go func() {
		defer close(out)
		i := 0
		for {
			r.mu.Lock()
			pending := r.events[i:]
			wake := r.wake
			terminal := r.status.Terminal()
			r.mu.Unlock()
			for _, ev := range pending {
				select {
				case out <- ev:
				case <-ctx.Done():
					return
				}
			}
			i += len(pending)
			if terminal {
				// finish appends its final event before flipping the
				// status, both under the lock, so a terminal snapshot
				// with all events delivered is complete.
				return
			}
			select {
			case <-wake:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out
}

// appendEvent records ev in the replay buffer and wakes subscribers.
// Events arriving after the run turned terminal are dropped (tasks
// cannot emit after returning; this only guards misuse).
func (r *Run) appendEvent(ev events.Event) {
	r.mu.Lock()
	if r.status.Terminal() {
		r.mu.Unlock()
		return
	}
	r.events = append(r.events, ev)
	close(r.wake)
	r.wake = make(chan struct{})
	r.mu.Unlock()
}

// begin moves Queued to Running; false if the run is already terminal
// (canceled while queued).
func (r *Run) begin() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.status != StatusQueued {
		return false
	}
	r.status = StatusRunning
	r.started = r.svc.cfg.Now()
	return true
}

// runTask executes the task with a sink that records into the replay
// buffer and tees to the request's synchronous sink. A panicking task
// fails the run instead of killing the worker.
func (r *Run) runTask() (res any, err error) {
	r.mu.Lock()
	task, tee := r.task, r.sink
	r.mu.Unlock()
	sink := events.Sink(func(ev events.Event) {
		r.appendEvent(ev)
		tee.Emit(ev)
	})
	defer func() {
		if p := recover(); p != nil {
			// The stack would otherwise be lost to the recover: a
			// long-lived service has no crashing process to dump it.
			err = fmt.Errorf("service: run %s panicked: %v\n%s", r.id, p, debug.Stack())
		}
	}()
	return task(r.ctx, sink)
}

// finish records the terminal state exactly once: result and error, the
// status (Canceled when the run's own context was canceled, Failed on
// any other error, Done otherwise), the closing RunFinished event, and
// the done signal.
func (r *Run) finish(res any, err error) {
	r.finishWith(res, err, false)
}

// finishIfQueued finishes the run only if no worker has begun it: the
// queued-status check and the terminal transition happen under one
// lock, so it cannot race begin into finishing an executing task.
func (r *Run) finishIfQueued(err error) bool {
	return r.finishWith(nil, err, true)
}

func (r *Run) finishWith(res any, err error, onlyQueued bool) bool {
	r.mu.Lock()
	if r.status.Terminal() || (onlyQueued && r.status != StatusQueued) {
		r.mu.Unlock()
		return false
	}
	st := StatusDone
	if err != nil {
		if r.ctx.Err() != nil {
			st = StatusCanceled
		} else {
			st = StatusFailed
		}
	}
	r.result, r.err = res, err
	r.status = st
	r.finished = r.svc.cfg.Now()
	r.events = append(r.events, events.RunFinished{ID: r.id, Status: st.String(), Err: err})
	// The task closure captures the submitted workloads (possibly
	// millions of jobs); the run outlives execution by the TTL, so drop
	// everything the stored record no longer needs.
	r.task, r.sink = nil, nil
	close(r.wake)
	r.wake = make(chan struct{})
	r.mu.Unlock()
	close(r.done)
	r.cancel(nil) // release the context's resources
	r.svc.retire(r, st)
	return true
}
