package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
	"repro/internal/runstore"
)

// Status is a run's lifecycle state.
type Status int

const (
	// StatusQueued: accepted and waiting for a worker slot.
	StatusQueued Status = iota
	// StatusRunning: executing.
	StatusRunning
	// StatusDone: finished successfully; the result is available.
	StatusDone
	// StatusFailed: finished with an error other than cancellation.
	StatusFailed
	// StatusCanceled: aborted by Cancel or service shutdown.
	StatusCanceled
	// StatusDeadLetter: abandoned by the self-healing loop after the
	// run's worker claim went stale more than MaxRetries times. Terminal
	// and non-reusable, kept visible for operator inspection.
	StatusDeadLetter
)

// String returns the lowercase wire form ("queued", "running", ...).
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	case StatusDeadLetter:
		return "dead_letter"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// ParseStatus inverts String: it maps a wire form back to the Status.
// It accepts exactly the strings String produces (API filters and
// durable-store recovery both route through it).
func ParseStatus(s string) (Status, error) {
	switch s {
	case "queued":
		return StatusQueued, nil
	case "running":
		return StatusRunning, nil
	case "done":
		return StatusDone, nil
	case "failed":
		return StatusFailed, nil
	case "canceled":
		return StatusCanceled, nil
	case "dead_letter":
		return StatusDeadLetter, nil
	default:
		return 0, fmt.Errorf("service: unknown status %q", s)
	}
}

// Terminal reports whether the run has finished (successfully or not).
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled || s == StatusDeadLetter
}

// MarshalJSON encodes the status as its wire string.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Sentinel errors of the submission path.
var (
	// ErrBusy: the queue is full; retry later (backpressure).
	ErrBusy = errors.New("service: queue full")
	// ErrShutdown: the service no longer accepts submissions.
	ErrShutdown = errors.New("service: shutting down")
	// ErrCanceled is the cancellation cause installed by Run.Cancel.
	ErrCanceled = errors.New("service: run canceled")
	// ErrLeaseExpired is the cancellation cause a requeued attempt's
	// context carries: the reconciler decided the claim was stale and
	// handed the run to a fresh attempt.
	ErrLeaseExpired = errors.New("service: worker lease expired")
)

// Task is the unit of work a run executes. It must honor ctx and may
// publish progress events to sink (never nil) from any goroutine.
type Task func(ctx context.Context, sink events.Sink) (any, error)

// Request describes one submission.
type Request struct {
	// Key is the request's content hash: submissions with equal non-empty
	// keys describe identical work and deduplicate onto one run. An empty
	// key disables dedup and caching for this run.
	Key string
	// Kind classifies the run for observers ("system", "scenario",
	// "suite").
	Kind string
	// Label is a human-readable description for listings and logs.
	Label string
	// Task executes the work.
	Task Task
	// Spec is the submission serialized well enough that
	// Config.Rehydrate can rebuild Task from it after a restart. Empty
	// means the run is not crash-recoverable: a durable service that
	// finds it queued or running at boot fails it as lost.
	Spec []byte
	// Sink, when non-nil, additionally receives the task's events
	// synchronously from the emitting goroutine (the run's own buffer
	// always records them). It must be safe for concurrent use.
	Sink events.Sink
}

// Config tunes a Service. The zero value takes the documented defaults.
type Config struct {
	// Workers bounds how many queued runs execute concurrently
	// (default: all CPUs). Inline runs execute on their caller's
	// goroutine and do not occupy a worker.
	Workers int
	// QueueDepth bounds how many submitted runs may wait for a worker;
	// a full queue rejects submissions with ErrBusy (default 256).
	QueueDepth int
	// TTL evicts finished runs from the store this long after they
	// complete (default 15 minutes; negative keeps them forever).
	TTL time.Duration
	// MaxRuns caps the store; the oldest finished runs are evicted
	// beyond it (default 2048).
	MaxRuns int
	// BaseContext is the parent of every queued run's context; its
	// cancellation aborts them all (default context.Background()).
	BaseContext context.Context //dclint:allow ctxfirst -- http.Server-style lifecycle config: the root every run context derives from
	// Now is the clock (default time.Now; tests override it to drive
	// TTL eviction and lease expiry deterministically).
	Now func() time.Time

	// Store persists the run lifecycle. Nil takes the in-memory store
	// (runstore.NewMem()): identical observable behavior, nothing
	// outlives the process. A durable store (runstore.Open) makes the
	// service crash-recoverable: New replays its state, resumes queued
	// and running runs, and serves finished results from disk.
	Store runstore.Store
	// Rehydrate rebuilds a submission's Task from its persisted Spec at
	// recovery ("scenario" from its definition, say). Nil means
	// recovered non-terminal runs fail as lost instead of resuming.
	Rehydrate func(kind string, spec []byte) (Task, error)
	// EncodeResult serializes a successful result for the durable
	// store; DecodeResult inverts it at recovery. Both nil is valid
	// (results then do not survive a restart: recovered done runs fail
	// as lost). Only consulted when Store is durable.
	EncodeResult func(kind string, result any) ([]byte, error)
	DecodeResult func(kind string, data []byte) (any, error)

	// WorkerID names this process's claims in the store (default
	// "local"). Operators running several dcserve processes against
	// distinct data dirs use it to tell fleets apart in listings.
	WorkerID string
	// LeaseTTL is how stale a running run's heartbeat may grow before
	// the reconciler treats its worker as lost and re-queues the run
	// (default 30s).
	LeaseTTL time.Duration
	// HeartbeatEvery is the claim-refresh cadence while a task executes
	// (default LeaseTTL/3).
	HeartbeatEvery time.Duration
	// ReconcileEvery is the stale-claim scan cadence (default
	// LeaseTTL/2).
	ReconcileEvery time.Duration
	// MaxRetries bounds the self-healing loop: a run may be re-queued
	// this many times; the next stale claim dead-letters it instead
	// (default 3; negative means no retries — the first stale claim
	// dead-letters).
	MaxRetries int
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.TTL == 0 {
		c.TTL = 15 * time.Minute
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 2048
	}
	if c.BaseContext == nil {
		c.BaseContext = context.Background() //dclint:allow ctxfirst -- default root when the operator configures no BaseContext
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Store == nil {
		c.Store = runstore.NewMem()
	}
	if c.WorkerID == "" {
		c.WorkerID = "local"
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTTL / 3
	}
	if c.ReconcileEvery <= 0 {
		c.ReconcileEvery = c.LeaseTTL / 2
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
}

// Stats is a snapshot of the service's counters. Submitted counts every
// accepted submission; Executed counts task attempts actually run (a
// requeued run executes more than once), so Submitted - Executed is the
// work the dedup/cache layer absorbed, minus retry attempts.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Executed  int64 `json:"executed"`
	// CacheHits: submissions served by an already-finished identical run.
	CacheHits int64 `json:"cache_hits"`
	// Deduped: submissions attached to an identical in-flight run.
	Deduped int64 `json:"deduped"`
	Evicted int64 `json:"evicted"`

	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
	// DeadLetters: runs abandoned after MaxRetries stale claims.
	DeadLetters int64 `json:"dead_letters"`

	// RecoveredRuns: non-terminal runs resumed from the durable store at
	// boot. Requeues: stale claims returned to the queue (reconciler
	// requeues plus restart resumes of previously-running runs).
	RecoveredRuns int64 `json:"recovered_runs"`
	Requeues      int64 `json:"requeues"`

	// WALRecords and Snapshots mirror the persistence layer: total
	// write-ahead-log activity seen by the store (appends plus records
	// replayed at open) and compactions taken. Zero for the in-memory
	// store only until its first record.
	WALRecords int64 `json:"wal_records"`
	Snapshots  int64 `json:"snapshots"`
	// StoreErrors counts persistence appends that failed after the
	// submission was accepted (the run still completes in memory).
	StoreErrors int64 `json:"store_errors,omitempty"`

	// Queued/Running/Stored describe the store right now.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Stored  int `json:"stored"`

	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
}

// Service is the asynchronous run store: submissions become Runs with
// stable IDs, identical submissions share one execution, queued runs
// execute on a bounded worker pool, and finished runs age out after the
// configured TTL.
//
// Every lifecycle transition is recorded in the configured
// runstore.Store. With a durable store the service is crash-recoverable
// (see New) and self-healing: workers hold heartbeat-refreshed leases
// on the runs they execute, and a reconciler re-queues runs whose lease
// went stale — bounded by MaxRetries, beyond which the run is
// dead-lettered.
type Service struct {
	cfg        Config
	store      runstore.Store
	base       context.Context //dclint:allow ctxfirst -- service-lifetime root derived from Config.BaseContext at construction
	baseCancel context.CancelCauseFunc
	queue      chan *Run

	mu        sync.Mutex
	runs      map[string]*Run
	order     []*Run // insertion order, for listing and eviction
	byKey     map[string]*Run
	seq       int64
	closed    bool
	workersOn bool
	wg        sync.WaitGroup

	submitted, executed, cacheHits, deduped, evicted int64
	done, failed, canceled, deadLetters              int64
	recovered, requeues                              int64

	storeErrs atomic.Int64
}

// New builds a service. Workers start lazily on the first queued
// submission, so a service used only for inline runs owns no
// goroutines.
//
// When cfg.Store already holds state (a durable store reopened over an
// existing data dir), New recovers it before returning: terminal runs
// are rebuilt with their persisted results and a synthesized event
// history, non-terminal runs are rehydrated via cfg.Rehydrate and
// re-queued (previously-running ones count a retry — their worker died
// with the old process), and the worker pool starts immediately when
// anything resumed.
func New(cfg Config) *Service {
	cfg.applyDefaults()
	base, cancel := context.WithCancelCause(cfg.BaseContext)
	s := &Service{
		cfg:        cfg,
		store:      cfg.Store,
		base:       base,
		baseCancel: cancel,
		queue:      make(chan *Run, cfg.QueueDepth),
		runs:       make(map[string]*Run),
		byKey:      make(map[string]*Run),
	}
	s.recover()
	return s
}

// record persists a lifecycle transition, counting (not propagating)
// failures: the run proceeds in memory either way, and the operator
// sees store_errors climb on /healthz. The submission path is the
// exception — it propagates the append error so a caller is never told
// "accepted" for work the log never saw.
func (s *Service) record(rec *runstore.Record) {
	if err := s.store.Append(rec); err != nil {
		s.storeErrs.Add(1)
	}
}

// newRunLocked creates and stores a run record. Caller holds s.mu.
func (s *Service) newRunLocked(req Request, ctx context.Context, cancel context.CancelCauseFunc) *Run {
	s.seq++
	id := fmt.Sprintf("run-%06d", s.seq)
	if len(req.Key) >= 12 {
		id = fmt.Sprintf("%s-%06d", req.Key[:12], s.seq)
	}
	r := &Run{
		id:      id,
		seq:     s.seq,
		key:     req.Key,
		kind:    req.Kind,
		label:   req.Label,
		task:    req.Task,
		sink:    req.Sink,
		spec:    req.Spec,
		svc:     s,
		created: s.cfg.Now(),
		ctx:     ctx,
		cancel:  cancel,
		gen:     1,
		status:  StatusQueued,
		wake:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.runs[r.id] = r
	s.order = append(s.order, r)
	if req.Key != "" {
		s.byKey[req.Key] = r
	}
	return r
}

// Submit accepts a run for asynchronous execution and returns its
// handle. reused reports that an identical run (same Key) was already
// stored — in flight (dedup) or finished (cache hit) — and is being
// returned instead of a new execution. A full queue fails with ErrBusy;
// a shut-down service with ErrShutdown. With a durable store, Submit
// returns only after the submission is on disk — an accepted run
// survives a crash.
func (s *Service) Submit(req Request) (r *Run, reused bool, err error) {
	if req.Task == nil {
		return nil, false, fmt.Errorf("service: submit %q: nil task", req.Label)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrShutdown
	}
	s.submitted++
	s.evictLocked()
	if req.Key != "" {
		if prev, ok := s.byKey[req.Key]; ok {
			// Failed and canceled runs are not reusable: the next
			// identical submission executes afresh.
			switch prev.Status() {
			case StatusDone:
				s.cacheHits++
				prev.joins.Add(1)
				s.mu.Unlock()
				return prev, true, nil
			case StatusQueued, StatusRunning:
				s.deduped++
				prev.joins.Add(1)
				s.mu.Unlock()
				return prev, true, nil
			}
		}
	}
	ctx, cancel := context.WithCancelCause(s.base)
	r = s.newRunLocked(req, ctx, cancel)
	// Record RunQueued before the run becomes reachable by any worker:
	// the stream invariant is "run_queued first, run_finished last", and
	// appending after the enqueue would race a fast task's RunStarted
	// (or be dropped entirely by the terminal guard).
	r.appendEvent(events.RunQueued{ID: r.id, Label: r.label})
	// Persist before the enqueue makes the run visible to workers, so
	// the log never sees a claim for a run it does not know. An append
	// failure rejects the submission: better a retryable error now than
	// a run the store would not recover.
	if err := s.store.Append(&runstore.Record{
		Op: runstore.OpSubmit, ID: r.id, Seq: r.seq,
		Key: r.key, Kind: r.kind, Label: r.label,
		Spec: req.Spec, Created: r.created,
	}); err != nil {
		s.removeLocked(r)
		s.submitted--
		s.mu.Unlock()
		cancel(err)
		return nil, false, fmt.Errorf("service: submit %q: persist: %w", req.Label, err)
	}
	select {
	case s.queue <- r:
	default:
		s.removeLocked(r)
		s.submitted-- // rejected, not accepted
		s.record(&runstore.Record{Op: runstore.OpDrop, ID: r.id})
		s.mu.Unlock()
		cancel(ErrBusy)
		return nil, false, ErrBusy
	}
	s.startWorkersLocked()
	s.mu.Unlock()
	return r, false, nil
}

// RunInline executes req synchronously on the calling goroutine under
// the caller's own context, recording the run in the store like any
// other submission. Inline runs never deduplicate and are never served
// from cache: they exist so blocking callers (Engine.Run and friends)
// keep their exact pre-handle semantics — same goroutine, same context,
// events delivered synchronously — while still flowing through the run
// lifecycle. They are transient: never persisted (they die with their
// caller, so recovering one is meaningless) and never lease-managed.
// The returned run is terminal.
func (s *Service) RunInline(ctx context.Context, req Request) (*Run, error) {
	if req.Task == nil {
		return nil, fmt.Errorf("service: run %q: nil task", req.Label)
	}
	runCtx, cancel := context.WithCancelCause(ctx)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel(ErrShutdown)
		return nil, ErrShutdown
	}
	s.evictLocked()
	req.Key = "" // inline runs are not shared
	r := s.newRunLocked(req, runCtx, cancel)
	r.transient = true
	s.mu.Unlock()
	r.appendEvent(events.RunQueued{ID: r.id, Label: r.label})
	s.execute(r)
	return r, nil
}

// startWorkersLocked launches the worker pool and the stale-claim
// reconciler once. Caller holds s.mu.
func (s *Service) startWorkersLocked() {
	if s.workersOn {
		return
	}
	s.workersOn = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.reconcileLoop()
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case r := <-s.queue:
			s.execute(r)
		case <-s.base.Done():
			// Drain: finalize whatever is still queued so waiters are
			// released, then exit.
			for {
				select {
				case r := <-s.queue:
					r.finish(nil, fmt.Errorf("service: run %s aborted by shutdown: %w", r.id, context.Cause(s.base)))
				default:
					return
				}
			}
		}
	}
}

// enqueue hands a run to the worker pool. Unlike Submit's intake path,
// callers here (reconciler requeues, boot recovery) must not drop the
// run on a momentarily full queue — that would strand a persisted run
// as queued-forever — so overflow falls back to a goroutine that waits
// for a slot, bounded by the service lifetime.
func (s *Service) enqueue(r *Run) {
	select {
	case s.queue <- r:
	default:
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			select {
			case s.queue <- r:
			case <-s.base.Done():
				r.finishIfQueued(fmt.Errorf("service: run %s aborted by shutdown: %w", r.id, ErrShutdown))
			}
		}()
	}
}

// execute moves a run through Running to a terminal status, holding a
// heartbeat-refreshed claim for the attempt's duration (persisted runs
// only; inline runs are transient and lease-free).
func (s *Service) execute(r *Run) {
	worker := s.cfg.WorkerID
	if r.transient {
		worker = ""
	}
	now := s.cfg.Now()
	gen, ctx, ok := r.begin(worker, now)
	if !ok {
		return // canceled while queued
	}
	s.mu.Lock()
	s.executed++
	s.mu.Unlock()
	if !r.transient {
		s.record(&runstore.Record{Op: runstore.OpClaim, ID: r.id, Worker: worker, Attempt: gen, At: now})
		stop := s.startHeartbeat(r, gen, ctx)
		defer stop()
	}
	res, err := r.runTask(gen, ctx)
	r.finishAttempt(gen, res, err)
}

// startHeartbeat refreshes the attempt's claim every HeartbeatEvery
// until the attempt ends (its context is canceled on finish and on
// requeue) or the returned stop is called. Heartbeats mark liveness,
// they do not carry state, so the store may skip fsyncing them.
func (s *Service) startHeartbeat(r *Run, gen int, ctx context.Context) (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(s.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				now := s.cfg.Now()
				if !r.beat(gen, now) {
					return // superseded or no longer running
				}
				s.record(&runstore.Record{Op: runstore.OpHeartbeat, ID: r.id, At: now})
			case <-ctx.Done():
				return
			case <-done:
				return
			}
		}
	}()
	return func() { close(done) }
}

// Get returns the stored run with the given ID.
func (s *Service) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
	r, ok := s.runs[id]
	return r, ok
}

// Runs lists the stored runs, newest first.
func (s *Service) Runs() []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
	out := make([]*Run, len(s.order))
	for i, r := range s.order {
		out[len(out)-1-i] = r
	}
	return out
}

// RunsBefore lists the stored runs strictly older than the run with ID
// cursor, newest first. ok is false when the cursor names no stored run
// (evicted or never existed). The cursor resolves through the ID index
// plus a binary search over the seq-sorted order — O(log n), not a scan
// — so paging through a large store stays linear overall.
func (s *Service) RunsBefore(cursor string) (runs []*Run, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
	c, ok := s.runs[cursor]
	if !ok {
		return nil, false
	}
	// s.order is sorted by seq: runs append in issue order and recovery
	// replays the store's seq-sorted states, so c's position is the
	// unique index holding its seq.
	idx := sort.Search(len(s.order), func(i int) bool { return s.order[i].seq >= c.seq })
	out := make([]*Run, idx)
	for i, r := range s.order[:idx] {
		out[idx-1-i] = r
	}
	return out, true
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	storeStats := s.store.Stats()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted: s.submitted, Executed: s.executed,
		CacheHits: s.cacheHits, Deduped: s.deduped, Evicted: s.evicted,
		Done: s.done, Failed: s.failed, Canceled: s.canceled,
		DeadLetters:   s.deadLetters,
		RecoveredRuns: s.recovered, Requeues: s.requeues,
		WALRecords: storeStats.WALRecords, Snapshots: storeStats.Snapshots,
		StoreErrors: s.storeErrs.Load(),
		Stored:      len(s.runs),
		Workers:     s.cfg.Workers, QueueDepth: s.cfg.QueueDepth,
	}
	for _, r := range s.order {
		switch r.Status() {
		case StatusQueued:
			st.Queued++
		case StatusRunning:
			st.Running++
		}
	}
	return st
}

// Shutdown stops intake, cancels every queued and running run, and waits
// (bounded by ctx) for the workers to exit. Inline runs execute under
// their caller's context and are unaffected. The store is not closed:
// its lifecycle belongs to whoever opened it. Shutdown is idempotent.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	pending := make([]*Run, 0, len(s.order))
	for _, r := range s.order {
		if !r.Status().Terminal() {
			pending = append(pending, r)
		}
	}
	s.mu.Unlock()

	s.baseCancel(ErrShutdown)
	for _, r := range pending {
		// Queued runs may sit in the channel with no worker ever
		// started; release their waiters directly. finishIfQueued is
		// atomic with begin, so a worker that already started the task
		// wins and the task finishes itself by observing the canceled
		// base context.
		r.finishIfQueued(fmt.Errorf("service: run %s aborted by shutdown: %w", r.id, ErrShutdown))
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
}

// evictLocked drops finished runs past their TTL and, beyond MaxRuns,
// the oldest finished runs. Caller holds s.mu.
func (s *Service) evictLocked() {
	now := s.cfg.Now()
	keep := s.order[:0]
	for _, r := range s.order {
		drop := false
		if st, finished := r.terminalSince(); st.Terminal() {
			if s.cfg.TTL >= 0 && now.Sub(finished) >= s.cfg.TTL {
				drop = true
			}
		}
		if drop {
			s.dropLocked(r)
			continue
		}
		keep = append(keep, r)
	}
	s.order = keep
	for len(s.order) > s.cfg.MaxRuns {
		victim := -1
		for i, r := range s.order {
			if r.Status().Terminal() {
				victim = i
				break
			}
		}
		if victim < 0 {
			break // everything live; the queue bound caps this
		}
		r := s.order[victim]
		s.dropLocked(r)
		s.order = append(s.order[:victim], s.order[victim+1:]...)
	}
}

func (s *Service) dropLocked(r *Run) {
	delete(s.runs, r.id)
	if r.key != "" && s.byKey[r.key] == r {
		delete(s.byKey, r.key)
	}
	if !r.transient {
		// Evict from disk too, or the store would resurrect the run at
		// the next boot and re-grow without bound.
		s.record(&runstore.Record{Op: runstore.OpDrop, ID: r.id})
	}
	s.evicted++
}

// removeLocked undoes newRunLocked for a rejected submission.
func (s *Service) removeLocked(r *Run) {
	delete(s.runs, r.id)
	if r.key != "" && s.byKey[r.key] == r {
		delete(s.byKey, r.key)
	}
	if n := len(s.order); n > 0 && s.order[n-1] == r {
		s.order = s.order[:n-1]
	}
}

// cancelIfSole cancels r only when no other submission shares it,
// atomically with respect to dedup joins: the join count can only grow
// through Submit's byKey lookup under s.mu, so checking the count and
// retiring the key under the same lock guarantees no submission joins
// between the check and the cancellation. Terminal runs report true
// (nothing left to cancel). Used by dcserve's DELETE handler.
func (s *Service) cancelIfSole(r *Run) bool {
	s.mu.Lock()
	if r.Status().Terminal() {
		s.mu.Unlock()
		return true
	}
	if r.joins.Load() > 0 {
		s.mu.Unlock()
		return false
	}
	if r.key != "" && s.byKey[r.key] == r {
		delete(s.byKey, r.key)
	}
	s.mu.Unlock()
	r.Cancel()
	return true
}

// retire is called by Run.finishAs to persist the terminal record,
// update terminal counters and retire non-reusable keys so the next
// identical submission executes afresh.
func (s *Service) retire(r *Run, st Status, res any, err error) {
	if !r.transient {
		rec := &runstore.Record{
			Op: runstore.OpFinish, ID: r.id,
			Status: st.String(), At: s.cfg.Now(),
		}
		if err != nil {
			rec.Error = err.Error()
		}
		if st == StatusDone && s.store.Durable() && s.cfg.EncodeResult != nil {
			if data, encErr := s.cfg.EncodeResult(r.kind, res); encErr != nil {
				s.storeErrs.Add(1)
			} else {
				rec.Result = data
			}
		}
		s.record(rec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch st {
	case StatusDone:
		s.done++
	case StatusFailed:
		s.failed++
	case StatusCanceled:
		s.canceled++
	case StatusDeadLetter:
		s.deadLetters++
	}
	if st != StatusDone && r.key != "" && s.byKey[r.key] == r {
		delete(s.byKey, r.key)
	}
}
