package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/events"
)

// Status is a run's lifecycle state.
type Status int

const (
	// StatusQueued: accepted and waiting for a worker slot.
	StatusQueued Status = iota
	// StatusRunning: executing.
	StatusRunning
	// StatusDone: finished successfully; the result is available.
	StatusDone
	// StatusFailed: finished with an error other than cancellation.
	StatusFailed
	// StatusCanceled: aborted by Cancel or service shutdown.
	StatusCanceled
)

// String returns the lowercase wire form ("queued", "running", ...).
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Terminal reports whether the run has finished (successfully or not).
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// MarshalJSON encodes the status as its wire string.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Sentinel errors of the submission path.
var (
	// ErrBusy: the queue is full; retry later (backpressure).
	ErrBusy = errors.New("service: queue full")
	// ErrShutdown: the service no longer accepts submissions.
	ErrShutdown = errors.New("service: shutting down")
	// ErrCanceled is the cancellation cause installed by Run.Cancel.
	ErrCanceled = errors.New("service: run canceled")
)

// Task is the unit of work a run executes. It must honor ctx and may
// publish progress events to sink (never nil) from any goroutine.
type Task func(ctx context.Context, sink events.Sink) (any, error)

// Request describes one submission.
type Request struct {
	// Key is the request's content hash: submissions with equal non-empty
	// keys describe identical work and deduplicate onto one run. An empty
	// key disables dedup and caching for this run.
	Key string
	// Kind classifies the run for observers ("system", "scenario",
	// "suite").
	Kind string
	// Label is a human-readable description for listings and logs.
	Label string
	// Task executes the work.
	Task Task
	// Sink, when non-nil, additionally receives the task's events
	// synchronously from the emitting goroutine (the run's own buffer
	// always records them). It must be safe for concurrent use.
	Sink events.Sink
}

// Config tunes a Service. The zero value takes the documented defaults.
type Config struct {
	// Workers bounds how many queued runs execute concurrently
	// (default: all CPUs). Inline runs execute on their caller's
	// goroutine and do not occupy a worker.
	Workers int
	// QueueDepth bounds how many submitted runs may wait for a worker;
	// a full queue rejects submissions with ErrBusy (default 256).
	QueueDepth int
	// TTL evicts finished runs from the store this long after they
	// complete (default 15 minutes; negative keeps them forever).
	TTL time.Duration
	// MaxRuns caps the store; the oldest finished runs are evicted
	// beyond it (default 2048).
	MaxRuns int
	// BaseContext is the parent of every queued run's context; its
	// cancellation aborts them all (default context.Background()).
	BaseContext context.Context //dclint:allow ctxfirst -- http.Server-style lifecycle config: the root every run context derives from
	// Now is the clock (default time.Now; tests override it to drive
	// TTL eviction deterministically).
	Now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.TTL == 0 {
		c.TTL = 15 * time.Minute
	}
	if c.MaxRuns <= 0 {
		c.MaxRuns = 2048
	}
	if c.BaseContext == nil {
		c.BaseContext = context.Background() //dclint:allow ctxfirst -- default root when the operator configures no BaseContext
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Stats is a snapshot of the service's counters. Submitted counts every
// accepted submission; Executed only the distinct tasks actually run, so
// Submitted - Executed is the work the dedup/cache layer absorbed.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Executed  int64 `json:"executed"`
	// CacheHits: submissions served by an already-finished identical run.
	CacheHits int64 `json:"cache_hits"`
	// Deduped: submissions attached to an identical in-flight run.
	Deduped int64 `json:"deduped"`
	Evicted int64 `json:"evicted"`

	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`

	// Queued/Running/Stored describe the store right now.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Stored  int `json:"stored"`

	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
}

// Service is the asynchronous run store: submissions become Runs with
// stable IDs, identical submissions share one execution, queued runs
// execute on a bounded worker pool, and finished runs age out after the
// configured TTL.
type Service struct {
	cfg        Config
	base       context.Context //dclint:allow ctxfirst -- service-lifetime root derived from Config.BaseContext at construction
	baseCancel context.CancelCauseFunc
	queue      chan *Run

	mu        sync.Mutex
	runs      map[string]*Run
	order     []*Run // insertion order, for listing and eviction
	byKey     map[string]*Run
	seq       int64
	closed    bool
	workersOn bool
	wg        sync.WaitGroup

	submitted, executed, cacheHits, deduped, evicted int64
	done, failed, canceled                           int64
}

// New builds a service. Workers start lazily on the first queued
// submission, so a service used only for inline runs owns no goroutines.
func New(cfg Config) *Service {
	cfg.applyDefaults()
	base, cancel := context.WithCancelCause(cfg.BaseContext)
	return &Service{
		cfg:        cfg,
		base:       base,
		baseCancel: cancel,
		queue:      make(chan *Run, cfg.QueueDepth),
		runs:       make(map[string]*Run),
		byKey:      make(map[string]*Run),
	}
}

// newRunLocked creates and stores a run record. Caller holds s.mu.
func (s *Service) newRunLocked(req Request, ctx context.Context, cancel context.CancelCauseFunc) *Run {
	s.seq++
	id := fmt.Sprintf("run-%06d", s.seq)
	if len(req.Key) >= 12 {
		id = fmt.Sprintf("%s-%06d", req.Key[:12], s.seq)
	}
	r := &Run{
		id:      id,
		key:     req.Key,
		kind:    req.Kind,
		label:   req.Label,
		task:    req.Task,
		sink:    req.Sink,
		svc:     s,
		created: s.cfg.Now(),
		ctx:     ctx,
		cancel:  cancel,
		status:  StatusQueued,
		wake:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	s.runs[r.id] = r
	s.order = append(s.order, r)
	if req.Key != "" {
		s.byKey[req.Key] = r
	}
	return r
}

// Submit accepts a run for asynchronous execution and returns its
// handle. reused reports that an identical run (same Key) was already
// stored — in flight (dedup) or finished (cache hit) — and is being
// returned instead of a new execution. A full queue fails with ErrBusy;
// a shut-down service with ErrShutdown.
func (s *Service) Submit(req Request) (r *Run, reused bool, err error) {
	if req.Task == nil {
		return nil, false, fmt.Errorf("service: submit %q: nil task", req.Label)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrShutdown
	}
	s.submitted++
	s.evictLocked()
	if req.Key != "" {
		if prev, ok := s.byKey[req.Key]; ok {
			// Failed and canceled runs are not reusable: the next
			// identical submission executes afresh.
			switch prev.Status() {
			case StatusDone:
				s.cacheHits++
				prev.joins.Add(1)
				s.mu.Unlock()
				return prev, true, nil
			case StatusQueued, StatusRunning:
				s.deduped++
				prev.joins.Add(1)
				s.mu.Unlock()
				return prev, true, nil
			}
		}
	}
	ctx, cancel := context.WithCancelCause(s.base)
	r = s.newRunLocked(req, ctx, cancel)
	// Record RunQueued before the run becomes reachable by any worker:
	// the stream invariant is "run_queued first, run_finished last", and
	// appending after the enqueue would race a fast task's RunStarted
	// (or be dropped entirely by the terminal guard).
	r.appendEvent(events.RunQueued{ID: r.id, Label: r.label})
	select {
	case s.queue <- r:
	default:
		s.removeLocked(r)
		s.submitted-- // rejected, not accepted
		s.mu.Unlock()
		cancel(ErrBusy)
		return nil, false, ErrBusy
	}
	s.startWorkersLocked()
	s.mu.Unlock()
	return r, false, nil
}

// RunInline executes req synchronously on the calling goroutine under
// the caller's own context, recording the run in the store like any
// other submission. Inline runs never deduplicate and are never served
// from cache: they exist so blocking callers (Engine.Run and friends)
// keep their exact pre-handle semantics — same goroutine, same context,
// events delivered synchronously — while still flowing through the run
// lifecycle. The returned run is terminal.
func (s *Service) RunInline(ctx context.Context, req Request) (*Run, error) {
	if req.Task == nil {
		return nil, fmt.Errorf("service: run %q: nil task", req.Label)
	}
	runCtx, cancel := context.WithCancelCause(ctx)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel(ErrShutdown)
		return nil, ErrShutdown
	}
	s.evictLocked()
	req.Key = "" // inline runs are not shared
	r := s.newRunLocked(req, runCtx, cancel)
	s.mu.Unlock()
	r.appendEvent(events.RunQueued{ID: r.id, Label: r.label})
	s.execute(r)
	return r, nil
}

// startWorkersLocked launches the worker pool once. Caller holds s.mu.
func (s *Service) startWorkersLocked() {
	if s.workersOn {
		return
	}
	s.workersOn = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case r := <-s.queue:
			s.execute(r)
		case <-s.base.Done():
			// Drain: finalize whatever is still queued so waiters are
			// released, then exit.
			for {
				select {
				case r := <-s.queue:
					r.finish(nil, fmt.Errorf("service: run %s aborted by shutdown: %w", r.id, context.Cause(s.base)))
				default:
					return
				}
			}
		}
	}
}

// execute moves a run through Running to a terminal status.
func (s *Service) execute(r *Run) {
	if !r.begin() {
		return // canceled while queued
	}
	s.mu.Lock()
	s.executed++
	s.mu.Unlock()
	res, err := r.runTask()
	r.finish(res, err)
}

// Get returns the stored run with the given ID.
func (s *Service) Get(id string) (*Run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
	r, ok := s.runs[id]
	return r, ok
}

// Runs lists the stored runs, newest first.
func (s *Service) Runs() []*Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.evictLocked()
	out := make([]*Run, len(s.order))
	for i, r := range s.order {
		out[len(out)-1-i] = r
	}
	return out
}

// Stats snapshots the counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Submitted: s.submitted, Executed: s.executed,
		CacheHits: s.cacheHits, Deduped: s.deduped, Evicted: s.evicted,
		Done: s.done, Failed: s.failed, Canceled: s.canceled,
		Stored:  len(s.runs),
		Workers: s.cfg.Workers, QueueDepth: s.cfg.QueueDepth,
	}
	for _, r := range s.order {
		switch r.Status() {
		case StatusQueued:
			st.Queued++
		case StatusRunning:
			st.Running++
		}
	}
	return st
}

// Shutdown stops intake, cancels every queued and running run, and waits
// (bounded by ctx) for the workers to exit. Inline runs execute under
// their caller's context and are unaffected. Shutdown is idempotent.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	started := s.workersOn
	pending := make([]*Run, 0, len(s.order))
	for _, r := range s.order {
		if !r.Status().Terminal() {
			pending = append(pending, r)
		}
	}
	s.mu.Unlock()

	s.baseCancel(ErrShutdown)
	for _, r := range pending {
		// Queued runs may sit in the channel with no worker ever
		// started; release their waiters directly. finishIfQueued is
		// atomic with begin, so a worker that already started the task
		// wins and the task finishes itself by observing the canceled
		// base context.
		r.finishIfQueued(fmt.Errorf("service: run %s aborted by shutdown: %w", r.id, ErrShutdown))
	}
	if !started {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: shutdown: %w", ctx.Err())
	}
}

// evictLocked drops finished runs past their TTL and, beyond MaxRuns,
// the oldest finished runs. Caller holds s.mu.
func (s *Service) evictLocked() {
	now := s.cfg.Now()
	keep := s.order[:0]
	for _, r := range s.order {
		drop := false
		if st, finished := r.terminalSince(); st.Terminal() {
			if s.cfg.TTL >= 0 && now.Sub(finished) >= s.cfg.TTL {
				drop = true
			}
		}
		if drop {
			s.dropLocked(r)
			continue
		}
		keep = append(keep, r)
	}
	s.order = keep
	for len(s.order) > s.cfg.MaxRuns {
		victim := -1
		for i, r := range s.order {
			if r.Status().Terminal() {
				victim = i
				break
			}
		}
		if victim < 0 {
			break // everything live; the queue bound caps this
		}
		r := s.order[victim]
		s.dropLocked(r)
		s.order = append(s.order[:victim], s.order[victim+1:]...)
	}
}

func (s *Service) dropLocked(r *Run) {
	delete(s.runs, r.id)
	if r.key != "" && s.byKey[r.key] == r {
		delete(s.byKey, r.key)
	}
	s.evicted++
}

// removeLocked undoes newRunLocked for a rejected submission.
func (s *Service) removeLocked(r *Run) {
	delete(s.runs, r.id)
	if r.key != "" && s.byKey[r.key] == r {
		delete(s.byKey, r.key)
	}
	if n := len(s.order); n > 0 && s.order[n-1] == r {
		s.order = s.order[:n-1]
	}
}

// cancelIfSole cancels r only when no other submission shares it,
// atomically with respect to dedup joins: the join count can only grow
// through Submit's byKey lookup under s.mu, so checking the count and
// retiring the key under the same lock guarantees no submission joins
// between the check and the cancellation. Terminal runs report true
// (nothing left to cancel). Used by dcserve's DELETE handler.
func (s *Service) cancelIfSole(r *Run) bool {
	s.mu.Lock()
	if r.Status().Terminal() {
		s.mu.Unlock()
		return true
	}
	if r.joins.Load() > 0 {
		s.mu.Unlock()
		return false
	}
	if r.key != "" && s.byKey[r.key] == r {
		delete(s.byKey, r.key)
	}
	s.mu.Unlock()
	r.Cancel()
	return true
}

// retire is called by Run.finish to update terminal counters and retire
// non-reusable keys so the next identical submission executes afresh.
func (s *Service) retire(r *Run, st Status) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch st {
	case StatusDone:
		s.done++
	case StatusFailed:
		s.failed++
	case StatusCanceled:
		s.canceled++
	}
	if st != StatusDone && r.key != "" && s.byKey[r.key] == r {
		delete(s.byKey, r.key)
	}
}
