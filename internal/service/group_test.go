package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupCachesAndDedups(t *testing.T) {
	var g Group
	var calls atomic.Int64
	release := make(chan struct{})
	fn := func() (any, error) {
		calls.Add(1)
		<-release
		return "value", nil
	}
	const n = 8
	results := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := g.Do(context.Background(), "k", fn)
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Let the goroutines pile up behind one in-flight call, then release.
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (singleflight)", calls.Load())
	}
	for i, v := range results {
		if v != "value" {
			t.Errorf("results[%d] = %v", i, v)
		}
	}
	// Cached now: no new execution.
	if v, err := g.Do(context.Background(), "k", fn); err != nil || v != "value" {
		t.Errorf("cached Do = %v, %v", v, err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls after cache hit = %d", calls.Load())
	}
	if !g.Cached("k") || g.Cached("other") {
		t.Error("Cached misreports")
	}
}

func TestGroupErrorNotCached(t *testing.T) {
	var g Group
	var calls atomic.Int64
	_, err := g.Do(context.Background(), "e", func() (any, error) {
		calls.Add(1)
		return nil, errors.New("boom")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	v, err := g.Do(context.Background(), "e", func() (any, error) {
		calls.Add(1)
		return "fine", nil
	})
	if err != nil || v != "fine" {
		t.Fatalf("retry = %v, %v", v, err)
	}
	if calls.Load() != 2 {
		t.Errorf("calls = %d, want 2 (errors are not cached)", calls.Load())
	}
}

// TestGroupWaiterHonorsOwnContext: a waiter behind a slow execution
// stops waiting when its own context expires.
func TestGroupWaiterHonorsOwnContext(t *testing.T) {
	var g Group
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go g.Do(context.Background(), "slow", func() (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := g.Do(ctx, "slow", func() (any, error) { return nil, nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestGroupRetryOnForeignCancel: when the executing caller abandons the
// work to its own cancellation, a waiter with a live context retries and
// runs the work itself instead of inheriting the foreign cancellation.
func TestGroupRetryOnForeignCancel(t *testing.T) {
	var g Group
	execCtx, cancelExec := context.WithCancel(context.Background())
	started := make(chan struct{})
	executorDone := make(chan struct{})
	go func() {
		defer close(executorDone)
		g.Do(execCtx, "shared", func() (any, error) {
			close(started)
			<-execCtx.Done()
			return nil, execCtx.Err() // abandoned to cancellation
		})
	}()
	<-started

	waiterResult := make(chan any, 1)
	go func() {
		v, err := g.Do(context.Background(), "shared", func() (any, error) {
			return "retried", nil
		})
		if err != nil {
			t.Errorf("waiter err: %v", err)
		}
		waiterResult <- v
	}()
	time.Sleep(5 * time.Millisecond) // waiter parks behind the in-flight call
	cancelExec()
	<-executorDone
	select {
	case v := <-waiterResult:
		if v != "retried" {
			t.Errorf("waiter got %v, want its own retry", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never retried after foreign cancellation")
	}
}
