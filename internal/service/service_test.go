package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/events"
)

// blockingTask returns a task that signals started, then blocks until
// released or its context is canceled.
func blockingTask(started chan<- struct{}, release <-chan struct{}) Task {
	return func(ctx context.Context, sink events.Sink) (any, error) {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-release:
			return "ok", nil
		case <-ctx.Done():
			return nil, fmt.Errorf("task aborted: %w", ctx.Err())
		}
	}
}

func constTask(v any) Task {
	return func(ctx context.Context, sink events.Sink) (any, error) { return v, nil }
}

func TestSubmitRunsToCompletion(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	r, reused, err := s.Submit(Request{Key: "k1", Kind: "test", Label: "one", Task: constTask(42)})
	if err != nil || reused {
		t.Fatalf("Submit = reused %v, err %v", reused, err)
	}
	v, err := r.Result(context.Background())
	if err != nil || v != 42 {
		t.Fatalf("Result = %v, %v", v, err)
	}
	if st := r.Status(); st != StatusDone {
		t.Errorf("status = %v, want done", st)
	}
	info := r.Snapshot()
	if info.Status != StatusDone || info.Started == nil || info.Finished == nil {
		t.Errorf("snapshot incomplete: %+v", info)
	}
}

// TestConcurrentSubmitIdenticalKeyDedups: N concurrent submissions of
// the same key share one run — one execution, equal IDs, N-1 reuses.
func TestConcurrentSubmitIdenticalKeyDedups(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Shutdown(context.Background())
	var executions atomic.Int64
	release := make(chan struct{})
	task := func(ctx context.Context, sink events.Sink) (any, error) {
		executions.Add(1)
		<-release
		return "shared", nil
	}

	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, _, err := s.Submit(Request{Key: "same-key", Task: task})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = r.ID()
		}(i)
	}
	wg.Wait()
	close(release)
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("run IDs diverge: %v", ids)
		}
	}
	r, _ := s.Get(ids[0])
	if _, err := r.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	st := s.Stats()
	if st.Submitted != n || st.Executed != 1 || st.Deduped+st.CacheHits != n-1 {
		t.Errorf("stats = %+v, want %d submitted, 1 executed, %d reused", st, n, n-1)
	}
}

// TestRunsBeforePagination pins the cursor index against the full
// listing: for every stored run, RunsBefore(id) must equal the suffix
// of Runs() that follows it — same runs, same newest-first order — and
// an unknown cursor must report ok=false rather than restarting the
// page walk silently.
func TestRunsBeforePagination(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	const n = 7
	for i := 0; i < n; i++ {
		r, _, err := s.Submit(Request{Key: fmt.Sprintf("k%d", i), Task: constTask(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Result(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	all := s.Runs()
	if len(all) != n {
		t.Fatalf("stored runs = %d, want %d", len(all), n)
	}
	for i, r := range all {
		got, ok := s.RunsBefore(r.ID())
		if !ok {
			t.Fatalf("RunsBefore(%q) reported unknown for a stored run", r.ID())
		}
		want := all[i+1:]
		if len(got) != len(want) {
			t.Fatalf("RunsBefore(run %d) = %d runs, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j].ID() != want[j].ID() {
				t.Errorf("RunsBefore(run %d)[%d] = %s, want %s", i, j, got[j].ID(), want[j].ID())
			}
		}
	}
	if _, ok := s.RunsBefore("no-such-run"); ok {
		t.Error("RunsBefore accepted an unknown cursor")
	}
}

// TestCacheHitAfterCompletion: an identical submission after the run
// finished is served from cache without executing.
func TestCacheHitAfterCompletion(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	var executions atomic.Int64
	task := func(ctx context.Context, sink events.Sink) (any, error) {
		executions.Add(1)
		return "v", nil
	}
	r1, _, err := s.Submit(Request{Key: "cached", Task: task})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	r2, reused, err := s.Submit(Request{Key: "cached", Task: task})
	if err != nil {
		t.Fatal(err)
	}
	if !reused || r2.ID() != r1.ID() {
		t.Errorf("reused = %v, id %s vs %s", reused, r2.ID(), r1.ID())
	}
	if executions.Load() != 1 {
		t.Errorf("executions = %d", executions.Load())
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", st.CacheHits)
	}
}

// TestFailedRunNotCached: a failed run's key is retired, so the next
// identical submission executes afresh.
func TestFailedRunNotCached(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	var calls atomic.Int64
	task := func(ctx context.Context, sink events.Sink) (any, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("boom")
		}
		return "recovered", nil
	}
	r1, _, _ := s.Submit(Request{Key: "flaky", Task: task})
	if _, err := r1.Result(context.Background()); err == nil {
		t.Fatal("first run should fail")
	}
	if st := r1.Status(); st != StatusFailed {
		t.Fatalf("status = %v, want failed", st)
	}
	r2, reused, _ := s.Submit(Request{Key: "flaky", Task: task})
	if reused {
		t.Fatal("failed run was reused")
	}
	v, err := r2.Result(context.Background())
	if err != nil || v != "recovered" {
		t.Fatalf("second run = %v, %v", v, err)
	}
}

// TestCancelMidRunReturnsCtxWrappingError is the handle-lifecycle
// contract at the service layer: Cancel aborts a running task through
// its context and the error wraps context.Canceled.
func TestCancelMidRunReturnsCtxWrappingError(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	started := make(chan struct{}, 1)
	r, _, err := s.Submit(Request{Key: "victim", Task: blockingTask(started, nil)})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	r.Cancel()
	_, err = r.Result(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	if st := r.Status(); st != StatusCanceled {
		t.Errorf("status = %v, want canceled", st)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Errorf("stats.Canceled = %d", st.Canceled)
	}
}

// TestCancelQueuedRunReleasesImmediately: a run canceled before any
// worker picks it up finishes canceled without executing.
func TestCancelQueuedRunReleasesImmediately(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Shutdown(context.Background())
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	blocker, _, err := s.Submit(Request{Key: "blocker", Task: blockingTask(started, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now occupied
	var executed atomic.Bool
	queued, _, err := s.Submit(Request{Key: "queued", Task: func(ctx context.Context, sink events.Sink) (any, error) {
		executed.Store(true)
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	if _, err := queued.Result(context.Background()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapping context.Canceled", err)
	}
	close(release)
	if _, err := blocker.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Give the worker a chance to pop the canceled run; it must skip it.
	time.Sleep(10 * time.Millisecond)
	if executed.Load() {
		t.Error("canceled queued run executed anyway")
	}
}

// TestBackpressure: a full queue rejects submissions with ErrBusy
// instead of blocking or growing without bound.
func TestBackpressure(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Shutdown(context.Background())
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	if _, _, err := s.Submit(Request{Key: "a", Task: blockingTask(started, release)}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, _, err := s.Submit(Request{Key: "b", Task: blockingTask(nil, release)}); err != nil {
		t.Fatal(err) // fills the queue
	}
	_, _, err := s.Submit(Request{Key: "c", Task: blockingTask(nil, release)})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	// The rejected run must not be stored.
	if st := s.Stats(); st.Stored != 2 {
		t.Errorf("stored = %d, want 2", st.Stored)
	}
}

// TestTTLEviction: finished runs age out of the store after the TTL;
// live runs never do.
func TestTTLEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	s := New(Config{Workers: 1, TTL: time.Minute, Now: clock})
	defer s.Shutdown(context.Background())
	r, _, err := s.Submit(Request{Key: "ttl", Task: constTask("x")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(r.ID()); !ok {
		t.Fatal("run missing before TTL")
	}
	advance(2 * time.Minute)
	if _, ok := s.Get(r.ID()); ok {
		t.Error("run survived past its TTL")
	}
	if st := s.Stats(); st.Evicted != 1 {
		t.Errorf("evicted = %d, want 1", st.Evicted)
	}
	// An identical submission after eviction re-executes (no stale cache).
	r2, reused, err := s.Submit(Request{Key: "ttl", Task: constTask("y")})
	if err != nil || reused {
		t.Fatalf("post-eviction submit reused=%v err=%v", reused, err)
	}
	if v, _ := r2.Result(context.Background()); v != "y" {
		t.Errorf("post-eviction result = %v", v)
	}
}

// TestEventsReplayThenLive: a subscriber joining mid-run replays the
// buffered prefix and then follows live events; the stream closes with
// RunFinished as its last element.
func TestEventsReplayThenLive(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	emitted := make(chan struct{})
	release := make(chan struct{})
	task := func(ctx context.Context, sink events.Sink) (any, error) {
		sink.Emit(events.RunStarted{System: "X", Providers: 1})
		close(emitted)
		<-release
		sink.Emit(events.RunCompleted{System: "X", TotalNodeHours: 7})
		return nil, nil
	}
	r, _, err := s.Submit(Request{Key: "stream", Label: "streaming run", Task: task})
	if err != nil {
		t.Fatal(err)
	}
	<-emitted // RunQueued + RunStarted are buffered now
	ch := r.Events(context.Background())
	got := make(chan []events.Event, 1)
	go func() {
		var all []events.Event
		for ev := range ch {
			all = append(all, ev)
		}
		got <- all
	}()
	close(release)
	all := <-got
	types := make([]string, len(all))
	for i, ev := range all {
		types[i] = fmt.Sprintf("%T", ev)
	}
	want := []string{"events.RunQueued", "events.RunStarted", "events.RunCompleted", "events.RunFinished"}
	if len(all) != len(want) {
		t.Fatalf("events = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("events[%d] = %s, want %s (all: %v)", i, types[i], want[i], types)
		}
	}
	// A late subscriber to the finished run replays the full history.
	var replay []events.Event
	for ev := range r.Events(context.Background()) {
		replay = append(replay, ev)
	}
	if len(replay) != len(want) {
		t.Errorf("late replay has %d events, want %d", len(replay), len(want))
	}
}

// TestRunInlineExecutesSynchronously: inline runs complete before
// RunInline returns, deliver events synchronously to the request sink,
// and honor the caller's context.
func TestRunInlineExecutesSynchronously(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	var order []string
	sink := events.Sink(func(ev events.Event) {
		order = append(order, fmt.Sprintf("%T", ev)) // same goroutine: no lock needed
	})
	r, err := s.RunInline(context.Background(), Request{
		Label: "inline",
		Sink:  sink,
		Task: func(ctx context.Context, s events.Sink) (any, error) {
			s.Emit(events.RunStarted{System: "Y"})
			return "inline-done", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Status(); st != StatusDone {
		t.Fatalf("status = %v, want done immediately", st)
	}
	if len(order) != 1 || order[0] != "events.RunStarted" {
		t.Errorf("sync sink saw %v", order)
	}
	if v, _ := r.Result(context.Background()); v != "inline-done" {
		t.Errorf("result = %v", v)
	}

	// Caller's context cancels the inline run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r2, err := s.RunInline(ctx, Request{Task: blockingTask(nil, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if st := r2.Status(); st != StatusCanceled {
		t.Errorf("status = %v, want canceled", st)
	}
}

// TestTaskPanicFailsRun: a panicking task marks the run failed instead
// of killing the worker.
func TestTaskPanicFailsRun(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	r, _, err := s.Submit(Request{Key: "panic", Task: func(ctx context.Context, sink events.Sink) (any, error) {
		panic("kaboom")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Result(context.Background()); err == nil {
		t.Fatal("panicking run reported success")
	}
	if st := r.Status(); st != StatusFailed {
		t.Errorf("status = %v, want failed", st)
	}
	// The worker survived: the next run executes.
	r2, _, _ := s.Submit(Request{Key: "after-panic", Task: constTask("alive")})
	if v, err := r2.Result(context.Background()); err != nil || v != "alive" {
		t.Fatalf("post-panic run = %v, %v", v, err)
	}
}

// TestShutdownCancelsEverything: Shutdown rejects new submissions,
// cancels queued and running runs, and leaves no worker goroutines.
func TestShutdownCancelsEverything(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Workers: 2, QueueDepth: 8})
	started := make(chan struct{}, 2)
	var runs []*Run
	for i := 0; i < 4; i++ {
		r, _, err := s.Submit(Request{Key: fmt.Sprintf("sd-%d", i), Task: blockingTask(started, nil)})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	<-started
	<-started // both workers occupied; two runs queued
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i, r := range runs {
		select {
		case <-r.Done():
		default:
			t.Fatalf("run %d not terminal after shutdown", i)
		}
		if st := r.Status(); st != StatusCanceled {
			t.Errorf("run %d status = %v, want canceled", i, st)
		}
	}
	if _, _, err := s.Submit(Request{Key: "late", Task: constTask(nil)}); !errors.Is(err, ErrShutdown) {
		t.Errorf("post-shutdown submit err = %v, want ErrShutdown", err)
	}
	// Workers must exit; allow the scheduler a grace period.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after shutdown", before, runtime.NumGoroutine())
}

// TestSubmitCancelCyclesLeakNoGoroutines runs many submit/cancel cycles
// with subscribers attached and requires the goroutine count to return
// to (near) its baseline: the run store must not leak subscriber or
// worker goroutines. Run under -race in CI.
func TestSubmitCancelCyclesLeakNoGoroutines(t *testing.T) {
	s := New(Config{Workers: 2, QueueDepth: 4, MaxRuns: 16})
	defer s.Shutdown(context.Background())
	// Prime the worker pool so the baseline includes it.
	r0, _, err := s.Submit(Request{Key: "prime", Task: constTask(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r0.Result(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	for i := 0; i < 100; i++ {
		started := make(chan struct{}, 1)
		r, _, err := s.Submit(Request{Key: fmt.Sprintf("cycle-%d", i), Task: blockingTask(started, nil)})
		if err != nil {
			t.Fatal(err)
		}
		ch := r.Events(context.Background())
		<-started
		r.Cancel()
		if _, err := r.Result(context.Background()); !errors.Is(err, context.Canceled) {
			t.Fatalf("cycle %d: err = %v", i, err)
		}
		for range ch {
			// Drain to stream end; the subscriber goroutine exits when
			// the channel closes at the terminal status.
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d baseline, %d after 100 submit/cancel cycles",
		before, runtime.NumGoroutine())
}

// TestMaxRunsEvictsOldestFinished: the store cap drops the oldest
// finished runs first and never a live one.
func TestMaxRunsEvictsOldestFinished(t *testing.T) {
	s := New(Config{Workers: 1, MaxRuns: 2, TTL: -1})
	defer s.Shutdown(context.Background())
	var first *Run
	for i := 0; i < 4; i++ {
		r, _, err := s.Submit(Request{Key: fmt.Sprintf("m-%d", i), Task: constTask(i)})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = r
		}
		if _, err := r.Result(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Stored > 3 {
		t.Errorf("stored = %d, want <= 3 (cap 2 applied at next submit)", st.Stored)
	}
	if _, ok := s.Get(first.ID()); ok {
		t.Error("oldest finished run survived the cap")
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		StatusQueued: "queued", StatusRunning: "running",
		StatusDone: "done", StatusFailed: "failed", StatusCanceled: "canceled",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), s)
		}
		b, err := st.MarshalJSON()
		if err != nil || string(b) != `"`+s+`"` {
			t.Errorf("%v.MarshalJSON() = %s, %v", st, b, err)
		}
	}
	if StatusQueued.Terminal() || StatusRunning.Terminal() || !StatusDone.Terminal() ||
		!StatusFailed.Terminal() || !StatusCanceled.Terminal() {
		t.Error("Terminal() misclassifies a status")
	}
}

func TestHasherFraming(t *testing.T) {
	a := NewHasher("kind").Str("ab").Str("c").Sum()
	b := NewHasher("kind").Str("a").Str("bc").Sum()
	if a == b {
		t.Error("length framing failed: ab|c == a|bc")
	}
	if NewHasher("x").Int(1).Float(2.5).Sum() != NewHasher("x").Int(1).Float(2.5).Sum() {
		t.Error("hash not deterministic")
	}
	if NewHasher("x").Sum() == NewHasher("y").Sum() {
		t.Error("domain separation failed")
	}
}
