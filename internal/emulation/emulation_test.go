package emulation

import (
	"math"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/policy"
)

// tinyTrace builds a deterministic workload spanning two virtual hours.
func tinyTrace() []job.Job {
	var jobs []job.Job
	for i := 0; i < 20; i++ {
		jobs = append(jobs, job.Job{
			ID:      i + 1,
			Submit:  int64(i * 300),
			Runtime: 600,
			Nodes:   (i % 4) + 1,
		})
	}
	return jobs
}

func TestClockValidation(t *testing.T) {
	if _, err := NewClock(0); err == nil {
		t.Error("zero speedup accepted")
	}
	if _, err := NewClock(-5); err == nil {
		t.Error("negative speedup accepted")
	}
}

func TestClockAdvances(t *testing.T) {
	c, err := NewClock(100000)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if got := c.Now(); got < 500 {
		t.Errorf("clock advanced only %d virtual seconds", got)
	}
}

func TestConfigValidation(t *testing.T) {
	good := Config{Speedup: 1000, Jobs: tinyTrace(), Params: policy.HTCDefaults(4, 1.5)}
	bad := good
	bad.Jobs = nil
	if _, err := Run(bad); err == nil {
		t.Error("empty workload accepted")
	}
	bad = good
	bad.Params.InitialNodes = 0
	if _, err := Run(bad); err == nil {
		t.Error("invalid params accepted")
	}
	bad = good
	bad.Speedup = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero speedup accepted")
	}
	bad = good
	bad.Jobs = []job.Job{{ID: 1, Nodes: 0}}
	if _, err := Run(bad); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestEmulationCompletesWorkload(t *testing.T) {
	rep, err := Run(Config{
		Speedup: 30000, // two virtual hours in ~0.3 wall seconds
		Jobs:    tinyTrace(),
		Params:  policy.HTCDefaults(4, 1.5),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Completed != 20 || rep.Submitted != 20 {
		t.Errorf("completed %d/%d, want 20/20", rep.Completed, rep.Submitted)
	}
	if rep.NodeHours <= 0 {
		t.Error("no consumption recorded")
	}
	if rep.PeakNodes < 4 {
		t.Errorf("peak = %d, want >= initial 4", rep.PeakNodes)
	}
	if rep.WallTime <= 0 {
		t.Error("wall time missing")
	}
}

func TestEmulationHorizonCutsRun(t *testing.T) {
	rep, err := Run(Config{
		Speedup: 30000,
		Jobs:    tinyTrace(),
		Params:  policy.HTCDefaults(4, 1.5),
		Horizon: 600, // only the first couple of jobs can finish
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Completed >= 20 {
		t.Errorf("completed %d, want < 20 under a 600 s horizon", rep.Completed)
	}
}

// TestEmulationAgainstGroundTruth bounds the emulator's accounting by the
// workload's raw demand. (The emulator-vs-simulator cross-validation lives
// in internal/core, which may import this package without a cycle.)
func TestEmulationAgainstGroundTruth(t *testing.T) {
	jobs := tinyTrace()
	params := policy.HTCDefaults(4, 1.5)

	rep, err := Run(Config{Speedup: 30000, Jobs: jobs, Params: params, Horizon: 4 * 3600})
	if err != nil {
		t.Fatalf("emulation: %v", err)
	}
	if rep.Completed != len(jobs) {
		t.Fatalf("emulation completed %d, want %d", rep.Completed, len(jobs))
	}
	// The trace needs 20 jobs x 600 s x mean 2.5 nodes = 30000
	// node-seconds raw; with B=4 held for the window plus hourly rounding
	// the billed figure must land in [0.9x raw, 4x raw].
	raw := float64(job.TotalNodeSeconds(jobs)) / 3600
	if rep.NodeHours < raw*0.9 || rep.NodeHours > raw*4 {
		t.Errorf("billed %.1f node-hours outside [%.1f, %.1f]", rep.NodeHours, raw*0.9, raw*4)
	}
	if math.Abs(float64(rep.PeakNodes)) > 40 {
		t.Errorf("peak %d implausible for this trace", rep.PeakNodes)
	}
}
