// Package emulation reproduces the paper's evaluation *methodology*: an
// emulated system whose management components run for real, against a wall
// clock sped up by a constant factor (the paper uses 100x to compress
// two-week traces).
//
// Unlike internal/sim — which replays the same decision logic on a virtual
// clock for deterministic experiments — this emulator runs the job emitter,
// the HTC server loop and the completion timers as concurrent goroutines
// communicating over channels, with the resource provision service backed
// by the same cluster pool and accountant used everywhere else. A
// cross-validation test checks that both engines agree on the outcome of
// identical workloads, which is the evidence that the fast simulator stands
// in faithfully for the paper's emulation experiments.
package emulation

import (
	"fmt"
	"time"

	"repro/internal/nodepool"
	"repro/internal/csf"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sched"
)

// Clock maps wall time onto accelerated virtual seconds.
type Clock struct {
	start   time.Time
	speedup float64
}

// NewClock starts a clock running speedup virtual seconds per wall second.
func NewClock(speedup float64) (*Clock, error) {
	if speedup <= 0 {
		return nil, fmt.Errorf("emulation: speedup %g must be positive", speedup)
	}
	return &Clock{start: time.Now(), speedup: speedup}, nil
}

// Now reports elapsed virtual seconds.
func (c *Clock) Now() int64 {
	return int64(time.Since(c.start).Seconds() * c.speedup)
}

// wall converts a virtual duration to a wall duration.
func (c *Clock) wall(virtual int64) time.Duration {
	return time.Duration(float64(virtual) / c.speedup * float64(time.Second))
}

// Config describes one emulated HTC runtime environment run.
type Config struct {
	// Speedup is the time compression factor (the paper uses 100).
	Speedup float64
	// Jobs is the HTC workload, in any order.
	Jobs []job.Job
	// Params is the DSP resource-management policy.
	Params policy.Params
	// PoolCapacity sizes the cloud; zero means jobs' worst case x 4.
	PoolCapacity int
	// Horizon is the virtual accounting window; zero runs until the
	// workload drains.
	Horizon int64
}

// Report is the emulated run's outcome, mirroring the simulator's metrics.
type Report struct {
	Submitted     int
	Completed     int
	NodeHours     float64
	PeakNodes     int
	NodesAdjusted int
	WallTime      time.Duration
}

// Run executes the emulation: a job-emulator goroutine submits the trace on
// the accelerated clock, the server goroutine scans/dispatches/negotiates,
// and per-job timers deliver completions.
func Run(cfg Config) (Report, error) {
	if err := cfg.Params.Validate(); err != nil {
		return Report{}, err
	}
	if len(cfg.Jobs) == 0 {
		return Report{}, fmt.Errorf("emulation: no jobs")
	}
	if err := job.ValidateAll(cfg.Jobs); err != nil {
		return Report{}, err
	}
	clock, err := NewClock(cfg.Speedup)
	if err != nil {
		return Report{}, err
	}
	capacity := cfg.PoolCapacity
	if capacity == 0 {
		capacity = 4 * (job.MaxNodes(cfg.Jobs) + cfg.Params.InitialNodes)
	}
	pool, err := nodepool.NewPool(capacity)
	if err != nil {
		return Report{}, err
	}
	acct := metrics.NewAccountant(clock.Now)
	prov := csf.NewProvisionService(pool, acct, policy.GrantOrReject, csf.DefaultNodeSetupSeconds)

	jobs := make([]job.Job, len(cfg.Jobs))
	copy(jobs, cfg.Jobs)
	job.SortBySubmit(jobs)
	start := jobs[0].Submit

	const owner = "emulated-htc"
	if err := prov.RequestInitial(owner, cfg.Params.InitialNodes); err != nil {
		return Report{}, err
	}

	arrivals := make(chan *job.Job)
	completions := make(chan *job.Job)
	// Job emulator: replay the trace on the accelerated clock.
	go func() {
		for i := range jobs {
			j := &jobs[i]
			if wait := clock.wall(j.Submit-start) - time.Since(clock.start); wait > 0 {
				time.Sleep(wait)
			}
			arrivals <- j
		}
		close(arrivals)
	}()

	scanTicker := time.NewTicker(clock.wall(cfg.Params.ScanInterval))
	defer scanTicker.Stop()
	idleTicker := time.NewTicker(clock.wall(cfg.Params.IdleCheckInterval))
	defer idleTicker.Stop()
	var deadline <-chan time.Time
	if cfg.Horizon > 0 {
		deadline = time.After(clock.wall(cfg.Horizon))
	}

	// Server state, touched only by the server loop below.
	var queue job.Queue
	owned := cfg.Params.InitialNodes
	busy := 0
	completed := 0
	submitted := 0
	peak := 0
	var grants []int // outstanding dynamic block sizes
	scheduler := sched.FirstFit{}

	dispatch := func() {
		free := owned - busy
		if free <= 0 || queue.Len() == 0 {
			return
		}
		snapshot := queue.Snapshot()
		picked := scheduler.Select(nil, snapshot, free)
		queue.RemoveAll(picked)
		for _, idx := range picked {
			j := snapshot[idx]
			busy += j.Nodes
			time.AfterFunc(clock.wall(j.Runtime), func() { completions <- j })
		}
		if owned > peak {
			peak = owned
		}
	}
	scan := func() {
		dispatch()
		state := policy.QueueState{
			AccumulatedDemand: queue.AccumulatedDemand(),
			LargestDemand:     queue.LargestDemand(),
			OwnedNodes:        owned,
		}
		kind, size := policy.Decide(state, cfg.Params)
		if kind == policy.NoRequest {
			return
		}
		if granted := prov.RequestDynamic(owner, size); granted > 0 {
			owned += granted
			grants = append(grants, granted)
			dispatch()
		}
	}
	releaseIdle := func() error {
		idle := owned - busy
		kept := grants[:0]
		for _, g := range grants {
			if policy.ReleaseDecision(idle, g) {
				if err := prov.Release(owner, g); err != nil {
					return err
				}
				owned -= g
				idle -= g
				continue
			}
			kept = append(kept, g)
		}
		grants = kept
		return nil
	}

	arrivalsOpen := true
	for {
		if !arrivalsOpen && completed == submitted {
			break
		}
		select {
		case j, ok := <-arrivals:
			if !ok {
				arrivalsOpen = false
				arrivals = nil
				continue
			}
			submitted++
			queue.Push(j)
			dispatch()
		case j := <-completions:
			busy -= j.Nodes
			completed++
			dispatch()
		case <-scanTicker.C:
			scan()
		case <-idleTicker.C:
			if err := releaseIdle(); err != nil {
				return Report{}, err
			}
		case <-deadline:
			goto done
		}
	}
done:
	// The TRE outlives its drained queue: leases (the initial block in
	// particular) bill through the accounting window, matching the
	// simulator's horizon semantics.
	end := clock.Now()
	if cfg.Horizon > 0 && end < cfg.Horizon {
		end = cfg.Horizon
	}
	acct.CloseAll(end, true)
	return Report{
		Submitted:     submitted,
		Completed:     completed,
		NodeHours:     acct.BilledNodeHours(owner),
		PeakNodes:     peak,
		NodesAdjusted: acct.NodesAdjusted(owner),
		WallTime:      time.Since(clock.start),
	}, nil
}
