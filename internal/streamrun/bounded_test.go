package streamrun

import (
	"context"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/stream"
	"repro/internal/systems"
)

// boundedCount is the task volume of the bounded-memory stress run.
const boundedCount = 1_000_000

// boundedGen returns the O(1) generator source for the stress run; two
// calls yield byte-identical streams, which is what lets the streamed
// and materialized runs below share a reference result.
func boundedGen() *stream.Gen {
	return stream.NewGen(stream.GenConfig{
		Seed:             42,
		Count:            boundedCount,
		MeanInterarrival: 1,
		MaxRuntime:       10,
		MaxNodes:         4,
	})
}

// TestMillionTaskBoundedMemory is the package's capstone guarantee: a
// one-million-task streamed run holds O(records per stride + lookahead)
// records resident — thousands, not the million a materialized slice
// pins — while producing the identical result at comparable wall time.
func TestMillionTaskBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1e6-task run; skipped in -short mode")
	}
	// Last submit ≈ count × mean interarrival (1s); slack covers the
	// interarrival jitter plus the longest runtimes draining.
	const horizon = 2_200_000
	wl := systems.Workload{
		Name: "org", Class: job.HTC, FixedNodes: 64,
		Params: policy.HTCDefaults(16, 1.5),
	}
	opts := systems.Options{Horizon: horizon, Seed: 7}

	// Materialized baseline: drain the generator into a slice up front
	// and run the blocking path.
	jobs := make([]job.Job, 0, boundedCount)
	src := boundedGen()
	for {
		j, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if last := jobs[len(jobs)-1].Submit; last >= horizon {
		t.Fatalf("last submit %d is past the horizon %d; identity needs drained-within-horizon", last, horizon)
	}
	wlMat := wl
	wlMat.Jobs = jobs
	t0 := time.Now()
	want, err := systems.RunSSP(context.Background(), []systems.Workload{wlMat}, opts)
	if err != nil {
		t.Fatal(err)
	}
	matDur := time.Since(t0)

	// Streamed run: the same jobs pulled from the generator as the
	// virtual clock advances.
	t1 := time.Now()
	inst, f, err := Open(Spec{
		System:    "SSP",
		Workloads: []systems.Workload{wl},
		Sources:   map[string]stream.Source{"org": boundedGen()},
		Options:   opts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Engine().RunContext(context.Background(), horizon); err != nil {
		t.Fatal(err)
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := inst.Finalize(horizon)
	if err != nil {
		t.Fatal(err)
	}
	streamDur := time.Since(t1)

	if !reflect.DeepEqual(got, want) {
		t.Errorf("streamed %d-task result diverged from materialized", boundedCount)
	}
	if f.Delivered() != boundedCount {
		t.Errorf("feeder delivered %d records, want %d", f.Delivered(), boundedCount)
	}

	// The bounded-memory claim, on the feeder's own instrumentation: at
	// ~1 task/s the resident high-water mark is one stride-plus-lookahead
	// window of records (a few thousand), not O(total tasks).
	if max := f.MaxResident(); max >= boundedCount/50 {
		t.Errorf("MaxResident = %d: not O(batch) for %d tasks", max, boundedCount)
	}
	if f.Resident() != 0 {
		t.Errorf("feeder still holds %d records after drain", f.Resident())
	}

	// Wall-time parity: streaming must not cost more than 1.5× the
	// materialized run. The absolute slack absorbs scheduler noise when
	// the suite runs many packages concurrently; the typical ratio is ~1.
	if limit := matDur + matDur/2 + 500*time.Millisecond; streamDur > limit {
		t.Errorf("streamed run took %v vs materialized %v (limit %v)", streamDur, matDur, limit)
	}
}
