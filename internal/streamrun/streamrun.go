// Package streamrun opens any of the five built-in systems for a
// streamed run: one instance, one shared stream.Feeder, per-workload
// sources. It is the bridge between the scenario/service layers and the
// per-system AttachStream implementations, and carries the invariant
// they share: a streamed run drained within its horizon is byte-identical
// to the materialized run of the same jobs (see internal/stream).
package streamrun

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/spot"
	"repro/internal/stream"
	"repro/internal/systems"
)

// unboundedPoolCapacity mirrors the "large cloud platform" default the
// blocking DRP and DawningCloud runners use when no capacity is given.
const unboundedPoolCapacity = 1 << 20

// Instance is the shared open-instance surface of the five systems.
type Instance interface {
	Engine() *sim.Engine
	AttachStream(wl *systems.Workload, src stream.Source, f *stream.Feeder) error
	Accounting() *metrics.Accountant
	// Window snapshots every attached provider at virtual time t (call
	// from an event on the instance clock at t); the incremental
	// per-window reports read it.
	Window(t sim.Time) []systems.ProviderWindow
	Finalize(horizon sim.Time) (systems.Result, error)
}

// Systems lists the systems with a streamed attach surface, in the
// paper's presentation order.
func Systems() []string {
	return []string{"DCS", "SSP", "DRP", "DawningCloud", spot.Name}
}

// Supported reports whether system can run streamed.
func Supported(system string) bool {
	for _, s := range Systems() {
		if s == system {
			return true
		}
	}
	return false
}

// Spec describes one streamed run.
type Spec struct {
	// System names one of the built-in systems (DCS, SSP, DRP,
	// DawningCloud, ssp-spot). Custom registry systems have no streamed
	// attach surface and are rejected.
	System string
	// Workloads carries provider metadata in attach order. MTC
	// workloads keep their materialized job slices (whole workflows are
	// the streamed unit); HTC workloads without an entry in Sources
	// replay their own job slice.
	Workloads []systems.Workload
	// Sources maps workload names to their streaming sources.
	Sources map[string]stream.Source
	// Options are the shared run options; Horizon must be positive (a
	// streamed run cannot derive it from jobs it has not seen).
	Options systems.Options
	// Core carries DawningCloud-only knobs; its Options field is
	// overwritten from Options.
	Core core.Config
	// Feeder tunes the refill rounds.
	Feeder stream.Options
	// Observe, if non-nil, runs after every workload is attached and
	// before the feeder starts — the place to schedule read-only
	// observers (per-window reporters) on the instance clock.
	Observe func(inst Instance)
}

// Open creates the system instance, attaches every workload to one
// shared feeder and starts it. The caller drives the engine and then
// calls Finalize; Feeder.Err must be checked after the run.
func Open(spec Spec) (Instance, *stream.Feeder, error) {
	if spec.Options.Horizon <= 0 {
		return nil, nil, fmt.Errorf("streamrun: %s: options.Horizon must be positive for streamed runs", spec.System)
	}
	inst, err := open(spec)
	if err != nil {
		return nil, nil, err
	}
	f := stream.NewFeeder(inst.Engine(), spec.Feeder)
	for i := range spec.Workloads {
		wl := &spec.Workloads[i]
		if err := inst.AttachStream(wl, spec.Sources[wl.Name], f); err != nil {
			return nil, nil, fmt.Errorf("streamrun: %s: attach %s: %w", spec.System, wl.Name, err)
		}
	}
	if spec.Observe != nil {
		spec.Observe(inst)
	}
	if err := f.Start(); err != nil {
		return nil, nil, err
	}
	return inst, f, nil
}

// open dispatches on the system name with the same capacity derivation
// as the blocking runners.
func open(spec Spec) (Instance, error) {
	capacity := spec.Options.PoolCapacity
	sumFixed := 0
	for i := range spec.Workloads {
		sumFixed += spec.Workloads[i].FixedNodes
	}
	switch spec.System {
	case "DCS", "SSP":
		if capacity == 0 {
			capacity = sumFixed
		}
		return systems.OpenFixed(spec.System, spec.System == "DCS", capacity, spec.Options)
	case "DRP":
		if capacity == 0 {
			capacity = unboundedPoolCapacity
		}
		return systems.OpenDRP(capacity, spec.Options)
	case "DawningCloud":
		if capacity == 0 {
			capacity = unboundedPoolCapacity
		}
		cfg := spec.Core
		cfg.Options = spec.Options
		return core.Open(capacity, cfg)
	case spot.Name:
		if capacity == 0 {
			capacity = sumFixed
		}
		return spot.Open(capacity, spec.Options)
	default:
		return nil, fmt.Errorf("streamrun: system %q has no streamed attach surface", spec.System)
	}
}

// Run drives a streamed run to its horizon and finalizes the result.
// The context cancels the simulation between events; producers of live
// sources must additionally Fail them on cancellation, since a feeder
// blocked pulling a live lane cannot observe ctx.
func Run(ctx context.Context, spec Spec) (systems.Result, error) {
	inst, f, err := Open(spec)
	if err != nil {
		return systems.Result{}, err
	}
	if err := inst.Engine().RunContext(ctx, spec.Options.Horizon); err != nil {
		return systems.Result{}, fmt.Errorf("streamrun: %s run aborted: %w", spec.System, err)
	}
	if err := f.Err(); err != nil {
		return systems.Result{}, fmt.Errorf("streamrun: %s feed failed: %w", spec.System, err)
	}
	return inst.Finalize(spec.Options.Horizon)
}
