package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/job"
)

func mkQueue(sizes ...int) []*job.Job {
	q := make([]*job.Job, len(sizes))
	for i, s := range sizes {
		q[i] = &job.Job{ID: i + 1, Nodes: s, Runtime: 100}
	}
	return q
}

func TestFirstFitSkipsBigJobs(t *testing.T) {
	q := mkQueue(8, 2, 4, 1)
	picked := FirstFit{}.Select(nil, q, 7)
	// 8 does not fit; 2, 4, 1 all fit (total 7).
	want := []int{1, 2, 3}
	if len(picked) != len(want) {
		t.Fatalf("picked = %v, want %v", picked, want)
	}
	for i := range want {
		if picked[i] != want[i] {
			t.Errorf("picked[%d] = %d, want %d", i, picked[i], want[i])
		}
	}
}

func TestFirstFitRespectsCapacity(t *testing.T) {
	q := mkQueue(4, 4, 4)
	picked := FirstFit{}.Select(nil, q, 8)
	if len(picked) != 2 {
		t.Fatalf("picked %d jobs, want 2", len(picked))
	}
	if TotalDemand(q, picked) != 8 {
		t.Errorf("demand = %d, want 8", TotalDemand(q, picked))
	}
}

func TestFirstFitEmptyQueueAndNoCapacity(t *testing.T) {
	if got := (FirstFit{}).Select(nil, nil, 10); got != nil {
		t.Errorf("Select(nil) = %v, want nil", got)
	}
	if got := (FirstFit{}).Select(nil, mkQueue(1), 0); got != nil {
		t.Errorf("Select with 0 free = %v, want nil", got)
	}
}

func TestFCFSBlocksAtHead(t *testing.T) {
	q := mkQueue(8, 2, 1)
	picked := FCFS{}.Select(nil, q, 7)
	// Head needs 8 > 7: nothing starts even though 2 and 1 would fit.
	if len(picked) != 0 {
		t.Fatalf("picked = %v, want empty (head blocks)", picked)
	}
}

func TestFCFSRunsPrefix(t *testing.T) {
	q := mkQueue(2, 3, 4)
	picked := FCFS{}.Select(nil, q, 5)
	want := []int{0, 1}
	if len(picked) != len(want) {
		t.Fatalf("picked = %v, want %v", picked, want)
	}
}

func TestPolicyNames(t *testing.T) {
	if (FirstFit{}).Name() != "first-fit" {
		t.Error("FirstFit name wrong")
	}
	if (FCFS{}).Name() != "fcfs" {
		t.Error("FCFS name wrong")
	}
	if (EasyBackfill{}).Name() != "easy-backfill" {
		t.Error("EasyBackfill name wrong")
	}
}

func TestEasyBackfillFillsShadowWindow(t *testing.T) {
	// 10 nodes total, 6 busy until t=100. Head needs 8 (waits for 100).
	// A 30s 2-node job can backfill; a 200s 4-node job cannot (it would
	// push the head past its shadow start but exceeds the 2 extra nodes).
	q := []*job.Job{
		{ID: 1, Nodes: 8, Runtime: 50},
		{ID: 2, Nodes: 4, Runtime: 200},
		{ID: 3, Nodes: 2, Runtime: 30},
	}
	e := EasyBackfill{
		Now: func() int64 { return 0 },
		RunningEnds: func() []RunningJob {
			return []RunningJob{{End: 100, Nodes: 6}}
		},
	}
	picked := e.Select(nil, q, 4)
	if len(picked) != 1 || picked[0] != 2 {
		t.Fatalf("picked = %v, want [2] (only the short job backfills)", picked)
	}
}

func TestEasyBackfillExtraNodesPath(t *testing.T) {
	// Head needs 5 with 4 free; one running job of 3 ends at t=100, so
	// at t=100 there are 4+3=7 nodes, extra=2. A long 2-node job fits in
	// the extra and may backfill despite running past the shadow.
	q := []*job.Job{
		{ID: 1, Nodes: 5, Runtime: 50},
		{ID: 2, Nodes: 2, Runtime: 10000},
	}
	e := EasyBackfill{
		Now: func() int64 { return 0 },
		RunningEnds: func() []RunningJob {
			return []RunningJob{{End: 100, Nodes: 3}}
		},
	}
	picked := e.Select(nil, q, 4)
	if len(picked) != 1 || picked[0] != 1 {
		t.Fatalf("picked = %v, want [1]", picked)
	}
}

func TestEasyBackfillStartsPrefixLikeFCFS(t *testing.T) {
	q := mkQueue(2, 3, 9)
	e := EasyBackfill{Now: func() int64 { return 0 }}
	picked := e.Select(nil, q, 6)
	// 2 and 3 start; 9 blocks with nothing running -> no shadow -> stop.
	if len(picked) != 2 {
		t.Fatalf("picked = %v, want 2 prefix jobs", picked)
	}
}

func TestTotalDemand(t *testing.T) {
	q := mkQueue(3, 5, 7)
	if got := TotalDemand(q, []int{0, 2}); got != 10 {
		t.Errorf("TotalDemand = %d, want 10", got)
	}
	if got := TotalDemand(q, nil); got != 0 {
		t.Errorf("TotalDemand(nil) = %d, want 0", got)
	}
}

// Property: no policy ever selects more total demand than free capacity,
// and indices are strictly ascending and valid.
func TestPropertySelectionsRespectCapacity(t *testing.T) {
	policies := []Policy{FirstFit{}, FCFS{}}
	f := func(sizes []uint8, freeRaw uint8) bool {
		q := make([]*job.Job, len(sizes))
		for i, s := range sizes {
			q[i] = &job.Job{ID: i, Nodes: int(s%32) + 1, Runtime: 10}
		}
		free := int(freeRaw)
		for _, p := range policies {
			picked := p.Select(nil, q, free)
			if TotalDemand(q, picked) > free {
				return false
			}
			for i := 1; i < len(picked); i++ {
				if picked[i] <= picked[i-1] {
					return false
				}
			}
			for _, idx := range picked {
				if idx < 0 || idx >= len(q) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: FCFS selections are always a prefix-closed subset of FirstFit
// selections (FirstFit starts at least as many jobs).
func TestPropertyFirstFitDominatesFCFS(t *testing.T) {
	f := func(sizes []uint8, freeRaw uint8) bool {
		q := make([]*job.Job, len(sizes))
		for i, s := range sizes {
			q[i] = &job.Job{ID: i, Nodes: int(s%32) + 1, Runtime: 10}
		}
		free := int(freeRaw)
		ff := FirstFit{}.Select(nil, q, free)
		fc := FCFS{}.Select(nil, q, free)
		if len(fc) > len(ff) {
			return false
		}
		// FCFS picks exactly the indices 0..len(fc)-1.
		for i, idx := range fc {
			if idx != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSelectAppendsToScratchBuffer pins the allocation-free contract of
// the dst parameter: passing a reused buffer as dst[:0] yields the same
// selection as a nil dst without growing a new slice each call, and the
// returned slice aliases the scratch buffer's backing array.
func TestSelectAppendsToScratchBuffer(t *testing.T) {
	q := mkQueue(4, 2, 8, 1, 3)
	for _, p := range []Policy{FirstFit{}, FCFS{}} {
		fresh := p.Select(nil, q, 9)
		scratch := make([]int, 0, 16)
		reused := p.Select(scratch, q, 9)
		if len(fresh) != len(reused) {
			t.Fatalf("%s: scratch selection %v != fresh %v", p.Name(), reused, fresh)
		}
		for i := range fresh {
			if fresh[i] != reused[i] {
				t.Fatalf("%s: scratch selection %v != fresh %v", p.Name(), reused, fresh)
			}
		}
		if len(reused) > 0 && &reused[0] != &scratch[:1][0] {
			t.Errorf("%s: result does not alias the scratch buffer", p.Name())
		}
		// A second call over the same scratch must not leak the previous
		// selection into the result.
		again := p.Select(reused[:0], q, 9)
		if len(again) != len(fresh) {
			t.Fatalf("%s: reuse changed the selection: %v vs %v", p.Name(), again, fresh)
		}
	}
}

// TestSelectScratchDoesNotAllocate measures the steady-state allocation
// count of both paper policies over a warm scratch buffer.
func TestSelectScratchDoesNotAllocate(t *testing.T) {
	q := mkQueue(4, 2, 8, 1, 3, 5, 2, 2)
	scratch := make([]int, 0, len(q))
	for _, p := range []Policy{FirstFit{}, FCFS{}} {
		p := p
		allocs := testing.AllocsPerRun(100, func() {
			scratch = p.Select(scratch[:0], q, 12)
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per Select over a warm scratch buffer, want 0", p.Name(), allocs)
		}
	}
}
