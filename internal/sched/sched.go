// Package sched implements the scheduling policies the paper configures:
// First-Fit for HTC runtime environments (scan queued jobs in arrival order
// and start every job whose demand fits the free nodes) and FCFS for MTC
// task streams (strict arrival order; the head blocks the queue). An EASY
// backfilling variant is included as an ablation extension.
//
// Schedulers are pure selection functions over a queue snapshot: they
// return the indices of jobs to start now, letting the runtime environment
// own queue mutation and resource bookkeeping.
package sched

import "repro/internal/job"

// Policy selects queued jobs to start given free node capacity.
type Policy interface {
	// Select appends indices into queue (ascending) of jobs to start now
	// onto dst and returns the extended slice. The total demand of
	// selected jobs never exceeds free. Callers on the simulation hot
	// path pass a reused scratch buffer as dst[:0] so selection is
	// allocation-free; dst may be nil.
	Select(dst []int, queue []*job.Job, free int) []int
	// Name identifies the policy in reports.
	Name() string
}

// FirstFit scans all queued jobs in arrival order and chooses every job
// whose resource requirement can be met, the paper's HTC policy.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Select implements Policy.
func (FirstFit) Select(dst []int, queue []*job.Job, free int) []int {
	for i, j := range queue {
		if j.Nodes <= free {
			dst = append(dst, i)
			free -= j.Nodes
		}
	}
	return dst
}

// FCFS starts jobs strictly in arrival order, stopping at the first job
// that does not fit, the paper's MTC policy (tasks are released to the
// queue only when their dependencies are met).
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// Select implements Policy.
func (FCFS) Select(dst []int, queue []*job.Job, free int) []int {
	for i, j := range queue {
		if j.Nodes > free {
			break
		}
		dst = append(dst, i)
		free -= j.Nodes
	}
	return dst
}

// EasyBackfill runs FCFS but lets later jobs jump ahead when they cannot
// delay the head job's earliest possible start. This is the classic EASY
// algorithm, included as an ablation against the paper's plain First-Fit:
// it needs runtime estimates, which the paper's policy avoids.
type EasyBackfill struct {
	// Now reports the current time; used to compute the head job's
	// shadow window from running-job end times.
	Now func() int64
	// RunningEnds lists (endTime, nodes) for currently running jobs.
	RunningEnds func() []RunningJob
}

// RunningJob describes a running job for backfill window computation.
type RunningJob struct {
	End   int64
	Nodes int
}

// Name implements Policy.
func (e EasyBackfill) Name() string { return "easy-backfill" }

// Select implements Policy.
func (e EasyBackfill) Select(dst []int, queue []*job.Job, free int) []int {
	i := 0
	// Start jobs in order while they fit.
	for i < len(queue) && queue[i].Nodes <= free {
		dst = append(dst, i)
		free -= queue[i].Nodes
		i++
	}
	if i >= len(queue) {
		return dst
	}
	head := queue[i]
	// Compute the shadow time: when enough nodes free up for the head.
	shadow, extra := e.shadow(head.Nodes - free)
	if shadow < 0 {
		return dst // cannot place the head at all; no safe backfill
	}
	now := int64(0)
	if e.Now != nil {
		now = e.Now()
	}
	for k := i + 1; k < len(queue); k++ {
		cand := queue[k]
		if cand.Nodes > free {
			continue
		}
		// Safe if it finishes before the shadow time, or fits in the
		// nodes left over once the head starts.
		if now+cand.Runtime <= shadow || cand.Nodes <= extra {
			dst = append(dst, k)
			free -= cand.Nodes
			if cand.Nodes <= extra {
				extra -= cand.Nodes
			}
		}
	}
	return dst
}

// shadow returns the time when `need` more nodes will be free given the
// running jobs, plus the extra nodes available at that time. It returns
// (-1, 0) when the need can never be met.
func (e EasyBackfill) shadow(need int) (int64, int) {
	if need <= 0 {
		if e.Now != nil {
			return e.Now(), 0
		}
		return 0, 0
	}
	if e.RunningEnds == nil {
		return -1, 0
	}
	running := e.RunningEnds()
	// Sort by end time ascending (insertion sort: lists are small).
	for i := 1; i < len(running); i++ {
		for j := i; j > 0 && running[j].End < running[j-1].End; j-- {
			running[j], running[j-1] = running[j-1], running[j]
		}
	}
	freed := 0
	for _, r := range running {
		freed += r.Nodes
		if freed >= need {
			return r.End, freed - need
		}
	}
	return -1, 0
}

// TotalDemand sums the node demand of the selected queue indices.
func TotalDemand(queue []*job.Job, picked []int) int {
	total := 0
	for _, i := range picked {
		total += queue[i].Nodes
	}
	return total
}
