package swf

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
)

// readAll drains a streaming Reader into the slice-of-records shape
// Parse returns, so the two implementations are directly comparable.
func readAll(data []byte) ([]Record, *Header, error) {
	r := NewReader(bytes.NewReader(data))
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs, r.Header(), nil
		}
		if err != nil {
			return recs, r.Header(), err
		}
		recs = append(recs, rec)
	}
}

// recordsEqual compares two records treating NaN AvgCPU values as equal
// (archive traces carry NaN literals, and NaN != NaN would flag every
// such record as a divergence).
func recordsEqual(a, b Record) bool {
	if !(a.AvgCPU == b.AvgCPU || (math.IsNaN(a.AvgCPU) && math.IsNaN(b.AvgCPU))) {
		return false
	}
	a.AvgCPU, b.AvgCPU = 0, 0
	return a == b
}

// diffReaderParse is the differential oracle shared by the seed-corpus
// test and FuzzParse: the streaming Reader and the materializing Parse
// must accept exactly the same inputs and produce identical records and
// headers. It reports "" when they agree.
func diffReaderParse(data []byte) string {
	trace, perr := Parse(bytes.NewReader(data))
	recs, header, rerr := readAll(data)
	if (perr == nil) != (rerr == nil) {
		return "acceptance differs: Parse err=" + errString(perr) + ", Reader err=" + errString(rerr)
	}
	if perr != nil {
		if perr.Error() != rerr.Error() {
			return "error text differs: Parse " + errString(perr) + ", Reader " + errString(rerr)
		}
		return ""
	}
	if len(recs) != len(trace.Records) {
		return "record count differs"
	}
	for i := range recs {
		if !recordsEqual(recs[i], trace.Records[i]) {
			return fmt.Sprintf("record %d differs: Parse %+v, Reader %+v", i, trace.Records[i], recs[i])
		}
	}
	if !reflect.DeepEqual(header.Comments, trace.Header.Comments) {
		return "header comments differ"
	}
	return ""
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// TestReaderMatchesParse runs the Parse/Reader differential over the
// fuzz seed corpus plus the malformed-input table, deterministically —
// the same oracle FuzzParse applies to mutated inputs.
func TestReaderMatchesParse(t *testing.T) {
	inputs := []string{
		"; Computer: iPSC/860\n; MaxNodes: 128\n" + validLine,
		validLine + validLine,
		"1 0 10 600 4 NaN -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n",
		"-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n",
		"1 4294967296 0 0 1073741824 1e308 0 0 0 0 0 0 0 0 0 0 0 0\n",
		";\n\n  \n",
		"",
		// Malformed shapes: both implementations must reject with the
		// same line-numbered message.
		"1 0 10 600 4\n",
		validLine + "bad line here\n",
		"; header only then garbage\nx x x\n",
		"1 99999999999999 10 600 4 2.5 1024 4 600 2048 1 3 2 7 1 0 -1 -1\n",
		// Comment between records: line numbering must stay in sync.
		validLine + "; interleaved\n" + validLine,
	}
	for i, in := range inputs {
		if diff := diffReaderParse([]byte(in)); diff != "" {
			t.Errorf("input %d (%q): %s", i, in, diff)
		}
	}
}

// TestReaderStickyError pins the documented contract: after a parse
// error every further Next call returns the same error.
func TestReaderStickyError(t *testing.T) {
	r := NewReader(strings.NewReader("bad\n" + validLine))
	_, err1 := r.Next()
	if err1 == nil {
		t.Fatal("malformed first line accepted")
	}
	_, err2 := r.Next()
	if err2 != err1 {
		t.Fatalf("error not sticky: %v then %v", err1, err2)
	}
}
