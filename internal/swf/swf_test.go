package swf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

const sample = `; Version: 2
; Computer: iPSC/860
; MaxNodes: 128
1 0 10 300 8 -1 -1 8 600 -1 1 1 1 -1 1 -1 -1 -1
2 60 0 120 16 -1 -1 16 120 -1 1 2 1 -1 1 -1 -1 -1

3 7200 5 3600 128 -1 -1 128 4000 -1 1 3 2 -1 2 -1 -1 -1
`

func TestParseSample(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(tr.Header.Comments) != 3 {
		t.Errorf("header comments = %d, want 3", len(tr.Header.Comments))
	}
	if got := tr.Header.Field("Computer"); got != "iPSC/860" {
		t.Errorf("Field(Computer) = %q, want iPSC/860", got)
	}
	if got := tr.Header.Field("Missing"); got != "" {
		t.Errorf("Field(Missing) = %q, want empty", got)
	}
	if len(tr.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(tr.Records))
	}
	r := tr.Records[0]
	if r.JobNumber != 1 || r.Submit != 0 || r.Wait != 10 || r.Run != 300 || r.UsedProcs != 8 {
		t.Errorf("record 0 parsed wrong: %+v", r)
	}
	if tr.Records[2].UsedProcs != 128 {
		t.Errorf("record 2 procs = %d, want 128", tr.Records[2].UsedProcs)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"too few fields", "1 2 3\n"},
		{"too many fields", strings.Repeat("1 ", 19) + "\n"},
		{"non-numeric", "1 0 10 x 8 -1 -1 8 600 -1 1 1 1 -1 1 -1 -1 -1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.input)); err == nil {
				t.Error("Parse succeeded on malformed input")
			}
		})
	}
}

func TestParseFloatAvgCPU(t *testing.T) {
	line := "1 0 10 300 8 2.5 -1 8 600 -1 1 1 1 -1 1 -1 -1 -1\n"
	tr, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if tr.Records[0].AvgCPU != 2.5 {
		t.Errorf("AvgCPU = %g, want 2.5", tr.Records[0].AvgCPU)
	}
}

func TestWriteParseRoundtrip(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	tr2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(tr2.Records) != len(tr.Records) {
		t.Fatalf("roundtrip records = %d, want %d", len(tr2.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if tr.Records[i] != tr2.Records[i] {
			t.Errorf("record %d changed: %+v vs %+v", i, tr.Records[i], tr2.Records[i])
		}
	}
}

func TestJobsConversion(t *testing.T) {
	tr, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	jobs := tr.Jobs()
	if len(jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(jobs))
	}
	if jobs[0].Nodes != 8 || jobs[0].Runtime != 300 || jobs[0].Class != job.HTC {
		t.Errorf("job 0 = %+v", jobs[0])
	}
}

func TestJobsSkipsInvalidRecords(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 1, Submit: 0, Run: 100, UsedProcs: 0, ReqProcs: 0},
		{JobNumber: 2, Submit: 0, Run: -1, UsedProcs: 4},
		{JobNumber: 3, Submit: 0, Run: 100, UsedProcs: 4},
	}}
	jobs := tr.Jobs()
	if len(jobs) != 1 || jobs[0].ID != 3 {
		t.Errorf("jobs = %+v, want only job 3", jobs)
	}
}

func TestJobsUsesReqProcsWhenUsedUnknown(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 1, Submit: 0, Run: 100, UsedProcs: -1, ReqProcs: 32},
	}}
	jobs := tr.Jobs()
	if len(jobs) != 1 || jobs[0].Nodes != 32 {
		t.Errorf("jobs = %+v, want one job with 32 nodes", jobs)
	}
}

func TestWindow(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 1, Submit: 100, Run: 10, UsedProcs: 1},
		{JobNumber: 2, Submit: 200, Run: 10, UsedProcs: 1},
		{JobNumber: 3, Submit: 300, Run: 10, UsedProcs: 1},
	}}
	w := tr.Window(150, 300)
	if len(w.Records) != 1 {
		t.Fatalf("window records = %d, want 1", len(w.Records))
	}
	if w.Records[0].JobNumber != 2 || w.Records[0].Submit != 50 {
		t.Errorf("windowed record = %+v, want job 2 rebased to 50", w.Records[0])
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 1, Submit: 0, Run: 100, UsedProcs: 10},
		{JobNumber: 2, Submit: 50, Run: 200, UsedProcs: 5},
	}}
	s := tr.Summarize(20, 0)
	if s.Jobs != 2 {
		t.Errorf("Jobs = %d, want 2", s.Jobs)
	}
	if s.NodeSeconds != 2000 {
		t.Errorf("NodeSeconds = %d, want 2000", s.NodeSeconds)
	}
	if s.Span != 250 {
		t.Errorf("Span = %d, want 250", s.Span)
	}
	wantUtil := 2000.0 / (20.0 * 250.0)
	if s.Utilization != wantUtil {
		t.Errorf("Utilization = %g, want %g", s.Utilization, wantUtil)
	}
	if s.MaxProcs != 10 {
		t.Errorf("MaxProcs = %d, want 10", s.MaxProcs)
	}
	if s.MeanRuntime != 150 {
		t.Errorf("MeanRuntime = %g, want 150", s.MeanRuntime)
	}
}

func TestSummarizeEmptyTrace(t *testing.T) {
	tr := &Trace{}
	s := tr.Summarize(128, 0)
	if s.Jobs != 0 || s.Utilization != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}

func TestFromJobsRoundtrip(t *testing.T) {
	jobs := []job.Job{
		{ID: 1, Submit: 0, Runtime: 60, Nodes: 4},
		{ID: 2, Submit: 30, Runtime: 90, Nodes: 8},
	}
	tr := FromJobs(jobs, " synthetic test trace")
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	tr2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	back := tr2.Jobs()
	if len(back) != 2 {
		t.Fatalf("jobs back = %d, want 2", len(back))
	}
	for i := range jobs {
		if back[i].ID != jobs[i].ID || back[i].Submit != jobs[i].Submit ||
			back[i].Runtime != jobs[i].Runtime || back[i].Nodes != jobs[i].Nodes {
			t.Errorf("job %d changed: %+v vs %+v", i, back[i], jobs[i])
		}
	}
}

// Property: FromJobs -> Write -> Parse -> Jobs preserves every scheduling
// field for arbitrary job sets.
func TestPropertyExportImportRoundtrip(t *testing.T) {
	f := func(specs []struct {
		Submit  uint16
		Runtime uint16
		Nodes   uint8
	}) bool {
		jobs := make([]job.Job, 0, len(specs))
		for i, s := range specs {
			jobs = append(jobs, job.Job{
				ID:      i + 1,
				Submit:  int64(s.Submit),
				Runtime: int64(s.Runtime),
				Nodes:   int(s.Nodes%64) + 1,
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, FromJobs(jobs)); err != nil {
			return false
		}
		tr, err := Parse(&buf)
		if err != nil {
			return false
		}
		back := tr.Jobs()
		if len(back) != len(jobs) {
			return false
		}
		for i := range jobs {
			if back[i].Submit != jobs[i].Submit || back[i].Runtime != jobs[i].Runtime || back[i].Nodes != jobs[i].Nodes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
