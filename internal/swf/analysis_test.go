package swf

import (
	"math"
	"testing"
	"testing/quick"
)

func analysisTrace() *Trace {
	return &Trace{Records: []Record{
		{JobNumber: 1, Submit: 0, Run: 100, UsedProcs: 2},
		{JobNumber: 2, Submit: 50, Run: 100, UsedProcs: 4},
		{JobNumber: 3, Submit: 150, Run: 60, UsedProcs: 2},
		{JobNumber: 4, Submit: 250, Run: 10, UsedProcs: 8},
	}}
}

func TestArrivalSeries(t *testing.T) {
	tr := analysisTrace()
	got, err := tr.ArrivalSeries(100, 300)
	if err != nil {
		t.Fatalf("ArrivalSeries: %v", err)
	}
	want := []int{2, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("series = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestArrivalSeriesDerivesSpan(t *testing.T) {
	tr := analysisTrace()
	got, err := tr.ArrivalSeries(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Last submit 250 -> span 251 -> 3 buckets.
	if len(got) != 3 {
		t.Errorf("buckets = %d, want 3", len(got))
	}
}

func TestArrivalSeriesErrors(t *testing.T) {
	tr := analysisTrace()
	if _, err := tr.ArrivalSeries(0, 100); err == nil {
		t.Error("zero bucket accepted")
	}
	empty := &Trace{}
	got, err := empty.ArrivalSeries(10, 0)
	if err != nil || got != nil {
		t.Errorf("empty trace: %v %v", got, err)
	}
}

func TestLoadSeriesIntegratesNodeSeconds(t *testing.T) {
	tr := &Trace{Records: []Record{
		{JobNumber: 1, Submit: 0, Run: 150, UsedProcs: 2},
	}}
	got, err := tr.LoadSeries(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	// [0,100): 2 procs x 100 s = 200; [100,200): 2 x 50 = 100.
	if len(got) != 2 || got[0] != 200 || got[1] != 100 {
		t.Errorf("load = %v, want [200 100]", got)
	}
}

func TestLoadSeriesTotalMatchesNodeSeconds(t *testing.T) {
	tr := analysisTrace()
	got, err := tr.LoadSeries(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range got {
		total += v
	}
	var want float64
	for _, r := range tr.Records {
		want += float64(r.UsedProcs) * float64(r.Run)
	}
	if math.Abs(total-want) > 1e-9 {
		t.Errorf("load total = %g, want %g", total, want)
	}
}

func TestSizeHistogram(t *testing.T) {
	h := analysisTrace().SizeHistogram()
	if h[2] != 2 || h[4] != 1 || h[8] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestRuntimePercentiles(t *testing.T) {
	ps := analysisTrace().RuntimePercentiles(0, 50, 100)
	if ps[0] != 10 || ps[2] != 100 {
		t.Errorf("percentiles = %v, want min 10 and max 100", ps)
	}
	if ps[1] < 10 || ps[1] > 100 {
		t.Errorf("median = %g out of range", ps[1])
	}
	empty := &Trace{}
	if got := empty.RuntimePercentiles(50); got[0] != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestScaleClampsAndCopies(t *testing.T) {
	tr := analysisTrace()
	scaled, err := tr.Scale(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 2->1, 4->2, 2->1, 8->4 clamped to 3.
	want := []int{1, 2, 1, 3}
	for i, w := range want {
		if scaled.Records[i].UsedProcs != w {
			t.Errorf("record %d procs = %d, want %d", i, scaled.Records[i].UsedProcs, w)
		}
	}
	// Original untouched.
	if tr.Records[0].UsedProcs != 2 {
		t.Error("Scale mutated the input trace")
	}
}

func TestScaleValidation(t *testing.T) {
	tr := analysisTrace()
	if _, err := tr.Scale(0, 10); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := tr.Scale(1, 0); err == nil {
		t.Error("zero max procs accepted")
	}
}

// Property: arrival series entries sum to the number of in-window records
// for any bucket width.
func TestPropertyArrivalSeriesConserves(t *testing.T) {
	f := func(submits []uint16, bucketRaw uint8) bool {
		bucket := int64(bucketRaw%200) + 1
		tr := &Trace{}
		for i, s := range submits {
			tr.Records = append(tr.Records, Record{JobNumber: i, Submit: int64(s), Run: 1, UsedProcs: 1})
		}
		series, err := tr.ArrivalSeries(bucket, 70000)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range series {
			total += c
		}
		return total == len(submits)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: scaling preserves record count and never exceeds the clamp.
func TestPropertyScaleBounds(t *testing.T) {
	f := func(procs []uint8, factorRaw uint8, clampRaw uint8) bool {
		factor := float64(factorRaw%40)/10 + 0.1
		clamp := int(clampRaw%64) + 1
		tr := &Trace{}
		for i, p := range procs {
			tr.Records = append(tr.Records, Record{JobNumber: i, UsedProcs: int(p)})
		}
		scaled, err := tr.Scale(factor, clamp)
		if err != nil {
			return false
		}
		if len(scaled.Records) != len(tr.Records) {
			return false
		}
		for _, r := range scaled.Records {
			if r.UsedProcs > clamp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
