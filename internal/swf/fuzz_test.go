package swf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// validLine is a well-formed SWF record used as a mutation base.
const validLine = "1 0 10 600 4 2.5 1024 4 600 2048 1 3 2 7 1 0 -1 -1\n"

// TestParseMalformedInputs is the table companion of FuzzParse: every
// class of corrupt input must produce a line-numbered error, never a
// panic or a silently wrong record.
func TestParseMalformedInputs(t *testing.T) {
	cases := []struct {
		name    string
		input   string
		wantErr string
	}{
		{"too few fields", "1 0 10 600 4\n", "expected 18 fields, got 5"},
		{"too many fields", strings.TrimSuffix(validLine, "\n") + " 99\n", "expected 18 fields, got 19"},
		{"non-numeric int field", "x 0 10 600 4 2.5 1024 4 600 2048 1 3 2 7 1 0 -1 -1\n", "field 1"},
		{"non-numeric float field", "1 0 10 600 4 abc 1024 4 600 2048 1 3 2 7 1 0 -1 -1\n", "field 6"},
		{"int64 overflow", "99999999999999999999 0 10 600 4 2.5 1024 4 600 2048 1 3 2 7 1 0 -1 -1\n", "field 1"},
		{"huge processor count", "1 0 10 600 4294967296 2.5 1024 4 600 2048 1 3 2 7 1 0 -1 -1\n", "out of range"},
		{"huge negative processor count", "1 0 10 600 -4294967296 2.5 1024 4 600 2048 1 3 2 7 1 0 -1 -1\n", "out of range"},
		{"huge submit time", "1 99999999999999 10 600 4 2.5 1024 4 600 2048 1 3 2 7 1 0 -1 -1\n", "out of range"},
		{"error names the line", validLine + "bad line here\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("accepted %q", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseNegativeFieldsDropped: archive traces use -1 for unknown
// values; such records parse fine but convert to no simulation job.
func TestParseNegativeFieldsDropped(t *testing.T) {
	input := "1 0 -1 -1 -1 -1 -1 -1 -1 -1 0 -1 -1 -1 -1 -1 -1 -1\n" + // unknown runtime/procs
		"2 0 -1 600 -5 -1 -1 -3 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n" + // negative proc counts
		"3 10 -1 600 4 -1 -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n" // good
	trace, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Records) != 3 {
		t.Fatalf("records = %d, want 3", len(trace.Records))
	}
	jobs := trace.Jobs()
	if len(jobs) != 1 || jobs[0].ID != 3 {
		t.Fatalf("jobs = %+v, want only record 3", jobs)
	}
	stats := trace.Summarize(128, 0)
	if stats.Jobs != 1 || stats.NodeSeconds != 2400 {
		t.Errorf("stats = %+v, want 1 job / 2400 node-seconds", stats)
	}
}

// TestSummarizeSaturatesInsteadOfWrapping pins the overflow fix: at the
// field bounds, accumulated node-seconds saturate at MaxInt64 rather than
// wrapping to a negative total (which used to yield negative utilization).
func TestSummarizeSaturatesInsteadOfWrapping(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 4; i++ {
		b.WriteString("1 0 -1 4294967296 1073741824 -1 -1 1073741824 -1 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
	}
	trace, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("bound-sized records rejected: %v", err)
	}
	stats := trace.Summarize(128, 0)
	if stats.NodeSeconds != math.MaxInt64 {
		t.Errorf("NodeSeconds = %d, want saturation at MaxInt64", stats.NodeSeconds)
	}
	if stats.Utilization < 0 {
		t.Errorf("utilization went negative: %g", stats.Utilization)
	}
}

// FuzzParse hammers the parser with arbitrary bytes: it must never
// panic, and whatever it accepts must survive a Write/Parse round trip
// with identical records.
func FuzzParse(f *testing.F) {
	f.Add([]byte("; Computer: iPSC/860\n; MaxNodes: 128\n" + validLine))
	f.Add([]byte(validLine + validLine))
	f.Add([]byte("1 0 10 600 4 NaN -1 4 600 -1 1 -1 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("-1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1\n"))
	f.Add([]byte("1 4294967296 0 0 1073741824 1e308 0 0 0 0 0 0 0 0 0 0 0 0\n"))
	f.Add([]byte(";\n\n  \n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// The streaming Reader and the materializing Parse are two
		// implementations of one grammar: they must agree on every
		// input, accepted or rejected (see reader_test.go).
		if diff := diffReaderParse(data); diff != "" {
			t.Fatalf("Reader/Parse diverge on %q: %s", data, diff)
		}
		trace, err := Parse(bytes.NewReader(data))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted traces must be usable by every consumer.
		jobs := trace.Jobs()
		for i := range jobs {
			if jobs[i].Nodes <= 0 || jobs[i].Runtime < 0 || jobs[i].Submit < 0 {
				t.Fatalf("Jobs() emitted invalid job %+v", jobs[i])
			}
		}
		stats := trace.Summarize(128, 0)
		if stats.NodeSeconds < 0 {
			t.Fatalf("negative node-seconds %d from %q", stats.NodeSeconds, data)
		}
		var buf bytes.Buffer
		if err := Write(&buf, trace); err != nil {
			t.Fatalf("Write failed on accepted trace: %v", err)
		}
		again, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v\nwritten:\n%s", err, buf.String())
		}
		if len(again.Records) != len(trace.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(trace.Records), len(again.Records))
		}
		for i := range trace.Records {
			a, b := trace.Records[i], again.Records[i]
			if a.Submit != b.Submit || a.Run != b.Run || a.UsedProcs != b.UsedProcs || a.ReqProcs != b.ReqProcs {
				t.Fatalf("round trip changed record %d: %+v -> %+v", i, a, b)
			}
		}
	})
}
