package swf

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/job"
)

// Reader streams an SWF file record at a time, so trace-backed workload
// sources never hold a whole archive file in memory. Header comment
// lines are accumulated as they are encountered; records are parsed with
// the same validation as Parse (which is now built on this type).
type Reader struct {
	scanner *bufio.Scanner
	header  Header
	lineNo  int
	err     error
}

// NewReader creates a streaming reader over r.
func NewReader(r io.Reader) *Reader {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return &Reader{scanner: scanner}
}

// Header returns the comment lines seen so far; after io.EOF it is the
// complete header.
func (r *Reader) Header() *Header { return &r.header }

// Next returns the next job record, skipping blank and comment lines.
// It returns io.EOF at the end of the stream and a line-numbered error
// for malformed input; after an error every further call returns the
// same error.
func (r *Reader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	for r.scanner.Scan() {
		r.lineNo++
		line := strings.TrimSpace(r.scanner.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			r.header.Comments = append(r.header.Comments, strings.TrimPrefix(line, ";"))
			continue
		}
		rec, err := parseRecord(line)
		if err != nil {
			r.err = fmt.Errorf("swf: line %d: %w", r.lineNo, err)
			return Record{}, r.err
		}
		return rec, nil
	}
	if err := r.scanner.Err(); err != nil {
		r.err = fmt.Errorf("swf: read: %w", err)
	} else {
		r.err = io.EOF
	}
	return Record{}, r.err
}

// JobFromRecord converts one SWF record to a simulation job, reporting
// false for records with unknown runtime or processor counts (the same
// records Trace.Jobs drops).
func JobFromRecord(r *Record) (job.Job, bool) {
	p := r.procs()
	if p <= 0 || r.Run < 0 || r.Submit < 0 {
		return job.Job{}, false
	}
	return job.Job{
		ID:      r.JobNumber,
		Name:    fmt.Sprintf("swf-%d", r.JobNumber),
		Class:   job.HTC,
		Submit:  r.Submit,
		Runtime: r.Run,
		Nodes:   p,
	}, true
}
