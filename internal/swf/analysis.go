package swf

import (
	"fmt"
	"sort"
)

// This file provides the trace-analysis helpers used to characterize
// workloads the way Section 4.2 of the paper does: arrival-rate series,
// load profiles, size mixes and runtime distributions. They work on any
// parsed SWF trace, including real Parallel Workloads Archive files.

// ArrivalSeries counts job arrivals per fixed-width bucket over [0, span).
// Span 0 derives the window from the trace.
func (t *Trace) ArrivalSeries(bucket, span int64) ([]int, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("swf: bucket %d must be positive", bucket)
	}
	if span == 0 {
		for i := range t.Records {
			if s := t.Records[i].Submit + 1; s > span {
				span = s
			}
		}
	}
	if span <= 0 {
		return nil, nil
	}
	n := int((span + bucket - 1) / bucket)
	out := make([]int, n)
	for i := range t.Records {
		s := t.Records[i].Submit
		if s < 0 || s >= span {
			continue
		}
		out[s/bucket]++
	}
	return out, nil
}

// LoadSeries integrates demanded node-seconds per bucket: the offered-load
// profile a capacity planner reads.
func (t *Trace) LoadSeries(bucket, span int64) ([]float64, error) {
	if bucket <= 0 {
		return nil, fmt.Errorf("swf: bucket %d must be positive", bucket)
	}
	if span == 0 {
		for i := range t.Records {
			r := &t.Records[i]
			if e := r.Submit + maxI64(r.Run, 0); e > span {
				span = e
			}
		}
	}
	if span <= 0 {
		return nil, nil
	}
	n := int((span + bucket - 1) / bucket)
	out := make([]float64, n)
	for i := range t.Records {
		r := &t.Records[i]
		p := r.procs()
		if p <= 0 || r.Run <= 0 {
			continue
		}
		start, end := r.Submit, r.Submit+r.Run
		if start < 0 {
			start = 0
		}
		if end > span {
			end = span
		}
		for b := start / bucket; b*bucket < end && int(b) < n; b++ {
			lo := maxI64(start, b*bucket)
			hi := minI64(end, (b+1)*bucket)
			if hi > lo {
				out[b] += float64(p) * float64(hi-lo)
			}
		}
	}
	return out, nil
}

// SizeHistogram counts jobs by processor demand.
func (t *Trace) SizeHistogram() map[int]int {
	out := make(map[int]int)
	for i := range t.Records {
		if p := t.Records[i].procs(); p > 0 {
			out[p]++
		}
	}
	return out
}

// RuntimePercentiles reports the given runtime percentiles (0-100) over
// valid records, in seconds.
func (t *Trace) RuntimePercentiles(ps ...float64) []float64 {
	var runs []float64
	for i := range t.Records {
		if r := t.Records[i].Run; r >= 0 {
			runs = append(runs, float64(r))
		}
	}
	sort.Float64s(runs)
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = percentileSorted(runs, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Scale returns a copy with processor demands multiplied by factor and
// clamped to [1, maxProcs], the paper's normalization of traces recorded
// on machines with multi-CPU nodes onto the one-CPU-per-node platform.
func (t *Trace) Scale(factor float64, maxProcs int) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("swf: scale factor %g must be positive", factor)
	}
	if maxProcs < 1 {
		return nil, fmt.Errorf("swf: max procs %d must be >= 1", maxProcs)
	}
	out := &Trace{Header: t.Header, Records: make([]Record, len(t.Records))}
	copy(out.Records, t.Records)
	for i := range out.Records {
		r := &out.Records[i]
		scaleField := func(v int) int {
			if v <= 0 {
				return v
			}
			s := int(float64(v) * factor)
			if s < 1 {
				s = 1
			}
			if s > maxProcs {
				s = maxProcs
			}
			return s
		}
		r.UsedProcs = scaleField(r.UsedProcs)
		r.ReqProcs = scaleField(r.ReqProcs)
	}
	return out, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
