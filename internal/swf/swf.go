// Package swf reads and writes the Standard Workload Format used by the
// Parallel Workloads Archive, the source of the paper's NASA iPSC and SDSC
// BLUE traces.
//
// An SWF file contains header comment lines beginning with ';' followed by
// one record per job with 18 whitespace-separated fields. This package
// parses the fields the simulation consumes (submit time, run time,
// processors) while preserving the rest, so real archive files can replace
// the synthetic traces without code changes.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/job"
)

// Record is one SWF job line. Field meanings follow the archive definition
// (Feitelson's swf format, version 2). Times are seconds; -1 means unknown.
type Record struct {
	JobNumber    int
	Submit       int64 // seconds since trace start
	Wait         int64
	Run          int64
	UsedProcs    int
	AvgCPU       float64
	UsedMem      int64
	ReqProcs     int
	ReqTime      int64
	ReqMem       int64
	Status       int
	UserID       int
	GroupID      int
	Executable   int
	QueueNumber  int
	PartitionNum int
	PrecedingJob int
	ThinkTime    int64
}

// Header carries the comment lines of an SWF file, without the leading ';'.
type Header struct {
	Comments []string
}

// Field returns the value of a "; Key: value" header line, or "" if absent.
func (h *Header) Field(key string) string {
	prefix := key + ":"
	for _, c := range h.Comments {
		trimmed := strings.TrimSpace(c)
		if strings.HasPrefix(trimmed, prefix) {
			return strings.TrimSpace(trimmed[len(prefix):])
		}
	}
	return ""
}

// Trace is a parsed SWF file.
type Trace struct {
	Header  Header
	Records []Record
}

// Parse reads a whole SWF stream through the record-at-a-time Reader.
// Malformed lines produce an error naming the line number; blank lines
// are skipped.
func Parse(r io.Reader) (*Trace, error) {
	sr := NewReader(r)
	t := &Trace{}
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
	t.Header = *sr.Header()
	return t, nil
}

// Sanity bounds on parsed fields. Archive traces use -1 for unknown
// values; anything wildly beyond a physical machine or a trace's lifetime
// is corruption, and letting it through would overflow the node-second
// accounting downstream (procs * seconds must fit in int64).
const (
	maxCountField = 1 << 30 // processor/job counts
	maxTimeField  = 1 << 32 // seconds (~136 years)
)

// fieldBound returns the magnitude bound for field index i (0-based).
func fieldBound(i int) int64 {
	switch i {
	case 1, 2, 3, 8, 17: // submit, wait, run, requested time, think time
		return maxTimeField
	default: // job number, processor counts, ids, memory, status, queue
		return maxCountField
	}
}

func parseRecord(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 18 {
		return Record{}, fmt.Errorf("expected 18 fields, got %d", len(fields))
	}
	ints := make([]int64, 18)
	var avgCPU float64
	for i, f := range fields {
		if i == 5 { // average CPU time is fractional
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return Record{}, fmt.Errorf("field %d %q: %w", i+1, f, err)
			}
			avgCPU = v
			continue
		}
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return Record{}, fmt.Errorf("field %d %q: %w", i+1, f, err)
		}
		if bound := fieldBound(i); v > bound || v < -bound {
			return Record{}, fmt.Errorf("field %d %q: out of range (|value| > %d)", i+1, f, bound)
		}
		ints[i] = v
	}
	return Record{
		JobNumber:    int(ints[0]),
		Submit:       ints[1],
		Wait:         ints[2],
		Run:          ints[3],
		UsedProcs:    int(ints[4]),
		AvgCPU:       avgCPU,
		UsedMem:      ints[6],
		ReqProcs:     int(ints[7]),
		ReqTime:      ints[8],
		ReqMem:       ints[9],
		Status:       int(ints[10]),
		UserID:       int(ints[11]),
		GroupID:      int(ints[12]),
		Executable:   int(ints[13]),
		QueueNumber:  int(ints[14]),
		PartitionNum: int(ints[15]),
		PrecedingJob: int(ints[16]),
		ThinkTime:    ints[17],
	}, nil
}

// Write emits the trace in SWF text form.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for _, c := range t.Header.Comments {
		if _, err := fmt.Fprintf(bw, ";%s\n", c); err != nil {
			return err
		}
	}
	for i := range t.Records {
		r := &t.Records[i]
		_, err := fmt.Fprintf(bw, "%d %d %d %d %d %g %d %d %d %d %d %d %d %d %d %d %d %d\n",
			r.JobNumber, r.Submit, r.Wait, r.Run, r.UsedProcs, r.AvgCPU,
			r.UsedMem, r.ReqProcs, r.ReqTime, r.ReqMem, r.Status,
			r.UserID, r.GroupID, r.Executable, r.QueueNumber,
			r.PartitionNum, r.PrecedingJob, r.ThinkTime)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// satAdd adds non-negative node-second quantities, saturating at the
// int64 maximum instead of wrapping: parseRecord bounds each term, but a
// long trace can still accumulate past 2^63.
func satAdd(a, b int64) int64 {
	if s := a + b; s >= a {
		return s
	}
	return math.MaxInt64
}

// procs picks the effective processor demand of a record: used processors
// when recorded, otherwise the requested count.
func (r *Record) procs() int {
	if r.UsedProcs > 0 {
		return r.UsedProcs
	}
	return r.ReqProcs
}

// Jobs converts SWF records to simulation jobs, dropping records with
// unknown runtime or processor counts (as the archive recommends for
// cleaned traces). Job IDs are the SWF job numbers.
func (t *Trace) Jobs() []job.Job {
	jobs := make([]job.Job, 0, len(t.Records))
	for i := range t.Records {
		if j, ok := JobFromRecord(&t.Records[i]); ok {
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// FromJobs builds a minimal SWF trace from simulation jobs, for export.
func FromJobs(jobs []job.Job, headerComments ...string) *Trace {
	t := &Trace{Header: Header{Comments: headerComments}}
	t.Records = make([]Record, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		t.Records[i] = Record{
			JobNumber: j.ID,
			Submit:    j.Submit,
			Wait:      -1,
			Run:       j.Runtime,
			UsedProcs: j.Nodes,
			AvgCPU:    -1,
			UsedMem:   -1,
			ReqProcs:  j.Nodes,
			ReqTime:   j.Runtime,
			ReqMem:    -1,
			Status:    1,
			UserID:    -1, GroupID: -1, Executable: -1,
			QueueNumber: -1, PartitionNum: -1, PrecedingJob: -1, ThinkTime: -1,
		}
	}
	return t
}

// Window returns a copy of the trace restricted to jobs submitted in
// [from, to), with submit times rebased so the window starts at zero.
func (t *Trace) Window(from, to int64) *Trace {
	out := &Trace{Header: t.Header}
	for i := range t.Records {
		r := t.Records[i]
		if r.Submit < from || r.Submit >= to {
			continue
		}
		r.Submit -= from
		out.Records = append(out.Records, r)
	}
	return out
}

// Stats summarizes a trace against a machine size.
type Stats struct {
	Jobs        int
	Span        int64 // seconds from first submit to last completion
	NodeSeconds int64
	MaxProcs    int
	Utilization float64 // NodeSeconds / (machineNodes * span)
	MeanRuntime float64
	MeanProcs   float64
}

// Summarize computes Stats relative to a machine of machineNodes nodes over
// the given period (seconds). If period is 0, the trace span is used.
func (t *Trace) Summarize(machineNodes int, period int64) Stats {
	var s Stats
	var runSum, procSum float64
	for i := range t.Records {
		r := &t.Records[i]
		p := r.procs()
		if p <= 0 || r.Run < 0 {
			continue
		}
		s.Jobs++
		s.NodeSeconds = satAdd(s.NodeSeconds, int64(p)*r.Run)
		if p > s.MaxProcs {
			s.MaxProcs = p
		}
		if end := r.Submit + r.Run; end > s.Span {
			s.Span = end
		}
		runSum += float64(r.Run)
		procSum += float64(p)
	}
	if period == 0 {
		period = s.Span
	}
	if machineNodes > 0 && period > 0 {
		s.Utilization = float64(s.NodeSeconds) / (float64(machineNodes) * float64(period))
	}
	if s.Jobs > 0 {
		s.MeanRuntime = runSum / float64(s.Jobs)
		s.MeanProcs = procSum / float64(s.Jobs)
	}
	return s
}
