package csf

import (
	"math"
	"testing"

	"repro/internal/nodepool"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

func newService(t *testing.T, capacity int) (*ProvisionService, *sim.Engine) {
	t.Helper()
	engine := sim.New()
	pool, err := nodepool.NewPool(capacity)
	if err != nil {
		t.Fatal(err)
	}
	acct := metrics.NewAccountant(engine.Now)
	return NewProvisionService(pool, acct, policy.GrantOrReject, DefaultNodeSetupSeconds), engine
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		Inexistent: "inexistent",
		Planning:   "planning",
		Created:    "created",
		Running:    "running",
		Destroyed:  "destroyed",
		State(42):  "State(42)",
	}
	for s, w := range want {
		if got := s.String(); got != w {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, w)
		}
	}
}

func TestLifecycleHappyPath(t *testing.T) {
	var l Lifecycle
	if l.State() != Inexistent {
		t.Fatalf("initial state = %v", l.State())
	}
	steps := []struct {
		f    func() error
		want State
	}{
		{l.Apply, Planning},
		{l.Deploy, Created},
		{l.Start, Running},
		{l.Destroy, Destroyed},
	}
	for _, s := range steps {
		if err := s.f(); err != nil {
			t.Fatalf("transition to %v: %v", s.want, err)
		}
		if l.State() != s.want {
			t.Fatalf("state = %v, want %v", l.State(), s.want)
		}
	}
}

func TestLifecycleRejectsInvalidTransitions(t *testing.T) {
	var l Lifecycle
	if err := l.Deploy(); err == nil {
		t.Error("Deploy from Inexistent succeeded")
	}
	if err := l.Start(); err == nil {
		t.Error("Start from Inexistent succeeded")
	}
	if err := l.Destroy(); err == nil {
		t.Error("Destroy from Inexistent succeeded")
	}
	_ = l.Apply()
	if err := l.Apply(); err == nil {
		t.Error("double Apply succeeded")
	}
}

func TestRequestInitialAllocatesAndAccounts(t *testing.T) {
	s, _ := newService(t, 100)
	if err := s.RequestInitial("tre-a", 40); err != nil {
		t.Fatalf("RequestInitial: %v", err)
	}
	if s.Pool().Held("tre-a") != 40 {
		t.Errorf("held = %d, want 40", s.Pool().Held("tre-a"))
	}
	if s.Accountant().Held("tre-a") != 40 {
		t.Errorf("accounted held = %d, want 40", s.Accountant().Held("tre-a"))
	}
}

func TestRequestInitialFailsBeyondCapacity(t *testing.T) {
	s, _ := newService(t, 10)
	if err := s.RequestInitial("tre-a", 11); err == nil {
		t.Error("oversized initial request succeeded")
	}
}

func TestRequestDynamicGrantOrReject(t *testing.T) {
	s, _ := newService(t, 100)
	if got := s.RequestDynamic("tre-a", 60); got != 60 {
		t.Errorf("granted = %d, want 60", got)
	}
	// Only 40 free now; grant-or-reject refuses 50.
	if got := s.RequestDynamic("tre-b", 50); got != 0 {
		t.Errorf("granted = %d, want 0 (rejected)", got)
	}
	if s.RejectedRequests() != 1 {
		t.Errorf("rejected = %d, want 1", s.RejectedRequests())
	}
	if got := s.RequestDynamic("tre-b", 40); got != 40 {
		t.Errorf("granted = %d, want 40", got)
	}
}

func TestRequestDynamicBestEffort(t *testing.T) {
	engine := sim.New()
	pool, _ := nodepool.NewPool(50)
	acct := metrics.NewAccountant(engine.Now)
	s := NewProvisionService(pool, acct, policy.BestEffort, DefaultNodeSetupSeconds)
	if got := s.RequestDynamic("a", 80); got != 50 {
		t.Errorf("best-effort granted = %d, want 50", got)
	}
}

func TestReleaseReturnsNodes(t *testing.T) {
	s, engine := newService(t, 100)
	_ = s.RequestInitial("a", 30)
	engine.Advance(3600)
	if err := s.Release("a", 10); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.Pool().Free() != 80 {
		t.Errorf("free = %d, want 80", s.Pool().Free())
	}
	if err := s.Release("a", 100); err == nil {
		t.Error("over-release succeeded")
	}
}

func TestManagementOverhead(t *testing.T) {
	s, engine := newService(t, 1000)
	_ = s.RequestInitial("a", 100)
	engine.Advance(3600)
	if err := s.Release("a", 100); err != nil {
		t.Fatal(err)
	}
	// 200 adjusted nodes at 15.743 s each over 2 hours.
	total, perHour := s.ManagementOverhead(2 * 3600)
	wantTotal := 200 * DefaultNodeSetupSeconds
	if math.Abs(total-wantTotal) > 1e-9 {
		t.Errorf("total overhead = %g, want %g", total, wantTotal)
	}
	if math.Abs(perHour-wantTotal/2) > 1e-9 {
		t.Errorf("per-hour overhead = %g, want %g", perHour, wantTotal/2)
	}
	if _, ph := s.ManagementOverhead(0); ph != 0 {
		t.Errorf("per-hour with zero horizon = %g, want 0", ph)
	}
}

func TestFrameworkCreateTRELifecycle(t *testing.T) {
	s, engine := newService(t, 100)
	f := NewFramework(engine, s)
	f.DeployDelay = 30
	f.StartDelay = 10
	started := false
	tre, err := f.CreateTRE("htc-a", "HTC", func() { started = true })
	if err != nil {
		t.Fatalf("CreateTRE: %v", err)
	}
	if tre.Lifecycle.State() != Planning {
		t.Errorf("state after apply = %v, want planning", tre.Lifecycle.State())
	}
	engine.Run(29)
	if tre.Lifecycle.State() != Planning {
		t.Errorf("state before deploy = %v, want planning", tre.Lifecycle.State())
	}
	engine.Run(35)
	if tre.Lifecycle.State() != Created {
		t.Errorf("state after deploy = %v, want created", tre.Lifecycle.State())
	}
	engine.Run(45)
	if tre.Lifecycle.State() != Running || !started {
		t.Errorf("state = %v, started = %v; want running,true", tre.Lifecycle.State(), started)
	}
	if f.TRECount() != 1 {
		t.Errorf("TRECount = %d, want 1", f.TRECount())
	}
}

func TestFrameworkRejectsDuplicateNames(t *testing.T) {
	s, engine := newService(t, 100)
	f := NewFramework(engine, s)
	if _, err := f.CreateTRE("x", "HTC", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateTRE("x", "MTC", nil); err == nil {
		t.Error("duplicate TRE name accepted")
	}
}

func TestFrameworkDestroyReleasesNodes(t *testing.T) {
	s, engine := newService(t, 100)
	f := NewFramework(engine, s)
	_, err := f.CreateTRE("x", "HTC", nil)
	if err != nil {
		t.Fatal(err)
	}
	engine.RunAll() // reach Running
	if err := s.RequestInitial("x", 25); err != nil {
		t.Fatal(err)
	}
	if err := f.DestroyTRE("x"); err != nil {
		t.Fatalf("DestroyTRE: %v", err)
	}
	if s.Pool().Free() != 100 {
		t.Errorf("free after destroy = %d, want 100", s.Pool().Free())
	}
	tre, ok := f.Get("x")
	if !ok || tre.Lifecycle.State() != Destroyed {
		t.Error("TRE not destroyed")
	}
}

func TestFrameworkDestroyErrors(t *testing.T) {
	s, engine := newService(t, 100)
	f := NewFramework(engine, s)
	if err := f.DestroyTRE("ghost"); err == nil {
		t.Error("destroying unknown TRE succeeded")
	}
	_, _ = f.CreateTRE("y", "HTC", nil)
	// Still Planning: cannot destroy before Running.
	if err := f.DestroyTRE("y"); err == nil {
		t.Error("destroying non-running TRE succeeded")
	}
}
