// Package csf implements the Common Service Framework of DawningCloud
// (paper Section 3.1.2): the layer the resource provider runs to manage
// thin runtime environments. It provides
//
//   - the TRE lifecycle state machine (Inexistent -> Planning -> Created ->
//     Running -> Destroyed) with deployment emulation,
//   - the resource provision service, which resolves dynamic resource
//     negotiation against the cloud's node pool under a provision policy
//     and accounts every adjustment's setup cost, and
//   - the framework registry tying both together.
//
// Thin runtime environments (internal/tre) only implement workload-specific
// behaviour and delegate everything here, which is the paper's TRE concept.
package csf

import (
	"fmt"

	"repro/internal/nodepool"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// DefaultNodeSetupSeconds is the measured total cost of adjusting one node
// (stopping and uninstalling the previous RE packages, installing and
// starting new ones) the paper reports from the real Dawning 5000 test.
const DefaultNodeSetupSeconds = 15.743

// State is a TRE lifecycle phase (paper Figure 4).
type State int

const (
	// Inexistent is the initial state before a provider applies.
	Inexistent State = iota
	// Planning means the request was validated and deployment is queued.
	Planning
	// Created means the TRE software is deployed but not started.
	Created
	// Running means the TRE serves end users.
	Running
	// Destroyed is the terminal state after teardown.
	Destroyed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Inexistent:
		return "inexistent"
	case Planning:
		return "planning"
	case Created:
		return "created"
	case Running:
		return "running"
	case Destroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Lifecycle is the per-TRE state machine. The zero value starts Inexistent.
type Lifecycle struct {
	state State
}

// State reports the current phase.
func (l *Lifecycle) State() State { return l.state }

func (l *Lifecycle) transition(from, to State) error {
	if l.state != from {
		return fmt.Errorf("csf: invalid transition %v -> %v (current %v)", from, to, l.state)
	}
	l.state = to
	return nil
}

// Apply validates a provider's request and moves to Planning.
func (l *Lifecycle) Apply() error { return l.transition(Inexistent, Planning) }

// Deploy records successful package deployment and moves to Created.
func (l *Lifecycle) Deploy() error { return l.transition(Planning, Created) }

// Start brings the TRE components up and moves to Running.
func (l *Lifecycle) Start() error { return l.transition(Created, Running) }

// Destroy tears the TRE down from Running.
func (l *Lifecycle) Destroy() error { return l.transition(Running, Destroyed) }

// ProvisionService is the CSF's resource provision service: the single
// point where runtime environments obtain and release nodes. It enforces
// pool capacity, applies the provision policy, and accounts consumption
// plus adjustment setup costs.
type ProvisionService struct {
	pool      *nodepool.Pool
	acct      *metrics.Accountant
	policy    policy.ProvisionPolicy
	setupCost float64 // seconds per adjusted node

	rejected int // dynamic requests refused for lack of capacity
}

// NewProvisionService builds a provision service over a pool, accounting
// into acct under the given provision policy. setupCost is the per-node
// adjustment cost in seconds (use DefaultNodeSetupSeconds).
func NewProvisionService(pool *nodepool.Pool, acct *metrics.Accountant, pp policy.ProvisionPolicy, setupCost float64) *ProvisionService {
	return &ProvisionService{pool: pool, acct: acct, policy: pp, setupCost: setupCost}
}

// Pool exposes the underlying node pool (read-only use expected).
func (s *ProvisionService) Pool() *nodepool.Pool { return s.pool }

// Accountant exposes the consumption ledger.
func (s *ProvisionService) Accountant() *metrics.Accountant { return s.acct }

// RequestInitial grants a TRE its never-reclaimed startup lease. Initial
// resources must be available; the TRE cannot start otherwise.
func (s *ProvisionService) RequestInitial(owner string, n int) error {
	if err := s.pool.Allocate(owner, n); err != nil {
		return fmt.Errorf("csf: initial provision for %s: %w", owner, err)
	}
	s.acct.Acquire(owner, n)
	return nil
}

// RequestDynamic resolves a dynamic resource request under the provision
// policy: it returns the granted node count, zero when rejected.
func (s *ProvisionService) RequestDynamic(owner string, n int) int {
	granted := s.policy.Grant(n, s.pool.Free())
	if granted <= 0 {
		s.rejected++
		return 0
	}
	if err := s.pool.Allocate(owner, granted); err != nil {
		// Grant computed from Free, so allocation cannot fail; treat a
		// failure as a policy rejection to stay robust.
		s.rejected++
		return 0
	}
	s.acct.Acquire(owner, granted)
	return granted
}

// Release passively reclaims n nodes from owner (the paper's policy always
// accepts releases).
func (s *ProvisionService) Release(owner string, n int) error {
	if err := s.pool.Release(owner, n); err != nil {
		return fmt.Errorf("csf: release from %s: %w", owner, err)
	}
	if err := s.acct.Release(owner, n); err != nil {
		return fmt.Errorf("csf: release accounting for %s: %w", owner, err)
	}
	return nil
}

// RejectedRequests reports how many dynamic requests the policy refused.
func (s *ProvisionService) RejectedRequests() int { return s.rejected }

// SetupCostSeconds converts an adjusted-node count into setup seconds.
func (s *ProvisionService) SetupCostSeconds(nodesAdjusted int) float64 {
	return float64(nodesAdjusted) * s.setupCost
}

// ManagementOverhead reports the provider-side setup work implied by all
// adjustments so far, in seconds, and the average per hour over the given
// horizon (paper Section 4.5.4 reports ~341 s/hour for DawningCloud).
func (s *ProvisionService) ManagementOverhead(horizon sim.Time) (total, perHour float64) {
	total = s.SetupCostSeconds(s.acct.TotalNodesAdjusted())
	hours := float64(horizon) / 3600
	if hours > 0 {
		perHour = total / hours
	}
	return total, perHour
}

// TRE is the lifecycle record the framework keeps per runtime environment.
type TRE struct {
	Name      string
	Class     string // "HTC" or "MTC"
	Lifecycle Lifecycle
}

// Framework is the CSF registry: it creates TREs on demand for service
// providers and manages their lifecycle, emulating the deployment service
// and agents with configurable delays.
type Framework struct {
	engine    *sim.Engine
	provision *ProvisionService
	// DeployDelay emulates the deployment service downloading and
	// installing TRE packages (seconds of virtual time).
	DeployDelay sim.Time
	// StartDelay emulates agents starting TRE components.
	StartDelay sim.Time

	tres map[string]*TRE
}

// NewFramework builds a CSF over an engine and provision service.
func NewFramework(engine *sim.Engine, prov *ProvisionService) *Framework {
	return &Framework{engine: engine, provision: prov, tres: make(map[string]*TRE)}
}

// Provision exposes the resource provision service.
func (f *Framework) Provision() *ProvisionService { return f.provision }

// CreateTRE walks a new TRE through Planning -> Created -> Running,
// scheduling deployment and start delays on the virtual clock, then calls
// onRunning. It fails if the name is taken.
func (f *Framework) CreateTRE(name, class string, onRunning func()) (*TRE, error) {
	if _, dup := f.tres[name]; dup {
		return nil, fmt.Errorf("csf: TRE %q already exists", name)
	}
	t := &TRE{Name: name, Class: class}
	if err := t.Lifecycle.Apply(); err != nil {
		return nil, err
	}
	f.tres[name] = t
	f.engine.Schedule(f.DeployDelay, func() {
		if err := t.Lifecycle.Deploy(); err != nil {
			panic(err) // unreachable: transitions are framework-driven
		}
		f.engine.Schedule(f.StartDelay, func() {
			if err := t.Lifecycle.Start(); err != nil {
				panic(err)
			}
			if onRunning != nil {
				onRunning()
			}
		})
	})
	return t, nil
}

// DestroyTRE tears a running TRE down, releasing all nodes it still holds.
func (f *Framework) DestroyTRE(name string) error {
	t, ok := f.tres[name]
	if !ok {
		return fmt.Errorf("csf: TRE %q not found", name)
	}
	if err := t.Lifecycle.Destroy(); err != nil {
		return err
	}
	if held := f.provision.Pool().Held(name); held > 0 {
		if err := f.provision.Release(name, held); err != nil {
			return err
		}
	}
	return nil
}

// TRECount reports how many TREs the framework has created (any state).
func (f *Framework) TRECount() int { return len(f.tres) }

// Get returns a TRE record by name.
func (f *Framework) Get(name string) (*TRE, bool) {
	t, ok := f.tres[name]
	return t, ok
}
