package job

import (
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{HTC, "HTC"},
		{MTC, "MTC"},
		{Class(7), "Class(7)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Class(%d).String() = %q, want %q", int(tt.c), got, tt.want)
		}
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		j       Job
		wantErr bool
	}{
		{"valid", Job{ID: 1, Nodes: 4, Runtime: 100}, false},
		{"zero nodes", Job{ID: 1, Nodes: 0, Runtime: 100}, true},
		{"negative nodes", Job{ID: 1, Nodes: -2, Runtime: 100}, true},
		{"negative runtime", Job{ID: 1, Nodes: 1, Runtime: -1}, true},
		{"negative submit", Job{ID: 1, Nodes: 1, Submit: -5}, true},
		{"self dependency", Job{ID: 1, Nodes: 1, Deps: []int{1}}, true},
		{"zero runtime ok", Job{ID: 1, Nodes: 1, Runtime: 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.j.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestValidateAll(t *testing.T) {
	good := []Job{
		{ID: 1, Nodes: 1, Runtime: 10},
		{ID: 2, Nodes: 2, Runtime: 20, Deps: []int{1}},
	}
	if err := ValidateAll(good); err != nil {
		t.Errorf("ValidateAll(good) = %v, want nil", err)
	}
	dup := []Job{{ID: 1, Nodes: 1}, {ID: 1, Nodes: 1}}
	if err := ValidateAll(dup); err == nil {
		t.Error("ValidateAll with duplicate IDs succeeded")
	}
	dangling := []Job{{ID: 1, Nodes: 1, Deps: []int{99}}}
	if err := ValidateAll(dangling); err == nil {
		t.Error("ValidateAll with dangling dependency succeeded")
	}
}

func TestNodeSeconds(t *testing.T) {
	j := Job{Nodes: 8, Runtime: 3600}
	if got := j.NodeSeconds(); got != 28800 {
		t.Errorf("NodeSeconds() = %d, want 28800", got)
	}
}

func TestSortBySubmit(t *testing.T) {
	jobs := []Job{
		{ID: 3, Submit: 100, Nodes: 1},
		{ID: 1, Submit: 50, Nodes: 1},
		{ID: 2, Submit: 100, Nodes: 1},
	}
	SortBySubmit(jobs)
	wantIDs := []int{1, 2, 3}
	for i, want := range wantIDs {
		if jobs[i].ID != want {
			t.Errorf("jobs[%d].ID = %d, want %d", i, jobs[i].ID, want)
		}
	}
}

func TestSpan(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 100, Runtime: 50, Nodes: 1},
		{ID: 2, Submit: 20, Runtime: 10, Nodes: 1},
		{ID: 3, Submit: 80, Runtime: 500, Nodes: 1},
	}
	start, end := Span(jobs)
	if start != 20 {
		t.Errorf("start = %d, want 20", start)
	}
	if end != 580 {
		t.Errorf("end = %d, want 580", end)
	}
	if s, e := Span(nil); s != 0 || e != 0 {
		t.Errorf("Span(nil) = %d,%d, want 0,0", s, e)
	}
}

func TestTotalNodeSecondsAndMaxNodes(t *testing.T) {
	jobs := []Job{
		{ID: 1, Nodes: 2, Runtime: 10},
		{ID: 2, Nodes: 5, Runtime: 4},
	}
	if got := TotalNodeSeconds(jobs); got != 40 {
		t.Errorf("TotalNodeSeconds = %d, want 40", got)
	}
	if got := MaxNodes(jobs); got != 5 {
		t.Errorf("MaxNodes = %d, want 5", got)
	}
	if got := MaxNodes(nil); got != 0 {
		t.Errorf("MaxNodes(nil) = %d, want 0", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	var q Queue
	a := &Job{ID: 1, Nodes: 2}
	b := &Job{ID: 2, Nodes: 3}
	c := &Job{ID: 3, Nodes: 4}
	q.Push(a)
	q.Push(b)
	q.Push(c)
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	if q.At(0) != a || q.At(1) != b || q.At(2) != c {
		t.Error("queue order does not match push order")
	}
	got := q.Remove(1)
	if got != b {
		t.Errorf("Remove(1) = job %d, want job 2", got.ID)
	}
	if q.Len() != 2 || q.At(0) != a || q.At(1) != c {
		t.Error("order broken after Remove")
	}
}

func TestQueueDemands(t *testing.T) {
	var q Queue
	q.Push(&Job{ID: 1, Nodes: 2})
	q.Push(&Job{ID: 2, Nodes: 7})
	q.Push(&Job{ID: 3, Nodes: 3})
	if got := q.AccumulatedDemand(); got != 12 {
		t.Errorf("AccumulatedDemand = %d, want 12", got)
	}
	if got := q.LargestDemand(); got != 7 {
		t.Errorf("LargestDemand = %d, want 7", got)
	}
}

func TestQueueEmptyDemands(t *testing.T) {
	var q Queue
	if q.AccumulatedDemand() != 0 || q.LargestDemand() != 0 {
		t.Error("empty queue demands should be 0")
	}
}

func TestQueueRemoveAll(t *testing.T) {
	var q Queue
	for i := 1; i <= 5; i++ {
		q.Push(&Job{ID: i, Nodes: 1})
	}
	q.RemoveAll([]int{0, 2, 4})
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if q.At(0).ID != 2 || q.At(1).ID != 4 {
		t.Errorf("remaining = %d,%d, want 2,4", q.At(0).ID, q.At(1).ID)
	}
	q.RemoveAll(nil)
	if q.Len() != 2 {
		t.Error("RemoveAll(nil) changed the queue")
	}
}

func TestQueueSnapshotIsCopy(t *testing.T) {
	var q Queue
	q.Push(&Job{ID: 1, Nodes: 1})
	snap := q.Snapshot()
	q.Push(&Job{ID: 2, Nodes: 1})
	if len(snap) != 1 {
		t.Error("snapshot mutated by later Push")
	}
}

// Property: accumulated demand equals the sum of individual demands for any
// sequence of pushes and removals from the front.
func TestPropertyQueueDemandConsistency(t *testing.T) {
	f := func(sizes []uint8) bool {
		var q Queue
		sum := 0
		for i, s := range sizes {
			n := int(s%32) + 1
			q.Push(&Job{ID: i, Nodes: n})
			sum += n
		}
		for q.Len() > 3 {
			sum -= q.At(0).Nodes
			q.Remove(0)
		}
		return q.AccumulatedDemand() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SortBySubmit yields non-decreasing submit times and preserves
// the multiset of IDs.
func TestPropertySortBySubmit(t *testing.T) {
	f := func(submits []uint16) bool {
		jobs := make([]Job, len(submits))
		idSet := make(map[int]bool, len(submits))
		for i, s := range submits {
			jobs[i] = Job{ID: i, Submit: int64(s), Nodes: 1}
			idSet[i] = true
		}
		SortBySubmit(jobs)
		for i := 1; i < len(jobs); i++ {
			if jobs[i-1].Submit > jobs[i].Submit {
				return false
			}
		}
		for i := range jobs {
			if !idSet[jobs[i].ID] {
				return false
			}
			delete(idSet, jobs[i].ID)
		}
		return len(idSet) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
