// Package job defines the workload unit shared by every subsystem: a job
// (an independent HTC batch job or a single MTC workflow task) together
// with a submission queue that preserves arrival order.
//
// Time quantities are virtual-clock seconds (see internal/sim). Resource
// demand is an integer node count: the paper scales every trace to a
// one-CPU-per-node configuration, so nodes are the only resource dimension.
package job

import (
	"fmt"
	"sort"
)

// Class distinguishes the two workload families the paper consolidates.
type Class int

const (
	// HTC jobs are independent parallel/sequential batch jobs.
	HTC Class = iota
	// MTC jobs are workflow tasks with dependencies and short runtimes.
	MTC
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case HTC:
		return "HTC"
	case MTC:
		return "MTC"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Job is a unit of work. Jobs are immutable once generated; scheduling
// state lives in the runtime environments, not here.
type Job struct {
	// ID is unique within one workload.
	ID int
	// Name is a human-readable label (task type for workflow tasks).
	Name string
	// Class records whether this is an HTC batch job or an MTC task.
	Class Class
	// Submit is the arrival time in seconds since the workload epoch.
	// For MTC tasks it is the submission time of the enclosing workflow;
	// dependency release decides when the task becomes runnable.
	Submit int64
	// Runtime is the execution duration in seconds once started.
	Runtime int64
	// Nodes is the resource demand in nodes (>= 1).
	Nodes int
	// Deps lists IDs of jobs that must complete before this one may start.
	// Empty for independent HTC jobs.
	Deps []int
	// Workflow names the enclosing workflow; empty for independent jobs.
	Workflow string
}

// Validate reports the first structural problem with j, or nil.
func (j *Job) Validate() error {
	if j.Nodes < 1 {
		return fmt.Errorf("job %d: nodes %d < 1", j.ID, j.Nodes)
	}
	if j.Runtime < 0 {
		return fmt.Errorf("job %d: negative runtime %d", j.ID, j.Runtime)
	}
	if j.Submit < 0 {
		return fmt.Errorf("job %d: negative submit time %d", j.ID, j.Submit)
	}
	for _, d := range j.Deps {
		if d == j.ID {
			return fmt.Errorf("job %d: depends on itself", j.ID)
		}
	}
	return nil
}

// NodeSeconds is the job's raw resource demand (nodes x runtime).
func (j *Job) NodeSeconds() int64 {
	return int64(j.Nodes) * j.Runtime
}

// Clone returns a deep copy of the job: the Deps slice gets its own
// backing array, so mutating the copy can never reach the original.
func (j *Job) Clone() Job {
	out := *j
	if j.Deps != nil {
		out.Deps = make([]int, len(j.Deps))
		copy(out.Deps, j.Deps)
	}
	return out
}

// CloneAll deep-copies a job slice. Concurrent simulation runs each get
// their own copy so no run ever aliases another's workload.
func CloneAll(jobs []Job) []Job {
	if jobs == nil {
		return nil
	}
	out := make([]Job, len(jobs))
	for i := range jobs {
		out[i] = jobs[i].Clone()
	}
	return out
}

// ValidateAll checks every job in a workload and that IDs are unique.
func ValidateAll(jobs []Job) error {
	seen := make(map[int]bool, len(jobs))
	for i := range jobs {
		if err := jobs[i].Validate(); err != nil {
			return err
		}
		if seen[jobs[i].ID] {
			return fmt.Errorf("duplicate job ID %d", jobs[i].ID)
		}
		seen[jobs[i].ID] = true
	}
	for i := range jobs {
		for _, d := range jobs[i].Deps {
			if !seen[d] {
				return fmt.Errorf("job %d: dependency %d not in workload", jobs[i].ID, d)
			}
		}
	}
	return nil
}

// SortBySubmit orders jobs by (Submit, ID) in place.
func SortBySubmit(jobs []Job) {
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Submit != jobs[k].Submit {
			return jobs[i].Submit < jobs[k].Submit
		}
		return jobs[i].ID < jobs[k].ID
	})
}

// Span reports the [min submit, max completion-if-run-immediately] window
// of a workload, useful for sizing simulation horizons. It returns 0,0 for
// an empty slice.
func Span(jobs []Job) (start, end int64) {
	if len(jobs) == 0 {
		return 0, 0
	}
	start = jobs[0].Submit
	for i := range jobs {
		if jobs[i].Submit < start {
			start = jobs[i].Submit
		}
		if t := jobs[i].Submit + jobs[i].Runtime; t > end {
			end = t
		}
	}
	return start, end
}

// TotalNodeSeconds sums the raw demand of a workload.
func TotalNodeSeconds(jobs []Job) int64 {
	var total int64
	for i := range jobs {
		total += jobs[i].NodeSeconds()
	}
	return total
}

// MaxNodes reports the largest single-job node demand, 0 for empty input.
func MaxNodes(jobs []Job) int {
	m := 0
	for i := range jobs {
		if jobs[i].Nodes > m {
			m = jobs[i].Nodes
		}
	}
	return m
}

// Queue is a FIFO of pending jobs preserving arrival order. The zero value
// is an empty queue ready to use.
type Queue struct {
	entries []*Job
}

// Push appends a job to the queue tail.
func (q *Queue) Push(j *Job) { q.entries = append(q.entries, j) }

// Len reports the number of queued jobs.
func (q *Queue) Len() int { return len(q.entries) }

// At returns the i-th queued job in arrival order.
func (q *Queue) At(i int) *Job { return q.entries[i] }

// Remove deletes the i-th entry, preserving the order of the rest.
func (q *Queue) Remove(i int) *Job {
	j := q.entries[i]
	q.entries = append(q.entries[:i], q.entries[i+1:]...)
	return j
}

// RemoveAll deletes the entries at the given sorted index list.
func (q *Queue) RemoveAll(sortedIdx []int) {
	if len(sortedIdx) == 0 {
		return
	}
	kept := q.entries[:0]
	k := 0
	for i, e := range q.entries {
		if k < len(sortedIdx) && sortedIdx[k] == i {
			k++
			continue
		}
		kept = append(kept, e)
	}
	// Zero the tail so removed jobs are collectable.
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
}

// AccumulatedDemand sums node demand over all queued jobs: the numerator of
// the paper's "ratio of obtaining resources".
func (q *Queue) AccumulatedDemand() int {
	total := 0
	for _, e := range q.entries {
		total += e.Nodes
	}
	return total
}

// LargestDemand reports the biggest single-job node demand in the queue.
func (q *Queue) LargestDemand() int {
	m := 0
	for _, e := range q.entries {
		if e.Nodes > m {
			m = e.Nodes
		}
	}
	return m
}

// Snapshot returns a copy of the queued jobs in order. The caller must
// not mutate the returned jobs.
func (q *Queue) Snapshot() []*Job {
	out := make([]*Job, len(q.entries))
	copy(out, q.entries)
	return out
}

// View returns the queue's backing slice in arrival order, valid only
// until the next queue mutation (Push/Remove/RemoveAll): the hot
// scheduling path reads it in place instead of copying a Snapshot per
// scan. Callers that remove selected entries must copy the selected jobs
// out before calling RemoveAll, which compacts this slice.
func (q *Queue) View() []*Job { return q.entries }
