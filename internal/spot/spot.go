// Package spot implements "ssp-spot", a spot-priced variant of the SSP
// usage model: each service provider leases its fixed-size virtual
// cluster on a spot market instead of on-demand. An hourly spot price
// follows a seeded mean-reverting walk; while the price stays at or
// below the provider's bid the cluster is held and jobs dispatch
// First-Fit (the paper's HTC policy), and whenever the price rises above
// the bid the whole lease is revoked — running jobs are killed and
// requeued, and the provider
// re-acquires the cluster once the price falls back. Interruptions show
// up in the paper's own metrics: lost completions, extra node
// adjustments and the management overhead they imply.
//
// The package is also the registry's worked extensibility example: it
// registers itself into registry.Default from init — no enum, switch or
// map in the core packages mentions it — which makes it runnable by name
// from Engine.Run, `dcsim -system ssp-spot` and scenario spec files.
package spot

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/nodepool"
	"repro/internal/csf"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/systems"
)

// Name is the system's registered name.
const Name = "ssp-spot"

// Market parameters of the simplified spot model. Prices are fractions
// of the on-demand rate and follow a mean-reverting hourly walk
// (discrete Ornstein-Uhlenbeck): excursions above the bid interrupt the
// lease for a few hours and then revert, the episodic shape of real spot
// markets. The process starts below the bid so every provider acquires
// its cluster at first submission.
const (
	meanPrice  = 0.30 // long-run price level (and the starting price)
	bidPrice   = 0.42 // the provider's standing bid
	priceStep  = 0.06 // hourly shock standard deviation
	meanRevert = 0.20 // pull toward meanPrice per hour
	minPrice   = 0.05
	maxPrice   = 1.00
)

func init() {
	registry.Default.MustRegister(Name, registry.Func(Run))
}

// PriceWalk is the spot market's hourly price process — the
// mean-reverting walk described above — exported so other packages
// (internal/clustersim's spot-price-aware routing policy) can observe a
// deterministic per-instance price series without running a full
// ssp-spot simulation. The zero value is unusable; construct with
// NewPriceWalk.
type PriceWalk struct {
	price float64
	rng   *rand.Rand
}

// NewPriceWalk returns a walk over its own seeded random source,
// starting at the long-run mean price (below the standing bid).
func NewPriceWalk(seed int64) *PriceWalk {
	return &PriceWalk{price: meanPrice, rng: rand.New(rand.NewSource(seed))}
}

// Price reports the current price as a fraction of the on-demand rate.
func (w *PriceWalk) Price() float64 { return w.price }

// Tick advances the walk by one hour and returns the new price.
func (w *PriceWalk) Tick() float64 {
	w.price += meanRevert*(meanPrice-w.price) + w.rng.NormFloat64()*priceStep
	if w.price < minPrice {
		w.price = minPrice
	}
	if w.price > maxPrice {
		w.price = maxPrice
	}
	return w.price
}

// Bid reports the providers' standing bid price, the threshold the
// spot-price-aware routing policy compares prices against.
func Bid() float64 { return bidPrice }

// Run simulates the spot-priced SSP system. opts.Seed drives the price
// process, so runs are reproducible given identical inputs. The context
// cancels the simulation mid-run; an aborted run returns ctx.Err().
func Run(ctx context.Context, workloads []systems.Workload, opts systems.Options) (systems.Result, error) {
	if err := systems.ValidateWorkloads(workloads); err != nil {
		return systems.Result{}, err
	}
	// Partitioned path: each spot provider only ever leases its own
	// cluster (<= its FixedNodes), so with the derived capacity (sum of
	// FixedNodes) every acquire succeeds in serial and partitioned runs
	// alike. The chunk's options seed is shifted so each workload's
	// price walk keeps its serial seed (opts.Seed + i*7919 + 1 for the
	// i-th workload of the whole run; see Instance).
	if p := opts.PartitionCount(len(workloads)); p > 1 && opts.PoolCapacity == 0 {
		return systems.RunPartitioned(ctx, workloads, opts, systems.PartitionSpec{
			System: Name,
			Open: func(chunk []systems.Workload, first int, o systems.Options) (systems.PartitionInstance, error) {
				capacity := 0
				for i := range chunk {
					capacity += chunk[i].FixedNodes
				}
				o.Seed += int64(first) * 7919
				return Open(capacity, o)
			},
		})
	}
	horizon := opts.HorizonFor(workloads)
	capacity := opts.PoolCapacity
	if capacity == 0 {
		for i := range workloads {
			capacity += workloads[i].FixedNodes
		}
	}
	inst, err := Open(capacity, opts)
	if err != nil {
		return systems.Result{}, err
	}
	for i := range workloads {
		if err := inst.Attach(&workloads[i]); err != nil {
			return systems.Result{}, err
		}
	}
	if err := inst.Engine().RunContext(ctx, horizon); err != nil {
		return systems.Result{}, fmt.Errorf("spot: %s run aborted: %w", Name, err)
	}
	return inst.Finalize(horizon)
}

// Instance is an open ssp-spot simulation that accepts provider
// workloads incrementally; see systems.FixedInstance for the
// open/attach/finalize lifecycle it shares. The i-th attached workload's
// price process is seeded opts.Seed + i*7919 + 1 — a pure function of
// the instance's own seed and membership order, so a federated
// instance's results do not depend on how many sibling instances exist
// or how their events interleave.
type Instance struct {
	opts      systems.Options
	engine    *sim.Engine
	pool      *nodepool.Pool
	acct      *metrics.Accountant
	setup     float64
	prov      *csf.ProvisionService
	providers []*spotProvider
	seen      map[string]bool
}

// Open opens an empty ssp-spot instance over a pool of capacity nodes.
// Attached workloads must already be valid; capacity must be positive.
func Open(capacity int, opts systems.Options) (*Instance, error) {
	engine := sim.New()
	pool, err := nodepool.NewPool(capacity)
	if err != nil {
		return nil, err
	}
	acct := metrics.NewAccountant(engine.Now)
	setup := opts.SetupCost
	if setup == 0 {
		setup = csf.DefaultNodeSetupSeconds
	}
	return &Instance{
		opts:   opts,
		engine: engine,
		pool:   pool,
		acct:   acct,
		setup:  setup,
		prov:   csf.NewProvisionService(pool, acct, opts.Provision, setup),
		seen:   make(map[string]bool),
	}, nil
}

// Engine exposes the instance's simulation engine so an orchestrator can
// drive it through the step primitives.
func (x *Instance) Engine() *sim.Engine { return x.engine }

// PoolLoad snapshots the instance's node pool occupancy.
func (x *Instance) PoolLoad() (inUse, capacity int) {
	return x.pool.InUse(), x.pool.Capacity()
}

// Accounting exposes the instance's accountant for partitioned-run
// merging (see systems.PartitionInstance).
func (x *Instance) Accounting() *metrics.Accountant { return x.acct }

// Attach admits one provider workload: its spot cluster, market ticks
// and job arrivals are scheduled on the instance clock.
func (x *Instance) Attach(wl *systems.Workload) error {
	if x.seen[wl.Name] {
		return fmt.Errorf("systems: duplicate workload name %q", wl.Name)
	}
	p := &spotProvider{
		engine:  x.engine,
		prov:    x.prov,
		wl:      wl,
		size:    wl.FixedNodes,
		walk:    NewPriceWalk(x.opts.Seed + int64(len(x.providers))*7919 + 1),
		running: make(map[int]runningTask),
	}
	if err := p.schedule(); err != nil {
		return fmt.Errorf("spot: workload %s: %w", wl.Name, err)
	}
	x.providers = append(x.providers, p)
	x.seen[wl.Name] = true
	return nil
}

// AttachStream admits one provider workload fed through f instead of a
// materialized schedule; see systems.FixedInstance.AttachStream for the
// streaming contract. The provider's price walk keeps its attach-order
// seed, so streamed and materialized runs see identical markets.
func (x *Instance) AttachStream(wl *systems.Workload, src stream.Source, f *stream.Feeder) error {
	if x.seen[wl.Name] {
		return fmt.Errorf("systems: duplicate workload name %q", wl.Name)
	}
	p := &spotProvider{
		engine:  x.engine,
		prov:    x.prov,
		wl:      wl,
		size:    wl.FixedNodes,
		walk:    NewPriceWalk(x.opts.Seed + int64(len(x.providers))*7919 + 1),
		running: make(map[int]runningTask),
	}
	acquire := func(first sim.Time) {
		p.firstSubmit = first
		x.engine.At(first, func() {
			p.tryAcquire()
			p.stopTick = x.engine.Every(sim.Hour, p.tick)
		})
	}
	switch wl.Class {
	case job.HTC:
		if src == nil {
			src = stream.FromJobs(wl.Jobs)
		}
		err := f.AddJobs(wl.Name, src, acquire, func(j *job.Job) {
			p.submitted++
			p.enqueue(j)
		})
		if err != nil {
			return err
		}
	case job.MTC:
		if src != nil {
			return fmt.Errorf("spot: workload %s: MTC workloads stream as materialized workflows (source must be nil)", wl.Name)
		}
		p.submitted = len(wl.Jobs)
		p.initMTC()
		if err := f.AddActions(wl.Name, p.workflowActions(), acquire); err != nil {
			return err
		}
	default:
		return fmt.Errorf("spot: workload %s: unknown class %v", wl.Name, wl.Class)
	}
	x.providers = append(x.providers, p)
	x.seen[wl.Name] = true
	return nil
}

// Finalize settles open leases at horizon and assembles the Result over
// every attached workload, in attach order.
func (x *Instance) Finalize(horizon sim.Time) (systems.Result, error) {
	x.acct.CloseAll(horizon, true)
	aggs := make([]systems.ProviderAgg, 0, len(x.providers))
	for _, p := range x.providers {
		a := systems.ProviderAgg{
			Name:      p.wl.Name,
			Class:     p.wl.Class,
			Owners:    []string{p.wl.Name},
			Submitted: p.submitted,
			Completed: p.completed,
			Adjusted:  -1,
		}
		if p.wl.Class == job.MTC {
			if span := p.lastDone - p.firstSubmit; span > 0 {
				a.TPS = float64(p.completed) / float64(span)
			}
		}
		aggs = append(aggs, a)
	}
	return systems.BuildResult(Name, horizon, x.acct, x.setup, x.prov.RejectedRequests(), aggs), nil
}

// Window snapshots every attached provider at virtual time t, for
// per-window streamed reports; see systems.FixedInstance.Window. The
// provider counters are live, so "completed" means completed by t when
// the call comes from an event at t.
func (x *Instance) Window(t sim.Time) []systems.ProviderWindow {
	aggs := make([]systems.ProviderAgg, 0, len(x.providers))
	for _, p := range x.providers {
		aggs = append(aggs, systems.ProviderAgg{
			Name:      p.wl.Name,
			Class:     p.wl.Class,
			Owners:    []string{p.wl.Name},
			Completed: p.completed,
			Adjusted:  -1,
		})
	}
	return systems.BuildWindow(x.acct, t, aggs)
}

// runningTask tracks one dispatched job so an interruption can cancel its
// completion and requeue it.
type runningTask struct {
	j  *job.Job
	ev sim.EventID
}

// spotProvider is one service provider's spot cluster: a First-Fit
// queue over FixedNodes nodes that exist only while the market price is
// at or below the bid.
type spotProvider struct {
	engine *sim.Engine
	prov   *csf.ProvisionService
	wl     *systems.Workload
	size   int

	walk *PriceWalk
	held bool
	free int

	queue   []*job.Job
	running map[int]runningTask

	// MTC dependency state.
	unmet      map[int]int
	dependents map[int][]*job.Job

	submitted   int
	completed   int
	dropped     int // jobs wider than the cluster, never runnable
	finished    bool
	stopTick    func()
	firstSubmit sim.Time
	lastDone    sim.Time
}

// schedule wires the provider's market ticks, cluster acquisition and job
// arrivals onto the virtual clock.
func (p *spotProvider) schedule() error {
	wl := p.wl
	p.firstSubmit = wl.FirstSubmit()
	p.engine.At(p.firstSubmit, func() {
		p.tryAcquire()
		p.stopTick = p.engine.Every(sim.Hour, p.tick)
	})
	switch wl.Class {
	case job.HTC:
		p.submitted = len(wl.Jobs)
		p.engine.ScheduleBatch(len(wl.Jobs), func(i int) (sim.Time, func()) {
			j := &wl.Jobs[i]
			return j.Submit, func() { p.enqueue(j) }
		})
	case job.MTC:
		p.submitted = len(wl.Jobs)
		p.initMTC()
		for _, a := range p.workflowActions() {
			p.engine.At(a.At, a.Run)
		}
	default:
		return fmt.Errorf("unknown class %v", wl.Class)
	}
	return nil
}

// initMTC prepares the provider's dependency-tracking state.
func (p *spotProvider) initMTC() {
	p.unmet = make(map[int]int)
	p.dependents = make(map[int][]*job.Job)
}

// workflowActions builds one submission action per workflow of the
// provider's workload, in first-seen order, wiring dependency tracking
// and enqueueing root tasks — shared by the materialized attach loop and
// the streamed action lane.
func (p *spotProvider) workflowActions() []stream.Action {
	groups := systems.WorkflowGroups(p.wl.Jobs)
	actions := make([]stream.Action, 0, len(groups))
	for _, g := range groups {
		tasks := g.Tasks
		actions = append(actions, stream.Action{At: g.At, Delta: g.Delta, Run: func() {
			for _, t := range tasks {
				if len(t.Deps) == 0 {
					continue
				}
				p.unmet[t.ID] = len(t.Deps)
				for _, d := range t.Deps {
					p.dependents[d] = append(p.dependents[d], t)
				}
			}
			for _, t := range tasks {
				if len(t.Deps) == 0 {
					p.enqueue(t)
				}
			}
		}})
	}
	return actions
}

// tick advances the hourly price walk and flips the lease state across
// the bid boundary.
func (p *spotProvider) tick() {
	price := p.walk.Tick()
	switch {
	case p.held && price > bidPrice:
		p.interrupt()
	case !p.held && price <= bidPrice:
		p.tryAcquire()
	}
}

// tryAcquire leases the whole cluster when the price allows; a rejected
// request (capacity-bound pool) is retried at the next tick.
func (p *spotProvider) tryAcquire() {
	if p.held || p.finished || p.walk.Price() > bidPrice {
		return
	}
	granted := p.prov.RequestDynamic(p.wl.Name, p.size)
	if granted < p.size {
		// Grant-or-reject yields 0 here; a best-effort partial grant is
		// returned — spot instances are all-or-nothing.
		if granted > 0 {
			if err := p.prov.Release(p.wl.Name, granted); err != nil {
				panic(fmt.Sprintf("spot: partial release %s: %v", p.wl.Name, err))
			}
		}
		return
	}
	p.held = true
	p.free = p.size
	p.dispatch()
}

// interrupt revokes the lease: running jobs are killed and requeued ahead
// of the waiting queue (they restart from scratch when the cluster comes
// back — no checkpointing).
func (p *spotProvider) interrupt() {
	ids := make([]int, 0, len(p.running))
	for id := range p.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	requeued := make([]*job.Job, 0, len(ids))
	for _, id := range ids {
		rt := p.running[id]
		p.engine.Cancel(rt.ev)
		requeued = append(requeued, rt.j)
	}
	p.running = make(map[int]runningTask)
	p.queue = append(requeued, p.queue...)
	p.held = false
	p.free = 0
	if err := p.prov.Release(p.wl.Name, p.size); err != nil {
		panic(fmt.Sprintf("spot: interrupt release %s: %v", p.wl.Name, err))
	}
}

// enqueue admits a ready job and tries to dispatch. Jobs wider than the
// cluster can never run and are dropped (they stay submitted-but-never-
// completed rather than waiting forever).
func (p *spotProvider) enqueue(j *job.Job) {
	if j.Nodes > p.size {
		p.dropped++
		return
	}
	p.queue = append(p.queue, j)
	p.dispatch()
}

// dispatch starts queued jobs First-Fit — walk the queue in order and
// start everything that fits, the paper's HTC dispatch policy — while
// the cluster is held.
func (p *spotProvider) dispatch() {
	if !p.held || p.free == 0 || len(p.queue) == 0 {
		return
	}
	kept := p.queue[:0]
	for _, j := range p.queue {
		if j.Nodes <= p.free {
			p.free -= j.Nodes
			ev := p.engine.Schedule(j.Runtime, func() { p.complete(j) })
			p.running[j.ID] = runningTask{j: j, ev: ev}
		} else {
			kept = append(kept, j)
		}
	}
	p.queue = kept
}

// complete finishes a job, releases dependents (MTC) and keeps the queue
// draining.
func (p *spotProvider) complete(j *job.Job) {
	delete(p.running, j.ID)
	p.free += j.Nodes
	p.completed++
	p.lastDone = p.engine.Now()
	for _, dep := range p.dependents[j.ID] {
		p.unmet[dep.ID]--
		if p.unmet[dep.ID] == 0 {
			delete(p.unmet, dep.ID)
			p.enqueue(dep)
		}
	}
	delete(p.dependents, j.ID)
	if p.wl.Class == job.MTC && p.completed+p.dropped == p.submitted {
		// Mirror SSP's DestroyOnCompletion: a finished MTC runtime
		// environment releases its lease instead of billing an idle spot
		// cluster to the horizon (tasks stranded behind a dropped
		// dependency keep the environment alive, like a stalled RE).
		p.finish()
		return
	}
	p.dispatch()
}

// finish tears the provider down: the market ticks stop and any held
// lease is returned.
func (p *spotProvider) finish() {
	p.finished = true
	if p.stopTick != nil {
		p.stopTick()
	}
	if p.held {
		p.held = false
		p.free = 0
		if err := p.prov.Release(p.wl.Name, p.size); err != nil {
			panic(fmt.Sprintf("spot: finish release %s: %v", p.wl.Name, err))
		}
	}
}
