package spot

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/systems"
)

func htcWorkload() systems.Workload {
	// Enough jobs spread over days that several hourly price ticks (and
	// with most seeds at least one interruption) fall inside the run.
	var jobs []job.Job
	for i := 0; i < 200; i++ {
		jobs = append(jobs, job.Job{
			ID:      i + 1,
			Class:   job.HTC,
			Submit:  int64(i) * 1800,
			Runtime: 2400,
			Nodes:   (i % 8) + 1,
		})
	}
	return systems.Workload{
		Name:       "spot-htc",
		Class:      job.HTC,
		Jobs:       jobs,
		FixedNodes: 16,
		Params:     policy.HTCDefaults(8, 1.5),
	}
}

func mtcWorkload() systems.Workload {
	// A three-stage chain repeated over independent roots.
	var jobs []job.Job
	id := 0
	for w := 0; w < 5; w++ {
		root := id + 1
		jobs = append(jobs,
			job.Job{ID: root, Class: job.MTC, Submit: 3600, Runtime: 600, Nodes: 2, Workflow: "wf"},
			job.Job{ID: root + 1, Class: job.MTC, Submit: 3600, Runtime: 600, Nodes: 2, Deps: []int{root}, Workflow: "wf"},
			job.Job{ID: root + 2, Class: job.MTC, Submit: 3600, Runtime: 300, Nodes: 1, Deps: []int{root + 1}, Workflow: "wf"},
		)
		id += 3
	}
	return systems.Workload{
		Name:       "spot-mtc",
		Class:      job.MTC,
		Jobs:       jobs,
		FixedNodes: 12,
		Params:     policy.MTCDefaults(4, 8),
	}
}

func TestRegisteredInDefaultRegistry(t *testing.T) {
	if !registry.Default.Has(Name) {
		t.Fatalf("%s not registered in registry.Default", Name)
	}
	_, canonical, err := registry.Default.Resolve("SSP-SPOT")
	if err != nil || canonical != Name {
		t.Errorf("Resolve(SSP-SPOT) = %q, %v", canonical, err)
	}
}

func TestRunCompletesHTCWork(t *testing.T) {
	res, err := Run(context.Background(), []systems.Workload{htcWorkload()}, systems.Options{
		Horizon: 7 * sim.Day, Seed: 42,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.System != Name {
		t.Errorf("System = %q, want %q", res.System, Name)
	}
	p, ok := res.Provider("spot-htc")
	if !ok {
		t.Fatal("provider missing")
	}
	if p.Submitted != 200 {
		t.Errorf("Submitted = %d, want 200", p.Submitted)
	}
	// Interruptions may lose some completions but the bulk must finish
	// over a 7-day window for a ~4-day job stream.
	if p.Completed < 150 {
		t.Errorf("Completed = %d, want >= 150", p.Completed)
	}
	if p.NodeHours <= 0 || p.PeakNodes <= 0 {
		t.Errorf("empty consumption: %.0f node*hours, peak %d", p.NodeHours, p.PeakNodes)
	}
}

func TestRunCompletesMTCWorkflows(t *testing.T) {
	res, err := Run(context.Background(), []systems.Workload{mtcWorkload()}, systems.Options{
		Horizon: 2 * sim.Day, Seed: 5,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	p, _ := res.Provider("spot-mtc")
	if p.Completed != 15 {
		t.Errorf("Completed = %d, want 15 (all tasks within a 2-day window)", p.Completed)
	}
	if p.TasksPerSecond <= 0 {
		t.Error("TasksPerSecond not positive")
	}
	// A finished MTC runtime environment releases its lease (SSP's
	// DestroyOnCompletion semantics): the chains take well under two
	// hours, so billing anywhere near the 48-hour horizon means the idle
	// cluster kept leasing after the work drained.
	if p.NodeHours > 4*12 {
		t.Errorf("NodeHours = %.0f; finished spot RE kept billing (want <= %d)", p.NodeHours, 4*12)
	}
}

func TestDeterministicPerSeedAndSensitiveToSeed(t *testing.T) {
	opts := systems.Options{Horizon: 14 * sim.Day, Seed: 11}
	a, err := Run(context.Background(), []systems.Workload{htcWorkload()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), []systems.Workload{htcWorkload()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different results")
	}
	// Different seeds should differ somewhere across a 14-day window
	// (different price paths). Check a few seeds to avoid flakiness.
	varied := false
	for seed := int64(12); seed < 17; seed++ {
		c, err := Run(context.Background(), []systems.Workload{htcWorkload()},
			systems.Options{Horizon: 14 * sim.Day, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, c) {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("five different seeds all reproduced the same run; price process looks seed-insensitive")
	}
}

func TestInterruptionsCostAdjustmentsVersusSSP(t *testing.T) {
	// Across a spread of seeds, at least one 14-day run must see an
	// interruption, visible as more node adjustments than plain SSP's
	// startup/teardown pair.
	wl := htcWorkload()
	ssp, err := systems.RunSSP(context.Background(), []systems.Workload{wl.Clone()}, systems.Options{Horizon: 14 * sim.Day})
	if err != nil {
		t.Fatal(err)
	}
	sawInterruption := false
	for seed := int64(1); seed <= 8 && !sawInterruption; seed++ {
		res, err := Run(context.Background(), []systems.Workload{wl.Clone()},
			systems.Options{Horizon: 14 * sim.Day, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalNodesAdjusted > ssp.TotalNodesAdjusted {
			sawInterruption = true
		}
	}
	if !sawInterruption {
		t.Error("no seed in 1..8 produced a spot interruption over 14 days")
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, []systems.Workload{htcWorkload()}, systems.Options{Horizon: 14 * sim.Day})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestValidatesWorkloads(t *testing.T) {
	bad := htcWorkload()
	bad.Name = ""
	if _, err := Run(context.Background(), []systems.Workload{bad}, systems.Options{}); err == nil {
		t.Error("invalid workload accepted")
	}
}
