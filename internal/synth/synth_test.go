package synth

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

func TestValidate(t *testing.T) {
	valid := NASAiPSC(1)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Model)
	}{
		{"zero days", func(m *Model) { m.Days = 0 }},
		{"zero nodes", func(m *Model) { m.MachineNodes = 0 }},
		{"util zero", func(m *Model) { m.TargetUtil = 0 }},
		{"util one", func(m *Model) { m.TargetUtil = 1 }},
		{"bad median", func(m *Model) { m.RuntimeMedian = 0 }},
		{"negative sigma", func(m *Model) { m.RuntimeSigma = -1 }},
		{"no sizes", func(m *Model) { m.SizeWeights = nil }},
		{"size too big", func(m *Model) { m.SizeWeights = []SizeWeight{{m.MachineNodes + 1, 1}} }},
		{"negative weight", func(m *Model) { m.SizeWeights = []SizeWeight{{1, -1}} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := NASAiPSC(1)
			tt.mutate(m)
			if err := m.Validate(); err == nil {
				t.Error("invalid model accepted")
			}
		})
	}
}

func checkTrace(t *testing.T, m *Model, jobs []job.Job) {
	t.Helper()
	if err := job.ValidateAll(jobs); err != nil {
		t.Fatalf("invalid workload: %v", err)
	}
	span := m.Span()
	util := float64(job.TotalNodeSeconds(jobs)) / (float64(m.MachineNodes) * float64(span))
	if math.Abs(util-m.TargetUtil) > 0.02 {
		t.Errorf("utilization = %.4f, want %.4f +/- 0.02", util, m.TargetUtil)
	}
	if got := job.MaxNodes(jobs); got != m.MachineNodes {
		t.Errorf("max nodes = %d, want machine size %d", got, m.MachineNodes)
	}
	for i := range jobs {
		if jobs[i].Nodes > m.MachineNodes {
			t.Fatalf("job %d demands %d > machine %d", jobs[i].ID, jobs[i].Nodes, m.MachineNodes)
		}
		if jobs[i].Submit < 0 || jobs[i].Submit >= span {
			t.Fatalf("job %d submit %d outside [0,%d)", jobs[i].ID, jobs[i].Submit, span)
		}
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i-1].Submit > jobs[i].Submit {
			t.Fatal("jobs not sorted by submit time")
		}
	}
}

func TestNASAGeneration(t *testing.T) {
	m := NASAiPSC(42)
	jobs, err := m.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	checkTrace(t, m, jobs)
	// The paper's window has ~2600 jobs; stay in the same order of
	// magnitude so queue dynamics are comparable.
	if len(jobs) < 1000 || len(jobs) > 10000 {
		t.Errorf("job count = %d, want O(2600)", len(jobs))
	}
}

func TestBLUEGeneration(t *testing.T) {
	m := SDSCBlue(42)
	jobs, err := m.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	checkTrace(t, m, jobs)
	if len(jobs) < 500 || len(jobs) > 10000 {
		t.Errorf("job count = %d, want O(2600)", len(jobs))
	}
}

func TestNASAJobsShorterThanBLUE(t *testing.T) {
	nasa, err := NASAiPSC(7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	blue, err := SDSCBlue(7).Generate()
	if err != nil {
		t.Fatal(err)
	}
	meanRun := func(jobs []job.Job) float64 {
		var s float64
		for i := range jobs {
			s += float64(jobs[i].Runtime)
		}
		return s / float64(len(jobs))
	}
	if meanRun(nasa) >= meanRun(blue) {
		t.Errorf("NASA mean runtime %.0f >= BLUE %.0f; paper has NASA short, BLUE long",
			meanRun(nasa), meanRun(blue))
	}
}

func TestBLUESecondWeekBusier(t *testing.T) {
	jobs, err := SDSCBlue(42).Generate()
	if err != nil {
		t.Fatal(err)
	}
	week := int64(7 * 24 * 3600)
	var w1, w2 int64
	for i := range jobs {
		if jobs[i].Submit < week {
			w1 += jobs[i].NodeSeconds()
		} else {
			w2 += jobs[i].NodeSeconds()
		}
	}
	if w2 < w1*5/4 {
		t.Errorf("week2 demand %d not >= 1.25x week1 %d; paper: quiet then busy", w2, w1)
	}
}

func TestNASAWeeksBalanced(t *testing.T) {
	jobs, err := NASAiPSC(42).Generate()
	if err != nil {
		t.Fatal(err)
	}
	week := int64(7 * 24 * 3600)
	var w1, w2 int64
	for i := range jobs {
		if jobs[i].Submit < week {
			w1 += jobs[i].NodeSeconds()
		} else {
			w2 += jobs[i].NodeSeconds()
		}
	}
	ratio := float64(w2) / float64(w1)
	if ratio < 0.6 || ratio > 1.7 {
		t.Errorf("NASA week2/week1 demand = %.2f, want near 1 (smooth trace)", ratio)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a, err := NASAiPSC(99).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NASAiPSC(99).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Submit != b[i].Submit || a[i].Nodes != b[i].Nodes || a[i].Runtime != b[i].Runtime {
			t.Fatalf("job %d differs between runs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, err := NASAiPSC(1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := NASAiPSC(2).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i].Submit != b[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestDailyCycleShapesArrivals(t *testing.T) {
	jobs, err := NASAiPSC(11).Generate()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 24)
	for i := range jobs {
		counts[(jobs[i].Submit/3600)%24]++
	}
	night := counts[2] + counts[3] + counts[4]
	day := counts[10] + counts[11] + counts[12]
	if day <= night {
		t.Errorf("daytime arrivals %d not above night %d; daily cycle missing", day, night)
	}
}

func TestGenerateRejectsInvalidModel(t *testing.T) {
	m := NASAiPSC(1)
	m.Days = -1
	if _, err := m.Generate(); err == nil {
		t.Error("Generate accepted invalid model")
	}
}

func TestFlatCycleWorks(t *testing.T) {
	m := &Model{
		Name: "flat", Seed: 3, Days: 2, MachineNodes: 16, TargetUtil: 0.5,
		RuntimeMedian: 600, RuntimeSigma: 1,
		SizeWeights: []SizeWeight{{1, 1}, {4, 1}},
	}
	jobs, err := m.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	checkTrace(t, m, jobs)
}

// Property: generation never exceeds the machine size and always hits the
// utilization target within tolerance, across seeds.
func TestPropertyCalibrationAcrossSeeds(t *testing.T) {
	f := func(seed int64) bool {
		m := &Model{
			Name: "prop", Seed: seed, Days: 3, MachineNodes: 64, TargetUtil: 0.4,
			RuntimeMedian: 900, RuntimeSigma: 1.2,
			SizeWeights: []SizeWeight{{1, 1}, {8, 1}, {32, 0.5}},
		}
		jobs, err := m.Generate()
		if err != nil {
			return false
		}
		util := float64(job.TotalNodeSeconds(jobs)) / (float64(m.MachineNodes) * float64(m.Span()))
		if math.Abs(util-0.4) > 0.03 {
			return false
		}
		for i := range jobs {
			if jobs[i].Nodes > 64 || jobs[i].Runtime < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerateNASA(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NASAiPSC(int64(i)).Generate(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMillionTaskGeneratesAMillionTasks pins the stress model's contract:
// at least 10⁶ valid tasks over the two-week window, calibrated near its
// utilization target, deterministic per seed. Generation costs a couple
// of seconds, so -short skips it.
func TestMillionTaskGeneratesAMillionTasks(t *testing.T) {
	if testing.Short() {
		t.Skip("million-task generation skipped in -short mode")
	}
	m := MillionTask(1)
	jobs, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 1_000_000 {
		t.Fatalf("generated %d jobs, want >= 1e6", len(jobs))
	}
	util := float64(job.TotalNodeSeconds(jobs)) / (float64(m.MachineNodes) * float64(m.Span()))
	if util < m.TargetUtil-0.02 || util > m.TargetUtil+0.02 {
		t.Errorf("realized utilization %.4f, want %.2f ± 0.02", util, m.TargetUtil)
	}
	again, err := MillionTask(1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(jobs) {
		t.Errorf("regeneration not deterministic: %d vs %d jobs", len(again), len(jobs))
	}
}

// TestMillionTaskWindowedScales checks the short-window variant stays
// valid and proportional.
func TestMillionTaskWindowedScales(t *testing.T) {
	m := MillionTaskWindowed(3, 1)
	jobs, err := m.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) < 50_000 {
		t.Errorf("1-day window generated %d jobs, want >= 50k (≈1e6/14)", len(jobs))
	}
	if err := job.ValidateAll(jobs); err != nil {
		t.Fatal(err)
	}
}
