// Package synth generates synthetic HTC workload traces calibrated to the
// published characteristics of the paper's two archive traces, which are
// not redistributable here (the module is offline):
//
//   - NASA iPSC/860: 128 nodes, 46.6% utilization, two weeks, jobs arrive
//     smoothly with a strong daily cycle, runtimes are short (minutes),
//     sizes are powers of two.
//   - SDSC BLUE: 144 nodes, 76.2% utilization, two weeks, first week quiet
//     and second week busy with bursty arrivals, runtimes are long (hours).
//
// The generator draws inhomogeneous-Poisson arrivals shaped by a daily
// cycle, weekly factors and per-block burst noise, lognormal runtimes, and
// a discrete node-size mix, then calibrates the arrival volume so realized
// utilization matches the target. Everything is deterministic per seed.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/job"
)

// SizeWeight gives the relative probability of a job requesting Nodes nodes.
type SizeWeight struct {
	Nodes  int
	Weight float64
}

// Model describes a synthetic HTC trace. All times are in seconds.
type Model struct {
	// Name labels generated jobs and reports.
	Name string
	// Seed makes generation reproducible.
	Seed int64
	// Days is the trace length (the paper uses 14).
	Days int
	// MachineNodes is the machine size; no job exceeds it and at least
	// one job requests exactly this size (the paper sizes the DCS/SSP
	// runtime environments from the trace maximum).
	MachineNodes int
	// TargetUtil is the fraction of MachineNodes*span consumed.
	TargetUtil float64
	// RuntimeMedian and RuntimeSigma parameterize the lognormal runtime
	// distribution (median in seconds, sigma in log space).
	RuntimeMedian float64
	RuntimeSigma  float64
	// MaxRuntime clamps runtimes (seconds). Zero means one day.
	MaxRuntime int64
	// SizeWeights is the discrete node-size mix.
	SizeWeights []SizeWeight
	// DailyCycle holds 24 relative arrival weights, one per hour of day.
	// A zero value means a flat cycle.
	DailyCycle [24]float64
	// WeekFactors multiply arrival intensity per week of the trace;
	// missing weeks default to 1.
	WeekFactors []float64
	// BlockSigma adds lognormal burst noise per 6-hour block (0 = smooth).
	BlockSigma float64
	// HourAlignProb is the probability that a job's runtime snaps to
	// just under the next whole hour, modelling batch jobs that run to
	// their requested wallclock limit (common on production machines
	// like SDSC BLUE). Zero disables alignment.
	HourAlignProb float64
	// SizeRuntimeExp correlates runtime with node count: runtimes are
	// multiplied by nodes^SizeRuntimeExp (production traces show wide
	// jobs running longer, not shorter). Zero disables the correlation.
	SizeRuntimeExp float64
	// ShortFrac mixes in a second "short job" runtime mode: with this
	// probability the runtime is drawn from lognormal(ShortMedian,
	// ShortSigma) instead. Production traces are bimodal — swarms of
	// minute-scale test jobs over a base of long production runs — and
	// this mixture is what gives the NASA trace its severe per-job
	// hourly-rounding penalty under DRP.
	ShortFrac   float64
	ShortMedian float64
	ShortSigma  float64
}

// Validate reports the first configuration problem, or nil.
func (m *Model) Validate() error {
	if m.Days <= 0 {
		return fmt.Errorf("synth %s: days %d <= 0", m.Name, m.Days)
	}
	if m.MachineNodes <= 0 {
		return fmt.Errorf("synth %s: machine nodes %d <= 0", m.Name, m.MachineNodes)
	}
	if m.TargetUtil <= 0 || m.TargetUtil >= 1 {
		return fmt.Errorf("synth %s: target utilization %g outside (0,1)", m.Name, m.TargetUtil)
	}
	if m.RuntimeMedian <= 0 {
		return fmt.Errorf("synth %s: runtime median %g <= 0", m.Name, m.RuntimeMedian)
	}
	if m.RuntimeSigma < 0 {
		return fmt.Errorf("synth %s: runtime sigma %g < 0", m.Name, m.RuntimeSigma)
	}
	if len(m.SizeWeights) == 0 {
		return fmt.Errorf("synth %s: no size weights", m.Name)
	}
	for _, sw := range m.SizeWeights {
		if sw.Nodes <= 0 || sw.Nodes > m.MachineNodes {
			return fmt.Errorf("synth %s: size %d outside [1,%d]", m.Name, sw.Nodes, m.MachineNodes)
		}
		if sw.Weight < 0 {
			return fmt.Errorf("synth %s: negative weight for size %d", m.Name, sw.Nodes)
		}
	}
	return nil
}

// Span is the trace length in seconds.
func (m *Model) Span() int64 { return int64(m.Days) * 24 * 3600 }

// Generate produces the calibrated trace. Realized utilization lands within
// about one percent of TargetUtil for the bundled models.
func (m *Model) Generate() ([]job.Job, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	span := m.Span()
	targetNS := m.TargetUtil * float64(m.MachineNodes) * float64(span)

	// Expected per-job demand from the configured distributions.
	meanRuntime := m.RuntimeMedian * math.Exp(m.RuntimeSigma*m.RuntimeSigma/2)
	if m.ShortFrac > 0 {
		meanShort := m.ShortMedian * math.Exp(m.ShortSigma*m.ShortSigma/2)
		meanRuntime = m.ShortFrac*meanShort + (1-m.ShortFrac)*meanRuntime
	}
	var wSum, nodeSum float64
	for _, sw := range m.SizeWeights {
		wSum += sw.Weight
		nodeSum += sw.Weight * float64(sw.Nodes)
	}
	meanNodes := nodeSum / wSum
	expectJobs := targetNS / (meanNodes * meanRuntime)

	// Calibrate in two stages. First adjust the arrival volume so the
	// realized node-seconds get close to the target (the RNG is reseeded
	// each round, so the trace is deterministic in (Seed, scale)). Heavy
	// runtime tails make this converge only roughly, so a second stage
	// rescales runtimes by a bounded factor for an exact match.
	scale := 1.0
	var jobs []job.Job
	for iter := 0; iter < 8; iter++ {
		jobs = m.generateOnce(expectJobs * scale)
		got := float64(job.TotalNodeSeconds(jobs))
		if got == 0 {
			scale *= 2
			continue
		}
		ratio := targetNS / got
		if math.Abs(ratio-1) < 0.02 {
			break
		}
		scale *= ratio
	}
	maxRuntime := m.MaxRuntime
	if maxRuntime == 0 {
		maxRuntime = 24 * 3600
	}
	for iter := 0; iter < 6; iter++ {
		got := float64(job.TotalNodeSeconds(jobs))
		if got == 0 {
			break
		}
		factor := targetNS / got
		if math.Abs(factor-1) < 0.005 {
			break
		}
		// Bound the per-pass stretch so the runtime distribution keeps
		// its shape; clamped jobs make repeated passes necessary.
		if factor > 1.5 {
			factor = 1.5
		}
		if factor < 0.67 {
			factor = 0.67
		}
		for i := range jobs {
			r := int64(float64(jobs[i].Runtime) * factor)
			if r < 1 {
				r = 1
			}
			if r > maxRuntime {
				r = maxRuntime
			}
			jobs[i].Runtime = r
		}
	}
	job.SortBySubmit(jobs)
	for i := range jobs {
		jobs[i].ID = i + 1
		jobs[i].Name = fmt.Sprintf("%s-%d", m.Name, i+1)
	}
	if err := job.ValidateAll(jobs); err != nil {
		return nil, fmt.Errorf("synth %s: generated invalid workload: %w", m.Name, err)
	}
	return jobs, nil
}

// generateOnce draws one trace with the given expected job count.
func (m *Model) generateOnce(expectJobs float64) []job.Job {
	rng := rand.New(rand.NewSource(m.Seed))
	span := m.Span()

	cycle := m.DailyCycle
	flat := true
	for _, w := range cycle {
		if w != 0 {
			flat = false
			break
		}
	}
	if flat {
		for i := range cycle {
			cycle[i] = 1
		}
	}

	// Hourly arrival weights over the whole span.
	hours := int(span / 3600)
	weights := make([]float64, hours)
	var totalW float64
	for h := 0; h < hours; h++ {
		w := cycle[h%24]
		week := h / (24 * 7)
		if week < len(m.WeekFactors) {
			w *= m.WeekFactors[week]
		}
		if m.BlockSigma > 0 && h%6 == 0 {
			// One burst multiplier per 6-hour block; consumed below.
			w *= 1 // placeholder: block noise applied after the loop
		}
		weights[h] = w
		totalW += w
	}
	if m.BlockSigma > 0 {
		// Apply a shared lognormal multiplier to each 6-hour block.
		totalW = 0
		for b := 0; b*6 < hours; b++ {
			mult := math.Exp(rng.NormFloat64() * m.BlockSigma)
			for h := b * 6; h < (b+1)*6 && h < hours; h++ {
				weights[h] *= mult
				totalW += weights[h]
			}
		}
	}

	var jobs []job.Job
	maxRuntime := m.MaxRuntime
	if maxRuntime == 0 {
		maxRuntime = 24 * 3600
	}
	for h := 0; h < hours; h++ {
		lambda := expectJobs * weights[h] / totalW
		n := poisson(rng, lambda)
		for k := 0; k < n; k++ {
			at := int64(h)*3600 + int64(rng.Intn(3600))
			nodes := m.sampleSize(rng)
			jobs = append(jobs, job.Job{
				Class:   job.HTC,
				Submit:  at,
				Runtime: m.sampleRuntime(rng, nodes, maxRuntime),
				Nodes:   nodes,
			})
		}
	}

	// Guarantee the trace maximum equals the machine size: the paper
	// derives DCS/SSP configurations from it. Two full-size jobs early
	// and mid-trace, with short runtimes so they barely move utilization.
	for _, at := range []int64{span / 10, span / 2} {
		jobs = append(jobs, job.Job{
			Class:   job.HTC,
			Submit:  at,
			Runtime: m.sampleRuntime(rng, m.MachineNodes, maxRuntime),
			Nodes:   m.MachineNodes,
		})
	}
	return jobs
}

func (m *Model) sampleRuntime(rng *rand.Rand, nodes int, maxRuntime int64) int64 {
	var base float64
	if m.ShortFrac > 0 && rng.Float64() < m.ShortFrac {
		base = m.ShortMedian * math.Exp(rng.NormFloat64()*m.ShortSigma)
	} else {
		base = m.RuntimeMedian * math.Exp(rng.NormFloat64()*m.RuntimeSigma)
		if m.SizeRuntimeExp > 0 && nodes > 1 {
			base *= math.Pow(float64(nodes), m.SizeRuntimeExp)
		}
	}
	r := int64(base)
	if m.HourAlignProb > 0 && rng.Float64() < m.HourAlignProb {
		// Snap up to just below the next hour boundary: the job ran to
		// its requested whole-hour wallclock limit.
		hours := r/3600 + 1
		r = hours*3600 - int64(rng.Intn(300)) - 1
	}
	if r < 1 {
		r = 1
	}
	if r > maxRuntime {
		r = maxRuntime
	}
	return r
}

func (m *Model) sampleSize(rng *rand.Rand) int {
	var total float64
	for _, sw := range m.SizeWeights {
		total += sw.Weight
	}
	x := rng.Float64() * total
	for _, sw := range m.SizeWeights {
		x -= sw.Weight
		if x <= 0 {
			return sw.Nodes
		}
	}
	return m.SizeWeights[len(m.SizeWeights)-1].Nodes
}

// SDSCBlueWindowed returns the BLUE model truncated to days. Windows
// shorter than the full two weeks compress the week factors so the
// quiet-then-busy shape survives the truncation; both the experiment
// suite and the scenario compiler build shortened BLUE traces through
// this single helper.
func SDSCBlueWindowed(seed int64, days int) *Model {
	m := SDSCBlue(seed)
	m.Days = days
	if days < 14 {
		m.WeekFactors = []float64{0.55, 1.45, 1.45}
	}
	return m
}

// poisson draws a Poisson variate by inversion (Knuth); adequate for the
// small per-hour rates used here.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation for large rates keeps this O(1).
		n := int(math.Round(lambda + math.Sqrt(lambda)*rng.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// MillionTask returns the kernel stress model: roughly one million short,
// narrow tasks over two weeks on a 1024-node machine. It is not
// calibrated to an archive trace — its job is to drive 10⁶-task runs
// through the simulation kernel (each task is at least two events, a
// submission and a completion, plus the scheduling traffic it causes) so
// dcscen/dawningbench and the benchmarks can measure event-loop
// throughput at the ROADMAP's target scale. MillionTaskWindowed trims the
// window for scenario specs with fewer days.
func MillionTask(seed int64) *Model {
	return MillionTaskWindowed(seed, 14)
}

// MillionTaskWindowed is MillionTask over a days-long window; job volume
// scales with the window, reaching ≈1e6 at the full two weeks.
func MillionTaskWindowed(seed int64, days int) *Model {
	return &Model{
		Name:          "million-task",
		Seed:          seed,
		Days:          days,
		MachineNodes:  1024,
		TargetUtil:    0.70,
		RuntimeMedian: 390,
		RuntimeSigma:  0.7,
		MaxRuntime:    4 * 3600,
		SizeWeights: []SizeWeight{
			{1, 0.72}, {2, 0.18}, {4, 0.07}, {8, 0.025}, {16, 0.005},
		},
		DailyCycle: [24]float64{
			0.70, 0.65, 0.62, 0.60, 0.60, 0.65, 0.75, 0.90,
			1.10, 1.25, 1.32, 1.35, 1.32, 1.28, 1.30, 1.28,
			1.22, 1.15, 1.08, 1.00, 0.92, 0.85, 0.78, 0.74,
		},
		BlockSigma: 0.05,
	}
}

// NASAiPSC returns the model calibrated to the paper's NASA iPSC trace:
// a lightly loaded machine with smooth daily arrivals of short jobs.
func NASAiPSC(seed int64) *Model {
	return &Model{
		Name:          "nasa-ipsc",
		Seed:          seed,
		Days:          14,
		MachineNodes:  128,
		TargetUtil:    0.466,
		RuntimeMedian: 21000,
		RuntimeSigma:  0.6,
		MaxRuntime:    24 * 3600,
		ShortFrac:     0.93,
		ShortMedian:   260,
		ShortSigma:    0.9,
		SizeWeights: []SizeWeight{
			{1, 0.34}, {2, 0.17}, {4, 0.16}, {8, 0.14},
			{16, 0.11}, {32, 0.06}, {64, 0.015}, {128, 0.003},
		},
		DailyCycle: [24]float64{
			0.60, 0.55, 0.50, 0.50, 0.50, 0.55, 0.65, 0.80,
			1.10, 1.30, 1.40, 1.45, 1.40, 1.35, 1.40, 1.40,
			1.35, 1.25, 1.10, 1.00, 0.90, 0.80, 0.70, 0.65,
		},
		WeekFactors: []float64{1.0, 1.05},
		BlockSigma:  0.05,
	}
}

// SDSCBlue returns the model calibrated to the paper's SDSC BLUE trace:
// a heavily loaded machine, quiet in week one, busy and bursty in week two.
// The utilization target (0.68) matches the paper's *measured* two-week
// window (its DRP consumption sits ~26% under the 144-node capacity),
// rather than the archive's whole-trace 76.2%; half the jobs run to whole-
// hour wallclock limits, which is why the paper's BLUE numbers show almost
// no hourly-rounding penalty.
func SDSCBlue(seed int64) *Model {
	return &Model{
		Name:          "sdsc-blue",
		Seed:          seed,
		Days:          14,
		MachineNodes:  144,
		TargetUtil:    0.68,
		RuntimeMedian: 2600,
		RuntimeSigma:  1.0,
		MaxRuntime:    24 * 3600,
		HourAlignProb: 0.6,
		SizeWeights: []SizeWeight{
			{1, 0.30}, {2, 0.20}, {4, 0.20}, {8, 0.15},
			{16, 0.10}, {32, 0.04}, {64, 0.008}, {144, 0.002},
		},
		DailyCycle: [24]float64{
			0.75, 0.70, 0.65, 0.62, 0.62, 0.65, 0.75, 0.90,
			1.05, 1.15, 1.25, 1.28, 1.25, 1.22, 1.25, 1.22,
			1.18, 1.12, 1.05, 1.00, 0.92, 0.85, 0.80, 0.78,
		},
		WeekFactors:    []float64{0.82, 1.18},
		BlockSigma:     0.12,
		SizeRuntimeExp: 0.15,
	}
}
