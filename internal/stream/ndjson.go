package stream

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/job"
)

// TaskRecord is the NDJSON wire form of one live-ingested task: the
// line format of dcserve's POST /v1/runs/{id}/tasks body and of dcscen
// -emit-ndjson output. A stream is task records in nondecreasing submit
// order followed by an explicit end-of-stream record ({"end":true});
// producers that stop without the end record leave the run waiting
// (its virtual clock cannot prove no earlier task is coming).
//
// Workload routes the record to one live provider lane; it may be empty
// when the run has exactly one. An end record with an empty workload
// ends every lane.
type TaskRecord struct {
	End      bool   `json:"end,omitempty"`
	ID       int    `json:"id,omitempty"`
	Name     string `json:"name,omitempty"`
	Submit   int64  `json:"submit,omitempty"`
	Runtime  int64  `json:"runtime,omitempty"`
	Nodes    int    `json:"nodes,omitempty"`
	Workload string `json:"workload,omitempty"`
}

// Job lowers the record to the simulator's job form. Live lanes are
// HTC by construction (scenario validation rejects live MTC sources),
// so the class is fixed here.
func (r *TaskRecord) Job() job.Job {
	return job.Job{
		ID:      r.ID,
		Name:    r.Name,
		Class:   job.HTC,
		Submit:  r.Submit,
		Runtime: r.Runtime,
		Nodes:   r.Nodes,
	}
}

// WriteNDJSON encodes jobs as task records — one JSON object per line,
// each tagged with the given workload lane — followed by the
// end-of-stream record. The output is exactly what POST
// /v1/runs/{id}/tasks ingests.
func WriteNDJSON(w io.Writer, workload string, jobs []job.Job) error {
	enc := json.NewEncoder(w)
	for i := range jobs {
		j := &jobs[i]
		rec := TaskRecord{
			ID: j.ID, Name: j.Name,
			Submit: j.Submit, Runtime: j.Runtime, Nodes: j.Nodes,
			Workload: workload,
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("stream: encode task %d: %w", j.ID, err)
		}
	}
	if err := enc.Encode(TaskRecord{End: true, Workload: workload}); err != nil {
		return fmt.Errorf("stream: encode end record: %w", err)
	}
	return nil
}
