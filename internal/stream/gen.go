package stream

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/job"
)

// GenConfig parameterizes Gen, the purpose-built O(1) streaming
// generator: unlike the calibrated synthetic models (which materialize
// the whole trace to hit an arrival-volume target), Gen draws each job
// independently from a seeded PRNG as it is pulled, so arbitrarily long
// runs hold one job at a time on the source side.
type GenConfig struct {
	// Seed drives the PRNG; equal seeds yield identical streams.
	Seed int64
	// Count is the total number of jobs to emit.
	Count int
	// MeanInterarrival is the average submit-time gap in seconds
	// (uniform on [0, 2*mean]); 0 means every job arrives at t=0.
	MeanInterarrival int64
	// MaxRuntime bounds runtimes, uniform on [1, MaxRuntime]; default 1.
	MaxRuntime int64
	// MaxNodes bounds per-job node demand, uniform on [1, MaxNodes];
	// default 1.
	MaxNodes int
	// Start offsets the first submission.
	Start int64
}

// Gen is the streaming generator Source. Not safe for concurrent use.
type Gen struct {
	cfg  GenConfig
	rng  *rand.Rand
	next int64
	i    int
}

// NewGen creates a generator source from cfg.
func NewGen(cfg GenConfig) *Gen {
	if cfg.MaxRuntime <= 0 {
		cfg.MaxRuntime = 1
	}
	if cfg.MaxNodes <= 0 {
		cfg.MaxNodes = 1
	}
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), next: cfg.Start}
}

// Next implements Source.
func (g *Gen) Next() (job.Job, error) {
	if g.i >= g.cfg.Count {
		return job.Job{}, io.EOF
	}
	g.i++
	j := job.Job{
		ID:      g.i,
		Name:    fmt.Sprintf("gen-%d", g.i),
		Class:   job.HTC,
		Submit:  g.next,
		Runtime: 1 + g.rng.Int63n(g.cfg.MaxRuntime),
		Nodes:   1 + g.rng.Intn(g.cfg.MaxNodes),
	}
	if g.cfg.MeanInterarrival > 0 {
		g.next += g.rng.Int63n(2*g.cfg.MeanInterarrival + 1)
	}
	return j, nil
}
