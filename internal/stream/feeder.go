package stream

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/job"
	"repro/internal/sim"
)

// DefaultStride is the refill cadence: how far the virtual clock
// advances between pull rounds.
const DefaultStride = sim.Hour

// DefaultMinLookahead bounds the delays of dynamic events that are not
// job completions: periodic queue scans (60s), idle-lease checks
// (3600s) and hourly market ticks all fit inside two hours.
const DefaultMinLookahead = 2 * sim.Hour

// Options tunes a Feeder. Zero values select the defaults above.
type Options struct {
	// Stride is the virtual-time distance between refill rounds.
	Stride sim.Time
	// MinLookahead is the floor of the adaptive lookahead D; it must be
	// at least as large as every non-completion delay the attached
	// systems schedule (see the package comment).
	MinLookahead sim.Time
}

// Action is one deferred attach-time event routed through the Feeder: a
// closure to run At its submit time, plus an upper bound on the delay of
// any event one hop of its execution schedules (for workflow
// submissions, the longest task runtime). Systems use action lanes to
// keep materialized MTC workflows tie-ordered against streamed HTC
// lanes.
type Action struct {
	At    sim.Time
	Delta sim.Time
	Run   func()
}

// record is the Feeder's internal unit: deliver run at time at, raising
// the lookahead by delta.
type record struct {
	at    sim.Time
	delta sim.Time
	run   func()
}

// lane is one ordered stream of records with an optional start hook
// issued immediately before its first record.
type lane struct {
	name  string
	next  func() (record, error) // io.EOF ends the lane
	start func(first sim.Time)

	peek      record
	hasPeek   bool
	eof       bool
	startDone bool
	lastAt    sim.Time
	buf       []record
}

// Feeder schedules records from a set of lanes onto one engine in
// bounded lookahead rounds; see the package comment for the ordering
// invariant it maintains. All lanes of an instance must share one
// Feeder. Not safe for concurrent use: Add lanes, Start once, then let
// the engine drive it.
type Feeder struct {
	engine   *sim.Engine
	stride   sim.Time
	minLook  sim.Time
	lanes    []*lane
	maxDelta sim.Time
	started  bool
	err      error

	refillFn func()

	resident    int
	maxResident int
	delivered   int
	rounds      int
}

// NewFeeder creates a Feeder over the instance engine.
func NewFeeder(engine *sim.Engine, opts Options) *Feeder {
	if opts.Stride <= 0 {
		opts.Stride = DefaultStride
	}
	if opts.MinLookahead <= 0 {
		opts.MinLookahead = DefaultMinLookahead
	}
	f := &Feeder{engine: engine, stride: opts.Stride, minLook: opts.MinLookahead}
	f.refillFn = f.refill
	return f
}

// AddJobs registers a job lane: each pulled job is copied and delivered
// at its submit time. start, if non-nil, runs during the first round
// that pulls a record, receiving the first job's submit time — issue the
// lane's server-start event there, before the first submission.
func (f *Feeder) AddJobs(name string, src Source, start func(first sim.Time), deliver func(*job.Job)) error {
	if f.started {
		return fmt.Errorf("stream: lane %s added after Start", name)
	}
	seeded := false
	var lastSubmit int64
	f.lanes = append(f.lanes, &lane{
		name:  name,
		start: start,
		next: func() (record, error) {
			j, err := src.Next()
			if err != nil {
				return record{}, err
			}
			if err := validate(&j, lastSubmit, seeded); err != nil {
				return record{}, err
			}
			seeded, lastSubmit = true, j.Submit
			cp := j
			return record{at: sim.Time(j.Submit), delta: sim.Time(j.Runtime), run: func() { deliver(&cp) }}, nil
		},
	})
	return nil
}

// AddActions registers a finite action lane. Actions are stably sorted
// by At, preserving the caller's order among equal times — for workflow
// lanes that is the materialized first-seen order, so same-time ties
// replay identically.
func (f *Feeder) AddActions(name string, actions []Action, start func(first sim.Time)) error {
	if f.started {
		return fmt.Errorf("stream: lane %s added after Start", name)
	}
	sorted := make([]Action, len(actions))
	copy(sorted, actions)
	sort.SliceStable(sorted, func(i, k int) bool { return sorted[i].At < sorted[k].At })
	i := 0
	f.lanes = append(f.lanes, &lane{
		name:  name,
		start: start,
		next: func() (record, error) {
			if i >= len(sorted) {
				return record{}, io.EOF
			}
			a := sorted[i]
			i++
			return record{at: a.At, delta: a.Delta, run: a.Run}, nil
		},
	})
	return nil
}

// Start issues the first refill round at the engine's current time. It
// must be called after every lane is added and before the engine runs.
func (f *Feeder) Start() error {
	if f.started {
		return fmt.Errorf("stream: feeder started twice")
	}
	f.started = true
	if len(f.lanes) == 0 {
		return nil
	}
	f.engine.At(f.engine.Now(), f.refillFn)
	return nil
}

// Err reports the first lane failure. A failed feeder stops the engine;
// drivers must check Err after the run and discard the partial result.
func (f *Feeder) Err() error { return f.err }

// Resident reports the records currently held by the feeder (buffered,
// peeked, or scheduled but not yet delivered).
func (f *Feeder) Resident() int { return f.resident }

// MaxResident reports the high-water mark of Resident over the run: the
// bounded-memory guarantee is MaxResident = O(records per stride +
// lookahead window), independent of the total task count.
func (f *Feeder) MaxResident() int { return f.maxResident }

// Delivered reports how many records have been delivered so far.
func (f *Feeder) Delivered() int { return f.delivered }

// Rounds reports how many refill rounds have run.
func (f *Feeder) Rounds() int { return f.rounds }

// lookahead is the current adaptive window D.
func (f *Feeder) lookahead() sim.Time {
	if f.maxDelta > f.minLook {
		return f.maxDelta
	}
	return f.minLook
}

// refill runs one round: pull every lane to the shared fixpoint horizon
// (phase one), then issue the buffered records lane by lane in attach
// order (phase two), and schedule the next round one stride ahead.
func (f *Feeder) refill() {
	if f.err != nil {
		return
	}
	f.rounds++
	r := f.engine.Now()
	horizon := r + f.stride + f.lookahead()
	for {
		for _, ln := range f.lanes {
			if err := f.pull(ln, r, horizon); err != nil {
				f.fail(err)
				return
			}
		}
		next := r + f.stride + f.lookahead()
		if next == horizon {
			break
		}
		horizon = next
	}
	for _, ln := range f.lanes {
		if len(ln.buf) == 0 {
			continue
		}
		if !ln.startDone {
			ln.startDone = true
			if ln.start != nil {
				ln.start(ln.buf[0].at)
			}
		}
		buf := ln.buf
		f.engine.ScheduleBatch(len(buf), func(i int) (sim.Time, func()) {
			rec := buf[i]
			return rec.at, func() {
				f.resident--
				f.delivered++
				rec.run()
			}
		})
		ln.buf = nil
	}
	for _, ln := range f.lanes {
		if !ln.eof || ln.hasPeek {
			f.engine.Schedule(f.stride, f.refillFn)
			return
		}
	}
}

// pull buffers ln's records with submit times inside the horizon,
// leaving the first record beyond it peeked for the next round.
func (f *Feeder) pull(ln *lane, r, horizon sim.Time) error {
	for {
		if !ln.hasPeek {
			if ln.eof {
				return nil
			}
			rec, err := ln.next()
			if err != nil {
				if errors.Is(err, io.EOF) {
					ln.eof = true
					return nil
				}
				return fmt.Errorf("stream: lane %s: %w", ln.name, err)
			}
			if rec.at < ln.lastAt {
				return fmt.Errorf("stream: lane %s: record at t=%d before previous t=%d", ln.name, rec.at, ln.lastAt)
			}
			if rec.at < r {
				return fmt.Errorf("stream: lane %s: record at t=%d is in the past of round t=%d", ln.name, rec.at, r)
			}
			ln.lastAt = rec.at
			if rec.delta > f.maxDelta {
				f.maxDelta = rec.delta
			}
			ln.peek, ln.hasPeek = rec, true
			f.resident++
			if f.resident > f.maxResident {
				f.maxResident = f.resident
			}
		}
		if ln.peek.at > horizon {
			return nil
		}
		ln.buf = append(ln.buf, ln.peek)
		ln.hasPeek = false
	}
}

// fail records the first error and halts the engine: a lane failure
// means the simulation is missing input and no further event order is
// meaningful.
func (f *Feeder) fail(err error) {
	f.err = err
	f.engine.Stop()
}
