package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/job"
)

// ErrFull reports that a live source's bounded buffer is full; the
// producer should back off and retry (dcserve translates it into a 503
// with Retry-After).
var ErrFull = errors.New("stream: live buffer full")

// ErrClosed reports a push after the end-of-stream record.
var ErrClosed = errors.New("stream: live source closed")

// DefaultLiveBuffer is the bounded buffer size of a live source.
const DefaultLiveBuffer = 1024

// LiveSource is a channel-backed Source for externally fed runs: HTTP
// handlers (or any producer goroutine) push validated jobs in, the
// Feeder pulls them out on the simulation side. The buffer is bounded —
// that is the backpressure contract: the virtual clock only advances
// past a refill round once the producer has supplied every record inside
// the round's horizon, so a slow producer gates simulated time instead
// of growing memory.
//
// Next blocks until a record, Close or Fail arrives; because the engine
// cannot interrupt a blocked event callback, drivers of live runs must
// wire cancellation to Fail (see Abort).
type LiveSource struct {
	ch   chan job.Job
	done chan struct{}

	mu         sync.Mutex
	closed     bool
	failed     bool
	failErr    error
	seeded     bool
	lastSubmit int64
	pushed     int
}

// NewLiveSource creates a live source with a bounded buffer of the given
// capacity (DefaultLiveBuffer when <= 0).
func NewLiveSource(buffer int) *LiveSource {
	if buffer <= 0 {
		buffer = DefaultLiveBuffer
	}
	return &LiveSource{
		ch:   make(chan job.Job, buffer),
		done: make(chan struct{}),
	}
}

// admit validates a record on the producer side, so ingestion errors
// surface synchronously to the client instead of killing the run.
func (s *LiveSource) admit(j *job.Job) error {
	if s.closed {
		return ErrClosed
	}
	if s.failed {
		return s.failErr
	}
	if err := validate(j, s.lastSubmit, s.seeded); err != nil {
		return err
	}
	return nil
}

// TryPush appends one job without blocking: ErrFull when the buffer is
// full, ErrClosed after Close, a validation error for bad records.
func (s *LiveSource) TryPush(j job.Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.admit(&j); err != nil {
		return err
	}
	select {
	case s.ch <- j:
		s.seeded, s.lastSubmit = true, j.Submit
		s.pushed++
		return nil
	default:
		return ErrFull
	}
}

// Push appends one job, blocking while the buffer is full until the
// consumer drains it, the source fails, or ctx is done.
func (s *LiveSource) Push(ctx context.Context, j job.Job) error {
	s.mu.Lock()
	if err := s.admit(&j); err != nil {
		s.mu.Unlock()
		return err
	}
	// Hold the admission ordering under the lock: a second producer
	// blocks in Push rather than interleaving out-of-order submits.
	defer s.mu.Unlock()
	select {
	case s.ch <- j:
		s.seeded, s.lastSubmit = true, j.Submit
		s.pushed++
		return nil
	case <-s.done:
		return s.failErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close marks the end of the stream: buffered jobs still drain, then
// Next returns io.EOF. Closing twice is an error.
func (s *LiveSource) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	close(s.ch)
	return nil
}

// Fail aborts the stream: Next returns err immediately, dropping any
// buffered jobs. It is how cancellation reaches a Feeder blocked in
// Next. Fail after Close or Fail is a no-op.
func (s *LiveSource) Fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return
	}
	if err == nil {
		err = errors.New("stream: live source aborted")
	}
	s.failed, s.failErr = true, err
	close(s.done)
}

// Pushed reports how many jobs have been accepted so far.
func (s *LiveSource) Pushed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushed
}

// Closed reports whether the end-of-stream record has been received.
func (s *LiveSource) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Next implements Source. It blocks until the producer supplies a
// record, closes the stream (io.EOF) or fails it.
func (s *LiveSource) Next() (job.Job, error) {
	select {
	case j, ok := <-s.ch:
		if !ok {
			return job.Job{}, io.EOF
		}
		return j, nil
	case <-s.done:
		return job.Job{}, s.failErr
	}
}

// Feed is a named set of live sources for one run — one per live
// provider lane — shared between the ingestion endpoint (producer side)
// and the run's compiled workloads (consumer side).
type Feed struct {
	mu      sync.Mutex
	sources map[string]*LiveSource
	order   []string
}

// NewFeed creates an empty feed.
func NewFeed() *Feed {
	return &Feed{sources: make(map[string]*LiveSource)}
}

// Add creates and registers the live source for one named lane.
func (f *Feed) Add(name string, buffer int) (*LiveSource, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.sources[name]; ok {
		return nil, fmt.Errorf("stream: duplicate live lane %q", name)
	}
	s := NewLiveSource(buffer)
	f.sources[name] = s
	f.order = append(f.order, name)
	return s, nil
}

// Get returns the named lane's source. With an empty name and exactly
// one lane, that lane is returned — the common single-feed case needs no
// routing field in the wire records.
func (f *Feed) Get(name string) (*LiveSource, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if name == "" {
		if len(f.order) == 1 {
			return f.sources[f.order[0]], nil
		}
		return nil, fmt.Errorf("stream: feed has %d lanes, record must name its workload", len(f.order))
	}
	s, ok := f.sources[name]
	if !ok {
		return nil, fmt.Errorf("stream: no live lane %q", name)
	}
	return s, nil
}

// Names lists the feed's lanes in registration order.
func (f *Feed) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, len(f.order))
	copy(out, f.order)
	return out
}

// Closed reports whether every lane has received its end-of-stream
// record.
func (f *Feed) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.sources {
		if !s.Closed() {
			return false
		}
	}
	return true
}

// CloseAll ends every lane that is still open.
func (f *Feed) CloseAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.sources {
		_ = s.Close() // ErrClosed on an already-ended lane is fine
	}
}

// FailAll aborts every lane, unblocking a Feeder waiting on any of them.
func (f *Feed) FailAll(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, s := range f.sources {
		s.Fail(err)
	}
}
