// Package stream feeds simulations from online task sources instead of
// materialized job slices: a Source yields jobs one at a time in
// nondecreasing submit order, and a Feeder schedules them onto the
// virtual clock in bounded rounds, so a run over ten million tasks never
// holds more than one round's worth of records in memory.
//
// # Byte-identity invariant
//
// A fully drained streamed run must be byte-identical to the same
// workload run materialized. The discrete-event kernel breaks same-time
// ties by schedule-issue order (internal/sim), and the materialized
// attach paths schedule every submission up front — before any event the
// running simulation creates dynamically. Tie outcomes therefore depend
// on every submission at time T being scheduled (issued) before any
// dynamically created event that fires at T.
//
// The Feeder preserves that property with an adaptive lookahead. It
// maintains D = max(MinLookahead, max delay of any record pulled so
// far), where a job record's delay is its runtime (the largest Schedule
// delay its delivery can transitively cause per hop: completions use
// Δ=runtime, periodic scans and idle checks are bounded by
// MinLookahead). A refill round at time r pulls records from every lane
// until the next record's submit exceeds H = r + Stride + D, iterating
// to a fixpoint because pulled records can raise D, then schedules the
// buffered records. The next round runs at r + Stride.
//
// Why that suffices: a dynamic event firing at T is created by an event
// firing at some v <= T with delay Δ = T - v, and Δ <= D_p where p is
// the last round at or before the creator's own creation (every job
// involved was pulled by round p, and D is monotone). The round at or
// before v, say round q >= p, had horizon H_q >= q + Stride + D_q >=
// v + D_p >= T — so the record event at T was already scheduled, with a
// lower issue number, before the dynamic event was created. Ties at T
// then resolve exactly as in the materialized run.
//
// Cross-lane ties matter too (shared-pool acquisitions and accountant
// owner order observe them), so one Feeder serves every lane of an
// instance: each round buffers records from all lanes against one shared
// fixpoint horizon (phase one) and only then schedules them lane by lane
// in attach order (phase two). Records with equal submit times therefore
// land in the same round on every lane and are issued in attach order —
// the same relative order the materialized attach loop produces. Lane
// start hooks (server start, TRE creation) are issued immediately before
// the lane's first record, again mirroring the materialized order.
//
// Identity holds for runs drained within the horizon: a materialized run
// also schedules submissions past the horizon (they never fire but do
// consume issue numbers), which cannot affect outcomes, whereas the
// Feeder simply never pulls them.
//
// # Bounded memory
//
// The Feeder holds only the records pulled for the current round plus
// one peeked record per lane — O(active window), not O(total tasks):
// with stride s and lookahead D, at most the records submitted inside a
// (s + D) window are resident at once. Resident and MaxResident report
// the instrumented counts so tests can pin the bound. Sources built over
// generators (Gen) and streaming trace readers (SWF) are O(1) in the
// task count; FromModel is a convenience that materializes during
// synthetic calibration and only bounds the kernel side.
package stream

import (
	"fmt"
	"io"

	"repro/internal/job"
	"repro/internal/swf"
	"repro/internal/synth"
)

// Source yields jobs in nondecreasing Submit order and returns io.EOF
// after the last one. Implementations need not be safe for concurrent
// use; the Feeder pulls from a single goroutine.
type Source interface {
	Next() (job.Job, error)
}

// sliceSource iterates a materialized job slice.
type sliceSource struct {
	jobs []job.Job
	i    int
}

// FromJobs exposes a materialized, submit-sorted job slice as a Source.
// It is the bridge used to replay existing workloads through the
// streamed path; order is validated by the Feeder on pull.
func FromJobs(jobs []job.Job) Source {
	return &sliceSource{jobs: jobs}
}

func (s *sliceSource) Next() (job.Job, error) {
	if s.i >= len(s.jobs) {
		return job.Job{}, io.EOF
	}
	j := s.jobs[s.i]
	s.i++
	return j, nil
}

// FromModel exposes a synthetic workload model as a Source. The
// generator's calibration passes materialize the whole trace before the
// first job is yielded, so this bounds only the kernel-side memory; use
// Gen for a source that is O(1) in the task count end to end.
func FromModel(m *synth.Model) (Source, error) {
	jobs, err := m.Generate()
	if err != nil {
		return nil, err
	}
	return FromJobs(jobs), nil
}

// SWF streams jobs from an SWF trace reader record by record, skipping
// records with unknown runtime or processors exactly like
// swf.Trace.Jobs. Archive files are not guaranteed to be submit-sorted;
// the Feeder rejects out-of-order input, so pre-sorted traces are
// required (the repository's exported traces are).
func SWF(r *swf.Reader) Source {
	return &swfSource{r: r}
}

type swfSource struct {
	r *swf.Reader
}

func (s *swfSource) Next() (job.Job, error) {
	for {
		rec, err := s.r.Next()
		if err != nil {
			return job.Job{}, err // io.EOF or a parse error
		}
		if j, ok := swf.JobFromRecord(&rec); ok {
			return j, nil
		}
	}
}

// validate applies the per-record admission checks shared by every
// ingestion path: structural job validity plus nondecreasing submit
// order against the previous record.
func validate(j *job.Job, lastSubmit int64, seeded bool) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if seeded && j.Submit < lastSubmit {
		return fmt.Errorf("job %d: submit %d before previous %d (sources must be submit-sorted)",
			j.ID, j.Submit, lastSubmit)
	}
	return nil
}
