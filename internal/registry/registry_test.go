package registry

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/systems"
)

func stubRunner(name string) Runner {
	return Func(func(ctx context.Context, wls []systems.Workload, opts systems.Options) (systems.Result, error) {
		return systems.Result{System: name}, nil
	})
}

func TestDefaultHasPaperSystemsInPresentationOrder(t *testing.T) {
	names := Default.Names()
	want := []string{"DCS", "SSP", "DRP", "DawningCloud"}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	if !reflect.DeepEqual(names[:4], want) {
		t.Errorf("Names()[:4] = %v, want %v", names[:4], want)
	}
}

func TestRegisterAndResolve(t *testing.T) {
	r := New()
	if err := r.Register("My-System", stubRunner("My-System")); err != nil {
		t.Fatal(err)
	}
	runner, canonical, err := r.Resolve("my-system")
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if canonical != "My-System" {
		t.Errorf("canonical = %q, want My-System", canonical)
	}
	res, err := runner.Run(context.Background(), nil, systems.Options{})
	if err != nil || res.System != "My-System" {
		t.Errorf("runner result = %+v, %v", res, err)
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	r := New()
	if err := r.Register("", stubRunner("x")); err == nil {
		t.Error("empty name accepted")
	}
	if err := r.Register("  ", stubRunner("x")); err == nil {
		t.Error("blank name accepted")
	}
	if err := r.Register("x", nil); err == nil {
		t.Error("nil runner accepted")
	}
	if err := r.Register("dup", stubRunner("dup")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("DUP", stubRunner("DUP")); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
}

func TestResolveUnknownListsRegistered(t *testing.T) {
	r := New()
	r.MustRegister("alpha", stubRunner("alpha"))
	r.MustRegister("beta", stubRunner("beta"))
	_, _, err := r.Resolve("gamma")
	if err == nil {
		t.Fatal("unknown name resolved")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown system "gamma"`) ||
		!strings.Contains(msg, "alpha, beta") {
		t.Errorf("error %q missing name or registered list", msg)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := New()
	r.MustRegister("base", stubRunner("base"))
	snap := r.Snapshot()
	snap.MustRegister("extra", stubRunner("extra"))
	if r.Has("extra") {
		t.Error("snapshot registration leaked into the original")
	}
	r.MustRegister("orig-only", stubRunner("orig-only"))
	if snap.Has("orig-only") {
		t.Error("original registration leaked into the snapshot")
	}
	if !snap.Has("base") {
		t.Error("snapshot lost pre-existing registration")
	}
}

func TestCanonicalAndHas(t *testing.T) {
	r := New()
	r.MustRegister("CamelCase", stubRunner("CamelCase"))
	if got, ok := r.Canonical("camelcase"); !ok || got != "CamelCase" {
		t.Errorf("Canonical = %q/%v", got, ok)
	}
	if !r.Has("CAMELCASE") || r.Has("other") {
		t.Error("Has() case-insensitivity broken")
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	r := New()
	r.MustRegister("a", stubRunner("a"))
	defer func() {
		if recover() == nil {
			t.Error("MustRegister did not panic on duplicate")
		}
	}()
	r.MustRegister("a", stubRunner("a"))
}

func TestDefaultResolvesBuiltinsCaseInsensitively(t *testing.T) {
	for name, want := range map[string]string{
		"dcs": "DCS", "ssp": "SSP", "drp": "DRP", "dawningcloud": "DawningCloud",
	} {
		if _, canonical, err := Default.Resolve(name); err != nil || canonical != want {
			t.Errorf("Resolve(%q) = %q, %v; want %q", name, canonical, err, want)
		}
	}
}

// TestRegisteredNamesAreCanonicalTokens is the drift guard between the
// registry and the conventions dclint enforces: every name registered
// in Default (the four paper systems plus self-registered extensions
// like ssp-spot) must be a canonical single token whose folded
// lowercase form round-trips through Canonical back to the registered
// spelling. If a future system registered a name with whitespace or a
// spelling that folds onto another, scenario specs, CLI flags and the
// HTTP API would disagree about what the system is called.
func TestRegisteredNamesAreCanonicalTokens(t *testing.T) {
	for _, name := range Default.Names() {
		if name != strings.TrimSpace(name) || strings.ContainsAny(name, " \t\n") {
			t.Errorf("registered name %q is not a canonical single token", name)
		}
		if fold(name) != fold(fold(name)) {
			t.Errorf("fold(%q) is not idempotent", name)
		}
		for _, probe := range []string{name, strings.ToLower(name), strings.ToUpper(name)} {
			canonical, ok := Default.Canonical(probe)
			if !ok || canonical != name {
				t.Errorf("Canonical(%q) = (%q, %v), want (%q, true)", probe, canonical, ok, name)
			}
		}
	}
}

// TestRegisterRejectsNonCanonicalNames pins the Register-time
// validation: whitespace anywhere in a name is an error, not a silent
// normalization.
func TestRegisterRejectsNonCanonicalNames(t *testing.T) {
	for _, bad := range []string{" padded", "padded ", "two words", "tab\tname", "line\nname"} {
		r := New()
		if err := r.Register(bad, stubRunner(bad)); err == nil {
			t.Errorf("Register(%q) succeeded, want canonical-name error", bad)
		}
	}
}
