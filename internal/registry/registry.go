// Package registry is the single name → system mapping of the
// repository: a string-keyed, concurrency-safe registry of simulation
// runners shared by the public Engine API, the experiment suite, the
// declarative scenario engine and the CLIs.
//
// The Default registry ships with the paper's four systems (DCS, SSP,
// DRP, DawningCloud) registered in presentation order. New usage models
// register themselves with Register — no switch statement or map literal
// anywhere needs editing — and are immediately runnable by name from
// Engine.Run, `dcsim -system`, and scenario spec files. See
// internal/spot for a complete example (the "ssp-spot" variant).
//
// Names resolve case-insensitively ("dawningcloud" finds "DawningCloud")
// but keep their registered canonical spelling in results and reports.
package registry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"unicode"

	"repro/internal/core"
	"repro/internal/systems"
)

// Runner simulates one system over a workload set. Implementations must
// treat workloads as read-only, honor context cancellation (an aborted
// run returns an error wrapping ctx.Err()), and be safe for concurrent
// calls: every run builds its own simulation state.
type Runner interface {
	Run(ctx context.Context, workloads []systems.Workload, opts systems.Options) (systems.Result, error)
}

// Func adapts a plain function to the Runner interface.
type Func func(ctx context.Context, workloads []systems.Workload, opts systems.Options) (systems.Result, error)

// Run implements Runner.
func (f Func) Run(ctx context.Context, workloads []systems.Workload, opts systems.Options) (systems.Result, error) {
	return f(ctx, workloads, opts)
}

// Registry maps system names to runners. The zero value is not usable;
// construct with New. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	runners map[string]Runner // keyed by folded name
	folded  map[string]string // folded name -> canonical spelling
	order   []string          // canonical names in registration order
}

// New returns an empty registry. Most callers want Default (the four
// paper systems plus self-registered extensions) or Default.Snapshot().
func New() *Registry {
	return &Registry{
		runners: make(map[string]Runner),
		folded:  make(map[string]string),
	}
}

// fold is the case-insensitive key for a system name.
func fold(name string) string { return strings.ToLower(name) }

// Register adds a runner under name. It fails on an empty name, a name
// containing whitespace, a nil runner, or a name already taken
// (compared case-insensitively, so "SSP" and "ssp" collide).
//
// Names must be canonical single tokens at Register time: the folded
// (lowercase) form is the registry's one lookup key, and it is also the
// spelling scenario specs, CLI flags and the HTTP API accept. A name
// that needs trimming or contains spaces would fold to a key nothing
// can type back in, so it is rejected here rather than silently
// normalized — the registry and the conventions dclint enforces must
// agree on what a system is called.
func (r *Registry) Register(name string, runner Runner) error {
	if strings.TrimSpace(name) == "" {
		return fmt.Errorf("registry: empty system name")
	}
	if strings.ContainsFunc(name, unicode.IsSpace) {
		return fmt.Errorf("registry: system name %q contains whitespace; names must be canonical single tokens", name)
	}
	if runner == nil {
		return fmt.Errorf("registry: nil runner for system %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	key := fold(name)
	if prev, ok := r.folded[key]; ok {
		return fmt.Errorf("registry: system %q already registered (as %q)", name, prev)
	}
	r.runners[key] = runner
	r.folded[key] = name
	r.order = append(r.order, name)
	return nil
}

// MustRegister is Register, panicking on error. Intended for package
// init-time self-registration where a failure is a programming error.
func (r *Registry) MustRegister(name string, runner Runner) {
	if err := r.Register(name, runner); err != nil {
		panic(err)
	}
}

// Lookup returns the runner registered under name (case-insensitive).
func (r *Registry) Lookup(name string) (Runner, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	runner, ok := r.runners[fold(name)]
	return runner, ok
}

// Canonical reports the registered spelling of name (case-insensitive).
func (r *Registry) Canonical(name string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	canonical, ok := r.folded[fold(name)]
	return canonical, ok
}

// Resolve returns the runner and canonical name for name, or an error
// listing every registered system — the one unknown-system message used
// by the Engine, the CLIs and the scenario validator.
func (r *Registry) Resolve(name string) (Runner, string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	key := fold(name)
	runner, ok := r.runners[key]
	if !ok {
		return nil, "", fmt.Errorf("unknown system %q (registered: %s)",
			name, strings.Join(r.order, ", "))
	}
	return runner, r.folded[key], nil
}

// Names lists every registered system's canonical name in registration
// order (the four paper systems come first, in presentation order).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Has reports whether name resolves to a registered system.
func (r *Registry) Has(name string) bool {
	_, ok := r.Lookup(name)
	return ok
}

// Snapshot returns an independent copy of the registry: systems
// registered on the copy do not appear in the original and vice versa.
func (r *Registry) Snapshot() *Registry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := New()
	for key, runner := range r.runners {
		out.runners[key] = runner
		out.folded[key] = r.folded[key]
	}
	out.order = append([]string(nil), r.order...)
	return out
}

// Default is the process-wide registry backing the public Engine API,
// the experiment suite, the scenario engine and the CLIs. The paper's
// four systems are registered here in presentation order; extension
// packages (internal/spot) add theirs from init.
var Default = New()

func init() {
	Default.MustRegister("DCS", Func(systems.RunDCS))
	Default.MustRegister("SSP", Func(systems.RunSSP))
	Default.MustRegister("DRP", Func(systems.RunDRP))
	Default.MustRegister("DawningCloud",
		Func(func(ctx context.Context, wls []systems.Workload, opts systems.Options) (systems.Result, error) {
			return core.Run(ctx, wls, core.Config{Options: opts})
		}))
}
