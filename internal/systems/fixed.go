package systems

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/csf"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/tre"
)

// neverRatio is a threshold ratio no finite queue exceeds, disabling DR1
// for fixed-size runtime environments.
const neverRatio = 1e18

// RunDCS simulates the dedicated cluster system model: every service
// provider owns a fixed-size cluster sized by FixedNodes, with the same
// queueing behaviour as SSP. Consumption is size x period; no adjustments
// are counted because the provider owns the machines. The context cancels
// the simulation mid-run; an aborted run returns ctx.Err().
func RunDCS(ctx context.Context, workloads []Workload, opts Options) (Result, error) {
	return runFixed(ctx, "DCS", true, workloads, opts)
}

// RunSSP simulates the static service provision model (Evangelinos et al.):
// each provider leases a fixed-size virtual cluster from the cloud for the
// whole period and runs a queuing system on it. Performance matches DCS by
// construction; only ownership (TCO, adjustments) differs. The context
// cancels the simulation mid-run; an aborted run returns ctx.Err().
func RunSSP(ctx context.Context, workloads []Workload, opts Options) (Result, error) {
	return runFixed(ctx, "SSP", false, workloads, opts)
}

// runFixed drives the DCS/SSP emulated system of Figure 8: per-provider
// servers and schedulers with fixed resources and no resource provision
// service interaction after startup.
func runFixed(ctx context.Context, system string, owned bool, workloads []Workload, opts Options) (Result, error) {
	if err := ValidateWorkloads(workloads); err != nil {
		return Result{}, err
	}
	horizon := opts.HorizonFor(workloads)
	capacity := opts.PoolCapacity
	if capacity == 0 {
		for i := range workloads {
			capacity += workloads[i].FixedNodes
		}
	}
	engine := sim.New()
	pool, err := cluster.NewPool(capacity)
	if err != nil {
		return Result{}, err
	}
	acct := metrics.NewAccountant(engine.Now)
	setup := setupCostOr(opts, csf.DefaultNodeSetupSeconds)
	prov := csf.NewProvisionService(pool, acct, opts.Provision, setup)

	type slot struct {
		wl     *Workload
		server completedCounter
	}
	slots := make([]slot, 0, len(workloads))
	for i := range workloads {
		wl := &workloads[i]
		params := policy.Params{
			InitialNodes:      wl.FixedNodes,
			ThresholdRatio:    neverRatio,
			ScanInterval:      wl.Params.ScanInterval,
			IdleCheckInterval: wl.Params.IdleCheckInterval,
		}
		if params.ScanInterval <= 0 {
			params.ScanInterval = 60
		}
		if params.IdleCheckInterval <= 0 {
			params.IdleCheckInterval = 3600
		}
		switch wl.Class {
		case job.HTC:
			srv, err := tre.NewHTCServer(engine, prov, tre.Config{Name: wl.Name, Params: params})
			if err != nil {
				return Result{}, err
			}
			if err := startAndFeedHTC(engine, srv, wl); err != nil {
				return Result{}, err
			}
			slots = append(slots, slot{wl: wl, server: srv})
		case job.MTC:
			srv, err := tre.NewMTCServer(engine, prov, tre.Config{
				Name:                wl.Name,
				Params:              params,
				DestroyOnCompletion: true,
			})
			if err != nil {
				return Result{}, err
			}
			if err := startAndFeedMTC(engine, srv, wl); err != nil {
				return Result{}, err
			}
			slots = append(slots, slot{wl: wl, server: srv})
		default:
			return Result{}, fmt.Errorf("systems: workload %s: unknown class %v", wl.Name, wl.Class)
		}
	}

	if err := engine.RunContext(ctx, horizon); err != nil {
		return Result{}, fmt.Errorf("systems: %s run aborted: %w", system, err)
	}
	acct.CloseAll(horizon, !owned)

	aggs := make([]ProviderAgg, 0, len(slots))
	for _, s := range slots {
		a := ProviderAgg{
			Name:      s.wl.Name,
			Class:     s.wl.Class,
			Owners:    []string{s.wl.Name},
			Submitted: s.server.Submitted(),
			Completed: s.server.CompletedBy(horizon),
			Adjusted:  -1,
		}
		if owned {
			a.Adjusted = 0 // DCS providers own their machines
		}
		if s.wl.Class == job.MTC {
			a.TPS = s.server.TasksPerSecond()
		}
		aggs = append(aggs, a)
	}
	res := BuildResult(system, horizon, acct, setup, prov.RejectedRequests(), aggs)
	if owned {
		// Owned machines incur no cloud setup work.
		res.OverheadSeconds = 0
		res.OverheadPerHour = 0
	}
	return res, nil
}

// completedCounter is the server surface the result assembly needs.
type completedCounter interface {
	Submitted() int
	CompletedBy(sim.Time) int
	TasksPerSecond() float64
}

// startAndFeedHTC starts the server at the workload's first submission and
// schedules every job submission on the virtual clock in one pre-sized
// batch.
func startAndFeedHTC(engine *sim.Engine, srv *tre.Server, wl *Workload) error {
	if err := startAt(engine, wl.FirstSubmit(), srv.Start); err != nil {
		return err
	}
	engine.ScheduleBatch(len(wl.Jobs), func(i int) (sim.Time, func()) {
		j := &wl.Jobs[i]
		return j.Submit, func() { srv.Submit(j) }
	})
	return nil
}

// startAndFeedMTC starts the MTC server and submits whole workflows at
// their first task's submission time (the service provider submits the
// workflow description; the trigger monitor stages the tasks).
func startAndFeedMTC(engine *sim.Engine, srv *tre.MTCServer, wl *Workload) error {
	first := wl.FirstSubmit()
	if err := startAt(engine, first, srv.Start); err != nil {
		return err
	}
	byWorkflow := make(map[string][]*job.Job)
	var order []string
	for i := range wl.Jobs {
		j := &wl.Jobs[i]
		key := j.Workflow
		if _, seen := byWorkflow[key]; !seen {
			order = append(order, key)
		}
		byWorkflow[key] = append(byWorkflow[key], j)
	}
	for _, key := range order {
		tasks := byWorkflow[key]
		at := tasks[0].Submit
		for _, t := range tasks {
			if t.Submit < at {
				at = t.Submit
			}
		}
		engine.At(at, func() {
			if err := srv.SubmitWorkflow(tasks); err != nil {
				panic(fmt.Sprintf("systems: submit workflow %s/%s: %v", wl.Name, key, err))
			}
		})
	}
	return nil
}

// startAt runs start on the virtual clock at time t (immediately when the
// clock is already there), converting start errors into panics carrying
// context: server startup failure is a configuration error, and the paper's
// provision policy guarantees initial grants on an adequately sized pool.
func startAt(engine *sim.Engine, t sim.Time, start func() error) error {
	engine.At(t, func() {
		if err := start(); err != nil {
			panic(fmt.Sprintf("systems: server start at t=%d: %v", t, err))
		}
	})
	return nil
}
